package regalloc

import "repro/internal/arch"

// Machine describes the register file of one evaluation target; its
// Allocable method is the natural WithRegisters argument for clients that
// target a named machine rather than an explicit R.
type Machine = arch.Machine

// The paper's evaluation targets.
var (
	// ST231 is the STMicroelectronics ST231 VLIW core (SPEC CPU 2000int,
	// EEMBC and lao-kernels experiments).
	ST231 = arch.ST231
	// ARMv7 is the ARM Cortex A8 target (lao-kernels experiment).
	ARMv7 = arch.ARMv7
	// JVM98 is the JikesRVM/IA32-flavoured JIT target of the non-chordal
	// experiments.
	JVM98 = arch.JVM98
)

// MachineByName resolves a target name ("st231", "armv7", "jvm98").
func MachineByName(name string) (Machine, error) { return arch.ByName(name) }
