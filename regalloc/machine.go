package regalloc

import "repro/internal/arch"

// Machine describes the register file of one evaluation target; its
// Allocable method is the natural WithRegisters argument for clients that
// target a named machine rather than an explicit R.
type Machine = arch.Machine

// The paper's evaluation targets.
var (
	// ST231 is the STMicroelectronics ST231 VLIW core (SPEC CPU 2000int,
	// EEMBC and lao-kernels experiments).
	ST231 = arch.ST231
	// ARMv7 is the ARM Cortex A8 target (lao-kernels experiment).
	ARMv7 = arch.ARMv7
	// JVM98 is the JikesRVM/IA32-flavoured JIT target of the non-chordal
	// experiments.
	JVM98 = arch.JVM98
)

// MachineByName resolves a target name ("st231", "armv7", "jvm98"),
// case-insensitively.
func MachineByName(name string) (Machine, error) { return arch.ByName(name) }

// MachineNames lists the registered target names in presentation order.
func MachineNames() []string { return arch.Names() }

// Constraints is a machine description instantiated at a concrete per-class
// register count: the register classes the target has, how many registers of
// each the ABI passes arguments in, and how many a call clobbers. Obtain one
// from Machine.Constraints(r) or hand-build one for a custom target, and
// attach it to an engine with WithConstraints (or let WithMachine derive it
// from the engine's register count).
type Constraints = arch.Constraints

// ClassFile is one register class of a Constraints instance.
type ClassFile = arch.ClassFile
