package regalloc_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/irgen"
	"repro/internal/pipeline"
	"repro/regalloc"
	"repro/regalloc/irx"
)

const ssaSrc = `
func f ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  d = arith c, a
  ret d
}`

const nonSSASrc = `
func g {
b0:
  x = param 0
  x = arith x, x
  ret x
}`

func TestNewValidatesOptions(t *testing.T) {
	if _, err := regalloc.New(); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("New() without WithRegisters: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := regalloc.New(regalloc.WithRegisters(0)); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("WithRegisters(0): err = %v, want ErrInvalidConfig", err)
	}
	if _, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(-1)); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("WithJobs(-1): err = %v, want ErrInvalidConfig", err)
	}
	if _, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithAllocator("nope")); !errors.Is(err, regalloc.ErrUnknownAllocator) {
		t.Errorf("WithAllocator(nope): err = %v, want ErrUnknownAllocator", err)
	}
	bad := regalloc.NewCostModel(-1, 1)
	if _, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithCostModel(bad)); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("invalid cost model: err = %v, want ErrInvalidConfig", err)
	}
	// WithTrustedCostModel defers the malformed model to run time; New
	// must accept it.
	if _, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithCostModel(bad),
		regalloc.WithTrustedCostModel()); err != nil {
		t.Errorf("WithTrustedCostModel: New rejected the deferred model: %v", err)
	}
}

func TestAllocatorNameCaseInsensitive(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithAllocator("bfpl"))
	if err != nil {
		t.Fatalf("lower-case allocator name rejected: %v", err)
	}
	out, err := eng.AllocateFunc(context.Background(), irx.MustParse(ssaSrc))
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Allocator != "BFPL" {
		t.Errorf("allocator = %s, want BFPL", out.Result.Allocator)
	}
}

func TestAllocateFuncTypedErrors(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A function declared ssa that violates single definition: ErrNotSSA
	// through a *FuncError naming the validate stage.
	broken := irx.MustParse(nonSSASrc)
	broken.SSA = true
	_, err = eng.AllocateFunc(ctx, broken)
	if !errors.Is(err, regalloc.ErrNotSSA) {
		t.Errorf("multi-def ssa function: err = %v, want ErrNotSSA", err)
	}
	var fe *regalloc.FuncError
	if !errors.As(err, &fe) {
		t.Fatalf("err %v is not a *FuncError", err)
	}
	if fe.Func != "g" || fe.Stage != "validate" {
		t.Errorf("FuncError = {Func: %q, Stage: %q}, want {g, validate}", fe.Func, fe.Stage)
	}

	// A chordal-only allocator on a non-SSA function: ErrNotSSA at the
	// allocate stage.
	chordalEng, err := regalloc.New(regalloc.WithRegisters(2), regalloc.WithAllocator("NL"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = chordalEng.AllocateFunc(ctx, irx.MustParse(nonSSASrc))
	if !errors.Is(err, regalloc.ErrNotSSA) {
		t.Errorf("NL on non-SSA: err = %v, want ErrNotSSA", err)
	}
	if !errors.As(err, &fe) || fe.Stage != "allocate" {
		t.Errorf("NL on non-SSA: err %v should be a *FuncError at the allocate stage", err)
	}

	// Canceled context before the call.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = eng.AllocateFunc(canceled, irx.MustParse(ssaSrc))
	if !errors.Is(err, regalloc.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled ctx: err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	if _, err := eng.AllocateFunc(ctx, nil); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("nil function: err = %v, want ErrInvalidConfig", err)
	}
}

// overAllocator keeps everything in registers regardless of pressure — an
// intentionally broken custom allocator to pin the engine-side result
// verification and its typed error.
type overAllocator struct{}

func (overAllocator) Name() string { return "test-overalloc" }
func (overAllocator) Allocate(p *regalloc.Problem) *regalloc.Result {
	res := &regalloc.Result{Allocated: make([]bool, p.N()), Allocator: "test-overalloc"}
	for i := range res.Allocated {
		res.Allocated[i] = true
	}
	return res
}

func TestCustomAllocatorPressureUnsatisfiable(t *testing.T) {
	if err := regalloc.Register("test-overalloc", func() regalloc.Allocator { return overAllocator{} }); err != nil {
		t.Fatal(err)
	}
	eng, err := regalloc.New(regalloc.WithRegisters(2), regalloc.WithAllocator("test-overalloc"))
	if err != nil {
		t.Fatal(err)
	}
	// MaxLive 3 > R=2, so keeping everything violates pressure.
	f := irx.MustParse(`
func hot ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  g = arith e, a
  ret g
}`)
	_, err = eng.AllocateFunc(context.Background(), f)
	if !errors.Is(err, regalloc.ErrPressureUnsatisfiable) {
		t.Errorf("over-allocating custom allocator: err = %v, want ErrPressureUnsatisfiable", err)
	}
	var fe *regalloc.FuncError
	if !errors.As(err, &fe) || fe.Stage != "allocate" {
		t.Errorf("err %v should be a *FuncError at the allocate stage", err)
	}
}

// truncAllocator returns a wrong-length result — a contract violation that
// must NOT be tagged ErrPressureUnsatisfiable (that sentinel means "kept
// more than R live values", which a retry with more registers could fix;
// this can't be).
type truncAllocator struct{}

func (truncAllocator) Name() string { return "test-trunc" }
func (truncAllocator) Allocate(p *regalloc.Problem) *regalloc.Result {
	return &regalloc.Result{Allocated: make([]bool, 1), Allocator: "test-trunc"}
}

func TestCustomAllocatorMalformedResult(t *testing.T) {
	if err := regalloc.Register("test-trunc", func() regalloc.Allocator { return truncAllocator{} }); err != nil {
		t.Fatal(err)
	}
	eng, err := regalloc.New(regalloc.WithRegisters(2), regalloc.WithAllocator("test-trunc"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.AllocateFunc(context.Background(), irx.MustParse(ssaSrc))
	if err == nil {
		t.Fatal("malformed result accepted")
	}
	if errors.Is(err, regalloc.ErrPressureUnsatisfiable) {
		t.Errorf("malformed result mis-tagged as pressure failure: %v", err)
	}
	var fe *regalloc.FuncError
	if !errors.As(err, &fe) || fe.Stage != "allocate" {
		t.Errorf("err %v should be a *FuncError at the allocate stage", err)
	}
}

// panicAllocator blows up on every input: even then, clients must get the
// documented *FuncError, never a crashed batch or an untyped error.
type panicAllocator struct{}

func (panicAllocator) Name() string { return "test-panic" }
func (panicAllocator) Allocate(p *regalloc.Problem) *regalloc.Result {
	panic("intentional test panic")
}

func TestCustomAllocatorPanicIsFuncError(t *testing.T) {
	if err := regalloc.Register("test-panic", func() regalloc.Allocator { return panicAllocator{} }); err != nil {
		t.Fatal(err)
	}
	eng, err := regalloc.New(regalloc.WithRegisters(2), regalloc.WithAllocator("test-panic"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.AllocateFunc(context.Background(), irx.MustParse(ssaSrc))
	var fe *regalloc.FuncError
	if !errors.As(err, &fe) || fe.Func != "f" || fe.Stage != "allocate" {
		t.Errorf("panicking allocator: err = %v, want *FuncError{f, allocate}", err)
	}
}

// TestTrustedCostModelModuleRuns: an engine built with WithTrustedCostModel
// behaves identically on the single-function and module entry points — the
// deferred (unvalidated) model is the caller's responsibility on both.
func TestTrustedCostModelModuleRuns(t *testing.T) {
	m := irgen.GenerateModule(4, 4)
	eng, err := regalloc.New(regalloc.WithRegisters(4),
		regalloc.WithCostModel(regalloc.NewCostModel(2, 1)),
		regalloc.WithTrustedCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AllocateModule(context.Background(), m); err != nil {
		t.Errorf("trusted cost model rejected by the module path: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	if err := regalloc.Register("test-reg-a", func() regalloc.Allocator { return overAllocator{} }); err != nil {
		t.Fatal(err)
	}
	// Double registration, exact and case-folded.
	if err := regalloc.Register("test-reg-a", func() regalloc.Allocator { return overAllocator{} }); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("double registration: err = %v, want ErrInvalidConfig", err)
	}
	if err := regalloc.Register("TEST-REG-A", func() regalloc.Allocator { return overAllocator{} }); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("case-folded double registration: err = %v, want ErrInvalidConfig", err)
	}
	if err := regalloc.Register("", func() regalloc.Allocator { return overAllocator{} }); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("empty name: err = %v, want ErrInvalidConfig", err)
	}
	if err := regalloc.Register("test-reg-nilf", nil); !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("nil factory: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := regalloc.NewAllocator("definitely-not-registered"); !errors.Is(err, regalloc.ErrUnknownAllocator) {
		t.Errorf("unknown name: err = %v, want ErrUnknownAllocator", err)
	}

	names := regalloc.Allocators()
	for _, builtin := range []string{"NL", "BL", "FPL", "BFPL", "LH", "GC", "DLS", "BLS", "Optimal"} {
		found := false
		for _, n := range names {
			if n == builtin {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in %s missing from Allocators() = %v", builtin, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Allocators() not sorted/deduplicated: %v", names)
		}
	}
}

// TestEngineConcurrentUse: one engine, many goroutines — the scratch pool
// must keep results correct and race-free (run under -race in CI).
func TestEngineConcurrentUse(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4))
	if err != nil {
		t.Fatal(err)
	}
	m := irgen.GenerateModule(11, 40)
	want := make([]string, len(m.Funcs))
	for i, f := range m.Funcs {
		out, err := eng.AllocateFunc(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprintf("%v/%.1f", out.SpilledValues, out.SpillCost)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8*len(m.Funcs))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine regenerates its own module: functions are
			// annotated in place during allocation, so concurrent calls
			// must not share *Func objects (the same contract the module
			// pipeline follows by partitioning indexes).
			own := irgen.GenerateModule(11, 40)
			for i, f := range own.Funcs {
				out, err := eng.AllocateFunc(context.Background(), f)
				if err != nil {
					errs <- err
					return
				}
				if got := fmt.Sprintf("%v/%.1f", out.SpilledValues, out.SpillCost); got != want[i] {
					errs <- fmt.Errorf("func %s: concurrent result %s differs from sequential %s", f.Name, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAllocateModuleMatchesPipeline pins the façade to the internal batch
// pipeline byte for byte: the corpus modules plus 100 generated seeds must
// produce identical detailed reports through regalloc.AllocateModule and
// pipeline.RunModule.
func TestAllocateModuleMatchesPipeline(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, m *irx.Module) {
		t.Helper()
		got, err := eng.AllocateModule(context.Background(), m)
		if err != nil {
			t.Fatalf("%s: façade: %v", name, err)
		}
		want, err := pipeline.RunModule(context.Background(), m, pipeline.Config{Registers: 4, Jobs: 4})
		if err != nil {
			t.Fatalf("%s: pipeline: %v", name, err)
		}
		if g, w := regalloc.FormatResults(got, true), pipeline.FormatResults(want, true); g != w {
			t.Errorf("%s: façade output differs from pipeline.RunModule:\n--- façade\n%s\n--- pipeline\n%s", name, g, w)
		}
	}

	dir := filepath.Join("..", "internal", "ir", "testdata", "modules")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corpus := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ir") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		m, err := irx.ParseModule(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		check(e.Name(), m)
		corpus++
	}
	if corpus == 0 {
		t.Fatal("no corpus modules found")
	}
	for seed := int64(1); seed <= 100; seed++ {
		check(fmt.Sprintf("seed-%d", seed), irgen.GenerateModule(seed, 5))
	}
}

// TestAllocateStream: the streaming form yields the same results in module
// order and honours mid-stream cancellation with the typed error.
func TestAllocateStream(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	m := irgen.GenerateModule(77, 30)
	batch, err := eng.AllocateModule(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	var got []regalloc.FuncResult
	err = eng.AllocateStream(context.Background(), m, func(r regalloc.FuncResult) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if regalloc.FormatResults(got, true) != regalloc.FormatResults(batch, true) {
		t.Error("stream results differ from batch results")
	}

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err = eng.AllocateStream(ctx, m, func(r regalloc.FuncResult) error {
		if n++; n == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, regalloc.ErrCanceled) {
		t.Errorf("canceled stream: err = %v, want ErrCanceled", err)
	}
}

// TestAllocateModuleCancellation: the typed partial-result contract at the
// façade level.
func TestAllocateModuleCancellation(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := irgen.GenerateModule(9, 10)
	results, err := eng.AllocateModule(ctx, m)
	if !errors.Is(err, regalloc.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(results) != len(m.Funcs) {
		t.Fatalf("partial results length %d, want %d", len(results), len(m.Funcs))
	}
	for i := range results {
		if results[i].Err == nil && results[i].Outcome == nil {
			t.Fatalf("result %d has neither outcome nor error", i)
		}
	}
}
