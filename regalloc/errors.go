package regalloc

import "repro/internal/raerr"

// The typed error taxonomy. Every failure the public API returns wraps one
// of these sentinels (or *FuncError), so clients dispatch with errors.Is
// and errors.As instead of matching message strings.
var (
	// ErrInvalidConfig tags configuration errors: a register count below 1,
	// a malformed cost model, a negative worker count, an empty module.
	ErrInvalidConfig = raerr.ErrInvalidConfig

	// ErrUnknownAllocator tags WithAllocator names that match no registered
	// allocator. Its message lists the registered names.
	ErrUnknownAllocator = raerr.ErrUnknownAllocator

	// ErrNotSSA tags failures that require strict SSA form: a function
	// declared `ssa` violating single definitions or dominance of uses, or
	// a chordal-only allocator (NL, BL, FPL, BFPL) applied to a function
	// whose interference structure is not chordal.
	ErrNotSSA = raerr.ErrNotSSA

	// ErrPressureUnsatisfiable tags allocation results that violate the
	// register-pressure constraints — more than R simultaneously-live
	// values kept, or assignment running out of registers. The built-in
	// allocators never produce it; a custom Register'ed allocator can.
	ErrPressureUnsatisfiable = raerr.ErrPressureUnsatisfiable

	// ErrCanceled tags module runs interrupted by context cancellation.
	// Errors carrying it also wrap the context's own error, so
	// errors.Is(err, context.Canceled) keeps working too.
	ErrCanceled = raerr.ErrCanceled

	// ErrMachineMismatch tags machine-constrained runs over functions whose
	// annotations the configured machine cannot express: a value in a class
	// the machine lacks, or a pre-color outside the class capacity.
	ErrMachineMismatch = raerr.ErrMachineMismatch

	// ErrBudgetExceeded tags runs that exhausted a WithBudget resource
	// budget — the wall-clock deadline, the work-step budget, or the
	// max-values/max-blocks admission gate. Errors carrying it are
	// *BudgetError values recording the tripping stage and the spend. With
	// WithDegradation the engine converts the trip into a degraded-but-
	// correct Outcome (Outcome.Degraded non-nil) instead of this error.
	ErrBudgetExceeded = raerr.ErrBudgetExceeded
)

// BudgetError details a resource-budget violation: the pipeline stage that
// tripped, the work spent against the step limit, and the elapsed wall-clock
// time against the deadline. It wraps ErrBudgetExceeded.
type BudgetError = raerr.BudgetError

// FuncError is a failure localized to one function of a run: the function
// name, the pipeline stage that failed ("validate", "allocate", "assign",
// "rewrite", "constrain"), and the underlying cause, which errors.Is/As
// see through.
type FuncError = raerr.FuncError
