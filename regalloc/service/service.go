// Package service is the public face of the long-lived allocation server
// (internal/server): the paper's decoupled spill-then-assign pipeline as a
// network service with bounded admission, per-request deadlines,
// Prometheus-style metrics and graceful drain — plus the JSONL
// request/response schema it shares with the cmd/allocbatch streaming
// mode, and the bounded per-configuration engine table both front-ends
// serve from.
//
// Endpoints (see New and Config):
//
//	POST /v1/allocate   one Request in, one Response out
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness: 200 while the process serves at all
//	GET  /readyz        readiness: 503 while draining or saturated
//
// A Config with an active Budget bounds every allocation's resources;
// with Degrade set, over-budget functions are served from a degradation
// ladder (Response.Degraded names the rung) instead of failing. Client is
// the matching resilient caller: retries with jittered exponential
// backoff, Retry-After pushback, per-attempt deadlines and a total retry
// budget.
package service

import "repro/internal/server"

// Request is one allocation request: a single function (IR) or a whole
// compilation unit (Module), with optional per-request register/allocator
// overrides; "stats":true asks for the service counters instead.
type Request = server.Request

// Response is one allocation response; module requests carry one entry
// per function under Results. Failures are in-band via Error.
type Response = server.Response

// CoalesceInfo is the per-function move report a coalescing-biased
// allocation carries on its Response: total move/φ copy cost, the share the
// biased assignment eliminated at identical spill cost, and the residual.
type CoalesceInfo = server.CoalesceInfo

// ServiceStats is the payload of a "stats":true response.
type ServiceStats = server.ServiceStats

// EngineCache is the bounded per-(registers, allocator) engine table the
// service resolves requests against (LRU-evicted at EngineCacheCap).
type EngineCache = server.EngineCache

// EngineCacheCap is the engine-table bound.
const EngineCacheCap = server.EngineCacheCap

// NewEngineCache builds an engine table; a non-nil shared outcome cache is
// attached to every engine, jobs is the module-request worker count.
var NewEngineCache = server.NewEngineCache

// Observer receives serving telemetry from Do (stage latencies,
// per-function outcomes); nil is valid.
type Observer = server.Observer

// DegradationObserver is an optional Observer extension receiving
// degradation-ladder and budget-exhaustion events from budget-governed
// engines.
type DegradationObserver = server.DegradationObserver

// CoalesceObserver is an optional Observer extension receiving per-function
// move-elimination reports from coalescing-biased allocations.
type CoalesceObserver = server.CoalesceObserver

// Do serves one request against an engine table — the single-request core
// shared by the HTTP server and the allocbatch JSONL mode.
var Do = server.Do

// Stage names reported to an Observer.
const (
	StageDecode   = server.StageDecode
	StageParse    = server.StageParse
	StageAllocate = server.StageAllocate
	StageEncode   = server.StageEncode
)

// Config parameterizes a Server: defaults (registers, allocator), the
// module-request worker count, outcome-cache capacity, the in-flight
// admission bound, the per-request timeout and the drain deadline.
type Config = server.Config

// Server is one allocation-service instance; construct with New.
type Server = server.Server

// New validates cfg and builds a ready-to-serve Server.
var New = server.New

// Defaults for zero Config fields.
const (
	DefaultMaxInFlight    = server.DefaultMaxInFlight
	DefaultRequestTimeout = server.DefaultRequestTimeout
	DefaultDrainTimeout   = server.DefaultDrainTimeout
	DefaultMaxBodyBytes   = server.DefaultMaxBodyBytes
)

// Client is a resilient caller for the allocation service: jittered
// exponential backoff over transient failures, Retry-After pushback,
// per-attempt deadlines and a total retry budget.
type Client = server.Client

// AttemptError is the typed failure of an exhausted Client.Allocate.
type AttemptError = server.AttemptError

// RetryableStatus reports whether an HTTP status is worth retrying.
var RetryableStatus = server.RetryableStatus

// Client defaults.
const (
	DefaultMaxAttempts    = server.DefaultMaxAttempts
	DefaultBaseBackoff    = server.DefaultBaseBackoff
	DefaultMaxBackoff     = server.DefaultMaxBackoff
	DefaultAttemptTimeout = server.DefaultAttemptTimeout
)
