package regalloc_test

import (
	"context"
	"errors"
	"testing"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

// TestEngineCacheByteIdentity: the public engine's headline cache claim —
// reports with a cache attached (cold and warm passes alike) are
// byte-identical to a cache-free engine's, over a duplication-heavy module.
func TestEngineCacheByteIdentity(t *testing.T) {
	m := workload.GenDuplicated(1234, 80, 0.8)

	plain, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	base, err := plain.AllocateModule(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	want := regalloc.FormatResults(base, true)

	cached, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(2), regalloc.WithCache(512))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 1; pass <= 3; pass++ {
		results, err := cached.AllocateModule(context.Background(), m)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if got := regalloc.FormatResults(results, true); got != want {
			t.Fatalf("pass %d: cached engine report differs from cache-free engine", pass)
		}
	}
	s := cached.CacheStats()
	if s.Hits == 0 {
		t.Errorf("three passes over an 80%%-duplicated module produced no hits: %+v", s)
	}
	if s.Entries == 0 || s.Entries > s.Capacity {
		t.Errorf("resident entries %d out of range (0, %d]", s.Entries, s.Capacity)
	}
}

// TestEngineCachedAllocateFunc: single-function calls consult the cache
// (2Q: second sighting admits, third call hits) and hits stay
// byte-identical through the detailed report.
func TestEngineCachedAllocateFunc(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(3), regalloc.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	f := workload.GenerateFunc(99)
	var first *regalloc.Outcome
	for i := 0; i < 3; i++ {
		out, err := eng.AllocateFunc(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = out
			continue
		}
		got := regalloc.FormatResults([]regalloc.FuncResult{{Name: f.Name, Outcome: out}}, true)
		want := regalloc.FormatResults([]regalloc.FuncResult{{Name: f.Name, Outcome: first}}, true)
		if got != want {
			t.Fatalf("call %d: outcome differs from the first call", i+1)
		}
	}
	s := eng.CacheStats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses over three identical calls", s)
	}
}

// TestWithSharedCache: engines with the same configuration share entries;
// an engine with a different configuration sharing the same cache never
// cross-serves (keys fold the config), and its results stay correct.
func TestWithSharedCache(t *testing.T) {
	shared := regalloc.NewCache(256)
	mk := func(r int) *regalloc.Engine {
		t.Helper()
		eng, err := regalloc.New(regalloc.WithRegisters(r), regalloc.WithSharedCache(shared))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b, other := mk(4), mk(4), mk(2)

	f := workload.GenerateFunc(7)
	ctx := context.Background()
	// Engine a: miss, miss (admits on the second sighting).
	for i := 0; i < 2; i++ {
		if _, err := a.AllocateFunc(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore := shared.Stats().Hits
	outB, err := b.AllocateFunc(ctx, f) // same config: must hit a's entry
	if err != nil {
		t.Fatal(err)
	}
	if shared.Stats().Hits != hitsBefore+1 {
		t.Fatal("same-config engine did not hit the shared entry")
	}

	outOther, err := other.AllocateFunc(ctx, f) // different R: must not cross-serve
	if err != nil {
		t.Fatal(err)
	}
	if outOther.Problem.R != 2 || outB.Problem.R != 4 {
		t.Fatalf("cross-served outcome: R=%d served to an R=2 engine", outOther.Problem.R)
	}

	// CacheStats on a shared cache reads the same counters from any engine.
	if a.CacheStats() != b.CacheStats() {
		t.Fatal("engines sharing one cache report different stats")
	}
}

// TestCacheConfigErrors: WithCache and WithSharedCache are mutually
// exclusive, negative capacities are rejected, and both failures carry
// ErrInvalidConfig.
func TestCacheConfigErrors(t *testing.T) {
	_, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithCache(-1))
	if !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("WithCache(-1): err = %v, want ErrInvalidConfig", err)
	}
	_, err = regalloc.New(regalloc.WithRegisters(4),
		regalloc.WithCache(16), regalloc.WithSharedCache(regalloc.NewCache(16)))
	if !errors.Is(err, regalloc.ErrInvalidConfig) {
		t.Errorf("WithCache+WithSharedCache: err = %v, want ErrInvalidConfig", err)
	}
}

// TestCacheStatsWithoutCache: a cache-free engine reports the zero stats.
func TestCacheStatsWithoutCache(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4))
	if err != nil {
		t.Fatal(err)
	}
	if s := eng.CacheStats(); s != (regalloc.CacheStats{}) {
		t.Fatalf("cache-free engine reports non-zero stats: %+v", s)
	}
}

// TestAllocateModuleIncremental drives the public incremental API through
// a mutate-and-recompile loop: full results every revision, reuse marked
// Cached, and bytes identical to a from-scratch run of each revision.
func TestAllocateModuleIncremental(t *testing.T) {
	eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := workload.GenerateModule(55, 30)

	r1, rev1, err := eng.AllocateModuleIncremental(ctx, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rev1.Len() != len(m.Funcs) {
		t.Fatalf("revision 1 holds %d outcomes, want %d", rev1.Len(), len(m.Funcs))
	}
	for i := range r1 {
		if r1[i].Cached {
			t.Fatalf("first revision marked %s cached with a nil previous revision", r1[i].Name)
		}
	}

	// Swap one function body, keep the rest.
	m2 := &irx.Module{Funcs: append([]*irx.Func(nil), m.Funcs...)}
	m2.Funcs[11] = irx.MustParse(`
func swapped ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}`)
	r2, rev2, err := eng.AllocateModuleIncremental(ctx, m2, rev1)
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	for i := range r2 {
		if r2[i].Cached {
			reused++
		}
	}
	if reused != len(m.Funcs)-1 {
		t.Fatalf("reused %d functions, want %d", reused, len(m.Funcs)-1)
	}
	if rev2.Len() != len(m.Funcs) {
		t.Fatalf("revision 2 holds %d outcomes, want %d", rev2.Len(), len(m.Funcs))
	}

	scratch, err := eng.AllocateModule(ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	if regalloc.FormatResults(r2, true) != regalloc.FormatResults(scratch, true) {
		t.Fatal("incremental revision differs from a from-scratch run")
	}
}
