// Package verifier is the public face of the semantic verification
// harness: differential checking of the allocator pipeline against a
// reference interpreter. For one function, every allocator and every
// register count it asserts allocation soundness (≤ R simultaneously-live
// kept values), assignment soundness (no register shared by interfering
// values) and semantic preservation (the spill-everywhere rewrite computes
// the same results on concrete inputs). See cmd/verify for the CLI.
package verifier

import (
	"repro/internal/arch"
	"repro/internal/verify"
	"repro/regalloc/irx"
)

// Options configures a check run. The zero value sweeps the default
// register counts, every registered allocator and the default inputs.
type Options = verify.Options

// Failure is one invariant violation, carrying enough context (seed,
// allocator, register count, input vector) to replay it deterministically.
type Failure = verify.Failure

// CheckFunc runs the full differential matrix over f and returns the
// first failure, or nil.
func CheckFunc(f *irx.Func, opts Options) error { return verify.CheckFunc(f, opts) }

// CheckModule runs the differential matrix over every function of m in
// module order, returning the first failure.
func CheckModule(m *irx.Module, opts Options) error { return verify.CheckModule(m, opts) }

// CheckSeed generates the function for one generator seed (the same
// generator as workload.GenerateFunc) and checks it.
func CheckSeed(seed int64, opts Options) error { return verify.CheckSeed(seed, opts) }

// Soak checks n generated functions starting at the base seed, stopping
// after maxFail failures; report, when non-nil, observes progress after
// every function.
func Soak(base int64, n int, opts Options, maxFail int, report func(done, failed int)) []*Failure {
	return verify.Soak(base, n, opts, maxFail, report)
}

// SoakConstrained runs the machine-constrained differential soak: for each
// seed a constrained program (register classes, pre-colored ABI parameters,
// call clobbers) is generated per named machine and register count, and
// checked for per-class pressure, class membership, honored pre-colors,
// clobber avoidance, and semantic preservation under both the plain and the
// clobber-modelling interpreter. machines is a list of registered machine
// names (see regalloc.MachineNames); nil or empty sweeps every machine. An
// unknown name is an immediate error.
func SoakConstrained(base int64, n int, machines []string, opts Options, maxFail int, report func(done, failed int)) ([]*Failure, error) {
	var ms []arch.Machine
	for _, name := range machines {
		m, err := arch.ByName(name)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return verify.SoakConstrained(base, n, ms, opts, maxFail, report), nil
}

// RungCoverage tallies which degradation-ladder rungs a degraded soak
// exercised; Complete reports whether both the linear-scan and the
// spill-all rung were hit.
type RungCoverage = verify.RungCoverage

// NewRungCoverage returns an empty tally for the degraded soaks.
func NewRungCoverage() RungCoverage { return verify.RungCoverage{} }

// CheckDegradedSeed verifies the degradation ladder on one generated
// function: a budget sweep derived from the function's own measured spend
// forces trips at every stage, and every degraded outcome must satisfy the
// full correctness matrix (pressure, assignment soundness, semantic
// preservation) while naming its rung. cov, when non-nil, tallies the rungs
// exercised.
func CheckDegradedSeed(seed int64, opts Options, cov RungCoverage) error {
	return verify.CheckDegradedSeed(seed, opts, cov)
}

// SoakDegraded runs the degradation-ladder soak over n generated functions
// starting at the base seed: every budget-governed outcome must be
// degraded-but-correct, never wrong and never an error. It returns the
// failures and the rung coverage tally.
func SoakDegraded(base int64, n int, opts Options, maxFail int, report func(done, failed int)) ([]*Failure, RungCoverage) {
	return verify.SoakDegraded(base, n, opts, maxFail, report)
}

// SoakConstrainedDegraded is SoakDegraded under machine constraints:
// degraded outcomes must additionally honor register classes, pre-colors
// and call clobbers. machines follows SoakConstrained (nil sweeps all).
func SoakConstrainedDegraded(base int64, n int, machines []string, opts Options, maxFail int, report func(done, failed int)) ([]*Failure, RungCoverage, error) {
	var ms []arch.Machine
	for _, name := range machines {
		m, err := arch.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		ms = append(ms, m)
	}
	fails, cov := verify.SoakConstrainedDegraded(base, n, ms, opts, maxFail, report)
	return fails, cov, nil
}
