package verifier_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/verifier"
	"repro/regalloc/workload"
)

// Every test passes an explicit allocator list: the registry is global to
// the test binary, and the zero Options sweep all registered names — which
// would include the deliberately broken allocator below.
var goodOpts = verifier.Options{
	Registers:  []int{2, 4},
	Allocators: []string{"BFPL", "LH", "NL"},
}

// keepAll is a deliberately unsound allocator: it keeps every value in a
// register regardless of pressure, violating allocation soundness whenever
// MaxLive exceeds R.
type keepAll struct{}

func (keepAll) Name() string { return "keepall-test" }

func (keepAll) Allocate(p *regalloc.Problem) *regalloc.Result {
	keep := make([]bool, p.N())
	for i := range keep {
		keep[i] = true
	}
	return &regalloc.Result{Allocated: keep, Allocator: "keepall-test"}
}

var registerKeepAll = sync.OnceValue(func() error {
	return regalloc.Register("keepall-test", func() regalloc.Allocator { return keepAll{} })
})

// pressured is a function with MaxLive 3: a, b, c are live together at the
// first arith.
const pressured = `func pressured ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  ret e
}`

func TestCheckFuncPasses(t *testing.T) {
	f, err := irx.Parse(pressured)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.CheckFunc(f, goodOpts); err != nil {
		t.Errorf("sound allocators failed verification: %v", err)
	}
}

func TestCheckFuncCatchesUnsoundAllocator(t *testing.T) {
	if err := registerKeepAll(); err != nil {
		t.Fatal(err)
	}
	f, err := irx.Parse(pressured)
	if err != nil {
		t.Fatal(err)
	}
	err = verifier.CheckFunc(f, verifier.Options{
		Registers:  []int{2}, // MaxLive is 3: keeping everything is unsound
		Allocators: []string{"keepall-test"},
	})
	if err == nil {
		t.Fatal("over-allocating allocator passed verification")
	}
	var fail *verifier.Failure
	if !errors.As(err, &fail) {
		t.Fatalf("error is %T (%v), want *verifier.Failure", err, err)
	}
	if fail.Allocator != "keepall-test" || fail.R != 2 || fail.Func != "pressured" {
		t.Errorf("failure context incomplete: %+v", fail)
	}
	if fail.Detail == "" || fail.Error() == "" {
		t.Errorf("failure carries no detail: %+v", fail)
	}
	if !strings.Contains(fail.Error(), "keepall-test") {
		t.Errorf("Error() misses the allocator name: %s", fail.Error())
	}
}

func TestCheckModule(t *testing.T) {
	m := workload.GenerateModule(11, 6)
	if err := verifier.CheckModule(m, goodOpts); err != nil {
		t.Errorf("generated module failed verification: %v", err)
	}
}

func TestCheckSeedAndSoak(t *testing.T) {
	if err := verifier.CheckSeed(42, goodOpts); err != nil {
		t.Errorf("seed 42: %v", err)
	}
	var reports int
	fails := verifier.Soak(100, 3, goodOpts, 1, func(done, failed int) { reports++ })
	if len(fails) != 0 {
		t.Errorf("soak found %d failures on sound allocators: %v", len(fails), fails[0])
	}
	if reports != 3 {
		t.Errorf("progress reported %d times, want 3", reports)
	}
}
