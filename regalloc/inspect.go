package regalloc

import (
	"fmt"
	"io"

	"repro/internal/ifg"
	"repro/internal/liveness"
	"repro/internal/raerr"
	"repro/internal/spillcost"
	"repro/regalloc/irx"
)

// Inspection is a diagnostic view of one function's interference
// structure: graph size, register pressure, chordality, and the pressure
// constraints by value name. Produced by Inspect; the graphtool CLI is a
// thin printer over it.
type Inspection struct {
	// F is the inspected function (annotated in place with loop depths).
	F *irx.Func
	// Vertices and Edges size the interference graph (vertices are the
	// allocable values).
	Vertices, Edges int
	// MaxLive is the peak register pressure.
	MaxLive int
	// Chordal reports whether the interference graph is chordal (always
	// true for strict-SSA functions).
	Chordal bool
	// CliqueCount and CliqueNumber are the number of maximal cliques and
	// the largest maximal-clique size (chordal instances only).
	CliqueCount, CliqueNumber int
	// PressureSets are the register-pressure constraints as sorted sets of
	// value names: the maximal cliques for chordal SSA instances, the
	// distinct program-point live sets otherwise.
	PressureSets [][]string

	build *ifg.Build
	costs []float64
}

// Inspect validates f and materializes its explicit interference graph
// with the default cost model — the diagnostic path; allocation itself
// uses the IFG-free fast path wherever possible.
func Inspect(f *irx.Func) (*Inspection, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil function", raerr.ErrInvalidConfig)
	}
	dom, err := f.ValidateAnalyzed()
	if err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "validate",
			Err: fmt.Errorf("invalid input function: %w", err)}
	}
	f.ComputeLoops(dom)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	ins := &Inspection{
		F:        f,
		Vertices: b.Graph.N(),
		Edges:    b.Graph.M(),
		MaxLive:  b.MaxLive,
		build:    b,
		costs:    spillcost.Costs(f, spillcost.DefaultModel),
	}
	order := b.Graph.PerfectEliminationOrder()
	ins.Chordal = b.Graph.IsPerfectEliminationOrder(order)
	sets := b.LiveSets
	if ins.Chordal {
		cliques := b.Graph.MaximalCliques(order)
		ins.CliqueCount = len(cliques)
		ins.CliqueNumber = b.Graph.CliqueNumber(order)
		if f.SSA {
			// The clique ↔ live-set correspondence only holds for strict
			// SSA; an accidentally chordal non-SSA graph keeps its
			// program-point live sets as the honest constraints.
			sets = cliques
		}
	}
	ins.PressureSets = make([][]string, len(sets))
	for i, ls := range sets {
		ins.PressureSets[i] = b.Names(ls)
	}
	return ins, nil
}

// SpillCost returns the default-model spill cost of the named pipeline
// vertex v (0 ≤ v < Vertices).
func (ins *Inspection) SpillCost(v int) float64 { return ins.costs[ins.build.ValueOf[v]] }

// VertexName returns the value name of vertex v.
func (ins *Inspection) VertexName(v int) string { return ins.F.NameOf(ins.build.ValueOf[v]) }

// WriteDOT emits the interference graph as Graphviz DOT, labelling each
// vertex with its value name and default-model spill cost.
func (ins *Inspection) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph interference {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [shape=ellipse];")
	for v := 0; v < ins.Vertices; v++ {
		fmt.Fprintf(w, "  n%d [label=\"%s\\n%.0f\"];\n", v, ins.VertexName(v), ins.SpillCost(v))
	}
	for v := 0; v < ins.Vertices; v++ {
		for _, u := range ins.build.Graph.Neighbors(v) {
			if u > v {
				fmt.Fprintf(w, "  n%d -- n%d;\n", v, u)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
