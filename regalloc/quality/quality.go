// Package quality is the public face of the committed experiment pipeline
// (internal/quality): the figure-grade quality Report behind the committed
// QUALITY.json / QUALITY.md artifacts — per figure × suite × allocator × R
// normalized spill cost and degraded-instance counts, plus the share of
// dynamic φ/copy move cost that coalescing-biased assignment eliminates at
// equal spill cost — and the tolerance-based Compare gate CI runs so a
// quality regression fails the build like a broken test.
//
// cmd/experiments is the driver: -json/-md write the artifacts, -against
// diffs a fresh run against the committed report.
package quality

import "repro/internal/quality"

// Schema is the QUALITY.json schema version.
const Schema = quality.Schema

// Report is the full quality snapshot of one experiment run.
type Report = quality.Report

// Figure is one suite's normalized-cost sweep (one paper figure).
type Figure = quality.Figure

// Row is one (register count, allocator) cell of a figure.
type Row = quality.Row

// Coalescing is the move-elimination summary for one suite × policy.
type Coalescing = quality.Coalescing

// Options parameterizes Generate; the zero value runs every paper suite.
type Options = quality.Options

// Tolerances bounds the drift Compare accepts (zero fields = defaults).
type Tolerances = quality.Tolerances

// Generate runs the full quality pipeline over the configured suites.
var Generate = quality.Generate

// Compare diffs a fresh report against the committed one, returning an
// error that joins every out-of-tolerance violation.
var Compare = quality.Compare

// Markdown renders the report as the committed QUALITY.md.
var Markdown = quality.Markdown

// Encode serializes a report in the committed artifact's canonical form.
var Encode = quality.Encode

// WriteFile writes the report to path in canonical form.
var WriteFile = quality.WriteFile

// ReadFile loads a committed report, rejecting unknown schema versions.
var ReadFile = quality.ReadFile
