// Package irx is the public IR surface of the regalloc module: the textual
// intermediate representation the allocator consumes (parse, print,
// validate), re-exported from the internal implementation as type aliases so
// values flow between the public API and the IR with no conversion.
//
// A function is a list of basic blocks of three-address instructions over
// virtual registers ("values"), in optional strict SSA form:
//
//	func dot ssa {
//	b0:
//	  n   = param 0
//	  acc = const 0
//	  br b1
//	b1:
//	  i = phi [b0: n], [b2: i2]
//	  ...
//	}
//
// A module is a sequence of such functions with unique names. Parsing and
// printing round-trip: Parse(f.String()) reproduces f exactly.
package irx

import "repro/internal/ir"

// Core IR types, aliased so *irx.Func and the internal *ir.Func are the
// same type.
type (
	// Func is one function: blocks, value names, SSA flag.
	Func = ir.Func
	// Module is a multi-function compilation unit.
	Module = ir.Module
	// Block is one basic block: instructions plus CFG edges.
	Block = ir.Block
	// Instr is one three-address instruction.
	Instr = ir.Instr
	// Op enumerates the instruction opcodes.
	Op = ir.Op
	// Dominance is a function's dominance tree (ComputeDominance).
	Dominance = ir.Dominance
	// DefSite locates one definition of a value.
	DefSite = ir.DefSite
)

// NoValue marks the absence of a defined value in an Instr.
const NoValue = ir.NoValue

// The instruction set.
const (
	OpConst  = ir.OpConst
	OpParam  = ir.OpParam
	OpArith  = ir.OpArith
	OpUnary  = ir.OpUnary
	OpCopy   = ir.OpCopy
	OpPhi    = ir.OpPhi
	OpLoad   = ir.OpLoad
	OpStore  = ir.OpStore
	OpCall   = ir.OpCall
	OpBranch = ir.OpBranch
	OpCondBr = ir.OpCondBr
	OpReturn = ir.OpReturn
	OpSpill  = ir.OpSpill
	OpReload = ir.OpReload
)

// Class is a machine register class. Values default to ClassGPR; the
// machine-constraint annotations (!fp, !pin=<reg>, !clobbers=<regs>) move
// values between classes, pre-color them and record call-clobbered
// registers. Func carries the annotations via ClassOf/SetClass,
// PreColorOf/SetPreColor and Instr.Clobbers.
type Class = ir.Class

// The register classes.
const (
	ClassGPR   = ir.ClassGPR
	ClassFP    = ir.ClassFP
	NumClasses = ir.NumClasses
)

// MakeReg encodes (class, index) as one register reference — the currency
// of pre-colors, clobber sets and assignment maps. GPR references equal
// their plain index.
func MakeReg(c Class, i int) int { return ir.MakeReg(c, i) }

// RegClassOf extracts the class of a register reference.
func RegClassOf(ref int) Class { return ir.RegClassOf(ref) }

// RegIndexOf extracts the in-class index of a register reference.
func RegIndexOf(ref int) int { return ir.RegIndexOf(ref) }

// RegName renders a register reference in assembly-style notation
// ("r3", "f1") — the textual form of the !pin and !clobbers annotations.
func RegName(ref int) string { return ir.RegName(ref) }

// ParseRegName parses RegName's notation.
func ParseRegName(s string) (int, bool) { return ir.ParseRegName(s) }

// Parse parses one textual IR function.
func Parse(src string) (*Func, error) { return ir.Parse(src) }

// MustParse is Parse, panicking on error (tests and examples).
func MustParse(src string) *Func { return ir.MustParse(src) }

// ParseModule parses a textual IR module: one or more functions with
// unique names.
func ParseModule(src string) (*Module, error) { return ir.ParseModule(src) }

// MustParseModule is ParseModule, panicking on error.
func MustParseModule(src string) *Module { return ir.MustParseModule(src) }
