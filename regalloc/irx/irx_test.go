package irx_test

import (
	"testing"

	"repro/regalloc/irx"
)

// TestAliasesRoundTrip: the public IR surface is the internal one (type
// aliases), so parse → print → parse round-trips through irx exactly.
func TestAliasesRoundTrip(t *testing.T) {
	src := `func f ssa {
b0:
  a = param 0
  b = arith a, a
  c = unary b
  condbr c, b1, b2
b1:
  d = arith b, a
  br b2
b2:
  e = phi [b0: b], [b1: d]
  ret e
}
`
	f, err := irx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SSA || f.Name != "f" {
		t.Fatalf("parsed func = {Name: %q, SSA: %v}", f.Name, f.SSA)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	printed := f.String()
	again, err := irx.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.String() != printed {
		t.Error("print ∘ parse not idempotent through irx")
	}
}

func TestModuleParse(t *testing.T) {
	m, err := irx.ParseModule(`
func a ssa {
b0:
  x = param 0
  ret x
}

func b ssa {
b0:
  y = param 0
  ret y
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 || m.Funcs[0].Name != "a" || m.Funcs[1].Name != "b" {
		t.Fatalf("module funcs wrong: %d", len(m.Funcs))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodesExported(t *testing.T) {
	// The opcode constants must be the internal values (aliased consts).
	f := irx.MustParse(`func f ssa {
b0:
  a = param 0
  ret a
}`)
	if got := f.Blocks[0].Instrs[0].Op; got != irx.OpParam {
		t.Errorf("first op = %v, want OpParam", got)
	}
	if got := f.Blocks[0].Instrs[1].Op; got != irx.OpReturn {
		t.Errorf("last op = %v, want OpReturn", got)
	}
	if !irx.OpBranch.IsTerminator() || irx.OpArith.IsTerminator() {
		t.Error("IsTerminator misbehaves through the alias")
	}
}
