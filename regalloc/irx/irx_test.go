package irx_test

import (
	"strings"
	"testing"

	"repro/regalloc/irx"
)

// TestAliasesRoundTrip: the public IR surface is the internal one (type
// aliases), so parse → print → parse round-trips through irx exactly.
func TestAliasesRoundTrip(t *testing.T) {
	src := `func f ssa {
b0:
  a = param 0
  b = arith a, a
  c = unary b
  condbr c, b1, b2
b1:
  d = arith b, a
  br b2
b2:
  e = phi [b0: b], [b1: d]
  ret e
}
`
	f, err := irx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SSA || f.Name != "f" {
		t.Fatalf("parsed func = {Name: %q, SSA: %v}", f.Name, f.SSA)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	printed := f.String()
	again, err := irx.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.String() != printed {
		t.Error("print ∘ parse not idempotent through irx")
	}
}

func TestModuleParse(t *testing.T) {
	m, err := irx.ParseModule(`
func a ssa {
b0:
  x = param 0
  ret x
}

func b ssa {
b0:
  y = param 0
  ret y
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 || m.Funcs[0].Name != "a" || m.Funcs[1].Name != "b" {
		t.Fatalf("module funcs wrong: %d", len(m.Funcs))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAnnotationsRoundTrip: the machine-constraint annotations — register
// classes (!fp), pre-colored ABI values (!pin) and call clobbers
// (!clobbers) — survive parse → print → parse through the public surface,
// and the accessor methods agree with the textual form.
func TestAnnotationsRoundTrip(t *testing.T) {
	src := `func g ssa {
b0:
  a = param 0 !pin=r0
  b = param 1 !pin=r1
  c = unary a !fp
  d = call b !clobbers=r0,r1,f0
  e = arith b, d
  ret e
}
`
	f, err := irx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if !f.Constrained() {
		t.Error("annotated function does not report Constrained")
	}
	if c := f.ClassOf(2); c != irx.ClassFP {
		t.Errorf("class of c = %v, want fp", c)
	}
	if c := f.ClassOf(0); c != irx.ClassGPR {
		t.Errorf("class of a = %v, want gpr (default)", c)
	}
	pin, ok := f.PreColorOf(1)
	if !ok || pin != irx.MakeReg(irx.ClassGPR, 1) {
		t.Errorf("pre-color of b = (%d, %v), want r1", pin, ok)
	}
	if _, ok := f.PreColorOf(2); ok {
		t.Error("unpinned value reports a pre-color")
	}
	wantClob := []int{
		irx.MakeReg(irx.ClassGPR, 0),
		irx.MakeReg(irx.ClassGPR, 1),
		irx.MakeReg(irx.ClassFP, 0),
	}
	call := f.Blocks[0].Instrs[3]
	if call.Op != irx.OpCall || len(call.Clobbers) != len(wantClob) {
		t.Fatalf("call clobbers = %v, want %v", call.Clobbers, wantClob)
	}
	for i, ref := range wantClob {
		if call.Clobbers[i] != ref {
			t.Errorf("clobber %d = %s, want %s", i, irx.RegName(call.Clobbers[i]), irx.RegName(ref))
		}
	}
	printed := f.String()
	for _, ann := range []string{"!pin=r0", "!pin=r1", "!fp", "!clobbers=r0,r1,f0"} {
		if !strings.Contains(printed, ann) {
			t.Errorf("printed form lost %q:\n%s", ann, printed)
		}
	}
	again, err := irx.Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed form: %v", err)
	}
	if again.String() != printed {
		t.Error("print ∘ parse not idempotent for annotated functions")
	}
}

// TestAnnotationValidate: the validator rejects inconsistent annotations —
// a pre-color whose class disagrees with the value's class, and clobbers on
// a non-call instruction.
func TestAnnotationValidate(t *testing.T) {
	f := irx.MustParse(`func bad ssa {
b0:
  a = param 0
  ret a
}`)
	// SetPreColor keeps the value's class consistent with the pin, so the
	// mismatch needs a later class change behind its back.
	f.SetPreColor(0, irx.MakeReg(irx.ClassGPR, 0))
	f.SetClass(0, irx.ClassFP)
	if err := f.Validate(); err == nil {
		t.Error("fp value pinned to a GPR passed Validate")
	}

	g := irx.MustParse(`func bad2 ssa {
b0:
  a = param 0
  b = unary a
  ret b
}`)
	g.Blocks[0].Instrs[1].Clobbers = []int{0}
	if err := g.Validate(); err == nil {
		t.Error("clobbers on a non-call instruction passed Validate")
	}

	if _, err := irx.Parse("func p ssa {\nb0:\n  a = param 0 !pin=bogus\n  ret a\n}"); err == nil {
		t.Error("bad pin register name parsed")
	}
}

// TestRegNameHelpers: the register-reference coding exported through irx.
func TestRegNameHelpers(t *testing.T) {
	ref := irx.MakeReg(irx.ClassFP, 3)
	if irx.RegClassOf(ref) != irx.ClassFP || irx.RegIndexOf(ref) != 3 {
		t.Errorf("MakeReg/RegClassOf/RegIndexOf disagree on %d", ref)
	}
	if got := irx.RegName(ref); got != "f3" {
		t.Errorf("RegName = %q, want f3", got)
	}
	back, ok := irx.ParseRegName("f3")
	if !ok || back != ref {
		t.Errorf("ParseRegName(f3) = (%d, %v), want (%d, true)", back, ok, ref)
	}
	if r5, ok := irx.ParseRegName("r5"); !ok || r5 != 5 {
		t.Errorf("ParseRegName(r5) = (%d, %v): GPR refs must equal their index", r5, ok)
	}
	if _, ok := irx.ParseRegName("x2"); ok {
		t.Error("ParseRegName accepted an unknown class letter")
	}
}

func TestOpcodesExported(t *testing.T) {
	// The opcode constants must be the internal values (aliased consts).
	f := irx.MustParse(`func f ssa {
b0:
  a = param 0
  ret a
}`)
	if got := f.Blocks[0].Instrs[0].Op; got != irx.OpParam {
		t.Errorf("first op = %v, want OpParam", got)
	}
	if got := f.Blocks[0].Instrs[1].Op; got != irx.OpReturn {
		t.Errorf("last op = %v, want OpReturn", got)
	}
	if !irx.OpBranch.IsTerminator() || irx.OpArith.IsTerminator() {
		t.Error("IsTerminator misbehaves through the alias")
	}
}
