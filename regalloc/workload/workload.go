// Package workload is the public face of the repository's evaluation
// workloads: the paper's synthetic benchmark suites (SPEC CPU 2000int,
// EEMBC, lao-kernels, SPEC JVM98), the deterministic SSA / non-SSA program
// generators behind them, the seeded random-module generator the batch
// pipeline and verification harness use, and the figure-regeneration
// harness of cmd/experiments. Everything is re-exported from the internal
// implementation as aliases, so workload values flow into regalloc and
// irx APIs directly.
package workload

import (
	"io"

	"repro/internal/bench"
	"repro/internal/irgen"
	"repro/regalloc"
	"repro/regalloc/irx"
)

// Program is one named function of a suite.
type Program = bench.Program

// Suite is one workload: named programs plus the register-count sweep the
// paper evaluates it over.
type Suite = bench.Suite

// Instance is one (program, R) cell of a harness run, with the spill cost
// of every allocator in the lineup.
type Instance = bench.Instance

// Shape parameterizes the deterministic SSA program generator.
type Shape = bench.Shape

// NonSSAShape parameterizes the deterministic non-SSA program generator.
type NonSSAShape = bench.NonSSAShape

// SSAExtensionRow is one row of the SSA-construction extension experiment.
type SSAExtensionRow = bench.SSAExtensionRow

// CoalesceRow is one row of the φ-move coalescing extension experiment.
type CoalesceRow = bench.CoalesceRow

// The paper's workload suites and register sweeps.
var (
	SuiteSPEC2000   = bench.SuiteSPEC2000
	SuiteEEMBC      = bench.SuiteEEMBC
	SuiteLAOKernels = bench.SuiteLAOKernels
	SuiteJVM98      = bench.SuiteJVM98
	AllSuites       = bench.AllSuites
	ChordalSweep    = bench.ChordalSweep
	JITSweep        = bench.JITSweep
)

// SuiteByName resolves a suite by name ("spec2000", "eembc", "lao", "jvm98").
func SuiteByName(name string) (Suite, bool) { return bench.SuiteByName(name) }

// GenSSA deterministically generates a strict-SSA function.
func GenSSA(name string, seed int64, shape Shape) *irx.Func { return bench.GenSSA(name, seed, shape) }

// GenNonSSA deterministically generates a non-SSA (multiple-definition)
// function, the JIT-flavoured workload.
func GenNonSSA(name string, seed int64, shape NonSSAShape) *irx.Func {
	return bench.GenNonSSA(name, seed, shape)
}

// GenerateModule deterministically generates a mixed SSA/non-SSA module of
// n functions — the corpus generator of the batch pipeline, throughput
// benchmark and verification soaks.
func GenerateModule(seed int64, n int) *irx.Module { return irgen.GenerateModule(seed, n) }

// GenerateFunc deterministically generates the single function of seed —
// the generator behind the verifier's soak mode.
func GenerateFunc(seed int64) *irx.Func { return irgen.FromSeed(seed) }

// GenGiant deterministically generates a giant strict-SSA function with
// approximately the requested value and block counts, in O(values) time —
// the stress workload of the resource-governance (budget and degradation)
// tests and the allocation-time scaling benchmark.
func GenGiant(name string, seed int64, values, blocks int) *irx.Func {
	return bench.GenGiant(name, seed, values, blocks)
}

// GenDuplicated deterministically generates a module of n functions with a
// controlled duplication rate: each function after the first is, with
// probability dupRate, an alpha-renamed copy of an earlier one. This is
// the corpus shape of redundant JIT / compile-server traffic, and the
// workload behind the outcome-cache benchmarks (BENCH_cache.json).
func GenDuplicated(seed int64, n int, dupRate float64) *irx.Module {
	return irgen.GenDuplicated(seed, n, dupRate)
}

// ChordalAllocators is the paper's chordal lineup (GC, NL, FPL, BL, BFPL,
// Optimal).
func ChordalAllocators() []regalloc.Allocator { return bench.ChordalAllocators() }

// JITAllocators is the paper's non-chordal lineup (DLS, BLS, GC, LH,
// Optimal).
func JITAllocators() []regalloc.Allocator { return bench.JITAllocators() }

// AllocatorNames extracts the lineup names in order.
func AllocatorNames(as []regalloc.Allocator) []string { return bench.AllocatorNames(as) }

// Run sweeps every allocator of the suite's lineup over every program and
// register count, writing per-program progress to progress when non-nil.
func Run(s Suite, progress io.Writer) []*Instance { return bench.Run(s, progress) }

// NormalizedMeans computes, per register count, each allocator's mean
// allocation cost normalized to optimal (the paper's Figures 8–10/14).
func NormalizedMeans(instances []*Instance, allocators []string) map[int]map[string]float64 {
	return bench.NormalizedMeans(instances, allocators)
}

// PerProgramRatios collects the per-program normalized costs (the
// distribution figures 11–13); the int counts skipped undefined ratios.
func PerProgramRatios(instances []*Instance, allocators []string) (map[int]map[string][]float64, int) {
	return bench.PerProgramRatios(instances, allocators)
}

// PerBenchmarkMeans groups normalized costs by benchmark at one register
// count (Figure 15).
func PerBenchmarkMeans(instances []*Instance, allocators []string, r int) map[string]map[string]float64 {
	return bench.PerBenchmarkMeans(instances, allocators, r)
}

// FormatMeansTable renders a NormalizedMeans result as the paper's table.
func FormatMeansTable(means map[int]map[string]float64, allocators []string) string {
	return bench.FormatMeansTable(means, allocators)
}

// FormatDistTable renders a PerProgramRatios result as the paper's
// distribution table.
func FormatDistTable(ratios map[int]map[string][]float64, allocators []string) string {
	return bench.FormatDistTable(ratios, allocators)
}

// FormatPerBenchTable renders a PerBenchmarkMeans result.
func FormatPerBenchTable(per map[string]map[string]float64, allocators []string) string {
	return bench.FormatPerBenchTable(per, allocators)
}

// RunSSAExtension runs the SSA-construction extension experiment over the
// JVM98 methods at the given register counts.
func RunSSAExtension(registers []int) ([]SSAExtensionRow, error) {
	return bench.RunSSAExtension(registers)
}

// FormatSSAExtension renders the extension experiment's table.
func FormatSSAExtension(rows []SSAExtensionRow) string { return bench.FormatSSAExtension(rows) }

// RunCoalesce runs the φ-move coalescing extension experiment.
func RunCoalesce(suites []Suite) []CoalesceRow { return bench.RunCoalesce(suites) }

// FormatCoalesce renders the coalescing experiment's table.
func FormatCoalesce(rows []CoalesceRow) string { return bench.FormatCoalesce(rows) }
