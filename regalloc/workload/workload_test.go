package workload_test

import (
	"context"
	"testing"

	"repro/regalloc"
	"repro/regalloc/workload"
)

func TestGenerateModuleDeterministic(t *testing.T) {
	a := workload.GenerateModule(7, 12)
	b := workload.GenerateModule(7, 12)
	if len(a.Funcs) != 12 {
		t.Fatalf("generated %d functions, want 12", len(a.Funcs))
	}
	if a.String() != b.String() {
		t.Error("same seed generated different modules")
	}
	if c := workload.GenerateModule(8, 12); a.String() == c.String() {
		t.Error("different seeds generated identical modules")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	shape := workload.Shape{Params: 3, Segments: 4, MaxDepth: 2, StraightLen: 6, LoopProb: 0.4, BranchProb: 0.4, Carried: 2}
	f1 := workload.GenSSA("g", 5, shape)
	f2 := workload.GenSSA("g", 5, shape)
	if f1.String() != f2.String() {
		t.Error("GenSSA is not deterministic")
	}
	if !f1.SSA {
		t.Error("GenSSA generated a non-SSA function")
	}

	nshape := workload.NonSSAShape{Vars: 6, Params: 2, Segments: 3, MaxDepth: 2, StraightLen: 5, LoopProb: 0.3, BranchProb: 0.4}
	n1 := workload.GenNonSSA("h", 5, nshape)
	n2 := workload.GenNonSSA("h", 5, nshape)
	if n1.String() != n2.String() {
		t.Error("GenNonSSA is not deterministic")
	}

	s1 := workload.GenerateFunc(123)
	s2 := workload.GenerateFunc(123)
	if s1.String() != s2.String() {
		t.Error("GenerateFunc is not deterministic")
	}
}

// TestGenDuplicatedRate: the duplication knob controls content-level
// redundancy, observable through the outcome cache — alpha-renamed copies
// hit, unique bodies miss.
func TestGenDuplicatedRate(t *testing.T) {
	const n = 60
	hits := func(dup float64) uint64 {
		t.Helper()
		m := workload.GenDuplicated(21, n, dup)
		if len(m.Funcs) != n {
			t.Fatalf("generated %d functions, want %d", len(m.Funcs), n)
		}
		eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithCache(4 * n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.AllocateModule(context.Background(), m); err != nil {
			t.Fatal(err)
		}
		return eng.CacheStats().Hits
	}
	if h := hits(0); h != 0 {
		t.Errorf("dupRate=0 produced %d cache hits, want 0 (all bodies unique)", h)
	}
	// With 90% duplication over 60 functions, a run must hit the cache many
	// times; 2Q admission costs the second sighting of each body, so the
	// bound is loose.
	if h := hits(0.9); h < 10 {
		t.Errorf("dupRate=0.9 produced only %d cache hits, want ≥ 10", h)
	}
}

func TestSuites(t *testing.T) {
	if len(workload.AllSuites) < 4 {
		t.Fatalf("%d suites, want the paper's 4", len(workload.AllSuites))
	}
	for _, s := range workload.AllSuites {
		if s.Name == "" || s.Load == nil || len(s.Registers) == 0 {
			t.Errorf("suite incomplete: %+v", s.Name)
			continue
		}
		for _, p := range s.Load() {
			if p.F == nil {
				t.Errorf("suite %s program %s has no function", s.Name, p.Name)
			}
		}
	}
	if _, ok := workload.SuiteByName("eembc"); !ok {
		t.Error("eembc suite not resolvable by name")
	}
	if _, ok := workload.SuiteByName("no-such-suite"); ok {
		t.Error("unknown suite name resolved")
	}
}

func TestAllocatorLineups(t *testing.T) {
	chordal := workload.AllocatorNames(workload.ChordalAllocators())
	jit := workload.AllocatorNames(workload.JITAllocators())
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"BFPL", "Optimal"} {
		if !has(chordal, want) {
			t.Errorf("chordal lineup %v missing %s", chordal, want)
		}
	}
	for _, want := range []string{"LH", "Optimal"} {
		if !has(jit, want) {
			t.Errorf("JIT lineup %v missing %s", jit, want)
		}
	}
}
