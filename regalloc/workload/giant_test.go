package workload_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/regalloc"
	"repro/regalloc/workload"
)

// TestGenGiantShape: the giant generator hits its size targets and the
// output is a valid strict-SSA function.
func TestGenGiantShape(t *testing.T) {
	for _, tc := range []struct{ values, blocks int }{
		{1_000, 10}, {10_000, 50}, {10_000, 1},
	} {
		f := workload.GenGiant("giant", 7, tc.values, tc.blocks)
		if !f.SSA {
			t.Fatalf("%d/%d: giant function is not SSA", tc.values, tc.blocks)
		}
		if f.NumValues != tc.values {
			t.Errorf("%d/%d: generated %d values", tc.values, tc.blocks, f.NumValues)
		}
		if len(f.Blocks) != tc.blocks {
			t.Errorf("%d/%d: generated %d blocks", tc.values, tc.blocks, len(f.Blocks))
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%d/%d: %v", tc.values, tc.blocks, err)
		}
	}
	// Determinism: same arguments, same function.
	a := workload.GenGiant("giant", 11, 5_000, 20)
	b := workload.GenGiant("giant", 11, 5_000, 20)
	if a.String() != b.String() {
		t.Fatal("GenGiant is not deterministic")
	}
}

// TestGiantDegradesNotFails: a giant function against a small step budget
// is the degradation ladder's reason to exist — with WithDegradation the
// engine serves a correct lower-quality outcome instead of failing, and
// without it the same run fails with the typed budget error.
func TestGiantDegradesNotFails(t *testing.T) {
	f := workload.GenGiant("giant", 3, 20_000, 80)
	budget := regalloc.Budget{Steps: 10_000} // far below a 20k-value run

	eng, err := regalloc.New(regalloc.WithRegisters(8),
		regalloc.WithBudget(budget), regalloc.WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.AllocateFunc(context.Background(), f)
	if err != nil {
		t.Fatalf("governed engine failed instead of degrading: %v", err)
	}
	if out.Degraded == nil {
		t.Fatal("a 20k-value function under a 10k-step budget did not degrade")
	}
	if out.Degraded.Rung != regalloc.RungLinearScan && out.Degraded.Rung != regalloc.RungSpillAll {
		t.Fatalf("unknown degradation rung %q", out.Degraded.Rung)
	}
	if out.Rewritten == nil || out.RegisterOf == nil {
		t.Fatal("degraded outcome is missing its rewritten function or assignment")
	}
	if err := out.Rewritten.Validate(); err != nil {
		t.Fatalf("degraded rewritten function invalid: %v", err)
	}

	// Same budget, degradation off: the typed failure.
	strict, err := regalloc.New(regalloc.WithRegisters(8), regalloc.WithBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.AllocateFunc(context.Background(), f); !errors.Is(err, regalloc.ErrBudgetExceeded) {
		t.Fatalf("strict engine error %v does not wrap ErrBudgetExceeded", err)
	}

	// Ample budget: the same function allocates cleanly, proving the size
	// itself is tractable and only the budget forced the rung.
	ample, err := regalloc.New(regalloc.WithRegisters(8),
		regalloc.WithBudget(regalloc.Budget{Steps: 1 << 40}), regalloc.WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	out, err = ample.AllocateFunc(context.Background(), f)
	if err != nil || out.Degraded != nil {
		t.Fatalf("ample budget: err %v, degraded %+v", err, out.Degraded)
	}
}

// TestGiantAdmissionGate: the MaxValues admission gate trips before any
// analysis work; with degradation on the function is still served.
func TestGiantAdmissionGate(t *testing.T) {
	f := workload.GenGiant("giant", 5, 5_000, 20)
	eng, err := regalloc.New(regalloc.WithRegisters(8),
		regalloc.WithBudget(regalloc.Budget{MaxValues: 1_000}), regalloc.WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.AllocateFunc(context.Background(), f)
	if err != nil {
		t.Fatalf("admission-gated engine failed instead of degrading: %v", err)
	}
	if out.Degraded == nil || out.Degraded.Stage != "admission" {
		t.Fatalf("expected an admission-stage degradation, got %+v", out.Degraded)
	}
}

// BenchmarkGiantScaling measures governed allocation across function sizes
// (values per op reported); run explicitly with -bench, and set
// GIANT_BENCH_MAX=100000 for the largest size.
func BenchmarkGiantScaling(b *testing.B) {
	sizes := []int{1_000, 10_000}
	if os.Getenv("GIANT_BENCH_MAX") == "100000" {
		sizes = append(sizes, 100_000)
	}
	for _, n := range sizes {
		f := workload.GenGiant("giant", 1, n, n/200+1)
		eng, err := regalloc.New(regalloc.WithRegisters(8))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("values=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.AllocateFunc(context.Background(), f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
