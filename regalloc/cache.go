package regalloc

import (
	"context"

	"repro/internal/outcache"
	"repro/internal/pipeline"
	"repro/regalloc/irx"
)

// Cache is a concurrent, bounded, content-addressed cache of allocation
// outcomes, shared between any number of engines and goroutines. Keys are
// structural function fingerprints (alpha-renaming-insensitive) folded
// with the allocation configuration, so a hit is guaranteed byte-identical
// to a recomputation; stored outcomes are deep-copied on insert and on
// every hit, so no caller can poison the cache through an outcome it was
// handed. Attach one to an engine with WithCache (private) or
// WithSharedCache (shared); see those options for the admission and
// eviction policy.
type Cache = outcache.Cache

// CacheStats is a point-in-time snapshot of a cache's hit/miss/eviction
// counters and residency.
type CacheStats = outcache.Stats

// NewCache builds a shareable outcome cache bounded to capacity entries
// (a default capacity when capacity ≤ 0), for WithSharedCache.
func NewCache(capacity int) *Cache { return outcache.New(capacity) }

// CacheStats snapshots the engine's outcome-cache counters; the zero
// CacheStats when the engine has no cache.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// Revision is the content-addressed snapshot AllocateModuleIncremental
// diffs against: every successfully allocated function of one module run,
// keyed by structure and configuration. Revisions are immutable, safe for
// concurrent use, and share entries with their predecessors, so keeping
// one per tier or per client costs only the functions that changed.
type Revision = pipeline.Revision

// AllocateModuleIncremental is AllocateModule for recompilation loops: it
// reuses from prev the outcome of every function whose code (up to
// alpha-renaming) is unchanged and re-runs only the rest, returning the
// full-length module-ordered results plus the next Revision. A nil prev
// allocates everything. Reused results are marked FuncResult.Cached and
// are byte-identical to recomputed ones; the diff is content-addressed,
// not positional, so renaming, reordering or duplicating functions with
// known bodies never forces a re-run. The allocation cost of a revision is
// proportional to its changed functions (plus a fingerprint pass over the
// module), which is what a tiering JIT wants from hot-method swaps.
func (e *Engine) AllocateModuleIncremental(ctx context.Context, m *irx.Module, prev *Revision) ([]FuncResult, *Revision, error) {
	return pipeline.RunModuleIncremental(ctx, m, e.moduleConfig(), prev)
}
