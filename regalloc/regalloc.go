// Package regalloc is the public API of the repository's register
// allocator: spill-everywhere allocation in the paper's decoupled
// spill-then-assign framework, with the layered (near-optimal) allocators,
// tree-scan register assignment and spill-code rewriting behind a single
// engine type.
//
// This package and its subpackages (regalloc/irx for the IR surface,
// regalloc/workload for benchmark suites and program generators,
// regalloc/verifier for the differential checking harness) are the only
// supported import surface; everything under repro/internal/... is
// implementation and may change without notice.
//
// # Quickstart
//
// Construct an Engine with functional options, then run functions or whole
// modules through it:
//
//	eng, err := regalloc.New(
//		regalloc.WithRegisters(8),
//		regalloc.WithAllocator("bfpl"),
//		regalloc.WithJobs(4),
//	)
//	if err != nil { ... }
//	f, err := irx.Parse(src)
//	out, err := eng.AllocateFunc(ctx, f)
//	// out.SpilledValues, out.RegisterOf, out.Rewritten
//
// An Engine is safe for concurrent use: analysis scratch memory is pooled
// per goroutine, so single-function calls are as fast as the internal
// batch pipeline's workers (pinned by BenchmarkEngineVsCore: zero
// allocation overhead over the internal layer).
//
// # Errors
//
// Failures carry a typed taxonomy (ErrInvalidConfig, ErrUnknownAllocator,
// ErrNotSSA, ErrPressureUnsatisfiable, ErrCanceled) and per-function
// failures wrap *FuncError with the function name and failing pipeline
// stage; everything composes with errors.Is/errors.As.
//
// # Custom allocators
//
// Register adds an allocator factory under a new name, making it available
// to WithAllocator, the pipeline and every front-end flag; Allocators lists
// the registry.
package regalloc

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/outcache"
	"repro/internal/pipeline"
	"repro/internal/raerr"
	"repro/internal/spillcost"
	"repro/regalloc/irx"
)

// Outcome bundles everything a client may want from one allocation run:
// the spill decisions, their cost, the per-value register assignment and
// the rewritten function. It aliases the internal pipeline's outcome type,
// so no copying happens at the API boundary.
type Outcome = core.Outcome

// FuncResult is the outcome of one function of a module run: its module
// position, name, and either an Outcome or a per-function error.
type FuncResult = pipeline.FuncResult

// Totals aggregates a module run: function, spill and error counts plus
// total spill cost.
type Totals = pipeline.Totals

// Budget bounds a run's resources: a wall-clock Deadline, a work-step
// Steps budget charged cooperatively inside the analysis and allocation
// loops, and a MaxValues/MaxBlocks admission gate checked before any
// analysis runs. The zero Budget means unbounded. See WithBudget.
type Budget = budget.Limits

// Degradation records how a budget-governed run fell down the degradation
// ladder: the rung that produced the outcome (RungLinearScan or
// RungSpillAll), the stage whose budget trip forced the fall, and the
// underlying *BudgetError. See WithDegradation and Outcome.Degraded.
type Degradation = core.Degradation

// Rung labels of the degradation ladder (Degradation.Rung).
const (
	// RungLinearScan: the configured allocator ran out of budget during
	// allocation or assignment and the result was recomputed by the DLS
	// linear scan under a fresh, small step allowance.
	RungLinearScan = core.RungLinearScan
	// RungSpillAll: the floor — every occurring value spilled. Reached when
	// the budget trips before the problem structure exists (admission,
	// liveness, cliques) or when the linear-scan rung itself runs dry.
	RungSpillAll = core.RungSpillAll
)

// CoalescePolicy selects the coalescing criterion of WithCoalescing. The
// zero value (CoalesceOff) disables coalescing.
type CoalescePolicy = coalesce.Policy

// Coalescing policies.
const (
	// CoalesceOff: no coalescing; assignment is byte-identical to an engine
	// without WithCoalescing.
	CoalesceOff = coalesce.Off
	// CoalesceAggressive groups every copy-related, non-interfering pair of
	// values into one affinity class (Chaitin-style).
	CoalesceAggressive = coalesce.Aggressive
	// CoalesceConservative additionally requires the Briggs criterion — the
	// merged class must have fewer than R neighbours of significant (≥ R)
	// degree — checked against clique-membership degrees, never an explicit
	// graph.
	CoalesceConservative = coalesce.Conservative
)

// CoalescePolicyByName resolves a policy name: "off" (or ""), "aggressive",
// "conservative" (or "briggs"). Unknown names fail with ErrInvalidConfig.
func CoalescePolicyByName(name string) (CoalescePolicy, error) {
	p, ok := coalesce.PolicyByName(name)
	if !ok {
		return CoalesceOff, fmt.Errorf("%w: unknown coalescing policy %q (want off, aggressive or conservative)",
			raerr.ErrInvalidConfig, name)
	}
	return p, nil
}

// CoalesceStats reports the effect of coalescing-biased assignment on one
// function's φ/copy moves: total, eliminated and residual dynamic move
// cost, and the affinity classes behind the bias. See Outcome.Coalesce.
type CoalesceStats = coalesce.Stats

// CostModel parameterizes the spill-cost estimate: the per-loop-level
// multiplier and the store/reload weight ratio. The zero value means
// DefaultCostModel.
type CostModel = spillcost.Model

// DefaultCostModel is the paper's spill-cost model: 10× per loop-nesting
// level, stores as expensive as reloads.
var DefaultCostModel = spillcost.DefaultModel

// NewCostModel builds a CostModel from the loop-level multiplier and the
// store cost factor, where zero fields are meant literally ("stores are
// free"), unlike the zero CostModel which means DefaultCostModel.
func NewCostModel(loopBase, storeFactor float64) CostModel {
	return spillcost.NewModel(loopBase, storeFactor)
}

// options collects the functional-option state of New.
type options struct {
	registers      int
	allocator      string
	costModel      CostModel
	jobs           int
	skipRewrite    bool
	legacyIFG      bool
	trustedCost    bool
	noScratchReuse bool
	cacheSize      int
	sharedCache    *Cache
	machine        string
	constraints    *arch.Constraints
	budget         Budget
	degrade        bool
	coalescing     CoalescePolicy
}

// Option configures an Engine (New).
type Option func(*options)

// WithRegisters sets the register count R the engine allocates for.
// Required; New rejects engines without it.
func WithRegisters(n int) Option { return func(o *options) { o.registers = n } }

// WithAllocator selects the allocation algorithm by registry name
// (case-insensitive): the paper's NL, BL, FPL, BFPL, LH, GC, DLS, BLS and
// Optimal, or anything added with Register. The default picks the paper's
// best general-purpose chordal allocator (BFPL) for strict-SSA functions
// and the layered heuristic (LH) otherwise.
func WithAllocator(name string) Option { return func(o *options) { o.allocator = name } }

// WithMachine turns on machine-constrained allocation for a named target
// ("st231", "armv7", "jvm98"; case-insensitive): the machine's constraint
// shape is instantiated at the engine's register count, so WithRegisters
// acts as the per-class capacity, and allocation honors register classes,
// pre-colored ABI values and call-clobber sets. Mutually exclusive with
// WithConstraints; unknown names fail at New.
func WithMachine(name string) Option { return func(o *options) { o.machine = name } }

// WithConstraints turns on machine-constrained allocation under an explicit
// constraint object — the escape hatch for targets the registry does not
// name. The constraints are validated at New. Mutually exclusive with
// WithMachine.
func WithConstraints(c *Constraints) Option { return func(o *options) { o.constraints = c } }

// WithCostModel overrides the spill-cost model (default DefaultCostModel).
func WithCostModel(m CostModel) Option { return func(o *options) { o.costModel = m } }

// WithJobs sets the worker count for module runs (default: GOMAXPROCS).
// Results are deterministic — byte-identical — at any worker count.
func WithJobs(n int) Option { return func(o *options) { o.jobs = n } }

// WithoutRewrite disables spill-code insertion and register assignment:
// the engine reports allocation decisions (spill sets and costs) only.
func WithoutRewrite() Option { return func(o *options) { o.skipRewrite = true } }

// WithLegacyIFG forces the explicit interference-graph path even for
// functions eligible for the IFG-free SSA fast path. Diagnostics and
// differential testing only; results are identical either way.
func WithLegacyIFG() Option { return func(o *options) { o.legacyIFG = true } }

// WithTrustedCostModel skips cost-model validation at New; the caller
// guarantees the model is well-formed.
func WithTrustedCostModel() Option { return func(o *options) { o.trustedCost = true } }

// WithoutScratchReuse gives every function a fresh analysis pipeline
// instead of pooled per-worker scratch memory. Benchmark ablation only —
// results are identical either way, just slower.
func WithoutScratchReuse() Option { return func(o *options) { o.noScratchReuse = true } }

// WithCache gives the engine a private content-addressed outcome cache
// bounded to capacity entries (capacity ≥ 1). Every AllocateFunc /
// AllocateModule / AllocateStream call consults it before running and
// publishes after: functions whose structure (alpha-renaming aside) and
// configuration were seen before cost roughly a fingerprint plus a copy
// instead of a full pipeline run. Results are byte-identical with the cache
// on or off — allocation is deterministic, which is what makes the cache
// sound — but cache-hit outcomes are decision-level: they carry the spill
// set, costs, assignment and rewritten body, not the analysis structures
// (Outcome.Cliques, Outcome.Build and the Problem's interference
// representation are absent), and a hit does not annotate the input
// function with loop depths. Admission is 2Q-style: an outcome is stored
// on the second sighting of its fingerprint, so duplication-free traffic
// pays only the hash.
func WithCache(capacity int) Option { return func(o *options) { o.cacheSize = capacity } }

// WithSharedCache attaches an existing cache (NewCache) to the engine, so
// several engines — e.g. one per request configuration in a compile
// service — share one bounded pool. Entries are keyed by configuration as
// well as content, so engines with different configs never cross-serve.
func WithSharedCache(c *Cache) Option { return func(o *options) { o.sharedCache = c } }

// WithCoalescing enables coalescing-biased register assignment: φ/copy-
// related values are grouped into affinity classes (CoalesceAggressive
// merges every non-interfering pair; CoalesceConservative applies the
// Briggs colourability criterion) and the tree-scan assigner prefers an
// affine partner's register when it is free at the definition point,
// eliminating the move. The bias is strictly best-effort: it never changes
// which values are allocated, never costs a spill, and CoalesceOff (the
// default) is byte-identical to an engine without this option. Applies on
// the IFG-free SSA fast path (including machine-constrained allocation,
// where ABI pins seed the class hints); incompatible with WithLegacyIFG.
// The per-function effect is reported in Outcome.Coalesce.
func WithCoalescing(p CoalescePolicy) Option { return func(o *options) { o.coalescing = p } }

// WithBudget bounds every run's resources: a wall-clock deadline (per
// function), a cooperative work-step budget, and a max-values/max-blocks
// admission gate. Without WithDegradation, exhausting the budget fails the
// function with a *FuncError wrapping ErrBudgetExceeded (carrying a
// *BudgetError with the stage and spend); sibling functions of a module are
// unaffected. The zero Budget means unbounded (the default).
func WithBudget(b Budget) Option { return func(o *options) { o.budget = b } }

// WithDegradation turns budget trips into degraded-but-correct outcomes
// instead of errors: a governed run that exhausts its budget falls down the
// ladder layered → linear-scan → spill-all (each rung cheaper; the
// spill-all floor is O(V) and never fails) and the Outcome records the rung
// and reason in Outcome.Degraded. Degraded outcomes satisfy every
// correctness invariant — pressure ≤ R, interference-free assignment,
// semantics-preserving rewrite — they just spill more than a fully funded
// run would. They are never stored in the outcome cache, so a later run
// with more budget recomputes them. Meaningful only with WithBudget.
func WithDegradation() Option { return func(o *options) { o.degrade = true } }

// Engine runs the register-allocation pipeline. It wraps the internal
// scratch-reusing runner and the module worker pool behind one validated
// configuration; construct it with New and reuse it — an Engine is safe
// for concurrent use by multiple goroutines.
type Engine struct {
	opts  options
	pool  sync.Pool // *worker
	cache *outcache.Cache
	fold  fingerprint.Config // cache-key fold of the engine config
}

// worker is one goroutine's pipeline instance: reusable analysis scratch
// plus a private allocator instance (allocators keep per-run state).
type worker struct {
	runner *core.Runner
	cfg    core.Config
}

// New validates the configuration and builds an Engine. Errors wrap
// ErrInvalidConfig (bad register/worker counts, malformed cost model) or
// ErrUnknownAllocator.
func New(opt ...Option) (*Engine, error) {
	var o options
	for _, fn := range opt {
		fn(&o)
	}
	if o.registers < 1 {
		return nil, fmt.Errorf("%w: WithRegisters(n ≥ 1) is required, got %d", raerr.ErrInvalidConfig, o.registers)
	}
	if o.jobs < 0 {
		return nil, fmt.Errorf("%w: WithJobs(%d) is negative", raerr.ErrInvalidConfig, o.jobs)
	}
	if o.allocator != "" {
		if _, err := alloc.NewByName(o.allocator); err != nil {
			return nil, err
		}
	}
	if !o.trustedCost {
		if err := o.costModel.Validate(); err != nil {
			return nil, fmt.Errorf("%w: invalid cost model: %w", raerr.ErrInvalidConfig, err)
		}
	}
	if o.cacheSize < 0 || (o.cacheSize > 0 && o.sharedCache != nil) {
		return nil, fmt.Errorf("%w: WithCache(%d) and WithSharedCache are mutually exclusive and require capacity ≥ 1",
			raerr.ErrInvalidConfig, o.cacheSize)
	}
	if o.machine != "" {
		if o.constraints != nil {
			return nil, fmt.Errorf("%w: WithMachine and WithConstraints are mutually exclusive", raerr.ErrInvalidConfig)
		}
		m, err := arch.ByName(o.machine)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", raerr.ErrInvalidConfig, err)
		}
		o.constraints = m.Constraints(o.registers)
	}
	if o.constraints != nil {
		if err := o.constraints.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %w", raerr.ErrInvalidConfig, err)
		}
		if o.legacyIFG {
			return nil, fmt.Errorf("%w: machine-constrained allocation has no explicit-graph path (drop WithLegacyIFG)",
				raerr.ErrInvalidConfig)
		}
	}
	if o.coalescing != CoalesceOff {
		if !o.coalescing.Valid() {
			return nil, fmt.Errorf("%w: unknown coalescing policy %d", raerr.ErrInvalidConfig, o.coalescing)
		}
		if o.legacyIFG {
			return nil, fmt.Errorf("%w: coalescing-biased assignment requires the IFG-free fast path (drop WithLegacyIFG)",
				raerr.ErrInvalidConfig)
		}
	}
	e := &Engine{opts: o}
	e.pool.New = func() any { return e.newWorker() }
	switch {
	case o.sharedCache != nil:
		e.cache = o.sharedCache
	case o.cacheSize > 0:
		e.cache = outcache.New(o.cacheSize)
	}
	if e.cache != nil {
		e.fold = fingerprint.NewConfig(o.registers, o.allocator, o.costModel, !o.skipRewrite, o.constraints, int(o.coalescing))
	}
	return e, nil
}

// newWorker builds one pipeline instance under the engine's (already
// validated) configuration.
func (e *Engine) newWorker() *worker {
	w := &worker{cfg: core.Config{
		Registers:   e.opts.registers,
		CostModel:   e.opts.costModel,
		SkipRewrite: e.opts.skipRewrite,
		LegacyIFG:   e.opts.legacyIFG,
		Constraints: e.opts.constraints,
		Coalescing:  e.opts.coalescing,
		Budget:      e.opts.budget,
		Degrade:     e.opts.degrade,
		// New validated the model once for the engine's lifetime.
		TrustedCostModel: true,
	}}
	if !e.opts.noScratchReuse {
		w.runner = core.NewRunner()
	}
	if e.opts.allocator != "" {
		a, err := alloc.NewByName(e.opts.allocator)
		if err != nil {
			// Unreachable: New resolved the name once already, and
			// registrations are never removed.
			panic(err)
		}
		w.cfg.Allocator = a
	}
	return w
}

// AllocateFunc runs the full pipeline — liveness, interference analysis,
// spill-everywhere allocation, tree-scan assignment, spill-code rewrite —
// on one function. The function is annotated in place with loop depths,
// so concurrent AllocateFunc calls are safe as long as they do not share
// one *Func value; the Outcome never aliases engine scratch, so it stays
// valid across subsequent calls. Cancellation is checked once on entry (a
// single function is the pipeline's atomic unit); per-function failures
// are *FuncError.
func (e *Engine) AllocateFunc(ctx context.Context, f *irx.Func) (*Outcome, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil function", raerr.ErrInvalidConfig)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", raerr.ErrCanceled, err)
		}
	}
	if e.cache != nil {
		key := fingerprint.Key(f, e.fold)
		if out := e.cache.Get(key, f); out != nil {
			return out, nil
		}
		w := e.pool.Get().(*worker)
		out, err := pipeline.RunFunc(w.runner, f, w.cfg)
		e.pool.Put(w)
		// Degraded outcomes are never cached: the trip point depends on the
		// wall clock, and a later call may have the budget to do better.
		if err == nil && out.Degraded == nil {
			e.cache.Put(key, out)
		}
		return out, err
	}
	w := e.pool.Get().(*worker)
	out, err := pipeline.RunFunc(w.runner, f, w.cfg)
	e.pool.Put(w)
	return out, err
}

// moduleConfig translates the engine options for the module pipeline.
func (e *Engine) moduleConfig() pipeline.Config {
	return pipeline.Config{
		Registers:      e.opts.registers,
		Allocator:      e.opts.allocator,
		CostModel:      e.opts.costModel,
		Constraints:    e.opts.constraints,
		SkipRewrite:    e.opts.skipRewrite,
		Jobs:           e.opts.jobs,
		NoScratchReuse: e.opts.noScratchReuse,
		LegacyIFG:      e.opts.legacyIFG,
		Coalescing:     e.opts.coalescing,
		// New validated the model (or the caller opted out with
		// WithTrustedCostModel); don't re-validate per module run.
		TrustedCostModel: true,
		Cache:            e.cache,
		Budget:           e.opts.budget,
		Degrade:          e.opts.degrade,
	}
}

// AllocateModule allocates every function of m over the engine's worker
// pool. The returned slice is indexed by module position and deterministic
// (byte-identical results) for any WithJobs count; per-function failures
// land in FuncResult.Err rather than aborting the batch. Workers observe
// ctx between functions: on cancellation the full-length slice is still
// returned with every function that completed before the cut (with
// several workers these are not necessarily a prefix), the unprocessed
// functions marked with ErrCanceled, and the returned error wraps both
// ErrCanceled and the context's error.
func (e *Engine) AllocateModule(ctx context.Context, m *irx.Module) ([]FuncResult, error) {
	return pipeline.RunModule(ctx, m, e.moduleConfig())
}

// AllocateStream is AllocateModule in streaming form: yield observes every
// FuncResult in module order as soon as it and all its predecessors are
// done, without waiting for the rest of the batch — the shape a compiler
// driver wants for pipelining codegen behind allocation. A non-nil error
// from yield stops the workers and is returned verbatim; cancellation ends
// the stream with an error wrapping ErrCanceled.
func (e *Engine) AllocateStream(ctx context.Context, m *irx.Module, yield func(FuncResult) error) error {
	return pipeline.RunModuleStream(ctx, m, e.moduleConfig(), yield)
}

// FirstError returns the first per-function error of a module run in
// module order, or nil.
func FirstError(results []FuncResult) error { return pipeline.FirstErr(results) }

// FormatResults renders module results as the canonical batch report: one
// line per function plus, with detail, the register assignment and the
// rewritten body of each SSA function. The rendering is a pure function of
// the results (the byte-identity witness of the determinism guarantee).
func FormatResults(results []FuncResult, detail bool) string {
	return pipeline.FormatResults(results, detail)
}

// Summarize computes module-run totals.
func Summarize(results []FuncResult) Totals { return pipeline.Summarize(results) }
