package regalloc

import "repro/internal/alloc"

// Problem is one spill-everywhere allocation instance as an Allocator sees
// it: per-vertex spill weights, the register-pressure constraints
// (LiveSets, each a clique of the interference graph), the register count
// R, and — for chordal instances — a perfect elimination order. Graph()
// materializes the explicit weighted interference graph on demand.
type Problem = alloc.Problem

// Result is an allocator's answer: which vertices stay in registers, and
// the algorithm's name for reports.
type Result = alloc.Result

// Allocator is a spill-everywhere register allocator. Implementations must
// return a Result keeping at most R vertices of every live set; the engine
// verifies this and fails with ErrPressureUnsatisfiable otherwise.
type Allocator = alloc.Allocator

// Register adds a named allocator factory to the registry, making the name
// available to WithAllocator, the module pipeline and every front-end
// -alloc flag. Names are case-insensitive and must be new; registering a
// taken name (in any casing), an empty name or a nil factory fails with
// ErrInvalidConfig. A factory is registered rather than an instance
// because allocators may keep per-run state: every engine worker resolves
// a private instance.
//
// Registered allocators are assumed to handle arbitrary (non-chordal)
// instances; the paper's chordal-only allocators are pre-registered with
// the stricter gate.
func Register(name string, factory func() Allocator) error {
	return alloc.RegisterAllocator(name, false, factory)
}

// Allocators lists the registered allocator names, sorted — the paper's
// built-ins (BFPL, BL, BLS, DLS, FPL, GC, LH, NL, Optimal) plus anything
// added with Register.
func Allocators() []string { return alloc.RegisteredNames() }

// NewAllocator resolves a registered name (case-insensitive) to a fresh
// allocator instance, for clients driving Problem/Result directly; unknown
// names fail with ErrUnknownAllocator.
func NewAllocator(name string) (Allocator, error) { return alloc.NewByName(name) }
