package regalloc_test

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/regalloc"
	"repro/regalloc/irx"
)

// The quickstart: build an engine with functional options, allocate one
// SSA function, and read the spill decisions and register assignment off
// the outcome.
func Example() {
	f := irx.MustParse(`
func dot ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  g = arith e, a
  ret g
}`)
	eng, err := regalloc.New(
		regalloc.WithRegisters(2),
		regalloc.WithAllocator("BFPL"),
	)
	if err != nil {
		panic(err)
	}
	out, err := eng.AllocateFunc(context.Background(), f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("maxlive %d with %d registers\n", out.MaxLive, 2)
	fmt.Printf("spilled %d values, cost %.0f\n", len(out.SpilledValues), out.SpillCost)
	for _, v := range out.SpilledValues {
		fmt.Printf("  spill %s\n", f.NameOf(v))
	}
	fmt.Printf("rewritten has spill code: %v\n", strings.Contains(out.Rewritten.String(), "reload"))
	// Output:
	// maxlive 3 with 2 registers
	// spilled 1 values, cost 2
	//   spill c
	// rewritten has spill code: true
}

// Module runs fan out over a worker pool and come back in deterministic
// module order; per-function failures never abort the batch.
func ExampleEngine_AllocateModule() {
	m := irx.MustParseModule(`
func first ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}

func second ssa {
b0:
  x = param 0
  y = param 1
  z = arith x, y
  ret z
}`)
	eng, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithJobs(2))
	if err != nil {
		panic(err)
	}
	results, err := eng.AllocateModule(context.Background(), m)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s: %d spilled\n", r.Name, len(r.Outcome.SpilledValues))
	}
	t := regalloc.Summarize(results)
	fmt.Printf("total %d functions, %d errors\n", t.Funcs, t.Errors)
	// Output:
	// first: 0 spilled
	// second: 0 spilled
	// total 2 functions, 0 errors
}

// A cached engine serves repeated structure — here the same function body
// under three different names — from the outcome cache. The 2Q admission
// policy stores an outcome on the second sighting of its fingerprint, so
// the third call is the first hit; results are byte-identical either way.
func ExampleWithCache() {
	src := `
func %s ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  d = arith c, a
  ret d
}`
	eng, err := regalloc.New(
		regalloc.WithRegisters(4),
		regalloc.WithCache(256),
	)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		f := irx.MustParse(fmt.Sprintf(src, name))
		out, err := eng.AllocateFunc(context.Background(), f)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d spilled, rewritten as %q\n", name, len(out.SpilledValues), out.Rewritten.Name)
	}
	s := eng.CacheStats()
	fmt.Printf("hits %d, misses %d, resident %d\n", s.Hits, s.Misses, s.Entries)
	// Output:
	// alpha: 0 spilled, rewritten as "alpha"
	// beta: 0 spilled, rewritten as "beta"
	// gamma: 0 spilled, rewritten as "gamma"
	// hits 1, misses 2, resident 1
}

// Failures carry a typed taxonomy: dispatch with errors.Is instead of
// matching message strings.
func ExampleNew_errors() {
	_, err := regalloc.New(regalloc.WithRegisters(4), regalloc.WithAllocator("frobnicate"))
	fmt.Println(errors.Is(err, regalloc.ErrUnknownAllocator))
	_, err = regalloc.New(regalloc.WithRegisters(0))
	fmt.Println(errors.Is(err, regalloc.ErrInvalidConfig))
	// Output:
	// true
	// true
}
