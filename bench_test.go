// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (Figures 8–15) and measures the core algorithms and
// the design-choice ablations listed in DESIGN.md.
//
// Figure benches execute the same computation as `cmd/experiments -fig N`
// and report the headline series as benchmark metrics (normalized allocation
// cost, lower is better, 1.0 = optimal). Algorithm benches are conventional
// micro-benchmarks. Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloc/chaitin"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/linearscan"
	"repro/internal/alloc/optimal"
	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
	"repro/internal/stable"
)

// reportMeans attaches the sweep-averaged normalized cost of each allocator
// as a benchmark metric.
func reportMeans(b *testing.B, instances []*bench.Instance, names []string) {
	b.Helper()
	means := bench.NormalizedMeans(instances, names)
	for _, name := range names {
		total, count := 0.0, 0
		for _, per := range means {
			total += per[name]
			count++
		}
		if count > 0 {
			b.ReportMetric(total/float64(count), name+"_norm")
		}
	}
}

func runSuite(b *testing.B, s bench.Suite, names []string) {
	b.Helper()
	var instances []*bench.Instance
	for i := 0; i < b.N; i++ {
		instances = bench.Run(s, nil)
	}
	reportMeans(b, instances, names)
}

var chordalNames = bench.AllocatorNames(bench.ChordalAllocators())
var jitNames = bench.AllocatorNames(bench.JITAllocators())

// BenchmarkFig08 regenerates Figure 8: mean normalized allocation cost on
// the SPEC CPU 2000int stand-in (ST231), R ∈ {1,2,4,8,16,32}.
func BenchmarkFig08SPEC2000Means(b *testing.B) { runSuite(b, bench.SuiteSPEC2000, chordalNames) }

// BenchmarkFig09 regenerates Figure 9 (EEMBC on ST231).
func BenchmarkFig09EEMBCMeans(b *testing.B) { runSuite(b, bench.SuiteEEMBC, chordalNames) }

// BenchmarkFig10 regenerates Figure 10 (lao-kernels on ARMv7).
func BenchmarkFig10LAOKernelsMeans(b *testing.B) { runSuite(b, bench.SuiteLAOKernels, chordalNames) }

// distSpread reports the interquartile spread of per-program normalized
// costs at the largest register count — the quantity Figures 11–13
// visualize (GC and NL show wide spreads; BL/FPL/BFPL are tight).
func distSpread(b *testing.B, s bench.Suite, names []string) {
	b.Helper()
	var instances []*bench.Instance
	for i := 0; i < b.N; i++ {
		instances = bench.Run(s, nil)
	}
	ratios, _ := bench.PerProgramRatios(instances, names)
	for _, name := range names {
		// Pool the sweep's ratios and report Q3−Q1.
		var all []float64
		for _, per := range ratios {
			all = append(all, per[name]...)
		}
		sum := bench.Summarize(all)
		b.ReportMetric(sum.Q3-sum.Q1, name+"_iqr")
	}
}

// BenchmarkFig11 regenerates Figure 11: per-program cost distributions on
// SPEC CPU 2000int.
func BenchmarkFig11SPEC2000Dist(b *testing.B) { distSpread(b, bench.SuiteSPEC2000, chordalNames) }

// BenchmarkFig12 regenerates Figure 12 (EEMBC distributions).
func BenchmarkFig12EEMBCDist(b *testing.B) { distSpread(b, bench.SuiteEEMBC, chordalNames) }

// BenchmarkFig13 regenerates Figure 13 (lao-kernels distributions).
func BenchmarkFig13LAOKernelsDist(b *testing.B) { distSpread(b, bench.SuiteLAOKernels, chordalNames) }

// BenchmarkFig14 regenerates Figure 14: mean normalized cost on the
// non-chordal SPEC JVM98 stand-in, R ∈ {2..16}.
func BenchmarkFig14JVM98Means(b *testing.B) { runSuite(b, bench.SuiteJVM98, jitNames) }

// BenchmarkFig15 regenerates Figure 15: per-benchmark normalized cost on
// SPEC JVM98 at R = 6; the metric reported per allocator is the worst
// (maximum) benchmark ratio, the paper's "overhead can reach" number.
func BenchmarkFig15JVM98PerBench(b *testing.B) {
	var instances []*bench.Instance
	for i := 0; i < b.N; i++ {
		instances = bench.Run(bench.SuiteJVM98, nil)
	}
	per := bench.PerBenchmarkMeans(instances, jitNames, 6)
	for _, name := range jitNames {
		worst := 0.0
		for _, row := range per {
			if row[name] > worst {
				worst = row[name]
			}
		}
		b.ReportMetric(worst, name+"_worst")
	}
}

// ---- Algorithm micro-benchmarks ----

func largeIntervalGraph(n int) *graph.Weighted {
	rng := rand.New(rand.NewSource(1))
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, c := rng.Intn(4*n), rng.Intn(4*n)
		if a > c {
			a, c = c, a
		}
		// Bound interval length to keep density realistic.
		if c-a > n/4 {
			c = a + n/4
		}
		ivs[i] = iv{a, c}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				g.AddEdge(i, j)
			}
		}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(1 + rng.Intn(1000))
	}
	return graph.NewWeighted(g, w)
}

func BenchmarkPEO(b *testing.B) {
	g := largeIntervalGraph(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PerfectEliminationOrder()
	}
}

func BenchmarkFrankMWSS(b *testing.B) {
	g := largeIntervalGraph(2000)
	order := g.PerfectEliminationOrder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stable.MaxWeightChordal(g.Graph, order, g.Weight)
	}
}

func BenchmarkMaximalCliques(b *testing.B) {
	g := largeIntervalGraph(2000)
	order := g.PerfectEliminationOrder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaximalCliques(order)
	}
}

func benchFunc() *ir.Func {
	return bench.GenSSA("bench", 77, bench.Shape{
		Params: 4, Segments: 6, MaxDepth: 3, StraightLen: 6,
		LoopProb: 0.4, BranchProb: 0.3, Carried: 3, LongLived: 24,
	})
}

func BenchmarkLiveness(b *testing.B) {
	f := benchFunc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		liveness.Compute(f)
	}
}

func BenchmarkInterferenceBuild(b *testing.B) {
	f := benchFunc()
	info := liveness.Compute(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ifg.FromLiveness(info)
	}
}

func benchProblem(r int) *alloc.Problem {
	f := benchFunc()
	info := liveness.Compute(f)
	build := ifg.FromLiveness(info)
	costs := spillcost.Costs(f, spillcost.DefaultModel)
	p := alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: r})
	p.Intervals = linearscan.BuildIntervals(info, build)
	return p
}

func BenchmarkAllocNL(b *testing.B) {
	p := benchProblem(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layered.NL().Allocate(p)
	}
}

func BenchmarkAllocBFPL(b *testing.B) {
	p := benchProblem(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layered.BFPL().Allocate(p)
	}
}

func BenchmarkAllocGC(b *testing.B) {
	p := benchProblem(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chaitin.New().Allocate(p)
	}
}

func BenchmarkAllocLinearScan(b *testing.B) {
	p := benchProblem(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linearscan.BLS().Allocate(p)
	}
}

func BenchmarkAllocLH(b *testing.B) {
	p := benchProblem(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layered.NewLH().Allocate(p)
	}
}

func BenchmarkAllocOptimal(b *testing.B) {
	p := benchProblem(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimal.New().Allocate(p)
	}
}

// ---- Ablation benches (DESIGN.md) ----

// ablationProblems is a fixed mix of chordal instances at mid pressure.
func ablationProblems() []*alloc.Problem {
	var out []*alloc.Problem
	for seed := int64(300); seed < 312; seed++ {
		f := bench.GenSSA("abl", seed, bench.Shape{
			Params: 3, Segments: 4, MaxDepth: 3, StraightLen: 5,
			LoopProb: 0.45, BranchProb: 0.3, Carried: 3, LongLived: 12,
		})
		build := ifg.FromFunc(f)
		costs := spillcost.Costs(f, spillcost.DefaultModel)
		out = append(out, alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: 6}))
	}
	return out
}

func totalCost(ps []*alloc.Problem, a alloc.Allocator) float64 {
	total := 0.0
	for _, p := range ps {
		total += a.Allocate(p).SpillCost(p)
	}
	return total
}

// BenchmarkAblationBias compares no bias, the paper's static-degree bias,
// and the dynamic (remaining-candidates) bias. Metric: total spill cost.
func BenchmarkAblationBias(b *testing.B) {
	ps := ablationProblems()
	variants := map[string]alloc.Allocator{
		"none":    layered.Custom("none", layered.Option{FixedPoint: true}),
		"static":  layered.Custom("static", layered.Option{Bias: true, FixedPoint: true}),
		"dynamic": layered.Custom("dynamic", layered.Option{Bias: true, DynamicBias: true, FixedPoint: true}),
	}
	for name, a := range variants {
		b.Run(name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cost = totalCost(ps, a)
			}
			b.ReportMetric(cost, "spillcost")
		})
	}
}

// BenchmarkAblationStep compares step=1 Frank layers with exact step=2
// layers (paper §4: "even with step = 1" quasi-optimality).
func BenchmarkAblationStep(b *testing.B) {
	ps := ablationProblems()
	solve := func(p *alloc.Problem) *alloc.Result { return optimal.New().Allocate(p) }
	variants := map[string]alloc.Allocator{
		"step1": &layered.StepAllocator{Step: 1, Solve: solve, Label: "step1"},
		"step2": &layered.StepAllocator{Step: 2, Solve: solve, Label: "step2"},
	}
	for name, a := range variants {
		b.Run(name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cost = totalCost(ps, a)
			}
			b.ReportMetric(cost, "spillcost")
		})
	}
}

// BenchmarkAblationFixpoint compares no fixpoint, one extra round, and full
// fixed-point iteration.
func BenchmarkAblationFixpoint(b *testing.B) {
	ps := ablationProblems()
	variants := map[string]alloc.Allocator{
		"off":  layered.Custom("off", layered.Option{Bias: true}),
		"once": layered.Custom("once", layered.Option{Bias: true, FixedPoint: true, MaxFixpointRounds: 1}),
		"full": layered.Custom("full", layered.Option{Bias: true, FixedPoint: true}),
	}
	for name, a := range variants {
		b.Run(name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cost = totalCost(ps, a)
			}
			b.ReportMetric(cost, "spillcost")
		})
	}
}

// BenchmarkAblationUpdate times Algorithm 4's incremental clique counters
// against from-scratch recomputation (identical results, different cost).
func BenchmarkAblationUpdate(b *testing.B) {
	ps := ablationProblems()
	variants := map[string]alloc.Allocator{
		"incremental": layered.Custom("inc", layered.Option{FixedPoint: true}),
		"naive":       layered.Custom("naive", layered.Option{FixedPoint: true, NaiveUpdate: true}),
	}
	for name, a := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				totalCost(ps, a)
			}
		})
	}
}
