package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliques"
	"repro/internal/ir"
	"repro/internal/irgen"
)

// fastPathRegisters is the register sweep of the differential check.
var fastPathRegisters = []int{2, 3, 4, 8}

// diffAllocators are the allocators compared between the two paths. The
// chordal-only layered family, both linear scans, Chaitin–Briggs and the
// general heuristic all run on every fast-path-eligible function; the exact
// solver is swept on a subset (it is exponential in the worst case).
var diffAllocators = []string{"NL", "BL", "FPL", "BFPL", "GC", "DLS", "BLS", "LH"}

// comparePaths runs f through the pipeline twice — fast path and forced
// legacy IFG path — for one allocator and register count, and fails on any
// observable divergence: spill set, spill cost, register assignment, or the
// rewritten function body.
func comparePaths(t *testing.T, f *ir.Func, allocName string, r int) {
	t.Helper()
	a1, err := AllocatorByName(allocName)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := AllocatorByName(allocName)
	fast, errFast := Run(f, Config{Registers: r, Allocator: a1})
	legacy, errLegacy := Run(f, Config{Registers: r, Allocator: a2, LegacyIFG: true})
	if (errFast != nil) != (errLegacy != nil) {
		t.Fatalf("%s alloc=%s R=%d: fast err=%v legacy err=%v", f.Name, allocName, r, errFast, errLegacy)
	}
	if errFast != nil {
		return
	}
	if fast.Cliques == nil {
		t.Fatalf("%s alloc=%s R=%d: fast run did not take the fast path", f.Name, allocName, r)
	}
	if legacy.Build == nil {
		t.Fatalf("%s alloc=%s R=%d: legacy run did not build an IFG", f.Name, allocName, r)
	}
	if fast.SpillCost != legacy.SpillCost {
		t.Fatalf("%s alloc=%s R=%d: spill cost %v vs %v", f.Name, allocName, r, fast.SpillCost, legacy.SpillCost)
	}
	if fast.MaxLive != legacy.MaxLive {
		t.Fatalf("%s alloc=%s R=%d: maxlive %d vs %d", f.Name, allocName, r, fast.MaxLive, legacy.MaxLive)
	}
	if len(fast.SpilledValues) != len(legacy.SpilledValues) {
		t.Fatalf("%s alloc=%s R=%d: spilled %v vs %v", f.Name, allocName, r, fast.SpilledValues, legacy.SpilledValues)
	}
	for i := range fast.SpilledValues {
		if fast.SpilledValues[i] != legacy.SpilledValues[i] {
			t.Fatalf("%s alloc=%s R=%d: spilled %v vs %v", f.Name, allocName, r, fast.SpilledValues, legacy.SpilledValues)
		}
	}
	if (fast.RegisterOf == nil) != (legacy.RegisterOf == nil) {
		t.Fatalf("%s alloc=%s R=%d: assignment presence differs", f.Name, allocName, r)
	}
	for v := range fast.RegisterOf {
		if fast.RegisterOf[v] != legacy.RegisterOf[v] {
			t.Fatalf("%s alloc=%s R=%d: register of %s: %d vs %d",
				f.Name, allocName, r, f.NameOf(v), fast.RegisterOf[v], legacy.RegisterOf[v])
		}
	}
	if (fast.Rewritten == nil) != (legacy.Rewritten == nil) {
		t.Fatalf("%s alloc=%s R=%d: rewrite presence differs", f.Name, allocName, r)
	}
	if fast.Rewritten != nil && fast.Rewritten.String() != legacy.Rewritten.String() {
		t.Fatalf("%s alloc=%s R=%d: rewritten bodies differ:\n%s\n---\n%s",
			f.Name, allocName, r, fast.Rewritten, legacy.Rewritten)
	}
}

func diffFunc(t *testing.T, f *ir.Func, withOptimal bool) bool {
	dom := f.ComputeDominance()
	if !cliques.Applicable(f, dom) {
		return false
	}
	for _, allocName := range diffAllocators {
		for _, r := range fastPathRegisters {
			comparePaths(t, f, allocName, r)
		}
	}
	if withOptimal {
		for _, r := range fastPathRegisters {
			comparePaths(t, f, "Optimal", r)
		}
	}
	// Default allocator selection (nil Allocator) must agree too.
	fast, errFast := Run(f, Config{Registers: 4})
	legacy, errLegacy := Run(f, Config{Registers: 4, LegacyIFG: true})
	if (errFast != nil) != (errLegacy != nil) {
		t.Fatalf("%s default: fast err=%v legacy err=%v", f.Name, errFast, errLegacy)
	}
	if errFast == nil && fast.Result.Allocator != legacy.Result.Allocator {
		t.Fatalf("%s: default allocator %s vs %s", f.Name, fast.Result.Allocator, legacy.Result.Allocator)
	}
	return true
}

// TestFastPathMatchesIFGPath is the fast-path pin: over the checked-in
// corpus and 300 generator seeds, the IFG-free fast path and the legacy
// explicit-graph path must produce identical allocations — spill sets,
// spill costs, register assignments, rewritten bodies — for every
// applicable allocator × R ∈ {2, 3, 4, 8}.
func TestFastPathMatchesIFGPath(t *testing.T) {
	// Corpus files: single functions and modules.
	corpus, err := filepath.Glob(filepath.Join("..", "ir", "testdata", "*.ir"))
	if err != nil || len(corpus) == 0 {
		t.Fatalf("corpus missing: %v", err)
	}
	modules, _ := filepath.Glob(filepath.Join("..", "ir", "testdata", "modules", "*.ir"))
	checked := 0
	for _, path := range append(corpus, modules...) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ir.ParseModule(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, f := range m.Funcs {
			if diffFunc(t, f, true) {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no corpus function exercised the fast path")
	}

	// 300 generator seeds; the exact solver joins every 10th.
	n := 300
	if testing.Short() {
		n = 60
	}
	fastPathCount := 0
	for seed := int64(0); seed < int64(n); seed++ {
		f := irgen.FromSeed(seed)
		if diffFunc(t, f, seed%10 == 0) {
			fastPathCount++
		}
	}
	if fastPathCount < n/6 {
		t.Fatalf("only %d of %d seeds exercised the fast path", fastPathCount, n)
	}
	t.Logf("corpus: %d functions, seeds: %d/%d on the fast path", checked, fastPathCount, n)
}

// TestFastPathRunnerMatchesFresh pins scratch reuse: a Runner recycling all
// its scratch across a batch of functions produces byte-identical outcomes
// to fresh pipelines.
func TestFastPathRunnerMatchesFresh(t *testing.T) {
	runner := NewRunner()
	for seed := int64(500); seed < 650; seed++ {
		f := irgen.FromSeed(seed)
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		reused, errReused := runner.Run(f, Config{Registers: 4})
		fresh, errFresh := Run(f, Config{Registers: 4})
		if (errReused != nil) != (errFresh != nil) {
			t.Fatalf("seed %d: reuse err=%v fresh err=%v", seed, errReused, errFresh)
		}
		if errReused != nil {
			continue
		}
		if reused.SpillCost != fresh.SpillCost {
			t.Fatalf("seed %d: spill cost %v vs %v", seed, reused.SpillCost, fresh.SpillCost)
		}
		if strings.Join(spillNames(reused), ",") != strings.Join(spillNames(fresh), ",") {
			t.Fatalf("seed %d: spill sets differ", seed)
		}
		for v := range reused.RegisterOf {
			if reused.RegisterOf[v] != fresh.RegisterOf[v] {
				t.Fatalf("seed %d: assignment differs at %s", seed, f.NameOf(v))
			}
		}
		if (reused.Rewritten == nil) != (fresh.Rewritten == nil) {
			t.Fatalf("seed %d: rewrite presence differs", seed)
		}
		if reused.Rewritten != nil && reused.Rewritten.String() != fresh.Rewritten.String() {
			t.Fatalf("seed %d: rewritten bodies differ", seed)
		}
	}
}

func spillNames(out *Outcome) []string {
	names := make([]string, len(out.SpilledValues))
	for i, v := range out.SpilledValues {
		names[i] = out.F.NameOf(v)
	}
	return names
}
