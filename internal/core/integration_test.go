package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alloc"
	"repro/internal/ir"
	"repro/internal/regassign"
	"repro/internal/ssa"
)

// TestIntegrationCorpus drives the whole pipeline over the shared IR corpus
// at several register counts with every graph-model allocator, checking the
// cross-module invariants: valid allocations, optimal lower-bounding, a
// verifiable assignment, and a valid rewrite.
func TestIntegrationCorpus(t *testing.T) {
	files, err := filepath.Glob("../ir/testdata/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{1, 2, 3, 6} {
			base := ir.MustParse(string(src))
			// Non-SSA corpus entries go through SSA construction too.
			var funcs []*ir.Func
			funcs = append(funcs, base)
			if !base.SSA {
				converted, err := ssa.Construct(base)
				if err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				funcs = append(funcs, converted)
			}
			for _, f := range funcs {
				optOut, err := Run(f, Config{Registers: r, Allocator: mustAlloc(t, "Optimal")})
				if err != nil {
					t.Fatalf("%s R=%d Optimal: %v", file, r, err)
				}
				for _, name := range []string{"NL", "BL", "FPL", "BFPL", "GC", "LH", "DLS", "BLS"} {
					if !f.SSA && (name == "NL" || name == "BL" || name == "FPL" || name == "BFPL") {
						continue // chordal-only allocators
					}
					out, err := Run(f, Config{Registers: r, Allocator: mustAlloc(t, name)})
					if err != nil {
						t.Fatalf("%s R=%d %s: %v", file, r, name, err)
					}
					if out.SpillCost < optOut.SpillCost-1e-9 {
						t.Fatalf("%s R=%d: %s (%g) beat Optimal (%g)",
							file, r, name, out.SpillCost, optOut.SpillCost)
					}
					if f.SSA && out.Rewritten != nil {
						if err := out.Rewritten.Validate(); err != nil {
							t.Fatalf("%s R=%d %s rewrite: %v", file, r, name, err)
						}
					}
					if f.SSA && out.RegisterOf != nil {
						for val, reg := range out.RegisterOf {
							if reg != regassign.NoReg && (reg < 0 || reg >= r) {
								t.Fatalf("%s R=%d %s: register %d for %s out of range",
									file, r, name, reg, f.NameOf(val))
							}
						}
					}
				}
			}
		}
	}
}

func mustAlloc(t *testing.T, name string) alloc.Allocator {
	t.Helper()
	a, err := AllocatorByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
