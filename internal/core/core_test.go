package core

import (
	"strings"
	"testing"

	"repro/internal/alloc/optimal"
	"repro/internal/ir"
	"repro/internal/regassign"
	"repro/internal/spillcost"
)

const loopSrc = `
func loop ssa {
b0:
  n = param 0
  k = param 1
  m = param 2
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  t = arith i, k
  j = arith t, m
  br b1
b3:
  r = arith i, k
  ret r
}`

func TestRunPipelineSSA(t *testing.T) {
	f := ir.MustParse(loopSrc)
	out, err := Run(f, Config{Registers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxLive < 3 {
		t.Fatalf("MaxLive = %d, expected pressure above 2", out.MaxLive)
	}
	if len(out.SpilledValues) == 0 {
		t.Fatal("expected spills with R=2")
	}
	if out.Rewritten == nil || out.RegisterOf == nil {
		t.Fatal("rewrite products missing")
	}
	if !strings.Contains(out.Rewritten.String(), "reload") {
		t.Fatal("no reload in rewritten function")
	}
	// All allocated values have registers < R; spilled values have none.
	spilled := map[int]bool{}
	for _, v := range out.SpilledValues {
		spilled[v] = true
	}
	for vx, al := range out.Result.Allocated {
		val := out.ValueOf[vx]
		if al && (out.RegisterOf[val] < 0 || out.RegisterOf[val] >= 2) {
			t.Fatalf("allocated value %s has register %d", f.NameOf(val), out.RegisterOf[val])
		}
		if !al && out.RegisterOf[val] != regassign.NoReg {
			t.Fatalf("spilled value %s has a register", f.NameOf(val))
		}
	}
}

func TestRunNoSpillWhenEnoughRegisters(t *testing.T) {
	f := ir.MustParse(loopSrc)
	out, err := Run(f, Config{Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SpilledValues) != 0 {
		t.Fatalf("spilled %v with 8 registers", out.SpilledValues)
	}
	if out.SpillCost != 0 {
		t.Fatalf("SpillCost = %g", out.SpillCost)
	}
}

func TestRunWithExplicitAllocator(t *testing.T) {
	f := ir.MustParse(loopSrc)
	opt, err := AllocatorByName("Optimal")
	if err != nil {
		t.Fatal(err)
	}
	outOpt, err := Run(f, Config{Registers: 2, Allocator: opt})
	if err != nil {
		t.Fatal(err)
	}
	outDef, err := Run(ir.MustParse(loopSrc), Config{Registers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if outDef.SpillCost < outOpt.SpillCost {
		t.Fatalf("heuristic (%g) beat optimal (%g)", outDef.SpillCost, outOpt.SpillCost)
	}
	if _, ok := opt.(*optimal.Allocator); !ok {
		t.Fatal("AllocatorByName(Optimal) wrong type")
	}
}

func TestRunNonSSAUsesLH(t *testing.T) {
	f := ir.MustParse(`
func ns {
b0:
  x = param 0
  y = param 1
  z = arith x, y
  x = arith z, z
  store x, z
  ret z
}`)
	out, err := Run(f, Config{Registers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Allocator != "LH" {
		t.Fatalf("default non-SSA allocator = %s, want LH", out.Result.Allocator)
	}
	if out.Rewritten != nil {
		t.Fatal("rewrite attempted on non-SSA function")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	f := ir.MustParse(loopSrc)
	if _, err := Run(f, Config{Registers: 0}); err == nil {
		t.Fatal("R=0 accepted")
	}
}

func TestRunSkipRewrite(t *testing.T) {
	f := ir.MustParse(loopSrc)
	out, err := Run(f, Config{Registers: 2, SkipRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rewritten != nil || out.RegisterOf != nil {
		t.Fatal("rewrite ran despite SkipRewrite")
	}
}

func TestAllocatorByNameRegistry(t *testing.T) {
	for _, name := range AllocatorNames() {
		a, err := AllocatorByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("AllocatorByName(%s).Name() = %s", name, a.Name())
		}
	}
	if _, err := AllocatorByName("bogus"); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}

func TestRunAllNamedAllocatorsOnChordal(t *testing.T) {
	// Graph-model allocators (not linear scan) all run through the
	// pipeline on an SSA function.
	for _, name := range []string{"NL", "BL", "FPL", "BFPL", "GC", "Optimal", "DLS", "BLS", "LH"} {
		a, _ := AllocatorByName(name)
		f := ir.MustParse(loopSrc)
		out, err := Run(f, Config{Registers: 2, Allocator: a})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.SpillCost < 0 {
			t.Fatalf("%s: negative spill cost", name)
		}
	}
}

// TestZeroCostValueKeptAcrossLayeredVariants is the end-to-end regression
// test for the zero-cost-value inconsistency: with a stores-are-free cost
// model, a defined-but-unused value has spill cost 0, and NL used to spill
// it (Frank's algorithm never selects zero-weight vertices) while BL kept
// it — inserting needless spill code in the NL rewrite. With registers
// idle, every layered variant must keep it and the rewrite must gain no
// spill or reload instructions.
func TestZeroCostValueKeptAcrossLayeredVariants(t *testing.T) {
	src := `
func deadcheap ssa {
b0:
  a = param 0
  d = unary a
  b = arith a, a
  ret b
}`
	model := spillcost.Model{LoopBase: 10, StoreFactor: 0}
	for _, name := range []string{"NL", "BL", "FPL", "BFPL"} {
		f := ir.MustParse(src)
		a, err := AllocatorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(f, Config{Registers: 4, Allocator: a, CostModel: model})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out.SpilledValues) != 0 {
			names := make([]string, len(out.SpilledValues))
			for i, v := range out.SpilledValues {
				names[i] = f.NameOf(v)
			}
			t.Fatalf("%s: spilled %v with registers idle", name, names)
		}
		if out.Rewritten == nil {
			t.Fatalf("%s: no rewrite produced", name)
		}
		for _, b := range out.Rewritten.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpSpill || ins.Op == ir.OpReload {
					t.Fatalf("%s: rewrite gained spill code: %s", name, out.Rewritten)
				}
			}
		}
	}
}

// TestCostModelValidatedByRun: meaningless cost models are rejected before
// allocation instead of producing garbage costs.
func TestCostModelValidatedByRun(t *testing.T) {
	f := ir.MustParse(`
func v ssa {
b0:
  a = param 0
  ret a
}`)
	_, err := Run(f, Config{Registers: 2, CostModel: spillcost.Model{LoopBase: -3, StoreFactor: 1}})
	if err == nil {
		t.Fatal("negative LoopBase accepted")
	}
}
