// Package core is the high-level entry point of the layered register
// allocation library: it wires the full decoupled pipeline together —
// loop analysis, liveness, interference analysis, spill cost estimation,
// spill-everywhere allocation with a pluggable allocator, tree-scan register
// assignment, and spill-code insertion.
//
// Typical use:
//
//	f := ir.MustParse(src)
//	out, err := core.Run(f, core.Config{Registers: 8})
//	// out.Result: which values stay in registers
//	// out.RegisterOf: concrete register per value (SSA functions)
//	// out.Rewritten: the function with spill/reload code inserted
//
// Two interference representations back the pipeline. Strict-SSA functions
// take the IFG-free fast path: the clique structure the layered allocators
// need (live sets, def-point cliques, dominance elimination order) is
// derived straight from liveness by internal/cliques, and no interference
// graph is ever materialized unless an edge-based allocator (GC, Optimal,
// LH) asks for one. Non-SSA functions — and SSA functions with non-inert
// unreachable code, or any run with Config.LegacyIFG — build the explicit
// graph via internal/ifg as before. Both paths produce identical
// allocations (pinned by TestFastPathMatchesIFGPath).
//
// Lower-level control (custom cost models, direct graph problems) is
// available from the internal packages this one composes: alloc, cliques,
// ifg, liveness, spillcost, regassign.
package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/alloc/chaitin"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/linearscan"
	"repro/internal/alloc/optimal"
	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/cliques"
	"repro/internal/coalesce"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/raerr"
	"repro/internal/regassign"
	"repro/internal/spillcost"
)

// Config controls a pipeline run.
type Config struct {
	// Registers is the register count R (required, ≥ 1).
	Registers int
	// Allocator selects the allocation algorithm. Nil picks the paper's
	// best general-purpose chordal allocator (BFPL) for SSA functions and
	// the layered heuristic (LH) for non-SSA functions.
	Allocator alloc.Allocator
	// CostModel overrides the spill-cost estimate (zero value = default).
	CostModel spillcost.Model
	// SkipRewrite disables spill-code insertion and register assignment
	// (allocation decisions only).
	SkipRewrite bool
	// LegacyIFG forces the explicit interference-graph path even for
	// functions eligible for the IFG-free fast path. Diagnostics and the
	// fast-path differential tests only; results are identical either way.
	LegacyIFG bool
	// TrustedCostModel skips the per-function CostModel validation. Batch
	// drivers that validate the model once per module set this; leave it
	// false everywhere else.
	TrustedCostModel bool
	// Constraints, when non-nil, switches the pipeline to machine-constrained
	// allocation: values are allocated per register class against the
	// machine's class capacities, pre-colored values keep their ABI register,
	// and values live across clobbering calls avoid (or spill around) the
	// caller-saved registers. Requires strict SSA; see runConstrained.
	Constraints *arch.Constraints
	// Budget, when Active, bounds the run's resources: a wall-clock
	// deadline, a work-step budget charged cooperatively at analysis
	// granularity inside the hot loops, and a max-values/max-blocks
	// admission gate checked before any analysis runs. Enforcement is
	// cooperative — the metered stages (liveness, clique derivation,
	// layered/linear-scan allocation, assignment) stop at the next charge
	// point; an allocator that ignores Problem.Meter is only caught by the
	// wall-clock checks at stage boundaries.
	Budget budget.Limits
	// Coalescing enables coalescing-biased register assignment on the
	// IFG-free fast path: φ/copy-related values are grouped into affinity
	// classes (union-find; Conservative applies the Briggs criterion against
	// clique-membership degrees) and the tree-scan prefers an affine
	// partner's register when it is free — never at the cost of an extra
	// spill, and never changing which values are allocated. The zero value
	// (coalesce.Off) reproduces the unbiased pipeline byte-for-byte.
	// Incompatible with LegacyIFG; no-op for non-SSA functions and on
	// degraded rungs.
	Coalescing coalesce.Policy
	// Degrade converts a budget trip into a degraded-but-correct Outcome
	// instead of an error: the run falls down the ladder
	// layered → linear-scan → spill-all (each rung cheaper and itself
	// budget-checked; the spill-all floor is O(V) and never fails), and the
	// Outcome records the rung and reason in Degraded. With Degrade false a
	// trip surfaces as a *raerr.FuncError wrapping *raerr.BudgetError.
	Degrade bool
}

// Rung labels of the degradation ladder, recorded in Degradation.Rung.
const (
	// RungLinearScan: the configured allocator ran out of budget during
	// allocation or assignment; the result was recomputed by the DLS linear
	// scan under a fresh (small) step allowance.
	RungLinearScan = "linear-scan"
	// RungSpillAll: the floor — every occurring value is spilled. Reached
	// when the budget trips before the problem structure exists (admission,
	// liveness, cliques) or when the linear-scan rung itself fails.
	RungSpillAll = "spill-all"
)

// Degradation records how a budget-governed run fell down the ladder.
type Degradation struct {
	// Rung is the ladder rung that produced the outcome (RungLinearScan or
	// RungSpillAll).
	Rung string
	// Stage is the pipeline stage whose budget trip forced the fall (one of
	// the raerr.Stage* constants).
	Stage string
	// Reason is the budget violation that triggered the degradation.
	Reason *raerr.BudgetError
}

// Outcome bundles everything a client may want from one allocation run.
type Outcome struct {
	F *ir.Func
	// Build is the explicit interference-graph build; nil on the IFG-free
	// fast path (use Problem.Graph() to materialize one on demand).
	Build *ifg.Build
	// Cliques is the fast path's structure; nil on the legacy graph path.
	Cliques *cliques.Structure
	Problem *alloc.Problem
	Result  *alloc.Result
	// VertexOf/ValueOf translate between value IDs and problem vertices
	// (identical on both paths).
	VertexOf []int
	ValueOf  []int
	// SpilledValues lists the spilled value IDs, sorted.
	SpilledValues []int
	// SpillCost is the total cost of the spilled values.
	SpillCost float64
	// MaxLive is the peak register pressure before spilling.
	MaxLive int
	// RegisterOf maps value ID → register number (regassign.NoReg for
	// spilled values); only set for SSA functions when SkipRewrite is off.
	RegisterOf []int
	// Rewritten is the function with spill-everywhere code inserted; only
	// set for SSA functions when SkipRewrite is off.
	Rewritten *ir.Func
	// Coalesce, when non-nil, reports the effect of coalescing-biased
	// assignment on the function's φ/copy moves (total, eliminated and
	// residual dynamic move cost); set only when Config.Coalescing is on and
	// biased assignment ran (fast path, rewrite on, not degraded).
	Coalesce *coalesce.Stats
	// Degraded, when non-nil, records that the run exceeded its budget and
	// fell down the degradation ladder; the outcome is correct but of lower
	// spill quality than the configured allocator would have produced.
	// Degraded outcomes must not be cached (the trip point depends on
	// wall-clock time).
	Degraded *Degradation
	// BudgetSpent is the work-step total charged against the budget
	// (0 when the run carried no budget).
	BudgetSpent int64
}

// Runner executes the pipeline repeatedly, reusing the analysis scratch
// memory (liveness bitsets, clique-structure transients, assignment and
// rewrite scratch) across functions instead of reallocating it per call —
// the batch pipeline gives each worker one Runner. Outcomes never reference
// scratch memory, so they stay valid across subsequent Run calls; a Runner
// is not safe for concurrent use.
type Runner struct {
	live *liveness.Scratch
	cs   *cliques.Scratch
	ra   *regassign.Scratch
	// Cached default allocators: layered allocators reuse their own
	// internal scratch across calls, so the defaults are resolved once per
	// Runner rather than once per function.
	defaultChordal alloc.Allocator
	defaultGeneral alloc.Allocator
	// Reusable value-indexed flag slices for the rewrite stage.
	allocatedVals []bool
	spilledVals   []bool
	// Reusable spill-cost vector (BuildProblem copies what it keeps, so
	// the buffer never escapes into an Outcome).
	costs []float64
	// Affinity-construction scratch for coalescing-biased assignment.
	bias *coalesce.BiasScratch
}

// NewRunner returns a Runner with empty scratch.
func NewRunner() *Runner {
	return &Runner{
		live:           liveness.NewScratch(),
		cs:             cliques.NewScratch(),
		ra:             regassign.NewScratch(),
		defaultChordal: layered.BFPL(),
		defaultGeneral: layered.NewLH(),
	}
}

// Run executes the decoupled register-allocation pipeline on f, reusing the
// runner's scratch.
func (r *Runner) Run(f *ir.Func, cfg Config) (*Outcome, error) {
	return run(f, cfg, r)
}

// Run executes the decoupled register-allocation pipeline on f.
func Run(f *ir.Func, cfg Config) (*Outcome, error) {
	return run(f, cfg, nil)
}

func run(f *ir.Func, cfg Config, runner *Runner) (*Outcome, error) {
	if cfg.Registers < 1 {
		return nil, fmt.Errorf("%w: Registers must be ≥ 1, got %d", raerr.ErrInvalidConfig, cfg.Registers)
	}
	if !cfg.TrustedCostModel {
		if err := cfg.CostModel.Validate(); err != nil {
			return nil, fmt.Errorf("%w: invalid cost model: %w", raerr.ErrInvalidConfig, err)
		}
	}
	if cfg.Coalescing != coalesce.Off {
		if !cfg.Coalescing.Valid() {
			return nil, fmt.Errorf("%w: unknown coalescing policy %d", raerr.ErrInvalidConfig, cfg.Coalescing)
		}
		if cfg.LegacyIFG {
			return nil, fmt.Errorf("%w: coalescing-biased assignment requires the IFG-free fast path (unset LegacyIFG)",
				raerr.ErrInvalidConfig)
		}
	}
	if cfg.Constraints != nil {
		return runConstrained(f, cfg, runner)
	}
	dom, err := f.ValidateAnalyzed()
	if err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "validate",
			Err: fmt.Errorf("invalid input function: %w", err)}
	}
	m := budget.NewMeter(cfg.Budget)
	if be := cfg.Budget.Admit(f.NumValues, len(f.Blocks)); be != nil {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "admission", Err: be}
		}
		return spillAll(f, cfg, dom, nil, m, be)
	}
	f.ComputeLoops(dom)
	m.SetStage(raerr.StageLiveness)
	var info *liveness.Info
	if runner != nil {
		info, err = runner.live.ComputeBudget(f, m)
	} else {
		info, err = liveness.ComputeBudget(f, m)
	}
	if err != nil {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageLiveness, Err: err}
		}
		return spillAll(f, cfg, dom, nil, m, m.BudgetErr())
	}
	var costs []float64
	if runner != nil {
		runner.costs = spillcost.CostsInto(runner.costs, f, cfg.CostModel)
		costs = runner.costs
	} else {
		costs = spillcost.Costs(f, cfg.CostModel)
	}

	// Interference analysis: clique structure straight from liveness for
	// strict SSA (the fast path), explicit graph otherwise.
	var build *ifg.Build
	var cs *cliques.Structure
	var p *alloc.Problem
	m.SetStage(raerr.StageCliques)
	if !cfg.LegacyIFG && cliques.Applicable(f, dom) {
		var scratch *cliques.Scratch
		if runner != nil {
			scratch = runner.cs
		}
		cs, err = cliques.DeriveBudget(info, dom, scratch, m)
		if err != nil {
			if !cfg.Degrade {
				return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageCliques, Err: err}
			}
			return spillAll(f, cfg, dom, info, m, m.BudgetErr())
		}
	}
	if cs != nil {
		p = alloc.BuildProblem(alloc.Spec{Cliques: cs, Costs: costs, R: cfg.Registers})
		p.Intervals = linearscan.IntervalsFromLiveness(info, cs.VertexOf, cs.N)
	} else {
		// The explicit-graph build has no internal metering; the stage
		// boundary's forced clock check keeps a deadline honest here.
		if !m.CheckNow() {
			if !cfg.Degrade {
				return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageCliques, Err: m.Err()}
			}
			return spillAll(f, cfg, dom, info, m, m.BudgetErr())
		}
		build = ifg.FromLiveness(info)
		p = alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: cfg.Registers, Dom: dom})
		p.Intervals = linearscan.BuildIntervals(info, build)
	}

	a := cfg.Allocator
	if a == nil {
		switch {
		case p.Chordal && runner != nil:
			a = runner.defaultChordal
		case p.Chordal:
			a = layered.BFPL()
		case runner != nil:
			a = runner.defaultGeneral
		default:
			a = layered.NewLH()
		}
	}
	if !p.Chordal && alloc.ChordalOnly(a.Name()) {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("%w: allocator %s requires a chordal (strict-SSA) instance",
				raerr.ErrNotSSA, a.Name())}
	}
	// Structural preconditions (chordality, intervals, option sanity) are
	// checked up front so a malformed problem surfaces as a typed error
	// instead of a panic from inside the algorithm.
	if c, ok := a.(alloc.ProblemChecker); ok {
		if err := c.CheckProblem(p); err != nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate", Err: err}
		}
	}
	m.SetStage(raerr.StageAllocate)
	p.Meter = m
	res := a.Allocate(p)
	p.Meter = nil
	// A structurally malformed result (custom allocators) is a contract
	// violation, not a pressure failure — keep the taxonomy honest.
	if res == nil || len(res.Allocated) != p.N() {
		got := -1
		if res != nil {
			got = len(res.Allocated)
		}
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("allocator %s returned a malformed result: %d of %d vertices covered",
				a.Name(), got, p.N())}
	}
	if err := p.Validate(res); err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("%w: allocator %s returned an invalid allocation: %w",
				raerr.ErrPressureUnsatisfiable, a.Name(), err)}
	}
	// A metered allocator stopped at a charge boundary (its partial result
	// is valid but incomplete); an un-metered one is caught by the clock.
	if m.Exceeded() || !m.CheckNow() {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageAllocate, Err: m.Err()}
		}
		return linearScanRung(f, cfg, runner, dom, info, build, cs, p, m)
	}

	out := outcomeFrom(f, build, cs, p, res)
	if !cfg.SkipRewrite && f.SSA && p.Chordal {
		m.SetStage(raerr.StageAssign)
		if ferr := assignAndRewrite(out, f, cfg, dom, info, runner, m); ferr != nil {
			if m.Exceeded() && cfg.Degrade {
				return linearScanRung(f, cfg, runner, dom, info, build, cs, p, m)
			}
			return nil, ferr
		}
	}
	out.BudgetSpent = m.Spent()
	return out, nil
}

// outcomeFrom assembles the Outcome common to every ladder rung: problem,
// result, vertex maps, spilled-value list and spill cost.
func outcomeFrom(f *ir.Func, build *ifg.Build, cs *cliques.Structure, p *alloc.Problem, res *alloc.Result) *Outcome {
	out := &Outcome{
		F:         f,
		Build:     build,
		Cliques:   cs,
		Problem:   p,
		Result:    res,
		SpillCost: res.SpillCost(p),
	}
	if cs != nil {
		out.VertexOf, out.ValueOf = cs.VertexOf, cs.ValueOf
		out.MaxLive = cs.MaxLive
	} else {
		out.VertexOf, out.ValueOf = build.VertexOf, build.ValueOf
		out.MaxLive = build.MaxLive
	}
	spilledCount := 0
	for _, al := range res.Allocated {
		if !al {
			spilledCount++
		}
	}
	if spilledCount > 0 {
		// ValueOf ascends with the vertex ID, so this list is born sorted.
		out.SpilledValues = make([]int, 0, spilledCount)
		for vx, al := range res.Allocated {
			if !al {
				out.SpilledValues = append(out.SpilledValues, out.ValueOf[vx])
			}
		}
	}
	return out
}

// assignAndRewrite runs tree-scan assignment, assignment verification and
// spill-code insertion for an SSA chordal outcome, charging the given meter
// (the run meter, or a rung sub-meter). On failure the returned error is a
// ready-to-surface *raerr.FuncError; a budget trip is detectable on the
// meter itself.
func assignAndRewrite(out *Outcome, f *ir.Func, cfg Config, dom *ir.Dominance, info *liveness.Info, runner *Runner, meter *budget.Meter) error {
	res := out.Result
	var allocatedVals, spilledVals []bool
	if runner != nil {
		runner.allocatedVals = resizeFlags(runner.allocatedVals, f.NumValues)
		runner.spilledVals = resizeFlags(runner.spilledVals, f.NumValues)
		allocatedVals, spilledVals = runner.allocatedVals, runner.spilledVals
	} else {
		allocatedVals = make([]bool, f.NumValues)
		spilledVals = make([]bool, f.NumValues)
	}
	for vx, al := range res.Allocated {
		if al {
			allocatedVals[out.ValueOf[vx]] = true
		}
	}
	var ra *regassign.Scratch
	if runner != nil {
		ra = runner.ra
	}
	// Coalescing-biased assignment: φ/copy moves and affinity classes come
	// straight from the function and the clique structure — no IFG. Degraded
	// rungs skip the bias (a budget-tripped run should not buy move quality
	// with extra analysis); bias never changes the allocated set, so the
	// spill decisions above are untouched either way.
	var bias *regassign.Bias
	var moves []coalesce.VMove
	var aff *coalesce.Affinity
	if cfg.Coalescing != coalesce.Off && out.Cliques != nil && out.Degraded == nil {
		moves = coalesce.MovesFromFunc(f, cfg.CostModel)
		if len(moves) > 0 {
			var sc *coalesce.BiasScratch
			if runner != nil {
				if runner.bias == nil {
					runner.bias = &coalesce.BiasScratch{}
				}
				sc = runner.bias
			}
			aff = coalesce.BuildAffinity(out.Cliques, moves, cfg.Coalescing, cfg.Registers, sc)
			if aff != nil {
				bias = regassign.NewBias(aff.ClassOf, aff.NumClasses)
			}
		}
	}
	regOf, err := regassign.AssignBiasedBudget(f, dom, info, allocatedVals, cfg.Registers, ra, meter, bias)
	if err != nil {
		if meter.Exceeded() {
			return &raerr.FuncError{Func: f.Name, Stage: raerr.StageAssign, Err: err}
		}
		return &raerr.FuncError{Func: f.Name, Stage: "assign",
			Err: fmt.Errorf("%w: assignment after allocation failed: %w",
				raerr.ErrPressureUnsatisfiable, err)}
	}
	if err := regassign.VerifyAssignment(info, allocatedVals, regOf); err != nil {
		return &raerr.FuncError{Func: f.Name, Stage: "assign",
			Err: fmt.Errorf("assignment verification failed: %w", err)}
	}
	out.RegisterOf = regOf
	if cfg.Coalescing != coalesce.Off && out.Cliques != nil && out.Degraded == nil {
		out.Coalesce = coalesce.StatsFor(cfg.Coalescing, moves, regOf, aff)
	}
	for _, v := range out.SpilledValues {
		spilledVals[v] = true
	}
	out.Rewritten = regassign.InsertSpillCode(f, spilledVals)
	if len(out.SpilledValues) > 0 {
		// With no spills the rewrite is a plain clone of the function
		// validated above; re-validating it would just recompute
		// dominance for nothing.
		if err := out.Rewritten.Validate(); err != nil {
			return &raerr.FuncError{Func: f.Name, Stage: "rewrite",
				Err: fmt.Errorf("spill-code rewrite broke the function: %w", err)}
		}
	}
	return nil
}

// linearScanRung is the middle rung of the degradation ladder: the
// configured allocator ran out of budget during allocation or assignment,
// so the allocation is redone by the DLS linear scan under a fresh, small
// step allowance (the scan is O(n log n); the allowance only matters when
// the shared wall-clock deadline is already near). Any failure inside the
// rung — no intervals to scan, an invalid result, an assignment trip —
// falls through to the spill-all floor.
func linearScanRung(f *ir.Func, cfg Config, runner *Runner, dom *ir.Dominance, info *liveness.Info, build *ifg.Build, cs *cliques.Structure, p *alloc.Problem, m *budget.Meter) (*Outcome, error) {
	trip := m.BudgetErr()
	if p.Intervals == nil {
		return spillAll(f, cfg, dom, info, m, trip)
	}
	rm := m.Rung(32*int64(p.N()) + 1024)
	rm.SetStage(raerr.StageAllocate)
	p.Meter = rm
	res := linearscan.DLS().Allocate(p)
	p.Meter = nil
	if err := p.Validate(res); err != nil {
		m.AddSpent(rm.Spent())
		return spillAll(f, cfg, dom, info, m, trip)
	}
	out := outcomeFrom(f, build, cs, p, res)
	out.Degraded = &Degradation{Rung: RungLinearScan, Stage: trip.Stage, Reason: trip}
	if !cfg.SkipRewrite && f.SSA && p.Chordal {
		rm.SetStage(raerr.StageAssign)
		if ferr := assignAndRewrite(out, f, cfg, dom, info, runner, rm); ferr != nil {
			m.AddSpent(rm.Spent())
			return spillAll(f, cfg, dom, info, m, trip)
		}
	}
	m.AddSpent(rm.Spent())
	out.BudgetSpent = m.Spent()
	return out, nil
}

// spillAll is the floor of the degradation ladder: every value occurring in
// reachable code is spilled. It needs no liveness, no interference
// structure and no assignment — O(V) work — so it succeeds under any
// budget; the trip that forced the fall is recorded in Degraded. info may
// be nil (an admission or liveness trip happens before liveness exists), in
// which case MaxLive is reported as 0.
func spillAll(f *ir.Func, cfg Config, dom *ir.Dominance, info *liveness.Info, m *budget.Meter, trip *raerr.BudgetError) (*Outcome, error) {
	nv := f.NumValues
	occurs := make([]bool, nv)
	mark := func(v int) {
		if v >= 0 && v < nv {
			occurs[v] = true
		}
	}
	for _, b := range f.Blocks {
		if dom.Order[b.ID] < 0 {
			continue // unreachable code contributes no problem values
		}
		for _, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				mark(ins.Def)
			}
			for _, u := range ins.Uses {
				mark(u)
			}
		}
	}
	// Dense vertex numbering ascending by value ID — the same ordering the
	// analysis paths use, so vertex↔value maps stay interchangeable.
	vertexOf := make([]int, nv)
	for i := range vertexOf {
		vertexOf[i] = -1
	}
	valueOf := make([]int, 0, nv)
	for v := 0; v < nv; v++ {
		if occurs[v] {
			vertexOf[v] = len(valueOf)
			valueOf = append(valueOf, v)
		}
	}
	f.ComputeLoops(dom)
	costs := spillcost.Costs(f, cfg.CostModel)
	w := make([]float64, len(valueOf))
	for vx, val := range valueOf {
		w[vx] = costs[val]
	}
	// A literal Problem: no live sets means Validate is trivially satisfied,
	// which is exact — with nothing allocated, no pressure constraint can
	// bind.
	p := &alloc.Problem{R: cfg.Registers, Weight: w, Name: f.Name}
	res := &alloc.Result{Allocated: make([]bool, len(valueOf)), Allocator: "spill-all"}
	out := &Outcome{
		F:             f,
		Problem:       p,
		Result:        res,
		VertexOf:      vertexOf,
		ValueOf:       valueOf,
		SpilledValues: append([]int(nil), valueOf...),
		SpillCost:     res.SpillCost(p),
	}
	if info != nil {
		out.MaxLive = info.MaxLive
	}
	if trip != nil {
		out.Degraded = &Degradation{Rung: RungSpillAll, Stage: trip.Stage, Reason: trip}
	}
	if !cfg.SkipRewrite && f.SSA {
		regOf := make([]int, nv)
		for i := range regOf {
			regOf[i] = regassign.NoReg
		}
		out.RegisterOf = regOf
		out.Rewritten = regassign.InsertSpillCode(f, occurs)
		if len(valueOf) > 0 {
			if err := out.Rewritten.Validate(); err != nil {
				return nil, &raerr.FuncError{Func: f.Name, Stage: "rewrite",
					Err: fmt.Errorf("spill-all rewrite broke the function: %w", err)}
			}
		}
	}
	out.BudgetSpent = m.Spent()
	return out, nil
}

// resizeFlags returns s resized to n with every flag cleared.
func resizeFlags(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// The paper's allocators, registered once at init into the shared registry
// (internal/alloc); the public regalloc.Register adds external ones to the
// same table. NL/BL/FPL/BFPL are chordal-only: they require a strict-SSA
// (chordal) instance and the pipeline rejects them on anything else with a
// typed raerr.ErrNotSSA.
func init() {
	alloc.MustRegisterAllocator("NL", true, func() alloc.Allocator { return layered.NL() })
	alloc.MustRegisterAllocator("BL", true, func() alloc.Allocator { return layered.BL() })
	alloc.MustRegisterAllocator("FPL", true, func() alloc.Allocator { return layered.FPL() })
	alloc.MustRegisterAllocator("BFPL", true, func() alloc.Allocator { return layered.BFPL() })
	alloc.MustRegisterAllocator("LH", false, func() alloc.Allocator { return layered.NewLH() })
	alloc.MustRegisterAllocator("GC", false, func() alloc.Allocator { return chaitin.New() })
	alloc.MustRegisterAllocator("DLS", false, func() alloc.Allocator { return linearscan.DLS() })
	alloc.MustRegisterAllocator("BLS", false, func() alloc.Allocator { return linearscan.BLS() })
	alloc.MustRegisterAllocator("Optimal", false, func() alloc.Allocator { return optimal.New() })
}

// AllocatorByName resolves a registered allocator name (case-insensitive) to
// a fresh instance: the paper's NL, BL, FPL, BFPL, LH, GC, DLS, BLS and
// Optimal, plus anything added through the registry. Unknown names fail with
// raerr.ErrUnknownAllocator.
func AllocatorByName(name string) (alloc.Allocator, error) {
	return alloc.NewByName(name)
}

// AllocatorNames lists the registered allocator names, sorted.
func AllocatorNames() []string {
	return alloc.RegisteredNames()
}
