// Package core is the high-level entry point of the layered register
// allocation library: it wires the full decoupled pipeline together —
// loop analysis, liveness, interference graph construction, spill cost
// estimation, spill-everywhere allocation with a pluggable allocator,
// tree-scan register assignment, and spill-code insertion.
//
// Typical use:
//
//	f := ir.MustParse(src)
//	out, err := core.Run(f, core.Config{Registers: 8})
//	// out.Result: which values stay in registers
//	// out.RegisterOf: concrete register per value (SSA functions)
//	// out.Rewritten: the function with spill/reload code inserted
//
// Lower-level control (custom cost models, direct graph problems) is
// available from the internal packages this one composes: alloc, ifg,
// liveness, spillcost, regassign.
package core

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/alloc/chaitin"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/linearscan"
	"repro/internal/alloc/optimal"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/regassign"
	"repro/internal/spillcost"
)

// Config controls a pipeline run.
type Config struct {
	// Registers is the register count R (required, ≥ 1).
	Registers int
	// Allocator selects the allocation algorithm. Nil picks the paper's
	// best general-purpose chordal allocator (BFPL) for SSA functions and
	// the layered heuristic (LH) for non-SSA functions.
	Allocator alloc.Allocator
	// CostModel overrides the spill-cost estimate (zero value = default).
	CostModel spillcost.Model
	// SkipRewrite disables spill-code insertion and register assignment
	// (allocation decisions only).
	SkipRewrite bool
}

// Outcome bundles everything a client may want from one allocation run.
type Outcome struct {
	F       *ir.Func
	Build   *ifg.Build
	Problem *alloc.Problem
	Result  *alloc.Result
	// SpilledValues lists the spilled value IDs, sorted.
	SpilledValues []int
	// SpillCost is the total cost of the spilled values.
	SpillCost float64
	// MaxLive is the peak register pressure before spilling.
	MaxLive int
	// RegisterOf maps value ID → register number (regassign.NoReg for
	// spilled values); only set for SSA functions when SkipRewrite is off.
	RegisterOf []int
	// Rewritten is the function with spill-everywhere code inserted; only
	// set for SSA functions when SkipRewrite is off.
	Rewritten *ir.Func
}

// Runner executes the pipeline repeatedly, reusing the analysis scratch
// memory (liveness bitsets, live-set snapshots) across functions instead of
// reallocating it per call — the batch pipeline gives each worker one
// Runner. Outcomes never reference scratch memory, so they stay valid across
// subsequent Run calls; a Runner is not safe for concurrent use.
type Runner struct {
	live *liveness.Scratch
}

// NewRunner returns a Runner with empty scratch.
func NewRunner() *Runner { return &Runner{live: liveness.NewScratch()} }

// Run executes the decoupled register-allocation pipeline on f, reusing the
// runner's scratch.
func (r *Runner) Run(f *ir.Func, cfg Config) (*Outcome, error) {
	return run(f, cfg, r.live)
}

// Run executes the decoupled register-allocation pipeline on f.
func Run(f *ir.Func, cfg Config) (*Outcome, error) {
	return run(f, cfg, nil)
}

func run(f *ir.Func, cfg Config, scratch *liveness.Scratch) (*Outcome, error) {
	if cfg.Registers < 1 {
		return nil, fmt.Errorf("core: Registers must be ≥ 1, got %d", cfg.Registers)
	}
	if err := cfg.CostModel.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid cost model: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input function: %w", err)
	}
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	var info *liveness.Info
	if scratch != nil {
		info = scratch.Compute(f)
	} else {
		info = liveness.Compute(f)
	}
	build := ifg.FromLiveness(info)
	costs := spillcost.Costs(f, cfg.CostModel)
	p := alloc.NewProblem(build, costs, cfg.Registers)
	p.Intervals = linearscan.BuildIntervals(info, build)

	a := cfg.Allocator
	if a == nil {
		if p.Chordal {
			a = layered.BFPL()
		} else {
			a = layered.NewLH()
		}
	}
	res := a.Allocate(p)
	if err := p.Validate(res); err != nil {
		return nil, fmt.Errorf("core: allocator %s returned an invalid allocation: %w", a.Name(), err)
	}

	out := &Outcome{
		F:         f,
		Build:     build,
		Problem:   p,
		Result:    res,
		SpillCost: res.SpillCost(p),
		MaxLive:   build.MaxLive,
	}
	for _, v := range res.Spilled() {
		out.SpilledValues = append(out.SpilledValues, build.ValueOf[v])
	}
	sort.Ints(out.SpilledValues)

	if !cfg.SkipRewrite && f.SSA && p.Chordal {
		allocatedVals := make([]bool, f.NumValues)
		for vx, al := range res.Allocated {
			if al {
				allocatedVals[build.ValueOf[vx]] = true
			}
		}
		regOf, err := regassign.Assign(f, info, allocatedVals, cfg.Registers)
		if err != nil {
			return nil, fmt.Errorf("core: assignment after allocation failed: %w", err)
		}
		if err := regassign.VerifyAssignment(info, allocatedVals, regOf); err != nil {
			return nil, fmt.Errorf("core: assignment verification failed: %w", err)
		}
		out.RegisterOf = regOf
		spilledVals := make([]bool, f.NumValues)
		for _, v := range out.SpilledValues {
			spilledVals[v] = true
		}
		out.Rewritten = regassign.InsertSpillCode(f, spilledVals)
		if err := out.Rewritten.Validate(); err != nil {
			return nil, fmt.Errorf("core: spill-code rewrite broke the function: %w", err)
		}
	}
	return out, nil
}

// AllocatorByName resolves the paper's allocator names: NL, BL, FPL, BFPL,
// LH, GC, DLS, BLS, Optimal.
func AllocatorByName(name string) (alloc.Allocator, error) {
	switch name {
	case "NL":
		return layered.NL(), nil
	case "BL":
		return layered.BL(), nil
	case "FPL":
		return layered.FPL(), nil
	case "BFPL":
		return layered.BFPL(), nil
	case "LH":
		return layered.NewLH(), nil
	case "GC":
		return chaitin.New(), nil
	case "DLS":
		return linearscan.DLS(), nil
	case "BLS":
		return linearscan.BLS(), nil
	case "Optimal":
		return optimal.New(), nil
	}
	return nil, fmt.Errorf("core: unknown allocator %q", name)
}

// AllocatorNames lists the registered allocator names.
func AllocatorNames() []string {
	return []string{"NL", "BL", "FPL", "BFPL", "LH", "GC", "DLS", "BLS", "Optimal"}
}
