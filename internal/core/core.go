// Package core is the high-level entry point of the layered register
// allocation library: it wires the full decoupled pipeline together —
// loop analysis, liveness, interference analysis, spill cost estimation,
// spill-everywhere allocation with a pluggable allocator, tree-scan register
// assignment, and spill-code insertion.
//
// Typical use:
//
//	f := ir.MustParse(src)
//	out, err := core.Run(f, core.Config{Registers: 8})
//	// out.Result: which values stay in registers
//	// out.RegisterOf: concrete register per value (SSA functions)
//	// out.Rewritten: the function with spill/reload code inserted
//
// Two interference representations back the pipeline. Strict-SSA functions
// take the IFG-free fast path: the clique structure the layered allocators
// need (live sets, def-point cliques, dominance elimination order) is
// derived straight from liveness by internal/cliques, and no interference
// graph is ever materialized unless an edge-based allocator (GC, Optimal,
// LH) asks for one. Non-SSA functions — and SSA functions with non-inert
// unreachable code, or any run with Config.LegacyIFG — build the explicit
// graph via internal/ifg as before. Both paths produce identical
// allocations (pinned by TestFastPathMatchesIFGPath).
//
// Lower-level control (custom cost models, direct graph problems) is
// available from the internal packages this one composes: alloc, cliques,
// ifg, liveness, spillcost, regassign.
package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/alloc/chaitin"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/linearscan"
	"repro/internal/alloc/optimal"
	"repro/internal/arch"
	"repro/internal/cliques"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/raerr"
	"repro/internal/regassign"
	"repro/internal/spillcost"
)

// Config controls a pipeline run.
type Config struct {
	// Registers is the register count R (required, ≥ 1).
	Registers int
	// Allocator selects the allocation algorithm. Nil picks the paper's
	// best general-purpose chordal allocator (BFPL) for SSA functions and
	// the layered heuristic (LH) for non-SSA functions.
	Allocator alloc.Allocator
	// CostModel overrides the spill-cost estimate (zero value = default).
	CostModel spillcost.Model
	// SkipRewrite disables spill-code insertion and register assignment
	// (allocation decisions only).
	SkipRewrite bool
	// LegacyIFG forces the explicit interference-graph path even for
	// functions eligible for the IFG-free fast path. Diagnostics and the
	// fast-path differential tests only; results are identical either way.
	LegacyIFG bool
	// TrustedCostModel skips the per-function CostModel validation. Batch
	// drivers that validate the model once per module set this; leave it
	// false everywhere else.
	TrustedCostModel bool
	// Constraints, when non-nil, switches the pipeline to machine-constrained
	// allocation: values are allocated per register class against the
	// machine's class capacities, pre-colored values keep their ABI register,
	// and values live across clobbering calls avoid (or spill around) the
	// caller-saved registers. Requires strict SSA; see runConstrained.
	Constraints *arch.Constraints
}

// Outcome bundles everything a client may want from one allocation run.
type Outcome struct {
	F *ir.Func
	// Build is the explicit interference-graph build; nil on the IFG-free
	// fast path (use Problem.Graph() to materialize one on demand).
	Build *ifg.Build
	// Cliques is the fast path's structure; nil on the legacy graph path.
	Cliques *cliques.Structure
	Problem *alloc.Problem
	Result  *alloc.Result
	// VertexOf/ValueOf translate between value IDs and problem vertices
	// (identical on both paths).
	VertexOf []int
	ValueOf  []int
	// SpilledValues lists the spilled value IDs, sorted.
	SpilledValues []int
	// SpillCost is the total cost of the spilled values.
	SpillCost float64
	// MaxLive is the peak register pressure before spilling.
	MaxLive int
	// RegisterOf maps value ID → register number (regassign.NoReg for
	// spilled values); only set for SSA functions when SkipRewrite is off.
	RegisterOf []int
	// Rewritten is the function with spill-everywhere code inserted; only
	// set for SSA functions when SkipRewrite is off.
	Rewritten *ir.Func
}

// Runner executes the pipeline repeatedly, reusing the analysis scratch
// memory (liveness bitsets, clique-structure transients, assignment and
// rewrite scratch) across functions instead of reallocating it per call —
// the batch pipeline gives each worker one Runner. Outcomes never reference
// scratch memory, so they stay valid across subsequent Run calls; a Runner
// is not safe for concurrent use.
type Runner struct {
	live *liveness.Scratch
	cs   *cliques.Scratch
	ra   *regassign.Scratch
	// Cached default allocators: layered allocators reuse their own
	// internal scratch across calls, so the defaults are resolved once per
	// Runner rather than once per function.
	defaultChordal alloc.Allocator
	defaultGeneral alloc.Allocator
	// Reusable value-indexed flag slices for the rewrite stage.
	allocatedVals []bool
	spilledVals   []bool
	// Reusable spill-cost vector (BuildProblem copies what it keeps, so
	// the buffer never escapes into an Outcome).
	costs []float64
}

// NewRunner returns a Runner with empty scratch.
func NewRunner() *Runner {
	return &Runner{
		live:           liveness.NewScratch(),
		cs:             cliques.NewScratch(),
		ra:             regassign.NewScratch(),
		defaultChordal: layered.BFPL(),
		defaultGeneral: layered.NewLH(),
	}
}

// Run executes the decoupled register-allocation pipeline on f, reusing the
// runner's scratch.
func (r *Runner) Run(f *ir.Func, cfg Config) (*Outcome, error) {
	return run(f, cfg, r)
}

// Run executes the decoupled register-allocation pipeline on f.
func Run(f *ir.Func, cfg Config) (*Outcome, error) {
	return run(f, cfg, nil)
}

func run(f *ir.Func, cfg Config, runner *Runner) (*Outcome, error) {
	if cfg.Registers < 1 {
		return nil, fmt.Errorf("%w: Registers must be ≥ 1, got %d", raerr.ErrInvalidConfig, cfg.Registers)
	}
	if !cfg.TrustedCostModel {
		if err := cfg.CostModel.Validate(); err != nil {
			return nil, fmt.Errorf("%w: invalid cost model: %w", raerr.ErrInvalidConfig, err)
		}
	}
	if cfg.Constraints != nil {
		return runConstrained(f, cfg, runner)
	}
	dom, err := f.ValidateAnalyzed()
	if err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "validate",
			Err: fmt.Errorf("invalid input function: %w", err)}
	}
	f.ComputeLoops(dom)
	var info *liveness.Info
	if runner != nil {
		info = runner.live.Compute(f)
	} else {
		info = liveness.Compute(f)
	}
	var costs []float64
	if runner != nil {
		runner.costs = spillcost.CostsInto(runner.costs, f, cfg.CostModel)
		costs = runner.costs
	} else {
		costs = spillcost.Costs(f, cfg.CostModel)
	}

	// Interference analysis: clique structure straight from liveness for
	// strict SSA (the fast path), explicit graph otherwise.
	var build *ifg.Build
	var cs *cliques.Structure
	var p *alloc.Problem
	if !cfg.LegacyIFG && cliques.Applicable(f, dom) {
		var scratch *cliques.Scratch
		if runner != nil {
			scratch = runner.cs
		}
		cs = cliques.Derive(info, dom, scratch)
	}
	if cs != nil {
		p = alloc.BuildProblem(alloc.Spec{Cliques: cs, Costs: costs, R: cfg.Registers})
		p.Intervals = linearscan.IntervalsFromLiveness(info, cs.VertexOf, cs.N)
	} else {
		build = ifg.FromLiveness(info)
		p = alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: cfg.Registers, Dom: dom})
		p.Intervals = linearscan.BuildIntervals(info, build)
	}

	a := cfg.Allocator
	if a == nil {
		switch {
		case p.Chordal && runner != nil:
			a = runner.defaultChordal
		case p.Chordal:
			a = layered.BFPL()
		case runner != nil:
			a = runner.defaultGeneral
		default:
			a = layered.NewLH()
		}
	}
	if !p.Chordal && alloc.ChordalOnly(a.Name()) {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("%w: allocator %s requires a chordal (strict-SSA) instance",
				raerr.ErrNotSSA, a.Name())}
	}
	res := a.Allocate(p)
	// A structurally malformed result (custom allocators) is a contract
	// violation, not a pressure failure — keep the taxonomy honest.
	if res == nil || len(res.Allocated) != p.N() {
		got := -1
		if res != nil {
			got = len(res.Allocated)
		}
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("allocator %s returned a malformed result: %d of %d vertices covered",
				a.Name(), got, p.N())}
	}
	if err := p.Validate(res); err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("%w: allocator %s returned an invalid allocation: %w",
				raerr.ErrPressureUnsatisfiable, a.Name(), err)}
	}

	out := &Outcome{
		F:         f,
		Build:     build,
		Cliques:   cs,
		Problem:   p,
		Result:    res,
		SpillCost: res.SpillCost(p),
	}
	if cs != nil {
		out.VertexOf, out.ValueOf = cs.VertexOf, cs.ValueOf
		out.MaxLive = cs.MaxLive
	} else {
		out.VertexOf, out.ValueOf = build.VertexOf, build.ValueOf
		out.MaxLive = build.MaxLive
	}
	spilledCount := 0
	for _, al := range res.Allocated {
		if !al {
			spilledCount++
		}
	}
	if spilledCount > 0 {
		// ValueOf ascends with the vertex ID, so this list is born sorted.
		out.SpilledValues = make([]int, 0, spilledCount)
		for vx, al := range res.Allocated {
			if !al {
				out.SpilledValues = append(out.SpilledValues, out.ValueOf[vx])
			}
		}
	}

	if !cfg.SkipRewrite && f.SSA && p.Chordal {
		var allocatedVals, spilledVals []bool
		if runner != nil {
			runner.allocatedVals = resizeFlags(runner.allocatedVals, f.NumValues)
			runner.spilledVals = resizeFlags(runner.spilledVals, f.NumValues)
			allocatedVals, spilledVals = runner.allocatedVals, runner.spilledVals
		} else {
			allocatedVals = make([]bool, f.NumValues)
			spilledVals = make([]bool, f.NumValues)
		}
		for vx, al := range res.Allocated {
			if al {
				allocatedVals[out.ValueOf[vx]] = true
			}
		}
		var ra *regassign.Scratch
		if runner != nil {
			ra = runner.ra
		}
		regOf, err := regassign.AssignWith(f, dom, info, allocatedVals, cfg.Registers, ra)
		if err != nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "assign",
				Err: fmt.Errorf("%w: assignment after allocation failed: %w",
					raerr.ErrPressureUnsatisfiable, err)}
		}
		if err := regassign.VerifyAssignment(info, allocatedVals, regOf); err != nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "assign",
				Err: fmt.Errorf("assignment verification failed: %w", err)}
		}
		out.RegisterOf = regOf
		for _, v := range out.SpilledValues {
			spilledVals[v] = true
		}
		out.Rewritten = regassign.InsertSpillCode(f, spilledVals)
		if len(out.SpilledValues) > 0 {
			// With no spills the rewrite is a plain clone of the function
			// validated above; re-validating it would just recompute
			// dominance for nothing.
			if err := out.Rewritten.Validate(); err != nil {
				return nil, &raerr.FuncError{Func: f.Name, Stage: "rewrite",
					Err: fmt.Errorf("spill-code rewrite broke the function: %w", err)}
			}
		}
	}
	return out, nil
}

// resizeFlags returns s resized to n with every flag cleared.
func resizeFlags(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// The paper's allocators, registered once at init into the shared registry
// (internal/alloc); the public regalloc.Register adds external ones to the
// same table. NL/BL/FPL/BFPL are chordal-only: they require a strict-SSA
// (chordal) instance and the pipeline rejects them on anything else with a
// typed raerr.ErrNotSSA.
func init() {
	alloc.MustRegisterAllocator("NL", true, func() alloc.Allocator { return layered.NL() })
	alloc.MustRegisterAllocator("BL", true, func() alloc.Allocator { return layered.BL() })
	alloc.MustRegisterAllocator("FPL", true, func() alloc.Allocator { return layered.FPL() })
	alloc.MustRegisterAllocator("BFPL", true, func() alloc.Allocator { return layered.BFPL() })
	alloc.MustRegisterAllocator("LH", false, func() alloc.Allocator { return layered.NewLH() })
	alloc.MustRegisterAllocator("GC", false, func() alloc.Allocator { return chaitin.New() })
	alloc.MustRegisterAllocator("DLS", false, func() alloc.Allocator { return linearscan.DLS() })
	alloc.MustRegisterAllocator("BLS", false, func() alloc.Allocator { return linearscan.BLS() })
	alloc.MustRegisterAllocator("Optimal", false, func() alloc.Allocator { return optimal.New() })
}

// AllocatorByName resolves a registered allocator name (case-insensitive) to
// a fresh instance: the paper's NL, BL, FPL, BFPL, LH, GC, DLS, BLS and
// Optimal, plus anything added through the registry. Unknown names fail with
// raerr.ErrUnknownAllocator.
func AllocatorByName(name string) (alloc.Allocator, error) {
	return alloc.NewByName(name)
}

// AllocatorNames lists the registered allocator names, sorted.
func AllocatorNames() []string {
	return alloc.RegisteredNames()
}
