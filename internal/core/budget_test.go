package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/alloc/layered"
	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/ir"
	"repro/internal/raerr"
	"repro/internal/regassign"
)

func TestBudgetTripWithoutDegradeIsTypedError(t *testing.T) {
	f := ir.MustParse(loopSrc)
	_, err := Run(f, Config{Registers: 2, Budget: budget.Limits{Steps: 1}})
	if err == nil {
		t.Fatal("tiny step budget without Degrade succeeded")
	}
	if !errors.Is(err, raerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *raerr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want to carry *raerr.BudgetError", err)
	}
	if be.Stage != raerr.StageLiveness {
		t.Fatalf("trip stage = %q, want liveness (first metered stage)", be.Stage)
	}
	var fe *raerr.FuncError
	if !errors.As(err, &fe) || fe.Func != f.Name {
		t.Fatalf("err = %v, want FuncError for %s", err, f.Name)
	}
}

func TestDegradeSpillAllOnTinyBudget(t *testing.T) {
	f := ir.MustParse(loopSrc)
	out, err := Run(f, Config{Registers: 2, Budget: budget.Limits{Steps: 1}, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded == nil || out.Degraded.Rung != RungSpillAll {
		t.Fatalf("Degraded = %+v, want spill-all rung", out.Degraded)
	}
	if out.Degraded.Stage != raerr.StageLiveness || out.Degraded.Reason == nil {
		t.Fatalf("Degraded = %+v, want liveness stage with a reason", out.Degraded)
	}
	if out.Result.Allocator != "spill-all" {
		t.Fatalf("Allocator = %s", out.Result.Allocator)
	}
	for _, al := range out.Result.Allocated {
		if al {
			t.Fatal("spill-all outcome kept a value in a register")
		}
	}
	if out.Rewritten == nil {
		t.Fatal("spill-all outcome has no rewrite")
	}
	for v, reg := range out.RegisterOf {
		if reg != regassign.NoReg {
			t.Fatalf("value %s has register %d in a spill-all outcome", f.NameOf(v), reg)
		}
	}
	if err := out.Rewritten.Validate(); err != nil {
		t.Fatalf("spill-all rewrite invalid: %v", err)
	}
	if out.BudgetSpent <= 0 {
		t.Fatal("BudgetSpent not recorded")
	}
}

func TestAdmissionGate(t *testing.T) {
	f := ir.MustParse(loopSrc)
	_, err := Run(f, Config{Registers: 2, Budget: budget.Limits{MaxValues: 1}})
	if err == nil || !errors.Is(err, raerr.ErrBudgetExceeded) {
		t.Fatalf("admission without Degrade: err = %v, want ErrBudgetExceeded", err)
	}
	out, err := Run(f, Config{Registers: 2, Budget: budget.Limits{MaxValues: 1}, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded == nil || out.Degraded.Rung != RungSpillAll || out.Degraded.Stage != raerr.StageAdmission {
		t.Fatalf("Degraded = %+v, want spill-all via admission", out.Degraded)
	}
}

// greedyAllocator burns the whole step budget inside Allocate, then returns
// the everything-spilled result — the shape of a custom allocator that does
// cooperative charging but cannot finish.
type greedyAllocator struct{}

func (greedyAllocator) Name() string { return "greedy-test" }
func (greedyAllocator) Allocate(p *alloc.Problem) *alloc.Result {
	p.Meter.Charge(1 << 40)
	return &alloc.Result{Allocated: make([]bool, p.N()), Allocator: "greedy-test"}
}

func TestDegradeLinearScanRungOnAllocateTrip(t *testing.T) {
	f := ir.MustParse(loopSrc)
	out, err := Run(f, Config{
		Registers: 2,
		Allocator: greedyAllocator{},
		Budget:    budget.Limits{Steps: 100_000},
		Degrade:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded == nil || out.Degraded.Rung != RungLinearScan {
		t.Fatalf("Degraded = %+v, want linear-scan rung", out.Degraded)
	}
	if out.Degraded.Stage != raerr.StageAllocate {
		t.Fatalf("Degraded stage = %q, want allocate", out.Degraded.Stage)
	}
	if out.Result.Allocator != "DLS" {
		t.Fatalf("rung allocator = %s, want DLS", out.Result.Allocator)
	}
	if out.Rewritten == nil || out.RegisterOf == nil {
		t.Fatal("linear-scan rung skipped the rewrite")
	}
	if err := out.Problem.Validate(out.Result); err != nil {
		t.Fatalf("rung result invalid: %v", err)
	}
	// Without Degrade the same trip is a typed error.
	_, err = Run(f, Config{
		Registers: 2,
		Allocator: greedyAllocator{},
		Budget:    budget.Limits{Steps: 100_000},
	})
	if !errors.Is(err, raerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestBudgetedRunMatchesUnbudgeted(t *testing.T) {
	base, err := Run(ir.MustParse(loopSrc), Config{Registers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(ir.MustParse(loopSrc), Config{
		Registers: 2,
		Budget:    budget.Limits{Steps: 10_000_000, Deadline: time.Hour},
		Degrade:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded != nil {
		t.Fatalf("ample budget degraded: %+v", out.Degraded)
	}
	if out.BudgetSpent <= 0 {
		t.Fatal("BudgetSpent not recorded")
	}
	if len(base.SpilledValues) != len(out.SpilledValues) {
		t.Fatalf("budgeted run spilled %v, unbudgeted %v", out.SpilledValues, base.SpilledValues)
	}
	for i, v := range base.SpilledValues {
		if out.SpilledValues[i] != v {
			t.Fatalf("budgeted run spilled %v, unbudgeted %v", out.SpilledValues, base.SpilledValues)
		}
	}
}

func TestDegradeOnBlownDeadline(t *testing.T) {
	f := ir.MustParse(loopSrc)
	out, err := Run(f, Config{
		Registers: 2,
		Budget:    budget.Limits{Deadline: time.Nanosecond},
		Degrade:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The trip point depends on where the amortized clock check lands, so
	// only the invariant matters: degraded, never failed, always valid.
	if out.Degraded == nil {
		t.Fatal("blown deadline did not degrade")
	}
	if out.Rewritten != nil {
		if err := out.Rewritten.Validate(); err != nil {
			t.Fatalf("degraded rewrite invalid: %v", err)
		}
	}
}

func TestConstrainedDegradeSpillAll(t *testing.T) {
	f := ir.MustParse(loopSrc)
	cons := arch.ARMv7.Constraints(4)
	_, err := Run(f, Config{Registers: 4, Constraints: cons, Budget: budget.Limits{Steps: 1}})
	if !errors.Is(err, raerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	out, err := Run(f, Config{
		Registers: 4, Constraints: cons,
		Budget: budget.Limits{Steps: 1}, Degrade: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded == nil || out.Degraded.Rung != RungSpillAll {
		t.Fatalf("Degraded = %+v, want spill-all", out.Degraded)
	}
	for v, reg := range out.RegisterOf {
		if reg != regassign.NoReg {
			t.Fatalf("value %s kept register %d", f.NameOf(v), reg)
		}
	}
}

// Satellite regression: malformed problems routed to the layered family are
// typed errors, not panics.
func TestLayeredOnNonSSAIsTypedError(t *testing.T) {
	f := ir.MustParse(`
func ns {
b0:
  x = param 0
  y = param 1
  z = arith x, y
  x = arith z, z
  store x, z
  ret z
}`)
	// layered.Custom bypasses the registry's ChordalOnly gate (the name is
	// unregistered), so only the ProblemChecker gate stands between the
	// non-chordal instance and the allocator's internal panic.
	_, err := Run(f, Config{Registers: 2, Allocator: layered.Custom("custom-nl", layered.Option{})})
	if err == nil {
		t.Fatal("non-SSA function through a layered allocator succeeded")
	}
	if !errors.Is(err, raerr.ErrNotSSA) {
		t.Fatalf("err = %v, want ErrNotSSA", err)
	}
}

func TestStepAllocatorBadStepIsTypedError(t *testing.T) {
	f := ir.MustParse(loopSrc)
	_, err := Run(f, Config{Registers: 2, Allocator: &layered.StepAllocator{Step: 0}})
	if err == nil || !errors.Is(err, raerr.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
}
