package core

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/alloc"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/linearscan"
	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/cliques"
	"repro/internal/coalesce"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/raerr"
	"repro/internal/regassign"
	"repro/internal/spillcost"
)

// runConstrained is the machine-honoring pipeline: allocation under register
// classes, pre-colored ABI values, and call-clobber sets.
//
// The decoupled framework survives the constraints almost intact. Spilling
// stays a per-class pressure problem: the subgraph induced by one register
// class is chordal again (induced subgraphs of chordal graphs are chordal,
// and a subsequence of a perfect elimination order eliminates it perfectly),
// so each class is allocated independently against its own capacity by the
// same allocators as the fungible path. What the chordal model cannot
// express — a value that must hold one specific register, a register a call
// destroys mid-range — is folded into three precomputed side inputs:
//
//   - forced spills: values whose constraints admit no register at all (a
//     pin clobbered by a spanned call, per-call per-class pressure above the
//     call-surviving capacity, a forbid mask covering the whole class);
//   - pins: the fixed register of each pre-colored value;
//   - forbid masks: per-value sets of banned within-class register indexes
//     (clobbered registers of spanned calls, the pin of every interfering
//     pre-colored value).
//
// Assignment then honors all three, and — because pins can still collide in
// ways pressure numbers do not see — reports the first stuck value on
// failure, which the driver force-spills before retrying (sound under
// spill-everywhere, and bounded by the value count).
func runConstrained(f *ir.Func, cfg Config, runner *Runner) (*Outcome, error) {
	cons := cfg.Constraints
	if err := cons.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", raerr.ErrInvalidConfig, err)
	}
	if cfg.LegacyIFG {
		return nil, fmt.Errorf("%w: machine-constrained allocation has no explicit-graph path (unset LegacyIFG)",
			raerr.ErrInvalidConfig)
	}
	var caps [ir.NumClasses]int
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		caps[c] = cons.Cap(c)
		if caps[c] > 64 {
			return nil, fmt.Errorf("%w: class %s capacity %d exceeds the constrained assigner's 64-register limit",
				raerr.ErrInvalidConfig, c, caps[c])
		}
	}
	dom, err := f.ValidateAnalyzed()
	if err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "validate",
			Err: fmt.Errorf("invalid input function: %w", err)}
	}
	if !f.SSA {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "constrain",
			Err: fmt.Errorf("%w: machine-constrained allocation requires strict SSA", raerr.ErrNotSSA)}
	}
	switch reason := cliques.Inapplicable(f, dom); reason {
	case cliques.ReasonApplicable, cliques.ReasonConstrained:
	default:
		return nil, &raerr.FuncError{Func: f.Name, Stage: "constrain",
			Err: fmt.Errorf("%w: %s", raerr.ErrNotSSA, reason)}
	}
	if err := checkMachineCompat(f, cons); err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "constrain", Err: err}
	}

	// Budget governance. The constrained ladder has no linear-scan rung —
	// the interval scan is blind to pins and clobbers — so a trip anywhere
	// degrades straight to the spill-all floor, which is trivially legal
	// here too (the normal path already force-spills pinned values when
	// their constraints admit no register).
	m := budget.NewMeter(cfg.Budget)
	if be := cfg.Budget.Admit(f.NumValues, len(f.Blocks)); be != nil {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "admission", Err: be}
		}
		return spillAll(f, cfg, dom, nil, m, be)
	}

	f.ComputeLoops(dom)
	m.SetStage(raerr.StageLiveness)
	var info *liveness.Info
	var csScratch *cliques.Scratch
	if runner != nil {
		info, err = runner.live.ComputeBudget(f, m)
		csScratch = runner.cs
	} else {
		info, err = liveness.ComputeBudget(f, m)
	}
	if err != nil {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageLiveness, Err: err}
		}
		return spillAll(f, cfg, dom, nil, m, m.BudgetErr())
	}
	var costs []float64
	if runner != nil {
		runner.costs = spillcost.CostsInto(runner.costs, f, cfg.CostModel)
		costs = runner.costs
	} else {
		costs = spillcost.Costs(f, cfg.CostModel)
	}

	m.SetStage(raerr.StageCliques)
	cs, derr := cliques.DeriveBudget(info, dom, csScratch, m)
	if derr != nil {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageCliques, Err: derr}
		}
		return spillAll(f, cfg, dom, info, m, m.BudgetErr())
	}
	if cs == nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "constrain",
			Err: fmt.Errorf("%w: clique-structure derivation failed", raerr.ErrNotSSA)}
	}

	nv := f.NumValues
	pins := make([]int, nv)
	for i := range pins {
		pins[i] = regassign.NoReg
	}
	for v, pin := range f.PreColor {
		pins[v] = pin
	}
	forced := make([]bool, nv)
	forbid := make([]uint64, nv)
	callSpans := collectCallSpans(f, info)

	// Pass 1 — a pre-colored value whose pin a spanned call clobbers cannot
	// keep its register across that call: forced spill.
	for _, span := range callSpans {
		for _, v := range span.live {
			if pin := pins[v]; pin != regassign.NoReg &&
				span.clob[ir.RegClassOf(pin)]&(1<<uint(ir.RegIndexOf(pin))) != 0 {
				forced[v] = true
			}
		}
	}

	// Pass 2 — pre-color interference. A pinned value owns its register for
	// its whole live range, so every interfering value of the same class is
	// banned from that index; two interfering values pinned to the same
	// register are mutually exclusive, and the cheaper one spills. The
	// program-point live sets cover every interference edge, so scanning
	// points finds every such pair.
	for pi := range info.Points {
		live := info.Points[pi].Live
		for _, pv := range live {
			pin := pins[pv]
			if pin == regassign.NoReg || forced[pv] {
				continue
			}
			c, idx := ir.RegClassOf(pin), ir.RegIndexOf(pin)
			for _, v := range live {
				if v == pv || f.ClassOf(v) != c {
					continue
				}
				switch {
				case pins[v] == pin && !forced[v]:
					loser := v
					if costs[pv] < costs[v] || (costs[pv] == costs[v] && pv > v) {
						loser = pv
					}
					forced[loser] = true
				case pins[v] == regassign.NoReg:
					forbid[v] |= 1 << uint(idx)
				}
			}
			if forced[pv] {
				break // lost its pin above; it bans nothing anymore
			}
		}
	}

	// Pass 3 — per-call class pressure. A call leaves cap − |clobbered ∩
	// [0,cap)| registers of each class for the values that live through it;
	// beyond that the cheapest survivors spill.
	for _, span := range callSpans {
		var cnt [ir.NumClasses]int
		var byClass [ir.NumClasses][]int
		for _, v := range span.live {
			if !forced[v] {
				c := f.ClassOf(v)
				cnt[c]++
				byClass[c] = append(byClass[c], v)
			}
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			avail := caps[c] - bits.OnesCount64(span.clob[c]&capMask(caps[c]))
			if cnt[c] <= avail {
				continue
			}
			cand := byClass[c]
			sort.Slice(cand, func(i, j int) bool {
				if costs[cand[i]] != costs[cand[j]] {
					return costs[cand[i]] < costs[cand[j]]
				}
				return cand[i] < cand[j]
			})
			for _, v := range cand[:cnt[c]-avail] {
				forced[v] = true
			}
		}
	}

	// Pass 4 — clobber avoidance for the surviving spanning values, then a
	// final sweep for values whose accumulated bans (e.g. the union of two
	// calls' disjoint clobber sets) cover the whole class.
	for _, span := range callSpans {
		for _, v := range span.live {
			if !forced[v] {
				forbid[v] |= span.clob[f.ClassOf(v)]
			}
		}
	}
	for v := 0; v < nv; v++ {
		if forced[v] || cs.VertexOf[v] < 0 || pins[v] != regassign.NoReg {
			continue
		}
		if ^forbid[v]&capMask(caps[f.ClassOf(v)]) == 0 {
			forced[v] = true
		}
	}

	// Spilling: one chordal subproblem per register class, each against its
	// own capacity, solved by the same allocator the fungible path would use.
	a := cfg.Allocator
	if a == nil {
		if runner != nil {
			a = runner.defaultChordal
		} else {
			a = layered.BFPL()
		}
	}
	allocatedVals := make([]bool, nv)
	include := make([]bool, nv)
	m.SetStage(raerr.StageAllocate)
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		if caps[c] == 0 {
			continue // compat check: no value has this class
		}
		// One charge per class pass covers the include-mask sweep and the
		// subset derivation; the allocator itself charges per layer.
		if !m.Charge(nv) {
			if !cfg.Degrade {
				return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageAllocate, Err: m.Err()}
			}
			return spillAll(f, cfg, dom, info, m, m.BudgetErr())
		}
		any := false
		for v := range include {
			inc := cs.VertexOf[v] >= 0 && !forced[v] && f.ClassOf(v) == c
			include[v] = inc
			any = any || inc
		}
		if !any {
			continue
		}
		sub := cliques.DeriveSubset(info, dom, include, csScratch)
		if sub == nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "constrain",
				Err: fmt.Errorf("%w: per-class clique derivation failed for %s", raerr.ErrNotSSA, c)}
		}
		p := alloc.BuildProblem(alloc.Spec{Cliques: sub, Costs: costs, R: caps[c]})
		p.Intervals = linearscan.IntervalsFromLiveness(info, sub.VertexOf, sub.N)
		p.Meter = m
		res := a.Allocate(p)
		p.Meter = nil
		if res == nil || len(res.Allocated) != p.N() {
			got := -1
			if res != nil {
				got = len(res.Allocated)
			}
			return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
				Err: fmt.Errorf("allocator %s returned a malformed result: %d of %d vertices covered",
					a.Name(), got, p.N())}
		}
		if err := p.Validate(res); err != nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
				Err: fmt.Errorf("%w: allocator %s returned an invalid %s allocation: %w",
					raerr.ErrPressureUnsatisfiable, a.Name(), c, err)}
		}
		for vx, al := range res.Allocated {
			if al {
				allocatedVals[sub.ValueOf[vx]] = true
			}
		}
	}
	if m.Exceeded() || !m.CheckNow() {
		if !cfg.Degrade {
			return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageAllocate, Err: m.Err()}
		}
		return spillAll(f, cfg, dom, info, m, m.BudgetErr())
	}

	// Assignment with the force-spill retry loop, before the Outcome's spill
	// bookkeeping (a retry shrinks the allocated set).
	var regOf []int
	var coalStats *coalesce.Stats
	if !cfg.SkipRewrite {
		// Coalescing bias, built per register class against the class
		// capacity (endpoints of different classes can never share a
		// register). Pins seed the class hints, so copy chains rooted at an
		// ABI register chase the pin.
		var bias *regassign.Bias
		var moves []coalesce.VMove
		var aff *coalesce.Affinity
		if cfg.Coalescing != coalesce.Off {
			moves = coalesce.MovesFromFunc(f, cfg.CostModel)
			if len(moves) > 0 {
				var sc *coalesce.BiasScratch
				if runner != nil {
					if runner.bias == nil {
						runner.bias = &coalesce.BiasScratch{}
					}
					sc = runner.bias
				}
				aff = coalesce.BuildAffinityConstrained(cs, f, moves, cfg.Coalescing, caps, sc)
				if aff != nil {
					bias = regassign.NewBias(aff.ClassOf, aff.NumClasses)
				}
			}
		}
		m.SetStage(raerr.StageAssign)
		for tries := 0; ; tries++ {
			// The constrained assigner is not internally metered; one charge
			// per attempt bounds the O(V) force-spill retry loop.
			if !m.Charge(nv) {
				if !cfg.Degrade {
					return nil, &raerr.FuncError{Func: f.Name, Stage: raerr.StageAssign, Err: m.Err()}
				}
				return spillAll(f, cfg, dom, info, m, m.BudgetErr())
			}
			r, failVal, aerr := regassign.AssignConstrainedBiased(f, dom, info, allocatedVals, caps, pins, forbid, bias)
			if aerr == nil {
				regOf = r
				break
			}
			if bias != nil {
				// Bias must never cost a spill: pin collisions can make a
				// hint-following scan fail where the lowest-admissible one
				// succeeds, so the first failed biased attempt retries
				// unbiased — before any force-spill — keeping the spill set
				// identical to the unbiased pipeline's.
				bias = nil
				continue
			}
			if failVal < 0 || failVal >= nv || !allocatedVals[failVal] || tries >= nv {
				return nil, &raerr.FuncError{Func: f.Name, Stage: "assign",
					Err: fmt.Errorf("%w: constrained assignment failed: %w",
						raerr.ErrPressureUnsatisfiable, aerr)}
			}
			allocatedVals[failVal] = false
		}
		if cfg.Coalescing != coalesce.Off {
			coalStats = coalesce.StatsFor(cfg.Coalescing, moves, regOf, aff)
		}
		if err := regassign.VerifyAssignment(info, allocatedVals, regOf); err != nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "assign",
				Err: fmt.Errorf("assignment verification failed: %w", err)}
		}
		if err := regassign.VerifyClassAssignment(f, allocatedVals, regOf, caps); err != nil {
			return nil, &raerr.FuncError{Func: f.Name, Stage: "assign",
				Err: fmt.Errorf("assignment verification failed: %w", err)}
		}
		for _, span := range callSpans {
			for _, v := range span.live {
				if allocatedVals[v] && regOf[v] != regassign.NoReg &&
					span.clob[ir.RegClassOf(regOf[v])]&(1<<uint(ir.RegIndexOf(regOf[v]))) != 0 {
					return nil, &raerr.FuncError{Func: f.Name, Stage: "assign",
						Err: fmt.Errorf("value %s holds caller-saved %s across a clobbering call",
							f.NameOf(v), ir.RegName(regOf[v]))}
				}
			}
		}
	}

	merged := &alloc.Result{Allocated: make([]bool, cs.N), Allocator: a.Name()}
	for vx := range merged.Allocated {
		merged.Allocated[vx] = allocatedVals[cs.ValueOf[vx]]
	}
	pFull := alloc.BuildProblem(alloc.Spec{Cliques: cs, Costs: costs, R: cfg.Registers, Constraints: cons})
	pFull.Intervals = linearscan.IntervalsFromLiveness(info, cs.VertexOf, cs.N)
	if err := pFull.Validate(merged); err != nil {
		return nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
			Err: fmt.Errorf("%w: merged constrained allocation invalid: %w",
				raerr.ErrPressureUnsatisfiable, err)}
	}
	out := &Outcome{
		F: f, Cliques: cs, Problem: pFull, Result: merged,
		VertexOf: cs.VertexOf, ValueOf: cs.ValueOf, MaxLive: cs.MaxLive,
		SpillCost: merged.SpillCost(pFull),
	}
	for vx, al := range merged.Allocated {
		if !al {
			out.SpilledValues = append(out.SpilledValues, cs.ValueOf[vx])
		}
	}

	if !cfg.SkipRewrite {
		out.RegisterOf = regOf
		out.Coalesce = coalStats
		spilledVals := make([]bool, nv)
		for _, v := range out.SpilledValues {
			spilledVals[v] = true
		}
		out.Rewritten = regassign.InsertSpillCode(f, spilledVals)
		if len(out.SpilledValues) > 0 {
			if err := out.Rewritten.Validate(); err != nil {
				return nil, &raerr.FuncError{Func: f.Name, Stage: "rewrite",
					Err: fmt.Errorf("spill-code rewrite broke the function: %w", err)}
			}
		}
	}
	out.BudgetSpent = m.Spent()
	return out, nil
}

// checkMachineCompat rejects annotations the machine cannot express: a value
// of an absent register class, or a pre-color outside the class capacity.
func checkMachineCompat(f *ir.Func, cons *arch.Constraints) error {
	for v, c := range f.ValueClass {
		if cons.Cap(c) == 0 {
			return fmt.Errorf("%w: %s is %s but machine %q has no %s registers",
				raerr.ErrMachineMismatch, f.NameOf(v), c, cons.Machine, c)
		}
	}
	for v, pin := range f.PreColor {
		c := ir.RegClassOf(pin)
		if ir.RegIndexOf(pin) >= cons.Cap(c) {
			return fmt.Errorf("%w: %s is pre-colored %s but machine %q caps %s at %d registers",
				raerr.ErrMachineMismatch, f.NameOf(v), ir.RegName(pin), cons.Machine, c, cons.Cap(c))
		}
	}
	return nil
}

// callSpan is one clobber-carrying call with a nonempty live-through set:
// the values that must survive it, and the clobbered register indexes as one
// bitmask per class.
type callSpan struct {
	clob [ir.NumClasses]uint64
	live []int
}

// collectCallSpans pairs each clobbering call's live-through values with its
// per-class clobber masks, in deterministic program order.
func collectCallSpans(f *ir.Func, info *liveness.Info) []callSpan {
	spans := regassign.LiveThroughCalls(info)
	keys := make([][2]int, 0, len(spans))
	for k := range spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]callSpan, 0, len(keys))
	for _, k := range keys {
		span := callSpan{live: spans[k]}
		for _, ref := range f.Blocks[k[0]].Instrs[k[1]].Clobbers {
			span.clob[ir.RegClassOf(ref)] |= 1 << uint(ir.RegIndexOf(ref))
		}
		out = append(out, span)
	}
	return out
}

// capMask returns the bitmask of the register indexes [0, cap).
func capMask(cap int) uint64 {
	if cap >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(cap) - 1
}
