package outcache

// White-box regression tests for the two admission bugs fixed in PR 7:
//
//  1. Put dropped and retook the shard lock around the admission deep copy;
//     a concurrent Put for the same key in that window found neither a
//     resident entry nor a ghost (already consumed) and re-registered the
//     key as a "first sighting" — a stale ghost node for a now-resident
//     entry, wasting a ghost slot and letting the next admission after
//     eviction skip probation.
//  2. Eviction discarded the victim's fingerprint entirely, so a
//     previously resident key had to miss twice to be readmitted; standard
//     2Q keeps the evicted key in the ghost FIFO.
//
// These are in-package tests: they assert directly on shard structure
// (ghost filter vs resident map), which the public surface cannot observe.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/spillcost"
)

var regressFold = fingerprint.NewConfig(4, "", spillcost.Model{}, true, nil, 0)

func regressOutcome(t testing.TB, f *ir.Func) *core.Outcome {
	t.Helper()
	out, err := core.Run(f, core.Config{Registers: 4})
	if err != nil {
		t.Fatalf("pipeline run on %s: %v", f.Name, err)
	}
	return out
}

// checkShardInvariants asserts the structural consistency every shard must
// keep: a key is never simultaneously resident and ghosted, and the list
// lengths agree with the maps.
func checkShardInvariants(t *testing.T, c *Cache) {
	t.Helper()
	total := 0
	for i, s := range c.shards {
		s.mu.Lock()
		for key := range s.byKey {
			if _, ok := s.ghost[key]; ok {
				t.Errorf("shard %d: key %v is both resident and in the ghost filter", i, key)
			}
		}
		if s.ghostFifo.n != len(s.ghost) {
			t.Errorf("shard %d: ghost FIFO length %d != ghost map size %d", i, s.ghostFifo.n, len(s.ghost))
		}
		if got := s.probation.n + s.protected.n; got != len(s.byKey) {
			t.Errorf("shard %d: segment lengths %d != resident map size %d", i, got, len(s.byKey))
		}
		if len(s.pending) != 0 {
			t.Errorf("shard %d: %d pending admissions leaked", i, len(s.pending))
		}
		total += len(s.byKey)
		s.mu.Unlock()
	}
	if got := int(c.entries.Load()); got != total {
		t.Errorf("entries counter %d != resident total %d", got, total)
	}
}

// TestPutConcurrentAdmissionNoGhostResurrection provokes the exact window
// of bug 1 deterministically: goroutine A is parked (via admitCopyHook)
// between consuming the ghost node and inserting the entry, while a second
// Put for the same key lands. The second Put must not re-register the key
// in the ghost filter.
func TestPutConcurrentAdmissionNoGhostResurrection(t *testing.T) {
	c := New(128)
	f := irgen.FromSeed(11)
	key := fingerprint.Key(f, regressFold)
	out := regressOutcome(t, f)

	c.Put(key, out) // first sighting: ghost only

	entered := make(chan struct{})
	release := make(chan struct{})
	admitCopyHook = func() {
		close(entered)
		<-release
	}
	defer func() { admitCopyHook = nil }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Put(key, out) // second sighting: admits, parks in the copy window
	}()
	<-entered
	admitCopyHook = nil // the racing Put must not park
	c.Put(key, out)     // lands inside A's copy window
	close(release)
	wg.Wait()

	s := c.shard(key)
	s.mu.Lock()
	_, resident := s.byKey[key]
	_, ghosted := s.ghost[key]
	s.mu.Unlock()
	if !resident {
		t.Fatal("admission lost: key is not resident after both Puts")
	}
	if ghosted {
		t.Fatal("racing Put re-registered a now-resident key as a first sighting (stale ghost node)")
	}
	if st := c.Stats(); st.Entries != 1 || st.Admitted != 1 {
		t.Fatalf("want exactly one admitted entry, got %+v", st)
	}
	checkShardInvariants(t, c)
}

// TestEvictedKeyKeepsGhostFingerprint pins the 2Q readmission contract of
// bug 2: after a resident key is evicted, its fingerprint stays in the
// ghost FIFO, so one further sighting readmits it — it does not restart the
// two-miss probation from zero.
func TestEvictedKeyKeepsGhostFingerprint(t *testing.T) {
	const capEntries = 8
	c := New(capEntries) // < 64 entries: a single shard, deterministic LRU
	funcs := make([]*ir.Func, capEntries+1)
	keys := make([]Key, capEntries+1)
	outs := make([]*core.Outcome, capEntries+1)
	for i := range funcs {
		funcs[i] = irgen.FromSeed(int64(100 + i))
		keys[i] = fingerprint.Key(funcs[i], regressFold)
		outs[i] = regressOutcome(t, funcs[i])
		for j := 0; j < i; j++ {
			if keys[j] == keys[i] {
				t.Fatalf("seeds %d and %d collide on one fingerprint", 100+j, 100+i)
			}
		}
	}
	// Fill the cache: two sightings each (2Q admission).
	for i := 0; i < capEntries; i++ {
		c.Put(keys[i], outs[i])
		c.Put(keys[i], outs[i])
	}
	if st := c.Stats(); st.Entries != capEntries {
		t.Fatalf("fill failed: %+v", st)
	}
	// Admit one more: the probation LRU — keys[0], the oldest — is evicted.
	c.Put(keys[capEntries], outs[capEntries])
	c.Put(keys[capEntries], outs[capEntries])
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("over-capacity admission evicted nothing: %+v", st)
	}
	if got := c.Get(keys[0], funcs[0]); got != nil {
		t.Fatal("evicted key still resident (eviction order changed; test needs a new victim)")
	}

	// One sighting of the evicted key must readmit it.
	c.Put(keys[0], outs[0])
	if got := c.Get(keys[0], funcs[0]); got == nil {
		t.Fatal("evicted key lost its ghost fingerprint: one sighting did not readmit it (2Q requires readmission on the next miss)")
	}
	checkShardInvariants(t, c)
}

// TestPutConcurrentSameKeyInvariants hammers a handful of keys from many
// goroutines and asserts the shard invariants afterwards — the race-detector
// probe for the pending-reservation path and the eviction ghost re-insert.
func TestPutConcurrentSameKeyInvariants(t *testing.T) {
	const nKeys = 6
	const workers = 8
	const rounds = 60
	c := New(4) // tiny: constant eviction traffic
	funcs := make([]*ir.Func, nKeys)
	keys := make([]Key, nKeys)
	outs := make([]*core.Outcome, nKeys)
	for i := range funcs {
		funcs[i] = irgen.FromSeed(int64(200 + i))
		keys[i] = fingerprint.Key(funcs[i], regressFold)
		outs[i] = regressOutcome(t, funcs[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % nKeys
				if c.Get(keys[i], funcs[i]) == nil {
					c.Put(keys[i], outs[i])
				}
			}
		}(w)
	}
	wg.Wait()
	checkShardInvariants(t, c)
}
