// Package outcache is a concurrent, bounded, content-addressed cache of
// allocation outcomes: fingerprint.Key → canonical Entry. It sits in front
// of the allocation engine so redundant traffic — the same small functions
// compiled over and over, the bread and butter of JIT and compile-server
// workloads — costs a hash plus a copy instead of a full pipeline run.
//
// Soundness rests on two facts: the pipeline is deterministic (equal
// structure + equal config ⇒ byte-identical outcome, pinned by the
// pipeline's determinism tests), and fingerprints are 128-bit so collisions
// are ignorable. Entries are deep-copied on insert and again on every hit,
// so cached buffers never alias a producing run's arena/scratch chain, and
// no caller can poison the cache by mutating an outcome it was handed.
//
// Eviction is 2Q-flavoured segmented LRU. A bounded ghost FIFO of
// fingerprints admits a value only on its second miss, which keeps the
// overhead on duplication-free traffic to the fingerprint itself — no
// entry is built for code never seen twice. Admitted entries start in a
// probationary segment and are promoted to a protected segment (80% of
// capacity) on their first hit; eviction takes the probationary LRU first,
// so one-hit wonders cannot flush the working set.
package outcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/ir"
)

// Key is the content-addressed cache key: a function's structural
// fingerprint folded with the allocation config (fingerprint.Key).
type Key = fingerprint.FP

// DefaultCapacity is the entry bound used when New is given a
// non-positive capacity.
const DefaultCapacity = 4096

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses uint64
	// Admitted counts entries stored (second miss of a fingerprint);
	// Evicted counts entries dropped by the capacity bound.
	Admitted, Evicted uint64
	// Entries and Bytes are the current resident entry count and their
	// estimated total size.
	Entries int
	Bytes   int64
	// Capacity is the configured entry bound.
	Capacity int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// node is one resident entry, threaded on its segment's LRU list.
type node struct {
	key        Key
	e          *Entry
	prev, next *node
	protected  bool
}

// list is an intrusive doubly-linked LRU list (front = MRU, back = LRU).
type list struct {
	front, back *node
	n           int
}

func (l *list) pushFront(x *node) {
	x.prev, x.next = nil, l.front
	if l.front != nil {
		l.front.prev = x
	} else {
		l.back = x
	}
	l.front = x
	l.n++
}

func (l *list) remove(x *node) {
	if x.prev != nil {
		x.prev.next = x.next
	} else {
		l.front = x.next
	}
	if x.next != nil {
		x.next.prev = x.prev
	} else {
		l.back = x.prev
	}
	x.prev, x.next = nil, nil
	l.n--
}

// ghostNode is one admission-filter slot: a fingerprint seen once.
type ghostNode struct {
	key        Key
	prev, next *ghostNode
}

type ghostList struct {
	front, back *ghostNode
	n           int
}

func (l *ghostList) pushFront(x *ghostNode) {
	x.prev, x.next = nil, l.front
	if l.front != nil {
		l.front.prev = x
	} else {
		l.back = x
	}
	l.front = x
	l.n++
}

func (l *ghostList) popBack() *ghostNode {
	x := l.back
	if x == nil {
		return nil
	}
	l.back = x.prev
	if x.prev != nil {
		x.prev.next = nil
	} else {
		l.front = nil
	}
	x.prev, x.next = nil, nil
	l.n--
	return x
}

// shard is one lock domain of the cache.
type shard struct {
	mu        sync.Mutex
	byKey     map[Key]*node
	ghost     map[Key]*ghostNode
	ghostFifo ghostList
	// pending reserves keys whose admission copy is being built outside the
	// lock: a concurrent Put for the same key must neither duplicate the
	// copy nor re-register the key as a first sighting in the ghost filter.
	pending   map[Key]struct{}
	probation list
	protected list
	cap       int // value-entry bound for this shard
	protCap   int
	ghostCap  int
}

// Cache is the concurrent content-addressed outcome cache. It is safe for
// use by any number of goroutines and may be shared between engines.
type Cache struct {
	shards   []*shard
	capacity int

	hits, misses, admitted, evicted atomic.Uint64
	entries                         atomic.Int64
	bytes                           atomic.Int64
}

// New builds a cache bounded to capacity entries (DefaultCapacity when
// capacity ≤ 0). The bound is a hard ceiling: the resident entry count
// never exceeds it.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	nshards := 8
	if capacity < 64 {
		nshards = 1
	}
	shardCap := capacity / nshards // floor keeps the total ≤ capacity
	c := &Cache{capacity: nshards * shardCap}
	for i := 0; i < nshards; i++ {
		protCap := shardCap * 4 / 5
		if protCap < 1 {
			protCap = 1
		}
		c.shards = append(c.shards, &shard{
			byKey:    make(map[Key]*node),
			ghost:    make(map[Key]*ghostNode),
			pending:  make(map[Key]struct{}),
			cap:      shardCap,
			protCap:  protCap,
			ghostCap: shardCap,
		})
	}
	return c
}

func (c *Cache) shard(key Key) *shard {
	return c.shards[key.Lo%uint64(len(c.shards))]
}

// Get looks key up and, on a hit, materializes a fresh outcome bound to f
// (a deep copy the caller owns outright). It returns nil on a miss.
func (c *Cache) Get(key Key, f *ir.Func) *core.Outcome {
	s := c.shard(key)
	s.mu.Lock()
	n, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	// Promote: probation → protected on first hit; protected → MRU.
	if n.protected {
		s.protected.remove(n)
		s.protected.pushFront(n)
	} else {
		s.probation.remove(n)
		n.protected = true
		s.protected.pushFront(n)
		if s.protected.n > s.protCap {
			// Demote the protected LRU back to probation MRU; total
			// residency is unchanged, so no eviction here.
			d := s.protected.back
			s.protected.remove(d)
			d.protected = false
			s.probation.pushFront(d)
		}
	}
	e := n.e
	s.mu.Unlock()
	out := e.Materialize(f) // outside the lock: entries are immutable
	if out == nil {
		// NumValues guard tripped: a fingerprint collision (~2^-128) or a
		// caller bug. Treat as a miss rather than serve a wrong outcome.
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return out
}

// admitCopyHook, when non-nil, runs on the Put goroutine between dropping
// the shard lock for the admission deep copy and retaking it. Test-only: it
// makes the copy window deterministic to interleave against.
var admitCopyHook func()

// Put offers the outcome computed for key. The first sighting of a
// fingerprint only records it in the admission filter (no entry is built);
// the second sighting deep-copies the outcome into the cache. Callers
// simply Put after every miss and let the policy decide.
func (c *Cache) Put(key Key, out *core.Outcome) {
	s := c.shard(key)
	s.mu.Lock()
	if _, ok := s.byKey[key]; ok {
		s.mu.Unlock() // another goroutine admitted it first
		return
	}
	if _, inflight := s.pending[key]; inflight {
		s.mu.Unlock() // another goroutine is building the admission copy
		return
	}
	g, seen := s.ghost[key]
	if !seen {
		gn := &ghostNode{key: key}
		s.ghost[key] = gn
		s.ghostFifo.pushFront(gn)
		if s.ghostFifo.n > s.ghostCap {
			old := s.ghostFifo.popBack()
			delete(s.ghost, old.key)
		}
		s.mu.Unlock()
		return
	}
	// Second sighting: admit. Reserve the key while the deep copy happens
	// outside the lock, so a concurrent Put neither re-registers the key as
	// a first sighting (a ghost node for a now-resident entry) nor builds a
	// duplicate copy.
	s.ghostFifo.remove(g)
	delete(s.ghost, key)
	s.pending[key] = struct{}{}
	s.mu.Unlock()

	if admitCopyHook != nil {
		admitCopyHook()
	}
	e := NewEntry(out) // the expensive deep copy, outside the lock

	s.mu.Lock()
	delete(s.pending, key)
	if _, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		return
	}
	n := &node{key: key, e: e}
	s.byKey[key] = n
	s.probation.pushFront(n)
	c.entries.Add(1)
	c.bytes.Add(e.bytes)
	c.admitted.Add(1)
	for s.probation.n+s.protected.n > s.cap {
		victim := s.probation.back
		if victim == nil {
			victim = s.protected.back
			s.protected.remove(victim)
		} else {
			s.probation.remove(victim)
		}
		delete(s.byKey, victim.key)
		c.entries.Add(-1)
		c.bytes.Add(-victim.e.bytes)
		c.evicted.Add(1)
		// Standard 2Q: an evicted key keeps its fingerprint in the ghost
		// FIFO, so a previously resident (possibly hot) key is readmitted
		// on its next single miss instead of starting probation from zero
		// and missing twice.
		if _, ok := s.ghost[victim.key]; !ok {
			gn := &ghostNode{key: victim.key}
			s.ghost[victim.key] = gn
			s.ghostFifo.pushFront(gn)
			if s.ghostFifo.n > s.ghostCap {
				old := s.ghostFifo.popBack()
				delete(s.ghost, old.key)
			}
		}
	}
	s.mu.Unlock()
}

func (l *ghostList) remove(x *ghostNode) {
	if x.prev != nil {
		x.prev.next = x.next
	} else {
		l.front = x.next
	}
	if x.next != nil {
		x.next.prev = x.prev
	} else {
		l.back = x.prev
	}
	x.prev, x.next = nil, nil
	l.n--
}

// Len returns the current resident entry count.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Capacity returns the configured entry bound.
func (c *Cache) Capacity() int { return c.capacity }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Admitted: c.admitted.Load(),
		Evicted:  c.evicted.Load(),
		Entries:  int(c.entries.Load()),
		Bytes:    c.bytes.Load(),
		Capacity: c.capacity,
	}
}
