package outcache_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/outcache"
	"repro/internal/pipeline"
	"repro/internal/spillcost"
)

// fold is the cache-key config every test in this file allocates under.
var fold = fingerprint.NewConfig(4, "", spillcost.Model{}, true, nil, 0)

func runFull(t testing.TB, f *ir.Func) *core.Outcome {
	t.Helper()
	out, err := pipeline.RunFunc(nil, f, core.Config{Registers: 4})
	if err != nil {
		t.Fatalf("pipeline run on %s: %v", f.Name, err)
	}
	return out
}

// render is the byte-identity witness: the full detailed report of one
// outcome, the same bytes FormatResults would emit for it in a module run.
func render(name string, out *core.Outcome) string {
	return pipeline.FormatResults([]pipeline.FuncResult{{Name: name, Outcome: out}}, true)
}

// admit stores out under key: the 2Q filter admits on the second sighting.
func admit(c *outcache.Cache, key outcache.Key, out *core.Outcome) {
	c.Put(key, out)
	c.Put(key, out)
}

// TestPutAdmissionAndGet pins the 2Q admission contract: the first Put of a
// fingerprint only records it in the ghost filter (no entry is built), the
// second admits, and a subsequent Get hits with a byte-identical outcome.
func TestPutAdmissionAndGet(t *testing.T) {
	c := outcache.New(128)
	f := irgen.FromSeed(11)
	key := fingerprint.Key(f, fold)
	out := runFull(t, f)

	if c.Get(key, f) != nil {
		t.Fatal("empty cache returned a hit")
	}
	c.Put(key, out)
	if s := c.Stats(); s.Entries != 0 || s.Admitted != 0 {
		t.Fatalf("first Put built an entry: %+v (2Q admission requires a second sighting)", s)
	}
	if c.Get(key, f) != nil {
		t.Fatal("ghost-only fingerprint returned a hit")
	}
	c.Put(key, out)
	s := c.Stats()
	if s.Entries != 1 || s.Admitted != 1 {
		t.Fatalf("second Put did not admit: %+v", s)
	}
	if s.Bytes <= 0 {
		t.Fatalf("admitted entry accounts no bytes: %+v", s)
	}

	hit := c.Get(key, f)
	if hit == nil {
		t.Fatal("resident entry missed")
	}
	if got, want := render(f.Name, hit), render(f.Name, out); got != want {
		t.Errorf("cache hit differs from the computed outcome:\n--- hit ---\n%s--- computed ---\n%s", got, want)
	}
	s = c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("counter mismatch: %+v (want 1 hit, 2 misses)", s)
	}
	if r := s.HitRate(); r <= 0.33 || r >= 0.34 {
		t.Fatalf("HitRate() = %v, want 1/3", r)
	}
}

// TestHitRebindsAlphaRenamedNames: an entry computed for one function must
// serve every alpha-renamed copy with the copy's own names — the formatted
// report of a hit for the twin is byte-identical to a full run on the twin.
func TestHitRebindsAlphaRenamedNames(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		f := irgen.FromSeed(seed)
		g := irgen.AlphaRename(f, fmt.Sprintf("twin%d", seed), int(seed))
		keyF := fingerprint.Key(f, fold)
		if keyF != fingerprint.Key(g, fold) {
			t.Fatalf("seed %d: alpha-renamed twin has a different key", seed)
		}

		c := outcache.New(16)
		admit(c, keyF, runFull(t, f))
		hit := c.Get(keyF, g)
		if hit == nil {
			t.Fatalf("seed %d: twin missed on a resident entry", seed)
		}
		want := render(g.Name, runFull(t, g))
		if got := render(g.Name, hit); got != want {
			t.Errorf("seed %d: rebound hit differs from a direct run on the twin:\n--- hit ---\n%s--- direct ---\n%s",
				seed, got, want)
		}
	}
}

// TestNoAliasing: cached state must survive arbitrary mutation of (a) the
// outcome that was Put and (b) outcomes handed out by Get. Both directions
// are deep-copied, so a later hit still renders the pristine bytes.
func TestNoAliasing(t *testing.T) {
	f := irgen.FromSeed(23)
	key := fingerprint.Key(f, fold)
	out := runFull(t, f)
	want := render(f.Name, runFull(t, f))

	c := outcache.New(16)
	admit(c, key, out)

	// Poison the inserted outcome after the fact.
	vandalize(out)

	hit1 := c.Get(key, f)
	if hit1 == nil {
		t.Fatal("miss on resident entry")
	}
	if got := render(f.Name, hit1); got != want {
		t.Fatal("mutating the Put outcome changed cached bytes (insert-side aliasing)")
	}

	// Poison the hit and fetch again.
	vandalize(hit1)
	hit2 := c.Get(key, f)
	if hit2 == nil {
		t.Fatal("miss on resident entry after hit mutation")
	}
	if got := render(f.Name, hit2); got != want {
		t.Fatal("mutating a Get outcome changed cached bytes (hit-side aliasing)")
	}
}

// vandalize mutates every reachable decision-level buffer of an outcome.
func vandalize(out *core.Outcome) {
	for i := range out.RegisterOf {
		out.RegisterOf[i] = -7
	}
	for i := range out.SpilledValues {
		out.SpilledValues[i] = 0
	}
	for i := range out.Problem.Weight {
		out.Problem.Weight[i] = -1
	}
	for i := range out.Result.Allocated {
		out.Result.Allocated[i] = !out.Result.Allocated[i]
	}
	out.SpillCost = -999
	out.MaxLive = -1
	if g := out.Rewritten; g != nil {
		g.Name = "vandalized"
		for _, b := range g.Blocks {
			b.Name = "poof"
			for i := range b.Instrs {
				b.Instrs[i].Imm = -123456
			}
		}
	}
}

// TestEvictionBound: the capacity is a hard ceiling — over-filling a small
// cache evicts rather than grows, the accounting balances, and the most
// recently admitted entry is still resident.
func TestEvictionBound(t *testing.T) {
	const capacity = 8
	c := outcache.New(capacity) // < 64 ⇒ single shard, exact bound
	if c.Capacity() != capacity {
		t.Fatalf("Capacity() = %d, want %d", c.Capacity(), capacity)
	}

	var lastKey outcache.Key
	var lastF *ir.Func
	const n = 32
	for i := 0; i < n; i++ {
		f := irgen.FromSeed(int64(1000 + i))
		key := fingerprint.Key(f, fold)
		admit(c, key, runFull(t, f))
		lastKey, lastF = key, f
	}

	s := c.Stats()
	if s.Entries > capacity {
		t.Fatalf("resident entries %d exceed capacity %d", s.Entries, capacity)
	}
	if s.Admitted != n {
		t.Fatalf("Admitted = %d, want %d", s.Admitted, n)
	}
	if got, want := s.Evicted, uint64(n-s.Entries); got != want {
		t.Fatalf("Evicted = %d, want Admitted-Entries = %d", got, want)
	}
	if c.Len() != s.Entries {
		t.Fatalf("Len() = %d disagrees with Stats().Entries = %d", c.Len(), s.Entries)
	}
	if s.Bytes <= 0 {
		t.Fatalf("resident bytes %d not positive with %d entries", s.Bytes, s.Entries)
	}
	if c.Get(lastKey, lastF) == nil {
		t.Error("most recently admitted entry was evicted (LRU order violated)")
	}

	// Draining the cache by eviction must drive the byte accounting to the
	// residual of what remains, never negative.
	if s.Bytes < 0 {
		t.Fatalf("byte accounting went negative: %d", s.Bytes)
	}
}

// TestProtectedSegmentSurvivesScan: entries with hits are promoted to the
// protected segment and must survive a one-pass scan of one-hit wonders
// that would flush a plain LRU.
func TestProtectedSegmentSurvivesScan(t *testing.T) {
	const capacity = 10
	c := outcache.New(capacity)

	hot := irgen.FromSeed(77)
	hotKey := fingerprint.Key(hot, fold)
	admit(c, hotKey, runFull(t, hot))
	if c.Get(hotKey, hot) == nil { // promote to protected
		t.Fatal("hot entry missed immediately after admission")
	}

	// Scan: admit 2×capacity cold entries, never touched again.
	for i := 0; i < 2*capacity; i++ {
		f := irgen.FromSeed(int64(5000 + i))
		admit(c, fingerprint.Key(f, fold), runFull(t, f))
	}

	if c.Get(hotKey, hot) == nil {
		t.Error("protected entry evicted by a cold scan (2Q promotion not effective)")
	}
}

// TestMaterializeGuard: a Get against a function whose value-ID space does
// not match the stored entry must miss (the collision guard), not serve a
// wrong outcome.
func TestMaterializeGuard(t *testing.T) {
	f := irgen.FromSeed(31)
	key := fingerprint.Key(f, fold)
	c := outcache.New(16)
	admit(c, key, runFull(t, f))

	wrong := f.Clone()
	wrong.NumValues += 3
	if c.Get(key, wrong) != nil {
		t.Fatal("Get materialized against a mismatched value-ID space")
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("guarded miss was counted as a hit: %+v", s)
	}
}

// TestConcurrentSoak hammers one small shared cache from many goroutines
// with a mixed Get/Put/Stats load over a working set larger than capacity,
// verifying every hit is byte-identical to the precomputed truth. CI runs
// the package under -race, so this is also the cache's data-race probe.
func TestConcurrentSoak(t *testing.T) {
	const nFuncs = 12
	type item struct {
		f    *ir.Func
		key  outcache.Key
		out  *core.Outcome
		want string
	}
	items := make([]item, nFuncs)
	for i := range items {
		f := irgen.FromSeed(int64(9000 + i))
		out := runFull(t, f)
		items[i] = item{f: f, key: fingerprint.Key(f, fold), out: out, want: render(f.Name, out)}
	}

	c := outcache.New(8) // smaller than the working set: eviction under fire
	workers := 8
	iters := 150
	if testing.Short() {
		iters = 40
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				it := &items[(w*31+i)%nFuncs]
				if hit := c.Get(it.key, it.f); hit != nil {
					if got := render(it.f.Name, hit); got != it.want {
						select {
						case errc <- fmt.Errorf("worker %d iter %d: hit for %s differs from truth", w, i, it.f.Name):
						default:
						}
						return
					}
				} else {
					c.Put(it.key, it.out)
				}
				if i%17 == 0 {
					_ = c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Entries > c.Capacity() {
		t.Fatalf("soak left %d entries in a capacity-%d cache", s.Entries, c.Capacity())
	}
	if s.Hits == 0 {
		t.Error("soak produced no hits (working set never resident?)")
	}
}

// TestDefaultCapacity: non-positive capacities normalize to the default.
func TestDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := outcache.New(capacity)
		if c.Capacity() != outcache.DefaultCapacity {
			t.Errorf("New(%d).Capacity() = %d, want DefaultCapacity %d",
				capacity, c.Capacity(), outcache.DefaultCapacity)
		}
	}
}
