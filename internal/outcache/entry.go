package outcache

import (
	"repro/internal/alloc"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/ir"
)

// Entry is one cached allocation outcome in canonical, name-agnostic form:
// every decision-level product of a pipeline run (spill set, costs,
// register assignment, rewritten body) deep-copied away from the producing
// run, with all naming stripped. Materialize re-binds an Entry to a
// structurally identical requesting function, so one Entry serves every
// alpha-renamed copy of the code it was computed for.
//
// Entries are immutable after construction and therefore safe to share
// between cache shards, module revisions and goroutines.
type Entry struct {
	allocator string
	r         int
	chordal   bool
	weight    []float64
	vertexOf  []int
	valueOf   []int
	allocated []bool
	spilled   []int
	spillCost float64
	maxLive   int

	registerOf []int
	// coalesce is the biased-assignment move report, nil when coalescing was
	// off. Move costs are structural (block frequencies), so they transfer
	// across alpha-renamed copies like every other decision-level field.
	coalesce *coalesce.Stats
	// rewritten is the spill-code-rewritten body with names stripped
	// (function name, block names, ValueName); nil when the run skipped
	// rewriting. Value IDs are structural, so they transfer as-is.
	rewritten *ir.Func
	// baseValues is NumValues of the original input function; rewritten
	// value IDs ≥ baseValues are reload temporaries introduced by the
	// spill rewrite.
	baseValues int
	bytes      int64
}

// NewEntry deep-copies out into a cache entry. The outcome's analysis
// structures (interference graph, clique structure, live sets) are
// deliberately dropped: cached outcomes are decision-level, which is what
// keeps a hit at ~hash+copy cost.
func NewEntry(out *core.Outcome) *Entry {
	e := &Entry{
		allocator:  out.Result.Allocator,
		r:          out.Problem.R,
		chordal:    out.Problem.Chordal,
		weight:     cloneFloats(out.Problem.Weight),
		vertexOf:   cloneInts(out.VertexOf),
		valueOf:    cloneInts(out.ValueOf),
		allocated:  cloneBools(out.Result.Allocated),
		spilled:    cloneInts(out.SpilledValues),
		spillCost:  out.SpillCost,
		maxLive:    out.MaxLive,
		registerOf: cloneInts(out.RegisterOf),
		baseValues: out.F.NumValues,
	}
	if out.Coalesce != nil {
		st := *out.Coalesce
		e.coalesce = &st
	}
	if out.Rewritten != nil {
		g := out.Rewritten.Clone()
		g.Name = ""
		g.ValueName = nil
		for _, b := range g.Blocks {
			b.Name = ""
		}
		e.rewritten = g
	}
	e.bytes = e.size()
	return e
}

// Materialize builds a fresh Outcome for f from the entry: every slice is
// copied (a hit receiver owns its outcome outright — mutating it cannot
// poison the cache) and all naming is re-bound to f, so a hit is
// byte-identical to what a full run on f would have produced. The returned
// outcome carries a decision-level Problem (weights, R, chordality) with
// no interference representation attached.
//
// The caller must only materialize against functions whose structural
// fingerprint matches the one the entry was stored under; NumValues is
// re-checked as a cheap guard and nil is returned on mismatch.
func (e *Entry) Materialize(f *ir.Func) *core.Outcome {
	if f.NumValues != e.baseValues {
		return nil
	}
	out := &core.Outcome{
		F: f,
		Problem: &alloc.Problem{
			R:       e.r,
			Weight:  cloneFloats(e.weight),
			Chordal: e.chordal,
			Name:    f.Name,
		},
		Result:        &alloc.Result{Allocated: cloneBools(e.allocated), Allocator: e.allocator},
		VertexOf:      cloneInts(e.vertexOf),
		ValueOf:       cloneInts(e.valueOf),
		SpilledValues: cloneInts(e.spilled),
		SpillCost:     e.spillCost,
		MaxLive:       e.maxLive,
		RegisterOf:    cloneInts(e.registerOf),
	}
	if e.coalesce != nil {
		st := *e.coalesce
		out.Coalesce = &st
	}
	if e.rewritten != nil {
		out.Rewritten = e.rebind(f)
	}
	return out
}

// rebind clones the stored rewritten body and re-applies f's naming: the
// function name, block names, f's value names, and the derived
// "<slot>.r" names of the reload temporaries the spill rewrite introduced
// — exactly the names regassign.InsertSpillCode would have produced had
// the pipeline run on f directly.
func (e *Entry) rebind(f *ir.Func) *ir.Func {
	g := e.rewritten.Clone()
	g.Name = f.Name
	for i, b := range g.Blocks {
		b.Name = f.Blocks[i].Name
	}
	extra := g.NumValues - e.baseValues
	if f.ValueName != nil || extra > 0 {
		g.ValueName = make(map[int]string, len(f.ValueName)+extra)
		for k, v := range f.ValueName {
			g.ValueName[k] = v
		}
	}
	if extra > 0 {
		for _, b := range g.Blocks {
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				if ins.Op == ir.OpReload && ins.Def >= e.baseValues {
					g.ValueName[ins.Def] = f.NameOf(int(ins.Imm)) + ".r"
				}
			}
		}
	}
	return g
}

// size estimates the entry's resident bytes for the cache's accounting.
func (e *Entry) size() int64 {
	const entryOverhead = 192
	n := int64(entryOverhead)
	n += 8 * int64(len(e.weight)+len(e.vertexOf)+len(e.valueOf)+len(e.spilled)+len(e.registerOf))
	n += int64(len(e.allocated))
	if g := e.rewritten; g != nil {
		n += 96
		for _, b := range g.Blocks {
			n += 112 + 8*int64(len(b.Preds)+len(b.Succs))
			n += int64(len(b.Instrs)) * 88
			for i := range b.Instrs {
				n += 8 * int64(len(b.Instrs[i].Uses)+len(b.Instrs[i].Targets))
			}
		}
	}
	return n
}

// Bytes reports the entry's estimated resident size.
func (e *Entry) Bytes() int64 { return e.bytes }

func cloneInts(s []int) []int {
	if s == nil {
		return nil
	}
	return append([]int(nil), s...)
}

func cloneFloats(s []float64) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s...)
}

func cloneBools(s []bool) []bool {
	if s == nil {
		return nil
	}
	return append([]bool(nil), s...)
}
