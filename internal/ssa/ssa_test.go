package ssa_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/ssa"
)

func TestConstructDiamond(t *testing.T) {
	f := ir.MustParse(`
func d {
b0:
  x = param 0
  c = unary x
  condbr c, b1, b2
b1:
  x = arith x, x
  br b3
b2:
  x = arith x, c
  br b3
b3:
  ret x
}`)
	g, err := ssa.Construct(f)
	if err != nil {
		t.Fatal(err)
	}
	if !g.SSA {
		t.Fatal("output not marked SSA")
	}
	text := g.String()
	if !strings.Contains(text, "phi") {
		t.Fatalf("no phi at the join:\n%s", text)
	}
	// Exactly one phi: x merges at b3; c does not (single def).
	if strings.Count(text, "phi") != 1 {
		t.Fatalf("want exactly 1 phi:\n%s", text)
	}
}

func TestConstructLoop(t *testing.T) {
	f := ir.MustParse(`
func l {
b0:
  i = param 0
  k = param 1
  br b1
b1:
  c = unary i
  condbr c, b2, b3
b2:
  i = arith i, k
  br b1
b3:
  ret i
}`)
	g, err := ssa.Construct(f)
	if err != nil {
		t.Fatal(err)
	}
	// i needs a loop-header phi; k is loop-invariant with one def.
	hdr := g.Blocks[1]
	phis := 0
	for _, ins := range hdr.Instrs {
		if ins.Op == ir.OpPhi {
			phis++
		}
	}
	if phis != 1 {
		t.Fatalf("loop header has %d phis, want 1:\n%s", phis, g)
	}
}

func TestConstructNoPhiForSingleDef(t *testing.T) {
	f := ir.MustParse(`
func s {
b0:
  a = param 0
  c = unary a
  condbr c, b1, b2
b1:
  br b3
b2:
  br b3
b3:
  ret a
}`)
	g, err := ssa.Construct(f)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(g.String(), "phi") {
		t.Fatalf("phi inserted for never-redefined variable:\n%s", g)
	}
}

func TestConstructPrunedByLiveness(t *testing.T) {
	// x is redefined on both arms but dead after the join: no phi needed.
	f := ir.MustParse(`
func p {
b0:
  x = param 0
  c = unary x
  condbr c, b1, b2
b1:
  x = arith x, x
  store x, c
  br b3
b2:
  x = arith x, c
  store x, c
  br b3
b3:
  ret c
}`)
	g, err := ssa.Construct(f)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(g.String(), "phi") {
		t.Fatalf("phi inserted for dead variable:\n%s", g)
	}
}

func TestConstructRejectsSSAInput(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  ret a
}`)
	if _, err := ssa.Construct(f); err == nil {
		t.Fatal("SSA input accepted")
	}
}

// behaviour computes a summary of observable dataflow: for each store and
// return, the chain of opcodes feeding it. SSA construction must preserve
// it. We use a lightweight proxy: count of instructions by opcode must match
// except for phis/copies, and liveness-derived MaxLive of the SSA form can
// only shrink or grow slightly... — instead we check a precise invariant:
// evaluating both functions with a simple interpreter gives identical
// results.
func interpret(f *ir.Func, args []int64, fuel int) (int64, bool) {
	vals := make(map[int]int64)
	bid := 0
	prev := -1
	for fuel > 0 {
		b := f.Blocks[bid]
		// Phis read their operands simultaneously on block entry.
		var phiVals []struct {
			def int
			v   int64
		}
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			for k, p := range b.Preds {
				if p == prev {
					phiVals = append(phiVals, struct {
						def int
						v   int64
					}{ins.Def, vals[ins.Uses[k]]})
					break
				}
			}
		}
		for _, pv := range phiVals {
			vals[pv.def] = pv.v
		}
		next := -1
		for _, ins := range b.Instrs {
			fuel--
			if fuel <= 0 {
				return 0, false
			}
			switch ins.Op {
			case ir.OpPhi:
				// handled above
			case ir.OpParam:
				if int(ins.Imm) < len(args) {
					vals[ins.Def] = args[ins.Imm]
				}
			case ir.OpConst:
				vals[ins.Def] = ins.Imm
			case ir.OpArith:
				vals[ins.Def] = 3*vals[ins.Uses[0]] + 7*vals[ins.Uses[1]] + 1
			case ir.OpUnary:
				vals[ins.Def] = vals[ins.Uses[0]] % 5
			case ir.OpCopy:
				vals[ins.Def] = vals[ins.Uses[0]]
			case ir.OpLoad:
				vals[ins.Def] = vals[ins.Uses[0]] ^ 0x55
			case ir.OpCall:
				acc := int64(11)
				for _, u := range ins.Uses {
					acc = acc*31 + vals[u]
				}
				vals[ins.Def] = acc
			case ir.OpStore, ir.OpSpill:
				// no effect on the value state
			case ir.OpBranch:
				next = ins.Targets[0]
			case ir.OpCondBr:
				if vals[ins.Uses[0]]%2 != 0 {
					next = ins.Targets[0]
				} else {
					next = ins.Targets[1]
				}
			case ir.OpReturn:
				if len(ins.Uses) > 0 {
					return vals[ins.Uses[0]], true
				}
				return 0, true
			}
		}
		if next < 0 {
			return 0, false
		}
		prev, bid = bid, next
	}
	return 0, false
}

func TestPropertyConstructPreservesSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := bench.GenNonSSA("t", seed, bench.NonSSAShape{
			Vars:        6 + r.Intn(14),
			Params:      2 + r.Intn(3),
			Segments:    1 + r.Intn(4),
			MaxDepth:    1 + r.Intn(3),
			StraightLen: 1 + r.Intn(5),
			LoopProb:    r.Float64() * 0.4,
			BranchProb:  r.Float64() * 0.4,
		})
		g, err := ssa.Construct(f)
		if err != nil {
			return false
		}
		args := []int64{r.Int63n(100), r.Int63n(100), r.Int63n(100), r.Int63n(100), r.Int63n(100)}
		want, okA := interpret(f, args, 10000)
		got, okB := interpret(g, args, 20000)
		if okA != okB {
			return false
		}
		if !okA {
			return true // both ran out of fuel (infinite loop shape): fine
		}
		return want == got
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConstructProducesChordalGraphs(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := bench.GenNonSSA("t", seed, bench.NonSSAShape{
			Vars:        6 + r.Intn(18),
			Params:      2 + r.Intn(3),
			Segments:    2 + r.Intn(4),
			MaxDepth:    1 + r.Intn(3),
			StraightLen: 2 + r.Intn(5),
			LoopProb:    r.Float64() * 0.5,
			BranchProb:  r.Float64() * 0.4,
		})
		g, err := ssa.Construct(f)
		if err != nil {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		return ifg.FromFunc(g).Graph.IsChordal()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructKeepsMaxLiveReasonable(t *testing.T) {
	// SSA construction splits live ranges at phis; pressure can only go
	// down or stay similar, never explode.
	f := bench.GenNonSSA("m", 991, bench.NonSSAShape{
		Vars: 20, Params: 4, Segments: 5, MaxDepth: 2,
		StraightLen: 5, LoopProb: 0.4, BranchProb: 0.35,
	})
	before := liveness.Compute(f).MaxLive
	g, err := ssa.Construct(f)
	if err != nil {
		t.Fatal(err)
	}
	after := liveness.Compute(g).MaxLive
	if after > before+1 {
		t.Fatalf("MaxLive grew from %d to %d", before, after)
	}
}
