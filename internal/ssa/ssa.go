// Package ssa converts multiple-definition (non-SSA) ir functions into
// strict SSA form using the classic Cytron et al. algorithm: phi functions
// are placed on the pruned iterated dominance frontier of each variable's
// definition blocks, and a dominator-tree walk renames every definition to a
// fresh value.
//
// The paper's layered-optimal allocators require chordal interference
// graphs, which strict SSA guarantees; this package is the bridge that lets
// them run on JIT-style inputs (the paper's §8 notes SSA-based decoupled
// allocation as the natural deployment). The extension experiment in
// cmd/experiments compares allocating JVM98-style methods directly (layered
// heuristic on the non-chordal graph) against converting to SSA first and
// using the layered-optimal allocators.
package ssa

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// Construct returns a strict-SSA copy of f. The input must be phi-free and
// validate; every use must be dominated by at least one definition on every
// path (the package inserts no "undef" values — unreachable-on-some-path
// uses are a bug in the input and are reported as an error).
func Construct(f *ir.Func) (*ir.Func, error) {
	if f.SSA {
		return nil, fmt.Errorf("ssa: input already claims SSA form")
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("ssa: invalid input: %w", err)
	}
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				return nil, fmt.Errorf("ssa: input contains phi in block %s", b.Name)
			}
		}
	}

	c := &constructor{
		in:  f,
		out: cloneShell(f),
	}
	c.dom = f.ComputeDominance()
	c.frontiers = dominanceFrontiers(f, c.dom)
	c.live = liveness.Compute(f)
	c.placePhis()
	if err := c.rename(); err != nil {
		return nil, err
	}
	c.out.SSA = true
	if err := c.out.Validate(); err != nil {
		return nil, fmt.Errorf("ssa: construction produced invalid SSA: %w", err)
	}
	return c.out, nil
}

type constructor struct {
	in        *ir.Func
	out       *ir.Func
	dom       *ir.Dominance
	frontiers [][]int
	live      *liveness.Info
	// phiFor[block] lists the original variables needing a phi there, in
	// insertion order; phiIndex locates the phi instruction in the output
	// block for operand filling during renaming.
	phiVars [][]int
	// versions counts renamed instances per original variable (naming).
	versions map[int]int
}

// cloneShell copies blocks/edges but not instructions.
func cloneShell(f *ir.Func) *ir.Func {
	g := &ir.Func{
		Name:      f.Name,
		NumValues: f.NumValues, // original IDs stay reserved (unused)
		ValueName: make(map[int]string, len(f.ValueName)),
	}
	for k, v := range f.ValueName {
		g.ValueName[k] = v
	}
	for _, b := range f.Blocks {
		nb := &ir.Block{
			ID:        b.ID,
			Name:      b.Name,
			Preds:     append([]int(nil), b.Preds...),
			Succs:     append([]int(nil), b.Succs...),
			LoopDepth: b.LoopDepth,
		}
		g.Blocks = append(g.Blocks, nb)
	}
	return g
}

// dominanceFrontiers computes DF(b) for every block with the standard
// Cooper–Harvey–Kennedy loop: for each join-point predecessor p of b, walk
// p up the dominator tree until reaching idom(b), adding b to each walked
// block's frontier.
func dominanceFrontiers(f *ir.Func, dom *ir.Dominance) [][]int {
	n := len(f.Blocks)
	fr := make([]map[int]bool, n)
	for i := range fr {
		fr[i] = make(map[int]bool)
	}
	for _, b := range f.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if dom.Order[p] < 0 {
				continue // unreachable predecessor
			}
			runner := p
			for runner != -1 && runner != dom.Idom[b.ID] {
				fr[runner][b.ID] = true
				runner = dom.Idom[runner]
			}
		}
	}
	out := make([][]int, n)
	for i, m := range fr {
		for b := range m {
			out[i] = append(out[i], b)
		}
		sort.Ints(out[i])
	}
	return out
}

// placePhis inserts (pruned) phi placeholders: a variable gets a phi at a
// frontier block only if it is live into that block.
func (c *constructor) placePhis() {
	f := c.in
	c.phiVars = make([][]int, len(f.Blocks))
	defBlocks := make(map[int][]int) // variable -> blocks defining it
	for _, b := range f.Blocks {
		seen := make(map[int]bool)
		for _, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue && !seen[ins.Def] {
				seen[ins.Def] = true
				defBlocks[ins.Def] = append(defBlocks[ins.Def], b.ID)
			}
		}
	}
	liveIn := make([]map[int]bool, len(f.Blocks))
	for i, set := range c.live.LiveIn {
		liveIn[i] = make(map[int]bool, len(set))
		for _, v := range set {
			liveIn[i][v] = true
		}
	}
	vars := make([]int, 0, len(defBlocks))
	for v := range defBlocks {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		hasPhi := make(map[int]bool)
		work := append([]int(nil), defBlocks[v]...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, df := range c.frontiers[b] {
				if hasPhi[df] || !liveIn[df][v] {
					continue
				}
				hasPhi[df] = true
				c.phiVars[df] = append(c.phiVars[df], v)
				// The phi is itself a definition of v.
				work = append(work, df)
			}
		}
	}
}

// rename walks the dominator tree, maintaining a definition stack per
// original variable, rewriting uses and minting fresh SSA values for defs.
// Phi placeholders are pre-placed in every block first so that successor
// operand slots exist regardless of walk order.
func (c *constructor) rename() error {
	c.versions = make(map[int]int)
	stacks := make(map[int][]int)
	phiSlot := make([]map[int]int, len(c.out.Blocks))
	for bid, outB := range c.out.Blocks {
		phiSlot[bid] = make(map[int]int)
		for _, orig := range c.phiVars[bid] {
			phiSlot[bid][orig] = len(outB.Instrs)
			uses := make([]int, len(outB.Preds))
			for k := range uses {
				uses[k] = ir.NoValue
			}
			outB.Instrs = append(outB.Instrs, ir.Instr{Op: ir.OpPhi, Def: ir.NoValue, Uses: uses})
		}
	}

	var walk func(bid int) error
	walk = func(bid int) error {
		inB := c.in.Blocks[bid]
		outB := c.out.Blocks[bid]
		var pushed []int // original vars whose stack this block extended

		define := func(orig int) int {
			nv := c.out.NewValue()
			c.out.ValueName[nv] = fmt.Sprintf("%s.%d", c.in.NameOf(orig), c.versions[orig])
			c.versions[orig]++
			stacks[orig] = append(stacks[orig], nv)
			pushed = append(pushed, orig)
			return nv
		}
		lookup := func(orig int) (int, error) {
			s := stacks[orig]
			if len(s) == 0 {
				return 0, fmt.Errorf("ssa: use of %s in %s not dominated by any definition",
					c.in.NameOf(orig), inB.Name)
			}
			return s[len(s)-1], nil
		}

		// The block's phis define their variables first.
		for _, orig := range c.phiVars[bid] {
			ins := &outB.Instrs[phiSlot[bid][orig]]
			ins.Def = define(orig)
		}
		// Body instructions: rewrite uses, mint fresh defs.
		for _, ins := range inB.Instrs {
			n := ins
			n.Uses = append([]int(nil), ins.Uses...)
			n.Targets = append([]int(nil), ins.Targets...)
			for k, u := range n.Uses {
				r, err := lookup(u)
				if err != nil {
					return err
				}
				n.Uses[k] = r
			}
			if n.Op.HasDef() && n.Def != ir.NoValue {
				n.Def = define(ins.Def)
			}
			outB.Instrs = append(outB.Instrs, n)
		}
		// Fill successor phi operands along each CFG edge out of bid.
		for _, s := range inB.Succs {
			succOut := c.out.Blocks[s]
			for _, orig := range c.phiVars[s] {
				ins := &succOut.Instrs[phiSlot[s][orig]]
				for k, pred := range succOut.Preds {
					if pred != bid || ins.Uses[k] != ir.NoValue {
						continue
					}
					r, err := lookup(orig)
					if err != nil {
						return fmt.Errorf("ssa: phi operand for %s on edge %s→%s: %w",
							c.in.NameOf(orig), inB.Name, succOut.Name, err)
					}
					ins.Uses[k] = r
					break
				}
			}
		}
		for _, child := range c.dom.Children[bid] {
			if err := walk(child); err != nil {
				return err
			}
		}
		for _, orig := range pushed {
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
		return nil
	}
	return walk(0)
}
