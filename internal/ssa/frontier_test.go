package ssa

import (
	"testing"

	"repro/internal/ir"
)

func TestDominanceFrontiersDiamond(t *testing.T) {
	f := ir.MustParse(`
func d {
b0:
  x = param 0
  condbr x, b1, b2
b1:
  br b3
b2:
  br b3
b3:
  ret x
}`)
	dom := f.ComputeDominance()
	fr := dominanceFrontiers(f, dom)
	// DF(b1) = DF(b2) = {b3}; DF(b0) = DF(b3) = ∅.
	if len(fr[1]) != 1 || fr[1][0] != 3 {
		t.Fatalf("DF(b1) = %v", fr[1])
	}
	if len(fr[2]) != 1 || fr[2][0] != 3 {
		t.Fatalf("DF(b2) = %v", fr[2])
	}
	if len(fr[0]) != 0 || len(fr[3]) != 0 {
		t.Fatalf("DF(b0)=%v DF(b3)=%v", fr[0], fr[3])
	}
}

func TestDominanceFrontiersLoop(t *testing.T) {
	f := ir.MustParse(`
func l {
b0:
  x = param 0
  br b1
b1:
  condbr x, b2, b3
b2:
  br b1
b3:
  ret x
}`)
	dom := f.ComputeDominance()
	fr := dominanceFrontiers(f, dom)
	// The loop header is in its own frontier (back edge b2→b1).
	if len(fr[1]) != 1 || fr[1][0] != 1 {
		t.Fatalf("DF(b1) = %v, want {b1}", fr[1])
	}
	if len(fr[2]) != 1 || fr[2][0] != 1 {
		t.Fatalf("DF(b2) = %v, want {b1}", fr[2])
	}
}
