package fingerprint_test

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/fingerprint"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/spillcost"
)

// base is the hand-built function the semantic-edit tests mutate: it has
// every structural dimension a fingerprint must cover (constants with
// immediates, multi-operand instructions, a conditional branch with two
// targets, a merge block with two predecessors).
func base(t *testing.T) *ir.Func {
	t.Helper()
	m := ir.MustParseModule(`
func base ssa {
b0:
  a = param 0
  k = const 7
  b = arith a, k
  condbr b, b1, b2
b1:
  c = unary b
  br b2
b2:
  ret b
}
`)
	return m.Funcs[0]
}

// TestFingerprintNameInsensitivity: the fingerprint must ignore every
// naming artifact — function name, value names, block names — because the
// pipeline's decisions are functions of value IDs alone and cache hits
// re-bind names to the requesting function.
func TestFingerprintNameInsensitivity(t *testing.T) {
	f := base(t)
	want := fingerprint.Func(f)

	g := f.Clone()
	g.Name = "entirely_different"
	if fingerprint.Func(g) != want {
		t.Error("function name changed the fingerprint")
	}

	g = f.Clone()
	for _, b := range g.Blocks {
		b.Name = "blk_" + b.Name
	}
	if fingerprint.Func(g) != want {
		t.Error("block names changed the fingerprint")
	}

	g = f.Clone()
	g.ValueName = map[int]string{0: "x", 1: "y", 2: "z"}
	if fingerprint.Func(g) != want {
		t.Error("value names changed the fingerprint")
	}

	g = f.Clone()
	g.ValueName = nil
	if fingerprint.Func(g) != want {
		t.Error("dropping value names changed the fingerprint")
	}
}

// TestFingerprintAlphaRenameInvariant: over generated functions of both
// SSA and non-SSA shape, a full alpha-rename (fresh function, value and
// block names) fingerprints equal, and the config-folded key does too.
func TestFingerprintAlphaRenameInvariant(t *testing.T) {
	cfg := fingerprint.NewConfig(4, "", spillcost.Model{}, true, nil, 0)
	for seed := int64(1); seed <= 25; seed++ {
		f := irgen.FromSeed(seed)
		g := irgen.AlphaRename(f, "renamed", int(seed))
		if fingerprint.Func(f) != fingerprint.Func(g) {
			t.Fatalf("seed %d: alpha-rename changed the fingerprint", seed)
		}
		if fingerprint.Key(f, cfg) != fingerprint.Key(g, cfg) {
			t.Fatalf("seed %d: alpha-rename changed the config-folded key", seed)
		}
	}
}

// TestFingerprintSemanticEdits: every edit the pipeline could observe —
// opcode, immediate, operand, definition, branch target, CFG edge order,
// block order, block count, instruction count, value-ID space, SSA flag —
// must change the fingerprint. Edits are applied to clones; the mutants
// need not be valid IR (the fingerprint never validates).
func TestFingerprintSemanticEdits(t *testing.T) {
	f := base(t)
	want := fingerprint.Func(f)
	edits := []struct {
		name string
		edit func(g *ir.Func)
	}{
		{"ssa flag", func(g *ir.Func) { g.SSA = false }},
		{"value-ID space", func(g *ir.Func) { g.NumValues++ }},
		{"opcode", func(g *ir.Func) { g.Blocks[0].Instrs[2].Op = ir.OpCopy }},
		{"immediate", func(g *ir.Func) { g.Blocks[0].Instrs[1].Imm++ }},
		{"operand", func(g *ir.Func) { g.Blocks[0].Instrs[2].Uses[1] = 0 }},
		{"definition", func(g *ir.Func) { g.Blocks[1].Instrs[0].Def = 0 }},
		{"branch targets", func(g *ir.Func) {
			tg := g.Blocks[0].Terminator().Targets
			tg[0], tg[1] = tg[1], tg[0]
		}},
		{"pred order", func(g *ir.Func) {
			p := g.Blocks[2].Preds
			p[0], p[1] = p[1], p[0]
		}},
		{"succ order", func(g *ir.Func) {
			s := g.Blocks[0].Succs
			s[0], s[1] = s[1], s[0]
		}},
		{"block order", func(g *ir.Func) {
			g.Blocks[1], g.Blocks[2] = g.Blocks[2], g.Blocks[1]
		}},
		{"block count", func(g *ir.Func) { g.Blocks = append(g.Blocks, &ir.Block{ID: 3}) }},
		{"instruction count", func(g *ir.Func) {
			b := g.Blocks[1]
			b.Instrs = append(b.Instrs, b.Instrs[0])
		}},
		{"use count", func(g *ir.Func) {
			ins := &g.Blocks[0].Instrs[2]
			ins.Uses = ins.Uses[:1]
		}},
	}
	for _, e := range edits {
		g := f.Clone()
		e.edit(g)
		if fingerprint.Func(g) == want {
			t.Errorf("%s edit preserved the fingerprint", e.name)
		}
	}
}

// TestFingerprintDeterminism: hashing is a pure function — repeated and
// clone-of hashes agree.
func TestFingerprintDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		f := irgen.FromSeed(seed)
		a, b, c := fingerprint.Func(f), fingerprint.Func(f), fingerprint.Func(f.Clone())
		if a != b || a != c {
			t.Fatalf("seed %d: fingerprint not deterministic (%v %v %v)", seed, a, b, c)
		}
	}
}

// TestKeyConfigFold: the key must separate every configuration dimension
// that can change an outcome, and canonicalize the two aliasing inputs
// (allocator case, the zero cost model meaning the default model).
func TestKeyConfigFold(t *testing.T) {
	f := base(t)
	ref := fingerprint.Key(f, fingerprint.NewConfig(4, "bfpl", spillcost.Model{}, true, nil, 0))

	if got := fingerprint.Key(f, fingerprint.NewConfig(4, "BFPL", spillcost.Model{}, true, nil, 0)); got != ref {
		t.Error("allocator name case changed the key (registry is case-insensitive)")
	}
	if got := fingerprint.Key(f, fingerprint.NewConfig(4, "bfpl", spillcost.DefaultModel, true, nil, 0)); got != ref {
		t.Error("zero model and DefaultModel produced different keys")
	}

	diffs := []fingerprint.Config{
		fingerprint.NewConfig(5, "bfpl", spillcost.Model{}, true, nil, 0),
		fingerprint.NewConfig(4, "nl", spillcost.Model{}, true, nil, 0),
		fingerprint.NewConfig(4, "", spillcost.Model{}, true, nil, 0),
		fingerprint.NewConfig(4, "bfpl", spillcost.NewModel(2, 1), true, nil, 0),
		fingerprint.NewConfig(4, "bfpl", spillcost.NewModel(10, 0.5), true, nil, 0),
		fingerprint.NewConfig(4, "bfpl", spillcost.Model{}, false, nil, 0),
	}
	for i, c := range diffs {
		if fingerprint.Key(f, c) == ref {
			t.Errorf("config variant %d collided with the reference key (%+v)", i, c)
		}
	}

	g := f.Clone()
	g.Blocks[0].Instrs[1].Imm++
	if fingerprint.Key(g, fingerprint.NewConfig(4, "bfpl", spillcost.Model{}, true, nil, 0)) == ref {
		t.Error("function edit did not change the config-folded key")
	}
}

// TestKeyMachineFold: configurations differing only in the machine
// constraints must key differently — an unconstrained engine, two machines
// at the same R, and the same machine at different R may never share
// outcache entries — while the constraint annotations on the function
// itself (classes, pins, clobbers) are part of the structural fingerprint.
func TestKeyMachineFold(t *testing.T) {
	f := base(t)
	mk := func(name string, r int) fingerprint.Config {
		m, err := arch.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint.NewConfig(r, "bfpl", spillcost.Model{}, true, m.Constraints(r), 0)
	}
	plain := fingerprint.NewConfig(4, "bfpl", spillcost.Model{}, true, nil, 0)
	keys := map[fingerprint.FP]string{fingerprint.Key(f, plain): "unconstrained"}
	for _, c := range []struct {
		label string
		cfg   fingerprint.Config
	}{
		{"st231 R=4", mk("st231", 4)},
		{"armv7 R=4", mk("armv7", 4)},
		{"jvm98 R=4", mk("jvm98", 4)},
		{"st231 R=8", mk("st231", 8)},
	} {
		k := fingerprint.Key(f, c.cfg)
		if prev, ok := keys[k]; ok {
			t.Errorf("%s collided with %s", c.label, prev)
		}
		keys[k] = c.label
	}

	// Machine names are case-folded like allocator names.
	if fingerprint.NewConfig(4, "bfpl", spillcost.Model{}, true, mustMachine(t, "ST231").Constraints(4), 0).Machine != "st231" {
		t.Error("machine name was not case-folded in NewConfig")
	}

	// Constraint annotations on the function change its structural
	// fingerprint (and hence every key).
	for _, edit := range []struct {
		name string
		edit func(g *ir.Func)
	}{
		{"value class", func(g *ir.Func) { g.SetClass(2, ir.ClassFP) }},
		{"pre-color", func(g *ir.Func) { g.SetPreColor(0, ir.MakeReg(ir.ClassGPR, 0)) }},
		{"clobbers", func(g *ir.Func) { g.Blocks[0].Instrs[2].Clobbers = []int{0, 1} }},
	} {
		g := f.Clone()
		edit.edit(g)
		if fingerprint.Func(g) == fingerprint.Func(f) {
			t.Errorf("%s annotation preserved the fingerprint", edit.name)
		}
	}
	// Explicit ClassGPR is canonical-by-omission: it must NOT change the
	// fingerprint.
	g := f.Clone()
	g.SetClass(2, ir.ClassGPR)
	if fingerprint.Func(g) != fingerprint.Func(f) {
		t.Error("explicit ClassGPR annotation changed the fingerprint")
	}
}

func mustMachine(t *testing.T, name string) arch.Machine {
	t.Helper()
	m, err := arch.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// FuzzFingerprint fuzzes the two core properties over the seeded program
// generator: alpha-renaming never changes the fingerprint, and a semantic
// edit (immediate bump, value-space bump, opcode flip) always does.
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(1), 1)
	f.Add(int64(42), 7)
	f.Add(int64(20260808), 3)
	f.Add(int64(-9000), 250)
	f.Fuzz(func(t *testing.T, seed int64, tag int) {
		fn := irgen.FromSeed(seed)
		fp := fingerprint.Func(fn)
		if fingerprint.Func(fn) != fp {
			t.Fatal("fingerprint not deterministic")
		}
		if fingerprint.Func(irgen.AlphaRename(fn, "fuzzed", tag)) != fp {
			t.Fatal("alpha-rename changed the fingerprint")
		}
		g := fn.Clone()
		g.Blocks[0].Instrs[0].Imm++
		if fingerprint.Func(g) == fp {
			t.Fatal("immediate edit preserved the fingerprint")
		}
		g = fn.Clone()
		g.NumValues++
		if fingerprint.Func(g) == fp {
			t.Fatal("value-space edit preserved the fingerprint")
		}
	})
}

// TestKeyCoalescingFold: the coalescing policy changes the register
// assignment (never the spill set), so cached outcomes must not leak across
// bias settings — same function, bias off/aggressive/conservative must key
// three ways, on unconstrained and machine-constrained configurations alike.
func TestKeyCoalescingFold(t *testing.T) {
	f := base(t)
	keys := map[fingerprint.FP]string{}
	for _, cons := range []*arch.Constraints{nil, mustMachine(t, "st231").Constraints(4)} {
		for pol := 0; pol <= 2; pol++ {
			label := fmt.Sprintf("cons=%v policy=%d", cons != nil, pol)
			k := fingerprint.Key(f, fingerprint.NewConfig(4, "bfpl", spillcost.Model{}, true, cons, pol))
			if prev, ok := keys[k]; ok {
				t.Errorf("%s collided with %s", label, prev)
			}
			keys[k] = label
		}
	}
}
