// Package fingerprint computes canonical, content-addressed identities for
// IR functions and allocation configurations — the keys of the outcome
// cache (internal/outcache) and of incremental module recompilation.
//
// A function fingerprint covers exactly the structure the allocation
// pipeline consumes: opcodes, def/use value IDs, immediates, CFG edges and
// block order, plus the SSA flag and the value-ID space. It deliberately
// ignores every naming artifact — the function name, value names and block
// names — so two alpha-renamed copies of the same code fingerprint equal
// (the pipeline's decisions are functions of value IDs, never of names;
// cache hits re-bind names to the requesting function). Any semantic edit —
// a different opcode, immediate, operand, CFG edge, or block/instruction
// order — changes the fingerprint.
//
// Fingerprints are 128 bits: two word-level FNV-1a accumulators over the
// same canonical word stream, the second over splitmix64-mixed words so the
// two lanes collide independently. At 2^-128 the collision probability is
// ignorable even for a long-lived compile server, which is what lets the
// cache return outcomes on fingerprint equality alone.
package fingerprint

import (
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/spillcost"
)

// FP is a 128-bit fingerprint, usable directly as a map key.
type FP struct {
	Hi, Lo uint64
}

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// hasher folds a word stream into two decorrelated FNV-1a lanes.
type hasher struct {
	lo, hi uint64
}

func newHasher() hasher { return hasher{lo: offset64, hi: offset64} }

// mix64 is the splitmix64 finalizer: a bijective avalanche so the hi lane
// sees an unrelated permutation of every word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (h *hasher) word(w uint64) {
	h.lo = (h.lo ^ w) * prime64
	h.hi = (h.hi ^ mix64(w)) * prime64
}

func (h *hasher) int(v int) { h.word(uint64(int64(v))) }

func (h *hasher) ints(s []int) {
	h.int(len(s))
	for _, v := range s {
		h.int(v)
	}
}

func (h *hasher) str(s string) {
	h.int(len(s))
	for i := 0; i < len(s); i += 8 {
		var w uint64
		for j := i; j < len(s) && j < i+8; j++ {
			w = w<<8 | uint64(s[j])
		}
		h.word(w)
	}
}

func (h *hasher) sum() FP { return FP{Hi: h.hi, Lo: h.lo} }

// Per-section tags keep the encoding injective across field boundaries.
const (
	tagFunc uint64 = 0x46554e43 + iota // "FUNC"
	tagBlock
	tagInstr
	tagConfig
	tagClasses
	tagPins
	tagMachine
	tagCoalesce
)

// Func fingerprints the structure of f. Names (function, value, block) are
// excluded; everything the pipeline's decisions depend on is included.
func Func(f *ir.Func) FP {
	h := newHasher()
	hashFunc(&h, f)
	return h.sum()
}

func hashFunc(h *hasher, f *ir.Func) {
	h.word(tagFunc)
	ssa := uint64(0)
	if f.SSA {
		ssa = 1
	}
	h.word(ssa)
	h.int(f.NumValues)
	h.int(len(f.Blocks))
	for _, b := range f.Blocks {
		h.word(tagBlock)
		h.ints(b.Preds)
		h.ints(b.Succs)
		h.int(len(b.Instrs))
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			h.word(tagInstr)
			h.int(int(ins.Op))
			h.int(ins.Def)
			h.ints(ins.Uses)
			h.word(uint64(ins.Imm))
			h.ints(ins.Targets)
			h.ints(ins.Clobbers)
		}
	}
	// Machine-constraint annotations, in canonical (value-ID sorted) order.
	// Explicit ClassGPR entries are the default and are skipped so that the
	// canonical-by-omission and explicit spellings fingerprint equal.
	if len(f.ValueClass) > 0 {
		keys := make([]int, 0, len(f.ValueClass))
		for v, c := range f.ValueClass {
			if c != ir.ClassGPR {
				keys = append(keys, v)
			}
		}
		if len(keys) > 0 {
			sort.Ints(keys)
			h.word(tagClasses)
			h.int(len(keys))
			for _, v := range keys {
				h.int(v)
				h.int(int(f.ValueClass[v]))
			}
		}
	}
	if len(f.PreColor) > 0 {
		keys := make([]int, 0, len(f.PreColor))
		for v := range f.PreColor {
			keys = append(keys, v)
		}
		sort.Ints(keys)
		h.word(tagPins)
		h.int(len(keys))
		for _, v := range keys {
			h.int(v)
			h.int(f.PreColor[v])
		}
	}
}

// Config is the allocation-relevant engine configuration folded into a
// cache key: two runs with equal Config and structurally equal functions
// are guaranteed byte-identical outcomes (the pipeline is deterministic),
// so the pair (Func fingerprint, Config) addresses an outcome completely.
// Flags that cannot change the outcome — the legacy-IFG path toggle,
// scratch reuse, worker counts — are deliberately absent.
type Config struct {
	// Registers is the register count R.
	Registers int
	// Allocator is the canonical (lower-cased) allocator registry name;
	// "" is the per-function default lineup, itself a pure function of the
	// function's structure.
	Allocator string
	// LoopBase and StoreFactor are the normalized cost-model parameters.
	LoopBase, StoreFactor float64
	// Rewrite records whether assignment and spill-code insertion run.
	Rewrite bool
	// Machine is the canonical (lower-cased) machine name; "" means
	// unconstrained allocation.
	Machine string
	// Classes is the instantiated per-class register file when
	// machine-constrained allocation is on (all-zero otherwise). Two
	// engines differing only here must never share outcache entries.
	Classes [ir.NumClasses]arch.ClassFile
	// Coalescing is the numeric coalescing policy (coalesce.Policy). Biased
	// assignment changes the register assignment (and the move stats) of an
	// outcome, so cached outcomes must never leak across bias settings.
	Coalescing int
}

// NewConfig canonicalizes one engine configuration: the allocator name is
// case-folded (the registry is case-insensitive) and the cost model is
// normalized (the zero model means the default model). cons, when non-nil,
// folds the machine-constraint configuration into the key; coalescing is
// the numeric coalescing policy (0 = off).
func NewConfig(registers int, allocator string, m spillcost.Model, rewrite bool, cons *arch.Constraints, coalescing int) Config {
	loopBase, storeFactor := m.Params()
	c := Config{
		Registers:   registers,
		Allocator:   strings.ToLower(allocator),
		LoopBase:    loopBase,
		StoreFactor: storeFactor,
		Rewrite:     rewrite,
		Coalescing:  coalescing,
	}
	if cons != nil {
		c.Machine = strings.ToLower(cons.Machine)
		c.Classes = cons.Classes
	}
	return c
}

// Key folds f's structural fingerprint with the configuration: the
// content-addressed cache key.
func Key(f *ir.Func, c Config) FP {
	h := newHasher()
	hashFunc(&h, f)
	h.word(tagConfig)
	h.int(c.Registers)
	h.str(c.Allocator)
	h.word(math.Float64bits(c.LoopBase))
	h.word(math.Float64bits(c.StoreFactor))
	rw := uint64(0)
	if c.Rewrite {
		rw = 1
	}
	h.word(rw)
	h.word(tagMachine)
	h.str(c.Machine)
	for _, file := range c.Classes {
		h.int(file.Cap)
		h.int(file.CallerSaved)
		h.int(file.ParamRegs)
	}
	h.word(tagCoalesce)
	h.int(c.Coalescing)
	return h.sum()
}
