// Package arch describes the register files of the evaluation targets. The
// experiments sweep the register count explicitly (the paper varies R from 1
// to 32 regardless of the physical register file), so these descriptions
// mainly provide named defaults for the CLIs and examples.
package arch

import "fmt"

// Machine describes one target.
type Machine struct {
	// Name identifies the target (e.g. "st231").
	Name string
	// IntRegs is the number of allocable integer registers.
	IntRegs int
	// Reserved is the number of registers the ABI withholds from the
	// allocator (stack pointer, link register, assembler temporaries).
	Reserved int
	// CISCMemOperands reports whether instructions may take one memory
	// operand directly (x86-style), which cheapens some reloads; the cost
	// model exposes it for the examples but the paper's evaluation does
	// not use it.
	CISCMemOperands bool
}

// Allocable returns the number of registers available to the allocator.
func (m Machine) Allocable() int { return m.IntRegs - m.Reserved }

// ST231 is the STMicroelectronics ST231 VLIW core used for the SPEC CPU
// 2000int, EEMBC and lao-kernels experiments.
var ST231 = Machine{Name: "st231", IntRegs: 64, Reserved: 2}

// ARMv7 is the ARM Cortex A8 target used for the lao-kernels experiment.
var ARMv7 = Machine{Name: "armv7", IntRegs: 16, Reserved: 3}

// JVM98 is the JikesRVM/IA32-flavoured target of the non-chordal
// experiments; the paper sweeps 2–16 registers on it.
var JVM98 = Machine{Name: "jvm98", IntRegs: 16, Reserved: 0, CISCMemOperands: true}

// ByName returns the machine with the given name.
func ByName(name string) (Machine, error) {
	switch name {
	case "st231":
		return ST231, nil
	case "armv7":
		return ARMv7, nil
	case "jvm98":
		return JVM98, nil
	}
	return Machine{}, fmt.Errorf("arch: unknown machine %q (want st231, armv7 or jvm98)", name)
}
