// Package arch describes the register files of the evaluation targets. The
// experiments sweep the register count explicitly (the paper varies R from 1
// to 32 regardless of the physical register file), so these descriptions
// provide named defaults for the CLIs and examples — and, for
// machine-constrained allocation, the per-class shape of the target:
// which classes exist, how many of each class's registers the ABI passes
// arguments in, and how many a call clobbers.
package arch

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// ClassShape describes how a machine carves one register class out of a
// swept register count R. The sweep keeps R as the per-class capacity (the
// paper varies R regardless of the physical file); the shape scales the
// ABI structure with it.
type ClassShape struct {
	// Present reports whether the target has this register class at all.
	Present bool
	// CallerSavedPct is the percentage of the class's registers that are
	// caller-saved (clobbered at call sites), rounded up and clamped to
	// [1, cap] — every real ABI clobbers at least one register per class.
	CallerSavedPct int
	// ParamRegs is the number of leading registers the ABI dedicates to
	// argument passing (0 = arguments on the stack).
	ParamRegs int
}

// Machine describes one target.
type Machine struct {
	// Name identifies the target (e.g. "st231").
	Name string
	// IntRegs is the number of allocable integer registers.
	IntRegs int
	// Reserved is the number of registers the ABI withholds from the
	// allocator (stack pointer, link register, assembler temporaries).
	Reserved int
	// CISCMemOperands reports whether instructions may take one memory
	// operand directly (x86-style), which cheapens some reloads; the cost
	// model exposes it for the examples but the paper's evaluation does
	// not use it.
	CISCMemOperands bool
	// GPR and FP are the constraint shapes of the two register classes.
	GPR ClassShape
	FP  ClassShape
}

// Allocable returns the number of registers available to the allocator.
func (m Machine) Allocable() int { return m.IntRegs - m.Reserved }

// Shape returns the machine's shape for a register class.
func (m Machine) Shape(c ir.Class) ClassShape {
	if c == ir.ClassFP {
		return m.FP
	}
	return m.GPR
}

// ClassFile is one register class of a Constraints instance: Cap registers,
// of which indexes [0, CallerSaved) are clobbered by calls and indexes
// [0, ParamRegs) carry the leading arguments.
type ClassFile struct {
	Cap         int
	CallerSaved int
	ParamRegs   int
}

// Constraints is a machine description instantiated at a concrete per-class
// register count R — the object threaded through the allocation stack when
// machine-constrained allocation is on.
type Constraints struct {
	// Machine names the target the constraints were instantiated from.
	Machine string
	// Classes holds one register file per ir.Class; a class the target
	// lacks has Cap 0.
	Classes [ir.NumClasses]ClassFile
}

// Constraints instantiates the machine's constraint shape at per-class
// register count r (r must be ≥ 1 and ≤ ir.RegStride).
func (m Machine) Constraints(r int) *Constraints {
	cs := &Constraints{Machine: m.Name}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		shape := m.Shape(c)
		if !shape.Present {
			continue
		}
		file := ClassFile{Cap: r}
		file.CallerSaved = (r*shape.CallerSavedPct + 99) / 100
		if file.CallerSaved < 1 {
			file.CallerSaved = 1
		}
		if file.CallerSaved > r {
			file.CallerSaved = r
		}
		file.ParamRegs = shape.ParamRegs
		if file.ParamRegs > r {
			file.ParamRegs = r
		}
		cs.Classes[c] = file
	}
	return cs
}

// Class returns the register file of class c.
func (cs *Constraints) Class(c ir.Class) ClassFile {
	if c < 0 || c >= ir.NumClasses {
		return ClassFile{}
	}
	return cs.Classes[c]
}

// Cap returns the register count of class c (0 when the class is absent).
func (cs *Constraints) Cap(c ir.Class) int { return cs.Class(c).Cap }

// ParamPin returns the fixed register (RegRef) for the i-th integer
// argument, if the ABI passes it in a register.
func (cs *Constraints) ParamPin(i int) (int, bool) {
	file := cs.Classes[ir.ClassGPR]
	if i < 0 || i >= file.ParamRegs {
		return 0, false
	}
	return ir.MakeReg(ir.ClassGPR, i), true
}

// ClobberSet returns the machine's default call-clobber set — every
// caller-saved register of every present class — as sorted RegRefs, the
// annotation irgen attaches to generated call sites.
func (cs *Constraints) ClobberSet() []int {
	var refs []int
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		for i := 0; i < cs.Classes[c].CallerSaved; i++ {
			refs = append(refs, ir.MakeReg(c, i))
		}
	}
	return refs
}

// Validate checks internal consistency of the constraint object.
func (cs *Constraints) Validate() error {
	if cs.Classes[ir.ClassGPR].Cap < 1 {
		return fmt.Errorf("arch: constraints for %q have no integer registers", cs.Machine)
	}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		file := cs.Classes[c]
		if file.Cap < 0 || file.Cap > ir.RegStride {
			return fmt.Errorf("arch: class %s capacity %d out of range [0, %d]", c, file.Cap, ir.RegStride)
		}
		if file.CallerSaved < 0 || file.CallerSaved > file.Cap {
			return fmt.Errorf("arch: class %s caller-saved count %d exceeds capacity %d", c, file.CallerSaved, file.Cap)
		}
		if file.ParamRegs < 0 || file.ParamRegs > file.Cap {
			return fmt.Errorf("arch: class %s param-register count %d exceeds capacity %d", c, file.ParamRegs, file.Cap)
		}
	}
	return nil
}

// ST231 is the STMicroelectronics ST231 VLIW core used for the SPEC CPU
// 2000int, EEMBC and lao-kernels experiments: an integer-only register file
// whose calling convention makes every allocable register caller-saved, so
// every live-through-call value must be spilled — the harshest clobber
// regime in the suite.
var ST231 = Machine{
	Name: "st231", IntRegs: 64, Reserved: 2,
	GPR: ClassShape{Present: true, CallerSavedPct: 100, ParamRegs: 8},
}

// ARMv7 is the ARM Cortex A8 target used for the lao-kernels experiment:
// AAPCS-shaped, with r0–r3 carrying the leading arguments and roughly half
// of each class preserved across calls.
var ARMv7 = Machine{
	Name: "armv7", IntRegs: 16, Reserved: 3,
	GPR: ClassShape{Present: true, CallerSavedPct: 50, ParamRegs: 4},
	FP:  ClassShape{Present: true, CallerSavedPct: 50},
}

// JVM98 is the JikesRVM/IA32-flavoured target of the non-chordal
// experiments; the paper sweeps 2–16 registers on it. IA32-shaped:
// arguments on the stack, about half the integer registers caller-saved,
// and an x87-style FP file that survives no call.
var JVM98 = Machine{
	Name: "jvm98", IntRegs: 16, Reserved: 0, CISCMemOperands: true,
	GPR: ClassShape{Present: true, CallerSavedPct: 50},
	FP:  ClassShape{Present: true, CallerSavedPct: 100},
}

// machines is the registry ByName and Names resolve against, in
// presentation order.
var machines = []Machine{ST231, ARMv7, JVM98}

// Names lists the registered machine names in presentation order.
func Names() []string {
	names := make([]string, len(machines))
	for i, m := range machines {
		names[i] = m.Name
	}
	return names
}

// ByName returns the machine with the given name, matched
// case-insensitively (consistent with the allocator registry's
// case-folding).
func ByName(name string) (Machine, error) {
	for _, m := range machines {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("arch: unknown machine %q (want %s)", name, strings.Join(Names(), ", "))
}
