package arch

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"st231", "armv7", "jvm98"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("ByName(%s).Name = %s", name, m.Name)
		}
		if m.Allocable() <= 0 || m.Allocable() > m.IntRegs {
			t.Fatalf("%s allocable = %d of %d", name, m.Allocable(), m.IntRegs)
		}
	}
	if _, err := ByName("pdp11"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestRegisterFiles(t *testing.T) {
	if ST231.IntRegs != 64 {
		t.Fatal("ST231 is a 64-register VLIW")
	}
	if ARMv7.IntRegs != 16 {
		t.Fatal("ARMv7 has 16 integer registers")
	}
	if !JVM98.CISCMemOperands {
		t.Fatal("IA32-flavoured target should allow memory operands")
	}
}

func TestByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"ST231", "ArmV7", "JVM98"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name == name {
			t.Fatalf("registry stores the folded name, got %q back verbatim", name)
		}
	}
	_, err := ByName("pdp11")
	if err == nil {
		t.Fatal("unknown machine accepted")
	}
	for _, want := range Names() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list machine %q", err, want)
		}
	}
}

func TestConstraintsInstantiation(t *testing.T) {
	for _, m := range []Machine{ST231, ARMv7, JVM98} {
		for _, r := range []int{1, 2, 3, 4, 8} {
			cs := m.Constraints(r)
			if err := cs.Validate(); err != nil {
				t.Fatalf("%s@R=%d: %v", m.Name, r, err)
			}
			if cs.Cap(ir.ClassGPR) != r {
				t.Fatalf("%s@R=%d: GPR cap %d", m.Name, r, cs.Cap(ir.ClassGPR))
			}
			if got := cs.Class(ir.ClassGPR).CallerSaved; got < 1 || got > r {
				t.Fatalf("%s@R=%d: caller-saved %d outside [1,%d]", m.Name, r, got, r)
			}
		}
	}
	// st231 is integer-only with an all-caller-saved convention.
	cs := ST231.Constraints(4)
	if cs.Cap(ir.ClassFP) != 0 {
		t.Fatal("st231 should not have an FP class")
	}
	if cs.Class(ir.ClassGPR).CallerSaved != 4 {
		t.Fatal("st231 calls should clobber every register")
	}
	// armv7 pins leading arguments to r0..r3, clamped by capacity.
	cs = ARMv7.Constraints(8)
	if ref, ok := cs.ParamPin(0); !ok || ref != ir.MakeReg(ir.ClassGPR, 0) {
		t.Fatalf("armv7 param 0 pin = (%d, %v)", ref, ok)
	}
	if _, ok := cs.ParamPin(4); ok {
		t.Fatal("armv7 passes only four arguments in registers")
	}
	if _, ok := ARMv7.Constraints(2).ParamPin(3); ok {
		t.Fatal("param pins must clamp to capacity")
	}
	// jvm98 passes arguments on the stack; its FP file survives no call.
	cs = JVM98.Constraints(4)
	if _, ok := cs.ParamPin(0); ok {
		t.Fatal("jvm98 passes arguments on the stack")
	}
	if cs.Class(ir.ClassFP).CallerSaved != 4 {
		t.Fatal("jvm98 FP registers are all caller-saved")
	}
}

func TestClobberSetSorted(t *testing.T) {
	refs := ARMv7.Constraints(4).ClobberSet()
	if len(refs) == 0 {
		t.Fatal("empty clobber set")
	}
	if !sort.IntsAreSorted(refs) {
		t.Fatalf("clobber set not sorted: %v", refs)
	}
	sawFP := false
	for _, ref := range refs {
		if ir.RegClassOf(ref) == ir.ClassFP {
			sawFP = true
		}
	}
	if !sawFP {
		t.Fatal("armv7 clobber set should include FP registers")
	}
}
