package arch

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"st231", "armv7", "jvm98"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("ByName(%s).Name = %s", name, m.Name)
		}
		if m.Allocable() <= 0 || m.Allocable() > m.IntRegs {
			t.Fatalf("%s allocable = %d of %d", name, m.Allocable(), m.IntRegs)
		}
	}
	if _, err := ByName("pdp11"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestRegisterFiles(t *testing.T) {
	if ST231.IntRegs != 64 {
		t.Fatal("ST231 is a 64-register VLIW")
	}
	if ARMv7.IntRegs != 16 {
		t.Fatal("ARMv7 has 16 integer registers")
	}
	if !JVM98.CISCMemOperands {
		t.Fatal("IA32-flavoured target should allow memory operands")
	}
}
