package cliques

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/liveness"
	"repro/internal/stable"
)

// deriveFor computes the structure for f, or nil.
func deriveFor(t *testing.T, f *ir.Func, scratch *Scratch) *Structure {
	t.Helper()
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid input: %v", err)
	}
	dom := f.ComputeDominance()
	if !Applicable(f, dom) {
		return nil
	}
	return Derive(liveness.Compute(f), dom, scratch)
}

// TestDeriveMatchesIFG cross-checks every derived fact against the explicit
// interference-graph build over a few hundred generated functions: same
// vertex numbering, same edge set, same degrees, a valid PEO, and identical
// Frank stable sets under random weights.
func TestDeriveMatchesIFG(t *testing.T) {
	scratch := NewScratch()
	rng := rand.New(rand.NewSource(99))
	applicable := 0
	for seed := int64(0); seed < 300; seed++ {
		f := irgen.FromSeed(seed)
		cs := deriveFor(t, f, scratch)
		if cs == nil {
			continue
		}
		applicable++
		b := ifg.FromLiveness(liveness.Compute(f))

		// Vertex numbering must be byte-identical.
		if len(cs.ValueOf) != len(b.ValueOf) {
			t.Fatalf("seed %d: %d vertices, ifg has %d", seed, len(cs.ValueOf), len(b.ValueOf))
		}
		for vx := range cs.ValueOf {
			if cs.ValueOf[vx] != b.ValueOf[vx] {
				t.Fatalf("seed %d: ValueOf[%d] = %d, ifg %d", seed, vx, cs.ValueOf[vx], b.ValueOf[vx])
			}
		}
		for v := range cs.VertexOf {
			if cs.VertexOf[v] != b.VertexOf[v] {
				t.Fatalf("seed %d: VertexOf[%d] mismatch", seed, v)
			}
		}
		if cs.MaxLive != b.MaxLive {
			t.Fatalf("seed %d: MaxLive %d vs %d", seed, cs.MaxLive, b.MaxLive)
		}

		// The materialized graph must equal the ifg graph exactly.
		g := cs.BuildGraph()
		if g.N() != b.Graph.N() || g.M() != b.Graph.M() {
			t.Fatalf("seed %d: graph size %d/%d vs %d/%d", seed, g.N(), g.M(), b.Graph.N(), b.Graph.M())
		}
		for v := 0; v < g.N(); v++ {
			gu, bu := g.Neighbors(v), b.Graph.Neighbors(v)
			if len(gu) != len(bu) {
				t.Fatalf("seed %d: vertex %d degree %d vs %d", seed, v, len(gu), len(bu))
			}
			for i := range gu {
				if gu[i] != bu[i] {
					t.Fatalf("seed %d: vertex %d neighbor %d vs %d", seed, v, gu[i], bu[i])
				}
			}
		}

		// Degrees computed from def sets alone must match graph degrees.
		deg := cs.Degrees()
		for v := 0; v < g.N(); v++ {
			if deg[v] != g.Degree(v) {
				t.Fatalf("seed %d: degree[%d] = %d, graph %d", seed, v, deg[v], g.Degree(v))
			}
		}

		// The dominance order must be a perfect elimination order.
		if !b.Graph.IsPerfectEliminationOrder(cs.PEO) {
			t.Fatalf("seed %d: dominance order is not a PEO", seed)
		}

		// Every def set must contain its vertex and be one of the live sets.
		for v := 0; v < cs.N; v++ {
			set := cs.Sets[cs.DefSetOf[v]]
			found := false
			for _, u := range set {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: def set of %d does not contain it", seed, v)
			}
		}

		// Frank on cliques must equal Frank on the graph with the same
		// order, for several random weightings.
		var fs FrankScratch
		for trial := 0; trial < 4; trial++ {
			w := make([]float64, cs.N)
			for i := range w {
				if rng.Intn(5) == 0 {
					w[i] = 0 // exercise the zero-weight skip
				} else {
					w[i] = float64(1 + rng.Intn(50))
				}
			}
			got := append([]int(nil), cs.MaxWeightStable(w, &fs)...)
			want := stable.MaxWeightChordal(b.Graph, cs.PEO, w)
			if len(got) != len(want) {
				t.Fatalf("seed %d: stable set size %d vs %d (got %v want %v)",
					seed, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: stable set %v vs %v", seed, got, want)
				}
			}
		}

		// The CSR membership index agrees with the sets.
		for ci, set := range cs.Sets {
			for _, v := range set {
				found := false
				for _, c := range cs.CliquesOf(v) {
					if int(c) == ci {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: clique %d missing from CliquesOf(%d)", seed, ci, v)
				}
			}
		}
	}
	if applicable < 50 {
		t.Fatalf("only %d of 300 seeds took the fast path; gate too strict?", applicable)
	}
	t.Logf("fast path applicable on %d/300 seeds", applicable)
}

// TestScratchReuseIsDeterministic ensures a reused scratch yields the same
// structure as a fresh one.
func TestScratchReuseIsDeterministic(t *testing.T) {
	scratch := NewScratch()
	for seed := int64(0); seed < 60; seed++ {
		f := irgen.FromSeed(seed)
		reused := deriveFor(t, f, scratch)
		fresh := deriveFor(t, f, nil)
		if (reused == nil) != (fresh == nil) {
			t.Fatalf("seed %d: reuse %v vs fresh %v", seed, reused == nil, fresh == nil)
		}
		if reused == nil {
			continue
		}
		if len(reused.Sets) != len(fresh.Sets) {
			t.Fatalf("seed %d: %d sets vs %d", seed, len(reused.Sets), len(fresh.Sets))
		}
		for i := range reused.Sets {
			a, b := reused.Sets[i], fresh.Sets[i]
			if len(a) != len(b) {
				t.Fatalf("seed %d: set %d differs", seed, i)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("seed %d: set %d differs", seed, i)
				}
			}
		}
		for v := range reused.PEO {
			if reused.PEO[v] != fresh.PEO[v] {
				t.Fatalf("seed %d: PEO differs at %d", seed, v)
			}
		}
	}
}

// TestApplicableGate pins the gate decisions: SSA with inert dead blocks is
// in; non-SSA and dead blocks with code are out.
func TestApplicableGate(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"plain ssa", "func f ssa {\nb0:\n  a = param 0\n  ret a\n}", true},
		{"inert dead block", "func f ssa {\nb0:\n  a = param 0\n  ret a\nb1:\n  ret\n}", true},
		{"dead block with def", "func f ssa {\nb0:\n  a = param 0\n  ret a\nb1:\n  b = const 1\n  ret\n}", false},
		{"non-ssa", "func f {\nb0:\n  a = param 0\n  ret a\n}", false},
	}
	for _, tc := range cases {
		f, err := ir.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		dom := f.ComputeDominance()
		if got := Applicable(f, dom); got != tc.want {
			t.Errorf("%s: Applicable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMaximalCliquesAreDefSets checks the theory the fast path rests on:
// every maximal clique of the interference graph appears among the derived
// live sets (as the def-point set of its last-defined member).
func TestMaximalCliquesAreDefSets(t *testing.T) {
	scratch := NewScratch()
	for seed := int64(300); seed < 420; seed++ {
		f := irgen.FromSeed(seed)
		cs := deriveFor(t, f, scratch)
		if cs == nil {
			continue
		}
		g := cs.BuildGraph()
		for _, mc := range g.MaximalCliques(cs.PEO) {
			mcs := append([]int(nil), mc...)
			sort.Ints(mcs)
			found := false
			for _, set := range cs.Sets {
				if len(set) != len(mcs) {
					continue
				}
				same := true
				for i := range set {
					if set[i] != mcs[i] {
						same = false
						break
					}
				}
				if same {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: maximal clique %v not among the live sets", seed, mcs)
			}
		}
	}
}
