// Package cliques derives the clique structure of a strict-SSA function's
// interference graph straight from liveness information, without ever
// materializing the graph — no edge rows, no MCS, no maximal-clique
// enumeration.
//
// For a strict-SSA function the interference graph is chordal by
// construction and everything the layered allocators need is already present
// in the liveness result:
//
//   - the maximal cliques are (among) the live sets at definition points;
//   - reversing the order in which values are defined along a dominance-tree
//     preorder yields a perfect elimination order (if u and v interfere, one
//     is live at the other's definition, so the later-defined vertex sees
//     all of its earlier-defined neighbours inside one def-point live set —
//     a clique);
//   - Frank's maximum-weighted-stable-set algorithm only ever charges a
//     vertex against its not-yet-processed neighbours, which in this order
//     are exactly the members of its def-point live set.
//
// Structure packages those facts: a vertex numbering identical to the
// ifg.Build one, the deduplicated program-point live sets (which cover every
// interference edge), each vertex's def-point set, and the dominance PEO. It
// supports the full layered allocation natively (MaxWeightStable, Degrees,
// per-clique membership) and can lazily materialize the classical
// graph.Graph for the allocators that genuinely need edges (Chaitin-style
// colouring, the exact solver, the general-graph heuristic).
//
// Derive is defensive: it returns nil whenever a structural assumption does
// not hold (a present value without a definition, unreachable blocks that
// carry code), and callers fall back to the explicit interference-graph
// path. Applicable is the cheap pre-check the pipeline gates on.
package cliques

import (
	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Structure is the IFG-free representation of a strict-SSA interference
// problem. All vertex-indexed fields use the same dense numbering an
// ifg.Build would produce (values that occur anywhere, ascending by value
// ID), so results are interchangeable between the two representations.
type Structure struct {
	F *ir.Func
	// N is the vertex count.
	N int
	// VertexOf maps value ID to vertex (-1 when the value never occurs).
	VertexOf []int
	// ValueOf maps vertex to value ID (ascending by construction).
	ValueOf []int
	// Sets holds the distinct program-point live sets translated to vertex
	// IDs, each sorted ascending. Every set is a clique of the interference
	// graph, every interference edge is covered by at least one set, and
	// every maximal clique appears as the def-point set of its last-defined
	// member.
	Sets [][]int
	// DefSetOf[v] indexes the set in Sets recorded at v's definition
	// instant; it always contains v, and it contains every neighbour of v
	// defined before v.
	DefSetOf []int32
	// PEO is the perfect elimination order: vertices in reverse definition
	// order along a dominance-tree preorder (phis at their block boundary
	// in instruction order, then non-phi defs in instruction order).
	PEO []int
	// MaxLive is the peak register pressure (the clique number).
	MaxLive int

	// CSR membership index: the sets containing v are
	// CliqueIdx[CliqueOff[v]:CliqueOff[v+1]].
	CliqueOff []int32
	CliqueIdx []int32

	degrees []int // lazy, see Degrees
}

// Reason classifies why the plain IFG-free fast path cannot be used
// directly for a function (ReasonApplicable when it can).
type Reason int

const (
	// ReasonApplicable: the fast path applies as-is.
	ReasonApplicable Reason = iota
	// ReasonNonSSA: the function is not strict SSA, so its interference
	// graph is general.
	ReasonNonSSA
	// ReasonUnreachableCode: an unreachable block carries code, which is
	// exempt from dominance checking and could break the elimination order.
	ReasonUnreachableCode
	// ReasonConstrained: the function carries machine-constraint
	// annotations (classes, pre-colors, clobbers). Pins and clobbers add
	// interference with physical registers that the plain chordal model
	// does not express, so a machine-honoring run must not treat the
	// structure as R fungible registers: the driver decomposes the problem
	// per register class (each induced subproblem is chordal again) or
	// falls back to the legacy path.
	ReasonConstrained
)

func (r Reason) String() string {
	switch r {
	case ReasonApplicable:
		return "applicable"
	case ReasonNonSSA:
		return "not strict SSA"
	case ReasonUnreachableCode:
		return "unreachable code is not inert"
	case ReasonConstrained:
		return "machine constraints break plain chordality"
	}
	return "unknown"
}

// Inapplicable returns the typed reason the plain IFG-free fast path cannot
// be used directly for f, or ReasonApplicable. Constraint annotations are
// reported after the structural reasons: a constrained function whose
// structure is fast-path-eligible yields ReasonConstrained, which the
// machine-honoring driver routes to per-class decomposition while a
// machine-less run may still ignore it.
func Inapplicable(f *ir.Func, dom *ir.Dominance) Reason {
	if !f.SSA {
		return ReasonNonSSA
	}
	for _, b := range f.Blocks {
		if dom.Order[b.ID] >= 0 {
			continue
		}
		if len(b.Succs) > 0 {
			return ReasonUnreachableCode
		}
		for _, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				return ReasonUnreachableCode
			}
			if len(ins.Uses) > 0 {
				return ReasonUnreachableCode
			}
		}
	}
	if f.Constrained() {
		return ReasonConstrained
	}
	return ReasonApplicable
}

// Applicable reports whether the IFG-free fast path may be used for f: the
// function must be strict SSA and any unreachable block must be inert (no
// defs, no uses, no successors), so that it contributes neither vertices nor
// live sets. Unreachable code is exempt from SSA dominance checking, so a
// non-inert dead block could break the dominance ordering the fast path's
// elimination order relies on.
//
// Constraint annotations do not affect Applicable: a machine-less run
// ignores them, and the structure is the same. Machine-honoring drivers
// dispatch on Inapplicable's ReasonConstrained instead.
func Applicable(f *ir.Func, dom *ir.Dominance) bool {
	switch Inapplicable(f, dom) {
	case ReasonApplicable, ReasonConstrained:
		return true
	}
	return false
}

// Scratch recycles the transient memory of Derive across functions (bitsets,
// the live-set interner, temporary index slices). The Structures returned by
// Derive never alias scratch memory and stay valid indefinitely; the Scratch
// itself is not safe for concurrent use.
type Scratch struct {
	arena  bitset.Arena
	intern *bitset.Interner
	vsBuf  []int
}

// NewScratch returns an empty reusable scratch.
func NewScratch() *Scratch { return &Scratch{intern: bitset.NewInterner(64)} }

// Derive builds the clique structure of f from its liveness information and
// dominance tree. It returns nil when a structural assumption fails — the
// caller must then fall back to the explicit interference-graph path. A nil
// scratch uses private transient memory.
//
// The caller is responsible for gating on Applicable (Derive also returns
// nil on most non-applicable inputs, but Applicable is the documented
// contract).
func Derive(info *liveness.Info, dom *ir.Dominance, scratch *Scratch) *Structure {
	return derive(info, dom, nil, scratch, nil)
}

// DeriveBudget is Derive under a resource budget: each derivation phase
// (vertex numbering, live-set interning, elimination order, membership
// index) charges its input size before running. The return pair
// distinguishes the two ways of coming back empty: (nil, error) when the
// budget tripped mid-derivation, (nil, nil) when a structural assumption
// failed and the caller should fall back to the explicit-graph path.
func DeriveBudget(info *liveness.Info, dom *ir.Dominance, scratch *Scratch, m *budget.Meter) (*Structure, error) {
	s := derive(info, dom, nil, scratch, m)
	if s == nil && m.Exceeded() {
		return nil, m.Err()
	}
	return s, nil
}

// DeriveSubset builds the clique structure of the subgraph induced by the
// values with include[v] set: live sets are projected onto the subset, the
// elimination order is the corresponding subsequence of the dominance PEO
// (induced subgraphs of chordal graphs are chordal, and a subsequence of a
// PEO is a PEO of the induced subgraph), and MaxLive is the subset's own
// pressure peak. The machine-constrained driver uses it to carve one
// chordal subproblem per register class. Values outside the subset simply
// vanish; the same fallback contract as Derive applies.
func DeriveSubset(info *liveness.Info, dom *ir.Dominance, include []bool, scratch *Scratch) *Structure {
	if include == nil {
		panic("cliques: DeriveSubset requires an include mask")
	}
	return derive(info, dom, include, scratch, nil)
}

func derive(info *liveness.Info, dom *ir.Dominance, include []bool, scratch *Scratch, meter *budget.Meter) *Structure {
	if scratch == nil {
		scratch = NewScratch()
	}
	scratch.arena.Reset()
	scratch.intern.Reset()
	arena := &scratch.arena

	f := info.F
	nv := f.NumValues
	s := &Structure{F: f, MaxLive: info.MaxLive}

	if !meter.Charge(nv + len(info.Points)) {
		return nil // budget tripped before vertex numbering
	}

	// Vertex numbering: every value that is defined, used, or live anywhere,
	// ascending — byte-identical to the ifg.Build numbering. In subset mode,
	// excluded values get no vertex.
	present := arena.Set(nv)
	mark := func(v int) {
		if v >= 0 && v < nv && (include == nil || include[v]) {
			present.Add(v)
		}
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				mark(ins.Def)
			}
			for _, u := range ins.Uses {
				mark(u)
			}
		}
	}
	for _, p := range info.Points {
		for _, v := range p.Live {
			mark(v)
		}
	}
	n := present.Count()
	s.N = n
	s.VertexOf = make([]int, nv)
	for i := range s.VertexOf {
		s.VertexOf[i] = -1
	}
	s.ValueOf = make([]int, 0, n)
	present.ForEach(func(v int) {
		s.VertexOf[v] = len(s.ValueOf)
		s.ValueOf = append(s.ValueOf, v)
	})

	// Intern the program-point live sets (translated to vertex IDs) and
	// remember, per point, which interned set it maps to.
	if !meter.Charge(len(info.Points)) {
		return nil
	}
	pointSet := arena.Ints(len(info.Points))
	pointSet = pointSet[:len(info.Points)]
	intern := scratch.intern
	subsetMax := 0
	for pi, p := range info.Points {
		vs := scratch.vsBuf[:0]
		for _, v := range p.Live {
			if vx := s.VertexOf[v]; vx >= 0 {
				vs = append(vs, vx)
			}
		}
		scratch.vsBuf = vs
		if len(vs) == 0 {
			pointSet[pi] = -1
			continue
		}
		if include != nil && len(vs) > subsetMax {
			subsetMax = len(vs)
		}
		idx, _ := intern.Intern(vs)
		pointSet[pi] = idx
	}
	if include != nil {
		// MaxLive is the subset's own pressure peak, not the function's.
		s.MaxLive = subsetMax
	}

	// Def-point sets. Every vertex must have a recorded definition instant;
	// a miss means the input was not the strict SSA shape this path is for.
	s.DefSetOf = make([]int32, n)
	for vx, val := range s.ValueOf {
		dp := info.DefPointOf[val]
		if dp < 0 || dp >= len(pointSet) || pointSet[dp] < 0 {
			return nil
		}
		s.DefSetOf[vx] = int32(pointSet[dp])
	}

	// PEO: reverse definition order along a dominance-tree preorder. In
	// subset mode, defs of excluded values are simply skipped (the caller
	// established the full structure first).
	if !meter.Charge(n) {
		return nil
	}
	s.PEO = dominancePEOMode(f, dom, s.VertexOf, n, include != nil, arena)
	if s.PEO == nil {
		return nil
	}

	// Copy the interned sets out into one exact-size retained slab (the
	// interner's storage is scratch and will be recycled).
	interned := intern.Sets()
	total := 0
	for _, set := range interned {
		total += len(set)
	}
	if !meter.Charge(n + total) {
		return nil
	}
	slab := make([]int, 0, total)
	s.Sets = make([][]int, len(interned))
	for i, set := range interned {
		start := len(slab)
		slab = append(slab, set...)
		s.Sets[i] = slab[start:len(slab):len(slab)]
	}

	// CSR membership index.
	s.CliqueOff = make([]int32, n+1)
	for _, set := range s.Sets {
		for _, v := range set {
			s.CliqueOff[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		s.CliqueOff[v+1] += s.CliqueOff[v]
	}
	s.CliqueIdx = make([]int32, total)
	fill := arena.Ints(n)
	fill = fill[:n]
	for v := range fill {
		fill[v] = int(s.CliqueOff[v])
	}
	for ci, set := range s.Sets {
		for _, v := range set {
			s.CliqueIdx[fill[v]] = int32(ci)
			fill[v]++
		}
	}
	return s
}

// DominancePEO returns the vertices of a strict-SSA function in reverse
// definition order along a dominance-tree preorder — a perfect elimination
// order of the interference graph — or nil when some vertex lacks a unique
// definition in reachable code. vertexOf maps value IDs to the caller's
// dense vertex numbering of size n. The explicit-graph path uses this so its
// elimination order (and therefore every allocation tie-break) matches the
// clique fast path exactly.
func DominancePEO(f *ir.Func, dom *ir.Dominance, vertexOf []int, n int) []int {
	var arena bitset.Arena
	return dominancePEO(f, dom, vertexOf, n, &arena)
}

// dominancePEO returns the vertices in reverse definition order along a
// dominance-tree preorder, or nil when some vertex lacks a (unique)
// definition in reachable code.
func dominancePEO(f *ir.Func, dom *ir.Dominance, vertexOf []int, n int, arena *bitset.Arena) []int {
	return dominancePEOMode(f, dom, vertexOf, n, false, arena)
}

// dominancePEOMode is dominancePEO with subset tolerance: with lenient set,
// a definition whose value has no vertex is skipped rather than treated as
// a structural failure (subset derivations exclude values on purpose).
func dominancePEOMode(f *ir.Func, dom *ir.Dominance, vertexOf []int, n int, lenient bool, arena *bitset.Arena) []int {
	peo := make([]int, n)
	next := n // fill from the back: first-defined vertex ends up last
	seen := arena.Set(n)
	emit := func(val int) bool {
		vx := vertexOf[val]
		if vx < 0 {
			return lenient
		}
		if seen.Has(vx) {
			return false
		}
		seen.Add(vx)
		next--
		peo[next] = vx
		return true
	}
	stack := arena.Ints(len(f.Blocks))
	stack = append(stack, 0)
	for len(stack) > 0 {
		bid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ins := range f.Blocks[bid].Instrs {
			if !ins.Op.HasDef() || ins.Def == ir.NoValue {
				continue
			}
			if !emit(ins.Def) {
				return nil // double definition, or a value with no vertex
			}
		}
		// Children are pushed in reverse so they pop in Children order; any
		// preorder works (ancestors precede descendants), this one is the
		// deterministic choice.
		children := dom.Children[bid]
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	if next != 0 {
		return nil // some vertex is never defined in reachable code
	}
	return peo
}

// FrankScratch recycles the per-layer memory of MaxWeightStable.
type FrankScratch struct {
	current []float64
	red     []int
	blue    []bool
	out     []int
}

// MaxWeightStable computes a maximum weighted stable set of the interference
// graph, equivalent to stable.MaxWeightChordal on the materialized graph
// with the structure's PEO — but using only the def-point sets.
//
// Frank's algorithm charges each vertex, in elimination order, against its
// not-yet-processed neighbours; in reverse definition order those are
// exactly the members of the vertex's def-point set (charging the
// already-processed members as well is harmless: their residual weight is
// never read again). The returned slice is valid until the next call with
// the same scratch.
func (s *Structure) MaxWeightStable(w []float64, fs *FrankScratch) []int {
	n := s.N
	if cap(fs.current) < n {
		fs.current = make([]float64, n)
		fs.blue = make([]bool, n)
	}
	current := fs.current[:n]
	copy(current, w)
	blue := fs.blue[:n]
	for i := range blue {
		blue[i] = false
	}
	red := fs.red[:0]
	// Phase 1: scan the PEO; greedily charge each still-positive vertex
	// against its def-point set, marking it red (LIFO).
	for _, v := range s.PEO {
		cv := current[v]
		if cv <= 0 {
			continue
		}
		red = append(red, v)
		for _, u := range s.Sets[s.DefSetOf[v]] {
			if u == v {
				continue
			}
			current[u] -= cv
			if current[u] < 0 {
				current[u] = 0
			}
		}
		current[v] = 0
	}
	fs.red = red
	// Phase 2: pop reds LIFO (definition order); keep each red none of
	// whose earlier-defined neighbours — all inside its def-point set — was
	// kept. Later-defined neighbours cannot be blue yet, so the def-point
	// set check is complete.
	out := fs.out[:0]
	for i := len(red) - 1; i >= 0; i-- {
		v := red[i]
		ok := true
		for _, u := range s.Sets[s.DefSetOf[v]] {
			if u != v && blue[u] {
				ok = false
				break
			}
		}
		if ok {
			blue[v] = true
			out = append(out, v)
		}
	}
	fs.out = out
	return out
}

// Degrees returns the interference-graph degree of every vertex, computed
// from the def-point sets alone: every edge {u,v} (with u defined before v)
// appears exactly once as u ∈ DefSet(v), except between phi defs of the same
// block, whose def sets mutually contain each other and would double-count.
// The result is cached on the structure.
func (s *Structure) Degrees() []int {
	if s.degrees != nil {
		return s.degrees
	}
	deg := make([]int, s.N)
	for v := 0; v < s.N; v++ {
		for _, u := range s.Sets[s.DefSetOf[v]] {
			if u != v {
				deg[u]++
				deg[v]++
			}
		}
	}
	// Phi defs of one block are pairwise mutual members of each other's def
	// sets (the block's first point): each of the k phis was over-counted by
	// k-1.
	for _, b := range s.F.Blocks {
		k := 0
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			k++
		}
		if k < 2 {
			continue
		}
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			if vx := s.VertexOf[ins.Def]; vx >= 0 {
				deg[vx] -= k - 1
			}
		}
	}
	s.degrees = deg
	return deg
}

// CliquesOf returns the indices (into Sets) of the live sets containing v.
func (s *Structure) CliquesOf(v int) []int32 {
	return s.CliqueIdx[s.CliqueOff[v]:s.CliqueOff[v+1]]
}

// BuildGraph materializes the explicit interference graph: the union of the
// live-set cliques, which covers every interference edge. The result is
// frozen and identical to the graph ifg.FromLiveness builds for the same
// function.
func (s *Structure) BuildGraph() *graph.Graph {
	g := graph.New(s.N)
	for _, set := range s.Sets {
		g.AddClique(set)
	}
	g.Freeze()
	return g
}
