// Package ir implements the small compiler intermediate representation the
// reproduction allocates registers for: functions of basic blocks holding
// three-address instructions over virtual registers (values), with a control
// flow graph, dominance information, and loop nesting.
//
// Programs may be in strict SSA form (every value has exactly one textual
// definition, and definitions dominate uses) — in that case the interference
// graph is chordal and the layered-optimal allocators apply — or in ordinary
// multi-def form, as produced by the JVM98-style workload generator, in which
// case interference graphs are general and only the heuristic allocators
// apply.
package ir

import (
	"fmt"
	"strconv"
)

// Op is an instruction opcode. The allocator only cares about def/use
// structure, so the opcode set is deliberately small; opcodes still matter
// for printing, validation, and spill-code insertion.
type Op int

const (
	OpConst  Op = iota // v = const k
	OpParam            // v = param i       (function input)
	OpArith            // v = arith a, b    (any two-operand computation)
	OpUnary            // v = unary a
	OpCopy             // v = copy a
	OpPhi              // v = phi [pred: a], [pred: b], ...  (SSA only)
	OpLoad             // v = load a        (memory read through address a)
	OpStore            // store a, b        (no def)
	OpCall             // v = call a, b, ...
	OpBranch           // br target         (no def, no use)
	OpCondBr           // condbr a, then, else
	OpReturn           // ret a | ret
	OpSpill            // spill a           (store of a into spill slot a; inserted)
	OpReload           // v = reload a      (load of spill slot a; inserted)
)

var opNames = map[Op]string{
	OpConst:  "const",
	OpParam:  "param",
	OpArith:  "arith",
	OpUnary:  "unary",
	OpCopy:   "copy",
	OpPhi:    "phi",
	OpLoad:   "load",
	OpStore:  "store",
	OpCall:   "call",
	OpBranch: "br",
	OpCondBr: "condbr",
	OpReturn: "ret",
	OpSpill:  "spill",
	OpReload: "reload",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// HasDef reports whether instructions with this opcode define a value.
func (o Op) HasDef() bool {
	switch o {
	case OpStore, OpBranch, OpCondBr, OpReturn, OpSpill:
		return false
	}
	return true
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	return o == OpBranch || o == OpCondBr || o == OpReturn
}

// NoValue marks the absence of a defined value in Instr.Def.
const NoValue = -1

// Class is a machine register class. Values default to ClassGPR; machine
// descriptions (internal/arch) give each class its own capacity, ABI
// registers and caller-saved set. Classes are disjoint: a value of one
// class can never be assigned a register of another.
type Class int8

const (
	// ClassGPR is the general-purpose integer register class.
	ClassGPR Class = iota
	// ClassFP is the floating-point register class.
	ClassFP
	// NumClasses is the number of register classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassGPR:
		return "gpr"
	case ClassFP:
		return "fp"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Machine registers are identified by a compact RegRef: class × RegStride +
// index. The stride keeps refs small enough for dense register files in
// verification code, and makes ClassGPR refs numerically equal to their
// index — so unconstrained (single-class) allocation keeps its historical
// plain-integer register numbers.
const RegStride = 256

// MakeReg builds the RegRef of register index i in class c.
func MakeReg(c Class, i int) int { return int(c)*RegStride + i }

// RegClassOf returns the class of a RegRef.
func RegClassOf(ref int) Class { return Class(ref / RegStride) }

// RegIndexOf returns the within-class index of a RegRef.
func RegIndexOf(ref int) int { return ref % RegStride }

// RegName renders a RegRef in the textual IR syntax: r<i> for GPRs,
// f<i> for FP registers.
func RegName(ref int) string {
	if RegClassOf(ref) == ClassFP {
		return "f" + strconv.Itoa(RegIndexOf(ref))
	}
	return "r" + strconv.Itoa(RegIndexOf(ref))
}

// ParseRegName parses "r<i>" / "f<i>" into a RegRef.
func ParseRegName(s string) (int, bool) {
	if len(s) < 2 {
		return 0, false
	}
	var c Class
	switch s[0] {
	case 'r':
		c = ClassGPR
	case 'f':
		c = ClassFP
	default:
		return 0, false
	}
	i, err := strconv.Atoi(s[1:])
	if err != nil || i < 0 || i >= RegStride || s[1] == '+' {
		return 0, false
	}
	return MakeReg(c, i), true
}

// Instr is one instruction. Def is a value ID or NoValue. Uses lists value
// IDs; for OpPhi, Uses is parallel to the block's predecessor list. Imm
// carries the constant for OpConst and the index for OpParam.
//
// Spill slots: an OpSpill stores its operand into the slot named by that
// operand's value ID (slot ≡ Uses[0]). An OpReload carries the slot it reads
// in Imm — a value ID that is *not* a use (the reload must not extend the
// spilled value's register live range); Imm < 0 means the slot is unknown,
// which the reference interpreter rejects.
type Instr struct {
	Op   Op
	Def  int
	Uses []int
	Imm  int64
	// Targets holds successor block IDs for OpBranch (1) and OpCondBr (2).
	Targets []int
	// Clobbers lists the machine registers (RegRefs, sorted ascending) an
	// OpCall overwrites — the ABI's caller-saved set at this call site. A
	// value assigned one of these registers and live across the call loses
	// its content; machine-constrained allocation must spill it or place it
	// in a register the call does not clobber. Nil on every other opcode,
	// and ignored entirely by unconstrained (machine-less) allocation.
	Clobbers []int
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Phis, if any, come first.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Preds  []int
	Succs  []int
	// LoopDepth is the natural-loop nesting depth (0 = not in a loop),
	// filled in by Func.ComputeLoops.
	LoopDepth int
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Func is a single function: the unit of register allocation.
type Func struct {
	Name   string
	Blocks []*Block // Blocks[i].ID == i; Blocks[0] is the entry
	// NumValues is one past the largest value ID in use.
	NumValues int
	// ValueName optionally maps value IDs to source-level names (used by
	// the printer and by figure-reproduction tests); missing entries print
	// as v<ID>.
	ValueName map[int]string
	// SSA records whether the function claims strict SSA form; Validate
	// enforces the claim.
	SSA bool
	// ValueClass maps value IDs to register classes; missing entries are
	// ClassGPR. Only machine-constrained allocation consults it.
	ValueClass map[int]Class
	// PreColor maps value IDs to fixed machine registers (RegRefs): ABI
	// values (argument/return registers) that must keep exactly this color
	// for their whole in-register live range. Only machine-constrained
	// allocation consults it; a pre-color's class must match the value's.
	PreColor map[int]int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NameOf returns the printable name of value v.
func (f *Func) NameOf(v int) string {
	if n, ok := f.ValueName[v]; ok {
		return n
	}
	return "v" + strconv.Itoa(v)
}

// ClassOf returns the register class of value v (ClassGPR by default).
func (f *Func) ClassOf(v int) Class {
	if c, ok := f.ValueClass[v]; ok {
		return c
	}
	return ClassGPR
}

// SetClass records the register class of value v. ClassGPR entries are
// canonical by omission, so setting the default removes the annotation.
func (f *Func) SetClass(v int, c Class) {
	if c == ClassGPR {
		delete(f.ValueClass, v)
		return
	}
	if f.ValueClass == nil {
		f.ValueClass = make(map[int]Class)
	}
	f.ValueClass[v] = c
}

// PreColorOf returns value v's fixed machine register (RegRef), if any.
func (f *Func) PreColorOf(v int) (int, bool) {
	ref, ok := f.PreColor[v]
	return ref, ok
}

// SetPreColor pins value v to machine register ref and records the implied
// register class.
func (f *Func) SetPreColor(v, ref int) {
	if f.PreColor == nil {
		f.PreColor = make(map[int]int)
	}
	f.PreColor[v] = ref
	f.SetClass(v, RegClassOf(ref))
}

// Constrained reports whether the function carries any machine-constraint
// annotation — a non-GPR class, a pre-colored value, or a clobbering call.
// Such functions are only meaningful to allocate under a machine
// description; without one the annotations are ignored.
func (f *Func) Constrained() bool {
	if len(f.ValueClass) > 0 || len(f.PreColor) > 0 {
		return true
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if len(b.Instrs[i].Clobbers) > 0 {
				return true
			}
		}
	}
	return false
}

// NewValue allocates a fresh value ID.
func (f *Func) NewValue() int {
	id := f.NumValues
	f.NumValues++
	return id
}

// AddBlock appends a new empty block with the given name and returns it.
func (f *Func) AddBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddEdge records a CFG edge from block u to block w, updating both the
// successor and predecessor lists. Callers must keep edge insertion order
// consistent with phi operand order.
func (f *Func) AddEdge(u, w int) {
	f.Blocks[u].Succs = append(f.Blocks[u].Succs, w)
	f.Blocks[w].Preds = append(f.Blocks[w].Preds, u)
}

// Defs returns, for each value ID, the list of (block, instruction index)
// sites defining it. In strict SSA each list has length one.
func (f *Func) Defs() [][]DefSite {
	defs := make([][]DefSite, f.NumValues)
	for _, b := range f.Blocks {
		for i, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != NoValue {
				defs[ins.Def] = append(defs[ins.Def], DefSite{Block: b.ID, Index: i})
			}
		}
	}
	return defs
}

// DefSite locates an instruction within a function.
type DefSite struct {
	Block int
	Index int
}

// UseCounts returns, per value, the number of textual uses (phi uses
// included).
func (f *Func) UseCounts() []int {
	counts := make([]int, f.NumValues)
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			for _, u := range ins.Uses {
				counts[u]++
			}
		}
	}
	return counts
}
