// Package ir implements the small compiler intermediate representation the
// reproduction allocates registers for: functions of basic blocks holding
// three-address instructions over virtual registers (values), with a control
// flow graph, dominance information, and loop nesting.
//
// Programs may be in strict SSA form (every value has exactly one textual
// definition, and definitions dominate uses) — in that case the interference
// graph is chordal and the layered-optimal allocators apply — or in ordinary
// multi-def form, as produced by the JVM98-style workload generator, in which
// case interference graphs are general and only the heuristic allocators
// apply.
package ir

import (
	"fmt"
	"strconv"
)

// Op is an instruction opcode. The allocator only cares about def/use
// structure, so the opcode set is deliberately small; opcodes still matter
// for printing, validation, and spill-code insertion.
type Op int

const (
	OpConst  Op = iota // v = const k
	OpParam            // v = param i       (function input)
	OpArith            // v = arith a, b    (any two-operand computation)
	OpUnary            // v = unary a
	OpCopy             // v = copy a
	OpPhi              // v = phi [pred: a], [pred: b], ...  (SSA only)
	OpLoad             // v = load a        (memory read through address a)
	OpStore            // store a, b        (no def)
	OpCall             // v = call a, b, ...
	OpBranch           // br target         (no def, no use)
	OpCondBr           // condbr a, then, else
	OpReturn           // ret a | ret
	OpSpill            // spill a           (store of a into spill slot a; inserted)
	OpReload           // v = reload a      (load of spill slot a; inserted)
)

var opNames = map[Op]string{
	OpConst:  "const",
	OpParam:  "param",
	OpArith:  "arith",
	OpUnary:  "unary",
	OpCopy:   "copy",
	OpPhi:    "phi",
	OpLoad:   "load",
	OpStore:  "store",
	OpCall:   "call",
	OpBranch: "br",
	OpCondBr: "condbr",
	OpReturn: "ret",
	OpSpill:  "spill",
	OpReload: "reload",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// HasDef reports whether instructions with this opcode define a value.
func (o Op) HasDef() bool {
	switch o {
	case OpStore, OpBranch, OpCondBr, OpReturn, OpSpill:
		return false
	}
	return true
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	return o == OpBranch || o == OpCondBr || o == OpReturn
}

// NoValue marks the absence of a defined value in Instr.Def.
const NoValue = -1

// Instr is one instruction. Def is a value ID or NoValue. Uses lists value
// IDs; for OpPhi, Uses is parallel to the block's predecessor list. Imm
// carries the constant for OpConst and the index for OpParam.
//
// Spill slots: an OpSpill stores its operand into the slot named by that
// operand's value ID (slot ≡ Uses[0]). An OpReload carries the slot it reads
// in Imm — a value ID that is *not* a use (the reload must not extend the
// spilled value's register live range); Imm < 0 means the slot is unknown,
// which the reference interpreter rejects.
type Instr struct {
	Op   Op
	Def  int
	Uses []int
	Imm  int64
	// Targets holds successor block IDs for OpBranch (1) and OpCondBr (2).
	Targets []int
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Phis, if any, come first.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Preds  []int
	Succs  []int
	// LoopDepth is the natural-loop nesting depth (0 = not in a loop),
	// filled in by Func.ComputeLoops.
	LoopDepth int
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Func is a single function: the unit of register allocation.
type Func struct {
	Name   string
	Blocks []*Block // Blocks[i].ID == i; Blocks[0] is the entry
	// NumValues is one past the largest value ID in use.
	NumValues int
	// ValueName optionally maps value IDs to source-level names (used by
	// the printer and by figure-reproduction tests); missing entries print
	// as v<ID>.
	ValueName map[int]string
	// SSA records whether the function claims strict SSA form; Validate
	// enforces the claim.
	SSA bool
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NameOf returns the printable name of value v.
func (f *Func) NameOf(v int) string {
	if n, ok := f.ValueName[v]; ok {
		return n
	}
	return "v" + strconv.Itoa(v)
}

// NewValue allocates a fresh value ID.
func (f *Func) NewValue() int {
	id := f.NumValues
	f.NumValues++
	return id
}

// AddBlock appends a new empty block with the given name and returns it.
func (f *Func) AddBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddEdge records a CFG edge from block u to block w, updating both the
// successor and predecessor lists. Callers must keep edge insertion order
// consistent with phi operand order.
func (f *Func) AddEdge(u, w int) {
	f.Blocks[u].Succs = append(f.Blocks[u].Succs, w)
	f.Blocks[w].Preds = append(f.Blocks[w].Preds, u)
}

// Defs returns, for each value ID, the list of (block, instruction index)
// sites defining it. In strict SSA each list has length one.
func (f *Func) Defs() [][]DefSite {
	defs := make([][]DefSite, f.NumValues)
	for _, b := range f.Blocks {
		for i, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != NoValue {
				defs[ins.Def] = append(defs[ins.Def], DefSite{Block: b.ID, Index: i})
			}
		}
	}
	return defs
}

// DefSite locates an instruction within a function.
type DefSite struct {
	Block int
	Index int
}

// UseCounts returns, per value, the number of textual uses (phi uses
// included).
func (f *Func) UseCounts() []int {
	counts := make([]int, f.NumValues)
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			for _, u := range ins.Uses {
				counts[u]++
			}
		}
	}
	return counts
}
