package ir

// Clone deep-copies f. All instruction use/target lists (and the block
// pred/succ lists) are carved from one exact-size int slab, the Block
// headers from one Block slab, and every block's instruction list from one
// exact-size Instr slab, so the clone costs a handful of allocations rather
// than one (or three) per block. The instruction windows are capacity-
// clamped, so a later append to one block's Instrs reallocates instead of
// clobbering its slab neighbour. Slice nil-ness is preserved, and a nil
// ValueName map stays nil.
func (f *Func) Clone() *Func {
	g := &Func{
		Name:      f.Name,
		NumValues: f.NumValues,
		SSA:       f.SSA,
	}
	if f.ValueName != nil {
		g.ValueName = make(map[int]string, len(f.ValueName))
		for k, v := range f.ValueName {
			g.ValueName[k] = v
		}
	}
	if f.ValueClass != nil {
		g.ValueClass = make(map[int]Class, len(f.ValueClass))
		for k, v := range f.ValueClass {
			g.ValueClass[k] = v
		}
	}
	if f.PreColor != nil {
		g.PreColor = make(map[int]int, len(f.PreColor))
		for k, v := range f.PreColor {
			g.PreColor[k] = v
		}
	}
	total, ninstr := 0, 0
	for _, b := range f.Blocks {
		total += len(b.Preds) + len(b.Succs)
		ninstr += len(b.Instrs)
		for _, ins := range b.Instrs {
			total += len(ins.Uses) + len(ins.Targets) + len(ins.Clobbers)
		}
	}
	slab := make([]int, 0, total)
	carve := func(s []int) []int {
		if len(s) == 0 {
			return s // preserve nil-ness and empty slices as-is
		}
		start := len(slab)
		slab = append(slab, s...)
		return slab[start:len(slab):len(slab)]
	}
	blocks := make([]Block, len(f.Blocks))
	instrs := make([]Instr, 0, ninstr)
	g.Blocks = make([]*Block, 0, len(f.Blocks))
	for bi, b := range f.Blocks {
		nb := &blocks[bi]
		*nb = Block{
			ID:        b.ID,
			Name:      b.Name,
			Preds:     carve(b.Preds),
			Succs:     carve(b.Succs),
			LoopDepth: b.LoopDepth,
		}
		start := len(instrs)
		for _, ins := range b.Instrs {
			ins.Uses = carve(ins.Uses)
			ins.Targets = carve(ins.Targets)
			ins.Clobbers = carve(ins.Clobbers)
			instrs = append(instrs, ins)
		}
		nb.Instrs = instrs[start:len(instrs):len(instrs)]
		g.Blocks = append(g.Blocks, nb)
	}
	return g
}
