package ir

// Clone deep-copies f. All instruction use/target lists (and the block
// pred/succ lists) are carved from one exact-size int slab, so the clone
// costs a handful of allocations rather than one per instruction. Slice
// nil-ness is preserved, and a nil ValueName map stays nil.
func (f *Func) Clone() *Func {
	g := &Func{
		Name:      f.Name,
		NumValues: f.NumValues,
		SSA:       f.SSA,
	}
	if f.ValueName != nil {
		g.ValueName = make(map[int]string, len(f.ValueName))
		for k, v := range f.ValueName {
			g.ValueName[k] = v
		}
	}
	if f.ValueClass != nil {
		g.ValueClass = make(map[int]Class, len(f.ValueClass))
		for k, v := range f.ValueClass {
			g.ValueClass[k] = v
		}
	}
	if f.PreColor != nil {
		g.PreColor = make(map[int]int, len(f.PreColor))
		for k, v := range f.PreColor {
			g.PreColor[k] = v
		}
	}
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Preds) + len(b.Succs)
		for _, ins := range b.Instrs {
			total += len(ins.Uses) + len(ins.Targets) + len(ins.Clobbers)
		}
	}
	slab := make([]int, 0, total)
	carve := func(s []int) []int {
		if len(s) == 0 {
			return s // preserve nil-ness and empty slices as-is
		}
		start := len(slab)
		slab = append(slab, s...)
		return slab[start:len(slab):len(slab)]
	}
	g.Blocks = make([]*Block, 0, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{
			ID:        b.ID,
			Name:      b.Name,
			Preds:     carve(b.Preds),
			Succs:     carve(b.Succs),
			LoopDepth: b.LoopDepth,
		}
		nb.Instrs = make([]Instr, len(b.Instrs))
		for i, ins := range b.Instrs {
			ins.Uses = carve(ins.Uses)
			ins.Targets = carve(ins.Targets)
			ins.Clobbers = carve(ins.Clobbers)
			nb.Instrs[i] = ins
		}
		g.Blocks = append(g.Blocks, nb)
	}
	return g
}
