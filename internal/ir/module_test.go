package ir

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleCorpusRoundTrip: every module under testdata/modules parses,
// validates, and print∘parse is a fixpoint (same property the function
// corpus pins, lifted to compilation units).
func TestModuleCorpusRoundTrip(t *testing.T) {
	files, err := filepath.Glob("testdata/modules/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no module corpus files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ParseModule(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			first := m.String()
			m2, err := ParseModule(first)
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, first)
			}
			if second := m2.String(); second != first {
				t.Fatalf("module print/parse not a fixpoint:\n%s\nvs\n%s", first, second)
			}
			if len(m2.Funcs) != len(m.Funcs) {
				t.Fatalf("round trip changed function count: %d vs %d", len(m2.Funcs), len(m.Funcs))
			}
		})
	}
}

// TestModuleSingleFunctionCompatible: every single-function corpus file is
// also a valid one-function module.
func TestModuleSingleFunctionCompatible(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.ir")
	if len(files) == 0 {
		t.Fatal("no corpus files")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseModule(string(src))
		if err != nil {
			t.Fatalf("%s as module: %v", file, err)
		}
		if len(m.Funcs) != 1 {
			t.Fatalf("%s: %d functions, want 1", file, len(m.Funcs))
		}
	}
}

func TestModuleFuncByName(t *testing.T) {
	m := MustParseModule(`
func a ssa {
b0:
  x = param 0
  ret x
}
func b ssa {
b0:
  y = param 0
  ret y
}`)
	if f := m.FuncByName("b"); f == nil || f.Name != "b" {
		t.Fatalf("FuncByName(b) = %v", f)
	}
	if m.FuncByName("nope") != nil {
		t.Fatal("FuncByName returned a function for a missing name")
	}
}

// TestModuleParseErrors pins the module-level rejection paths.
func TestModuleParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty source": "\n; just a comment\n",
		"duplicate function names": `
func f ssa {
b0:
  a = param 0
  ret a
}
func f ssa {
b0:
  a = param 0
  ret a
}`,
		"junk between functions": `
func f ssa {
b0:
  a = param 0
  ret a
}
ret a
`,
		"unterminated function": `
func f ssa {
b0:
  a = param 0
  ret a
`,
		"invalid member function": `
func f ssa {
b0:
  ret a
}`,
	}
	for name, src := range cases {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("%s: accepted invalid module", name)
		}
	}
}

// TestModuleErrorNamesOffendingFunc: a parse error inside the N-th function
// must identify it, not point at the whole file.
func TestModuleErrorNamesOffendingFunc(t *testing.T) {
	_, err := ParseModule(`
func good ssa {
b0:
  a = param 0
  ret a
}

func bad ssa {
b0:
  x = bogusop a
  ret x
}`)
	if err == nil {
		t.Fatal("accepted module with a bad function")
	}
	if !strings.Contains(err.Error(), "func #2") {
		t.Fatalf("error does not locate the offending function: %v", err)
	}
}
