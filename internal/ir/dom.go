package ir

// Dominance holds the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm"). Block 0 is the root; unreachable blocks have Idom -1 and are
// excluded from the tree.
type Dominance struct {
	// Idom[b] is the immediate dominator of block b (-1 for the entry and
	// for unreachable blocks).
	Idom []int
	// Children[b] lists the blocks immediately dominated by b, in
	// reverse-postorder for determinism.
	Children [][]int
	// Order[b] is the reverse-postorder number of block b (-1 if
	// unreachable).
	Order []int
	// Postorder lists reachable block IDs in postorder.
	Postorder []int
}

// ComputeDominance builds dominance information for f. All integer arrays
// (Idom, Order, Postorder, the DFS worklist) are carved from one backing
// slab, and Children sub-slices a second one, so a call costs a handful of
// allocations regardless of block count.
func (f *Func) ComputeDominance() *Dominance {
	n := len(f.Blocks)
	slab := make([]int, 4*n)
	d := &Dominance{
		Idom:     slab[0:n:n],
		Order:    slab[n : 2*n : 2*n],
		Children: make([][]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.Order[i] = -1
	}
	// Iterative DFS postorder from the entry. The stack packs (block, next
	// successor index) into one int each to stay inside the slab; the
	// modulus must exceed every successor count, which can top n+1 when a
	// block lists the same successor twice (a condbr with equal targets in
	// a tiny function).
	mod := n + 1
	for _, b := range f.Blocks {
		if len(b.Succs) >= mod {
			mod = len(b.Succs) + 1
		}
	}
	post := slab[2*n : 2*n : 3*n]
	stack := slab[3*n : 3*n : 4*n]
	visited := make([]bool, n)
	push := func(b int) { stack = append(stack, b*mod) }
	push(0)
	visited[0] = true
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		block, next := top/mod, top%mod
		succs := f.Blocks[block].Succs
		if next < len(succs) {
			stack[len(stack)-1]++
			if s := succs[next]; !visited[s] {
				visited[s] = true
				push(s)
			}
			continue
		}
		post = append(post, block)
		stack = stack[:len(stack)-1]
	}
	d.Postorder = post
	for i, b := range post {
		d.Order[b] = len(post) - 1 - i
	}

	// Iterate to fixpoint over reverse postorder.
	d.Idom[0] = 0 // CHK convention: entry's idom is itself during iteration
	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[b].Preds {
				if d.Order[p] < 0 || d.Idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.Idom[0] = -1 // restore the usual convention for the entry
	// Children in reverse postorder, carved from one slab.
	counts := make([]int, n+1)
	for _, b := range post {
		if b != 0 {
			if p := d.Idom[b]; p >= 0 {
				counts[p+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	kids := make([]int, counts[n])
	fill := counts // prefix sums double as fill cursors
	for i := len(post) - 1; i >= 0; i-- {
		b := post[i]
		if b == 0 {
			continue
		}
		if p := d.Idom[b]; p >= 0 {
			kids[fill[p]] = b
			fill[p]++
		}
	}
	off := 0
	for p := 0; p < n; p++ {
		end := fill[p]
		d.Children[p] = kids[off:end:end]
		off = end
	}
	return d
}

func (d *Dominance) intersect(a, b int) int {
	for a != b {
		for d.Order[a] > d.Order[b] {
			a = d.Idom[a]
		}
		for d.Order[b] > d.Order[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *Dominance) Dominates(a, b int) bool {
	if d.Order[b] < 0 || d.Order[a] < 0 {
		return false
	}
	for b != a {
		if d.Order[b] <= d.Order[a] {
			return false
		}
		b = d.Idom[b]
		if b < 0 {
			return false
		}
	}
	return true
}

// ComputeLoops fills Block.LoopDepth using natural loops: for every back
// edge u→h (where h dominates u), all blocks that reach u without passing
// through h belong to h's loop. Depth is the number of distinct loop headers
// whose loop contains the block. It returns the set of loop headers.
func (f *Func) ComputeLoops(dom *Dominance) []int {
	n := len(f.Blocks)
	for _, b := range f.Blocks {
		b.LoopDepth = 0
	}
	var headers []int
	isHeader := make([]bool, n)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if dom.Dominates(s, b.ID) && !isHeader[s] {
				isHeader[s] = true
				headers = append(headers, s)
			}
		}
	}
	if len(headers) == 0 {
		return nil
	}
	// One membership sweep per header: the union of the natural loops of
	// its back edges, bumping LoopDepth of every member.
	inLoop := make([]bool, n)
	stack := make([]int, 0, n)
	for _, h := range headers {
		for i := range inLoop {
			inLoop[i] = false
		}
		inLoop[h] = true
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				if s != h || !dom.Dominates(h, b.ID) {
					continue
				}
				// Collect the natural loop of back edge b→h.
				stack = append(stack[:0], b.ID)
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if inLoop[x] {
						continue
					}
					inLoop[x] = true
					for _, p := range f.Blocks[x].Preds {
						if !inLoop[p] {
							stack = append(stack, p)
						}
					}
				}
			}
		}
		for _, b := range f.Blocks {
			if inLoop[b.ID] {
				b.LoopDepth++
			}
		}
	}
	return headers
}
