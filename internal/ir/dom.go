package ir

// Dominance holds the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm"). Block 0 is the root; unreachable blocks have Idom -1 and are
// excluded from the tree.
type Dominance struct {
	// Idom[b] is the immediate dominator of block b (-1 for the entry and
	// for unreachable blocks).
	Idom []int
	// Children[b] lists the blocks immediately dominated by b, in
	// reverse-postorder for determinism.
	Children [][]int
	// Order[b] is the reverse-postorder number of block b (-1 if
	// unreachable).
	Order []int
	// Postorder lists reachable block IDs in postorder.
	Postorder []int
}

// ComputeDominance builds dominance information for f.
func (f *Func) ComputeDominance() *Dominance {
	n := len(f.Blocks)
	d := &Dominance{
		Idom:     make([]int, n),
		Children: make([][]int, n),
		Order:    make([]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.Order[i] = -1
	}
	// Iterative DFS postorder from the entry.
	visited := make([]bool, n)
	type frame struct {
		block int
		next  int
	}
	stack := []frame{{block: 0}}
	visited[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := f.Blocks[top.block].Succs
		if top.next < len(succs) {
			s := succs[top.next]
			top.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{block: s})
			}
			continue
		}
		d.Postorder = append(d.Postorder, top.block)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, 0, len(d.Postorder))
	for i := len(d.Postorder) - 1; i >= 0; i-- {
		rpo = append(rpo, d.Postorder[i])
	}
	for i, b := range rpo {
		d.Order[b] = i
	}

	// Iterate to fixpoint over reverse postorder.
	d.Idom[0] = 0 // CHK convention: entry's idom is itself during iteration
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[b].Preds {
				if d.Order[p] < 0 || d.Idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.Idom[0] = -1 // restore the usual convention for the entry
	for _, b := range rpo {
		if b == 0 {
			continue
		}
		if p := d.Idom[b]; p >= 0 {
			d.Children[p] = append(d.Children[p], b)
		}
	}
	return d
}

func (d *Dominance) intersect(a, b int) int {
	for a != b {
		for d.Order[a] > d.Order[b] {
			a = d.Idom[a]
		}
		for d.Order[b] > d.Order[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *Dominance) Dominates(a, b int) bool {
	if d.Order[b] < 0 || d.Order[a] < 0 {
		return false
	}
	for b != a {
		if d.Order[b] <= d.Order[a] {
			return false
		}
		b = d.Idom[b]
		if b < 0 {
			return false
		}
	}
	return true
}

// ComputeLoops fills Block.LoopDepth using natural loops: for every back
// edge u→h (where h dominates u), all blocks that reach u without passing
// through h belong to h's loop. Depth is the number of distinct loop headers
// whose loop contains the block. It returns the set of loop headers.
func (f *Func) ComputeLoops(dom *Dominance) []int {
	n := len(f.Blocks)
	for _, b := range f.Blocks {
		b.LoopDepth = 0
	}
	inLoop := make([]map[int]bool, n) // block -> set of headers
	for i := range inLoop {
		inLoop[i] = make(map[int]bool)
	}
	var headers []int
	seenHeader := make(map[int]bool)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b.ID) {
				continue
			}
			h := s
			if !seenHeader[h] {
				seenHeader[h] = true
				headers = append(headers, h)
			}
			// Collect the natural loop of back edge b→h.
			inLoop[h][h] = true
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inLoop[x][h] {
					continue
				}
				inLoop[x][h] = true
				for _, p := range f.Blocks[x].Preds {
					if !inLoop[p][h] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, b := range f.Blocks {
		b.LoopDepth = len(inLoop[b.ID])
	}
	return headers
}
