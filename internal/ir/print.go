package ir

import (
	"fmt"
	"strings"
)

// String renders the function in the textual format accepted by Parse:
//
//	func name [ssa] {
//	b0:                                ; preds: b2  loop=1
//	  v1 = const 42
//	  v2 = arith v1, v0
//	  condbr v2, b1, b2
//	...
//	}
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s", f.Name)
	if f.SSA {
		b.WriteString(" ssa")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Name)
		if len(blk.Preds) > 0 || blk.LoopDepth > 0 {
			b.WriteString("                ;")
			if len(blk.Preds) > 0 {
				b.WriteString(" preds:")
				for _, p := range blk.Preds {
					fmt.Fprintf(&b, " %s", f.Blocks[p].Name)
				}
			}
			if blk.LoopDepth > 0 {
				fmt.Fprintf(&b, " loop=%d", blk.LoopDepth)
			}
		}
		b.WriteByte('\n')
		for _, ins := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(f.formatInstr(blk, &ins))
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (f *Func) formatInstr(blk *Block, ins *Instr) string {
	var b strings.Builder
	if ins.Op.HasDef() && ins.Def != NoValue {
		fmt.Fprintf(&b, "%s = ", f.NameOf(ins.Def))
	}
	b.WriteString(ins.Op.String())
	switch ins.Op {
	case OpConst, OpParam:
		fmt.Fprintf(&b, " %d", ins.Imm)
	case OpReload:
		if ins.Imm >= 0 {
			fmt.Fprintf(&b, " %s", f.NameOf(int(ins.Imm)))
		}
	case OpPhi:
		for k, u := range ins.Uses {
			if k > 0 {
				b.WriteByte(',')
			}
			pred := "?"
			if k < len(blk.Preds) {
				pred = f.Blocks[blk.Preds[k]].Name
			}
			fmt.Fprintf(&b, " [%s: %s]", pred, f.NameOf(u))
		}
	case OpBranch:
		fmt.Fprintf(&b, " %s", f.Blocks[ins.Targets[0]].Name)
	case OpCondBr:
		fmt.Fprintf(&b, " %s, %s, %s", f.NameOf(ins.Uses[0]),
			f.Blocks[ins.Targets[0]].Name, f.Blocks[ins.Targets[1]].Name)
	default:
		for k, u := range ins.Uses {
			if k > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " %s", f.NameOf(u))
		}
	}
	// Machine-constraint annotations, in canonical form: a pre-color
	// subsumes the class (the register name implies it), an unpinned
	// non-GPR class prints alone, and clobber sets print sorted.
	if ins.Op.HasDef() && ins.Def != NoValue {
		if ref, ok := f.PreColor[ins.Def]; ok {
			fmt.Fprintf(&b, " !pin=%s", RegName(ref))
		} else if c := f.ClassOf(ins.Def); c != ClassGPR {
			fmt.Fprintf(&b, " !%s", c)
		}
	}
	if len(ins.Clobbers) > 0 {
		b.WriteString(" !clobbers=")
		for k, ref := range ins.Clobbers {
			if k > 0 {
				b.WriteByte(',')
			}
			b.WriteString(RegName(ref))
		}
	}
	return b.String()
}
