package ir

import "testing"

// TestDominanceCondbrSelfLoopSingleBlock pins a regression in the packed
// DFS stack of ComputeDominance: a single-block function whose condbr lists
// the block twice has a successor count exceeding the block count, which
// overflowed the (block, next-successor) encoding and panicked.
func TestDominanceCondbrSelfLoopSingleBlock(t *testing.T) {
	src := `
func f ssa {
b0:
  c = param 0
  condbr c, b0, b0
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dom := f.ComputeDominance()
	if dom.Order[0] != 0 || dom.Idom[0] != -1 {
		t.Fatalf("entry dominance wrong: order=%d idom=%d", dom.Order[0], dom.Idom[0])
	}
}
