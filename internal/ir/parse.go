package ir

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse reads a function in the textual format produced by Func.String.
// Value and block names are arbitrary identifiers; value IDs are assigned in
// order of first appearance. Comments start with ';' and run to end of line.
//
// The grammar, line-oriented:
//
//	func <name> [ssa] {
//	<block>:
//	  <val> = const <int>
//	  <val> = param <int>
//	  <val> = arith <val>, <val>
//	  <val> = unary <val>
//	  <val> = copy <val>
//	  <val> = phi [<block>: <val>], ...
//	  <val> = load <val>
//	  <val> = call <val>, ...        (zero or more arguments)
//	  <val> = reload [<val>]         (operand names the spill slot)
//	  store <val>, <val>
//	  spill <val>
//	  br <block>
//	  condbr <val>, <block>, <block>
//	  ret [<val>]
//	}
//
// Any defining instruction may carry trailing machine-constraint
// annotations, each starting with '!': a register class (!fp, !gpr), or a
// pre-color pinning the def to one machine register (!pin=r0, !pin=f2 —
// the register name implies the class). A call may declare its caller-saved
// clobber set: v = call a, b !clobbers=r0,r1,f0. Registers are named r<i>
// (GPR) and f<i> (FP). Annotations only constrain machine-aware allocation;
// machine-less runs ignore them.
func Parse(src string) (*Func, error) {
	p := &parser{
		f:         &Func{ValueName: make(map[int]string)},
		valueIDs:  make(map[string]int),
		blockIDs:  make(map[string]int),
		phiFixups: nil,
	}
	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if !p.closed {
		return nil, fmt.Errorf("ir: missing closing brace")
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	if err := p.f.Validate(); err != nil {
		return nil, err
	}
	return p.f, nil
}

// MustParse is Parse that panics on error; intended for tests and examples
// with literal sources.
func MustParse(src string) *Func {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	f        *Func
	cur      *Block
	valueIDs map[string]int
	blockIDs map[string]int
	closed   bool
	started  bool
	// Branch targets and phi predecessor labels are resolved after all
	// blocks are known.
	branchFixups []branchFixup
	phiFixups    []phiFixup
}

type branchFixup struct {
	block, instr int
	labels       []string
}

type phiFixup struct {
	block, instr int
	predLabels   []string
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "func "):
		if p.started {
			return fmt.Errorf("ir: duplicate func header")
		}
		p.started = true
		rest := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "func ")), "{")
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return fmt.Errorf("ir: func header missing name")
		}
		p.f.Name = fields[0]
		for _, fl := range fields[1:] {
			if fl == "ssa" {
				p.f.SSA = true
			} else {
				return fmt.Errorf("ir: unknown func attribute %q", fl)
			}
		}
		return nil
	case line == "}":
		if !p.started {
			return fmt.Errorf("ir: %q before func header", line)
		}
		p.closed = true
		return nil
	case strings.HasSuffix(line, ":"):
		if !p.started {
			return fmt.Errorf("ir: block label before func header")
		}
		name := strings.TrimSuffix(line, ":")
		if !isIdent(name) {
			return fmt.Errorf("ir: bad block label %q", name)
		}
		if _, dup := p.blockIDs[name]; dup {
			return fmt.Errorf("ir: duplicate block %q", name)
		}
		p.cur = p.f.AddBlock(name)
		p.blockIDs[name] = p.cur.ID
		return nil
	default:
		if p.cur == nil {
			return fmt.Errorf("ir: instruction before first block label")
		}
		return p.instr(line)
	}
}

func (p *parser) instr(line string) error {
	// Machine-constraint annotations trail the instruction, each starting
	// with '!': a register class (!fp), a pre-color (!pin=r0), or a call's
	// clobber set (!clobbers=r0,r1,f0). Identifiers never contain '!', so
	// the first one starts the annotation list.
	var annots string
	if bang := strings.IndexByte(line, '!'); bang >= 0 {
		annots = line[bang:]
		line = strings.TrimSpace(line[:bang])
	}
	var defName string
	if eq := strings.Index(line, "="); eq >= 0 && !strings.Contains(line[:eq], "[") {
		defName = strings.TrimSpace(line[:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	ins := Instr{Def: NoValue}
	var err error
	switch op {
	case "const", "param":
		ins.Op = OpConst
		if op == "param" {
			ins.Op = OpParam
		}
		ins.Imm, err = strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return fmt.Errorf("ir: bad %s immediate %q", op, rest)
		}
	case "arith":
		ins.Op = OpArith
		if ins.Uses, err = p.valueList(rest, 2); err != nil {
			return err
		}
	case "unary", "copy", "load":
		switch op {
		case "unary":
			ins.Op = OpUnary
		case "copy":
			ins.Op = OpCopy
		default:
			ins.Op = OpLoad
		}
		if ins.Uses, err = p.valueList(rest, 1); err != nil {
			return err
		}
	case "call":
		ins.Op = OpCall
		if rest != "" {
			if ins.Uses, err = p.valueList(rest, -1); err != nil {
				return err
			}
		}
	case "reload":
		ins.Op = OpReload
		// The optional operand names the spill slot; it is carried in Imm,
		// not Uses, so it does not extend the spilled value's live range.
		ins.Imm = -1
		if rest != "" {
			if !isIdent(rest) {
				return fmt.Errorf("ir: bad reload slot %q", rest)
			}
			ins.Imm = int64(p.value(rest))
		}
	case "store":
		ins.Op = OpStore
		if ins.Uses, err = p.valueList(rest, 2); err != nil {
			return err
		}
	case "spill":
		ins.Op = OpSpill
		if ins.Uses, err = p.valueList(rest, 1); err != nil {
			return err
		}
	case "phi":
		ins.Op = OpPhi
		preds, uses, err := p.phiOperands(rest)
		if err != nil {
			return err
		}
		ins.Uses = uses
		p.phiFixups = append(p.phiFixups, phiFixup{
			block: p.cur.ID, instr: len(p.cur.Instrs), predLabels: preds,
		})
	case "br":
		ins.Op = OpBranch
		if !isIdent(rest) {
			return fmt.Errorf("ir: bad branch target %q", rest)
		}
		p.branchFixups = append(p.branchFixups, branchFixup{
			block: p.cur.ID, instr: len(p.cur.Instrs), labels: []string{rest},
		})
	case "condbr":
		ins.Op = OpCondBr
		parts := splitComma(rest)
		if len(parts) != 3 {
			return fmt.Errorf("ir: condbr needs cond and two targets, got %q", rest)
		}
		if !isIdent(parts[0]) {
			return fmt.Errorf("ir: bad condbr condition %q", parts[0])
		}
		ins.Uses = []int{p.value(parts[0])}
		p.branchFixups = append(p.branchFixups, branchFixup{
			block: p.cur.ID, instr: len(p.cur.Instrs), labels: parts[1:],
		})
	case "ret":
		ins.Op = OpReturn
		if rest != "" {
			if ins.Uses, err = p.valueList(rest, 1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("ir: unknown opcode %q", op)
	}
	if ins.Op.HasDef() {
		if defName == "" {
			return fmt.Errorf("ir: %s requires a result value", op)
		}
		if !isIdent(defName) {
			return fmt.Errorf("ir: bad result name %q", defName)
		}
		ins.Def = p.value(defName)
	} else if defName != "" {
		return fmt.Errorf("ir: %s does not produce a value", op)
	}
	if annots != "" {
		if err := p.annotations(&ins, annots); err != nil {
			return err
		}
	}
	p.cur.Instrs = append(p.cur.Instrs, ins)
	return nil
}

// annotations applies the trailing !-attributes of one instruction: a def
// class, a def pre-color, or a call clobber set.
func (p *parser) annotations(ins *Instr, s string) error {
	setClass := func(c Class, explicitPin bool) error {
		if !ins.Op.HasDef() || ins.Def == NoValue {
			return fmt.Errorf("ir: class/pin annotation on %s, which defines no value", ins.Op)
		}
		if have, ok := p.f.ValueClass[ins.Def]; ok && have != c {
			return fmt.Errorf("ir: value %s annotated with conflicting classes %s and %s",
				p.f.NameOf(ins.Def), have, c)
		}
		if c != ClassGPR {
			p.f.SetClass(ins.Def, c)
		} else if explicitPin {
			// An explicit GPR pin must still clash with a previous !fp.
			if have, ok := p.f.ValueClass[ins.Def]; ok && have != ClassGPR {
				return fmt.Errorf("ir: value %s annotated with conflicting classes %s and %s",
					p.f.NameOf(ins.Def), have, ClassGPR)
			}
		}
		return nil
	}
	for _, tok := range strings.Fields(s) {
		if !strings.HasPrefix(tok, "!") {
			return fmt.Errorf("ir: bad annotation %q", tok)
		}
		switch {
		case tok == "!gpr":
			if err := setClass(ClassGPR, true); err != nil {
				return err
			}
		case tok == "!fp":
			if err := setClass(ClassFP, false); err != nil {
				return err
			}
		case strings.HasPrefix(tok, "!pin="):
			ref, ok := ParseRegName(tok[len("!pin="):])
			if !ok {
				return fmt.Errorf("ir: bad pre-color register in %q", tok)
			}
			if err := setClass(RegClassOf(ref), RegClassOf(ref) == ClassGPR); err != nil {
				return err
			}
			if have, ok := p.f.PreColor[ins.Def]; ok && have != ref {
				return fmt.Errorf("ir: value %s pinned to both %s and %s",
					p.f.NameOf(ins.Def), RegName(have), RegName(ref))
			}
			p.f.SetPreColor(ins.Def, ref)
		case strings.HasPrefix(tok, "!clobbers="):
			if ins.Op != OpCall {
				return fmt.Errorf("ir: clobber annotation on %s (calls only)", ins.Op)
			}
			if ins.Clobbers != nil {
				return fmt.Errorf("ir: duplicate clobber annotation")
			}
			var refs []int
			for _, name := range strings.Split(tok[len("!clobbers="):], ",") {
				ref, ok := ParseRegName(name)
				if !ok {
					return fmt.Errorf("ir: bad clobber register %q", name)
				}
				refs = append(refs, ref)
			}
			if len(refs) == 0 {
				return fmt.Errorf("ir: empty clobber annotation")
			}
			sort.Ints(refs)
			uniq := refs[:1]
			for _, r := range refs[1:] {
				if r != uniq[len(uniq)-1] {
					uniq = append(uniq, r)
				}
			}
			ins.Clobbers = uniq
		default:
			return fmt.Errorf("ir: unknown annotation %q", tok)
		}
	}
	return nil
}

func (p *parser) value(name string) int {
	if !isIdent(name) {
		// Let validation surface it; allocate anyway to keep parsing going.
		name = "!" + name
	}
	if id, ok := p.valueIDs[name]; ok {
		return id
	}
	id := p.f.NewValue()
	p.valueIDs[name] = id
	p.f.ValueName[id] = name
	return id
}

func (p *parser) valueList(s string, want int) ([]int, error) {
	parts := splitComma(s)
	if want >= 0 && len(parts) != want {
		return nil, fmt.Errorf("ir: expected %d operands, got %q", want, s)
	}
	out := make([]int, len(parts))
	for i, name := range parts {
		if !isIdent(name) {
			return nil, fmt.Errorf("ir: bad operand %q", name)
		}
		out[i] = p.value(name)
	}
	return out, nil
}

// phiOperands parses "[b1: x], [b2: y]" into predecessor labels and values.
func (p *parser) phiOperands(s string) (preds []string, uses []int, err error) {
	for _, part := range splitComma(s) {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "[") || !strings.HasSuffix(part, "]") {
			return nil, nil, fmt.Errorf("ir: bad phi operand %q", part)
		}
		inner := part[1 : len(part)-1]
		label, val, ok := strings.Cut(inner, ":")
		if !ok {
			return nil, nil, fmt.Errorf("ir: bad phi operand %q", part)
		}
		label = strings.TrimSpace(label)
		val = strings.TrimSpace(val)
		if !isIdent(label) || !isIdent(val) {
			return nil, nil, fmt.Errorf("ir: bad phi operand %q", part)
		}
		preds = append(preds, label)
		uses = append(uses, p.value(val))
	}
	return preds, uses, nil
}

// resolve patches branch targets, builds CFG edges, and reorders phi
// operands to match predecessor order.
func (p *parser) resolve() error {
	for _, fx := range p.branchFixups {
		ins := &p.f.Blocks[fx.block].Instrs[fx.instr]
		for _, label := range fx.labels {
			id, ok := p.blockIDs[label]
			if !ok {
				return fmt.Errorf("ir: undefined block %q", label)
			}
			ins.Targets = append(ins.Targets, id)
		}
	}
	// CFG edges in terminator order.
	for _, b := range p.f.Blocks {
		if t := b.Terminator(); t != nil {
			for _, tgt := range t.Targets {
				p.f.AddEdge(b.ID, tgt)
			}
		}
	}
	for _, fx := range p.phiFixups {
		blk := p.f.Blocks[fx.block]
		ins := &blk.Instrs[fx.instr]
		if len(fx.predLabels) != len(blk.Preds) {
			return fmt.Errorf("ir: phi in %s has %d operands for %d predecessors",
				blk.Name, len(fx.predLabels), len(blk.Preds))
		}
		ordered := make([]int, len(blk.Preds))
		seen := make([]bool, len(blk.Preds))
		for k, label := range fx.predLabels {
			id, ok := p.blockIDs[label]
			if !ok {
				return fmt.Errorf("ir: phi references undefined block %q", label)
			}
			slot := -1
			for j, pred := range blk.Preds {
				if pred == id && !seen[j] {
					slot = j
					break
				}
			}
			if slot < 0 {
				return fmt.Errorf("ir: phi in %s names non-predecessor %q", blk.Name, label)
			}
			seen[slot] = true
			ordered[slot] = ins.Uses[k]
		}
		ins.Uses = ordered
	}
	return nil
}

func splitComma(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
