package ir

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary text to the IR parser. The invariants: Parse
// never panics, and any input it accepts must round-trip — print, reparse,
// print again, with the two prints identical (print∘parse is a fixpoint on
// the image of Parse).
func FuzzParse(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.ir"))
	for _, file := range files {
		if src, err := os.ReadFile(file); err == nil {
			f.Add(string(src))
		}
	}
	f.Add("func f ssa {\nb0:\n  ret\n}\n")
	f.Add("func f {\nb0:\n  x = const 1\n  condbr x, b0, b1\nb1:\n  s = reload x\n  ret s\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		first := fn.String()
		g, err := Parse(first)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput:\n%s\nprinted:\n%s", err, src, first)
		}
		if second := g.String(); second != first {
			t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", first, second)
		}
	})
}
