package ir

import (
	"strings"
	"testing"
)

func TestRegRefEncoding(t *testing.T) {
	for i := 0; i < RegStride; i += 17 {
		if got := MakeReg(ClassGPR, i); got != i {
			t.Fatalf("GPR ref %d encodes to %d; want the plain index", i, got)
		}
	}
	ref := MakeReg(ClassFP, 3)
	if RegClassOf(ref) != ClassFP || RegIndexOf(ref) != 3 {
		t.Fatalf("FP ref decodes to (%v, %d)", RegClassOf(ref), RegIndexOf(ref))
	}
	if RegName(ref) != "f3" || RegName(5) != "r5" {
		t.Fatalf("RegName: got %q / %q", RegName(ref), RegName(5))
	}
	for _, tc := range []struct {
		in  string
		ref int
		ok  bool
	}{
		{"r0", 0, true},
		{"r255", 255, true},
		{"f7", MakeReg(ClassFP, 7), true},
		{"r256", 0, false},
		{"r-1", 0, false},
		{"r+3", 0, false},
		{"x0", 0, false},
		{"r", 0, false},
		{"", 0, false},
	} {
		ref, ok := ParseRegName(tc.in)
		if ok != tc.ok || (ok && ref != tc.ref) {
			t.Errorf("ParseRegName(%q) = (%d, %v), want (%d, %v)", tc.in, ref, ok, tc.ref, tc.ok)
		}
	}
}

func TestParseAnnotations(t *testing.T) {
	f, err := Parse(`
func g ssa {
b0:
  a = param 0 !pin=r0
  b = const 2 !fp
  c = call a, b !clobbers=r1,r0,r1,f0
  ret c
}`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 1
	if f.NameOf(a) != "a" || f.NameOf(b) != "b" {
		t.Fatalf("unexpected value numbering: %s %s", f.NameOf(0), f.NameOf(1))
	}
	if ref, ok := f.PreColorOf(a); !ok || ref != 0 {
		t.Fatalf("a pre-color = (%d, %v), want (0, true)", ref, ok)
	}
	if f.ClassOf(a) != ClassGPR {
		t.Fatalf("a class = %v", f.ClassOf(a))
	}
	if f.ClassOf(b) != ClassFP {
		t.Fatalf("b class = %v", f.ClassOf(b))
	}
	call := f.Blocks[0].Instrs[2]
	want := []int{0, 1, MakeReg(ClassFP, 0)}
	if len(call.Clobbers) != len(want) {
		t.Fatalf("clobbers = %v, want %v (sorted, deduped)", call.Clobbers, want)
	}
	for i, ref := range want {
		if call.Clobbers[i] != ref {
			t.Fatalf("clobbers = %v, want %v", call.Clobbers, want)
		}
	}
	if !f.Constrained() {
		t.Fatal("Constrained() = false for annotated function")
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestParseAnnotationErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, want string }{
		{"clobber on non-call", "func f {\nb0:\n  x = const 1 !clobbers=r0\n  ret\n}", "clobber"},
		{"bad register", "func f {\nb0:\n  x = param 0 !pin=q7\n  ret\n}", "pin"},
		{"class on defless op", "func f {\nb0:\n  x = const 1\n  store x, x !fp\n  ret\n}", "defines no value"},
		{"unknown annotation", "func f {\nb0:\n  x = const 1 !wide\n  ret\n}", "annotation"},
		{"conflicting classes", "func f {\nb0:\n  x = const 1 !fp !gpr\n  ret\n}", "class"},
		{"pin class conflict", "func f {\nb0:\n  x = const 1 !fp !pin=r2\n  ret\n}", "class"},
		{"empty clobbers", "func f {\nb0:\n  x = call x !clobbers=\n  ret\n}", "clobber"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Fatal("parse accepted invalid annotation")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAnnotations(t *testing.T) {
	mk := func() *Func {
		f, err := Parse("func f ssa {\nb0:\n  x = const 1\n  ret x\n}")
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f := mk()
	f.ValueClass = map[int]Class{0: Class(9)}
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "invalid class") {
		t.Fatalf("invalid class not caught: %v", err)
	}
	f = mk()
	f.PreColor = map[int]int{0: int(NumClasses) * RegStride}
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "invalid register") {
		t.Fatalf("out-of-range pre-color not caught: %v", err)
	}
	f = mk()
	f.PreColor = map[int]int{0: MakeReg(ClassFP, 1)} // class mismatch: value is GPR
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "class") {
		t.Fatalf("pre-color class mismatch not caught: %v", err)
	}
	f = mk()
	f.Blocks[0].Instrs[1].Clobbers = []int{0} // ret with clobbers
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "calls only") {
		t.Fatalf("clobbers on non-call not caught: %v", err)
	}
}

func TestCloneCopiesConstraints(t *testing.T) {
	f, err := Parse(`
func g ssa {
b0:
  a = param 0 !pin=r0
  b = const 2 !fp
  c = call a !clobbers=r0,f1
  ret c
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	if g.String() != f.String() {
		t.Fatalf("clone prints differently:\n%s\nvs\n%s", g.String(), f.String())
	}
	g.SetClass(1, ClassGPR)
	g.SetPreColor(0, 5)
	g.Blocks[0].Instrs[2].Clobbers[0] = 9
	if f.ClassOf(1) != ClassFP {
		t.Fatal("clone shares ValueClass map")
	}
	if ref, _ := f.PreColorOf(0); ref != 0 {
		t.Fatal("clone shares PreColor map")
	}
	if f.Blocks[0].Instrs[2].Clobbers[0] != 0 {
		t.Fatal("clone shares Clobbers slice")
	}
}

func TestUnconstrainedStaysUnconstrained(t *testing.T) {
	f, err := Parse("func f ssa {\nb0:\n  x = const 1\n  y = call x\n  ret y\n}")
	if err != nil {
		t.Fatal(err)
	}
	if f.Constrained() {
		t.Fatal("plain function reports Constrained")
	}
	if out := f.String(); strings.Contains(out, "!") {
		t.Fatalf("plain function prints annotations:\n%s", out)
	}
}
