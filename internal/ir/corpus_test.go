package ir

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusRoundTrip parses every .ir file under testdata, validates it,
// prints it back, reparses, and requires the second print to be identical
// (print∘parse is a fixpoint).
func TestCorpusRoundTrip(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			first := f.String()
			g, err := Parse(first)
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, first)
			}
			if second := g.String(); second != first {
				t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", first, second)
			}
		})
	}
}

// TestCorpusAnalyses runs dominance, loops and liveness-sensitive checks
// over the corpus to pin their observable behaviour.
func TestCorpusAnalyses(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.ir")
	for _, file := range files {
		src, _ := os.ReadFile(file)
		f := MustParse(string(src))
		dom := f.ComputeDominance()
		headers := f.ComputeLoops(dom)
		if strings.Contains(file, "dot") && len(headers) != 1 {
			t.Errorf("%s: %d loop headers, want 1", file, len(headers))
		}
		if strings.Contains(file, "maxpressure") && len(headers) != 0 {
			t.Errorf("%s: unexpected loops", file)
		}
		if strings.Contains(file, "selfloop") {
			if len(headers) != 1 {
				t.Errorf("%s: %d loop headers, want 1", file, len(headers))
			}
			if !hasCriticalEdge(f) {
				t.Errorf("%s: self-loop back edge should be critical", file)
			}
		}
		if strings.Contains(file, "critedge") && !hasCriticalEdge(f) {
			t.Errorf("%s: no critical edge found", file)
		}
		if strings.Contains(file, "unreach") {
			unreachable := 0
			for _, b := range f.Blocks {
				if dom.Order[b.ID] < 0 {
					unreachable++
				}
			}
			if unreachable != 1 {
				t.Errorf("%s: %d unreachable blocks, want 1", file, unreachable)
			}
		}
		for _, b := range f.Blocks {
			if dom.Order[b.ID] >= 0 && b.ID != 0 && dom.Idom[b.ID] < 0 {
				t.Errorf("%s: reachable block %s lacks an idom", file, b.Name)
			}
		}
	}
}

func hasCriticalEdge(f *Func) bool {
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(f.Blocks[s].Preds) > 1 {
				return true
			}
		}
	}
	return false
}

// TestValidateRejections pins the validator on the adversarial *invalid*
// variants of the corpus scenarios: each source must be rejected.
func TestValidateRejections(t *testing.T) {
	cases := map[string]string{
		"phi arity under critical edge": `
func f ssa {
b0:
  a = param 0
  condbr a, b1, b2
b1:
  br b2
b2:
  m = phi [b1: a]
  ret m
}`,
		"self-loop phi using its own undefined back value": `
func f ssa {
b0:
  a = param 0
  br b1
b1:
  i = phi [b0: a], [b1: j]
  c = unary i
  condbr c, b1, b2
b2:
  ret i
}`,
		"terminator mid-block": `
func f ssa {
b0:
  a = param 0
  ret a
  b = unary a
  ret b
}`,
		"use not dominated by def": `
func f ssa {
b0:
  a = param 0
  condbr a, b1, b2
b1:
  x = unary a
  br b2
b2:
  ret x
}`,
		"double definition in ssa": `
func f ssa {
b0:
  a = param 0
  a = unary a
  ret a
}`,
		"phi in non-ssa function": `
func f {
b0:
  a = param 0
  br b1
b1:
  m = phi [b0: a]
  ret m
}`,
		"branch to undefined block": `
func f ssa {
b0:
  a = param 0
  br nowhere
}`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted invalid program", name)
		}
	}
}

// TestReloadSlotValidation: a reload's slot is carried in Imm and must stay
// in range; out-of-range slots are a structural error.
func TestReloadSlotValidation(t *testing.T) {
	f := MustParse(`
func f ssa {
b0:
  a = param 0
  spill a
  b = reload a
  ret b
}`)
	// Parsed form is fine; now corrupt the slot.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpReload {
				b.Instrs[i].Imm = int64(f.NumValues) + 5
			}
		}
	}
	if err := f.Validate(); err == nil {
		t.Fatal("out-of-range reload slot accepted")
	}
}
