package ir

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusRoundTrip parses every .ir file under testdata, validates it,
// prints it back, reparses, and requires the second print to be identical
// (print∘parse is a fixpoint).
func TestCorpusRoundTrip(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			first := f.String()
			g, err := Parse(first)
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, first)
			}
			if second := g.String(); second != first {
				t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", first, second)
			}
		})
	}
}

// TestCorpusAnalyses runs dominance, loops and liveness-sensitive checks
// over the corpus to pin their observable behaviour.
func TestCorpusAnalyses(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.ir")
	for _, file := range files {
		src, _ := os.ReadFile(file)
		f := MustParse(string(src))
		dom := f.ComputeDominance()
		headers := f.ComputeLoops(dom)
		if strings.Contains(file, "dot") && len(headers) != 1 {
			t.Errorf("%s: %d loop headers, want 1", file, len(headers))
		}
		if strings.Contains(file, "maxpressure") && len(headers) != 0 {
			t.Errorf("%s: unexpected loops", file)
		}
		for _, b := range f.Blocks {
			if dom.Order[b.ID] >= 0 && b.ID != 0 && dom.Idom[b.ID] < 0 {
				t.Errorf("%s: reachable block %s lacks an idom", file, b.Name)
			}
		}
	}
}
