package ir

import (
	"errors"
	"fmt"

	"repro/internal/raerr"
)

// Validate checks structural invariants of the function and, when f.SSA is
// set, strict SSA form (single definitions, definitions dominating uses).
// It returns a joined error describing every violation found.
func (f *Func) Validate() error {
	_, err := f.ValidateAnalyzed()
	return err
}

// ValidateAnalyzed is Validate, but it also returns the dominance tree it
// computed along the way (nil when the function is structurally invalid),
// so pipeline drivers validating every input anyway don't compute dominance
// twice per function.
func (f *Func) ValidateAnalyzed() (*Dominance, error) {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return nil, errors.New("ir: function has no blocks")
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			report("ir: block %q has ID %d at index %d", b.Name, b.ID, i)
		}
		term := b.Terminator()
		if term == nil {
			report("ir: block %s does not end in a terminator", b.Name)
			continue
		}
		for j, ins := range b.Instrs {
			if ins.Op.IsTerminator() && j != len(b.Instrs)-1 {
				report("ir: block %s has terminator %s mid-block at %d", b.Name, ins.Op, j)
			}
			if ins.Op == OpPhi {
				if j > 0 && b.Instrs[j-1].Op != OpPhi {
					report("ir: block %s phi at %d after non-phi", b.Name, j)
				}
				if len(ins.Uses) != len(b.Preds) {
					report("ir: block %s phi has %d operands for %d predecessors",
						b.Name, len(ins.Uses), len(b.Preds))
				}
				if !f.SSA {
					report("ir: non-SSA function contains phi in block %s", b.Name)
				}
			}
			if ins.Op.HasDef() {
				if ins.Def == NoValue {
					report("ir: %s in block %s lacks a def", ins.Op, b.Name)
				} else if ins.Def < 0 || ins.Def >= f.NumValues {
					report("ir: def %d out of range in block %s", ins.Def, b.Name)
				}
			} else if ins.Def != NoValue {
				report("ir: %s in block %s must not define a value", ins.Op, b.Name)
			}
			for _, u := range ins.Uses {
				if u < 0 || u >= f.NumValues {
					report("ir: use %d out of range in block %s", u, b.Name)
				}
			}
			if ins.Op == OpReload && ins.Imm >= int64(f.NumValues) {
				report("ir: reload slot %d out of range in block %s", ins.Imm, b.Name)
			}
			if len(ins.Clobbers) > 0 {
				if ins.Op != OpCall {
					report("ir: %s in block %s carries clobbers (calls only)", ins.Op, b.Name)
				}
				for _, ref := range ins.Clobbers {
					if !validRegRef(ref) {
						report("ir: clobber ref %d out of range in block %s", ref, b.Name)
					}
				}
			}
		}
		// Terminator targets must agree with CFG successor lists.
		var targets []int
		if term != nil {
			targets = term.Targets
		}
		if len(targets) != len(b.Succs) {
			report("ir: block %s terminator has %d targets but %d successors",
				b.Name, len(targets), len(b.Succs))
		} else {
			for k, t := range targets {
				if t != b.Succs[k] {
					report("ir: block %s target %d is b%d but successor list says b%d",
						b.Name, k, t, b.Succs[k])
				}
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				report("ir: block %s successor %d out of range", b.Name, s)
				continue
			}
			if !containsInt(f.Blocks[s].Preds, b.ID) {
				report("ir: edge %s→%s missing from predecessor list", b.Name, f.Blocks[s].Name)
			}
		}
	}
	for v, c := range f.ValueClass {
		if v < 0 || v >= f.NumValues {
			report("ir: class annotation on out-of-range value %d", v)
		}
		if c < 0 || c >= NumClasses {
			report("ir: value %s has invalid class %d", f.NameOf(v), int(c))
		}
	}
	for v, ref := range f.PreColor {
		if v < 0 || v >= f.NumValues {
			report("ir: pre-color on out-of-range value %d", v)
			continue
		}
		if !validRegRef(ref) {
			report("ir: value %s pre-colored to invalid register ref %d", f.NameOf(v), ref)
			continue
		}
		if RegClassOf(ref) != f.ClassOf(v) {
			report("ir: value %s (class %s) pre-colored to %s of class %s",
				f.NameOf(v), f.ClassOf(v), RegName(ref), RegClassOf(ref))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	// The structure is sound, so dominance is computable.
	dom := f.ComputeDominance()
	if f.SSA {
		if err := f.validateSSA(dom); err != nil {
			// Tag SSA-form violations so clients can dispatch on them with
			// errors.Is(err, raerr.ErrNotSSA) across the whole stack.
			errs = append(errs, fmt.Errorf("%w: %w", raerr.ErrNotSSA, err))
		}
	}
	return dom, errors.Join(errs...)
}

func (f *Func) validateSSA(dom *Dominance) error {
	var errs []error
	// Inline single-definition bookkeeping (Defs would allocate per-value
	// site lists; this is the per-function hot path of the batch pipeline).
	defSite := make([]DefSite, f.NumValues)
	defCount := make([]int32, f.NumValues)
	defined := make([]bool, f.NumValues)
	for _, b := range f.Blocks {
		for i, ins := range b.Instrs {
			if !ins.Op.HasDef() || ins.Def == NoValue {
				continue
			}
			if defCount[ins.Def] == 0 {
				defSite[ins.Def] = DefSite{Block: b.ID, Index: i}
			}
			defCount[ins.Def]++
		}
	}
	for v, c := range defCount {
		switch {
		case c == 1:
			defined[v] = true
		case c > 1:
			errs = append(errs, fmt.Errorf("ir: value %s defined %d times", f.NameOf(v), c))
		}
	}
	dominatesUse := func(v int, useBlock, useIndex int) bool {
		ds := defSite[v]
		if ds.Block == useBlock {
			return ds.Index < useIndex
		}
		return dom.Dominates(ds.Block, useBlock)
	}
	for _, b := range f.Blocks {
		if dom.Order[b.ID] < 0 {
			continue // unreachable code is not subject to dominance checking
		}
		for i, ins := range b.Instrs {
			if ins.Op == OpPhi {
				for k, u := range ins.Uses {
					if !defined[u] {
						errs = append(errs, fmt.Errorf("ir: phi in %s uses undefined %s", b.Name, f.NameOf(u)))
						continue
					}
					if k >= len(b.Preds) {
						continue // arity error already reported
					}
					p := b.Preds[k]
					ds := defSite[u]
					if !(ds.Block == p || dom.Dominates(ds.Block, p)) {
						errs = append(errs, fmt.Errorf(
							"ir: phi operand %s in %s not available on edge from %s",
							f.NameOf(u), b.Name, f.Blocks[p].Name))
					}
				}
				continue
			}
			for _, u := range ins.Uses {
				if !defined[u] {
					errs = append(errs, fmt.Errorf("ir: %s in %s uses undefined %s", ins.Op, b.Name, f.NameOf(u)))
					continue
				}
				if !dominatesUse(u, b.ID, i) {
					errs = append(errs, fmt.Errorf(
						"ir: use of %s in %s not dominated by its definition",
						f.NameOf(u), b.Name))
				}
			}
		}
	}
	return errors.Join(errs...)
}

// validRegRef reports whether ref encodes a register of a known class with
// an in-stride index.
func validRegRef(ref int) bool {
	return ref >= 0 && ref < int(NumClasses)*RegStride
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
