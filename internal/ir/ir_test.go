package ir

import (
	"strings"
	"testing"
)

// diamond builds the CFG
//
//	b0 → b1, b2 → b3
func diamond(t *testing.T) *Func {
	t.Helper()
	return MustParse(`
func diamond ssa {
b0:
  x = param 0
  c = unary x
  condbr c, b1, b2
b1:
  y = arith x, x
  br b3
b2:
  z = arith x, x
  br b3
b3:
  m = phi [b1: y], [b2: z]
  ret m
}`)
}

func TestParseDiamond(t *testing.T) {
	f := diamond(t)
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if !f.SSA {
		t.Fatal("ssa attribute lost")
	}
	if got := f.Blocks[0].Succs; len(got) != 2 {
		t.Fatalf("entry succs = %v", got)
	}
	if got := f.Blocks[3].Preds; len(got) != 2 {
		t.Fatalf("join preds = %v", got)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := diamond(t)
	text := f.String()
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if g.String() != text {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", text, g.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing brace":      "func f ssa {\nb0:\n  ret",
		"unknown op":         "func f {\nb0:\n  x = frobnicate y\n  ret\n}",
		"bad label":          "func f {\n0b:\n  ret\n}",
		"dup block":          "func f {\nb0:\n  br b0\nb0:\n  ret\n}",
		"undefined target":   "func f {\nb0:\n  br b9\n}",
		"instr before block": "func f {\n  ret\n}",
		"no result":          "func f {\nb0:\n  arith a, b\n  ret\n}",
		"result on ret":      "func f {\nb0:\n  x = ret\n}",
		"phi non-pred":       "func f ssa {\nb0:\n  x = param 0\n  br b1\nb1:\n  p = phi [b1: x]\n  ret\n}",
		"bad attribute":      "func f fast {\nb0:\n  ret\n}",
		"condbr arity":       "func f {\nb0:\n  x = param 0\n  condbr x, b0\n}",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestValidateCatchesDoubleDef(t *testing.T) {
	src := `
func f ssa {
b0:
  x = param 0
  x = arith x, x
  ret x
}`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "defined 2 times") {
		t.Fatalf("double def not caught: %v", err)
	}
}

func TestValidateCatchesUseBeforeDef(t *testing.T) {
	src := `
func f ssa {
b0:
  c = param 0
  condbr c, b1, b2
b1:
  y = arith c, c
  br b3
b2:
  br b3
b3:
  z = arith y, y
  ret z
}`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "not dominated") {
		t.Fatalf("dominance violation not caught: %v", err)
	}
}

func TestNonSSAAllowsRedefinition(t *testing.T) {
	src := `
func f {
b0:
  x = param 0
  x = arith x, x
  ret x
}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("non-SSA redefinition rejected: %v", err)
	}
}

func TestNonSSAForbidsPhi(t *testing.T) {
	src := `
func f {
b0:
  x = param 0
  br b1
b1:
  p = phi [b0: x]
  ret p
}`
	if _, err := Parse(src); err == nil {
		t.Fatal("phi in non-SSA function accepted")
	}
}

func TestDominanceDiamond(t *testing.T) {
	f := diamond(t)
	d := f.ComputeDominance()
	if d.Idom[1] != 0 || d.Idom[2] != 0 || d.Idom[3] != 0 {
		t.Fatalf("idoms = %v", d.Idom)
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || d.Dominates(3, 1) {
		t.Fatal("Dominates answers wrong")
	}
	if !d.Dominates(2, 2) {
		t.Fatal("dominance must be reflexive")
	}
}

func TestDominanceLoop(t *testing.T) {
	f := MustParse(`
func loop ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	d := f.ComputeDominance()
	if d.Idom[1] != 0 || d.Idom[2] != 1 || d.Idom[3] != 1 {
		t.Fatalf("idoms = %v", d.Idom)
	}
	headers := f.ComputeLoops(d)
	if len(headers) != 1 || headers[0] != 1 {
		t.Fatalf("headers = %v", headers)
	}
	if f.Blocks[1].LoopDepth != 1 || f.Blocks[2].LoopDepth != 1 {
		t.Fatalf("loop depths: b1=%d b2=%d", f.Blocks[1].LoopDepth, f.Blocks[2].LoopDepth)
	}
	if f.Blocks[0].LoopDepth != 0 || f.Blocks[3].LoopDepth != 0 {
		t.Fatal("blocks outside the loop have nonzero depth")
	}
}

func TestNestedLoopDepth(t *testing.T) {
	f := MustParse(`
func nest ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b4: i2]
  ci = unary i
  condbr ci, b2, b5
b2:
  j = phi [b1: i], [b3: j2]
  cj = unary j
  condbr cj, b3, b4
b3:
  j2 = arith j, i
  br b2
b4:
  i2 = arith i, i
  br b1
b5:
  ret i
}`)
	d := f.ComputeDominance()
	f.ComputeLoops(d)
	depths := []int{0, 1, 2, 2, 1, 0}
	for b, want := range depths {
		if got := f.Blocks[b].LoopDepth; got != want {
			t.Errorf("b%d depth = %d, want %d", b, got, want)
		}
	}
}

func TestUnreachableBlockTolerated(t *testing.T) {
	f := &Func{Name: "u", SSA: true, ValueName: map[int]string{}}
	b0 := f.AddBlock("b0")
	v := f.NewValue()
	b0.Instrs = []Instr{
		{Op: OpConst, Def: v, Imm: 1},
		{Op: OpReturn, Def: NoValue, Uses: []int{v}},
	}
	dead := f.AddBlock("dead")
	w := f.NewValue()
	dead.Instrs = []Instr{
		{Op: OpConst, Def: w, Imm: 2},
		{Op: OpReturn, Def: NoValue, Uses: []int{w}},
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("unreachable block rejected: %v", err)
	}
	d := f.ComputeDominance()
	if d.Order[dead.ID] != -1 {
		t.Fatal("unreachable block has an RPO number")
	}
}

func TestDefsAndUseCounts(t *testing.T) {
	f := diamond(t)
	defs := f.Defs()
	uses := f.UseCounts()
	named := map[string]int{}
	for id, name := range f.ValueName {
		named[name] = id
	}
	if len(defs[named["x"]]) != 1 {
		t.Fatalf("x defined %d times", len(defs[named["x"]]))
	}
	// x is used by: unary, two ariths (2 uses each).
	if uses[named["x"]] != 5 {
		t.Fatalf("x used %d times, want 5", uses[named["x"]])
	}
	if uses[named["m"]] != 1 {
		t.Fatalf("m used %d times, want 1", uses[named["m"]])
	}
}

func TestTerminatorAccess(t *testing.T) {
	f := diamond(t)
	term := f.Blocks[0].Terminator()
	if term == nil || term.Op != OpCondBr {
		t.Fatalf("entry terminator = %v", term)
	}
	empty := &Block{}
	if empty.Terminator() != nil {
		t.Fatal("empty block has terminator")
	}
}

func TestOpStringAndHasDef(t *testing.T) {
	if OpPhi.String() != "phi" || OpCondBr.String() != "condbr" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op prints empty")
	}
	if OpStore.HasDef() || OpReturn.HasDef() || OpSpill.HasDef() {
		t.Fatal("no-def op claims a def")
	}
	if !OpReload.HasDef() || !OpCall.HasDef() {
		t.Fatal("def op claims no def")
	}
	if !OpBranch.IsTerminator() || OpArith.IsTerminator() {
		t.Fatal("terminator classification wrong")
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	f := MustParse(`
; leading comment
func c ssa {   ; trailing
b0:
  x = const 42 ; the answer
  ret x
}`)
	if f.Blocks[0].Instrs[0].Imm != 42 {
		t.Fatal("const immediate lost")
	}
}

func TestParseCallAndMemoryOps(t *testing.T) {
	f := MustParse(`
func m ssa {
b0:
  a = param 0
  b = load a
  c = call a, b
  d = call
  store a, c
  e = copy d
  ret e
}`)
	ops := []Op{OpParam, OpLoad, OpCall, OpCall, OpStore, OpCopy, OpReturn}
	for i, want := range ops {
		if got := f.Blocks[0].Instrs[i].Op; got != want {
			t.Errorf("instr %d op = %v, want %v", i, got, want)
		}
	}
	if n := len(f.Blocks[0].Instrs[2].Uses); n != 2 {
		t.Errorf("call arity = %d", n)
	}
	if n := len(f.Blocks[0].Instrs[3].Uses); n != 0 {
		t.Errorf("nullary call arity = %d", n)
	}
}
