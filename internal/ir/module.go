package ir

import (
	"fmt"
	"strings"
)

// Module is a compilation unit: an ordered sequence of functions sharing one
// textual source. It is the unit the batch pipeline (internal/pipeline)
// fans out over; function order is significant and preserved by parse/print.
type Module struct {
	Funcs []*Func
}

// ParseModule reads a module in the textual format produced by
// Module.String: a sequence of func blocks (each in the single-function
// format accepted by Parse), separated by blank lines or comments. A source
// holding exactly one function is a valid one-function module, so every
// single-function .ir file is also a module file.
func ParseModule(src string) (*Module, error) {
	m := &Module{}
	lines := strings.Split(src, "\n")
	var chunk []string
	chunkStart := 0
	inFunc := false
	flush := func(end int) error {
		f, err := Parse(strings.Join(chunk, "\n"))
		if err != nil {
			return fmt.Errorf("ir: module func #%d (lines %d-%d): %w",
				len(m.Funcs)+1, chunkStart+1, end+1, err)
		}
		m.Funcs = append(m.Funcs, f)
		chunk = chunk[:0]
		return nil
	}
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		switch {
		case inFunc:
			chunk = append(chunk, raw)
			if line == "}" {
				if err := flush(lineNo); err != nil {
					return nil, err
				}
				inFunc = false
			}
		case strings.HasPrefix(line, "func "):
			inFunc = true
			chunkStart = lineNo
			chunk = append(chunk, raw)
		case line == "":
			// Blank lines and comments between functions.
		default:
			return nil, fmt.Errorf("ir: line %d: %q outside any function", lineNo+1, line)
		}
	}
	if inFunc {
		return nil, fmt.Errorf("ir: module func #%d (line %d): missing closing brace",
			len(m.Funcs)+1, chunkStart+1)
	}
	if len(m.Funcs) == 0 {
		return nil, fmt.Errorf("ir: module has no functions")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustParseModule is ParseModule that panics on error, for tests and
// examples with literal sources.
func MustParseModule(src string) *Module {
	m, err := ParseModule(src)
	if err != nil {
		panic(err)
	}
	return m
}

// String renders the module in the format accepted by ParseModule: the
// functions in order, separated by one blank line. print∘parse is a
// fixpoint, as for single functions.
func (m *Module) String() string {
	var b strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// Validate checks every function and that function names are unique within
// the module (the batch front-end addresses results by name).
func (m *Module) Validate() error {
	if len(m.Funcs) == 0 {
		return fmt.Errorf("ir: module has no functions")
	}
	seen := make(map[string]bool, len(m.Funcs))
	for i, f := range m.Funcs {
		if f.Name == "" {
			return fmt.Errorf("ir: module func #%d has no name", i+1)
		}
		if seen[f.Name] {
			return fmt.Errorf("ir: duplicate function %q in module", f.Name)
		}
		seen[f.Name] = true
		if err := f.Validate(); err != nil {
			return fmt.Errorf("ir: module func %s: %w", f.Name, err)
		}
	}
	return nil
}

// FuncByName returns the function named name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
