// Package interp is a reference interpreter for the ir package: it executes
// a *ir.Func on concrete int64 inputs and reports the observable behaviour —
// the returned value plus a deterministic trace of side effects (stores and
// calls). Its purpose is semantic differential testing: a register-allocation
// rewrite (spill/reload insertion) is correct exactly when the rewritten
// function's observable behaviour matches the original's on every input.
//
// All opcodes are given a fixed deterministic semantics:
//
//   - arith/unary are injective-ish integer mixing functions (and arith is
//     deliberately non-commutative, so swapped operands are observable);
//   - load reads a flat memory keyed by the address operand's value, with a
//     deterministic hash of the address standing in for uninitialized cells;
//   - store writes Uses[0] to the address in Uses[1] and appends to the trace;
//   - call is a pure hash of its arguments, also appended to the trace;
//   - spill/reload move values through spill slots (see ir.Instr: a spill's
//     slot is its operand, a reload's slot is carried in Imm).
//
// Loops in generated programs need not terminate, so execution carries a step
// budget. Crucially the budget counts only *semantic* instructions — spills
// and reloads are free — so an original function and its spill-everywhere
// rewrite run out of budget at exactly the same program point and remain
// comparable even when they time out.
package interp

import (
	"fmt"

	"repro/internal/ir"
)

// DefaultBudget is the semantic step budget used when Run is given a budget
// of zero or less.
const DefaultBudget = 4096

// EventKind labels one observable side effect.
type EventKind int

const (
	// EvStore is a memory write: A = address, B = value stored.
	EvStore EventKind = iota
	// EvCall is a call: A = hash of the argument list, B = result.
	EvCall
)

func (k EventKind) String() string {
	if k == EvStore {
		return "store"
	}
	return "call"
}

// Event is one entry of the side-effect trace.
type Event struct {
	Kind EventKind
	A, B int64
}

// Result is the observable outcome of one execution.
type Result struct {
	// Returned reports whether a `ret <val>` was reached (false for bare
	// `ret` and for timed-out executions).
	Returned bool
	// Return is the returned value when Returned is set.
	Return int64
	// TimedOut reports that the step budget was exhausted first.
	TimedOut bool
	// Steps is the number of semantic (non-spill, non-reload) instructions
	// executed.
	Steps int
	// Trace is the ordered side-effect trace.
	Trace []Event
}

// Equal reports whether two executions are observably identical.
func (r *Result) Equal(o *Result) bool {
	return r.Diff(o) == ""
}

// Diff describes the first observable divergence between two executions, or
// returns "" when they match.
func (r *Result) Diff(o *Result) string {
	n := len(r.Trace)
	if len(o.Trace) < n {
		n = len(o.Trace)
	}
	for i := 0; i < n; i++ {
		if r.Trace[i] != o.Trace[i] {
			return fmt.Sprintf("trace[%d]: %s(%d,%d) vs %s(%d,%d)",
				i, r.Trace[i].Kind, r.Trace[i].A, r.Trace[i].B,
				o.Trace[i].Kind, o.Trace[i].A, o.Trace[i].B)
		}
	}
	if len(r.Trace) != len(o.Trace) {
		return fmt.Sprintf("trace length %d vs %d", len(r.Trace), len(o.Trace))
	}
	if r.TimedOut != o.TimedOut {
		return fmt.Sprintf("timed out %v vs %v", r.TimedOut, o.TimedOut)
	}
	if r.Steps != o.Steps {
		return fmt.Sprintf("steps %d vs %d", r.Steps, o.Steps)
	}
	if r.Returned != o.Returned {
		return fmt.Sprintf("returned %v vs %v", r.Returned, o.Returned)
	}
	if r.Returned && r.Return != o.Return {
		return fmt.Sprintf("return value %d vs %d", r.Return, o.Return)
	}
	return ""
}

// RuntimeError reports a dynamic violation — using a value no definition has
// reached, reloading an unwritten or unknown slot, or falling off a block.
// Any RuntimeError on generator- or rewriter-produced code is a bug in the
// producer, not in the program.
type RuntimeError struct {
	Block string
	Index int
	Msg   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("interp: %s (block %s, instr %d)", e.Msg, e.Block, e.Index)
}

const (
	mixC1 = 0x9e3779b97f4a7c15 // golden-ratio constant (splitmix64)
	mixC2 = 0xbf58476d1ce4e5b9
	mixC3 = 0x94d049bb133111eb
)

// mix1 is the deterministic unary operation.
func mix1(a int64) int64 {
	x := uint64(a) + mixC1
	x = (x ^ (x >> 30)) * mixC2
	x = (x ^ (x >> 27)) * mixC3
	return int64(x ^ (x >> 31))
}

// mix2 is the deterministic binary operation; it is non-commutative so that
// operand order is observable.
func mix2(a, b int64) int64 {
	return mix1(a*3 + mix1(b))
}

// memDefault is the deterministic content of an uninitialized memory cell.
func memDefault(addr int64) int64 { return mix1(int64(uint64(addr) ^ mixC2)) }

// paramDefault is the value of a parameter index the caller did not supply.
func paramDefault(i int64) int64 { return mix1(int64(uint64(i) ^ mixC3)) }

type machine struct {
	f       *ir.Func
	regs    []int64
	defined []bool
	mem     map[int64]int64
	slots   map[int]int64
	hasSlot map[int]bool
	res     *Result
	budget  int
	// regOf, when non-nil, turns on clobber modelling: regOf[v] is the
	// machine register (ir RegRef) assigned to value v, or negative for
	// values kept in memory. See RunWithClobbers.
	regOf []int
}

// Run executes f with the given parameter values and semantic step budget
// (<= 0 selects DefaultBudget). Parameters beyond len(params) read a
// deterministic per-index default, so any function is runnable on any input
// vector. The error is non-nil only for dynamic violations (RuntimeError);
// budget exhaustion is reported via Result.TimedOut.
func Run(f *ir.Func, params []int64, budget int) (*Result, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	m := &machine{
		f:       f,
		regs:    make([]int64, f.NumValues),
		defined: make([]bool, f.NumValues),
		mem:     make(map[int64]int64),
		slots:   make(map[int]int64),
		hasSlot: make(map[int]bool),
		res:     &Result{},
		budget:  budget,
	}
	return m.res, m.run(params)
}

// RunWithClobbers executes f like Run, but models the register file of a
// machine-constrained allocation: regOf maps each value to its assigned
// register (an ir RegRef; negative = the value lives in memory), and every
// call carrying a clobber annotation destroys the content of its clobbered
// registers — any value sitting in one at the call is overwritten with
// deterministic garbage before the call's result is produced.
//
// This makes clobber violations *observable*: an assignment that leaves a
// value in a caller-saved register across a call miscompiles under this
// semantics (later uses read garbage), while a clobber-honoring allocation
// behaves exactly like Run. Values beyond len(regOf) — the reload temps a
// spill-everywhere rewrite introduces — are immune, matching their
// construction: reloads are inserted adjacent to their use and never span a
// call.
func RunWithClobbers(f *ir.Func, params []int64, budget int, regOf []int) (*Result, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if regOf == nil {
		regOf = []int{}
	}
	m := &machine{
		f:       f,
		regs:    make([]int64, f.NumValues),
		defined: make([]bool, f.NumValues),
		mem:     make(map[int64]int64),
		slots:   make(map[int]int64),
		hasSlot: make(map[int]bool),
		res:     &Result{},
		budget:  budget,
		regOf:   regOf,
	}
	return m.res, m.run(params)
}

// clobber destroys every live register the call tramples: each defined value
// sitting in one of the clobbered registers is overwritten with a
// deterministic function of the call's argument hash and the register — the
// junk a callee would leave behind.
func (m *machine) clobber(clobbers []int, h int64) {
	for v := 0; v < len(m.regOf) && v < len(m.regs); v++ {
		if !m.defined[v] || m.regOf[v] < 0 {
			continue
		}
		for _, ref := range clobbers {
			if m.regOf[v] == ref {
				m.regs[v] = mix2(h, int64(ref))
				break
			}
		}
	}
}

func (m *machine) use(b *ir.Block, i int, v int) (int64, error) {
	if v < 0 || v >= len(m.regs) {
		return 0, &RuntimeError{b.Name, i, fmt.Sprintf("use of out-of-range value %d", v)}
	}
	if !m.defined[v] {
		return 0, &RuntimeError{b.Name, i, fmt.Sprintf("use of undefined value %s", m.f.NameOf(v))}
	}
	return m.regs[v], nil
}

func (m *machine) set(v int, x int64) {
	m.regs[v] = x
	m.defined[v] = true
}

func (m *machine) run(params []int64) error {
	f := m.f
	cur := f.Entry()
	prev := -1 // block we arrived from, for phi operand selection
	for {
		// Phis evaluate in parallel on the incoming edge: read all operands
		// first, then write all defs.
		nphi := 0
		for _, ins := range cur.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			nphi++
		}
		if nphi > 0 {
			k := -1
			for j, p := range cur.Preds {
				if p == prev {
					k = j
					break
				}
			}
			if k < 0 {
				return &RuntimeError{cur.Name, 0, fmt.Sprintf("phi block entered from non-predecessor b%d", prev)}
			}
			vals := make([]int64, nphi)
			for i := 0; i < nphi; i++ {
				ins := &cur.Instrs[i]
				if k >= len(ins.Uses) {
					return &RuntimeError{cur.Name, i, "phi operand missing for incoming edge"}
				}
				x, err := m.use(cur, i, ins.Uses[k])
				if err != nil {
					return err
				}
				vals[i] = x
			}
			for i := 0; i < nphi; i++ {
				if m.step() {
					return nil
				}
				m.set(cur.Instrs[i].Def, vals[i])
			}
		}
		branched := false
		for i := nphi; i < len(cur.Instrs) && !branched; i++ {
			ins := &cur.Instrs[i]
			switch ins.Op {
			case ir.OpSpill:
				// Free: spills/reloads are the rewrite's own instructions and
				// must not shift the budget cut point.
				x, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				m.slots[ins.Uses[0]] = x
				m.hasSlot[ins.Uses[0]] = true
				continue
			case ir.OpReload:
				slot := int(ins.Imm)
				if ins.Imm < 0 {
					return &RuntimeError{cur.Name, i, "reload with unknown slot"}
				}
				if !m.hasSlot[slot] {
					return &RuntimeError{cur.Name, i, fmt.Sprintf("reload of unwritten slot %s", f.NameOf(slot))}
				}
				m.set(ins.Def, m.slots[slot])
				continue
			}
			if m.step() {
				return nil
			}
			switch ins.Op {
			case ir.OpConst:
				m.set(ins.Def, ins.Imm)
			case ir.OpParam:
				if ins.Imm >= 0 && int(ins.Imm) < len(params) {
					m.set(ins.Def, params[ins.Imm])
				} else {
					m.set(ins.Def, paramDefault(ins.Imm))
				}
			case ir.OpArith:
				a, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				b, err := m.use(cur, i, ins.Uses[1])
				if err != nil {
					return err
				}
				m.set(ins.Def, mix2(a, b))
			case ir.OpUnary:
				a, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				m.set(ins.Def, mix1(a))
			case ir.OpCopy:
				a, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				m.set(ins.Def, a)
			case ir.OpLoad:
				addr, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				x, ok := m.mem[addr]
				if !ok {
					x = memDefault(addr)
				}
				m.set(ins.Def, x)
			case ir.OpStore:
				val, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				addr, err := m.use(cur, i, ins.Uses[1])
				if err != nil {
					return err
				}
				m.mem[addr] = val
				m.res.Trace = append(m.res.Trace, Event{EvStore, addr, val})
			case ir.OpCall:
				h := mix1(int64(len(ins.Uses)))
				for _, u := range ins.Uses {
					a, err := m.use(cur, i, u)
					if err != nil {
						return err
					}
					h = mix2(h, a)
				}
				if m.regOf != nil && len(ins.Clobbers) > 0 {
					// The callee tramples its caller-saved registers before
					// the result is written.
					m.clobber(ins.Clobbers, h)
				}
				m.set(ins.Def, mix1(h))
				m.res.Trace = append(m.res.Trace, Event{EvCall, h, m.regs[ins.Def]})
			case ir.OpBranch:
				prev, cur = cur.ID, f.Blocks[ins.Targets[0]]
				branched = true
			case ir.OpCondBr:
				c, err := m.use(cur, i, ins.Uses[0])
				if err != nil {
					return err
				}
				t := ins.Targets[1]
				if c != 0 {
					t = ins.Targets[0]
				}
				prev, cur = cur.ID, f.Blocks[t]
				branched = true
			case ir.OpReturn:
				if len(ins.Uses) > 0 {
					x, err := m.use(cur, i, ins.Uses[0])
					if err != nil {
						return err
					}
					m.res.Returned = true
					m.res.Return = x
				}
				return nil
			default:
				return &RuntimeError{cur.Name, i, fmt.Sprintf("unexecutable op %s", ins.Op)}
			}
		}
		if !branched {
			return &RuntimeError{cur.Name, len(cur.Instrs), "control fell off the block"}
		}
	}
}

// step charges one semantic instruction against the budget and reports
// whether execution must stop.
func (m *machine) step() bool {
	if m.res.Steps >= m.budget {
		m.res.TimedOut = true
		return true
	}
	m.res.Steps++
	return false
}
