package interp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/regassign"
)

func TestStraightLine(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  ret c
}`)
	r1, err := Run(f, []int64{3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Returned || r1.TimedOut {
		t.Fatalf("bad result: %+v", r1)
	}
	if r1.Return != mix2(3, 4) {
		t.Fatalf("return = %d, want mix2(3,4) = %d", r1.Return, mix2(3, 4))
	}
	if r1.Steps != 4 {
		t.Fatalf("steps = %d, want 4", r1.Steps)
	}
	// Operand order must be observable.
	r2, err := Run(f, []int64{4, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Return == r1.Return {
		t.Fatal("arith must not be commutative")
	}
	// Determinism.
	r3, _ := Run(f, []int64{3, 4}, 0)
	if !r1.Equal(r3) {
		t.Fatalf("nondeterministic execution: %s", r1.Diff(r3))
	}
}

func TestBranchAndPhi(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  c = param 0
  x = const 10
  y = const 20
  condbr c, b1, b2
b1:
  br b3
b2:
  br b3
b3:
  m = phi [b1: x], [b2: y]
  ret m
}`)
	r, err := Run(f, []int64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Return != 10 {
		t.Fatalf("true edge: return %d, want 10", r.Return)
	}
	r, err = Run(f, []int64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Return != 20 {
		t.Fatalf("false edge: return %d, want 20", r.Return)
	}
}

// Loop-carried phis must be evaluated in parallel on the back edge: swap
// needs both old values.
func TestPhiParallelSwap(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  n = param 0
  a0 = const 1
  b0v = const 2
  zero = const 0
  br b1
b1:
  i = phi [b0: n], [b2: i2]
  a = phi [b0: a0], [b2: b]
  b = phi [b0: b0v], [b2: a]
  condbr i, b2, b3
b2:
  i2 = arith i, zero
  br b1
b3:
  ret a
}`)
	// One iteration: i = 1 (nonzero) -> body -> i2 = mix2(1, 0).
	// After one back-edge trip a and b have swapped once. We only check the
	// interpreter doesn't read a phi's new value while evaluating siblings:
	// after an odd number of swaps a == 2.
	r, err := Run(f, []int64{1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.TimedOut {
		t.Skip("mix2 kept the loop alive; parallel-copy check needs the short path")
	}
	if r.Return != 1 && r.Return != 2 {
		t.Fatalf("swap phi returned %d, want 1 or 2", r.Return)
	}
}

func TestMemoryAndTrace(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  p = param 0
  v = param 1
  store v, p
  w = load p
  r = call w, v
  ret r
}`)
	r, err := Run(f, []int64{100, 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != 2 {
		t.Fatalf("trace has %d events, want 2 (store, call)", len(r.Trace))
	}
	if r.Trace[0].Kind != EvStore || r.Trace[0].A != 100 || r.Trace[0].B != 7 {
		t.Fatalf("store event = %+v", r.Trace[0])
	}
	if r.Trace[1].Kind != EvCall {
		t.Fatalf("call event = %+v", r.Trace[1])
	}
	// The load must observe the store.
	fNoStore := ir.MustParse(`
func f ssa {
b0:
  p = param 0
  v = param 1
  w = load p
  r = call w, v
  ret r
}`)
	r2, err := Run(fNoStore, []int64{100, 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Return == r.Return {
		t.Fatal("load did not observe the preceding store")
	}
}

func TestSpillReloadSlots(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  a = param 0
  spill a
  b = unary a
  a.r = reload a
  c = arith b, a.r
  ret c
}`)
	r, err := Run(f, []int64{5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := mix2(mix1(5), 5); r.Return != want {
		t.Fatalf("return = %d, want %d", r.Return, want)
	}
	// Spills and reloads are budget-free.
	if r.Steps != 4 {
		t.Fatalf("steps = %d, want 4 (spill/reload must not count)", r.Steps)
	}
	// Reloading a slot no spill has written is a runtime error.
	bad := ir.MustParse(`
func f ssa {
b0:
  a = param 0
  a.r = reload a
  ret a.r
}`)
	if _, err := Run(bad, nil, 0); err == nil {
		t.Fatal("reload of unwritten slot must fail")
	}
}

func TestBudgetTimeout(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  one = const 1
  br b1
b1:
  condbr one, b1, b2
b2:
  ret one
}`)
	r, err := Run(f, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut || r.Returned {
		t.Fatalf("infinite loop must time out: %+v", r)
	}
	if r.Steps != 100 {
		t.Fatalf("steps = %d, want exactly the budget", r.Steps)
	}
}

func TestUndefinedUse(t *testing.T) {
	// Non-SSA function where a path skips the definition.
	f := ir.MustParse(`
func f {
b0:
  c = param 0
  condbr c, b1, b2
b1:
  x = const 1
  br b2
b2:
  ret x
}`)
	if _, err := Run(f, []int64{0}, 0); err == nil {
		t.Fatal("use of undefined value must fail")
	}
	if _, err := Run(f, []int64{1}, 0); err != nil {
		t.Fatalf("defined path must succeed: %v", err)
	}
}

// TestCorpusRuns executes every corpus function on a few input vectors: no
// runtime errors, and spill-everywhere rewriting with an empty spill set is
// observably the identity.
func TestCorpusRuns(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "ir", "testdata", "*.ir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	inputs := [][]int64{nil, {1}, {2, 3, 4, 5}, {-7, 0, 13}}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f := ir.MustParse(string(src))
		for _, in := range inputs {
			r1, err := Run(f, in, 0)
			if err != nil {
				t.Fatalf("%s %v: %v", filepath.Base(file), in, err)
			}
			g := regassign.InsertSpillCode(f, make([]bool, f.NumValues))
			r2, err := Run(g, in, 0)
			if err != nil {
				t.Fatalf("%s rewritten: %v", filepath.Base(file), err)
			}
			if d := r1.Diff(r2); d != "" {
				t.Fatalf("%s %v: identity rewrite changed behaviour: %s", filepath.Base(file), in, d)
			}
		}
	}
}

// TestDifferentialSpillEverywhere pins the interpreter + rewriter contract
// on a hand-written function: spilling every value must not change
// observable behaviour.
func TestDifferentialSpillEverywhere(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("..", "ir", "testdata", "*.ir"))
	for _, file := range files {
		src, _ := os.ReadFile(file)
		f := ir.MustParse(string(src))
		if !f.SSA {
			continue
		}
		all := make([]bool, f.NumValues)
		for i := range all {
			all[i] = true
		}
		g := regassign.InsertSpillCode(f, all)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: rewrite invalid: %v", filepath.Base(file), err)
		}
		if !strings.Contains(g.String(), "reload") {
			t.Fatalf("%s: spill-all produced no reloads", filepath.Base(file))
		}
		for _, in := range [][]int64{{2, 3}, {9, 1, 5, 2}} {
			r1, err := Run(f, in, 0)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(g, in, 0)
			if err != nil {
				t.Fatalf("%s spill-all: %v", filepath.Base(file), err)
			}
			if d := r1.Diff(r2); d != "" {
				t.Fatalf("%s %v: spill-all changed behaviour: %s", filepath.Base(file), in, d)
			}
		}
	}
}
