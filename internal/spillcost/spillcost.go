// Package spillcost estimates per-variable spill costs, following the
// paper's methodology (§6.1.1): the cost of a variable is the sum, over the
// basic blocks that access it, of the block's execution frequency times the
// number of accesses in that block. Block frequency is the standard static
// estimate base^loop-depth.
package spillcost

import (
	"math"

	"repro/internal/ir"
)

// Model controls the cost estimate.
type Model struct {
	// LoopBase is the assumed trip-count factor per loop level (default 10).
	LoopBase float64
	// StoreFactor scales the cost contribution of the definition (the
	// store of a spilled variable) relative to a use (a load). Default 1.
	StoreFactor float64
}

// DefaultModel is the paper-faithful configuration.
var DefaultModel = Model{LoopBase: 10, StoreFactor: 1}

// Costs returns the spill cost of every value of f (indexed by value ID).
// Values never accessed get cost 0.
func Costs(f *ir.Func, m Model) []float64 {
	if m.LoopBase == 0 {
		m.LoopBase = DefaultModel.LoopBase
	}
	if m.StoreFactor == 0 {
		m.StoreFactor = DefaultModel.StoreFactor
	}
	cost := make([]float64, f.NumValues)
	for _, b := range f.Blocks {
		freq := math.Pow(m.LoopBase, float64(b.LoopDepth))
		for _, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				cost[ins.Def] += m.StoreFactor * freq
			}
			for k, u := range ins.Uses {
				if ins.Op == ir.OpPhi {
					// A phi use is a move on the incoming edge: charge it
					// at the predecessor's frequency.
					if k < len(b.Preds) {
						p := f.Blocks[b.Preds[k]]
						cost[u] += math.Pow(m.LoopBase, float64(p.LoopDepth))
					}
					continue
				}
				cost[u] += freq
			}
		}
	}
	return cost
}

// BlockFrequencies returns the static frequency estimate of every block.
func BlockFrequencies(f *ir.Func, m Model) []float64 {
	if m.LoopBase == 0 {
		m.LoopBase = DefaultModel.LoopBase
	}
	out := make([]float64, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = math.Pow(m.LoopBase, float64(b.LoopDepth))
	}
	return out
}
