// Package spillcost estimates per-variable spill costs, following the
// paper's methodology (§6.1.1): the cost of a variable is the sum, over the
// basic blocks that access it, of the block's execution frequency times the
// number of accesses in that block. Block frequency is the standard static
// estimate base^loop-depth.
package spillcost

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Model controls the cost estimate.
//
// Zero-value semantics: a wholly-zero Model means DefaultModel, so
// `core.Config{}`-style zero values keep working — but a *partially* zero
// model is taken verbatim. Model{LoopBase: 10, StoreFactor: 0} really means
// "stores are free" and Model{LoopBase: 0, StoreFactor: 1} really means
// "loop bodies count like straight-line code"; neither is silently
// rewritten to the defaults. Use NewModel to construct explicit models.
type Model struct {
	// LoopBase is the assumed trip-count factor per loop level (default 10).
	LoopBase float64
	// StoreFactor scales the cost contribution of the definition (the
	// store of a spilled variable) relative to a use (a load). Default 1.
	StoreFactor float64
	// explicit marks models built by NewModel, which are always taken
	// verbatim — even wholly zero.
	explicit bool
}

// DefaultModel is the paper-faithful configuration.
var DefaultModel = Model{LoopBase: 10, StoreFactor: 1}

// NewModel returns the explicit model (loopBase, storeFactor), taken
// verbatim with no zero-value defaulting at all: NewModel(0, 0) really
// charges nothing for loop bodies or stores, unlike the literal Model{}.
func NewModel(loopBase, storeFactor float64) Model {
	return Model{LoopBase: loopBase, StoreFactor: storeFactor, explicit: true}
}

// normalize resolves the zero-value convention: only the wholly-zero
// non-explicit model defaults.
func (m Model) normalize() Model {
	if m == (Model{}) {
		return DefaultModel
	}
	return m
}

// Params returns the effective (loopBase, storeFactor) pair after
// zero-value normalization — the canonical form of the model, under which
// Model{} and DefaultModel compare equal. Cache keys and config
// fingerprints fold these instead of the raw struct.
func (m Model) Params() (loopBase, storeFactor float64) {
	m = m.normalize()
	return m.LoopBase, m.StoreFactor
}

// Validate rejects models the estimate is meaningless for (negative
// factors). The pipeline driver calls it before costing.
func (m Model) Validate() error {
	m = m.normalize()
	if m.LoopBase < 0 || math.IsNaN(m.LoopBase) || math.IsInf(m.LoopBase, 0) {
		return fmt.Errorf("spillcost: LoopBase %g must be a finite non-negative number", m.LoopBase)
	}
	if m.StoreFactor < 0 || math.IsNaN(m.StoreFactor) || math.IsInf(m.StoreFactor, 0) {
		return fmt.Errorf("spillcost: StoreFactor %g must be a finite non-negative number", m.StoreFactor)
	}
	return nil
}

// Costs returns the spill cost of every value of f (indexed by value ID).
// Values never accessed get cost 0 — and under StoreFactor 0, so do values
// that are defined but never used.
func Costs(f *ir.Func, m Model) []float64 {
	return CostsInto(nil, f, m)
}

// CostsInto is Costs with a caller-provided buffer: dst is resized to
// f.NumValues (reallocating only when its capacity is too small), zeroed
// and filled. The batch pipeline's per-worker Runner feeds its scratch
// buffer through here, so steady-state allocation costs no cost-vector
// allocation per function — BuildProblem copies the costs it keeps, so the
// buffer never escapes into an Outcome.
func CostsInto(dst []float64, f *ir.Func, m Model) []float64 {
	m = m.normalize()
	cost := dst
	if cap(cost) < f.NumValues {
		cost = make([]float64, f.NumValues)
	} else {
		cost = cost[:f.NumValues]
		for i := range cost {
			cost[i] = 0
		}
	}
	for _, b := range f.Blocks {
		freq := math.Pow(m.LoopBase, float64(b.LoopDepth))
		for _, ins := range b.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				cost[ins.Def] += m.StoreFactor * freq
			}
			for k, u := range ins.Uses {
				if ins.Op == ir.OpPhi {
					// A phi use is a move on the incoming edge: charge it
					// at the predecessor's frequency. A malformed phi (more
					// operands than predecessors — ir.Validate rejects it,
					// but cost estimation must not rely on that) charges at
					// the phi's own block instead of silently dropping the
					// access.
					if k < len(b.Preds) {
						p := f.Blocks[b.Preds[k]]
						cost[u] += math.Pow(m.LoopBase, float64(p.LoopDepth))
					} else {
						cost[u] += freq
					}
					continue
				}
				cost[u] += freq
			}
		}
	}
	return cost
}

// BlockFrequencies returns the static frequency estimate of every block.
func BlockFrequencies(f *ir.Func, m Model) []float64 {
	m = m.normalize()
	out := make([]float64, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = math.Pow(m.LoopBase, float64(b.LoopDepth))
	}
	return out
}
