package spillcost

import (
	"testing"

	"repro/internal/ir"
)

func prep(t *testing.T, src string) *ir.Func {
	t.Helper()
	f := ir.MustParse(src)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	return f
}

func valueByName(f *ir.Func, name string) int {
	for id, n := range f.ValueName {
		if n == name {
			return id
		}
	}
	return -1
}

func TestFlatCosts(t *testing.T) {
	f := prep(t, `
func flat ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}`)
	costs := Costs(f, DefaultModel)
	// a: def (1) + two uses (2) = 3; b: def + one use = 2.
	if got := costs[valueByName(f, "a")]; got != 3 {
		t.Fatalf("cost(a) = %g, want 3", got)
	}
	if got := costs[valueByName(f, "b")]; got != 2 {
		t.Fatalf("cost(b) = %g, want 2", got)
	}
}

func TestLoopCostsScaleWithDepth(t *testing.T) {
	f := prep(t, `
func loop ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	costs := Costs(f, DefaultModel)
	// j: def in loop body (10) + phi use charged at b2's frequency (10).
	if got := costs[valueByName(f, "j")]; got != 20 {
		t.Fatalf("cost(j) = %g, want 20", got)
	}
	// n: def at depth 0 (1) + phi use charged at b0's frequency (1).
	if got := costs[valueByName(f, "n")]; got != 2 {
		t.Fatalf("cost(n) = %g, want 2", got)
	}
	// i: phi def in header (10) + uses: unary in b1 (10), two in b2
	// (10+10), one in b3 (1) = 41.
	if got := costs[valueByName(f, "i")]; got != 41 {
		t.Fatalf("cost(i) = %g, want 41", got)
	}
}

func TestCustomModel(t *testing.T) {
	f := prep(t, `
func flat ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}`)
	costs := Costs(f, Model{LoopBase: 2, StoreFactor: 3})
	// a: def 3 + uses 2 = 5.
	if got := costs[valueByName(f, "a")]; got != 5 {
		t.Fatalf("cost(a) = %g, want 5", got)
	}
}

func TestBlockFrequencies(t *testing.T) {
	f := prep(t, `
func loop ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	freqs := BlockFrequencies(f, DefaultModel)
	want := []float64{1, 10, 10, 1}
	for b, fw := range want {
		if freqs[b] != fw {
			t.Errorf("freq(b%d) = %g, want %g", b, freqs[b], fw)
		}
	}
}

func TestZeroModelDefaults(t *testing.T) {
	f := prep(t, `
func z ssa {
b0:
  a = param 0
  ret a
}`)
	a := Costs(f, Model{})
	b := Costs(f, DefaultModel)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zero model does not default")
		}
	}
}
