package spillcost

import (
	"testing"

	"repro/internal/ir"
)

func prep(t *testing.T, src string) *ir.Func {
	t.Helper()
	f := ir.MustParse(src)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	return f
}

func valueByName(f *ir.Func, name string) int {
	for id, n := range f.ValueName {
		if n == name {
			return id
		}
	}
	return -1
}

func TestFlatCosts(t *testing.T) {
	f := prep(t, `
func flat ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}`)
	costs := Costs(f, DefaultModel)
	// a: def (1) + two uses (2) = 3; b: def + one use = 2.
	if got := costs[valueByName(f, "a")]; got != 3 {
		t.Fatalf("cost(a) = %g, want 3", got)
	}
	if got := costs[valueByName(f, "b")]; got != 2 {
		t.Fatalf("cost(b) = %g, want 2", got)
	}
}

func TestLoopCostsScaleWithDepth(t *testing.T) {
	f := prep(t, `
func loop ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	costs := Costs(f, DefaultModel)
	// j: def in loop body (10) + phi use charged at b2's frequency (10).
	if got := costs[valueByName(f, "j")]; got != 20 {
		t.Fatalf("cost(j) = %g, want 20", got)
	}
	// n: def at depth 0 (1) + phi use charged at b0's frequency (1).
	if got := costs[valueByName(f, "n")]; got != 2 {
		t.Fatalf("cost(n) = %g, want 2", got)
	}
	// i: phi def in header (10) + uses: unary in b1 (10), two in b2
	// (10+10), one in b3 (1) = 41.
	if got := costs[valueByName(f, "i")]; got != 41 {
		t.Fatalf("cost(i) = %g, want 41", got)
	}
}

func TestCustomModel(t *testing.T) {
	f := prep(t, `
func flat ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}`)
	costs := Costs(f, Model{LoopBase: 2, StoreFactor: 3})
	// a: def 3 + uses 2 = 5.
	if got := costs[valueByName(f, "a")]; got != 5 {
		t.Fatalf("cost(a) = %g, want 5", got)
	}
}

func TestBlockFrequencies(t *testing.T) {
	f := prep(t, `
func loop ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	freqs := BlockFrequencies(f, DefaultModel)
	want := []float64{1, 10, 10, 1}
	for b, fw := range want {
		if freqs[b] != fw {
			t.Errorf("freq(b%d) = %g, want %g", b, freqs[b], fw)
		}
	}
}

func TestZeroModelDefaults(t *testing.T) {
	f := prep(t, `
func z ssa {
b0:
  a = param 0
  ret a
}`)
	a := Costs(f, Model{})
	b := Costs(f, DefaultModel)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zero model does not default")
		}
	}
}

// TestStoreFactorZeroExpressible is the regression test for the zero-value
// rewrite bug: Costs used to silently turn StoreFactor 0 (and LoopBase 0)
// back into the defaults, making "stores are free" inexpressible. Only the
// wholly-zero model defaults now.
func TestStoreFactorZeroExpressible(t *testing.T) {
	f := prep(t, `
func z ssa {
b0:
  a = param 0
  d = unary a
  b = arith a, a
  ret b
}`)
	costs := Costs(f, Model{LoopBase: 10, StoreFactor: 0})
	// d is defined but never used: with free stores its cost must be 0.
	if got := costs[valueByName(f, "d")]; got != 0 {
		t.Fatalf("cost(d) = %g under StoreFactor 0, want 0", got)
	}
	// a is used three times (cost 3) but its def adds nothing.
	if got := costs[valueByName(f, "a")]; got != 3 {
		t.Fatalf("cost(a) = %g under StoreFactor 0, want 3", got)
	}
	// The constructor route expresses the same model.
	if got := Costs(f, NewModel(10, 0)); got[valueByName(f, "d")] != 0 {
		t.Fatalf("cost(d) = %g via NewModel(10, 0), want 0", got[valueByName(f, "d")])
	}
}

// TestNewModelAllZeroVerbatim: NewModel is verbatim even in the both-zero
// corner — unlike the literal Model{}, NewModel(0, 0) means "loops free AND
// stores free", leaving only depth-0 use counts.
func TestNewModelAllZeroVerbatim(t *testing.T) {
	f := prep(t, `
func az ssa {
b0:
  a = param 0
  br b1
b1:
  i = phi [b0: a], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	costs := Costs(f, NewModel(0, 0))
	// j: defined and used only at loop depth 1 → 0 under LoopBase 0.
	if got := costs[valueByName(f, "j")]; got != 0 {
		t.Fatalf("cost(j) = %g under NewModel(0, 0), want 0", got)
	}
	// a: free def, one phi-edge use from depth-0 b0 → exactly 1.
	if got := costs[valueByName(f, "a")]; got != 1 {
		t.Fatalf("cost(a) = %g under NewModel(0, 0), want 1", got)
	}
	// The literal zero Model still means the paper defaults.
	if def := Costs(f, Model{}); def[valueByName(f, "j")] == 0 {
		t.Fatal("Model{} no longer defaults")
	}
}

// TestLoopBaseZeroExpressible: LoopBase 0 zeroes loop-body contributions
// (0^depth) instead of snapping back to 10.
func TestLoopBaseZeroExpressible(t *testing.T) {
	f := prep(t, `
func l ssa {
b0:
  a = param 0
  br b1
b1:
  i = phi [b0: a], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	costs := Costs(f, Model{LoopBase: 0, StoreFactor: 1})
	// j lives entirely at loop depth 1: def and uses all weigh 0^1 = 0.
	if got := costs[valueByName(f, "j")]; got != 0 {
		t.Fatalf("cost(j) = %g under LoopBase 0, want 0", got)
	}
	// a: def at depth 0 (cost 1) + phi use charged on the b0 edge (1).
	if got := costs[valueByName(f, "a")]; got != 2 {
		t.Fatalf("cost(a) = %g under LoopBase 0, want 2", got)
	}
}

// TestModelValidate pins the guard against meaningless models.
func TestModelValidate(t *testing.T) {
	for _, m := range []Model{{}, DefaultModel, {LoopBase: 10, StoreFactor: 0}, {LoopBase: 0, StoreFactor: 1}} {
		if err := m.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", m, err)
		}
	}
	for _, m := range []Model{{LoopBase: -1, StoreFactor: 1}, {LoopBase: 10, StoreFactor: -0.5}} {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v accepted", m)
		}
	}
}

// TestPhiArityOverflowCharged: a phi with more operands than predecessors
// is invalid IR, but the estimator must not silently drop the charge — the
// excess operand is charged at the phi's own block frequency.
func TestPhiArityOverflowCharged(t *testing.T) {
	f := prep(t, `
func p ssa {
b0:
  a = param 0
  br b1
b1:
  m = phi [b0: a]
  ret m
}`)
	// Corrupt the phi: append an extra operand beyond the predecessor list.
	extra := valueByName(f, "a")
	var base, corrupted []float64
	base = Costs(f, DefaultModel)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPhi {
				b.Instrs[i].Uses = append(b.Instrs[i].Uses, extra)
			}
		}
	}
	corrupted = Costs(f, DefaultModel)
	if corrupted[extra] <= base[extra] {
		t.Fatalf("excess phi operand dropped: cost(a) %g -> %g", base[extra], corrupted[extra])
	}
}
