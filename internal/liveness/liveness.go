// Package liveness computes live variable information for ir functions:
// per-block live-in/live-out sets, per-program-point live sets, and MaxLive,
// the maximal register pressure. Phi instructions follow the SSA convention:
// a phi's operands are live out of the corresponding predecessor blocks (not
// live into the phi's block), and the phi's result is live in.
//
// Internally every set is a dense bitset over value IDs; the public API
// stays sorted []int slices (ascending by construction of the bitset
// iteration), so callers are unaffected by the representation.
package liveness

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
)

// Info is the result of analysing one function.
type Info struct {
	F *ir.Func
	// LiveIn[b] / LiveOut[b] are sorted value ID slices for block b.
	LiveIn  [][]int
	LiveOut [][]int
	// Points lists the live set at every program point of every reachable
	// block, in layout order: for block b, Points entries appear for the
	// point before each non-phi instruction and one for the block end
	// (live-out). Phi defs are folded into the block's first point.
	Points []Point
	// MaxLive is the maximum, over all points, of the live-set size.
	MaxLive int
}

// Point is the live set at one program point.
type Point struct {
	Block int
	// Index is the instruction index the set applies before; len(Instrs)
	// denotes the block-end point.
	Index int
	// Live is the sorted set of values live at (i.e. across) this point.
	Live []int
}

// blockSets carries the per-block bitsets of the dataflow problem.
type blockSets struct {
	use, def, phiDef []bitset.Set
	// phiUse[b][p] holds the values used by phis of b for predecessor p
	// (nil when b has no phis reading from p).
	phiUse []map[int]bitset.Set
}

// Scratch recycles the analysis' backing memory across functions: dataflow
// bitsets, live-in/out slices and per-point snapshots are carved from one
// arena that is reset per Compute call instead of reallocated. Batch
// pipeline workers hold one Scratch each and run thousands of functions
// through it.
//
// The lifetime contract is strict: an Info returned by (*Scratch).Compute —
// including every []int inside LiveIn, LiveOut and Points — is valid only
// until the next Compute call on the same Scratch. Callers that retain
// liveness results across functions must use the package-level Compute.
// A Scratch is not safe for concurrent use.
type Scratch struct {
	arena bitset.Arena
}

// NewScratch returns an empty reusable scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Compute runs the analysis reusing s's backing memory. See the Scratch
// lifetime contract.
func (s *Scratch) Compute(f *ir.Func) *Info {
	s.arena.Reset()
	return compute(f, &s.arena)
}

// Compute runs the analysis with a private arena; the result does not alias
// any shared memory and stays valid indefinitely.
func Compute(f *ir.Func) *Info {
	return compute(f, new(bitset.Arena))
}

func compute(f *ir.Func, arena *bitset.Arena) *Info {
	n := len(f.Blocks)
	nv := f.NumValues
	info := &Info{
		F:       f,
		LiveIn:  make([][]int, n),
		LiveOut: make([][]int, n),
	}
	sets := blockSets{
		use:    arena.Slab(n, nv),
		def:    arena.Slab(n, nv),
		phiDef: arena.Slab(n, nv),
		phiUse: make([]map[int]bitset.Set, n),
	}
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				sets.phiDef[b.ID].Add(ins.Def)
				sets.def[b.ID].Add(ins.Def)
				for k, u := range ins.Uses {
					if k >= len(b.Preds) {
						continue
					}
					p := b.Preds[k]
					if sets.phiUse[b.ID] == nil {
						sets.phiUse[b.ID] = make(map[int]bitset.Set, len(b.Preds))
					}
					if sets.phiUse[b.ID][p] == nil {
						sets.phiUse[b.ID][p] = arena.Set(nv)
					}
					sets.phiUse[b.ID][p].Add(u)
				}
				continue
			}
			for _, u := range ins.Uses {
				if !sets.def[b.ID].Has(u) {
					sets.use[b.ID].Add(u)
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				sets.def[b.ID].Add(ins.Def)
			}
		}
	}
	liveIn := arena.Slab(n, nv)
	liveOut := arena.Slab(n, nv)
	// Backward fixpoint. LiveIn(b) = use(b) ∪ phiDef(b) ∪ (LiveOut(b) \ def(b))
	// (phi defs are "defined at the block boundary" and count as live-in).
	// LiveOut(b) = ∪_{s∈succ(b)} (LiveIn(s) \ phiDef(s)) ∪ phiUse(s)[b].
	tmp := arena.Set(nv)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b.ID]
			for _, s := range b.Succs {
				tmp.CopyFrom(liveIn[s])
				tmp.AndNot(sets.phiDef[s])
				if out.OrChanged(tmp) {
					changed = true
				}
				if pu := sets.phiUse[s][b.ID]; pu != nil && out.OrChanged(pu) {
					changed = true
				}
			}
			in := liveIn[b.ID]
			if in.OrChanged(sets.use[b.ID]) {
				changed = true
			}
			if in.OrChanged(sets.phiDef[b.ID]) {
				changed = true
			}
			tmp.CopyFrom(out)
			tmp.AndNot(sets.def[b.ID])
			if in.OrChanged(tmp) {
				changed = true
			}
		}
	}
	for i := 0; i < n; i++ {
		info.LiveIn[i] = liveIn[i].AppendTo(arena.Ints(liveIn[i].Count()))
		info.LiveOut[i] = liveOut[i].AppendTo(arena.Ints(liveOut[i].Count()))
	}
	info.computePoints(liveOut, arena)
	return info
}

// computePoints walks each block backward from its live-out set, recording
// the live set before every non-phi instruction plus the block-end point.
func (info *Info) computePoints(liveOut []bitset.Set, arena *bitset.Arena) {
	f := info.F
	nv := f.NumValues
	live := arena.Set(nv)
	snapshot := func() []int {
		return live.AppendTo(arena.Ints(live.Count()))
	}
	for _, b := range f.Blocks {
		live.CopyFrom(liveOut[b.ID])
		endPoint := Point{Block: b.ID, Index: len(b.Instrs), Live: snapshot()}
		var pts []Point
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ins := &b.Instrs[i]
			if ins.Op == ir.OpPhi {
				// Phi defs live from block entry; the first recorded point
				// below (live-in) already includes them via the def being
				// live across. Remove nothing, add nothing here.
				continue
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				// The definition instant: the result register is written
				// while everything live after the instruction still holds
				// its register. For a dead definition this set is strictly
				// larger than any surrounding live set, and it is what the
				// interference graph's cliques reflect — record it so
				// MaxLive equals the clique number on SSA functions.
				if !live.Has(ins.Def) {
					live.Add(ins.Def)
					pts = append(pts, Point{Block: b.ID, Index: i, Live: snapshot()})
				}
				live.Remove(ins.Def)
			}
			for _, u := range ins.Uses {
				live.Add(u)
			}
			pts = append(pts, Point{Block: b.ID, Index: i, Live: snapshot()})
		}
		// pts is in reverse layout order; flip, then append block end.
		for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
		// Phi defs are live-in: fold them into the first point so pressure
		// at the block boundary is accounted for.
		phiDefs := make([]int, 0, 4)
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				phiDefs = append(phiDefs, ins.Def)
			}
		}
		if len(phiDefs) > 0 {
			sort.Ints(phiDefs)
			var first *Point
			if len(pts) > 0 {
				first = &pts[0]
			} else {
				first = &endPoint
			}
			first.Live = mergeSorted(arena.Ints(len(first.Live)+len(phiDefs)), first.Live, phiDefs)
		}
		pts = append(pts, endPoint)
		info.Points = append(info.Points, pts...)
	}
	for _, p := range info.Points {
		if len(p.Live) > info.MaxLive {
			info.MaxLive = len(p.Live)
		}
	}
}

// LiveSets returns the distinct live sets over all program points, each
// sorted, with duplicates removed. For a strict-SSA function, the maximal
// ones among these are exactly the maximal cliques of the interference
// graph.
func (info *Info) LiveSets() [][]int {
	intern := bitset.NewInterner(len(info.Points))
	for _, p := range info.Points {
		if len(p.Live) == 0 {
			continue
		}
		intern.InternRef(p.Live)
	}
	return intern.Sets()
}

// mergeSorted merges two sorted slices into out (an empty slice with enough
// capacity) without duplicates.
func mergeSorted(out, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
