// Package liveness computes live variable information for ir functions:
// per-block live-in/live-out sets, per-program-point live sets, and MaxLive,
// the maximal register pressure. Phi instructions follow the SSA convention:
// a phi's operands are live out of the corresponding predecessor blocks (not
// live into the phi's block), and the phi's result is live in.
package liveness

import (
	"sort"
	"strconv"

	"repro/internal/ir"
)

// Info is the result of analysing one function.
type Info struct {
	F *ir.Func
	// LiveIn[b] / LiveOut[b] are sorted value ID slices for block b.
	LiveIn  [][]int
	LiveOut [][]int
	// Points lists the live set at every program point of every reachable
	// block, in layout order: for block b, Points entries appear for the
	// point before each non-phi instruction and one for the block end
	// (live-out). Phi defs are folded into the block's first point.
	Points []Point
	// MaxLive is the maximum, over all points, of the live-set size.
	MaxLive int
}

// Point is the live set at one program point.
type Point struct {
	Block int
	// Index is the instruction index the set applies before; len(Instrs)
	// denotes the block-end point.
	Index int
	// Live is the sorted set of values live at (i.e. across) this point.
	Live []int
}

// Compute runs the analysis.
func Compute(f *ir.Func) *Info {
	n := len(f.Blocks)
	info := &Info{
		F:       f,
		LiveIn:  make([][]int, n),
		LiveOut: make([][]int, n),
	}
	// use[b]: upward-exposed non-phi uses; def[b]: values defined in b
	// (including phi defs); phiUse[b][p]: values used by phis of b for
	// predecessor p.
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	phiDef := make([]map[int]bool, n)
	phiUse := make([]map[int]map[int]bool, n)
	for _, b := range f.Blocks {
		use[b.ID] = make(map[int]bool)
		def[b.ID] = make(map[int]bool)
		phiDef[b.ID] = make(map[int]bool)
		phiUse[b.ID] = make(map[int]map[int]bool)
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				phiDef[b.ID][ins.Def] = true
				def[b.ID][ins.Def] = true
				for k, u := range ins.Uses {
					if k >= len(b.Preds) {
						continue
					}
					p := b.Preds[k]
					if phiUse[b.ID][p] == nil {
						phiUse[b.ID][p] = make(map[int]bool)
					}
					phiUse[b.ID][p][u] = true
				}
				continue
			}
			for _, u := range ins.Uses {
				if !def[b.ID][u] {
					use[b.ID][u] = true
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				def[b.ID][ins.Def] = true
			}
		}
	}
	liveIn := make([]map[int]bool, n)
	liveOut := make([]map[int]bool, n)
	for i := range liveIn {
		liveIn[i] = make(map[int]bool)
		liveOut[i] = make(map[int]bool)
	}
	// Backward fixpoint. LiveIn(b) = use(b) ∪ (LiveOut(b) \ (def(b) \ phiDef(b)))
	// ... with the convention that phi defs are live-in of b (they are
	// "defined at the block boundary"): LiveIn(b) = use(b) ∪ phiDef(b) ∪
	// (LiveOut(b) \ def(b)).
	// LiveOut(b) = ∪_{s∈succ(b)} (LiveIn(s) \ phiDef(s)) ∪ phiUse(s)[b].
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b.ID]
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					if !phiDef[s][v] && !out[v] {
						out[v] = true
						changed = true
					}
				}
				for v := range phiUse[s][b.ID] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b.ID]
			for v := range use[b.ID] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range phiDef[b.ID] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[b.ID][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		info.LiveIn[i] = sortedKeys(liveIn[i])
		info.LiveOut[i] = sortedKeys(liveOut[i])
	}
	info.computePoints(liveOut)
	return info
}

// computePoints walks each block backward from its live-out set, recording
// the live set before every non-phi instruction plus the block-end point.
func (info *Info) computePoints(liveOut []map[int]bool) {
	f := info.F
	for _, b := range f.Blocks {
		live := make(map[int]bool, len(liveOut[b.ID]))
		for v := range liveOut[b.ID] {
			live[v] = true
		}
		endPoint := Point{Block: b.ID, Index: len(b.Instrs), Live: sortedKeys(live)}
		var pts []Point
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ins := &b.Instrs[i]
			if ins.Op == ir.OpPhi {
				// Phi defs live from block entry; the first recorded point
				// below (live-in) already includes them via the def being
				// live across. Remove nothing, add nothing here.
				continue
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				// The definition instant: the result register is written
				// while everything live after the instruction still holds
				// its register. For a dead definition this set is strictly
				// larger than any surrounding live set, and it is what the
				// interference graph's cliques reflect — record it so
				// MaxLive equals the clique number on SSA functions.
				if !live[ins.Def] {
					instant := make(map[int]bool, len(live)+1)
					for v := range live {
						instant[v] = true
					}
					instant[ins.Def] = true
					pts = append(pts, Point{Block: b.ID, Index: i, Live: sortedKeys(instant)})
				}
				delete(live, ins.Def)
			}
			for _, u := range ins.Uses {
				live[u] = true
			}
			pts = append(pts, Point{Block: b.ID, Index: i, Live: sortedKeys(live)})
		}
		// pts is in reverse layout order; flip, then append block end.
		for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
		// Phi defs are live-in: fold them into the first point so pressure
		// at the block boundary is accounted for.
		phiDefs := make([]int, 0, 4)
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				phiDefs = append(phiDefs, ins.Def)
			}
		}
		if len(phiDefs) > 0 {
			var first *Point
			if len(pts) > 0 {
				first = &pts[0]
			} else {
				first = &endPoint
			}
			first.Live = mergeSorted(first.Live, phiDefs)
		}
		pts = append(pts, endPoint)
		info.Points = append(info.Points, pts...)
	}
	for _, p := range info.Points {
		if len(p.Live) > info.MaxLive {
			info.MaxLive = len(p.Live)
		}
	}
}

// LiveSets returns the distinct live sets over all program points, each
// sorted, with duplicates removed. For a strict-SSA function, the maximal
// ones among these are exactly the maximal cliques of the interference
// graph.
func (info *Info) LiveSets() [][]int {
	seen := make(map[string]bool)
	var out [][]int
	for _, p := range info.Points {
		if len(p.Live) == 0 {
			continue
		}
		key := fingerprint(p.Live)
		if !seen[key] {
			seen[key] = true
			out = append(out, p.Live)
		}
	}
	return out
}

func fingerprint(s []int) string {
	buf := make([]byte, 0, len(s)*4)
	for _, v := range s {
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func mergeSorted(a, b []int) []int {
	m := make(map[int]bool, len(a)+len(b))
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		m[v] = true
	}
	return sortedKeys(m)
}
