// Package liveness computes live variable information for ir functions:
// per-block live-in/live-out sets, per-program-point live sets, and MaxLive,
// the maximal register pressure. Phi instructions follow the SSA convention:
// a phi's operands are live out of the corresponding predecessor blocks (not
// live into the phi's block), and the phi's result is live in.
//
// Internally every set is a dense bitset over value IDs; the public API
// stays sorted []int slices (ascending by construction of the bitset
// iteration), so callers are unaffected by the representation.
package liveness

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/budget"
	"repro/internal/ir"
)

// Info is the result of analysing one function.
type Info struct {
	F *ir.Func
	// LiveIn[b] / LiveOut[b] are sorted value ID slices for block b.
	LiveIn  [][]int
	LiveOut [][]int
	// Points lists the live set at every program point of every reachable
	// block, in layout order: for block b, Points entries appear for the
	// point before each non-phi instruction and one for the block end
	// (live-out). Phi defs are folded into the block's first point.
	Points []Point
	// DefPointOf maps each value ID to the index in Points of its
	// definition instant — the program point at which the value's register
	// is written while everything live after the defining instruction still
	// holds its register. For phi defs this is the block's first point
	// (phis define at the block boundary). -1 for values with no
	// definition. Only meaningful for single-definition (strict SSA)
	// functions; with multiple definitions the last block processed wins.
	// This is the hook the IFG-free fast path builds its clique structure
	// from: Points[DefPointOf[v]].Live is exactly the def-point clique the
	// interference graph would materialize around v.
	DefPointOf []int
	// MaxLive is the maximum, over all points, of the live-set size.
	MaxLive int
}

// Point is the live set at one program point.
type Point struct {
	Block int
	// Index is the instruction index the set applies before; len(Instrs)
	// denotes the block-end point.
	Index int
	// Live is the sorted set of values live at (i.e. across) this point.
	Live []int
}

// blockSets carries the per-block bitsets of the dataflow problem.
type blockSets struct {
	use, def, phiDef []bitset.Set
	// Phi-operand liveness, flattened: block b's predecessor slot k (the
	// k-th operand of its phis) is phiUse[phiOff[b]+k]. Blocks without phis
	// get no slots (phiOff[b] == phiOff[b+1]), so the whole table is two
	// arena carvings instead of one map per phi block.
	phiOff []int
	phiUse []bitset.Set
}

// Scratch recycles the analysis' backing memory across functions: dataflow
// bitsets, live-in/out slices, per-point snapshots and the program-point
// list itself are carved from reusable storage that is reset per Compute
// call instead of reallocated. Batch pipeline workers hold one Scratch each
// and run thousands of functions through it.
//
// The lifetime contract is strict: an Info returned by (*Scratch).Compute —
// including every []int inside LiveIn, LiveOut and Points — is valid only
// until the next Compute call on the same Scratch. Callers that retain
// liveness results across functions must use the package-level Compute.
// A Scratch is not safe for concurrent use.
type Scratch struct {
	arena  bitset.Arena
	points []Point
}

// NewScratch returns an empty reusable scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Compute runs the analysis reusing s's backing memory. See the Scratch
// lifetime contract.
func (s *Scratch) Compute(f *ir.Func) *Info {
	info, _ := s.ComputeBudget(f, nil)
	return info
}

// ComputeBudget is Compute under a resource budget: each dataflow fixpoint
// sweep charges the block count and each program-point block walk charges
// its instruction count. On a budget trip it stops and returns (nil, the
// meter's typed error); a nil meter never trips.
func (s *Scratch) ComputeBudget(f *ir.Func, m *budget.Meter) (*Info, error) {
	s.arena.Reset()
	info := compute(f, &s.arena, s.points[:0], m)
	if info == nil {
		return nil, m.Err()
	}
	s.points = info.Points
	return info, nil
}

// Compute runs the analysis with a private arena; the result does not alias
// any shared memory and stays valid indefinitely.
func Compute(f *ir.Func) *Info {
	return compute(f, new(bitset.Arena), nil, nil)
}

// ComputeBudget is the budget-governed form of the package-level Compute.
func ComputeBudget(f *ir.Func, m *budget.Meter) (*Info, error) {
	info := compute(f, new(bitset.Arena), nil, m)
	if info == nil {
		return nil, m.Err()
	}
	return info, nil
}

func compute(f *ir.Func, arena *bitset.Arena, ptsBuf []Point, meter *budget.Meter) *Info {
	n := len(f.Blocks)
	nv := f.NumValues
	info := &Info{
		F:       f,
		LiveIn:  make([][]int, n),
		LiveOut: make([][]int, n),
	}
	sets := blockSets{
		use:    arena.Slab(n, nv),
		def:    arena.Slab(n, nv),
		phiDef: arena.Slab(n, nv),
	}
	sets.phiOff = arena.Ints(n + 1)
	sets.phiOff = sets.phiOff[:n+1]
	slots := 0
	for _, b := range f.Blocks {
		sets.phiOff[b.ID] = slots
		if len(b.Instrs) > 0 && b.Instrs[0].Op == ir.OpPhi {
			slots += len(b.Preds)
		}
	}
	sets.phiOff[n] = slots
	sets.phiUse = arena.Slab(slots, nv)
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				sets.phiDef[b.ID].Add(ins.Def)
				sets.def[b.ID].Add(ins.Def)
				for k, u := range ins.Uses {
					// The second guard covers malformed inputs (a phi not
					// leading its block gets no slots).
					if k >= len(b.Preds) || sets.phiOff[b.ID]+k >= sets.phiOff[b.ID+1] {
						continue
					}
					sets.phiUse[sets.phiOff[b.ID]+k].Add(u)
				}
				continue
			}
			for _, u := range ins.Uses {
				if !sets.def[b.ID].Has(u) {
					sets.use[b.ID].Add(u)
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				sets.def[b.ID].Add(ins.Def)
			}
		}
	}
	liveIn := arena.Slab(n, nv)
	liveOut := arena.Slab(n, nv)
	// Backward fixpoint. LiveIn(b) = use(b) ∪ phiDef(b) ∪ (LiveOut(b) \ def(b))
	// (phi defs are "defined at the block boundary" and count as live-in).
	// LiveOut(b) = ∪_{s∈succ(b)} (LiveIn(s) \ phiDef(s)) ∪ phiUse(s)[b].
	tmp := arena.Set(nv)
	for changed := true; changed; {
		if !meter.Charge(n) {
			return nil // budget tripped mid-fixpoint: no partial results
		}
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b.ID]
			for _, s := range b.Succs {
				tmp.CopyFrom(liveIn[s])
				tmp.AndNot(sets.phiDef[s])
				if out.OrChanged(tmp) {
					changed = true
				}
				if lo, hi := sets.phiOff[s], sets.phiOff[s+1]; hi > lo {
					for k, p := range f.Blocks[s].Preds {
						if p == b.ID && out.OrChanged(sets.phiUse[lo+k]) {
							changed = true
						}
					}
				}
			}
			in := liveIn[b.ID]
			if in.OrChanged(sets.use[b.ID]) {
				changed = true
			}
			if in.OrChanged(sets.phiDef[b.ID]) {
				changed = true
			}
			tmp.CopyFrom(out)
			tmp.AndNot(sets.def[b.ID])
			if in.OrChanged(tmp) {
				changed = true
			}
		}
	}
	for i := 0; i < n; i++ {
		info.LiveIn[i] = liveIn[i].AppendTo(arena.Ints(liveIn[i].Count()))
		info.LiveOut[i] = liveOut[i].AppendTo(arena.Ints(liveOut[i].Count()))
	}
	info.Points = ptsBuf
	if !info.computePoints(liveOut, arena, meter) {
		return nil
	}
	return info
}

// computePoints walks each block backward from its live-out set, recording
// the live set before every non-phi instruction plus the block-end point,
// and the definition instant of every value (DefPointOf). It reports false
// when the budget meter trips mid-walk.
func (info *Info) computePoints(liveOut []bitset.Set, arena *bitset.Arena, meter *budget.Meter) bool {
	f := info.F
	nv := f.NumValues
	live := arena.Set(nv)
	snapshot := func() []int {
		return live.AppendTo(arena.Ints(live.Count()))
	}
	info.DefPointOf = arena.Ints(nv)
	info.DefPointOf = info.DefPointOf[:nv]
	for i := range info.DefPointOf {
		info.DefPointOf[i] = -1
	}
	var phiBuf []int
	for _, b := range f.Blocks {
		if !meter.Charge(len(b.Instrs) + 1) {
			return false
		}
		live.CopyFrom(liveOut[b.ID])
		endPoint := Point{Block: b.ID, Index: len(b.Instrs), Live: snapshot()}
		// Points of this block are appended to info.Points in reverse layout
		// order starting at base, then flipped in place — no per-block
		// staging slice. Def instants are first recorded as backward
		// positions within the block segment, encoded negative (-(bwd+3), or
		// -2 for the block-end point) so the forward translation pass below
		// can tell them apart from the final Points indices of earlier
		// blocks.
		base := len(info.Points)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ins := &b.Instrs[i]
			if ins.Op == ir.OpPhi {
				// Phi defs live from block entry; the first recorded point
				// below (live-in) already includes them via the def being
				// live across. Remove nothing, add nothing here.
				continue
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				// The definition instant: the result register is written
				// while everything live after the instruction still holds
				// its register. For a dead definition this set is strictly
				// larger than any surrounding live set, and it is what the
				// interference graph's cliques reflect — record it so
				// MaxLive equals the clique number on SSA functions.
				if !live.Has(ins.Def) {
					live.Add(ins.Def)
					info.Points = append(info.Points, Point{Block: b.ID, Index: i, Live: snapshot()})
					info.DefPointOf[ins.Def] = -(len(info.Points) - base - 1 + 3)
				} else if len(info.Points) > base {
					// Live def: the instant is the point just after the
					// instruction, i.e. the last point recorded so far.
					info.DefPointOf[ins.Def] = -(len(info.Points) - base - 1 + 3)
				} else {
					info.DefPointOf[ins.Def] = -2 // block-end point
				}
				live.Remove(ins.Def)
			}
			for _, u := range ins.Uses {
				live.Add(u)
			}
			info.Points = append(info.Points, Point{Block: b.ID, Index: i, Live: snapshot()})
		}
		m := len(info.Points) - base
		// The segment is in reverse layout order; flip, then append the
		// block end.
		seg := info.Points[base:]
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			seg[i], seg[j] = seg[j], seg[i]
		}
		// Phi defs are live-in: fold them into the first point so pressure
		// at the block boundary is accounted for.
		phiDefs := phiBuf[:0]
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				phiDefs = append(phiDefs, ins.Def)
			}
		}
		phiBuf = phiDefs
		if len(phiDefs) > 0 {
			sort.Ints(phiDefs)
			var first *Point
			if m > 0 {
				first = &seg[0]
			} else {
				first = &endPoint
			}
			first.Live = mergeSorted(arena.Ints(len(first.Live)+len(phiDefs)), first.Live, phiDefs)
		}
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi || !ins.Op.HasDef() || ins.Def == ir.NoValue {
				continue
			}
			switch dp := info.DefPointOf[ins.Def]; {
			case dp == -2:
				info.DefPointOf[ins.Def] = base + m // block-end point
			case dp <= -3:
				info.DefPointOf[ins.Def] = base + (m - 1 - (-dp - 3))
			}
		}
		for _, pd := range phiDefs {
			info.DefPointOf[pd] = base // first point (or block end when m == 0)
		}
		info.Points = append(info.Points, endPoint)
	}
	for _, p := range info.Points {
		if len(p.Live) > info.MaxLive {
			info.MaxLive = len(p.Live)
		}
	}
	return true
}

// LiveSets returns the distinct live sets over all program points, each
// sorted, with duplicates removed. For a strict-SSA function, the maximal
// ones among these are exactly the maximal cliques of the interference
// graph.
func (info *Info) LiveSets() [][]int {
	intern := bitset.NewInterner(len(info.Points))
	for _, p := range info.Points {
		if len(p.Live) == 0 {
			continue
		}
		intern.InternRef(p.Live)
	}
	return intern.Sets()
}

// mergeSorted merges two sorted slices into out (an empty slice with enough
// capacity) without duplicates.
func mergeSorted(out, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
