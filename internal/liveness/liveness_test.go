package liveness

import (
	"slices"
	"sort"
	"testing"

	"repro/internal/ir"
)

func names(f *ir.Func) map[string]int {
	out := map[string]int{}
	for id, n := range f.ValueName {
		out[n] = id
	}
	return out
}

func sortedNames(f *ir.Func, vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = f.NameOf(v)
	}
	sort.Strings(out)
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStraightLine(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  b = arith a, a
  c = arith b, a
  ret c
}`)
	info := Compute(f)
	if len(info.LiveIn[0]) != 0 {
		t.Fatalf("live-in of entry = %v", info.LiveIn[0])
	}
	if len(info.LiveOut[0]) != 0 {
		t.Fatalf("live-out of exit block = %v", info.LiveOut[0])
	}
	// Pressure: a alone; then a,b; then c. MaxLive = 2.
	if info.MaxLive != 2 {
		t.Fatalf("MaxLive = %d, want 2", info.MaxLive)
	}
}

func TestDiamondLiveness(t *testing.T) {
	f := ir.MustParse(`
func d ssa {
b0:
  x = param 0
  k = param 1
  c = unary x
  condbr c, b1, b2
b1:
  y = arith x, k
  br b3
b2:
  z = arith x, x
  br b3
b3:
  m = phi [b1: y], [b2: z]
  r = arith m, k
  ret r
}`)
	info := Compute(f)
	n := names(f)
	// k is live into both arms (used by b1 and by b3).
	liveInB1 := sortedNames(f, info.LiveIn[1])
	if !eq(liveInB1, []string{"k", "x"}) {
		t.Fatalf("live-in b1 = %v", liveInB1)
	}
	// Phi semantics: m is live-in of b3, y/z are not.
	liveInB3 := sortedNames(f, info.LiveIn[3])
	if !eq(liveInB3, []string{"k", "m"}) {
		t.Fatalf("live-in b3 = %v", liveInB3)
	}
	// y is live out of b1 (phi use on that edge), z out of b2.
	if got := sortedNames(f, info.LiveOut[1]); !eq(got, []string{"k", "y"}) {
		t.Fatalf("live-out b1 = %v", got)
	}
	if got := sortedNames(f, info.LiveOut[2]); !eq(got, []string{"k", "z"}) {
		t.Fatalf("live-out b2 = %v", got)
	}
	_ = n
}

func TestLoopLiveness(t *testing.T) {
	f := ir.MustParse(`
func l ssa {
b0:
  n = param 0
  inv = param 1
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, inv
  br b1
b3:
  r = arith i, inv
  ret r
}`)
	info := Compute(f)
	// inv is live throughout the loop (used in body and after).
	if got := sortedNames(f, info.LiveIn[1]); !eq(got, []string{"i", "inv"}) {
		t.Fatalf("live-in b1 = %v", got)
	}
	if got := sortedNames(f, info.LiveOut[2]); !eq(got, []string{"inv", "j"}) {
		t.Fatalf("live-out b2 = %v", got)
	}
	// On the back edge, j is live out of b2 as a phi use; i dies at its
	// last use in b2.
	for _, p := range info.Points {
		if len(p.Live) > info.MaxLive {
			t.Fatal("point exceeds MaxLive")
		}
	}
}

func TestDeadDefStillOccupiesPoint(t *testing.T) {
	f := ir.MustParse(`
func dead ssa {
b0:
  a = param 0
  b = arith a, a
  ret a
}`)
	info := Compute(f)
	// b is dead, but it still needs a destination register at the instant
	// it is defined, while a holds its register: MaxLive = 2, and the
	// def-instant point {a, b} is recorded.
	if info.MaxLive != 2 {
		t.Fatalf("MaxLive = %d, want 2", info.MaxLive)
	}
	found := false
	for _, p := range info.Points {
		if len(p.Live) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("def-instant point {a, b} missing")
	}
}

func TestLiveSetsDeduplicated(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  d = arith c, b
  e = arith d, a
  ret e
}`)
	info := Compute(f)
	sets := info.LiveSets()
	seen := map[string]bool{}
	for _, s := range sets {
		key := ""
		for _, v := range s {
			key += "," + f.NameOf(v)
		}
		if seen[key] {
			t.Fatalf("duplicate live set %v", s)
		}
		seen[key] = true
	}
}

func TestMaxLiveMatchesPointMaximum(t *testing.T) {
	f := ir.MustParse(`
func m ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  f1 = arith e, a
  ret f1
}`)
	info := Compute(f)
	max := 0
	for _, p := range info.Points {
		if len(p.Live) > max {
			max = len(p.Live)
		}
	}
	if info.MaxLive != max {
		t.Fatalf("MaxLive = %d, point max = %d", info.MaxLive, max)
	}
	// a, b, c live simultaneously before d; a, c, d before e ⇒ MaxLive 3.
	if info.MaxLive != 3 {
		t.Fatalf("MaxLive = %d, want 3", info.MaxLive)
	}
}

func TestPhiDefsCountedAtBoundary(t *testing.T) {
	// Two phis in one block both occupy registers at the block boundary.
	f := ir.MustParse(`
func p ssa {
b0:
  a = param 0
  b = param 1
  c = unary a
  condbr c, b1, b2
b1:
  x1 = arith a, a
  y1 = arith b, b
  br b3
b2:
  x2 = arith a, b
  y2 = arith b, a
  br b3
b3:
  x = phi [b1: x1], [b2: x2]
  y = phi [b1: y1], [b2: y2]
  r = arith x, y
  ret r
}`)
	info := Compute(f)
	if got := sortedNames(f, info.LiveIn[3]); !eq(got, []string{"x", "y"}) {
		t.Fatalf("live-in b3 = %v", got)
	}
	// First point of b3 must include both phi defs.
	for _, p := range info.Points {
		if p.Block == 3 {
			if len(p.Live) < 2 {
				t.Fatalf("first point of b3 has %v", sortedNames(f, p.Live))
			}
			break
		}
	}
}

func TestNonSSALiveness(t *testing.T) {
	// x redefined on both arms; both defs reach the use in b3.
	f := ir.MustParse(`
func ns {
b0:
  x = param 0
  c = unary x
  condbr c, b1, b2
b1:
  x = arith x, x
  br b3
b2:
  x = arith x, c
  br b3
b3:
  ret x
}`)
	info := Compute(f)
	if got := sortedNames(f, info.LiveIn[3]); !eq(got, []string{"x"}) {
		t.Fatalf("live-in b3 = %v", got)
	}
	if got := sortedNames(f, info.LiveOut[1]); !eq(got, []string{"x"}) {
		t.Fatalf("live-out b1 = %v", got)
	}
}

// TestScratchComputeMatchesFresh: the arena-backed Scratch must produce the
// same analysis as the package-level Compute, call after call, including
// after the arena has been recycled by a differently-shaped function.
func TestScratchComputeMatchesFresh(t *testing.T) {
	srcs := []string{`
func a ssa {
b0:
  x = param 0
  y = param 1
  br b1
b1:
  i = phi [b0: x], [b1: j]
  j = arith i, y
  c = unary j
  condbr c, b1, b2
b2:
  ret j
}`, `
func b ssa {
b0:
  x = param 0
  ret x
}`, `
func c {
b0:
  v = param 0
  w = arith v, v
  v = unary w
  store v, w
  ret v
}`}
	s := NewScratch()
	// Two passes: the second exercises reuse of a dirtied arena.
	for pass := 0; pass < 2; pass++ {
		for _, src := range srcs {
			f := ir.MustParse(src)
			fresh := Compute(f)
			reused := s.Compute(f)
			if len(fresh.Points) != len(reused.Points) || fresh.MaxLive != reused.MaxLive {
				t.Fatalf("pass %d %s: point/maxlive mismatch", pass, f.Name)
			}
			for i := range fresh.Points {
				if !slices.Equal(fresh.Points[i].Live, reused.Points[i].Live) {
					t.Fatalf("pass %d %s: point %d live set differs: %v vs %v",
						pass, f.Name, i, fresh.Points[i].Live, reused.Points[i].Live)
				}
			}
			for b := range fresh.LiveIn {
				if !slices.Equal(fresh.LiveIn[b], reused.LiveIn[b]) ||
					!slices.Equal(fresh.LiveOut[b], reused.LiveOut[b]) {
					t.Fatalf("pass %d %s: block %d live-in/out differs", pass, f.Name, b)
				}
			}
		}
	}
}
