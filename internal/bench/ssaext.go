package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/optimal"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
	"repro/internal/ssa"
)

// SSAExtensionRow is one register count of the SSA-construction extension
// experiment (paper §8: deploying layered allocation in an SSA-based
// decoupled framework even for JIT inputs).
type SSAExtensionRow struct {
	R int
	// LHDirect is the layered heuristic's total spill cost on the original
	// non-SSA methods; OptDirect the exact optimum there.
	LHDirect, OptDirect float64
	// BFPLSSA is BFPL's total cost after converting each method to strict
	// SSA (chordal graphs); OptSSA the exact optimum on the SSA form.
	BFPLSSA, OptSSA float64
}

// RunSSAExtension converts every JVM98-style method to strict SSA and
// compares direct non-chordal allocation (LH) against SSA-based
// layered-optimal allocation (BFPL), each normalized by the exact optimum of
// its own representation. Spill costs across the two representations use the
// same frequency×accesses model; SSA splits live ranges at phis, so its
// absolute optimum is usually lower — the comparison of interest is each
// heuristic's gap to its own optimum.
func RunSSAExtension(registers []int) ([]SSAExtensionRow, error) {
	progs := SuiteJVM98.Load()
	type converted struct {
		orig, ssaF *Program
	}
	var pairs []converted
	for i := range progs {
		g, err := ssa.Construct(progs[i].F)
		if err != nil {
			return nil, fmt.Errorf("bench: SSA conversion of %s failed: %w", progs[i].Name, err)
		}
		sp := Program{Name: progs[i].Name + ".ssa", F: g, Bench: progs[i].Bench}
		pairs = append(pairs, converted{orig: &progs[i], ssaF: &sp})
	}
	var rows []SSAExtensionRow
	for _, r := range registers {
		row := SSAExtensionRow{R: r}
		for _, pair := range pairs {
			lh, opt, err := costPair(pair.orig.F, r, layered.NewLH())
			if err != nil {
				return nil, err
			}
			row.LHDirect += lh
			row.OptDirect += opt
			bfpl, optSSA, err := costPair(pair.ssaF.F, r, layered.BFPL())
			if err != nil {
				return nil, err
			}
			row.BFPLSSA += bfpl
			row.OptSSA += optSSA
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].R < rows[j].R })
	return rows, nil
}

// costPair returns (heuristic cost, optimal cost) for one function at one
// register count, validating both allocations.
func costPair(f *ir.Func, r int, a alloc.Allocator) (float64, float64, error) {
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	info := liveness.Compute(f)
	build := ifg.FromLiveness(info)
	costs := spillcost.Costs(f, spillcost.DefaultModel)
	p := alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: r})
	res := a.Allocate(p)
	if err := p.Validate(res); err != nil {
		return 0, 0, fmt.Errorf("bench: %s on %s (R=%d): %w", a.Name(), f.Name, r, err)
	}
	opt := optimal.New().Allocate(p)
	if err := p.Validate(opt); err != nil {
		return 0, 0, fmt.Errorf("bench: Optimal on %s (R=%d): %w", f.Name, r, err)
	}
	return res.SpillCost(p), opt.SpillCost(p), nil
}

// FormatSSAExtension renders the extension table.
func FormatSSAExtension(rows []SSAExtensionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s\n",
		"registers", "LH/opt(direct)", "BFPL/opt(ssa)", "opt(direct)", "opt(ssa)")
	for _, row := range rows {
		lh := ratioOrOne(row.LHDirect, row.OptDirect)
		bf := ratioOrOne(row.BFPLSSA, row.OptSSA)
		fmt.Fprintf(&b, "%-10d %14.3f %14.3f %14.0f %14.0f\n",
			row.R, lh, bf, row.OptDirect, row.OptSSA)
	}
	return b.String()
}

func ratioOrOne(cost, opt float64) float64 {
	if opt > 0 {
		return cost / opt
	}
	if cost == 0 {
		return 1
	}
	return inf()
}
