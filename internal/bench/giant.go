package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// GenGiant builds a giant strict-SSA function with approximately the
// requested value and block counts, in O(values) time and memory: a long
// chain of straight-line blocks with a band of early-defined anchor values
// used throughout, so register pressure stays high across the whole
// function. It is the stress workload of the resource-governance tests —
// big enough to trip any realistic step budget or admission gate, cheap
// enough to generate at 10^5 values without dominating the test.
//
// The generated function validates, is strict SSA, and carries dominance
// and loop annotations like every bench generator output.
func GenGiant(name string, seed int64, values, blocks int) *ir.Func {
	if values < 64 {
		values = 64
	}
	if blocks < 1 {
		blocks = 1
	}
	if blocks > values/8 {
		blocks = values / 8 // keep at least a few instructions per block
	}
	rng := rand.New(rand.NewSource(seed))
	f := &ir.Func{Name: name, ValueName: map[int]string{}, SSA: true}
	entry := f.AddBlock("b0")

	const params = 4
	recent := make([]int, 0, 16) // sliding window of the latest definitions
	for i := 0; i < params; i++ {
		v := f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpParam, Def: v, Imm: int64(i)})
		recent = append(recent, v)
	}
	// Anchors: defined up front, used throughout, folded into the return —
	// live across the entire function, the main pressure source.
	anchors := make([]int, 0, 24)
	for i := 0; i < cap(anchors); i++ {
		v := f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{
			Op: ir.OpArith, Def: v,
			Uses: []int{recent[rng.Intn(len(recent))], recent[rng.Intn(len(recent))]},
		})
		anchors = append(anchors, v)
	}

	pick := func() int {
		// Mostly local traffic, with a steady anchor admixture.
		if rng.Intn(4) == 0 {
			return anchors[rng.Intn(len(anchors))]
		}
		return recent[rng.Intn(len(recent))]
	}

	// The chain: body values spread evenly over the blocks; every block
	// ends with an unconditional branch to the next. Defs in earlier blocks
	// dominate all later ones, so the chain needs no phis to stay strict.
	folds := len(anchors)
	body := values - f.NumValues - folds
	cur := entry
	for b := 0; b < blocks; b++ {
		if b > 0 {
			next := f.AddBlock(fmt.Sprintf("b%d", len(f.Blocks)))
			cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{next.ID}})
			f.AddEdge(cur.ID, next.ID)
			cur = next
		}
		n := body / blocks
		if b < body%blocks {
			n++
		}
		for i := 0; i < n; i++ {
			v := f.NewValue()
			cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpArith, Def: v, Uses: []int{pick(), pick()}})
			if len(recent) < cap(recent) {
				recent = append(recent, v)
			} else {
				recent[rng.Intn(len(recent))] = v
			}
		}
	}

	// Keep every anchor alive to the end: fold them into the return value.
	ret := recent[len(recent)-1]
	for _, a := range anchors {
		acc := f.NewValue()
		cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpArith, Def: acc, Uses: []int{ret, a}})
		ret = acc
	}
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue, Uses: []int{ret}})

	if err := f.Validate(); err != nil {
		panic(fmt.Sprintf("bench: generated invalid giant SSA for %s: %v", name, err))
	}
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	return f
}
