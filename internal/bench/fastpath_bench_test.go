package bench

import (
	"testing"

	"repro/internal/cliques"
	"repro/internal/graph"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Benchmarks for the IFG-free fast path: deriving the clique structure
// straight from liveness versus building (and freezing) the explicit
// interference graph, on generated SSA functions of ~200 and ~2000 values.
// Run with
//
//	go test ./internal/bench -bench 'CliqueDerivation|IFGFromLiveness' -benchmem

// fastPathFunc generates an SSA function with roughly n values.
func fastPathFunc(n int) *ir.Func {
	shape := Shape{
		Params: 4, Segments: 3, MaxDepth: 2, StraightLen: 6,
		LoopProb: 0.4, BranchProb: 0.3, Carried: 2, LongLived: 12,
	}
	// Scale the segment count until the function reaches the target size.
	for seg := 3; seg < 4096; seg *= 2 {
		shape.Segments = seg
		f := GenSSA("fastpath", 4242, shape)
		if f.NumValues >= n {
			return f
		}
	}
	panic("bench: could not reach target size")
}

func benchCliqueDerivation(b *testing.B, n int) {
	f := fastPathFunc(n)
	dom := f.ComputeDominance()
	if !cliques.Applicable(f, dom) {
		b.Fatal("generated function not fast-path eligible")
	}
	info := liveness.Compute(f)
	scratch := cliques.NewScratch()
	b.ReportMetric(float64(f.NumValues), "values")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cliques.Derive(info, dom, scratch) == nil {
			b.Fatal("derive failed")
		}
	}
}

func benchIFGFromLiveness(b *testing.B, n int) {
	f := fastPathFunc(n)
	info := liveness.Compute(f)
	b.ReportMetric(float64(f.NumValues), "values")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		build := ifg.FromLiveness(info)
		if !build.Graph.Frozen() {
			b.Fatal("graph not frozen")
		}
	}
}

func BenchmarkCliqueDerivation200(b *testing.B)  { benchCliqueDerivation(b, 200) }
func BenchmarkCliqueDerivation2000(b *testing.B) { benchCliqueDerivation(b, 2000) }
func BenchmarkIFGFromLiveness200(b *testing.B)   { benchIFGFromLiveness(b, 200) }
func BenchmarkIFGFromLiveness2000(b *testing.B)  { benchIFGFromLiveness(b, 2000) }

// BenchmarkCliqueFrank measures a single allocation layer (one maximum
// weighted stable set) computed from the clique structure, against Frank's
// algorithm on the explicit graph — the inner loop of layered allocation.
func BenchmarkCliqueFrank2000(b *testing.B) {
	f := fastPathFunc(2000)
	dom := f.ComputeDominance()
	info := liveness.Compute(f)
	cs := cliques.Derive(info, dom, nil)
	if cs == nil {
		b.Fatal("derive failed")
	}
	w := make([]float64, cs.N)
	for i := range w {
		w[i] = float64(1 + i%17)
	}
	var fs cliques.FrankScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.MaxWeightStable(w, &fs)
	}
}

// BenchmarkGraphMaterialize measures the lazy graph construction the
// edge-based allocators pay on first use of a fast-path problem.
func BenchmarkGraphMaterialize2000(b *testing.B) {
	f := fastPathFunc(2000)
	dom := f.ComputeDominance()
	info := liveness.Compute(f)
	cs := cliques.Derive(info, dom, nil)
	if cs == nil {
		b.Fatal("derive failed")
	}
	var g *graph.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = cs.BuildGraph()
	}
	_ = g
}
