package bench

import (
	"math"
	"sort"
)

// Summary condenses a sample of per-program normalized allocation costs.
type Summary struct {
	N                        int
	Mean                     float64
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the distribution summary of xs (which it sorts a copy
// of). Empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	total := 0.0
	for _, x := range s {
		total += x
	}
	return Summary{
		N:      len(s),
		Mean:   total / float64(len(s)),
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// quantile interpolates the q-quantile of sorted s.
func quantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
