package bench

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Micro-benchmarks for the bitset/CSR core at suite sizes: graph
// construction, PEO, liveness, and interference build. Run with
//
//	go test ./internal/bench -bench 'Micro' -benchmem

// microIntervalEdges returns a deterministic interval-overlap edge list, the
// densest realistic shape for an interference graph.
func microIntervalEdges(n int) [][2]int {
	rng := rand.New(rand.NewSource(42))
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, c := rng.Intn(4*n), rng.Intn(4*n)
		if a > c {
			a, c = c, a
		}
		if c-a > n/4 {
			c = a + n/4
		}
		ivs[i] = iv{a, c}
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return edges
}

func BenchmarkMicroGraphBuild(b *testing.B) {
	const n = 1000
	edges := microIntervalEdges(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.New(n)
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
		g.Freeze()
	}
}

func BenchmarkMicroPEO(b *testing.B) {
	const n = 1000
	g := graph.New(n)
	for _, e := range microIntervalEdges(n) {
		g.AddEdge(e[0], e[1])
	}
	g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PerfectEliminationOrder()
	}
}

func microFuncs() []*ir.Func {
	var out []*ir.Func
	for seed := int64(500); seed < 508; seed++ {
		out = append(out, GenSSA("micro", seed, Shape{
			Params: 4, Segments: 5, MaxDepth: 3, StraightLen: 6,
			LoopProb: 0.4, BranchProb: 0.3, Carried: 3, LongLived: 16,
		}))
	}
	return out
}

func BenchmarkMicroLiveness(b *testing.B) {
	fs := microFuncs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			liveness.Compute(f)
		}
	}
}

func BenchmarkMicroIFGBuild(b *testing.B) {
	fs := microFuncs()
	infos := make([]*liveness.Info, len(fs))
	for i, f := range fs {
		infos[i] = liveness.Compute(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, info := range infos {
			ifg.FromLiveness(info)
		}
	}
}
