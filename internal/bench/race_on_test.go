//go:build race

package bench

// raceEnabled reports that this binary was built with the race detector,
// which disables sync.Pool caching and skews allocation counts.
const raceEnabled = true
