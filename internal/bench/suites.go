package bench

import (
	"strconv"

	"repro/internal/ir"
)

// Program is one workload: a generated function with a suite-level name.
type Program struct {
	Name string
	F    *ir.Func
	// Bench groups programs that belong to the same named benchmark (used
	// by the per-benchmark JVM98 figure); empty for the chordal suites.
	Bench string
}

// Suite identifies one of the evaluation workloads.
type Suite struct {
	Name string
	// Target is the paper's machine for this suite (informational; the
	// experiments sweep R explicitly).
	Target string
	// Chordal reports whether programs are strict SSA (chordal graphs).
	Chordal bool
	// Registers is the register-count sweep of the corresponding figures.
	Registers []int
	// Load generates the programs (deterministic).
	Load func() []Program
}

// ChordalSweep is the register sweep of Figures 8–13.
var ChordalSweep = []int{1, 2, 4, 8, 16, 32}

// JITSweep is the register sweep of Figure 14.
var JITSweep = []int{2, 4, 6, 8, 10, 12, 14, 16}

// SuiteSPEC2000 stands in for SPEC CPU 2000int compiled by Open64 for the
// ST231: medium-to-large functions, moderate nesting, substantial numbers of
// long-lived temporaries.
var SuiteSPEC2000 = Suite{
	Name:      "spec2000int",
	Target:    "st231",
	Chordal:   true,
	Registers: ChordalSweep,
	Load: func() []Program {
		apps := []string{
			"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
			"eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
		}
		var out []Program
		seed := int64(20000)
		for _, app := range apps {
			for i := 0; i < 3; i++ {
				shape := Shape{
					Params:      3 + int(seed)%3,
					Segments:    6 + i,
					MaxDepth:    3,
					StraightLen: 7,
					LoopProb:    0.35,
					BranchProb:  0.35,
					Carried:     4,
					LongLived:   24 + 6*i + int(seed)%5,
				}
				name := app + suffix(i)
				out = append(out, Program{
					Name: name,
					F:    GenSSA(name, seed, shape),
				})
				seed += 17
			}
		}
		return out
	},
}

// SuiteEEMBC stands in for the EEMBC embedded kernels on ST231: small
// functions dominated by loops with fewer long-lived values.
var SuiteEEMBC = Suite{
	Name:      "eembc",
	Target:    "st231",
	Chordal:   true,
	Registers: ChordalSweep,
	Load: func() []Program {
		kernels := []string{
			"aifft", "aifir", "aiifft", "autcor", "basefp", "bezier",
			"bitmnp", "cacheb", "canrdr", "conven", "dither", "fbital",
			"idctrn", "iirflt", "matrix", "ospf", "pktflow", "pntrch",
			"puwmod", "rgbcmy", "rotate", "routelookup", "rspeed", "tblook",
			"text", "ttsprk", "viterb",
		}
		var out []Program
		seed := int64(30000)
		for _, k := range kernels {
			shape := Shape{
				Params:      2 + int(seed)%2,
				Segments:    4,
				MaxDepth:    3,
				StraightLen: 6,
				LoopProb:    0.55,
				BranchProb:  0.2,
				Carried:     5,
				LongLived:   12 + int(seed)%11,
			}
			out = append(out, Program{Name: k, F: GenSSA(k, seed, shape)})
			seed += 23
		}
		return out
	},
}

// SuiteLAOKernels stands in for STMicroelectronics' lao-kernels on ARMv7:
// very small, loop-heavy kernels where a single bad allocation choice is
// visible in the totals.
var SuiteLAOKernels = Suite{
	Name:      "lao-kernels",
	Target:    "armv7",
	Chordal:   true,
	Registers: ChordalSweep,
	Load: func() []Program {
		kernels := []string{
			"autocor", "bassmgt", "codebk_srch", "convol", "dct",
			"fir", "latanal", "lms", "max_search", "polysyn",
			"q_plsf", "subband",
		}
		var out []Program
		seed := int64(40000)
		for _, k := range kernels {
			shape := Shape{
				Params:      2,
				Segments:    2,
				MaxDepth:    2,
				StraightLen: 5,
				LoopProb:    0.65,
				BranchProb:  0.15,
				Carried:     3,
				LongLived:   8 + (int(seed)%5)*7,
			}
			out = append(out, Program{Name: k, F: GenSSA(k, seed, shape)})
			seed += 31
		}
		return out
	},
}

// JVM98Benchmarks lists the named SPEC JVM98 applications of Figure 15, in
// the paper's order.
var JVM98Benchmarks = []string{
	"check", "compress", "jess", "raytrace", "db",
	"javac", "mpegaudio", "mtrt", "jack",
}

// SuiteJVM98 stands in for SPEC JVM98 methods compiled by the JikesRVM
// baseline JIT: non-SSA code over a mutable local-variable pool, yielding
// general (usually non-chordal) interference graphs.
var SuiteJVM98 = Suite{
	Name:      "jvm98",
	Target:    "jvm98",
	Chordal:   false,
	Registers: JITSweep,
	Load: func() []Program {
		var out []Program
		seed := int64(50000)
		for bi, b := range JVM98Benchmarks {
			nmethods := 6 + bi%3
			for i := 0; i < nmethods; i++ {
				shape := NonSSAShape{
					Vars:        34 + (int(seed)+3*i)%20,
					Params:      9,
					Segments:    8 + i%4,
					MaxDepth:    2,
					StraightLen: 7,
					LoopProb:    0.4,
					BranchProb:  0.35,
				}
				name := b + ".m" + strconv.Itoa(i)
				out = append(out, Program{
					Name:  name,
					F:     GenNonSSA(name, seed, shape),
					Bench: b,
				})
				seed += 13
			}
		}
		return out
	},
}

// AllSuites lists every workload in figure order.
var AllSuites = []Suite{SuiteSPEC2000, SuiteEEMBC, SuiteLAOKernels, SuiteJVM98}

// SuiteByName looks up a suite.
func SuiteByName(name string) (Suite, bool) {
	for _, s := range AllSuites {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

func suffix(i int) string { return [3]string{"", ".hot", ".cold"}[i%3] }
