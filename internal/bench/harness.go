package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/alloc/chaitin"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/linearscan"
	"repro/internal/alloc/optimal"
	"repro/internal/ifg"
	"repro/internal/liveness"
	"repro/internal/spillcost"
)

// ChordalAllocators returns the allocator lineup of Figures 8–13, in the
// paper's legend order: GC, NL, FPL, BL, BFPL, Optimal.
func ChordalAllocators() []alloc.Allocator {
	return []alloc.Allocator{
		chaitin.New(), layered.NL(), layered.FPL(), layered.BL(), layered.BFPL(), optimal.New(),
	}
}

// JITAllocators returns the lineup of Figures 14–15: DLS, BLS, GC, LH,
// Optimal.
func JITAllocators() []alloc.Allocator {
	return []alloc.Allocator{
		linearscan.DLS(), linearscan.BLS(), chaitin.New(), layered.NewLH(), optimal.New(),
	}
}

// Instance is one prepared allocation problem (program × register count).
type Instance struct {
	Program Program
	R       int
	Problem *alloc.Problem
	// Cost[name] is the spill cost each allocator achieved.
	Cost map[string]float64
	// OptimalCost is Cost["Optimal"], for normalization.
	OptimalCost float64
	// OptExact reports whether the exact solver proved optimality.
	OptExact bool
}

// Run executes every allocator of the suite's lineup on every program at
// every register count, validating each result. It is the data source for
// all figures. A non-nil progress writer receives one line per program.
func Run(s Suite, progress io.Writer) []*Instance {
	programs := s.Load()
	var allocators []alloc.Allocator
	if s.Chordal {
		allocators = ChordalAllocators()
	} else {
		allocators = JITAllocators()
	}
	var out []*Instance
	for _, prog := range programs {
		info := liveness.Compute(prog.F)
		build := ifg.FromLiveness(info)
		costs := spillcost.Costs(prog.F, spillcost.DefaultModel)
		intervals := linearscan.BuildIntervals(info, build)
		for _, r := range s.Registers {
			p := alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: r})
			p.Name = prog.Name
			p.Intervals = intervals
			inst := &Instance{
				Program: prog,
				R:       r,
				Problem: p,
				Cost:    make(map[string]float64, len(allocators)),
			}
			for _, a := range allocators {
				res := a.Allocate(p)
				if err := p.Validate(res); err != nil {
					panic(fmt.Sprintf("bench: invalid allocation from %s on %s (R=%d): %v",
						a.Name(), prog.Name, r, err))
				}
				inst.Cost[a.Name()] = res.SpillCost(p)
				if opt, ok := a.(*optimal.Allocator); ok {
					inst.OptimalCost = inst.Cost[a.Name()]
					inst.OptExact = opt.LastExact
				}
			}
			out = append(out, inst)
		}
		if progress != nil {
			fmt.Fprintf(progress, "  %-16s |V|=%3d maxlive=%2d\n",
				prog.Name, build.Graph.N(), build.MaxLive)
		}
	}
	return out
}

// NormalizedMeans computes, per register count and allocator, the
// suite-aggregate normalized allocation cost Σcost/Σoptimal — the quantity
// plotted in Figures 8, 9, 10 and 14.
func NormalizedMeans(instances []*Instance, allocators []string) map[int]map[string]float64 {
	type agg struct{ cost, opt float64 }
	sums := make(map[int]map[string]*agg)
	for _, inst := range instances {
		perR := sums[inst.R]
		if perR == nil {
			perR = make(map[string]*agg)
			sums[inst.R] = perR
		}
		for _, name := range allocators {
			a := perR[name]
			if a == nil {
				a = &agg{}
				perR[name] = a
			}
			a.cost += inst.Cost[name]
			a.opt += inst.OptimalCost
		}
	}
	out := make(map[int]map[string]float64)
	for r, perR := range sums {
		out[r] = make(map[string]float64)
		for name, a := range perR {
			switch {
			case a.opt > 0:
				out[r][name] = a.cost / a.opt
			case a.cost == 0:
				out[r][name] = 1
			default:
				out[r][name] = inf()
			}
		}
	}
	return out
}

// PerProgramRatios returns, per register count and allocator, the
// distribution of per-program normalized costs (cost/optimal), the quantity
// of Figures 11–13. Programs whose optimal cost is zero are counted as ratio
// 1 when the allocator also reaches zero and are skipped otherwise (the
// ratio is undefined); Skipped reports how many were dropped that way.
func PerProgramRatios(instances []*Instance, allocators []string) (map[int]map[string][]float64, int) {
	out := make(map[int]map[string][]float64)
	skipped := 0
	for _, inst := range instances {
		perR := out[inst.R]
		if perR == nil {
			perR = make(map[string][]float64)
			out[inst.R] = perR
		}
		for _, name := range allocators {
			c := inst.Cost[name]
			switch {
			case inst.OptimalCost > 0:
				perR[name] = append(perR[name], c/inst.OptimalCost)
			case c == 0:
				perR[name] = append(perR[name], 1)
			default:
				skipped++
			}
		}
	}
	return out, skipped
}

// PerBenchmarkMeans aggregates normalized cost per named benchmark at one
// register count (Figure 15).
func PerBenchmarkMeans(instances []*Instance, allocators []string, r int) map[string]map[string]float64 {
	type agg struct{ cost, opt float64 }
	sums := make(map[string]map[string]*agg)
	for _, inst := range instances {
		if inst.R != r || inst.Program.Bench == "" {
			continue
		}
		per := sums[inst.Program.Bench]
		if per == nil {
			per = make(map[string]*agg)
			sums[inst.Program.Bench] = per
		}
		for _, name := range allocators {
			a := per[name]
			if a == nil {
				a = &agg{}
				per[name] = a
			}
			a.cost += inst.Cost[name]
			a.opt += inst.OptimalCost
		}
	}
	out := make(map[string]map[string]float64)
	for b, per := range sums {
		out[b] = make(map[string]float64)
		for name, a := range per {
			if a.opt > 0 {
				out[b][name] = a.cost / a.opt
			} else if a.cost == 0 {
				out[b][name] = 1
			} else {
				out[b][name] = inf()
			}
		}
	}
	return out
}

// AllocatorNames extracts the lineup names in order.
func AllocatorNames(as []alloc.Allocator) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name()
	}
	return names
}

// FormatMeansTable renders a NormalizedMeans result as an aligned text
// table, registers as rows, allocators as columns.
func FormatMeansTable(means map[int]map[string]float64, allocators []string) string {
	var b strings.Builder
	rs := sortedIntKeys(means)
	fmt.Fprintf(&b, "%-10s", "registers")
	for _, a := range allocators {
		fmt.Fprintf(&b, " %8s", a)
	}
	b.WriteByte('\n')
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10d", r)
		for _, a := range allocators {
			if v := means[r][a]; v >= inf() {
				fmt.Fprintf(&b, " %8s", "n/a")
			} else {
				fmt.Fprintf(&b, " %8.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatDistTable renders per-program ratio distributions as quartile rows.
func FormatDistTable(ratios map[int]map[string][]float64, allocators []string) string {
	var b strings.Builder
	rs := sortedIntKeys(ratios)
	fmt.Fprintf(&b, "%-10s %-8s %5s %7s %7s %7s %7s %7s\n",
		"registers", "alloc", "n", "min", "q1", "median", "q3", "max")
	for _, r := range rs {
		for _, a := range allocators {
			s := Summarize(ratios[r][a])
			fmt.Fprintf(&b, "%-10d %-8s %5d %7.3f %7.3f %7.3f %7.3f %7.3f\n",
				r, a, s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max)
		}
	}
	return b.String()
}

// FormatPerBenchTable renders a PerBenchmarkMeans result with benchmarks as
// rows in the paper's order.
func FormatPerBenchTable(per map[string]map[string]float64, allocators []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, a := range allocators {
		fmt.Fprintf(&b, " %8s", a)
	}
	b.WriteByte('\n')
	for _, bench := range JVM98Benchmarks {
		row, ok := per[bench]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s", bench)
		for _, a := range allocators {
			fmt.Fprintf(&b, " %8.3f", row[a])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func inf() float64 { return 1e308 }
