package bench

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/regalloc"
)

// BenchmarkEngineVsCore pins the public façade's overhead over the
// internal scratch-reusing runner on the fast path: the Engine sub-bench
// must stay within 1% ns/op and 0 allocs/op of the Core sub-bench
// (run with -benchmem to see the allocation columns).
func BenchmarkEngineVsCore(b *testing.B) {
	f := fastPathFunc(200)
	b.Run("Core", func(b *testing.B) {
		runner := core.NewRunner()
		cfg := core.Config{Registers: 4, TrustedCostModel: true}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(f, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Engine", func(b *testing.B) {
		eng, err := regalloc.New(regalloc.WithRegisters(4))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.AllocateFunc(ctx, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEngineZeroAllocOverhead is the enforced form of the benchmark's
// allocs/op column: steady-state, Engine.AllocateFunc must allocate
// exactly as much as the internal runner it wraps — the façade costs
// nothing on the hot path.
func TestEngineZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool caching; allocation counts are not meaningful")
	}
	f := fastPathFunc(200)
	runner := core.NewRunner()
	cfg := core.Config{Registers: 4, TrustedCostModel: true}
	coreAllocs := testing.AllocsPerRun(50, func() {
		if _, err := runner.Run(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
	eng, err := regalloc.New(regalloc.WithRegisters(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm the engine's worker pool out of the measured region.
	if _, err := eng.AllocateFunc(ctx, f); err != nil {
		t.Fatal(err)
	}
	engineAllocs := testing.AllocsPerRun(50, func() {
		if _, err := eng.AllocateFunc(ctx, f); err != nil {
			t.Fatal(err)
		}
	})
	if engineAllocs > coreAllocs {
		t.Errorf("Engine.AllocateFunc allocates %.1f/op, core.Runner.Run %.1f/op — façade overhead must be 0",
			engineAllocs, coreAllocs)
	}
}
