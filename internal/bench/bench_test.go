package bench

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ifg"
	"repro/internal/liveness"
)

func TestGenSSADeterministic(t *testing.T) {
	shape := Shape{
		Params: 2, Segments: 3, MaxDepth: 2, StraightLen: 4,
		LoopProb: 0.5, BranchProb: 0.3, Carried: 2, LongLived: 4,
	}
	a := GenSSA("f", 123, shape)
	b := GenSSA("f", 123, shape)
	if a.String() != b.String() {
		t.Fatal("same seed produced different programs")
	}
	c := GenSSA("f", 124, shape)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestPropertyGenSSAValidAndChordal(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := Shape{
			Params:      1 + r.Intn(4),
			Segments:    1 + r.Intn(4),
			MaxDepth:    1 + r.Intn(3),
			StraightLen: 1 + r.Intn(6),
			LoopProb:    r.Float64() * 0.6,
			BranchProb:  r.Float64() * 0.4,
			Carried:     1 + r.Intn(3),
			LongLived:   r.Intn(8),
		}
		f := GenSSA("t", seed, shape) // panics internally if invalid
		if err := f.Validate(); err != nil {
			return false
		}
		b := ifg.FromFunc(f)
		return b.Graph.IsChordal()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGenNonSSAValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := NonSSAShape{
			Vars:        4 + r.Intn(20),
			Params:      1 + r.Intn(4),
			Segments:    1 + r.Intn(5),
			MaxDepth:    1 + r.Intn(3),
			StraightLen: 1 + r.Intn(6),
			LoopProb:    r.Float64() * 0.5,
			BranchProb:  r.Float64() * 0.4,
		}
		f := GenNonSSA("t", seed, shape)
		return f.Validate() == nil && !f.SSA
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSuitesLoad(t *testing.T) {
	for _, s := range AllSuites {
		progs := s.Load()
		if len(progs) == 0 {
			t.Fatalf("suite %s empty", s.Name)
		}
		for _, p := range progs {
			if err := p.F.Validate(); err != nil {
				t.Fatalf("%s/%s invalid: %v", s.Name, p.Name, err)
			}
			if p.F.SSA != s.Chordal {
				t.Fatalf("%s/%s SSA flag inconsistent with suite", s.Name, p.Name)
			}
		}
	}
}

func TestSuiteByName(t *testing.T) {
	if _, ok := SuiteByName("eembc"); !ok {
		t.Fatal("eembc missing")
	}
	if _, ok := SuiteByName("nope"); ok {
		t.Fatal("bogus suite found")
	}
}

func TestSuitePressureProfiles(t *testing.T) {
	// The register sweeps only discriminate if some programs spill at the
	// top register count; check each suite's peak MaxLive clears it.
	for _, s := range AllSuites {
		peak := 0
		for _, p := range s.Load() {
			info := liveness.Compute(p.F)
			if info.MaxLive > peak {
				peak = info.MaxLive
			}
		}
		top := s.Registers[len(s.Registers)-1]
		if peak <= top {
			t.Errorf("suite %s peak MaxLive %d does not exceed top sweep R=%d",
				s.Name, peak, top)
		}
	}
}

func TestRunSmallSuite(t *testing.T) {
	small := Suite{
		Name:      "mini",
		Chordal:   true,
		Registers: []int{2, 4},
		Load: func() []Program {
			return []Program{
				{Name: "k1", F: GenSSA("k1", 7, Shape{
					Params: 2, Segments: 2, MaxDepth: 2, StraightLen: 4,
					LoopProb: 0.5, BranchProb: 0.3, Carried: 2, LongLived: 5,
				})},
				{Name: "k2", F: GenSSA("k2", 8, Shape{
					Params: 2, Segments: 2, MaxDepth: 2, StraightLen: 4,
					LoopProb: 0.5, BranchProb: 0.3, Carried: 2, LongLived: 5,
				})},
			}
		},
	}
	instances := Run(small, nil)
	if len(instances) != 4 {
		t.Fatalf("instances = %d, want 4 (2 programs × 2 register counts)", len(instances))
	}
	names := AllocatorNames(ChordalAllocators())
	for _, inst := range instances {
		if !inst.OptExact {
			t.Fatalf("%s R=%d: optimal not exact", inst.Program.Name, inst.R)
		}
		for _, n := range names {
			if inst.Cost[n] < inst.OptimalCost-1e-9 {
				t.Fatalf("%s beat optimal on %s R=%d", n, inst.Program.Name, inst.R)
			}
		}
	}
	means := NormalizedMeans(instances, names)
	for r, per := range means {
		if per["Optimal"] != 1 {
			t.Fatalf("optimal not normalized to 1 at R=%d", r)
		}
		for n, v := range per {
			if v < 1 {
				t.Fatalf("%s below 1 at R=%d: %g", n, r, v)
			}
		}
	}
	ratios, _ := PerProgramRatios(instances, names)
	for _, per := range ratios {
		for _, xs := range per {
			for _, x := range xs {
				if x < 1 {
					t.Fatal("per-program ratio below 1")
				}
			}
		}
	}
	// Table formatting smoke checks.
	if FormatMeansTable(means, names) == "" {
		t.Fatal("empty means table")
	}
	if FormatDistTable(ratios, names) == "" {
		t.Fatal("empty dist table")
	}
}

func TestJVM98BenchGrouping(t *testing.T) {
	progs := SuiteJVM98.Load()
	groups := map[string]int{}
	for _, p := range progs {
		groups[p.Bench]++
	}
	for _, b := range JVM98Benchmarks {
		if groups[b] == 0 {
			t.Fatalf("benchmark %s has no methods", b)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %g %g", s.Q1, s.Q3)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary nonzero")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.Q1 != 7 {
		t.Fatalf("singleton summary = %+v", one)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if s.Median != 1.5 {
		t.Fatalf("median of {1,2} = %g", s.Median)
	}
}
