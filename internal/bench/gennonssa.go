package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ir"
)

// NonSSAShape parameterizes the non-SSA ("JVM98 method") generator.
type NonSSAShape struct {
	// Vars is the size of the mutable variable pool (Java locals + stack
	// temporaries). Live ranges of the same slot across redefinitions make
	// the interference graph non-chordal in general.
	Vars int
	// Params is how many variables are defined on entry.
	Params int
	// Segments, MaxDepth, StraightLen, LoopProb, BranchProb: as in Shape.
	Segments    int
	MaxDepth    int
	StraightLen int
	LoopProb    float64
	BranchProb  float64
}

// nonSSAGen carries generator state. Variables are ir value IDs that may be
// redefined; initialized tracks which are definitely assigned on every path
// to the current block, so every emitted use is sound.
type nonSSAGen struct {
	f     *ir.Func
	rng   *rand.Rand
	shape NonSSAShape
	vars  []int
}

// GenNonSSA generates a multiple-definition (non-SSA) function in the style
// of a JIT's bytecode-derived IR. Its interference graph is a general graph;
// with variable reuse across overlapping regions it is usually non-chordal.
func GenNonSSA(name string, seed int64, shape NonSSAShape) *ir.Func {
	g := &nonSSAGen{
		f:     &ir.Func{Name: name, ValueName: map[int]string{}, SSA: false},
		rng:   rand.New(rand.NewSource(seed)),
		shape: shape,
	}
	for i := 0; i < shape.Vars; i++ {
		v := g.f.NewValue()
		g.f.ValueName[v] = fmt.Sprintf("x%d", i)
		g.vars = append(g.vars, v)
	}
	entry := g.f.AddBlock("b0")
	init := make(map[int]bool)
	nparams := shape.Params
	if nparams == 0 {
		nparams = 1
	}
	for i := 0; i < nparams && i < len(g.vars); i++ {
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpParam, Def: g.vars[i], Imm: int64(i)})
		init[g.vars[i]] = true
	}
	cur := entry
	for s := 0; s < shape.Segments; s++ {
		cur, init = g.segment(cur, init, 0)
	}
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue, Uses: []int{g.pickInit(init)}})
	if err := g.f.Validate(); err != nil {
		panic(fmt.Sprintf("bench: generated invalid non-SSA IR for %s: %v", name, err))
	}
	dom := g.f.ComputeDominance()
	g.f.ComputeLoops(dom)
	return g.f
}

func (g *nonSSAGen) segment(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	r := g.rng.Float64()
	switch {
	case depth < g.shape.MaxDepth && r < g.shape.LoopProb:
		return g.loop(cur, init, depth)
	case depth < g.shape.MaxDepth && r < g.shape.LoopProb+g.shape.BranchProb:
		return g.branch(cur, init, depth)
	default:
		return cur, g.straight(cur, init)
	}
}

func (g *nonSSAGen) straight(cur *ir.Block, init map[int]bool) map[int]bool {
	out := copySet(init)
	n := 1 + g.rng.Intn(g.shape.StraightLen)
	for i := 0; i < n; i++ {
		dst := g.vars[g.rng.Intn(len(g.vars))]
		cur.Instrs = append(cur.Instrs, ir.Instr{
			Op: ir.OpArith, Def: dst,
			Uses: []int{g.pickInitSet(out), g.pickInitSet(out)},
		})
		out[dst] = true
	}
	return out
}

func (g *nonSSAGen) branch(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	thenB := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	elseB := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{g.pickInit(init)}, Targets: []int{thenB.ID, elseB.ID},
	})
	g.f.AddEdge(cur.ID, thenB.ID)
	g.f.AddEdge(cur.ID, elseB.ID)

	tEnd, tInit := thenB, g.straight(thenB, init)
	if depth+1 < g.shape.MaxDepth && g.rng.Float64() < 0.3 {
		tEnd, tInit = g.segment(tEnd, tInit, depth+1)
	}
	eEnd, eInit := elseB, g.straight(elseB, init)
	if depth+1 < g.shape.MaxDepth && g.rng.Float64() < 0.3 {
		eEnd, eInit = g.segment(eEnd, eInit, depth+1)
	}
	join := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	tEnd.Instrs = append(tEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(tEnd.ID, join.ID)
	eEnd.Instrs = append(eEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(eEnd.ID, join.ID)
	return join, intersect(tInit, eInit)
}

func (g *nonSSAGen) loop(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	header := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(cur.ID, header.ID)

	body := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	exit := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{g.pickInit(init)}, Targets: []int{body.ID, exit.ID},
	})
	g.f.AddEdge(header.ID, body.ID)
	g.f.AddEdge(header.ID, exit.ID)

	bodyEnd, bodyInit := body, g.straight(body, init)
	if depth+1 < g.shape.MaxDepth && g.rng.Float64() < 0.4 {
		bodyEnd, bodyInit = g.segment(bodyEnd, bodyInit, depth+1)
	}
	// A store at the bottom of the loop keeps body-defined variables used
	// at loop frequency, as array-writing JVM98 methods do.
	bodyEnd.Instrs = append(bodyEnd.Instrs, ir.Instr{
		Op: ir.OpStore, Def: ir.NoValue, Uses: []int{g.pickInitSet(bodyInit), g.pickInitSet(bodyInit)},
	})
	bodyEnd.Instrs = append(bodyEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(bodyEnd.ID, header.ID)
	// Only variables initialized before the loop are definitely initialized
	// after it (the body may not execute).
	return exit, copySet(init)
}

func (g *nonSSAGen) pickInit(init map[int]bool) int {
	return g.pickInitSet(init)
}

func (g *nonSSAGen) pickInitSet(init map[int]bool) int {
	// Deterministic choice: collect sorted and index by rng.
	var pool []int
	for v := range init {
		pool = append(pool, v)
	}
	if len(pool) == 0 {
		panic("bench: no initialized variable to use")
	}
	sort.Ints(pool)
	return pool[g.rng.Intn(len(pool))]
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = v
		}
	}
	return out
}

func intersect(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
