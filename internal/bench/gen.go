// Package bench generates the synthetic benchmark workloads standing in for
// the paper's proprietary suites (SPEC CPU 2000int, EEMBC, lao-kernels on
// Open64/ST231+ARMv7, SPEC JVM98 on JikesRVM), and provides the experiment
// harness that regenerates every figure of the evaluation section.
//
// The generators are fully deterministic for a given seed: each suite is a
// fixed list of (name, seed, shape) tuples, so every run of the experiments
// sees the same programs.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Shape parameterizes the SSA program generator.
type Shape struct {
	// Params is the number of function inputs.
	Params int
	// Segments is the number of top-level code segments to generate.
	Segments int
	// MaxDepth bounds loop/branch nesting.
	MaxDepth int
	// StraightLen is the max instruction count of a straight-line run.
	StraightLen int
	// LoopProb and BranchProb weight the segment kinds (rest: straight).
	LoopProb, BranchProb float64
	// Carried is the max number of loop-carried variables per loop.
	Carried int
	// LongLived is the number of values defined early and used late, the
	// main source of register pressure across the whole function.
	LongLived int
}

// ssaGen carries generator state for one function.
type ssaGen struct {
	f     *ir.Func
	rng   *rand.Rand
	shape Shape
	// longLived values are defined in the entry block and referenced with
	// small probability everywhere, stretching their live ranges.
	longLived []int
}

// GenSSA generates a strict-SSA function with structured control flow:
// nested loops, if/else regions with phi joins, and loop-carried phis. The
// result always passes ir.Validate and produces a chordal interference
// graph.
func GenSSA(name string, seed int64, shape Shape) *ir.Func {
	g := &ssaGen{
		f:     &ir.Func{Name: name, ValueName: map[int]string{}, SSA: true},
		rng:   rand.New(rand.NewSource(seed)),
		shape: shape,
	}
	entry := g.f.AddBlock("b0")
	avail := make([]int, 0, 16)
	for i := 0; i < shape.Params; i++ {
		v := g.f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpParam, Def: v, Imm: int64(i)})
		avail = append(avail, v)
	}
	if len(avail) == 0 {
		v := g.f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpConst, Def: v, Imm: 1})
		avail = append(avail, v)
	}
	for i := 0; i < shape.LongLived; i++ {
		v := g.f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{
			Op: ir.OpArith, Def: v,
			Uses: []int{g.pick(avail), g.pick(avail)},
		})
		avail = append(avail, v)
		g.longLived = append(g.longLived, v)
	}
	cur := entry
	for s := 0; s < shape.Segments; s++ {
		cur, avail = g.segment(cur, avail, 0)
	}
	// Keep the long-lived values alive to the end: a final use.
	ret := g.f.NewValue()
	uses := []int{g.pick(avail)}
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpCall, Def: ret, Uses: uses})
	for _, v := range g.longLived {
		acc := g.f.NewValue()
		cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpArith, Def: acc, Uses: []int{ret, v}})
		ret = acc
	}
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue, Uses: []int{ret}})
	if err := g.f.Validate(); err != nil {
		panic(fmt.Sprintf("bench: generated invalid SSA for %s: %v\n%s", name, err, g.f))
	}
	dom := g.f.ComputeDominance()
	g.f.ComputeLoops(dom)
	return g.f
}

// segment emits one code region starting at cur and returns the block where
// control continues plus the values available there.
func (g *ssaGen) segment(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	r := g.rng.Float64()
	switch {
	case depth < g.shape.MaxDepth && r < g.shape.LoopProb:
		return g.loop(cur, avail, depth)
	case depth < g.shape.MaxDepth && r < g.shape.LoopProb+g.shape.BranchProb:
		return g.branch(cur, avail, depth)
	default:
		return cur, g.straight(cur, avail)
	}
}

// straight appends 1..StraightLen arithmetic instructions to cur.
func (g *ssaGen) straight(cur *ir.Block, avail []int) []int {
	// Extend a private copy: the caller's slice may be shared between the
	// two arms of a branch, and appending in place would let one arm's
	// definitions leak into the other's backing array.
	avail = append([]int(nil), avail...)
	n := 1 + g.rng.Intn(g.shape.StraightLen)
	for i := 0; i < n; i++ {
		v := g.f.NewValue()
		cur.Instrs = append(cur.Instrs, ir.Instr{
			Op: ir.OpArith, Def: v,
			Uses: []int{g.pick(avail), g.pick(avail)},
		})
		avail = append(avail, v)
	}
	return avail
}

// branch emits an if/then/else diamond with phi joins.
func (g *ssaGen) branch(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	cond := g.f.NewValue()
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpUnary, Def: cond, Uses: []int{g.pick(avail)},
	})
	thenB := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	elseB := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{cond}, Targets: []int{thenB.ID, elseB.ID},
	})
	g.f.AddEdge(cur.ID, thenB.ID)
	g.f.AddEdge(cur.ID, elseB.ID)

	tEnd, tAvail := thenB, g.straight(thenB, avail)
	if depth+1 < g.shape.MaxDepth && g.rng.Float64() < 0.3 {
		tEnd, tAvail = g.segment(tEnd, tAvail, depth+1)
	}
	eEnd, eAvail := elseB, g.straight(elseB, avail)
	if depth+1 < g.shape.MaxDepth && g.rng.Float64() < 0.3 {
		eEnd, eAvail = g.segment(eEnd, eAvail, depth+1)
	}

	join := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	tEnd.Instrs = append(tEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(tEnd.ID, join.ID)
	eEnd.Instrs = append(eEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(eEnd.ID, join.ID)

	// Merge a few branch-defined values with phis; the rest of avail flows
	// through unchanged (it dominates join already).
	out := append([]int(nil), avail...)
	nphi := 1 + g.rng.Intn(3)
	for i := 0; i < nphi; i++ {
		tv := g.pickNew(tAvail, avail)
		ev := g.pickNew(eAvail, avail)
		if tv < 0 || ev < 0 {
			break
		}
		v := g.f.NewValue()
		join.Instrs = append(join.Instrs, ir.Instr{
			Op: ir.OpPhi, Def: v, Uses: []int{tv, ev},
		})
		out = append(out, v)
	}
	return join, out
}

// loop emits a natural loop: preheader edge from cur into a header holding
// the loop-carried phis and the exit test, a body (recursively generated)
// with the back edge, and a fresh exit block.
func (g *ssaGen) loop(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	header := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(cur.ID, header.ID)

	ncarried := 1 + g.rng.Intn(g.shape.Carried)
	phis := make([]int, ncarried)
	for i := range phis {
		v := g.f.NewValue()
		phis[i] = v
		header.Instrs = append(header.Instrs, ir.Instr{
			// Second operand (back edge value) patched after the body is
			// generated; phi operand order must match predecessor order
			// (cur first, body end second).
			Op: ir.OpPhi, Def: v, Uses: []int{g.pick(avail), ir.NoValue},
		})
	}
	headAvail := append(append([]int(nil), avail...), phis...)

	body := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	exit := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	cond := g.f.NewValue()
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpUnary, Def: cond, Uses: []int{phis[0]},
	})
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{cond}, Targets: []int{body.ID, exit.ID},
	})
	g.f.AddEdge(header.ID, body.ID)
	g.f.AddEdge(header.ID, exit.ID)

	bodyEnd, bodyAvail := body, g.straight(body, headAvail)
	if depth+1 < g.shape.MaxDepth && g.rng.Float64() < 0.5 {
		bodyEnd, bodyAvail = g.segment(bodyEnd, bodyAvail, depth+1)
	}
	bodyEnd.Instrs = append(bodyEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(bodyEnd.ID, header.ID)

	// Patch back-edge phi operands with values available at the body end.
	for i := range phis {
		ins := &header.Instrs[i]
		bv := g.pickNew(bodyAvail, avail)
		if bv < 0 {
			bv = phis[i] // self-carried
		}
		ins.Uses[1] = bv
	}
	// Values defined inside the loop do not dominate the exit; only avail
	// plus the header's phis (and cond) continue.
	out := append(append([]int(nil), avail...), phis...)
	return exit, out
}

// pick selects a usable value: mostly a recent definition, with a small
// chance of touching a long-lived one to extend pressure.
func (g *ssaGen) pick(avail []int) int {
	if len(g.longLived) > 0 && g.rng.Float64() < 0.15 {
		return g.longLived[g.rng.Intn(len(g.longLived))]
	}
	// Bias toward recent values (locality of reference).
	n := len(avail)
	if n == 1 {
		return avail[0]
	}
	if g.rng.Float64() < 0.7 {
		lo := n - 1 - g.rng.Intn(minInt(8, n))
		if lo < 0 {
			lo = 0
		}
		return avail[lo]
	}
	return avail[g.rng.Intn(n)]
}

// pickNew picks a value from list that is not in base (i.e. defined inside
// the current region), or -1 if none exists.
func (g *ssaGen) pickNew(list, base []int) int {
	baseSet := make(map[int]bool, len(base))
	for _, v := range base {
		baseSet[v] = true
	}
	var fresh []int
	for _, v := range list {
		if !baseSet[v] {
			fresh = append(fresh, v)
		}
	}
	if len(fresh) == 0 {
		return -1
	}
	return fresh[g.rng.Intn(len(fresh))]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
