package bench

import (
	"fmt"
	"strings"

	"repro/internal/coalesce"
	"repro/internal/ifg"
	"repro/internal/spillcost"
)

// CoalesceRow summarizes the coalescing extension for one suite: how much
// φ-move cost each policy removes at the suite's native register pressure.
type CoalesceRow struct {
	Suite      string
	Moves      int
	TotalCost  float64
	Aggressive float64 // fraction of move cost eliminated
	Conserv    float64
}

// RunCoalesce measures aggressive vs conservative coalescing over the
// chordal suites (the paper's §8 integration question). R is chosen per
// function as its MaxLive — the tightest count that still avoids spilling —
// which is the regime where conservative coalescing is constrained.
func RunCoalesce(suites []Suite) []CoalesceRow {
	var rows []CoalesceRow
	for _, s := range suites {
		if !s.Chordal {
			continue
		}
		row := CoalesceRow{Suite: s.Name}
		var aggElim, conElim float64
		for _, prog := range s.Load() {
			b := ifg.FromFunc(prog.F)
			moves := coalesce.Moves(b, spillcost.DefaultModel)
			row.Moves += len(moves)
			r := b.MaxLive
			agg := coalesce.Run(b, moves, coalesce.Aggressive, r)
			con := coalesce.Run(b, moves, coalesce.Conservative, r)
			row.TotalCost += agg.TotalCost
			aggElim += agg.EliminatedCost
			conElim += con.EliminatedCost
		}
		if row.TotalCost > 0 {
			row.Aggressive = aggElim / row.TotalCost
			row.Conserv = conElim / row.TotalCost
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatCoalesce renders the coalescing table.
func FormatCoalesce(rows []CoalesceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %12s\n",
		"suite", "moves", "move cost", "aggressive", "conservative")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12.0f %11.1f%% %11.1f%%\n",
			r.Suite, r.Moves, r.TotalCost, 100*r.Aggressive, 100*r.Conserv)
	}
	return b.String()
}
