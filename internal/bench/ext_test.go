package bench

import "testing"

func TestRunSSAExtensionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiment is slow")
	}
	rows, err := RunSSAExtension([]int{6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].R != 6 {
		t.Fatalf("rows = %+v", rows)
	}
	row := rows[0]
	// Heuristics can never beat their own representation's optimum.
	if row.LHDirect < row.OptDirect-1e-9 || row.BFPLSSA < row.OptSSA-1e-9 {
		t.Fatalf("heuristic beat optimal: %+v", row)
	}
	// SSA live-range splitting can only lower the achievable optimum.
	if row.OptSSA > row.OptDirect+1e-9 {
		t.Fatalf("SSA optimum above direct optimum: %+v", row)
	}
	if FormatSSAExtension(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestRunCoalesceSmoke(t *testing.T) {
	rows := RunCoalesce([]Suite{SuiteLAOKernels})
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Moves == 0 || r.TotalCost <= 0 {
		t.Fatalf("no moves found: %+v", r)
	}
	if r.Aggressive < r.Conserv-1e-9 {
		t.Fatalf("conservative eliminated more than aggressive: %+v", r)
	}
	if r.Aggressive < 0 || r.Aggressive > 1 || r.Conserv < 0 || r.Conserv > 1 {
		t.Fatalf("fractions out of range: %+v", r)
	}
	if FormatCoalesce(rows) == "" {
		t.Fatal("empty table")
	}
	// Non-chordal suites are skipped.
	if got := RunCoalesce([]Suite{SuiteJVM98}); len(got) != 0 {
		t.Fatalf("non-chordal suite not skipped: %+v", got)
	}
}
