package verify

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/liveness"
	"repro/internal/regassign"
)

// DefaultMachines is the target sweep of the machine-constrained
// differential check: every registered machine.
func DefaultMachines() []arch.Machine {
	names := arch.Names()
	ms := make([]arch.Machine, 0, len(names))
	for _, n := range names {
		m, err := arch.ByName(n)
		if err != nil {
			panic(err) // registry self-lookup cannot fail
		}
		ms = append(ms, m)
	}
	return ms
}

// CheckConstrainedSeed generates one constrained function per register count
// and checks it under the machine instantiated at that count. The function
// is regenerated per R because the annotations scale with the machine shape:
// the ABI pins and clobber sets of st231 at R=2 are not those at R=8.
func CheckConstrainedSeed(seed int64, m arch.Machine, opts Options) error {
	opts.fill()
	for _, r := range opts.Registers {
		cons := m.Constraints(r)
		f := irgen.ConstrainedFromSeed(seed, cons)
		if err := CheckConstrained(f, cons, opts); err != nil {
			return fmt.Errorf("machine %s R=%d: %w", m.Name, r, err)
		}
	}
	return nil
}

// CheckConstrained runs the machine-constrained differential matrix over f:
// every allocator of opts, under the given constraint instance (whose
// per-class capacities play the role of R — opts.Registers is not swept
// here; see CheckConstrainedSeed). Five invariants are asserted, all
// recomputed from liveness rather than trusted from the pipeline:
//
//  1. per-class pressure — at every point, at most cap(c) allocated values
//     of class c are live;
//  2. class membership — every allocated value holds a register of its own
//     class with an index inside the class capacity (and interfering values
//     never share one);
//  3. pre-coloring — every allocated pre-colored value holds exactly its
//     pin;
//  4. clobber avoidance — no value assigned a register a call clobbers is
//     live across that call;
//  5. semantics — the rewrite behaves like the original under the plain
//     interpreter AND under the clobber-modelling interpreter, which
//     tramples caller-saved registers at every call (so a clobber violation
//     that slipped past 4 would still surface as a miscompile).
func CheckConstrained(f *ir.Func, cons *arch.Constraints, opts Options) error {
	opts.fill()
	r := cons.Cap(ir.ClassGPR)
	fail := func(allocName string, input []int64, format string, args ...any) error {
		return &Failure{
			Func: f.Name, Allocator: allocName, R: r, Input: input,
			Detail: fmt.Sprintf("[machine=%s] %s", cons.Machine, fmt.Sprintf(format, args...)),
		}
	}
	orig := make([]*interp.Result, len(opts.Inputs))
	for i, in := range opts.Inputs {
		res, err := interp.Run(f, in, opts.Budget)
		if err != nil {
			return fail("-", in, "original function failed to execute: %v", err)
		}
		orig[i] = res
	}
	info := liveness.Compute(f)
	spans := regassign.LiveThroughCalls(info)

	for _, allocName := range opts.Allocators {
		a, err := core.AllocatorByName(allocName)
		if err != nil {
			return err
		}
		out, err := core.Run(f, core.Config{Registers: r, Allocator: a, Constraints: cons})
		if err != nil {
			return fail(allocName, nil, "pipeline: %v", err)
		}
		if err := checkClassPressure(info, out, cons); err != nil {
			return fail(allocName, nil, "%v", err)
		}
		if out.RegisterOf == nil {
			continue
		}
		if err := checkConstrainedAssignment(info, out, cons, spans); err != nil {
			return fail(allocName, nil, "%v", err)
		}
		for i, in := range opts.Inputs {
			res, err := interp.Run(out.Rewritten, in, opts.Budget)
			if err != nil {
				return fail(allocName, in, "rewritten function failed to execute: %v", err)
			}
			if d := orig[i].Diff(res); d != "" {
				return fail(allocName, in, "rewrite changed behaviour (spilled %v): %s",
					out.SpilledValues, d)
			}
			resC, err := interp.RunWithClobbers(out.Rewritten, in, opts.Budget, out.RegisterOf)
			if err != nil {
				return fail(allocName, in, "rewritten function failed under clobber modelling: %v", err)
			}
			if d := orig[i].Diff(resC); d != "" {
				return fail(allocName, in,
					"clobber modelling changed behaviour (a live value sits in a caller-saved register): %s", d)
			}
		}
	}
	return nil
}

// checkClassPressure re-derives invariant 1: at every program point, at most
// cap(c) allocated values of each class c are simultaneously live.
func checkClassPressure(info *liveness.Info, out *core.Outcome, cons *arch.Constraints) error {
	f := info.F
	allocated := allocatedValues(out)
	for _, p := range info.Points {
		var count [ir.NumClasses]int
		for _, v := range p.Live {
			if allocated[v] {
				count[f.ClassOf(v)]++
			}
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			if count[c] > cons.Cap(c) {
				return fmt.Errorf("allocated %s pressure %d > capacity %d at block %d point %d",
					c, count[c], cons.Cap(c), p.Block, p.Index)
			}
		}
	}
	return nil
}

// checkConstrainedAssignment re-derives invariants 2–4 from the per-point
// live sets: class membership and capacity, interference freedom, honored
// pre-colors, and no clobbered register held across its call.
func checkConstrainedAssignment(info *liveness.Info, out *core.Outcome,
	cons *arch.Constraints, spans map[[2]int][]int) error {
	f := info.F
	allocated := allocatedValues(out)
	regOf := out.RegisterOf
	for v, al := range allocated {
		if !al {
			continue
		}
		reg := regOf[v]
		c := f.ClassOf(v)
		if reg < 0 || ir.RegClassOf(reg) != c {
			return fmt.Errorf("%s value %s got %s", c, f.NameOf(v), ir.RegName(reg))
		}
		if idx := ir.RegIndexOf(reg); idx >= cons.Cap(c) {
			return fmt.Errorf("value %s got %s outside class capacity %d",
				f.NameOf(v), ir.RegName(reg), cons.Cap(c))
		}
		if pin, ok := f.PreColorOf(v); ok && reg != pin {
			return fmt.Errorf("pre-colored value %s holds %s instead of %s",
				f.NameOf(v), ir.RegName(reg), ir.RegName(pin))
		}
	}
	seen := make(map[int]int)
	for _, p := range info.Points {
		for k := range seen {
			delete(seen, k)
		}
		for _, v := range p.Live {
			if !allocated[v] {
				continue
			}
			if prev, ok := seen[regOf[v]]; ok {
				return fmt.Errorf("values %s and %s share %s at block %d point %d",
					f.NameOf(prev), f.NameOf(v), ir.RegName(regOf[v]), p.Block, p.Index)
			}
			seen[regOf[v]] = v
		}
	}
	for key, live := range spans {
		ins := &f.Blocks[key[0]].Instrs[key[1]]
		for _, v := range live {
			if !allocated[v] {
				continue
			}
			for _, ref := range ins.Clobbers {
				if regOf[v] == ref {
					return fmt.Errorf("value %s holds caller-saved %s across the call at block %d instr %d",
						f.NameOf(v), ir.RegName(ref), key[0], key[1])
				}
			}
		}
	}
	return nil
}

// SoakConstrained checks seeds [base, base+n) across all the given machines
// and returns up to maxFail failures; progress is reported through report if
// non-nil. The machine-constrained counterpart of Soak.
func SoakConstrained(base int64, n int, machines []arch.Machine, opts Options,
	maxFail int, report func(done int, failed int)) []*Failure {
	if maxFail <= 0 {
		maxFail = 1
	}
	if len(machines) == 0 {
		machines = DefaultMachines()
	}
	var fails []*Failure
	for i := 0; i < n; i++ {
		for _, m := range machines {
			err := CheckConstrainedSeed(base+int64(i), m, opts)
			if err == nil {
				continue
			}
			var f *Failure
			if errors.As(err, &f) {
				// Keep the machine/R context the seed wrapper added.
				f = &Failure{Func: f.Func, Allocator: f.Allocator, R: f.R,
					Input: f.Input, Detail: err.Error()}
			} else {
				f = &Failure{Func: fmt.Sprintf("seed%d", base+int64(i)), Detail: err.Error()}
			}
			fails = append(fails, f)
			if len(fails) >= maxFail {
				return fails
			}
		}
		if report != nil {
			report(i+1, len(fails))
		}
	}
	return fails
}
