// Package verify is the semantic verification harness of the repository: it
// closes the loop between the allocator pipeline (internal/core), the
// reference interpreter (internal/interp) and the random program generator
// (internal/irgen) by differential checking.
//
// For one function, every allocator, and every register count R, the
// harness asserts three independent invariants:
//
//  1. Allocation soundness — at every program point, at most R of the
//     values the allocator kept are simultaneously live (recomputed here
//     from liveness, not trusted from alloc.Problem).
//  2. Assignment soundness — for SSA functions, every kept value holds a
//     register in [0, R) and no two simultaneously-live kept values share
//     one (recomputed from the per-point live sets, independently of
//     regassign.VerifyAssignment).
//  3. Semantic preservation — interpreting the spill-everywhere rewrite on
//     concrete inputs yields the same observable behaviour (return value,
//     side-effect trace, timeout point) as the original function.
//
// Any violation is reported as a *Failure carrying enough context (seed,
// allocator, R, input vector) to replay it deterministically.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ifg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/liveness"
	"repro/internal/regassign"
)

// DefaultRegisters is the register-count sweep of the differential check.
var DefaultRegisters = []int{2, 3, 4, 8}

// DefaultInputs are the concrete input vectors each function pair is
// executed on. Parameters beyond a vector's length read deterministic
// defaults, so short vectors are fine for any arity.
var DefaultInputs = [][]int64{
	{1, 2, 3, 4},
	{-7, 0, 1 << 40},
}

// Options configures a check run.
type Options struct {
	// Registers to sweep (default DefaultRegisters).
	Registers []int
	// Allocators by core.AllocatorByName name (default all).
	Allocators []string
	// Inputs are the concrete input vectors (default DefaultInputs).
	Inputs [][]int64
	// Budget is the interpreter's semantic step budget (default
	// interp.DefaultBudget).
	Budget int
}

func (o *Options) fill() {
	if len(o.Registers) == 0 {
		o.Registers = DefaultRegisters
	}
	if len(o.Allocators) == 0 {
		o.Allocators = core.AllocatorNames()
	}
	if len(o.Inputs) == 0 {
		o.Inputs = DefaultInputs
	}
	if o.Budget <= 0 {
		o.Budget = interp.DefaultBudget
	}
}

// Failure is one invariant violation.
type Failure struct {
	Func      string
	Allocator string
	R         int
	Input     []int64
	Detail    string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("verify: %s [alloc=%s R=%d input=%v]: %s",
		f.Func, f.Allocator, f.R, f.Input, f.Detail)
}

// CheckSeed generates the function for one irgen seed and checks it.
func CheckSeed(seed int64, opts Options) error {
	return CheckFunc(irgen.FromSeed(seed), opts)
}

// CheckModule runs the full differential matrix over every function of a
// compilation unit, in module order, returning the first failure — the
// module-level entry point the batch pipeline's corpus tests drive.
func CheckModule(m *ir.Module, opts Options) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for _, f := range m.Funcs {
		if err := CheckFunc(f, opts); err != nil {
			return fmt.Errorf("module func %s: %w", f.Name, err)
		}
	}
	return nil
}

// CheckFunc runs the full differential matrix over f and returns the first
// failure, or nil.
func CheckFunc(f *ir.Func, opts Options) error {
	opts.fill()
	fail := func(allocName string, r int, input []int64, format string, args ...any) error {
		return &Failure{
			Func: f.Name, Allocator: allocName, R: r, Input: input,
			Detail: fmt.Sprintf(format, args...),
		}
	}
	// Reference executions of the original, one per input vector.
	orig := make([]*interp.Result, len(opts.Inputs))
	for i, in := range opts.Inputs {
		res, err := interp.Run(f, in, opts.Budget)
		if err != nil {
			return fail("-", 0, in, "original function failed to execute: %v", err)
		}
		orig[i] = res
	}
	info := liveness.Compute(f)
	// The paper's layered-optimal allocators are chordal-only (they panic,
	// by contract, on general graphs); restrict the matrix the way the
	// paper's own lineups do. Strict-SSA functions are always chordal.
	chordal := false
	if f.SSA {
		b := ifg.FromLiveness(info)
		chordal = b.Graph.IsPerfectEliminationOrder(b.Graph.PerfectEliminationOrder())
	}
	// Rewrites are a function of the spill set alone, so executions are
	// cached across allocators that agree on what to spill.
	type rewriteRuns struct{ runs []*interp.Result }
	cache := make(map[string]*rewriteRuns)

	for _, allocName := range opts.Allocators {
		if alloc.ChordalOnly(allocName) && !chordal {
			continue
		}
		a, err := core.AllocatorByName(allocName)
		if err != nil {
			return err
		}
		for _, r := range opts.Registers {
			out, err := core.Run(f, core.Config{Registers: r, Allocator: a})
			if err != nil {
				return fail(allocName, r, nil, "pipeline: %v", err)
			}
			if err := checkAllocPressure(info, out, r); err != nil {
				return fail(allocName, r, nil, "%v", err)
			}
			if out.RegisterOf != nil {
				if err := checkAssignment(info, out, r); err != nil {
					return fail(allocName, r, nil, "%v", err)
				}
			}
			rewritten := out.Rewritten
			if rewritten == nil {
				// Non-SSA (or non-chordal) pipelines stop after allocation;
				// spill-everywhere rewriting is still allocator-independent
				// and semantically checkable, so do it here.
				spilledVals := make([]bool, f.NumValues)
				for _, v := range out.SpilledValues {
					spilledVals[v] = true
				}
				rewritten = regassign.InsertSpillCode(f, spilledVals)
				if err := rewritten.Validate(); err != nil {
					return fail(allocName, r, nil, "rewrite invalid: %v", err)
				}
			}
			key := spillKey(out.SpilledValues)
			runs := cache[key]
			if runs == nil {
				runs = &rewriteRuns{runs: make([]*interp.Result, len(opts.Inputs))}
				for i, in := range opts.Inputs {
					res, err := interp.Run(rewritten, in, opts.Budget)
					if err != nil {
						return fail(allocName, r, in, "rewritten function failed to execute: %v", err)
					}
					runs.runs[i] = res
				}
				cache[key] = runs
			}
			for i, in := range opts.Inputs {
				if d := orig[i].Diff(runs.runs[i]); d != "" {
					return fail(allocName, r, in,
						"rewrite changed behaviour (spilled %v): %s", out.SpilledValues, d)
				}
			}
		}
	}
	return nil
}

// checkAllocPressure re-derives invariant 1 from the per-point live sets:
// at most R allocated values live anywhere.
func checkAllocPressure(info *liveness.Info, out *core.Outcome, r int) error {
	allocated := allocatedValues(out)
	for _, p := range info.Points {
		live := 0
		for _, v := range p.Live {
			if allocated[v] {
				live++
			}
		}
		if live > r {
			return fmt.Errorf("allocated pressure %d > R=%d at block %d point %d",
				live, r, p.Block, p.Index)
		}
	}
	return nil
}

// checkAssignment re-derives invariant 2: every allocated value has a
// register in [0, R), and interfering allocated values never share one.
func checkAssignment(info *liveness.Info, out *core.Outcome, r int) error {
	allocated := allocatedValues(out)
	regOf := out.RegisterOf
	for v, al := range allocated {
		if !al {
			continue
		}
		if regOf[v] < 0 || regOf[v] >= r {
			return fmt.Errorf("allocated value %s got register %d, want [0,%d)",
				info.F.NameOf(v), regOf[v], r)
		}
	}
	seen := make([]int, r)
	for _, p := range info.Points {
		for i := range seen {
			seen[i] = -1
		}
		for _, v := range p.Live {
			if !allocated[v] || regOf[v] < 0 || regOf[v] >= len(seen) {
				continue
			}
			if prev := seen[regOf[v]]; prev >= 0 {
				return fmt.Errorf("values %s and %s share r%d at block %d point %d",
					info.F.NameOf(prev), info.F.NameOf(v), regOf[v], p.Block, p.Index)
			}
			seen[regOf[v]] = v
		}
	}
	return nil
}

// allocatedValues maps the vertex-indexed allocation back to value IDs.
func allocatedValues(out *core.Outcome) []bool {
	allocated := make([]bool, out.F.NumValues)
	for vx, al := range out.Result.Allocated {
		if al {
			allocated[out.ValueOf[vx]] = true
		}
	}
	return allocated
}

func spillKey(spilled []int) string {
	var b strings.Builder
	for _, v := range spilled {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Soak checks seeds [base, base+n) and returns the failures (nil Detail
// entries never occur) up to maxFail; progress is reported through report
// if non-nil.
func Soak(base int64, n int, opts Options, maxFail int, report func(done int, failed int)) []*Failure {
	if maxFail <= 0 {
		maxFail = 1
	}
	var fails []*Failure
	for i := 0; i < n; i++ {
		err := CheckSeed(base+int64(i), opts)
		if err != nil {
			if f, ok := err.(*Failure); ok {
				fails = append(fails, f)
			} else {
				fails = append(fails, &Failure{Func: fmt.Sprintf("seed%d", base+int64(i)), Detail: err.Error()})
			}
			if len(fails) >= maxFail {
				return fails
			}
		}
		if report != nil {
			report(i+1, len(fails))
		}
	}
	return fails
}
