package verify

import (
	"testing"

	"repro/internal/core"
)

// TestDegradedSoakAcceptance is the degradation ladder's acceptance bar:
// 100 generated functions (SSA and non-SSA mixed), R ∈ {2, 3, 4, 8}, each
// under a budget sweep derived from its own baseline spend — every sweep
// point must degrade (never fail), every degraded outcome must pass
// pressure, interference and interpreter-equality checks, and across the
// soak both ladder rungs must have been exercised.
func TestDegradedSoakAcceptance(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 20
	}
	fails, cov := SoakDegraded(1, n, Options{}, 5, nil)
	for _, f := range fails {
		t.Error(f)
	}
	if len(fails) == 0 && !cov.Complete() {
		t.Fatalf("soak did not exercise both rungs: %v", cov)
	}
	t.Logf("rung coverage over %d seeds: %v", n, cov)
}

// TestConstrainedDegradedSoak runs the machine-constrained ladder over all
// registered machines. The constrained ladder has no linear-scan rung, so
// coverage here means spill-all outcomes that still honor class capacities
// and survive the clobber-modelling interpreter.
func TestConstrainedDegradedSoak(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 3
	}
	fails, cov := SoakConstrainedDegraded(1, n, nil, Options{Registers: []int{2, 4}}, 5, nil)
	for _, f := range fails {
		t.Error(f)
	}
	if cov[core.RungSpillAll] == 0 {
		t.Fatalf("constrained soak produced no spill-all outcomes: %v", cov)
	}
	if cov[core.RungLinearScan] != 0 {
		t.Fatalf("constrained ladder produced a linear-scan outcome: %v", cov)
	}
}

// TestSoakDegradedProgress exercises the soak driver's reporting contract
// (used by cmd/verify).
func TestSoakDegradedProgress(t *testing.T) {
	calls := 0
	fails, cov := SoakDegraded(1, 5, Options{Registers: []int{3}}, 5,
		func(done, failed int) { calls = done })
	for _, f := range fails {
		t.Error(f)
	}
	if calls != 5 {
		t.Fatalf("progress callback saw %d seeds, want 5", calls)
	}
	if len(cov) == 0 {
		t.Fatal("no rung coverage recorded")
	}
}
