package verify

import (
	"fmt"
	"slices"

	"repro/internal/arch"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/liveness"
	"repro/internal/regassign"
)

// CoalescePolicies is the policy sweep of the move-preservation check.
var CoalescePolicies = []coalesce.Policy{coalesce.Aggressive, coalesce.Conservative}

// CheckCoalescing runs the move-preservation differential over f: for every
// allocator × R × policy, the coalescing-biased run must
//
//  1. spill exactly what the unbiased run spills (same spill set, same
//     spill cost) — bias may only ever re-pick registers, never trade a
//     spill for a move;
//  2. not increase the rewritten program's dynamic move cost: the residual
//     (uncoalesced) move cost under bias is ≤ the unbiased residual;
//  3. keep the assignment sound (re-derived from liveness, invariant 2 of
//     CheckFunc);
//  4. agree with the stats the outcome reports (eliminated + residual =
//     total, recomputed from the assignment).
//
// An explicit Off run must be byte-identical to a config that never
// mentions coalescing — the zero-value compatibility pin.
func CheckCoalescing(f *ir.Func, opts Options) error {
	opts.fill()
	fail := func(allocName string, r int, policy coalesce.Policy, format string, args ...any) error {
		return &Failure{
			Func: f.Name, Allocator: allocName, R: r,
			Detail: fmt.Sprintf("[coalesce=%s] %s", policy, fmt.Sprintf(format, args...)),
		}
	}
	info := liveness.Compute(f)
	chordal := false
	if f.SSA {
		b := ifg.FromLiveness(info)
		chordal = b.Graph.IsPerfectEliminationOrder(b.Graph.PerfectEliminationOrder())
	}
	if !chordal {
		return nil // bias rides the chordal fast path only
	}
	moves := coalesce.MovesFromFunc(f, core.Config{}.CostModel)

	for _, allocName := range opts.Allocators {
		a, err := core.AllocatorByName(allocName)
		if err != nil {
			return err
		}
		for _, r := range opts.Registers {
			base, err := core.Run(f, core.Config{Registers: r, Allocator: a})
			if err != nil {
				return fail(allocName, r, coalesce.Off, "unbiased pipeline: %v", err)
			}
			offOut, err := core.Run(f, core.Config{Registers: r, Allocator: a, Coalescing: coalesce.Off})
			if err != nil {
				return fail(allocName, r, coalesce.Off, "explicit-off pipeline: %v", err)
			}
			if d := diffOutcomes(base, offOut); d != "" {
				return fail(allocName, r, coalesce.Off, "explicit Off differs from zero config: %s", d)
			}
			_, baseResidual := coalesce.ResidualCost(moves, base.RegisterOf)
			for _, policy := range CoalescePolicies {
				out, err := core.Run(f, core.Config{Registers: r, Allocator: a, Coalescing: policy})
				if err != nil {
					return fail(allocName, r, policy, "biased pipeline: %v", err)
				}
				if !slices.Equal(out.SpilledValues, base.SpilledValues) || out.SpillCost != base.SpillCost {
					return fail(allocName, r, policy,
						"bias changed the spill decision: spilled %v (cost %g), unbiased %v (cost %g)",
						out.SpilledValues, out.SpillCost, base.SpilledValues, base.SpillCost)
				}
				if err := checkAllocPressure(info, out, r); err != nil {
					return fail(allocName, r, policy, "%v", err)
				}
				if out.RegisterOf != nil {
					if err := checkAssignment(info, out, r); err != nil {
						return fail(allocName, r, policy, "%v", err)
					}
				}
				elim, residual := coalesce.ResidualCost(moves, out.RegisterOf)
				if residual > baseResidual {
					return fail(allocName, r, policy,
						"bias increased dynamic move cost: residual %g > unbiased %g", residual, baseResidual)
				}
				if st := out.Coalesce; st != nil {
					if st.EliminatedCost != elim || st.ResidualCost != residual {
						return fail(allocName, r, policy,
							"reported stats disagree with the assignment: reported (elim %g, residual %g), recomputed (%g, %g)",
							st.EliminatedCost, st.ResidualCost, elim, residual)
					}
					if diff := st.MoveCost - (st.EliminatedCost + st.ResidualCost); diff > 1e-9 || diff < -1e-9 {
						return fail(allocName, r, policy, "stats do not sum: %+v", st)
					}
				}
			}
		}
	}
	return nil
}

// CheckCoalescingSeed generates the function for one irgen seed and runs the
// move-preservation differential on it.
func CheckCoalescingSeed(seed int64, opts Options) error {
	return CheckCoalescing(irgen.FromSeed(seed), opts)
}

// CheckCoalescingConstrained is the machine-constrained counterpart: per
// allocator × policy under one constraint instance, biased runs must keep
// the unbiased spill decision, stay sound under the class/pin/clobber
// invariants, and never increase the residual move cost.
func CheckCoalescingConstrained(f *ir.Func, cons *arch.Constraints, opts Options) error {
	opts.fill()
	r := cons.Cap(ir.ClassGPR)
	fail := func(allocName string, policy coalesce.Policy, format string, args ...any) error {
		return &Failure{
			Func: f.Name, Allocator: allocName, R: r,
			Detail: fmt.Sprintf("[machine=%s coalesce=%s] %s", cons.Machine, policy, fmt.Sprintf(format, args...)),
		}
	}
	info := liveness.Compute(f)
	spans := regassign.LiveThroughCalls(info)
	moves := coalesce.MovesFromFunc(f, core.Config{}.CostModel)

	for _, allocName := range opts.Allocators {
		a, err := core.AllocatorByName(allocName)
		if err != nil {
			return err
		}
		base, err := core.Run(f, core.Config{Registers: r, Allocator: a, Constraints: cons})
		if err != nil {
			return fail(allocName, coalesce.Off, "unbiased pipeline: %v", err)
		}
		_, baseResidual := coalesce.ResidualCost(moves, base.RegisterOf)
		for _, policy := range CoalescePolicies {
			out, err := core.Run(f, core.Config{Registers: r, Allocator: a, Constraints: cons, Coalescing: policy})
			if err != nil {
				return fail(allocName, policy, "biased pipeline: %v", err)
			}
			if !slices.Equal(out.SpilledValues, base.SpilledValues) || out.SpillCost != base.SpillCost {
				return fail(allocName, policy,
					"bias changed the spill decision: spilled %v (cost %g), unbiased %v (cost %g)",
					out.SpilledValues, out.SpillCost, base.SpilledValues, base.SpillCost)
			}
			if err := checkClassPressure(info, out, cons); err != nil {
				return fail(allocName, policy, "%v", err)
			}
			if out.RegisterOf == nil {
				continue
			}
			if err := checkConstrainedAssignment(info, out, cons, spans); err != nil {
				return fail(allocName, policy, "%v", err)
			}
			_, residual := coalesce.ResidualCost(moves, out.RegisterOf)
			if residual > baseResidual {
				return fail(allocName, policy,
					"bias increased dynamic move cost: residual %g > unbiased %g", residual, baseResidual)
			}
		}
	}
	return nil
}

// CheckCoalescingConstrainedSeed regenerates the constrained function per
// register count (annotations scale with the machine shape, matching
// CheckConstrainedSeed) and checks each instance.
func CheckCoalescingConstrainedSeed(seed int64, m arch.Machine, opts Options) error {
	opts.fill()
	for _, r := range opts.Registers {
		cons := m.Constraints(r)
		f := irgen.ConstrainedFromSeed(seed, cons)
		if err := CheckCoalescingConstrained(f, cons, opts); err != nil {
			return fmt.Errorf("machine %s R=%d: %w", m.Name, r, err)
		}
	}
	return nil
}

// diffOutcomes compares the decision-level products of two runs and
// describes the first difference ("" when byte-identical).
func diffOutcomes(a, b *core.Outcome) string {
	if !slices.Equal(a.SpilledValues, b.SpilledValues) {
		return fmt.Sprintf("spill sets %v vs %v", a.SpilledValues, b.SpilledValues)
	}
	if a.SpillCost != b.SpillCost {
		return fmt.Sprintf("spill costs %g vs %g", a.SpillCost, b.SpillCost)
	}
	if !slices.Equal(a.RegisterOf, b.RegisterOf) {
		return fmt.Sprintf("assignments %v vs %v", a.RegisterOf, b.RegisterOf)
	}
	ar, br := "", ""
	if a.Rewritten != nil {
		ar = a.Rewritten.String()
	}
	if b.Rewritten != nil {
		br = b.Rewritten.String()
	}
	if ar != br {
		return "rewritten bodies differ"
	}
	if (a.Coalesce == nil) != (b.Coalesce == nil) {
		return "one outcome carries coalesce stats"
	}
	return ""
}

// SoakCoalescing checks seeds [base, base+n) under the move-preservation
// differential and returns up to maxFail failures; progress is reported
// through report if non-nil.
func SoakCoalescing(base int64, n int, opts Options, maxFail int, report func(done int, failed int)) []*Failure {
	if maxFail <= 0 {
		maxFail = 1
	}
	var fails []*Failure
	for i := 0; i < n; i++ {
		err := CheckCoalescingSeed(base+int64(i), opts)
		if err != nil {
			if f, ok := err.(*Failure); ok {
				fails = append(fails, f)
			} else {
				fails = append(fails, &Failure{Func: fmt.Sprintf("seed%d", base+int64(i)), Detail: err.Error()})
			}
			if len(fails) >= maxFail {
				return fails
			}
		}
		if report != nil {
			report(i+1, len(fails))
		}
	}
	return fails
}
