package verify

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/irgen"
	"repro/internal/regassign"
)

// FuzzDifferentialSeed is the main fuzz surface of the verification
// subsystem: the fuzzed integer fully determines a generated function
// (SSA-ness, shape, and body via irgen.FromSeed), which is then pushed
// through the whole differential matrix — every applicable allocator at
// every default register count, with semantic, pressure, and assignment
// checks. Run long with:
//
//	go test -run '^$' -fuzz FuzzDifferentialSeed ./internal/verify
func FuzzDifferentialSeed(f *testing.F) {
	// Seeds that found (or guard) real bugs, plus a spread of shapes.
	for _, seed := range []int64{0, 1, 2, 5, 11, 16, 27, 33, 35, 47, 100, 12345, -1, 1 << 33} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		// A modest budget keeps executions per input bounded; timeout
		// points are still compared exactly between original and rewrite.
		if err := CheckSeed(seed, Options{Budget: 1024}); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSpillEverywhere drives the rewriter alone, harder than the allocator
// matrix would: an arbitrary subset of values (chosen by the mask) is
// spilled regardless of any allocator's opinion, and the rewrite must stay
// valid and observably equivalent.
func FuzzSpillEverywhere(f *testing.F) {
	f.Add(int64(1), uint64(0))
	f.Add(int64(7), uint64(0xffffffffffffffff))
	f.Add(int64(42), uint64(0xaaaaaaaaaaaaaaaa))
	f.Add(int64(5), uint64(0x123456789))
	f.Fuzz(func(t *testing.T, seed int64, mask uint64) {
		fn := irgen.FromSeed(seed)
		spilled := make([]bool, fn.NumValues)
		for v := range spilled {
			spilled[v] = mask>>(uint(v)%64)&1 == 1
		}
		g := regassign.InsertSpillCode(fn, spilled)
		if err := g.Validate(); err != nil {
			t.Fatalf("rewrite invalid: %v\n%s", err, g)
		}
		for _, in := range DefaultInputs {
			r1, err := interp.Run(fn, in, 1024)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(g, in, 1024)
			if err != nil {
				t.Fatalf("rewritten: %v", err)
			}
			if d := r1.Diff(r2); d != "" {
				t.Fatalf("spill mask %#x changed behaviour: %s", mask, d)
			}
		}
	})
}
