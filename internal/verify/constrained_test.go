package verify

import (
	"errors"
	"os"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/raerr"
)

func mustParseFile(t *testing.T, path string) *ir.Func {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return ir.MustParse(string(src))
}

// TestConstrainedDifferentialAcceptance is the machine-constrained
// acceptance bar: generated constrained functions, every registered
// allocator, every machine, R ∈ {2, 3, 4, 8} — per-class pressure within
// capacity, no value outside its class, pre-colors honored, no caller-saved
// register held across a call, and the rewrite observably equivalent to the
// original under both the plain and the clobber-modelling interpreter.
func TestConstrainedDifferentialAcceptance(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	for _, m := range DefaultMachines() {
		for seed := int64(1); seed <= int64(n); seed++ {
			if err := CheckConstrainedSeed(seed, m, Options{}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestConstrainedCorpus runs the constrained matrix over the hand-written
// constrained corpus function under a machine that has every annotated
// resource (both classes, pins r0/r1 in range).
func TestConstrainedCorpus(t *testing.T) {
	f := mustParseFile(t, "../ir/testdata/constrained.ir")
	for _, r := range DefaultRegisters {
		cons := arch.ARMv7.Constraints(r)
		if err := CheckConstrained(f, cons, Options{}); err != nil {
			t.Errorf("armv7 R=%d: %v", r, err)
		}
	}
}

// TestClobberMiscompileCaught pins the property the clobber-modelling
// interpreter exists for: an assignment that deliberately ignores a call's
// clobber set — leaving a live value in a caller-saved register across the
// call — is an observable miscompile, while a clobber-honoring assignment of
// the same function is not.
func TestClobberMiscompileCaught(t *testing.T) {
	f := ir.MustParse(`
func clob ssa {
b0:
  a = param 0
  b = unary a
  c = call a !clobbers=r0,r1
  d = arith b, c
  ret d
}`)
	in := []int64{42}
	orig, err := interp.Run(f, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Values: a=0 b=1 c=2 d=3. b is live across the call; park it in the
	// clobbered r1 (a dies at the call, so r0 for it is immaterial).
	bad := []int{ir.MakeReg(ir.ClassGPR, 0), ir.MakeReg(ir.ClassGPR, 1),
		ir.MakeReg(ir.ClassGPR, 0), ir.MakeReg(ir.ClassGPR, 1)}
	res, err := interp.RunWithClobbers(f, in, 0, bad)
	if err != nil {
		t.Fatal(err)
	}
	if d := orig.Diff(res); d == "" {
		t.Fatal("clobber-ignoring assignment went unnoticed: b survived the call in clobbered r1")
	}
	// The same value in the call-surviving r2 is fine.
	good := append([]int(nil), bad...)
	good[1] = ir.MakeReg(ir.ClassGPR, 2)
	res, err = interp.RunWithClobbers(f, in, 0, good)
	if err != nil {
		t.Fatal(err)
	}
	if d := orig.Diff(res); d != "" {
		t.Fatalf("clobber-honoring assignment diverged: %s", d)
	}
	// And the real constrained pipeline must produce a clobber-honoring
	// allocation for this function on a machine with call-surviving
	// registers (armv7 at R=4 clobbers r0, r1 and preserves r2, r3).
	cons := arch.ARMv7.Constraints(4)
	if err := CheckConstrained(f, cons, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestConstrainedSpillsUnderTotalClobber pins the paper's harshest regime:
// on st231 every allocable register is caller-saved, so every value live
// across a call must be spilled — keeping any is a pipeline bug the
// differential matrix would report as a clobber-modelling miscompile.
func TestConstrainedSpillsUnderTotalClobber(t *testing.T) {
	cons := arch.ST231.Constraints(4)
	f := ir.MustParse(`
func total ssa {
b0:
  a = param 0 !pin=r0
  b = unary a
  c = call a !clobbers=r0,r1,r2,r3
  d = arith b, c
  e = arith d, a
  ret e
}`)
	out, err := core.Run(f, core.Config{Registers: 4, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	// a (pinned, live across) and b (live across) must both be spilled.
	spilled := make(map[int]bool, len(out.SpilledValues))
	for _, v := range out.SpilledValues {
		spilled[v] = true
	}
	for _, want := range []int{0, 1} {
		if !spilled[want] {
			t.Errorf("value %s kept in a register across a total-clobber call (spilled: %v)",
				f.NameOf(want), out.SpilledValues)
		}
	}
	if err := CheckConstrained(f, cons, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestMachineMismatchTyped checks the typed rejection of annotations the
// machine cannot express: an FP value on the integer-only st231, and a
// pre-color outside the class capacity.
func TestMachineMismatchTyped(t *testing.T) {
	fp := ir.MustParse(`
func fp ssa {
b0:
  a = param 0
  b = unary a !fp
  ret b
}`)
	_, err := core.Run(fp, core.Config{Registers: 4, Constraints: arch.ST231.Constraints(4)})
	if !errors.Is(err, raerr.ErrMachineMismatch) {
		t.Errorf("FP value on st231: got %v, want ErrMachineMismatch", err)
	}
	var fe *raerr.FuncError
	if !errors.As(err, &fe) || fe.Stage != "constrain" {
		t.Errorf("FP value on st231: stage = %v, want constrain", err)
	}
	// The same function is fine on a machine with FP registers.
	if _, err := core.Run(fp, core.Config{Registers: 4, Constraints: arch.ARMv7.Constraints(4)}); err != nil {
		t.Errorf("FP value on armv7: %v", err)
	}
	pin := ir.MustParse(`
func pin ssa {
b0:
  a = param 0 !pin=r6
  ret a
}`)
	_, err = core.Run(pin, core.Config{Registers: 4, Constraints: arch.ARMv7.Constraints(4)})
	if !errors.Is(err, raerr.ErrMachineMismatch) {
		t.Errorf("pin r6 at cap 4: got %v, want ErrMachineMismatch", err)
	}
	// Non-SSA input is a typed ErrNotSSA, not a mismatch.
	nonSSA := ir.MustParse(`
func multi {
b0:
  a = param 0
  a = unary a
  ret a
}`)
	_, err = core.Run(nonSSA, core.Config{Registers: 4, Constraints: arch.ARMv7.Constraints(4)})
	if !errors.Is(err, raerr.ErrNotSSA) {
		t.Errorf("non-SSA constrained run: got %v, want ErrNotSSA", err)
	}
}

// TestSoakConstrained exercises the constrained soak driver used by
// cmd/verify.
func TestSoakConstrained(t *testing.T) {
	var calls int
	fails := SoakConstrained(1, 4, nil, Options{Registers: []int{3}}, 5,
		func(done, failed int) { calls = done })
	if len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails[0])
	}
	if calls != 4 {
		t.Fatalf("progress callback saw %d seeds, want 4", calls)
	}
}
