// Degradation verification: the budget-governed pipeline promises that with
// Degrade on, any budget trip yields a degraded-but-correct Outcome instead
// of an error. This file closes the loop on that promise the same way
// verify.go does for the ordinary pipeline — by recomputing every invariant
// from liveness and the reference interpreter rather than trusting the
// pipeline's own bookkeeping.
//
// The budget sweep is derived from the function itself: a baseline run under
// an ample budget records its true step spend S, and the check then replays
// the run under {1, S/8, S/4, S/2, 3S/4, S-1} steps plus an admission-gate
// trip. Step charging is deterministic, so every limit below S is guaranteed
// to trip — each sweep point must produce a degraded outcome, never an
// error, and the trip points are spread across the pipeline stages so both
// ladder rungs (linear-scan and spill-all) get exercised.
package verify

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/liveness"
	"repro/internal/regassign"
)

// ampleSteps is a step budget no generated function approaches: the baseline
// run carries it so the meter is active (and records its spend) without ever
// tripping.
const ampleSteps = 1 << 40

// RungCoverage counts how many degraded outcomes each ladder rung produced
// across a check run. Soak-level tests assert Complete() so a regression
// that silently stops exercising one rung (e.g. every trip landing before
// the problem structure exists) fails loudly instead of vacuously passing.
type RungCoverage map[string]int

func (c RungCoverage) add(rung string) {
	if c != nil {
		c[rung]++
	}
}

// Complete reports whether both ladder rungs were exercised.
func (c RungCoverage) Complete() bool {
	return c[core.RungLinearScan] > 0 && c[core.RungSpillAll] > 0
}

func (c RungCoverage) String() string {
	return fmt.Sprintf("linear-scan=%d spill-all=%d", c[core.RungLinearScan], c[core.RungSpillAll])
}

// degradeBudgets is the sweep of limits for a function whose full governed
// run spends s steps: trip points spread across the pipeline (every steps
// limit is below s, so each one is guaranteed to trip) plus the admission
// gate, which degrades before any analysis runs.
func degradeBudgets(s int64) []budget.Limits {
	seen := make(map[int64]bool)
	var out []budget.Limits
	add := func(steps int64) {
		if steps < 1 {
			steps = 1
		}
		if steps >= s || seen[steps] {
			return
		}
		seen[steps] = true
		out = append(out, budget.Limits{Steps: steps})
	}
	add(1)
	add(s / 8)
	add(s / 4)
	add(s / 2)
	add(3 * s / 4)
	add(s - 1)
	out = append(out, budget.Limits{MaxValues: 1})
	return out
}

func limitsLabel(l budget.Limits) string {
	if l.MaxValues > 0 {
		return fmt.Sprintf("maxvalues=%d", l.MaxValues)
	}
	return fmt.Sprintf("steps=%d", l.Steps)
}

// CheckDegradedSeed generates the function for one irgen seed and checks its
// degradation ladder. cov (nil-safe) accumulates rung coverage.
func CheckDegradedSeed(seed int64, opts Options, cov RungCoverage) error {
	return CheckDegradedFunc(irgen.FromSeed(seed), opts, cov)
}

// CheckDegradedFunc verifies the degradation ladder on f for every register
// count of opts, using the pipeline's default allocator (degradation is a
// property of the governed pipeline, not of one algorithm; opts.Allocators
// is ignored). For each budget of the sweep it asserts:
//
//  1. the run degrades — it returns an Outcome with Degraded set, never an
//     error (a budget below the baseline spend that completes un-degraded,
//     or fails outright, is a ladder bug);
//  2. the rung label is one of the two known rungs;
//  3. allocation soundness — at most R of the values the rung kept are
//     simultaneously live, recomputed from liveness (trivial for spill-all,
//     load-bearing for the linear-scan rung);
//  4. assignment soundness — when the rung assigned registers, no two
//     simultaneously-live kept values share one;
//  5. semantic preservation — the rung's spill-everywhere rewrite behaves
//     exactly like the original on opts.Inputs.
func CheckDegradedFunc(f *ir.Func, opts Options, cov RungCoverage) error {
	opts.fill()
	fail := func(r int, lim string, input []int64, format string, args ...any) error {
		return &Failure{
			Func: f.Name, Allocator: "governed[" + lim + "]", R: r, Input: input,
			Detail: fmt.Sprintf(format, args...),
		}
	}
	orig := make([]*interp.Result, len(opts.Inputs))
	for i, in := range opts.Inputs {
		res, err := interp.Run(f, in, opts.Budget)
		if err != nil {
			return fail(0, "-", in, "original function failed to execute: %v", err)
		}
		orig[i] = res
	}
	info := liveness.Compute(f)
	// Rewrites are a function of the spill set alone; executions are shared
	// across rungs, register counts and budgets that spill the same values.
	type rewriteRuns struct{ runs []*interp.Result }
	cache := make(map[string]*rewriteRuns)

	for _, r := range opts.Registers {
		// Baseline: an active meter that never trips, to learn the spend.
		base, err := core.Run(f, core.Config{
			Registers: r,
			Budget:    budget.Limits{Steps: ampleSteps},
			Degrade:   true,
		})
		if err != nil {
			return fail(r, "ample", nil, "baseline governed run failed: %v", err)
		}
		if base.Degraded != nil {
			return fail(r, "ample", nil, "ample budget degraded: rung=%s stage=%s",
				base.Degraded.Rung, base.Degraded.Stage)
		}
		if base.BudgetSpent <= 0 {
			return fail(r, "ample", nil, "active meter recorded no spend")
		}

		for _, lim := range degradeBudgets(base.BudgetSpent) {
			lab := limitsLabel(lim)
			out, err := core.Run(f, core.Config{Registers: r, Budget: lim, Degrade: true})
			if err != nil {
				return fail(r, lab, nil, "governed run failed instead of degrading: %v", err)
			}
			if out.Degraded == nil {
				return fail(r, lab, nil,
					"budget below baseline spend %d did not degrade", base.BudgetSpent)
			}
			d := out.Degraded
			if d.Rung != core.RungLinearScan && d.Rung != core.RungSpillAll {
				return fail(r, lab, nil, "unknown degradation rung %q", d.Rung)
			}
			if d.Reason == nil || d.Stage == "" {
				return fail(r, lab, nil, "degradation carries no stage/reason: %+v", d)
			}
			cov.add(d.Rung)
			if err := checkAllocPressure(info, out, r); err != nil {
				return fail(r, lab, nil, "[rung=%s] %v", d.Rung, err)
			}
			if out.RegisterOf != nil {
				if err := checkAssignment(info, out, r); err != nil {
					return fail(r, lab, nil, "[rung=%s] %v", d.Rung, err)
				}
			}
			rewritten := out.Rewritten
			if rewritten == nil {
				// Non-SSA rungs stop after allocation, like the ordinary
				// non-SSA pipeline; the spill-everywhere rewrite is still
				// allocator-independent and checkable.
				spilledVals := make([]bool, f.NumValues)
				for _, v := range out.SpilledValues {
					spilledVals[v] = true
				}
				rewritten = regassign.InsertSpillCode(f, spilledVals)
				if err := rewritten.Validate(); err != nil {
					return fail(r, lab, nil, "[rung=%s] rewrite invalid: %v", d.Rung, err)
				}
			}
			key := spillKey(out.SpilledValues)
			runs := cache[key]
			if runs == nil {
				runs = &rewriteRuns{runs: make([]*interp.Result, len(opts.Inputs))}
				for i, in := range opts.Inputs {
					res, err := interp.Run(rewritten, in, opts.Budget)
					if err != nil {
						return fail(r, lab, in,
							"[rung=%s] rewritten function failed to execute: %v", d.Rung, err)
					}
					runs.runs[i] = res
				}
				cache[key] = runs
			}
			for i, in := range opts.Inputs {
				if diff := orig[i].Diff(runs.runs[i]); diff != "" {
					return fail(r, lab, in,
						"[rung=%s] degraded rewrite changed behaviour (spilled %v): %s",
						d.Rung, out.SpilledValues, diff)
				}
			}
		}
	}
	return nil
}

// CheckConstrainedDegraded verifies the degradation ladder of the
// machine-constrained pipeline on f. The constrained ladder has no
// linear-scan rung (an interval scan is blind to pins and clobbers), so
// every trip must land on spill-all; beyond the fungible invariants the
// check asserts per-class pressure, constrained assignment soundness, and
// semantic preservation under both the plain and the clobber-modelling
// interpreter.
func CheckConstrainedDegraded(f *ir.Func, cons *arch.Constraints, opts Options, cov RungCoverage) error {
	opts.fill()
	r := cons.Cap(ir.ClassGPR)
	fail := func(lim string, input []int64, format string, args ...any) error {
		return &Failure{
			Func: f.Name, Allocator: "governed[" + lim + "]", R: r, Input: input,
			Detail: fmt.Sprintf("[machine=%s] %s", cons.Machine, fmt.Sprintf(format, args...)),
		}
	}
	orig := make([]*interp.Result, len(opts.Inputs))
	for i, in := range opts.Inputs {
		res, err := interp.Run(f, in, opts.Budget)
		if err != nil {
			return fail("-", in, "original function failed to execute: %v", err)
		}
		orig[i] = res
	}
	info := liveness.Compute(f)

	base, err := core.Run(f, core.Config{
		Registers: r, Constraints: cons,
		Budget:  budget.Limits{Steps: ampleSteps},
		Degrade: true,
	})
	if err != nil {
		return fail("ample", nil, "baseline governed run failed: %v", err)
	}
	if base.Degraded != nil {
		return fail("ample", nil, "ample budget degraded: rung=%s stage=%s",
			base.Degraded.Rung, base.Degraded.Stage)
	}

	for _, lim := range degradeBudgets(base.BudgetSpent) {
		lab := limitsLabel(lim)
		out, err := core.Run(f, core.Config{
			Registers: r, Constraints: cons, Budget: lim, Degrade: true,
		})
		if err != nil {
			return fail(lab, nil, "governed run failed instead of degrading: %v", err)
		}
		if out.Degraded == nil {
			return fail(lab, nil, "budget below baseline spend %d did not degrade", base.BudgetSpent)
		}
		if out.Degraded.Rung != core.RungSpillAll {
			return fail(lab, nil, "constrained ladder produced rung %q, want spill-all",
				out.Degraded.Rung)
		}
		cov.add(out.Degraded.Rung)
		if err := checkClassPressure(info, out, cons); err != nil {
			return fail(lab, nil, "%v", err)
		}
		if out.RegisterOf == nil || out.Rewritten == nil {
			return fail(lab, nil, "constrained spill-all outcome lacks assignment/rewrite")
		}
		spans := regassign.LiveThroughCalls(info)
		if err := checkConstrainedAssignment(info, out, cons, spans); err != nil {
			return fail(lab, nil, "%v", err)
		}
		for i, in := range opts.Inputs {
			res, err := interp.Run(out.Rewritten, in, opts.Budget)
			if err != nil {
				return fail(lab, in, "degraded rewrite failed to execute: %v", err)
			}
			if d := orig[i].Diff(res); d != "" {
				return fail(lab, in, "degraded rewrite changed behaviour: %s", d)
			}
			resC, err := interp.RunWithClobbers(out.Rewritten, in, opts.Budget, out.RegisterOf)
			if err != nil {
				return fail(lab, in, "degraded rewrite failed under clobber modelling: %v", err)
			}
			if d := orig[i].Diff(resC); d != "" {
				return fail(lab, in, "clobber modelling changed degraded behaviour: %s", d)
			}
		}
	}
	return nil
}

// SoakDegraded checks the degradation ladder on seeds [base, base+n),
// returning up to maxFail failures and the accumulated rung coverage (the
// caller asserts cov.Complete() — a soak that never reached one rung proves
// nothing about it). Progress is reported through report if non-nil.
func SoakDegraded(base int64, n int, opts Options, maxFail int,
	report func(done int, failed int)) ([]*Failure, RungCoverage) {
	if maxFail <= 0 {
		maxFail = 1
	}
	cov := RungCoverage{}
	var fails []*Failure
	for i := 0; i < n; i++ {
		err := CheckDegradedSeed(base+int64(i), opts, cov)
		if err != nil {
			if f, ok := err.(*Failure); ok {
				fails = append(fails, f)
			} else {
				fails = append(fails, &Failure{Func: fmt.Sprintf("seed%d", base+int64(i)), Detail: err.Error()})
			}
			if len(fails) >= maxFail {
				return fails, cov
			}
		}
		if report != nil {
			report(i+1, len(fails))
		}
	}
	return fails, cov
}

// SoakConstrainedDegraded checks the constrained degradation ladder on seeds
// [base, base+n) across the given machines (default: all registered),
// regenerating the function per register count like CheckConstrainedSeed.
func SoakConstrainedDegraded(base int64, n int, machines []arch.Machine, opts Options,
	maxFail int, report func(done int, failed int)) ([]*Failure, RungCoverage) {
	if maxFail <= 0 {
		maxFail = 1
	}
	if len(machines) == 0 {
		machines = DefaultMachines()
	}
	opts.fill()
	cov := RungCoverage{}
	var fails []*Failure
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		for _, m := range machines {
			for _, r := range opts.Registers {
				cons := m.Constraints(r)
				f := irgen.ConstrainedFromSeed(seed, cons)
				err := CheckConstrainedDegraded(f, cons, opts, cov)
				if err == nil {
					continue
				}
				var fl *Failure
				if fv, ok := err.(*Failure); ok {
					fl = fv
				} else {
					fl = &Failure{Func: fmt.Sprintf("seed%d", seed), Detail: err.Error()}
				}
				fails = append(fails, fl)
				if len(fails) >= maxFail {
					return fails, cov
				}
			}
		}
		if report != nil {
			report(i+1, len(fails))
		}
	}
	return fails, cov
}
