package verify

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
)

// TestDifferentialAcceptance is the subsystem's acceptance bar: 500
// generated functions (SSA and non-SSA mixed), every registered allocator,
// R ∈ {2, 3, 4, 8} — the rewritten function must be observably equivalent
// to the original on every input, allocated pressure must stay ≤ R, and no
// two interfering allocated values may share a register.
func TestDifferentialAcceptance(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 50
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		if err := CheckSeed(seed, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRegressionDeadPhiDef pins the first bug the differential harness
// found: regassign.Assign never freed the register of a phi def with no
// use in its block and not live-out (dead on arrival), so a dead phi def
// pinned a register for the whole block and the tree-scan ran out of
// registers on perfectly valid ≤-R allocations. These exact seeds failed
// with "no free register" before the fix.
func TestRegressionDeadPhiDef(t *testing.T) {
	for _, seed := range []int64{5, 11, 16, 27, 33, 35, 47} {
		if err := CheckSeed(seed, Options{}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestRegressionDeadPhiDefMinimal is the hand-reduced reproducer: MaxLive
// is 2, so at R=2 nothing spills and every value must be assignable — but
// the dead phi def used to occupy a register across all of b3.
func TestRegressionDeadPhiDefMinimal(t *testing.T) {
	f := ir.MustParse(`
func deadphi ssa {
b0:
  a = param 0
  cond = unary a
  condbr cond, b1, b2
b1:
  x = unary a
  br b3
b2:
  y = unary a
  br b3
b3:
  dead = phi [b1: x], [b2: y]
  w = unary a
  w2 = arith w, a
  ret w2
}`)
	out, err := core.Run(f, core.Config{Registers: 2})
	if err != nil {
		t.Fatalf("R=2 pipeline failed on MaxLive=2 function: %v", err)
	}
	if len(out.SpilledValues) != 0 {
		t.Fatalf("unexpected spills: %v", out.SpilledValues)
	}
	if err := CheckFunc(f, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusDifferential runs the full matrix over the hand-written corpus.
func TestCorpusDifferential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "ir", "testdata", "*.ir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFunc(ir.MustParse(string(src)), Options{}); err != nil {
			t.Errorf("%s: %v", filepath.Base(file), err)
		}
	}
}

// TestCheckFuncCatchesBrokenRewrite makes sure the harness is not
// vacuously green: a deliberately wrong interpreter input (a function whose
// "rewrite" swapped two arith operands) must be flagged.
func TestCheckFuncCatchesBrokenRewrite(t *testing.T) {
	orig := ir.MustParse(`
func f ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  ret c
}`)
	// CheckFunc itself always derives the rewrite from the real pipeline,
	// so drive the comparison directly through interp results.
	broken := ir.MustParse(`
func f ssa {
b0:
  a = param 0
  b = param 1
  c = arith b, a
  ret c
}`)
	r1, err := interp.Run(orig, DefaultInputs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(broken, DefaultInputs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Diff(r2) == "" {
		t.Fatal("operand swap went unnoticed by the differential comparison")
	}
}

// TestSoak exercises the soak driver used by cmd/verify.
func TestSoak(t *testing.T) {
	var calls int
	fails := Soak(1, 10, Options{Registers: []int{3}}, 5, func(done, failed int) { calls = done })
	if len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails[0])
	}
	if calls != 10 {
		t.Fatalf("progress callback saw %d seeds, want 10", calls)
	}
}

// TestCheckModule runs the differential matrix per module function: the
// verify-harness hookup for the batch pipeline's compilation units. It also
// checks failures are attributed to the offending member function.
func TestCheckModule(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	m := irgen.GenerateModule(2026, n)
	if err := CheckModule(m, Options{Registers: []int{2, 4}}); err != nil {
		t.Fatalf("generated module failed verification: %v", err)
	}
	// The module corpus file must verify too.
	src, err := os.ReadFile(filepath.Join("..", "ir", "testdata", "modules", "mixed.ir"))
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := ir.ParseModule(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckModule(corpus, Options{}); err != nil {
		t.Fatalf("module corpus failed verification: %v", err)
	}
}
