package verify

import (
	"testing"

	"repro/internal/arch"
)

// TestCoalescingSoakAcceptance is the move-preservation acceptance bar:
// across 100 seeds × every allocator × R ∈ {2,3,4,8} × both policies,
// biased assignment must keep the unbiased spill decision exactly, never
// increase the residual dynamic move cost, stay sound, and Off must stay
// byte-identical to the zero config.
func TestCoalescingSoakAcceptance(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 12
	}
	fails := SoakCoalescing(1, n, Options{}, 5, nil)
	for _, f := range fails {
		t.Error(f)
	}
}

// TestCoalescingConstrainedSoak runs the move-preservation differential on
// machine-constrained functions over every registered machine: bias must
// never cost a spill even when pins and clobbers shrink its freedom.
func TestCoalescingConstrainedSoak(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 4
	}
	failed := 0
	for _, m := range DefaultMachines() {
		for seed := int64(1); seed <= int64(n); seed++ {
			if err := CheckCoalescingConstrainedSeed(seed, m, Options{Registers: []int{2, 4, 8}}); err != nil {
				t.Error(err)
				if failed++; failed >= 5 {
					t.Fatal("too many failures, stopping")
				}
			}
		}
	}
}

// TestCoalescingSoakProgress exercises the soak driver's reporting contract.
func TestCoalescingSoakProgress(t *testing.T) {
	calls := 0
	fails := SoakCoalescing(1, 5, Options{Registers: []int{3}}, 5,
		func(done, failed int) { calls = done })
	if calls != 5 {
		t.Fatalf("progress reported %d, want 5", calls)
	}
	for _, f := range fails {
		t.Error(f)
	}
}

// TestCheckCoalescingConstrainedDirect pins one constrained instance
// checked directly (not via the per-R seed wrapper).
func TestCheckCoalescingConstrainedDirect(t *testing.T) {
	m, err := arch.ByName("st231")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCoalescingConstrainedSeed(7, m, Options{Registers: []int{4}}); err != nil {
		t.Fatal(err)
	}
}
