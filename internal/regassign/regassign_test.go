package regassign

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/liveness"
)

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestAssignStraightLine(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  b = arith a, a
  c = arith b, a
  ret c
}`)
	info := liveness.Compute(f)
	regOf, err := Assign(f, info, allTrue(f.NumValues), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssignment(info, allTrue(f.NumValues), regOf); err != nil {
		t.Fatal(err)
	}
}

func TestAssignFailsWhenPressureTooHigh(t *testing.T) {
	f := ir.MustParse(`
func high ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  r = arith e, a
  ret r
}`)
	info := liveness.Compute(f)
	if _, err := Assign(f, info, allTrue(f.NumValues), 2); err == nil {
		t.Fatal("assignment with MaxLive=3 and R=2 should fail")
	}
	if regOf, err := Assign(f, info, allTrue(f.NumValues), 3); err != nil {
		t.Fatal(err)
	} else if err := VerifyAssignment(info, allTrue(f.NumValues), regOf); err != nil {
		t.Fatal(err)
	}
}

func TestAssignAcrossLoop(t *testing.T) {
	f := ir.MustParse(`
func loop ssa {
b0:
  n = param 0
  k = param 1
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, k
  br b1
b3:
  r = arith i, k
  ret r
}`)
	info := liveness.Compute(f)
	regOf, err := Assign(f, info, allTrue(f.NumValues), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssignment(info, allTrue(f.NumValues), regOf); err != nil {
		t.Fatal(err)
	}
}

func TestAssignSkipsSpilled(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  d = arith c, b
  ret d
}`)
	info := liveness.Compute(f)
	allocated := allTrue(f.NumValues)
	// Spill b: assignment must succeed with 2 registers... it would anyway;
	// use 1 register where keeping b would fail.
	var bID int = -1
	for id, n := range f.ValueName {
		if n == "b" {
			bID = id
		}
	}
	allocated[bID] = false
	// Pressure among allocated: a,c,d never simultaneously... a live until
	// c's def; c until d. With b spilled, two allocated values overlap at
	// most pairwise? a and c overlap (a unused after c? a used at c's def
	// only) — choose 2 registers to be safe, then check b got no register.
	regOf, err := Assign(f, info, allocated, 2)
	if err != nil {
		t.Fatal(err)
	}
	if regOf[bID] != NoReg {
		t.Fatal("spilled value received a register")
	}
	if err := VerifyAssignment(info, allocated, regOf); err != nil {
		t.Fatal(err)
	}
}

func TestAssignRequiresSSA(t *testing.T) {
	f := ir.MustParse(`
func ns {
b0:
  x = param 0
  x = arith x, x
  ret x
}`)
	info := liveness.Compute(f)
	if _, err := Assign(f, info, allTrue(f.NumValues), 4); err == nil {
		t.Fatal("tree-scan on non-SSA accepted")
	}
}

func TestVerifyAssignmentCatchesClash(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  ret c
}`)
	info := liveness.Compute(f)
	bad := make([]int, f.NumValues)
	// a and b are simultaneously live with the same register.
	if err := VerifyAssignment(info, allTrue(f.NumValues), bad); err == nil {
		t.Fatal("clashing assignment accepted")
	}
}

func TestInsertSpillCodeStraightLine(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  a = param 0
  b = arith a, a
  c = arith b, a
  ret c
}`)
	spilled := make([]bool, f.NumValues)
	for id, n := range f.ValueName {
		if n == "a" {
			spilled[id] = true
		}
	}
	g := InsertSpillCode(f, spilled)
	if err := g.Validate(); err != nil {
		t.Fatalf("rewritten function invalid: %v", err)
	}
	text := g.String()
	if !strings.Contains(text, "spill a") {
		t.Fatalf("no spill inserted:\n%s", text)
	}
	if strings.Count(text, "reload") != 3 {
		t.Fatalf("want 3 reloads (a has 3 uses):\n%s", text)
	}
	// The original is untouched.
	if strings.Contains(f.String(), "reload") {
		t.Fatal("original function mutated")
	}
}

func TestInsertSpillCodePhiOperand(t *testing.T) {
	f := ir.MustParse(`
func p ssa {
b0:
  a = param 0
  c = unary a
  condbr c, b1, b2
b1:
  y = arith a, a
  br b3
b2:
  z = arith a, c
  br b3
b3:
  m = phi [b1: y], [b2: z]
  ret m
}`)
	spilled := make([]bool, f.NumValues)
	for id, n := range f.ValueName {
		if n == "y" {
			spilled[id] = true
		}
	}
	g := InsertSpillCode(f, spilled)
	if err := g.Validate(); err != nil {
		t.Fatalf("rewritten function invalid: %v\n%s", err, g)
	}
	// The reload must sit in b1 (the predecessor), before its branch.
	b1 := g.Blocks[1]
	foundReload := false
	for _, ins := range b1.Instrs[:len(b1.Instrs)-1] {
		if ins.Op == ir.OpReload {
			foundReload = true
		}
	}
	if !foundReload {
		t.Fatalf("phi operand reload not in predecessor:\n%s", g)
	}
}

func TestInsertSpillCodeSpilledPhiDef(t *testing.T) {
	f := ir.MustParse(`
func p ssa {
b0:
  a = param 0
  c = unary a
  condbr c, b1, b2
b1:
  y = arith a, a
  br b3
b2:
  z = arith a, c
  br b3
b3:
  m = phi [b1: y], [b2: z]
  r = arith m, m
  ret r
}`)
	spilled := make([]bool, f.NumValues)
	for id, n := range f.ValueName {
		if n == "m" {
			spilled[id] = true
		}
	}
	g := InsertSpillCode(f, spilled)
	if err := g.Validate(); err != nil {
		t.Fatalf("rewritten function invalid: %v\n%s", err, g)
	}
	text := g.String()
	if !strings.Contains(text, "spill m") {
		t.Fatalf("phi def not spilled:\n%s", text)
	}
	if !strings.Contains(text, "m.r") {
		t.Fatalf("use of spilled phi def not reloaded:\n%s", text)
	}
}

func TestSpillEverywhereReducesPressure(t *testing.T) {
	f := ir.MustParse(`
func high ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  r = arith e, a
  ret r
}`)
	before := liveness.Compute(f)
	if before.MaxLive != 3 {
		t.Fatalf("MaxLive before = %d", before.MaxLive)
	}
	spilled := make([]bool, f.NumValues)
	for id, n := range f.ValueName {
		if n == "a" || n == "c" {
			spilled[id] = true
		}
	}
	g := InsertSpillCode(f, spilled)
	after := liveness.Compute(g)
	if after.MaxLive > before.MaxLive {
		t.Fatalf("spilling raised MaxLive: %d → %d", before.MaxLive, after.MaxLive)
	}
}

// TestLiveOutUseAtInstrZeroKeepsRegister is a regression test: a value that
// is live out of a block and used by the block's *first* instruction must
// keep its register across that use (a missing last-use entry must not be
// confused with a death at instruction index 0).
func TestLiveOutUseAtInstrZeroKeepsRegister(t *testing.T) {
	f := ir.MustParse(`
func z ssa {
b0:
  a = param 0
  c = unary a
  condbr c, b1, b2
b1:
  x = unary a
  y = arith x, a
  store y, a
  br b2
b2:
  r = arith a, a
  ret r
}`)
	info := liveness.Compute(f)
	allocated := allTrue(f.NumValues)
	regOf, err := Assign(f, info, allocated, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssignment(info, allocated, regOf); err != nil {
		t.Fatal(err)
	}
	// a is used at b1's first instruction and live out: x and y must not
	// reuse a's register.
	names := map[string]int{}
	for id, n := range f.ValueName {
		names[n] = id
	}
	if regOf[names["x"]] == regOf[names["a"]] {
		t.Fatal("x stole a's register while a was live")
	}
}
