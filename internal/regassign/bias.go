package regassign

// Bias is a per-value register preference table for coalescing-biased
// assignment. Values are partitioned into affinity classes (copy-related,
// pairwise non-interfering — built by internal/coalesce without an IFG);
// the first member of a class to be coloured records its register as the
// class hint, and every later member prefers that register when it is free
// at its own definition point. The preference is strictly best-effort: a
// busy (or, constrained, banned/foreign-class) hint falls back to the
// normal lowest-free choice, so a biased assignment allocates exactly the
// values an unbiased one does — bias can never cost a spill.
type Bias struct {
	// ClassOf maps value ID to affinity class, -1 for none.
	ClassOf []int32
	// hint[class] is the register the class converged on: a plain index for
	// the unconstrained scan, a RegRef for the constrained one; NoReg until
	// the first member is coloured.
	hint []int32
}

// NewBias builds a preference table over classOf (value → affinity class,
// -1 none) with numClasses classes and no hints recorded yet.
func NewBias(classOf []int32, numClasses int) *Bias {
	b := &Bias{ClassOf: classOf, hint: make([]int32, numClasses)}
	for i := range b.hint {
		b.hint[i] = NoReg
	}
	return b
}

// classOf returns v's affinity class, -1 when v has none (or the table is
// nil).
func (b *Bias) classOf(v int) int32 {
	if b == nil || v >= len(b.ClassOf) {
		return -1
	}
	return b.ClassOf[v]
}

// hintOf returns the recorded register of class cls, NoReg when unset.
func (b *Bias) hintOf(cls int32) int32 { return b.hint[cls] }

// record stores reg as the hint of cls if the class has none yet (the first
// coloured member wins; later members chase it).
func (b *Bias) record(cls int32, reg int) {
	if cls >= 0 && b.hint[cls] == NoReg {
		b.hint[cls] = int32(reg)
	}
}
