package regassign

import "repro/internal/ir"

// InsertSpillCode rewrites f (in place is avoided: a deep copy is returned)
// applying spill-everywhere code generation for the spilled values: a spill
// (store) is inserted right after each spilled definition, and every use is
// rewritten to a freshly reloaded value. Phi operands reload at the end of
// the predecessor block; spilled phi defs spill at the top of their block.
// The returned function is still strict SSA.
//
// The rewritten instruction lists of every touched block are carved from
// one exact-size function-level slab (capacity-clamped windows, so a later
// append reallocates instead of clobbering a neighbour), and the singleton
// use list of every spill instruction from one int slab — two allocations
// per rewritten function instead of one per block plus one per spill.
func InsertSpillCode(f *ir.Func, spilled []bool) *ir.Func {
	g := f.Clone()
	anySpill := false
	for _, s := range spilled {
		if s {
			anySpill = true
			break
		}
	}
	if !anySpill {
		return g
	}
	if g.ValueName == nil {
		g.ValueName = make(map[int]string)
	}
	// Pre-size the rewrite: per block, one reload per spilled non-phi use
	// and one spill per spilled def (spills counts defs, so it is exact for
	// non-SSA functions with several defs per value too).
	extraOf := func(b *ir.Block) (extra, spills int) {
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				for _, u := range ins.Uses {
					if u < len(spilled) && spilled[u] {
						extra++
					}
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue &&
				ins.Def < len(spilled) && spilled[ins.Def] {
				extra++
				spills++
			}
		}
		return extra, spills
	}
	slabLen, nspills := 0, 0
	for _, b := range g.Blocks {
		if extra, spills := extraOf(b); extra > 0 {
			slabLen += len(b.Instrs) + extra
			nspills += spills
		}
	}
	slab := make([]ir.Instr, 0, slabLen)
	spillUses := make([]int, 0, nspills)
	for _, b := range g.Blocks {
		if extra, _ := extraOf(b); extra == 0 {
			continue
		}
		start := len(slab)
		// The clone owns its Uses storage, so reloads rewrite operands in
		// place instead of copying every instruction's use list.
		reloadAt := func(uses []int) {
			for k, u := range uses {
				if u < len(spilled) && spilled[u] {
					nv := g.NewValue()
					g.ValueName[nv] = g.NameOf(u) + ".r"
					// A reload temp lives in the spilled value's class (but
					// is never pinned: only the original def range keeps an
					// ABI color).
					g.SetClass(nv, g.ClassOf(u))
					slab = append(slab, ir.Instr{Op: ir.OpReload, Def: nv, Imm: int64(u)})
					uses[k] = nv
				}
			}
		}
		// Spills of phi defs must not interleave with the phi block: they
		// are collected and emitted right after the last phi.
		var phiSpills []ir.Instr
		phisDone := false
		for _, ins := range b.Instrs {
			if !phisDone && ins.Op != ir.OpPhi {
				phisDone = true
				slab = append(slab, phiSpills...)
				phiSpills = nil
			}
			switch {
			case ins.Op == ir.OpPhi:
				// Operand reloads belong in predecessors; handled below.
				slab = append(slab, ins)
			default:
				reloadAt(ins.Uses)
				slab = append(slab, ins)
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue &&
				ins.Def < len(spilled) && spilled[ins.Def] {
				spillUses = append(spillUses, ins.Def)
				sp := ir.Instr{Op: ir.OpSpill, Def: ir.NoValue,
					Uses: spillUses[len(spillUses)-1 : len(spillUses) : len(spillUses)]}
				if ins.Op == ir.OpPhi {
					phiSpills = append(phiSpills, sp)
				} else {
					slab = append(slab, sp)
				}
			}
		}
		slab = append(slab, phiSpills...)
		b.Instrs = slab[start:len(slab):len(slab)]
	}
	// Phi operand reloads: insert at the end of the predecessor (before its
	// terminator) and rewrite the operand.
	for _, b := range g.Blocks {
		for ii := range b.Instrs {
			ins := &b.Instrs[ii]
			if ins.Op != ir.OpPhi {
				continue
			}
			for k, u := range ins.Uses {
				if u >= len(spilled) || !spilled[u] {
					continue
				}
				if k >= len(b.Preds) {
					continue
				}
				pred := g.Blocks[b.Preds[k]]
				nv := g.NewValue()
				g.ValueName[nv] = g.NameOf(u) + ".r"
				g.SetClass(nv, g.ClassOf(u))
				reload := ir.Instr{Op: ir.OpReload, Def: nv, Imm: int64(u)}
				ti := len(pred.Instrs) - 1 // terminator index
				pred.Instrs = append(pred.Instrs[:ti],
					append([]ir.Instr{reload}, pred.Instrs[ti:]...)...)
				ins.Uses[k] = nv
			}
		}
	}
	return g
}
