package regassign

import "repro/internal/ir"

// InsertSpillCode rewrites f (in place is avoided: a deep copy is returned)
// applying spill-everywhere code generation for the spilled values: a spill
// (store) is inserted right after each spilled definition, and every use is
// rewritten to a freshly reloaded value. Phi operands reload at the end of
// the predecessor block; spilled phi defs spill at the top of their block.
// The returned function is still strict SSA.
func InsertSpillCode(f *ir.Func, spilled []bool) *ir.Func {
	g := f.Clone()
	anySpill := false
	for _, s := range spilled {
		if s {
			anySpill = true
			break
		}
	}
	if !anySpill {
		return g
	}
	if g.ValueName == nil {
		g.ValueName = make(map[int]string)
	}
	for _, b := range g.Blocks {
		// Pre-size the rewritten instruction list: one reload per spilled
		// non-phi use, one spill per spilled def.
		extra := 0
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				for _, u := range ins.Uses {
					if u < len(spilled) && spilled[u] {
						extra++
					}
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue &&
				ins.Def < len(spilled) && spilled[ins.Def] {
				extra++
			}
		}
		if extra == 0 {
			continue
		}
		out := make([]ir.Instr, 0, len(b.Instrs)+extra)
		// The clone owns its Uses storage, so reloads rewrite operands in
		// place instead of copying every instruction's use list.
		reloadAt := func(uses []int) {
			for k, u := range uses {
				if u < len(spilled) && spilled[u] {
					nv := g.NewValue()
					g.ValueName[nv] = g.NameOf(u) + ".r"
					// A reload temp lives in the spilled value's class (but
					// is never pinned: only the original def range keeps an
					// ABI color).
					g.SetClass(nv, g.ClassOf(u))
					out = append(out, ir.Instr{Op: ir.OpReload, Def: nv, Imm: int64(u)})
					uses[k] = nv
				}
			}
		}
		// Spills of phi defs must not interleave with the phi block: they
		// are collected and emitted right after the last phi.
		var phiSpills []ir.Instr
		phisDone := false
		for _, ins := range b.Instrs {
			if !phisDone && ins.Op != ir.OpPhi {
				phisDone = true
				out = append(out, phiSpills...)
				phiSpills = nil
			}
			switch {
			case ins.Op == ir.OpPhi:
				// Operand reloads belong in predecessors; handled below.
				out = append(out, ins)
			default:
				reloadAt(ins.Uses)
				out = append(out, ins)
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue &&
				ins.Def < len(spilled) && spilled[ins.Def] {
				sp := ir.Instr{Op: ir.OpSpill, Def: ir.NoValue, Uses: []int{ins.Def}}
				if ins.Op == ir.OpPhi {
					phiSpills = append(phiSpills, sp)
				} else {
					out = append(out, sp)
				}
			}
		}
		out = append(out, phiSpills...)
		b.Instrs = out
	}
	// Phi operand reloads: insert at the end of the predecessor (before its
	// terminator) and rewrite the operand.
	for _, b := range g.Blocks {
		for ii := range b.Instrs {
			ins := &b.Instrs[ii]
			if ins.Op != ir.OpPhi {
				continue
			}
			for k, u := range ins.Uses {
				if u >= len(spilled) || !spilled[u] {
					continue
				}
				if k >= len(b.Preds) {
					continue
				}
				pred := g.Blocks[b.Preds[k]]
				nv := g.NewValue()
				g.ValueName[nv] = g.NameOf(u) + ".r"
				g.SetClass(nv, g.ClassOf(u))
				reload := ir.Instr{Op: ir.OpReload, Def: nv, Imm: int64(u)}
				ti := len(pred.Instrs) - 1 // terminator index
				pred.Instrs = append(pred.Instrs[:ti],
					append([]ir.Instr{reload}, pred.Instrs[ti:]...)...)
				ins.Uses[k] = nv
			}
		}
	}
	return g
}
