package regassign

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// AssignConstrained is the machine-honoring tree-scan: every allocated
// value gets a register of its own class (a RegRef), pre-colored values get
// exactly their pin, and each value avoids the registers in its forbid
// mask (bit i set = within-class index i banned — the driver encodes
// call-clobber avoidance and pin reservations there).
//
// caps is the per-class register count; pins[v] is the value's fixed RegRef
// or NoReg; forbid[v] is the banned-index mask (nil = no bans). Unlike the
// unconstrained scan, constraints can make the greedy choice infeasible
// even at legal pressure: on failure the second return names the value that
// found no register, so the driver can force-spill it and retry (always
// sound under spill-everywhere, and bounded by the value count).
func AssignConstrained(f *ir.Func, dom *ir.Dominance, info *liveness.Info,
	allocated []bool, caps [ir.NumClasses]int, pins []int, forbid []uint64) ([]int, int, error) {
	return AssignConstrainedBiased(f, dom, info, allocated, caps, pins, forbid, nil)
}

// AssignConstrainedBiased is AssignConstrained with a coalescing bias: a
// value whose affinity class already converged on a register takes it when
// it is of the value's own class, inside the class capacity, free, and not
// in the value's forbid mask — otherwise the scan falls back to the normal
// lowest-admissible choice. Pins always win (and seed the class hint, so
// copy chains rooted at an ABI register chase the pin). A nil bias
// reproduces AssignConstrained byte-for-byte.
func AssignConstrainedBiased(f *ir.Func, dom *ir.Dominance, info *liveness.Info,
	allocated []bool, caps [ir.NumClasses]int, pins []int, forbid []uint64, bias *Bias) ([]int, int, error) {
	if !f.SSA {
		return nil, -1, fmt.Errorf("regassign: tree-scan requires strict SSA")
	}
	for _, c := range caps {
		if c > 64 {
			return nil, -1, fmt.Errorf("regassign: constrained assignment supports at most 64 registers per class, got %d", c)
		}
	}
	nv := f.NumValues
	regOf := make([]int, nv)
	for i := range regOf {
		regOf[i] = NoReg
	}
	// Per-class register files as bitmasks (bit i = index i in use).
	var inUse [ir.NumClasses]uint64
	liveOutB := make([]bool, nv)
	lastUse := make([]int, nv)
	hasLast := make([]bool, nv)

	pinOf := func(v int) int {
		if pins == nil {
			return NoReg
		}
		return pins[v]
	}
	banned := func(v int) uint64 {
		if forbid == nil {
			return 0
		}
		return forbid[v]
	}

	var failVal int = -1
	var fail error
	var walk func(bid int)
	walk = func(bid int) {
		if fail != nil {
			return
		}
		b := f.Blocks[bid]
		// The register file is rebuilt per block from the allocated live-in
		// values (their defs dominate this block, so they are colored).
		for c := range inUse {
			inUse[c] = 0
		}
		for _, v := range info.LiveIn[bid] {
			if allocated[v] && regOf[v] != NoReg {
				inUse[ir.RegClassOf(regOf[v])] |= 1 << uint(ir.RegIndexOf(regOf[v]))
			}
		}
		for _, v := range info.LiveOut[bid] {
			liveOutB[v] = true
		}
		for i, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				continue
			}
			for _, u := range ins.Uses {
				if !liveOutB[u] {
					lastUse[u] = i
					hasLast[u] = true
				}
			}
		}
		assign := func(v int) {
			if regOf[v] != NoReg {
				return
			}
			c := f.ClassOf(v)
			cls := bias.classOf(v)
			if pin := pinOf(v); pin != NoReg {
				idx := ir.RegIndexOf(pin)
				if ir.RegClassOf(pin) != c || idx >= caps[c] || inUse[c]&(1<<uint(idx)) != 0 {
					failVal, fail = v, fmt.Errorf("regassign: pre-color %s of %s unavailable in %s",
						ir.RegName(pin), f.NameOf(v), b.Name)
					return
				}
				regOf[v] = pin
				inUse[c] |= 1 << uint(idx)
				if bias != nil {
					bias.record(cls, pin)
				}
				return
			}
			free := ^(inUse[c] | banned(v))
			if cls >= 0 {
				if h := bias.hintOf(cls); h != NoReg && ir.RegClassOf(int(h)) == c {
					if idx := ir.RegIndexOf(int(h)); idx < caps[c] && free&(1<<uint(idx)) != 0 {
						regOf[v] = int(h)
						inUse[c] |= 1 << uint(idx)
						return
					}
				}
			}
			for idx := 0; idx < caps[c]; idx++ {
				if free&(1<<uint(idx)) != 0 {
					regOf[v] = ir.MakeReg(c, idx)
					inUse[c] |= 1 << uint(idx)
					if bias != nil {
						bias.record(cls, ir.MakeReg(c, idx))
					}
					return
				}
			}
			failVal, fail = v, fmt.Errorf("regassign: no admissible %s register for %s in %s",
				c, f.NameOf(v), b.Name)
		}
		release := func(v int) {
			if regOf[v] != NoReg {
				inUse[ir.RegClassOf(regOf[v])] &^= 1 << uint(ir.RegIndexOf(regOf[v]))
			}
		}
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			if allocated[ins.Def] {
				assign(ins.Def)
				if fail != nil {
					return
				}
			}
		}
		// Dead phi defs occupy a register only at the block boundary.
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			if d := ins.Def; allocated[d] && !liveOutB[d] && !hasLast[d] {
				release(d)
			}
		}
		for i, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				continue
			}
			for _, u := range ins.Uses {
				if hasLast[u] && lastUse[u] == i && allocated[u] {
					release(u)
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue && allocated[ins.Def] {
				assign(ins.Def)
				if fail != nil {
					return
				}
				if !liveOutB[ins.Def] && !hasLast[ins.Def] {
					release(ins.Def)
				}
			}
		}
		// Reset the per-block death bookkeeping before descending (children
		// recompute their own; this block's flags must not leak).
		for _, v := range info.LiveOut[bid] {
			liveOutB[v] = false
		}
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				continue
			}
			for _, u := range ins.Uses {
				hasLast[u] = false
			}
		}
		for _, c := range dom.Children[bid] {
			walk(c)
		}
	}
	walk(0)
	if fail != nil {
		return nil, failVal, fail
	}
	return regOf, -1, nil
}

// VerifyClassAssignment checks the class-and-pin half of a constrained
// assignment: every allocated value holds a register of its own class with
// an index inside the class capacity, and pre-colored values hold exactly
// their pin. Interference freedom is VerifyAssignment's job (RegRefs are
// plain ints, so it applies unchanged); clobber avoidance is checked by the
// constrained driver, which knows the call spans.
func VerifyClassAssignment(f *ir.Func, allocated []bool, regOf []int, caps [ir.NumClasses]int) error {
	for v, reg := range regOf {
		if reg == NoReg {
			continue
		}
		if !allocated[v] {
			return fmt.Errorf("regassign: spilled value %s holds %s", f.NameOf(v), ir.RegName(reg))
		}
		c := f.ClassOf(v)
		if ir.RegClassOf(reg) != c {
			return fmt.Errorf("regassign: %s value %s assigned %s", c, f.NameOf(v), ir.RegName(reg))
		}
		if idx := ir.RegIndexOf(reg); idx >= caps[c] {
			return fmt.Errorf("regassign: %s assigned %s outside class capacity %d",
				f.NameOf(v), ir.RegName(reg), caps[c])
		}
		if pin, ok := f.PreColorOf(v); ok && reg != pin {
			return fmt.Errorf("regassign: pre-colored value %s holds %s instead of %s",
				f.NameOf(v), ir.RegName(reg), ir.RegName(pin))
		}
	}
	return nil
}

// liveThrough reports the values live across each clobbering call. It is a
// shared helper for the constrained driver and the differential verifier:
// the returned map keys each call instruction (by block and index) to the
// sorted list of values live both before and after it.
func liveThrough(info *liveness.Info) map[[2]int][]int {
	f := info.F
	// First point (layout order) per (block, instr index): the live-before
	// set. Points with the same index may appear twice (live-before, then a
	// dead def's definition instant); the first is the live-before one.
	type key = [2]int
	before := make(map[key]int, len(info.Points))
	for pi, p := range info.Points {
		k := key{p.Block, p.Index}
		if _, ok := before[k]; !ok {
			before[k] = pi
		}
	}
	spans := make(map[key][]int)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			if ins.Op != ir.OpCall || len(ins.Clobbers) == 0 {
				continue
			}
			bi, okB := before[key{b.ID, i}]
			ai, okA := before[key{b.ID, i + 1}]
			if !okB || !okA {
				continue // unreachable block: no points, nothing live
			}
			liveB, liveA := info.Points[bi].Live, info.Points[ai].Live
			// Both sorted ascending: intersect linearly.
			var out []int
			x, y := 0, 0
			for x < len(liveB) && y < len(liveA) {
				switch {
				case liveB[x] < liveA[y]:
					x++
				case liveB[x] > liveA[y]:
					y++
				default:
					out = append(out, liveB[x])
					x++
					y++
				}
			}
			if len(out) > 0 {
				spans[key{b.ID, i}] = out
			}
		}
	}
	return spans
}

// LiveThroughCalls exposes the per-call live-through sets: for every OpCall
// carrying a clobber set, the values live both before and after it, keyed
// by (block ID, instruction index). A value in that set that is assigned a
// register the call clobbers loses its content — the exact miscompile the
// clobber checks exist to catch.
func LiveThroughCalls(info *liveness.Info) map[[2]int][]int { return liveThrough(info) }
