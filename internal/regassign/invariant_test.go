package regassign

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloc/chaitin"
	"repro/internal/alloc/layered"
	"repro/internal/alloc/optimal"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
)

// TestAssignInvariantCorpus is the direct test of the chordal/tree-scan
// guarantee: for every SSA corpus function, every allocator, and every
// register count, Assign must succeed on the allocator's ≤-R allocation,
// give every allocated value a register in [0, R), and never let two
// simultaneously-live allocated values share one. The sharing check here is
// written against the raw per-point live sets, independently of
// VerifyAssignment.
func TestAssignInvariantCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "ir", "testdata", "*.ir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	allocators := []alloc.Allocator{
		layered.NL(), layered.BL(), layered.FPL(), layered.BFPL(),
		chaitin.New(), optimal.New(),
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f := ir.MustParse(string(src))
		if !f.SSA {
			continue
		}
		dom := f.ComputeDominance()
		f.ComputeLoops(dom)
		info := liveness.Compute(f)
		build := ifg.FromLiveness(info)
		costs := spillcost.Costs(f, spillcost.DefaultModel)
		for _, r := range []int{1, 2, 3, 4, 8} {
			p := alloc.BuildProblem(alloc.Spec{Build: build, Costs: costs, R: r})
			if !p.Chordal {
				t.Fatalf("%s: SSA function produced a non-chordal problem", file)
			}
			for _, a := range allocators {
				res := a.Allocate(p)
				if err := p.Validate(res); err != nil {
					t.Fatalf("%s R=%d %s: %v", file, r, a.Name(), err)
				}
				allocated := make([]bool, f.NumValues)
				for vx, al := range res.Allocated {
					if al {
						allocated[build.ValueOf[vx]] = true
					}
				}
				regOf, err := Assign(f, info, allocated, r)
				if err != nil {
					t.Fatalf("%s R=%d %s: Assign failed on a valid allocation: %v",
						filepath.Base(file), r, a.Name(), err)
				}
				checkNoSharing(t, filepath.Base(file), r, a.Name(), info, allocated, regOf)
			}
		}
	}
}

func checkNoSharing(t *testing.T, file string, r int, allocName string,
	info *liveness.Info, allocated []bool, regOf []int) {
	t.Helper()
	f := info.F
	for v, al := range allocated {
		if al && (regOf[v] < 0 || regOf[v] >= r) {
			t.Fatalf("%s R=%d %s: allocated %s got register %d",
				file, r, allocName, f.NameOf(v), regOf[v])
		}
		if !al && regOf[v] != NoReg {
			t.Fatalf("%s R=%d %s: spilled %s got register %d",
				file, r, allocName, f.NameOf(v), regOf[v])
		}
	}
	for _, p := range info.Points {
		holder := make(map[int]int, r)
		for _, v := range p.Live {
			if !allocated[v] {
				continue
			}
			if prev, clash := holder[regOf[v]]; clash {
				t.Fatalf("%s R=%d %s: %s and %s share r%d at block %d point %d",
					file, r, allocName, f.NameOf(prev), f.NameOf(v), regOf[v], p.Block, p.Index)
			}
			holder[regOf[v]] = v
		}
	}
}

// TestAssignDeadPhiDef pins the tree-scan bug the differential harness
// found (see testdata/deadphi.ir): a phi def with no use in its block and
// not live-out must release its register after the block boundary instant.
// Before the fix, Assign reported "no free register" here at R = MaxLive.
func TestAssignDeadPhiDef(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "ir", "testdata", "deadphi.ir"))
	if err != nil {
		t.Fatal(err)
	}
	f := ir.MustParse(string(src))
	info := liveness.Compute(f)
	if info.MaxLive != 2 {
		t.Fatalf("MaxLive = %d, want 2 (reproducer drifted)", info.MaxLive)
	}
	regOf, err := Assign(f, info, allTrue(f.NumValues), 2)
	if err != nil {
		t.Fatalf("Assign failed at R = MaxLive: %v", err)
	}
	if err := VerifyAssignment(info, allTrue(f.NumValues), regOf); err != nil {
		t.Fatal(err)
	}
}
