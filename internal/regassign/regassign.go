// Package regassign implements the assignment half of decoupled register
// allocation: once the allocation phase has decided which variables stay in
// registers (and the register pressure is everywhere at most R), a linear
// greedy scan over the dominance tree — the "tree-scan" — picks a concrete
// register for every allocated SSA value. The package also provides
// spill-everywhere code insertion: spilled variables get a store after their
// definition and a reload before every use.
package regassign

import (
	"fmt"
	"math"

	"repro/internal/budget"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// NoReg marks values that were not assigned a register (spilled values).
const NoReg = -1

// Scratch recycles the tree-scan's per-block working memory (liveness
// stamps, last-use indices, the register file) across functions. A Scratch
// is not safe for concurrent use; batch workers hold one each.
type Scratch struct {
	liveOutAt []int32 // stamp: liveOutAt[v] == epoch ⇔ v live out of the current block
	lastUse   []int32 // last use index, valid when lastUseAt[v] == epoch
	lastUseAt []int32
	inUse     []bool
	epoch     int32
}

// NewScratch returns an empty reusable scratch.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) resize(nv, r int) {
	if cap(s.liveOutAt) < nv {
		s.liveOutAt = make([]int32, nv)
		s.lastUse = make([]int32, nv)
		s.lastUseAt = make([]int32, nv)
		s.epoch = 0
	}
	s.liveOutAt = s.liveOutAt[:nv]
	s.lastUse = s.lastUse[:nv]
	s.lastUseAt = s.lastUseAt[:nv]
	if cap(s.inUse) < r {
		s.inUse = make([]bool, r)
	}
	s.inUse = s.inUse[:r]
}

// Assign colours every allocated value of a strict-SSA function with a
// register in [0, r), walking the dominance tree in preorder and giving each
// definition the lowest register not held by an allocated value live at the
// definition point. allocated is indexed by value ID. It fails if some
// definition finds no free register, which cannot happen when the allocated
// register pressure is at most r everywhere (chordal/SSA guarantee).
func Assign(f *ir.Func, info *liveness.Info, allocated []bool, r int) ([]int, error) {
	return AssignWith(f, f.ComputeDominance(), info, allocated, r, nil)
}

// AssignWith is Assign with the dominance tree supplied by the caller (the
// pipeline already has one) and an optional reusable scratch.
func AssignWith(f *ir.Func, dom *ir.Dominance, info *liveness.Info, allocated []bool, r int, scratch *Scratch) ([]int, error) {
	return AssignBudget(f, dom, info, allocated, r, scratch, nil)
}

// AssignBudget is AssignWith under a resource budget: each block charges
// its instruction count before it is scanned, and a trip aborts the scan
// with the meter's typed error (there is no valid partial assignment — the
// caller degrades to a cheaper allocation instead). A nil meter never
// trips.
func AssignBudget(f *ir.Func, dom *ir.Dominance, info *liveness.Info, allocated []bool, r int, scratch *Scratch, meter *budget.Meter) ([]int, error) {
	return AssignBiasedBudget(f, dom, info, allocated, r, scratch, meter, nil)
}

// AssignBiasedBudget is AssignBudget with a coalescing bias: when a value
// belongs to an affinity class whose hint register is free at the value's
// definition point, it takes the hint instead of the lowest free register
// (eliminating the φ/copy move to its affine partners); otherwise the scan
// proceeds exactly as unbiased. A nil bias reproduces AssignBudget
// byte-for-byte. Bias never changes which values receive registers — only
// which registers they receive.
func AssignBiasedBudget(f *ir.Func, dom *ir.Dominance, info *liveness.Info, allocated []bool, r int, scratch *Scratch, meter *budget.Meter, bias *Bias) ([]int, error) {
	if !f.SSA {
		return nil, fmt.Errorf("regassign: tree-scan requires strict SSA")
	}
	if scratch == nil {
		scratch = NewScratch()
	}
	scratch.resize(f.NumValues, r)
	regOf := make([]int, f.NumValues)
	for i := range regOf {
		regOf[i] = NoReg
	}
	// Preorder over the dominator tree.
	var orderBlocks func(b int, visit func(int))
	orderBlocks = func(b int, visit func(int)) {
		visit(b)
		for _, c := range dom.Children[b] {
			orderBlocks(c, visit)
		}
	}
	var fail error
	orderBlocks(0, func(bid int) {
		if fail != nil {
			return
		}
		b := f.Blocks[bid]
		if !meter.Charge(len(b.Instrs) + 1) {
			fail = meter.Err()
			return
		}
		// A long-lived scratch (JSONL service workers) increments the epoch
		// once per block forever; on wrap, clear the stamps so a stale entry
		// from one full cycle ago cannot alias the current epoch.
		if scratch.epoch == math.MaxInt32 {
			clear(scratch.liveOutAt[:cap(scratch.liveOutAt)])
			clear(scratch.lastUseAt[:cap(scratch.lastUseAt)])
			scratch.epoch = 0
		}
		scratch.epoch++
		epoch := scratch.epoch
		inUse := scratch.inUse
		for i := range inUse {
			inUse[i] = false
		}
		// Registers already held at block entry: allocated live-in values.
		// Their defining blocks dominate this one, so they are coloured.
		for _, v := range info.LiveIn[bid] {
			if allocated[v] && regOf[v] >= 0 {
				inUse[regOf[v]] = true
			}
		}
		liveOut := func(v int) bool { return scratch.liveOutAt[v] == epoch }
		for _, v := range info.LiveOut[bid] {
			scratch.liveOutAt[v] = epoch
		}
		// Death points: last use index of each value not live-out.
		for i, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				continue // phi uses live in predecessors
			}
			for _, u := range ins.Uses {
				if !liveOut(u) {
					scratch.lastUse[u] = int32(i)
					scratch.lastUseAt[u] = epoch
				}
			}
		}
		lastUse := func(v int) (int, bool) {
			if scratch.lastUseAt[v] == epoch {
				return int(scratch.lastUse[v]), true
			}
			return 0, false
		}
		assign := func(v int) {
			if regOf[v] >= 0 {
				return // already coloured (phi defs are live-in too)
			}
			cls := bias.classOf(v)
			if cls >= 0 {
				if h := bias.hintOf(cls); h >= 0 && int(h) < r && !inUse[h] {
					regOf[v] = int(h)
					inUse[h] = true
					return
				}
			}
			for reg := 0; reg < r; reg++ {
				if !inUse[reg] {
					regOf[v] = reg
					inUse[reg] = true
					if bias != nil {
						bias.record(cls, reg)
					}
					return
				}
			}
			fail = fmt.Errorf("regassign: no free register for %s in %s (pressure exceeds %d)",
				f.NameOf(v), b.Name, r)
		}
		// Phi defs occupy registers from block entry.
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			if allocated[ins.Def] {
				assign(ins.Def)
				if fail != nil {
					return
				}
			}
		}
		// A phi def with no use in the block and not live-out dies at block
		// entry: it occupies a register only at the boundary instant (which
		// the liveness points account for) and must be freed before the
		// first non-phi instruction, or a dead phi def would pin a register
		// for the whole block and spuriously exhaust the register file.
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			d := ins.Def
			if !allocated[d] || liveOut(d) {
				continue
			}
			if _, used := lastUse(d); !used {
				inUse[regOf[d]] = false
			}
		}
		for i, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				// Assigned above; death inside the block is freed by the
				// lastUse processing below like any other value.
				continue
			}
			// Free the registers of allocated values dying at i — after
			// their use, before the def (use and def may share a register
			// only when the use dies here; freeing first models that). The
			// comma-ok lookup matters: a missing entry means "never dies
			// here" and must not compare equal to instruction index 0.
			for _, u := range ins.Uses {
				if death, dies := lastUse(u); dies && death == i && allocated[u] && regOf[u] >= 0 {
					inUse[regOf[u]] = false
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue && allocated[ins.Def] {
				// A def dead on arrival (never used, not live-out) still
				// needs a register at the definition instant.
				assign(ins.Def)
				if fail != nil {
					return
				}
				if !liveOut(ins.Def) {
					if _, used := lastUse(ins.Def); !used {
						inUse[regOf[ins.Def]] = false
					}
				}
			}
		}
	})
	if fail != nil {
		return nil, fail
	}
	return regOf, nil
}

// VerifyAssignment checks that no two simultaneously live allocated values
// share a register, using the per-point live sets.
func VerifyAssignment(info *liveness.Info, allocated []bool, regOf []int) error {
	maxReg := -1
	for _, reg := range regOf {
		if reg > maxReg {
			maxReg = reg
		}
	}
	seen := make([]int, maxReg+1)
	for i := range seen {
		seen[i] = -1
	}
	for _, p := range info.Points {
		for _, v := range p.Live {
			if !allocated[v] || regOf[v] == NoReg {
				continue
			}
			if prev := seen[regOf[v]]; prev >= 0 {
				return fmt.Errorf("regassign: values %s and %s share r%d at block %d point %d",
					info.F.NameOf(prev), info.F.NameOf(v), regOf[v], p.Block, p.Index)
			}
			seen[regOf[v]] = v
		}
		for _, v := range p.Live {
			if regOf[v] >= 0 {
				seen[regOf[v]] = -1
			}
		}
	}
	return nil
}
