// Package regassign implements the assignment half of decoupled register
// allocation: once the allocation phase has decided which variables stay in
// registers (and the register pressure is everywhere at most R), a linear
// greedy scan over the dominance tree — the "tree-scan" — picks a concrete
// register for every allocated SSA value. The package also provides
// spill-everywhere code insertion: spilled variables get a store after their
// definition and a reload before every use.
package regassign

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// NoReg marks values that were not assigned a register (spilled values).
const NoReg = -1

// Assign colours every allocated value of a strict-SSA function with a
// register in [0, r), walking the dominance tree in preorder and giving each
// definition the lowest register not held by an allocated value live at the
// definition point. allocated is indexed by value ID. It fails if some
// definition finds no free register, which cannot happen when the allocated
// register pressure is at most r everywhere (chordal/SSA guarantee).
func Assign(f *ir.Func, info *liveness.Info, allocated []bool, r int) ([]int, error) {
	if !f.SSA {
		return nil, fmt.Errorf("regassign: tree-scan requires strict SSA")
	}
	regOf := make([]int, f.NumValues)
	for i := range regOf {
		regOf[i] = NoReg
	}
	dom := f.ComputeDominance()
	// Preorder over the dominator tree.
	var orderBlocks func(b int, visit func(int))
	orderBlocks = func(b int, visit func(int)) {
		visit(b)
		for _, c := range dom.Children[b] {
			orderBlocks(c, visit)
		}
	}
	var fail error
	orderBlocks(0, func(bid int) {
		if fail != nil {
			return
		}
		b := f.Blocks[bid]
		inUse := make([]bool, r)
		// Registers already held at block entry: allocated live-in values.
		// Their defining blocks dominate this one, so they are coloured.
		liveNow := make(map[int]bool)
		for _, v := range info.LiveIn[bid] {
			if allocated[v] {
				liveNow[v] = true
				if regOf[v] >= 0 {
					inUse[regOf[v]] = true
				}
			}
		}
		liveOut := make(map[int]bool, len(info.LiveOut[bid]))
		for _, v := range info.LiveOut[bid] {
			liveOut[v] = true
		}
		// Death points: last use index of each value not live-out.
		lastUse := make(map[int]int)
		for i, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				continue // phi uses live in predecessors
			}
			for _, u := range ins.Uses {
				if !liveOut[u] {
					lastUse[u] = i
				}
			}
		}
		assign := func(v int) {
			if regOf[v] >= 0 {
				return // already coloured (phi defs are live-in too)
			}
			for reg := 0; reg < r; reg++ {
				if !inUse[reg] {
					regOf[v] = reg
					inUse[reg] = true
					return
				}
			}
			fail = fmt.Errorf("regassign: no free register for %s in %s (pressure exceeds %d)",
				f.NameOf(v), b.Name, r)
		}
		// Phi defs occupy registers from block entry.
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			if allocated[ins.Def] {
				assign(ins.Def)
				if fail != nil {
					return
				}
			}
		}
		// A phi def with no use in the block and not live-out dies at block
		// entry: it occupies a register only at the boundary instant (which
		// the liveness points account for) and must be freed before the
		// first non-phi instruction, or a dead phi def would pin a register
		// for the whole block and spuriously exhaust the register file.
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			d := ins.Def
			if !allocated[d] || liveOut[d] {
				continue
			}
			if _, used := lastUse[d]; !used {
				inUse[regOf[d]] = false
			}
		}
		for i, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				// Assigned above; death inside the block is freed by the
				// lastUse processing below like any other value.
				continue
			}
			// Free the registers of allocated values dying at i — after
			// their use, before the def (use and def may share a register
			// only when the use dies here; freeing first models that). The
			// comma-ok lookup matters: a missing entry means "never dies
			// here" and must not compare equal to instruction index 0.
			for _, u := range ins.Uses {
				if death, dies := lastUse[u]; dies && death == i && allocated[u] && regOf[u] >= 0 {
					inUse[regOf[u]] = false
				}
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue && allocated[ins.Def] {
				// A def dead on arrival (never used, not live-out) still
				// needs a register at the definition instant.
				assign(ins.Def)
				if fail != nil {
					return
				}
				if !liveOut[ins.Def] {
					if _, used := lastUse[ins.Def]; !used {
						inUse[regOf[ins.Def]] = false
					}
				}
			}
		}
	})
	if fail != nil {
		return nil, fail
	}
	return regOf, nil
}

// VerifyAssignment checks that no two simultaneously live allocated values
// share a register, using the per-point live sets.
func VerifyAssignment(info *liveness.Info, allocated []bool, regOf []int) error {
	for _, p := range info.Points {
		seen := make(map[int]int)
		for _, v := range p.Live {
			if !allocated[v] || regOf[v] == NoReg {
				continue
			}
			if prev, clash := seen[regOf[v]]; clash {
				return fmt.Errorf("regassign: values %s and %s share r%d at block %d point %d",
					info.F.NameOf(prev), info.F.NameOf(v), regOf[v], p.Block, p.Index)
			}
			seen[regOf[v]] = v
		}
	}
	return nil
}

// InsertSpillCode rewrites f (in place is avoided: a deep copy is returned)
// applying spill-everywhere code generation for the spilled values: a spill
// (store) is inserted right after each spilled definition, and every use is
// rewritten to a freshly reloaded value. Phi operands reload at the end of
// the predecessor block; spilled phi defs spill at the top of their block.
// The returned function is still strict SSA.
func InsertSpillCode(f *ir.Func, spilled []bool) *ir.Func {
	g := cloneFunc(f)
	for _, b := range g.Blocks {
		var out []ir.Instr
		reloadAt := func(uses []int) []int {
			newUses := append([]int(nil), uses...)
			for k, u := range newUses {
				if u < len(spilled) && spilled[u] {
					nv := g.NewValue()
					g.ValueName[nv] = g.NameOf(u) + ".r"
					out = append(out, ir.Instr{Op: ir.OpReload, Def: nv, Imm: int64(u)})
					newUses[k] = nv
				}
			}
			return newUses
		}
		// Spills of phi defs must not interleave with the phi block: they
		// are collected and emitted right after the last phi.
		var phiSpills []ir.Instr
		phisDone := false
		for _, ins := range b.Instrs {
			if !phisDone && ins.Op != ir.OpPhi {
				phisDone = true
				out = append(out, phiSpills...)
				phiSpills = nil
			}
			switch {
			case ins.Op == ir.OpPhi:
				// Operand reloads belong in predecessors; handled below.
				out = append(out, ins)
			default:
				ins.Uses = reloadAt(ins.Uses)
				out = append(out, ins)
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue &&
				ins.Def < len(spilled) && spilled[ins.Def] {
				sp := ir.Instr{Op: ir.OpSpill, Def: ir.NoValue, Uses: []int{ins.Def}}
				if ins.Op == ir.OpPhi {
					phiSpills = append(phiSpills, sp)
				} else {
					out = append(out, sp)
				}
			}
		}
		out = append(out, phiSpills...)
		b.Instrs = out
	}
	// Phi operand reloads: insert at the end of the predecessor (before its
	// terminator) and rewrite the operand.
	for _, b := range g.Blocks {
		for ii := range b.Instrs {
			ins := &b.Instrs[ii]
			if ins.Op != ir.OpPhi {
				continue
			}
			for k, u := range ins.Uses {
				if u >= len(spilled) || !spilled[u] {
					continue
				}
				if k >= len(b.Preds) {
					continue
				}
				pred := g.Blocks[b.Preds[k]]
				nv := g.NewValue()
				g.ValueName[nv] = g.NameOf(u) + ".r"
				reload := ir.Instr{Op: ir.OpReload, Def: nv, Imm: int64(u)}
				ti := len(pred.Instrs) - 1 // terminator index
				pred.Instrs = append(pred.Instrs[:ti],
					append([]ir.Instr{reload}, pred.Instrs[ti:]...)...)
				ins.Uses[k] = nv
			}
		}
	}
	return g
}

func cloneFunc(f *ir.Func) *ir.Func {
	g := &ir.Func{
		Name:      f.Name,
		NumValues: f.NumValues,
		ValueName: make(map[int]string, len(f.ValueName)),
		SSA:       f.SSA,
	}
	for k, v := range f.ValueName {
		g.ValueName[k] = v
	}
	for _, b := range f.Blocks {
		nb := &ir.Block{
			ID:        b.ID,
			Name:      b.Name,
			Preds:     append([]int(nil), b.Preds...),
			Succs:     append([]int(nil), b.Succs...),
			LoopDepth: b.LoopDepth,
		}
		nb.Instrs = make([]ir.Instr, len(b.Instrs))
		for i, ins := range b.Instrs {
			ins.Uses = append([]int(nil), ins.Uses...)
			ins.Targets = append([]int(nil), ins.Targets...)
			nb.Instrs[i] = ins
		}
		g.Blocks = append(g.Blocks, nb)
	}
	return g
}
