package chaitin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/graph"
)

func intervalProblem(r *rand.Rand, n, regs int) *alloc.Problem {
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, b := r.Intn(3*n), r.Intn(3*n)
		if a > b {
			a, b = b, a
		}
		ivs[i] = iv{a, b}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				g.AddEdge(i, j)
			}
		}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(1 + r.Intn(100))
	}
	return alloc.NewGraphProblem(graph.NewWeighted(g, w), regs, nil)
}

func TestNoSpillWhenColorable(t *testing.T) {
	// Triangle with 3 registers: colours without spilling.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	p := alloc.NewGraphProblem(graph.NewWeighted(g, []float64{5, 5, 5}), 3, nil)
	res := New().Allocate(p)
	if len(res.Spilled()) != 0 {
		t.Fatalf("GC spilled %v with enough registers", res.Spilled())
	}
}

func TestSpillsCheapHighDegree(t *testing.T) {
	// Star: centre interferes with all leaves. R=1 forces either the
	// centre or every leaf to spill; the centre has low cost/degree.
	n := 6
	g := graph.New(n)
	for leaf := 1; leaf < n; leaf++ {
		g.AddEdge(0, leaf)
	}
	w := []float64{3, 10, 10, 10, 10, 10}
	p := alloc.NewGraphProblem(graph.NewWeighted(g, w), 1, nil)
	res := New().Allocate(p)
	if res.Allocated[0] {
		t.Fatal("GC kept the cheap high-degree centre")
	}
	for leaf := 1; leaf < n; leaf++ {
		if !res.Allocated[leaf] {
			t.Fatalf("leaf %d spilled unnecessarily", leaf)
		}
	}
}

// TestPropertyNoSpillOnChordalWithEnoughRegisters: on a chordal graph with
// R ≥ ω, simplification always succeeds and GC must not spill (there is
// always a simplicial vertex of degree < ω ≤ R).
func TestPropertyNoSpillWhenPressureFits(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := intervalProblem(r, 2+r.Intn(25), 0)
		p.R = p.MaxPressure() // ω of the interval graph
		res := New().Allocate(p)
		return len(res.Spilled()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValidAllocations(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := intervalProblem(r, 2+r.Intn(30), 1+r.Intn(6))
		res := New().Allocate(p)
		return p.Validate(res) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValidOnGeneralGraphs(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					g.AddEdge(i, j)
				}
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + r.Intn(100))
		}
		regs := 1 + r.Intn(5)
		// The GC guarantee is a proper colouring: the allocated subgraph
		// must be regs-colourable, hence every clique ≤ regs. Validate via
		// edge constraints when regs ≥ 2 plus explicit greedy check.
		var liveSets [][]int
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if u > v {
					liveSets = append(liveSets, []int{v, u})
				}
			}
		}
		if liveSets == nil {
			liveSets = [][]int{}
		}
		p := alloc.BuildProblem(alloc.Spec{Graph: graph.NewWeighted(g, w), R: regs, LiveSets: liveSets})
		res := New().Allocate(p)
		if regs >= 2 {
			if err := p.Validate(res); err != nil {
				return false
			}
		} else {
			// R = 1: allocated set must be stable.
			if !g.IsStableSet(res.AllocatedList()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := intervalProblem(r, 30, 3)
	first := New().Allocate(p).AllocatedList()
	for i := 0; i < 5; i++ {
		again := New().Allocate(p).AllocatedList()
		if len(again) != len(first) {
			t.Fatal("GC not deterministic")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("GC not deterministic")
			}
		}
	}
}
