// Package chaitin implements the Chaitin–Briggs optimistic graph-colouring
// allocator used as the GC baseline in the paper's evaluation.
//
// The allocator runs the classic simplify/select loop: nodes of degree < R
// are removed and stacked; when none remains, the node minimising
// cost/degree is chosen as a spill candidate but still stacked (Briggs'
// optimistic colouring). During select, nodes that find no free colour are
// spilled; if any node spilled, the interferences are rebuilt without the
// spilled nodes and the process repeats until everything colours.
package chaitin

import (
	"repro/internal/alloc"
	"repro/internal/graph"
)

// Allocator is the GC baseline.
type Allocator struct{}

// New returns a Chaitin–Briggs allocator.
func New() *Allocator { return &Allocator{} }

// Name implements alloc.Allocator.
func (*Allocator) Name() string { return "GC" }

// Allocate implements alloc.Allocator.
func (*Allocator) Allocate(p *alloc.Problem) *alloc.Result {
	n := p.N()
	spilled := make([]bool, n)
	for {
		newSpills := colorOnce(p, spilled)
		if newSpills == 0 {
			break
		}
	}
	var allocated []int
	for v := 0; v < n; v++ {
		if !spilled[v] {
			allocated = append(allocated, v)
		}
	}
	return alloc.NewResult(n, allocated, "GC")
}

// colorOnce runs one simplify/select round over the non-spilled subgraph,
// marking any nodes that fail to colour in spilled. It returns the number of
// newly spilled nodes.
func colorOnce(p *alloc.Problem, spilled []bool) int {
	g := p.Graph()
	n := p.N()
	r := p.R
	// Working degrees over the live (non-spilled, not-yet-removed) graph.
	present := make([]bool, n)
	degree := make([]int, n)
	live := 0
	for v := 0; v < n; v++ {
		if spilled[v] {
			continue
		}
		present[v] = true
		live++
	}
	for v := 0; v < n; v++ {
		if !present[v] {
			continue
		}
		d := 0
		g.VisitNeighbors(v, func(u int) {
			if present[u] {
				d++
			}
		})
		degree[v] = d
	}

	stack := make([]int, 0, live)
	removed := make([]bool, n)
	remove := func(v int) {
		removed[v] = true
		stack = append(stack, v)
		g.VisitNeighbors(v, func(u int) {
			if present[u] && !removed[u] {
				degree[u]--
			}
		})
		live--
	}
	for live > 0 {
		// Simplify: remove any node with degree < R. Scan ascending for
		// determinism; repeat until none qualifies.
		progress := true
		for progress {
			progress = false
			for v := 0; v < n; v++ {
				if present[v] && !removed[v] && degree[v] < r {
					remove(v)
					progress = true
				}
			}
		}
		if live == 0 {
			break
		}
		// Spill candidate: minimise cost/degree (Chaitin's metric); push it
		// optimistically.
		best, bestMetric := -1, 0.0
		for v := 0; v < n; v++ {
			if !present[v] || removed[v] {
				continue
			}
			d := degree[v]
			if d == 0 {
				d = 1
			}
			m := g.Weight[v] / float64(d)
			if best < 0 || m < bestMetric {
				best, bestMetric = v, m
			}
		}
		remove(best)
	}

	// Select: pop and colour. Each vertex appears once on the stack, so its
	// ID is a unique stamp for the shared colour scratch.
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	usedAt := graph.NewColorScratch(n)
	newSpills := 0
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		c := g.SmallestFreeColor(v, color, usedAt, v)
		if c < r {
			color[v] = c
		} else {
			spilled[v] = true
			newSpills++
		}
	}
	return newSpills
}
