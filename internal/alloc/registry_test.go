package alloc

import (
	"errors"
	"testing"

	"repro/internal/raerr"
)

type fakeAllocator struct{ name string }

func (f fakeAllocator) Name() string               { return f.name }
func (f fakeAllocator) Allocate(p *Problem) *Result { return &Result{Allocated: make([]bool, p.N()), Allocator: f.name} }

func TestRegistryRegisterAndResolve(t *testing.T) {
	if err := RegisterAllocator("unit-fake", false, func() Allocator { return fakeAllocator{"unit-fake"} }); err != nil {
		t.Fatal(err)
	}
	a, err := NewByName("unit-fake")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "unit-fake" {
		t.Errorf("resolved %q", a.Name())
	}
	// Case-insensitive lookup resolves the same entry.
	if a, err = NewByName("UNIT-FAKE"); err != nil || a.Name() != "unit-fake" {
		t.Errorf("case-folded lookup: %v, %v", a, err)
	}
	// Each resolution is a private instance (factories, not singletons).
	b1, _ := NewByName("unit-fake")
	b2, _ := NewByName("unit-fake")
	if &b1 == &b2 {
		t.Error("expected distinct instances")
	}
}

func TestRegistryErrors(t *testing.T) {
	if err := RegisterAllocator("", false, func() Allocator { return fakeAllocator{} }); !errors.Is(err, raerr.ErrInvalidConfig) {
		t.Errorf("empty name: %v", err)
	}
	if err := RegisterAllocator("unit-nil", false, nil); !errors.Is(err, raerr.ErrInvalidConfig) {
		t.Errorf("nil factory: %v", err)
	}
	if err := RegisterAllocator("unit-dup", false, func() Allocator { return fakeAllocator{} }); err != nil {
		t.Fatal(err)
	}
	if err := RegisterAllocator("Unit-Dup", true, func() Allocator { return fakeAllocator{} }); !errors.Is(err, raerr.ErrInvalidConfig) {
		t.Errorf("case-folded duplicate: %v", err)
	}
	if _, err := NewByName("unit-missing"); !errors.Is(err, raerr.ErrUnknownAllocator) {
		t.Errorf("unknown name: %v", err)
	}
}

func TestRegistryChordalOnly(t *testing.T) {
	if err := RegisterAllocator("unit-chordal", true, func() Allocator { return fakeAllocator{"unit-chordal"} }); err != nil {
		t.Fatal(err)
	}
	if !ChordalOnly("unit-chordal") || !ChordalOnly("UNIT-CHORDAL") {
		t.Error("chordal-only flag lost")
	}
	if ChordalOnly("unit-dup") || ChordalOnly("unit-missing") {
		t.Error("chordal-only reported for general/unknown allocators")
	}
}

func TestRegisteredNamesSorted(t *testing.T) {
	names := RegisteredNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted: %v", names)
		}
	}
}
