// Allocator registry: the single name → implementation table behind
// core.AllocatorByName, the pipeline's Config.Allocator, the cmd front-ends'
// -alloc flags and the public regalloc.Register/Allocators API. Factories
// rather than instances are registered because allocator implementations
// keep per-run scratch (and the exact solver records its last bound), so
// every worker resolves a private instance.
package alloc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/raerr"
)

type registryEntry struct {
	name        string // canonical spelling, as registered
	chordalOnly bool
	factory     func() Allocator
}

var registry = struct {
	sync.RWMutex
	byKey map[string]registryEntry // key = lower-cased name
}{byKey: make(map[string]registryEntry)}

// RegisterAllocator adds a named allocator factory to the registry. Names
// are case-insensitive ("bfpl" resolves BFPL); the canonical spelling is
// whatever was registered. chordalOnly marks allocators that require a
// chordal (strict-SSA) instance — the pipeline rejects them on non-chordal
// inputs with a typed raerr.ErrNotSSA instead of letting them panic.
// Registering an empty name, a nil factory, or a name that is already taken
// (in any casing) fails with raerr.ErrInvalidConfig.
func RegisterAllocator(name string, chordalOnly bool, factory func() Allocator) error {
	if name == "" {
		return fmt.Errorf("%w: empty allocator name", raerr.ErrInvalidConfig)
	}
	if factory == nil {
		return fmt.Errorf("%w: nil factory for allocator %q", raerr.ErrInvalidConfig, name)
	}
	key := strings.ToLower(name)
	registry.Lock()
	defer registry.Unlock()
	if prev, dup := registry.byKey[key]; dup {
		return fmt.Errorf("%w: allocator %q already registered (as %q)",
			raerr.ErrInvalidConfig, name, prev.name)
	}
	registry.byKey[key] = registryEntry{name: name, chordalOnly: chordalOnly, factory: factory}
	return nil
}

// MustRegisterAllocator is RegisterAllocator, panicking on error (built-in
// registration at init time).
func MustRegisterAllocator(name string, chordalOnly bool, factory func() Allocator) {
	if err := RegisterAllocator(name, chordalOnly, factory); err != nil {
		panic(err)
	}
}

// NewByName resolves a registered allocator name (case-insensitive) to a
// fresh private instance. Unknown names fail with raerr.ErrUnknownAllocator.
func NewByName(name string) (Allocator, error) {
	registry.RLock()
	e, ok := registry.byKey[strings.ToLower(name)]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)",
			raerr.ErrUnknownAllocator, name, strings.Join(RegisteredNames(), ", "))
	}
	return e.factory(), nil
}

// RegisteredNames lists the canonical registered allocator names, sorted —
// a deterministic listing for -alloc help and error messages.
func RegisteredNames() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.byKey))
	for _, e := range registry.byKey {
		names = append(names, e.name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// ChordalOnly reports whether the named allocator was registered as
// requiring a chordal instance. Unknown names report false. The lookup is by
// the allocator's Name(), so it also covers instances carried in a
// core.Config rather than resolved by name.
func ChordalOnly(name string) bool {
	registry.RLock()
	e, ok := registry.byKey[strings.ToLower(name)]
	registry.RUnlock()
	return ok && e.chordalOnly
}
