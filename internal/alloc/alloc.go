// Package alloc defines the register-allocation problem the paper studies —
// spill-everywhere allocation in a decoupled framework — and the common
// types every allocator implements.
//
// A Problem carries the register-pressure constraints (live sets, which are
// cliques of the interference graph), per-vertex spill costs, and a register
// count R. An allocation is a subset of variables kept in registers; it is
// valid when no live set keeps more than R variables, which for chordal
// (strict SSA) graphs is exactly R-colourability. The allocation cost of a
// solution is the total spill cost of the variables not kept.
//
// Two interference representations back a Problem. The fast path carries a
// cliques.Structure — live sets, def-point sets and a dominance-derived
// elimination order, straight from liveness, with no explicit graph — which
// is everything the layered and linear-scan allocators need. Allocators that
// genuinely require edge adjacency (Chaitin-style colouring, the exact
// solver, the general-graph heuristic) call Graph, which lazily materializes
// the classical weighted graph from whichever representation is present.
package alloc

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/cliques"
	"repro/internal/graph"
	"repro/internal/ifg"
	"repro/internal/ir"
)

// Problem is one spill-everywhere allocation instance.
type Problem struct {
	// R is the number of available registers.
	R int
	// Weight is the per-vertex spill cost.
	Weight []float64
	// LiveSets are the register-pressure constraints: sorted vertex sets,
	// each a clique of the interference graph, of which at most R members
	// may be allocated. On the graph path of a chordal instance these are
	// the maximal cliques; on the clique fast path they are the distinct
	// program-point live sets (a superset of the maximal cliques, yielding
	// identical constraint semantics).
	LiveSets [][]int
	// Chordal records whether the interference graph is chordal; PEO is a
	// perfect elimination order when it is (and a best-effort MCS order
	// otherwise).
	Chordal bool
	PEO     []int
	// Name optionally identifies the instance (benchmark name) in reports.
	Name string
	// Intervals optionally holds, per vertex, the [start, end] program
	// point range of its live interval on a linearized layout. Linear-scan
	// allocators require it; graph-only instances leave it nil.
	Intervals [][2]int
	// Cliques is the IFG-free structure of the SSA fast path (nil on the
	// graph path). When set, layered allocation runs natively on it.
	Cliques *cliques.Structure
	// Constraints, when non-nil, records the machine description the
	// instance was built under. It changes Validate's pressure semantics:
	// live sets are checked per register class against each class's
	// capacity instead of against the single R (this is the validation the
	// merged result of the per-class decomposition must satisfy). Requires
	// Cliques (class membership is read off the function).
	Constraints *arch.Constraints
	// Meter, when non-nil, is the resource budget of the run. Allocators
	// charge it cooperatively at coarse granularity (a layer, an interval)
	// and stop early — returning a valid partial result with more values
	// spilled — when it trips. A nil Meter never trips; the field is
	// scratch state of one run and is cleared before results are cached.
	Meter *budget.Meter

	g *graph.Weighted // explicit graph; lazily built from Cliques when nil
}

// Spec describes one allocation problem for BuildProblem, the single
// builder behind every pipeline path. Exactly one interference
// representation must be set — Cliques (the IFG-free SSA fast path), Build
// (the legacy explicit-graph path), or Graph (a bare weighted graph with
// caller-derived structure) — so the fast/legacy choice is a field, not an
// API fork.
type Spec struct {
	// Cliques is the IFG-free structure derived straight from liveness.
	Cliques *cliques.Structure
	// Build is the explicit interference-graph build.
	Build *ifg.Build
	// Graph is a bare weighted graph whose structure the caller already
	// derived; LiveSets, Chordal and PEO are taken verbatim (sub-problem
	// builders and tests know what they built). Costs is ignored — the
	// weights come from the graph.
	Graph *graph.Weighted
	// Dom optionally supplies the function's dominance tree on the Build
	// path (the pipeline driver computed one during validation); nil
	// computes it on demand for SSA inputs.
	Dom *ir.Dominance
	// Costs is the per-value spill cost (Cliques and Build paths).
	Costs []float64
	// R is the register count.
	R int
	// Constraints optionally carries the machine description of a
	// constrained run (Cliques path only); see Problem.Constraints.
	Constraints *arch.Constraints
	// LiveSets/Chordal/PEO carry the verbatim structure of the Graph path.
	LiveSets [][]int
	Chordal  bool
	PEO      []int
}

// BuildProblem assembles a Problem from whichever interference
// representation the spec carries.
//
// On the Cliques path the instance is chordal by construction (Derive only
// succeeds on strict SSA with the dominance elimination order intact) and
// no explicit graph is materialized. On the Build path, strict-SSA
// functions get the canonical dominance elimination order (reverse
// definition order along a dominance-tree preorder) — the same order the
// clique fast path derives without the graph — so the two paths make
// identical tie-break decisions; non-SSA (or structurally unusual) inputs
// keep the maximum-cardinality-search order.
func BuildProblem(s Spec) *Problem {
	switch {
	case s.Cliques != nil:
		cs := s.Cliques
		w := make([]float64, cs.N)
		for v := range w {
			w[v] = s.Costs[cs.ValueOf[v]]
		}
		return &Problem{
			R:           s.R,
			Weight:      w,
			LiveSets:    cs.Sets,
			Chordal:     true,
			PEO:         cs.PEO,
			Name:        cs.F.Name,
			Cliques:     cs,
			Constraints: s.Constraints,
		}
	case s.Build != nil:
		b := s.Build
		w := make([]float64, b.Graph.N())
		for v := range w {
			w[v] = s.Costs[b.ValueOf[v]]
		}
		p := &Problem{
			g:      graph.NewWeighted(b.Graph, w),
			Weight: w,
			R:      s.R,
			Name:   b.F.Name,
		}
		var domPEO []int
		if b.F.SSA {
			dom := s.Dom
			if dom == nil {
				dom = b.F.ComputeDominance()
			}
			if cliques.Applicable(b.F, dom) {
				domPEO = cliques.DominancePEO(b.F, dom, b.VertexOf, b.Graph.N())
			}
		}
		// The clique ↔ live-set correspondence that lets allocators treat
		// graph cliques as register-pressure constraints only holds for
		// strict SSA. A non-SSA program may produce an accidentally chordal
		// graph whose maximal cliques were never simultaneously live; its
		// constraints must stay the program-point live sets.
		if domPEO != nil && b.Graph.IsPerfectEliminationOrder(domPEO) {
			p.PEO, p.Chordal = domPEO, true
		} else {
			p.PEO = b.Graph.PerfectEliminationOrder()
			p.Chordal = b.F.SSA && b.Graph.IsPerfectEliminationOrder(p.PEO)
		}
		if p.Chordal {
			p.LiveSets = b.Graph.MaximalCliques(p.PEO)
		} else {
			p.LiveSets = b.LiveSets
		}
		return p
	case s.Graph != nil:
		return &Problem{
			g: s.Graph, Weight: s.Graph.Weight, R: s.R,
			LiveSets: s.LiveSets, Chordal: s.Chordal, PEO: s.PEO,
		}
	}
	panic("alloc: BuildProblem spec carries no interference representation")
}

// NewGraphProblem wraps a bare weighted graph as a Problem, deriving the
// pressure constraints from the graph's maximal cliques (requires a chordal
// graph unless liveSets is supplied). Used by tests and the graph-level
// examples.
func NewGraphProblem(g *graph.Weighted, r int, liveSets [][]int) *Problem {
	p := &Problem{g: g, Weight: g.Weight, R: r, LiveSets: liveSets}
	if !g.Frozen() {
		g.Freeze()
	}
	p.PEO = g.PerfectEliminationOrder()
	p.Chordal = g.IsPerfectEliminationOrder(p.PEO)
	if p.LiveSets == nil {
		if !p.Chordal {
			panic("alloc: non-chordal graph problem requires explicit live sets")
		}
		p.LiveSets = g.MaximalCliques(p.PEO)
	}
	return p
}

// N returns the number of vertices.
func (p *Problem) N() int { return len(p.Weight) }

// Graph returns the explicit weighted interference graph, materializing it
// from the clique structure on first use when the problem came through the
// fast path. The result is cached on the problem.
func (p *Problem) Graph() *graph.Weighted {
	if p.g == nil {
		p.g = graph.NewWeighted(p.Cliques.BuildGraph(), p.Weight)
	}
	return p.g
}

// HasGraph reports whether the explicit graph is already materialized.
func (p *Problem) HasGraph() bool { return p.g != nil }

// TotalWeight sums the spill costs of all vertices.
func (p *Problem) TotalWeight() float64 {
	total := 0.0
	for _, w := range p.Weight {
		total += w
	}
	return total
}

// Result is the outcome of one allocator run.
type Result struct {
	// Allocated[v] reports whether vertex v stays in a register.
	Allocated []bool
	// Allocator names the algorithm that produced the result.
	Allocator string
}

// NewResult builds a Result from the list of allocated vertices.
func NewResult(n int, allocated []int, name string) *Result {
	res := &Result{Allocated: make([]bool, n), Allocator: name}
	for _, v := range allocated {
		res.Allocated[v] = true
	}
	return res
}

// Spilled returns the sorted list of spilled vertices.
func (r *Result) Spilled() []int {
	var out []int
	for v, a := range r.Allocated {
		if !a {
			out = append(out, v)
		}
	}
	return out
}

// AllocatedList returns the sorted list of allocated vertices.
func (r *Result) AllocatedList() []int {
	var out []int
	for v, a := range r.Allocated {
		if a {
			out = append(out, v)
		}
	}
	return out
}

// SpillCost returns the total cost of the spilled variables under problem p.
func (r *Result) SpillCost(p *Problem) float64 {
	cost := 0.0
	for v, a := range r.Allocated {
		if !a {
			cost += p.Weight[v]
		}
	}
	return cost
}

// Validate checks that the allocation respects every pressure constraint
// (≤ R allocated per live set). On chordal instances this is equivalent to
// the allocated subgraph being R-colourable.
func (p *Problem) Validate(r *Result) error {
	if len(r.Allocated) != p.N() {
		return fmt.Errorf("alloc: result covers %d of %d vertices", len(r.Allocated), p.N())
	}
	if p.Constraints != nil && p.Cliques != nil {
		// Machine-constrained instance: pressure is per register class —
		// at most cap(c) allocated members of class c per live set.
		f := p.Cliques.F
		for _, ls := range p.LiveSets {
			var count [ir.NumClasses]int
			for _, v := range ls {
				if r.Allocated[v] {
					count[f.ClassOf(p.Cliques.ValueOf[v])]++
				}
			}
			for c := ir.Class(0); c < ir.NumClasses; c++ {
				if count[c] > p.Constraints.Cap(c) {
					return fmt.Errorf("alloc: %s: live set %v keeps %d %s values > class capacity %d",
						r.Allocator, ls, count[c], c, p.Constraints.Cap(c))
				}
			}
		}
		return nil
	}
	for _, ls := range p.LiveSets {
		count := 0
		for _, v := range ls {
			if r.Allocated[v] {
				count++
			}
		}
		if count > p.R {
			return fmt.Errorf("alloc: %s: live set %v keeps %d > R=%d variables",
				r.Allocator, ls, count, p.R)
		}
	}
	return nil
}

// Allocator is a spill-everywhere register allocator.
type Allocator interface {
	Name() string
	// Allocate solves p. Implementations must return a valid Result.
	Allocate(p *Problem) *Result
}

// ProblemChecker is an optional Allocator extension: allocators that have
// structural preconditions beyond "is a Problem" implement it so the
// pipeline can reject a malformed instance with a typed error before
// Allocate runs, instead of panicking from inside the algorithm. The
// built-in allocators keep their internal panics as a defensive backstop,
// but every driver path (core, pipeline, server) consults CheckProblem
// first, so user input can no longer reach them.
type ProblemChecker interface {
	// CheckProblem reports why p cannot be solved by this allocator, or
	// nil when it can.
	CheckProblem(p *Problem) error
}

// MaxPressure returns the largest live-set size, i.e. MaxLive.
func (p *Problem) MaxPressure() int {
	max := 0
	for _, ls := range p.LiveSets {
		if len(ls) > max {
			max = len(ls)
		}
	}
	return max
}

// SortedCopy returns a sorted copy of s (helper shared by allocators).
func SortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}
