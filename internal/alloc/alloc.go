// Package alloc defines the register-allocation problem the paper studies —
// spill-everywhere allocation in a decoupled framework — and the common
// types every allocator implements.
//
// A Problem is an interference graph with spill costs, a register count R,
// and the register-pressure constraints (live sets, which are cliques of
// the graph). An allocation is a subset of variables kept in registers; it
// is valid when no live set keeps more than R variables, which for chordal
// (strict SSA) graphs is exactly R-colourability. The allocation cost of a
// solution is the total spill cost of the variables not kept.
package alloc

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ifg"
)

// Problem is one spill-everywhere allocation instance.
type Problem struct {
	// G is the weighted interference graph; weights are spill costs.
	G *graph.Weighted
	// R is the number of available registers.
	R int
	// LiveSets are the register-pressure constraints: sorted vertex sets,
	// each a clique of G, of which at most R members may be allocated.
	// For chordal instances these are the maximal cliques.
	LiveSets [][]int
	// Chordal records whether G is chordal; PEO is a perfect elimination
	// order when it is (and a best-effort MCS order otherwise).
	Chordal bool
	PEO     []int
	// Name optionally identifies the instance (benchmark name) in reports.
	Name string
	// Intervals optionally holds, per vertex, the [start, end] program
	// point range of its live interval on a linearized layout. Linear-scan
	// allocators require it; graph-only instances leave it nil.
	Intervals [][2]int
}

// NewProblem assembles a Problem from an interference graph build and
// per-value spill costs.
func NewProblem(b *ifg.Build, costs []float64, r int) *Problem {
	w := make([]float64, b.Graph.N())
	for v := range w {
		w[v] = costs[b.ValueOf[v]]
	}
	p := &Problem{
		G:    graph.NewWeighted(b.Graph, w),
		R:    r,
		Name: b.F.Name,
	}
	p.PEO = b.Graph.PerfectEliminationOrder()
	// The clique ↔ live-set correspondence that lets allocators treat graph
	// cliques as register-pressure constraints only holds for strict SSA.
	// A non-SSA program may produce an accidentally chordal graph whose
	// maximal cliques were never simultaneously live; its constraints must
	// stay the program-point live sets.
	p.Chordal = b.F.SSA && b.Graph.IsPerfectEliminationOrder(p.PEO)
	if p.Chordal {
		p.LiveSets = b.Graph.MaximalCliques(p.PEO)
	} else {
		p.LiveSets = b.LiveSets
	}
	return p
}

// NewGraphProblem wraps a bare weighted graph as a Problem, deriving the
// pressure constraints from the graph's maximal cliques (requires a chordal
// graph unless liveSets is supplied). Used by tests and the graph-level
// examples.
func NewGraphProblem(g *graph.Weighted, r int, liveSets [][]int) *Problem {
	p := &Problem{G: g, R: r, LiveSets: liveSets}
	if !g.Frozen() {
		g.Freeze()
	}
	p.PEO = g.PerfectEliminationOrder()
	p.Chordal = g.IsPerfectEliminationOrder(p.PEO)
	if p.LiveSets == nil {
		if !p.Chordal {
			panic("alloc: non-chordal graph problem requires explicit live sets")
		}
		p.LiveSets = g.MaximalCliques(p.PEO)
	}
	return p
}

// Result is the outcome of one allocator run.
type Result struct {
	// Allocated[v] reports whether vertex v stays in a register.
	Allocated []bool
	// Allocator names the algorithm that produced the result.
	Allocator string
}

// NewResult builds a Result from the list of allocated vertices.
func NewResult(n int, allocated []int, name string) *Result {
	res := &Result{Allocated: make([]bool, n), Allocator: name}
	for _, v := range allocated {
		res.Allocated[v] = true
	}
	return res
}

// Spilled returns the sorted list of spilled vertices.
func (r *Result) Spilled() []int {
	var out []int
	for v, a := range r.Allocated {
		if !a {
			out = append(out, v)
		}
	}
	return out
}

// AllocatedList returns the sorted list of allocated vertices.
func (r *Result) AllocatedList() []int {
	var out []int
	for v, a := range r.Allocated {
		if a {
			out = append(out, v)
		}
	}
	return out
}

// SpillCost returns the total cost of the spilled variables under problem p.
func (r *Result) SpillCost(p *Problem) float64 {
	cost := 0.0
	for v, a := range r.Allocated {
		if !a {
			cost += p.G.Weight[v]
		}
	}
	return cost
}

// Validate checks that the allocation respects every pressure constraint
// (≤ R allocated per live set). On chordal instances this is equivalent to
// the allocated subgraph being R-colourable.
func (p *Problem) Validate(r *Result) error {
	if len(r.Allocated) != p.G.N() {
		return fmt.Errorf("alloc: result covers %d of %d vertices", len(r.Allocated), p.G.N())
	}
	for _, ls := range p.LiveSets {
		count := 0
		for _, v := range ls {
			if r.Allocated[v] {
				count++
			}
		}
		if count > p.R {
			return fmt.Errorf("alloc: %s: live set %v keeps %d > R=%d variables",
				r.Allocator, ls, count, p.R)
		}
	}
	return nil
}

// Allocator is a spill-everywhere register allocator.
type Allocator interface {
	Name() string
	// Allocate solves p. Implementations must return a valid Result.
	Allocate(p *Problem) *Result
}

// MaxPressure returns the largest live-set size, i.e. MaxLive.
func (p *Problem) MaxPressure() int {
	max := 0
	for _, ls := range p.LiveSets {
		if len(ls) > max {
			max = len(ls)
		}
	}
	return max
}

// SortedCopy returns a sorted copy of s (helper shared by allocators).
func SortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}
