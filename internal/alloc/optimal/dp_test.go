package optimal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/graph"
)

func TestEnumerateSubsets(t *testing.T) {
	var got []uint64
	enumerateSubsets(4, 2, func(m uint64) { got = append(got, m) })
	// C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11 masks, all with ≤ 2 bits.
	if len(got) != 11 {
		t.Fatalf("enumerated %d masks, want 11: %v", len(got), got)
	}
	seen := map[uint64]bool{}
	for _, m := range got {
		if popcount(m) > 2 || m >= 16 {
			t.Fatalf("bad mask %b", m)
		}
		if seen[m] {
			t.Fatalf("duplicate mask %b", m)
		}
		seen[m] = true
	}
}

func TestEnumerateSubsetsFull(t *testing.T) {
	count := 0
	enumerateSubsets(5, 5, func(uint64) { count++ })
	if count != 32 {
		t.Fatalf("full enumeration = %d, want 2^5", count)
	}
}

func TestBinomialPrefix(t *testing.T) {
	cases := []struct {
		n, r int
		want int64
	}{
		{4, 2, 11}, {5, 5, 32}, {10, 0, 1}, {3, 9, 8}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := binomialPrefix(c.n, c.r); got != c.want {
			t.Errorf("binomialPrefix(%d,%d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
	if binomialPrefix(62, 31) <= 0 {
		t.Fatal("large prefix must saturate positive")
	}
}

// TestPropertyDPMatchesBranchAndBound: both exact engines agree on the
// optimal value for random chordal instances.
func TestPropertyDPMatchesBranchAndBound(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(24), 1+r.Intn(5))
		dp := solveChordalDP(p, DefaultStateBudget)
		if dp == nil {
			return false // within budget at these sizes
		}
		if p.Validate(dp) != nil {
			return false
		}
		// Force the search path.
		q := *p
		q.Chordal = false
		bb := New().Allocate(&q)
		return almostEqual(dp.SpillCost(p), bb.SpillCost(p))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func TestDPBailsOverBudget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := randomChordalProblem(r, 60, 20)
	if p.MaxPressure() < 25 {
		t.Skip("instance not dense enough to exceed the budget")
	}
	if res := solveChordalDP(p, 10); res != nil {
		t.Fatal("DP ran over a tiny budget")
	}
}

func TestDPDisconnectedGraph(t *testing.T) {
	// Two disjoint triangles; R=2 must spill the cheapest of each.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	w := graph.NewWeighted(g, []float64{1, 2, 3, 4, 5, 6})
	p := alloc.NewGraphProblem(w, 2, nil)
	res := solveChordalDP(p, DefaultStateBudget)
	if res == nil {
		t.Fatal("DP bailed on a tiny instance")
	}
	if err := p.Validate(res); err != nil {
		t.Fatal(err)
	}
	if got := res.SpillCost(p); got != 1+4 {
		t.Fatalf("spill cost = %g, want 5 (cheapest of each triangle)", got)
	}
}
