// Package optimal solves the spill-everywhere allocation problem exactly,
// standing in for the ILP-based "Optimal" allocator of the paper's
// evaluation (the model of Diouf et al., HiPEAC'10).
//
// The problem: choose a maximum-weight subset of variables to keep in
// registers such that every live set (register-pressure constraint, a clique
// of the interference graph) keeps at most R of its members. On chordal
// graphs this is exactly optimal spill-everywhere allocation; on general
// graphs it is the pressure-based model the paper's decoupled framework
// uses.
//
// The solver is a depth-first branch and bound over the variables in
// decreasing weight order with three accelerators:
//
//   - constraint propagation: when every live set containing a variable has
//     enough remaining capacity for all of its undecided members, the
//     variable is allocated for free;
//   - an admissible bound that charges each undecided variable to its
//     tightest live set and takes each set's cap heaviest members;
//   - a warm start from the cost-greedy solution.
//
// The search is exact; NodeLimit (very large by default) only guards
// against pathological instances, and Result records whether it was hit.
package optimal

import (
	"sort"

	"repro/internal/alloc"
)

// Allocator is the exact solver.
type Allocator struct {
	// NodeLimit bounds the number of search nodes (0 = DefaultNodeLimit).
	// If the limit is reached the best solution found so far is returned
	// and LastExact reports false.
	NodeLimit int64
	// LastExact reports whether the most recent Allocate call proved
	// optimality.
	LastExact bool
	// LastNodes reports the node count of the most recent call.
	LastNodes int64
}

// DefaultNodeLimit is ample for every workload in the repository's suites.
const DefaultNodeLimit = 50_000_000

// New returns an exact allocator.
func New() *Allocator { return &Allocator{} }

// Name implements alloc.Allocator.
func (*Allocator) Name() string { return "Optimal" }

// DefaultStateBudget bounds the clique-tree DP's enumeration size; above
// it the solver uses branch and bound instead (which is fast in exactly
// that regime, because large budgets correspond to slack constraints).
const DefaultStateBudget = 4_000_000

// DPRegisterCrossover is the largest register count routed to the DP; the
// branch and bound wins above it (measured on the repository's suites).
const DPRegisterCrossover = 6

// Allocate implements alloc.Allocator.
func (a *Allocator) Allocate(p *alloc.Problem) *alloc.Result {
	// Chordal instances at small R admit the exact clique-tree DP, which
	// is immune to the branching blow-ups tight register counts cause in
	// search. At larger R the constraints are slack and branch and bound
	// is both exact and faster, so the DP only takes over below the
	// crossover.
	if p.Chordal && p.R <= DPRegisterCrossover {
		if res := solveChordalDP(p, DefaultStateBudget); res != nil {
			a.LastExact = true
			a.LastNodes = 0
			return res
		}
	}
	s := newSolver(p)
	limit := a.NodeLimit
	if limit <= 0 {
		limit = DefaultNodeLimit
	}
	s.nodeLimit = limit
	s.solve()
	a.LastExact = s.exact
	a.LastNodes = s.nodes
	var allocated []int
	for v := 0; v < p.N(); v++ {
		if s.bestAlloc[v] {
			allocated = append(allocated, v)
		}
	}
	return alloc.NewResult(p.N(), allocated, "Optimal")
}

type solver struct {
	p *alloc.Problem
	// order lists vertex IDs in decreasing weight (the decision order);
	// rank[v] is v's position in order.
	order []int
	rank  []int
	// constraints: deduplicated maximal live sets.
	sets      [][]int
	setsOf    [][]int // per vertex, indices of sets containing it
	cap       []int   // remaining capacity per set
	undec     []int   // undecided member count per set
	state     []int8  // per vertex: 0 undecided, 1 allocated, 2 spilled
	current   float64 // weight of currently allocated
	best      float64
	bestAlloc []bool
	nodes     int64
	nodeLimit int64
	exact     bool
}

const (
	undecided int8 = iota
	allocated
	spilledState
)

func newSolver(p *alloc.Problem) *solver {
	n := p.N()
	s := &solver{
		p:         p,
		rank:      make([]int, n),
		state:     make([]int8, n),
		bestAlloc: make([]bool, n),
		exact:     true,
	}
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(i, j int) bool {
		wi, wj := p.Weight[s.order[i]], p.Weight[s.order[j]]
		if wi != wj {
			return wi > wj
		}
		return s.order[i] < s.order[j]
	})
	for i, v := range s.order {
		s.rank[v] = i
	}
	s.sets = maximalSets(p.LiveSets, n)
	s.setsOf = make([][]int, n)
	s.cap = make([]int, len(s.sets))
	s.undec = make([]int, len(s.sets))
	for ci, set := range s.sets {
		s.cap[ci] = p.R
		s.undec[ci] = len(set)
		for _, v := range set {
			s.setsOf[v] = append(s.setsOf[v], ci)
		}
	}
	return s
}

// maximalSets drops live sets that are subsets of other live sets (they are
// implied) and live sets no larger than R is irrelevant... — note: sets of
// size ≤ R never constrain anything, so they are dropped too by the caller
// capacity check; keeping them costs nothing but time, so they are removed
// here when possible.
func maximalSets(sets [][]int, n int) [][]int {
	sorted := make([][]int, len(sets))
	copy(sorted, sets)
	sort.SliceStable(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })
	member := make([][]bool, 0, len(sorted))
	var kept [][]int
	for _, set := range sorted {
		contained := false
		for _, m := range member {
			all := true
			for _, v := range set {
				if !m[v] {
					all = false
					break
				}
			}
			if all {
				contained = true
				break
			}
		}
		if contained {
			continue
		}
		m := make([]bool, n)
		for _, v := range set {
			m[v] = true
		}
		member = append(member, m)
		kept = append(kept, set)
	}
	return kept
}

func (s *solver) solve() {
	// Warm start: greedy by decreasing weight under capacity.
	capCopy := append([]int(nil), s.cap...)
	greedyWeight := 0.0
	greedyAlloc := make([]bool, len(s.state))
	for _, v := range s.order {
		ok := true
		for _, ci := range s.setsOf[v] {
			if capCopy[ci] == 0 {
				ok = false
				break
			}
		}
		if ok {
			greedyAlloc[v] = true
			greedyWeight += s.p.Weight[v]
			for _, ci := range s.setsOf[v] {
				capCopy[ci]--
			}
		}
	}
	s.best = greedyWeight
	copy(s.bestAlloc, greedyAlloc)
	s.dfs(0)
}

// dfs decides vertices from position pos in the weight order.
func (s *solver) dfs(pos int) {
	if s.nodes >= s.nodeLimit {
		s.exact = false
		return
	}
	s.nodes++
	// Skip already-decided vertices (propagation may decide out of order).
	for pos < len(s.order) && s.state[s.order[pos]] != undecided {
		pos++
	}
	if pos == len(s.order) {
		if s.current > s.best {
			s.best = s.current
			for v, st := range s.state {
				s.bestAlloc[v] = st == allocated
			}
		}
		return
	}
	if s.bound(pos) <= s.best {
		return
	}
	v := s.order[pos]

	// Branch 1: allocate v if capacity allows.
	canAlloc := true
	for _, ci := range s.setsOf[v] {
		if s.cap[ci] == 0 {
			canAlloc = false
			break
		}
	}
	if canAlloc {
		trail := s.assign(v, allocated)
		s.propagate(&trail)
		s.dfs(pos + 1)
		s.unwind(trail)
	}

	// Branch 2: spill v. If v was freely allocatable and spilling it cannot
	// help any constraint it participates in... spilling only ever reduces
	// allocated weight unless a constraint binds, so prune: if every set
	// containing v has cap ≥ undecided members (v's allocation is never in
	// conflict), the spill branch is dominated.
	dominated := canAlloc
	for _, ci := range s.setsOf[v] {
		if s.cap[ci] < s.undec[ci] {
			dominated = false
			break
		}
	}
	if !dominated {
		trail := s.assign(v, spilledState)
		s.propagate(&trail)
		s.dfs(pos + 1)
		s.unwind(trail)
	}
}

// trailEntry records one decision for backtracking.
type trailEntry struct {
	vertex int
	state  int8
}

func (s *solver) assign(v int, st int8) []trailEntry {
	trail := []trailEntry{{v, st}}
	s.apply(v, st)
	return trail
}

func (s *solver) apply(v int, st int8) {
	s.state[v] = st
	for _, ci := range s.setsOf[v] {
		s.undec[ci]--
		if st == allocated {
			s.cap[ci]--
		}
	}
	if st == allocated {
		s.current += s.p.Weight[v]
	}
}

func (s *solver) unapply(v int) {
	st := s.state[v]
	s.state[v] = undecided
	for _, ci := range s.setsOf[v] {
		s.undec[ci]++
		if st == allocated {
			s.cap[ci]++
		}
	}
	if st == allocated {
		s.current -= s.p.Weight[v]
	}
}

func (s *solver) unwind(trail []trailEntry) {
	for i := len(trail) - 1; i >= 0; i-- {
		s.unapply(trail[i].vertex)
	}
}

// propagate allocates every undecided vertex all of whose sets have
// capacity for all their undecided members (allocating such a vertex can
// never hurt: it does not make any other allocation infeasible). Repeats to
// a fixpoint; appends the forced assignments to the trail.
func (s *solver) propagate(trail *[]trailEntry) int {
	forced := 0
	for changed := true; changed; {
		changed = false
		for _, v := range s.order {
			if s.state[v] != undecided {
				continue
			}
			free := true
			for _, ci := range s.setsOf[v] {
				if s.cap[ci] < s.undec[ci] {
					free = false
					break
				}
			}
			if free {
				*trail = append(*trail, trailEntry{v, allocated})
				s.apply(v, allocated)
				forced++
				changed = true
			}
		}
	}
	return forced
}

// bound returns an upper bound on the best total allocated weight reachable
// from the current node: current weight plus, for each undecided vertex
// charged to its tightest set, the sum of each set's cap heaviest charges
// (vertices in no set are fully counted).
func (s *solver) bound(pos int) float64 {
	ub := s.current
	taken := make(map[int]int, 16) // set index -> vertices charged so far
	for i := pos; i < len(s.order); i++ {
		v := s.order[i]
		if s.state[v] != undecided {
			continue
		}
		// Tightest set: minimal remaining capacity.
		tight, tightCap := -1, 1<<30
		blocked := false
		for _, ci := range s.setsOf[v] {
			c := s.cap[ci]
			if c == 0 {
				blocked = true
				break
			}
			if c < tightCap {
				tight, tightCap = ci, c
			}
		}
		if blocked {
			continue
		}
		if tight < 0 {
			ub += s.p.Weight[v]
			continue
		}
		if taken[tight] < tightCap {
			taken[tight]++
			ub += s.p.Weight[v]
		}
	}
	return ub
}
