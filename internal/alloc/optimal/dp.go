package optimal

import (
	"math/bits"

	"repro/internal/alloc"
)

// solveChordalDP solves a chordal spill-everywhere instance exactly by
// dynamic programming over the clique tree: each tree node enumerates the
// ≤R-subsets of its clique that stay in registers, children agree with their
// parents on the shared separator vertices, and every vertex's weight is
// counted once at its topmost clique. This is the pseudo-polynomial
// algorithm the paper's complexity discussion refers to (Bouchez et al.):
// exponential only in R, linear in the program.
//
// It returns nil when the estimated enumeration size exceeds stateBudget
// (large R on big cliques), in which case the caller falls back to branch
// and bound — which is fast exactly in that regime because the constraints
// are slack.
func solveChordalDP(p *alloc.Problem, stateBudget int64) *alloc.Result {
	if !p.Chordal {
		return nil
	}
	tree := p.Graph().BuildCliqueTree(p.PEO)
	k := len(tree.Cliques)
	if k == 0 {
		return alloc.NewResult(p.N(), nil, "Optimal")
	}
	// Feasibility estimate: Σ over nodes of C(|clique|, ≤R), and cliques
	// must fit in a 64-bit mask.
	total := int64(0)
	for _, c := range tree.Cliques {
		if len(c) > 62 {
			return nil
		}
		total += binomialPrefix(len(c), p.R)
		if total > stateBudget {
			return nil
		}
	}

	children := make([][]int, k)
	for i, parent := range tree.Parent {
		if parent >= 0 {
			children[parent] = append(children[parent], i)
		}
	}
	// posIn[i] maps vertex -> bit position within clique i.
	posIn := make([]map[int]int, k)
	for i, c := range tree.Cliques {
		posIn[i] = make(map[int]int, len(c))
		for b, v := range c {
			posIn[i][v] = b
		}
	}
	// top[v] is true at the unique node where v's weight is counted.
	countHere := make([][]bool, k)
	for i, c := range tree.Cliques {
		countHere[i] = make([]bool, len(c))
		for b, v := range c {
			parent := tree.Parent[i]
			if parent == -1 {
				countHere[i][b] = true
				continue
			}
			if _, inParent := posIn[parent][v]; !inParent {
				countHere[i][b] = true
			}
		}
	}

	type table struct {
		// value and the winning clique mask, keyed by separator mask
		// (bits are positions within the separator slice).
		value  map[uint64]float64
		choice map[uint64]uint64
	}
	tables := make([]*table, k)

	// sepPos[i][j] is the bit position within clique i of separator[i][j].
	sepPos := make([][]int, k)
	for i, sep := range tree.Separator {
		sepPos[i] = make([]int, len(sep))
		for j, v := range sep {
			sepPos[i][j] = posIn[i][v]
		}
	}
	// childSepPos[i][ci][j]: position within clique i of child ci's j-th
	// separator vertex.
	childSepPos := make([][][]int, k)
	for i := range children {
		childSepPos[i] = make([][]int, len(children[i]))
		for ci, child := range children[i] {
			sep := tree.Separator[child]
			positions := make([]int, len(sep))
			for j, v := range sep {
				positions[j] = posIn[i][v]
			}
			childSepPos[i][ci] = positions
		}
	}

	project := func(mask uint64, positions []int) uint64 {
		var out uint64
		for j, pos := range positions {
			if mask&(1<<uint(pos)) != 0 {
				out |= 1 << uint(j)
			}
		}
		return out
	}

	var process func(i int)
	process = func(i int) {
		for _, child := range children[i] {
			process(child)
		}
		c := tree.Cliques[i]
		t := &table{
			value:  make(map[uint64]float64),
			choice: make(map[uint64]uint64),
		}
		enumerateSubsets(len(c), p.R, func(mask uint64) {
			weight := 0.0
			for b := range c {
				if mask&(1<<uint(b)) != 0 && countHere[i][b] {
					weight += p.Weight[c[b]]
				}
			}
			ok := true
			for ci, child := range children[i] {
				key := project(mask, childSepPos[i][ci])
				v, present := tables[child].value[key]
				if !present {
					ok = false
					break
				}
				weight += v
			}
			if !ok {
				return
			}
			sepKey := project(mask, sepPos[i])
			if old, present := t.value[sepKey]; !present || weight > old {
				t.value[sepKey] = weight
				t.choice[sepKey] = mask
			}
		})
		tables[i] = t
		// Free children tables' choices? Needed for reconstruction; keep.
	}
	for _, root := range tree.Roots() {
		process(root)
	}

	// Reconstruct the allocation top-down.
	allocated := make([]bool, p.N())
	var recover func(i int, sepKey uint64)
	recover = func(i int, sepKey uint64) {
		mask := tables[i].choice[sepKey]
		c := tree.Cliques[i]
		for b, v := range c {
			if mask&(1<<uint(b)) != 0 {
				allocated[v] = true
			}
		}
		for ci, child := range children[i] {
			recover(child, project(mask, childSepPos[i][ci]))
		}
	}
	for _, root := range tree.Roots() {
		recover(root, 0)
	}
	var list []int
	for v, al := range allocated {
		if al {
			list = append(list, v)
		}
	}
	return alloc.NewResult(p.N(), list, "Optimal")
}

// enumerateSubsets calls fn for every bitmask over n positions with at most
// r bits set, using Gosper's hack per popcount so the work is exactly
// Σ_{k≤r} C(n,k) rather than 2^n.
func enumerateSubsets(n, r int, fn func(mask uint64)) {
	if r > n {
		r = n
	}
	fn(0)
	for k := 1; k <= r; k++ {
		mask := uint64(1)<<uint(k) - 1
		limit := uint64(1) << uint(n)
		for mask < limit {
			fn(mask)
			// Gosper's hack: next mask with the same popcount.
			c := mask & (^mask + 1)
			rr := mask + c
			mask = (((rr ^ mask) >> 2) / c) | rr
			if rr == 0 {
				break // overflow guard (k = n case)
			}
		}
	}
}

// binomialPrefix returns Σ_{k≤r} C(n,k), saturating at a large value.
func binomialPrefix(n, r int) int64 {
	if r > n {
		r = n
	}
	const cap = int64(1) << 50
	total := int64(0)
	c := int64(1)
	for k := 0; k <= r; k++ {
		total += c
		if total > cap {
			return cap
		}
		// next binomial C(n, k+1) = C(n,k) * (n-k) / (k+1)
		c = c * int64(n-k) / int64(k+1)
		if c < 0 || c > cap {
			return cap
		}
	}
	return total
}

// popcount is a small helper kept for clarity in tests.
func popcount(x uint64) int { return bits.OnesCount64(x) }
