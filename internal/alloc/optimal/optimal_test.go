package optimal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/alloc/layered"
	"repro/internal/graph"
)

// fig2Graph demonstrates the phenomenon of the paper's Figure 2 (after
// Diouf et al., HiPEAC'10): optimal spill sets are not monotone in the
// register count — the optimal spill set with R registers need not contain
// the optimal spill set with R-1 registers. The figure's exact edge set is
// not recoverable from the source scan, so this chordal instance was found
// by exhaustive search to have *unique* optima exhibiting the property
// under the spill-everywhere pressure model:
//
//	vertices 0..5, weights [47 39 28 23 13 18]
//	edges (0,1) (0,5) (1,2) (1,4) (1,5) (2,3) (2,4)
//	R=1: unique optimal spill {1, 2, 5}   (keep {0, 3, 4})
//	R=2: unique optimal spill {4, 5}      (keep {0, 1, 2, 3})
//
// Vertex 4 is kept at R=1 but spilled at R=2: neither the spill sets nor
// the allocation sets are inclusion-monotone.
func fig2Graph() *graph.Weighted {
	g := graph.New(6)
	for _, e := range [][2]int{
		{0, 1}, {0, 5}, {1, 2}, {1, 4}, {1, 5}, {2, 3}, {2, 4},
	} {
		g.AddEdge(e[0], e[1])
	}
	return graph.NewWeighted(g, []float64{47, 39, 28, 23, 13, 18})
}

func TestSpillSetInclusionCounterexample(t *testing.T) {
	w := fig2Graph()
	a := New()

	p1 := alloc.NewGraphProblem(w, 1, nil)
	r1 := a.Allocate(p1)
	if err := p1.Validate(r1); err != nil {
		t.Fatal(err)
	}
	if !a.LastExact {
		t.Fatal("solver not exact on 6 nodes")
	}
	wantSpill1 := []int{1, 2, 5}
	if got := r1.Spilled(); !sameInts(got, wantSpill1) {
		t.Fatalf("R=1 spill set = %v, want %v", got, wantSpill1)
	}

	p2 := alloc.NewGraphProblem(w, 2, nil)
	r2 := a.Allocate(p2)
	if err := p2.Validate(r2); err != nil {
		t.Fatal(err)
	}
	wantSpill2 := []int{4, 5}
	if got := r2.Spilled(); !sameInts(got, wantSpill2) {
		t.Fatalf("R=2 spill set = %v, want %v", got, wantSpill2)
	}

	// The non-inclusion: vertex 4 is spilled at R=2 but not at R=1.
	if r1.Allocated[4] != true || r2.Allocated[4] != false {
		t.Fatal("expected vertex 4 kept at R=1 and spilled at R=2")
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExactOnTriangle(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	p := alloc.NewGraphProblem(graph.NewWeighted(g, []float64{1, 2, 3}), 2, nil)
	res := New().Allocate(p)
	// Must spill exactly the cheapest vertex.
	if res.Allocated[0] || !res.Allocated[1] || !res.Allocated[2] {
		t.Fatalf("allocated %v, want {1,2}", res.AllocatedList())
	}
}

func TestAllAllocatedWhenPressureFits(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	p := alloc.NewGraphProblem(graph.NewWeighted(g, []float64{1, 1, 1, 1}), 2, nil)
	res := New().Allocate(p)
	if len(res.Spilled()) != 0 {
		t.Fatalf("spilled %v with no pressure", res.Spilled())
	}
}

// bruteForce solves the pressure-constrained problem by enumeration.
func bruteForce(p *alloc.Problem) float64 {
	n := p.N()
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, ls := range p.LiveSets {
			cnt := 0
			for _, v := range ls {
				if mask&(1<<v) != 0 {
					cnt++
				}
			}
			if cnt > p.R {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		total := 0.0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				total += p.Weight[v]
			}
		}
		if total > best {
			best = total
		}
	}
	return best
}

func randomChordalProblem(r *rand.Rand, n, regs int) *alloc.Problem {
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, b := r.Intn(3*n), r.Intn(3*n)
		if a > b {
			a, b = b, a
		}
		ivs[i] = iv{a, b}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				g.AddEdge(i, j)
			}
		}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(1 + r.Intn(50))
	}
	return alloc.NewGraphProblem(graph.NewWeighted(g, w), regs, nil)
}

// TestPropertyMatchesBruteForce is the solver's exactness check.
func TestPropertyMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(13)
		p := randomChordalProblem(r, n, 1+r.Intn(4))
		a := New()
		res := a.Allocate(p)
		if !a.LastExact {
			return false
		}
		if p.Validate(res) != nil {
			return false
		}
		allocated := 0.0
		for v, al := range res.Allocated {
			if al {
				allocated += p.Weight[v]
			}
		}
		return allocated == bruteForce(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOptimalLowerBoundsHeuristics: the exact spill cost never
// exceeds any layered allocator's.
func TestPropertyOptimalLowerBoundsHeuristics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(25), 1+r.Intn(6))
		opt := New().Allocate(p).SpillCost(p)
		for _, h := range []alloc.Allocator{
			layered.NL(), layered.BL(), layered.FPL(), layered.BFPL(),
		} {
			if h.Allocate(p).SpillCost(p) < opt-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeLimitFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := randomChordalProblem(r, 40, 3)
	// Disable the clique-tree DP so the branch and bound runs: mark the
	// problem non-chordal (the live-set constraints stay valid).
	p.Chordal = false
	a := &Allocator{NodeLimit: 1}
	res := a.Allocate(p)
	if a.LastExact {
		t.Fatal("one-node search claims exactness")
	}
	// Must still be a valid (greedy warm start) allocation.
	if err := p.Validate(res); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalSetsDedup(t *testing.T) {
	sets := [][]int{{0, 1}, {0, 1, 2}, {1, 2}, {0, 1, 2}, {3}}
	kept := maximalSets(sets, 4)
	if len(kept) != 2 {
		t.Fatalf("kept %v, want {0,1,2} and {3}", kept)
	}
}
