package alloc

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/spillcost"
)

func triangleProblem(t *testing.T, r int) *Problem {
	t.Helper()
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return NewGraphProblem(graph.NewWeighted(g, []float64{1, 2, 3}), r, nil)
}

func TestNewGraphProblemDerivesCliques(t *testing.T) {
	p := triangleProblem(t, 2)
	if !p.Chordal {
		t.Fatal("triangle not chordal")
	}
	if len(p.LiveSets) != 1 || len(p.LiveSets[0]) != 3 {
		t.Fatalf("live sets = %v", p.LiveSets)
	}
	if p.MaxPressure() != 3 {
		t.Fatalf("MaxPressure = %d", p.MaxPressure())
	}
}

func TestNewGraphProblemNonChordalNeedsLiveSets(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	w := graph.NewWeighted(g, []float64{1, 1, 1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("non-chordal problem without live sets did not panic")
		}
	}()
	NewGraphProblem(w, 2, nil)
}

func TestValidate(t *testing.T) {
	p := triangleProblem(t, 2)
	ok := NewResult(3, []int{0, 1}, "test")
	if err := p.Validate(ok); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	bad := NewResult(3, []int{0, 1, 2}, "test")
	if err := p.Validate(bad); err == nil {
		t.Fatal("over-pressure allocation accepted")
	}
	short := &Result{Allocated: []bool{true}, Allocator: "test"}
	if err := p.Validate(short); err == nil {
		t.Fatal("wrong-size result accepted")
	}
}

func TestSpillCostAndSets(t *testing.T) {
	p := triangleProblem(t, 2)
	res := NewResult(3, []int{1, 2}, "test")
	if got := res.SpillCost(p); got != 1 {
		t.Fatalf("SpillCost = %g, want 1 (vertex 0)", got)
	}
	if got := res.Spilled(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Spilled = %v", got)
	}
	if got := res.AllocatedList(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("AllocatedList = %v", got)
	}
}

func TestNewProblemFromIR(t *testing.T) {
	f := ir.MustParse(`
func p ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  d = arith c, b
  ret d
}`)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	b := ifg.FromFunc(f)
	costs := spillcost.Costs(f, spillcost.DefaultModel)
	p := BuildProblem(Spec{Build: b, Costs: costs, R: 2})
	if !p.Chordal {
		t.Fatal("SSA problem must be chordal")
	}
	if p.N() != b.Graph.N() {
		t.Fatal("graph size mismatch")
	}
	for v := 0; v < p.N(); v++ {
		if p.Weight[v] != costs[b.ValueOf[v]] {
			t.Fatal("weights not translated")
		}
	}
}

func TestNonSSAProblemUsesLiveSets(t *testing.T) {
	// The graph of this non-SSA function is chordal, but the problem must
	// still use the point live sets: cliques of accidental chordal graphs
	// over-constrain the allocation.
	f := ir.MustParse(`
func ns {
b0:
  u = param 0
  v = param 1
  w = arith u, v
  u = arith w, w
  s = arith u, w
  store u, s
  ret s
}`)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	b := ifg.FromFunc(f)
	costs := spillcost.Costs(f, spillcost.DefaultModel)
	p := BuildProblem(Spec{Build: b, Costs: costs, R: 2})
	if p.Chordal {
		t.Fatal("non-SSA problem must not claim the chordal clique model")
	}
	if len(p.LiveSets) != len(b.LiveSets) {
		t.Fatal("live sets not taken from the build")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("SortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
