package layered

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/stable"
)

// The paper's Figure 4/5/6 graph: a..g = 0..6, weights a=1 f=6 d=5 e=2 b=2
// g=1 c=2.
const (
	va = iota
	vb
	vc
	vd
	ve
	vf
	vg
)

func paperGraph() *graph.Weighted {
	g := graph.New(7)
	for _, e := range [][2]int{
		{va, vd}, {va, vf}, {vd, vf}, {ve, vf}, {vd, ve},
		{vc, vd}, {vc, ve}, {ve, vg}, {vc, vg}, {vb, vc}, {vb, vg},
	} {
		g.AddEdge(e[0], e[1])
	}
	w := make([]float64, 7)
	w[va], w[vb], w[vc], w[vd], w[ve], w[vf], w[vg] = 1, 2, 2, 5, 2, 6, 1
	return graph.NewWeighted(g, w)
}

func spillCostOf(p *alloc.Problem, res *alloc.Result) float64 { return res.SpillCost(p) }

// TestBiasImprovesLayered reproduces the paper's Figure 6: with two
// registers and step one, the unbiased allocator may pick the {b,f} maximum
// weighted stable set and end with spill cost 5 on this reconstruction,
// while the biased allocator prefers {c,f} (same weight, more interference
// removed) and reaches spill cost 4.
func TestBiasImprovesLayered(t *testing.T) {
	p := alloc.NewGraphProblem(paperGraph(), 2, nil)

	nl := NL().Allocate(p)
	if err := p.Validate(nl); err != nil {
		t.Fatal(err)
	}
	bl := BL().Allocate(p)
	if err := p.Validate(bl); err != nil {
		t.Fatal(err)
	}
	nlCost, blCost := spillCostOf(p, nl), spillCostOf(p, bl)
	if blCost >= nlCost {
		t.Fatalf("bias did not help: NL=%g BL=%g", nlCost, blCost)
	}
	// The biased first layer is {c, f}: both allocated.
	if !bl.Allocated[vc] || !bl.Allocated[vf] {
		t.Fatalf("biased allocation missing c/f: %v", bl.AllocatedList())
	}
	// Biased second layer {b, d}: total spill {a, e, g} = 4.
	if blCost != 4 {
		t.Fatalf("BL spill cost = %g, want 4", blCost)
	}
}

// fig7Graph is the paper's Figure 7 topology: maximal cliques {a,d,f},
// {b,c,e}, {c,d,e}, {d,e,f}. The figure's weight labels are ambiguous in the
// source scan, so we use weights a=5 b=4 c=1 d=3 e=1 f=1 which exhibit the
// same phenomenon: with R=2, plain layered allocation stops at {a,b,d}
// after two layers, yet c (and alternatively e) can still be allocated —
// only the fixed-point iteration finds it.
func fig7Graph() *graph.Weighted {
	const (
		a = iota
		b
		c
		d
		e
		f
	)
	g := graph.New(6)
	for _, edge := range [][2]int{
		{a, d}, {a, f}, {d, f}, // clique adf
		{b, c}, {b, e}, {c, e}, // clique bce
		{c, d}, {d, e}, // clique cde (with c-e above)
		{e, f}, // clique def (with d-e, d-f above)
	} {
		g.AddEdge(edge[0], edge[1])
	}
	return graph.NewWeighted(g, []float64{5, 4, 1, 3, 1, 1})
}

func TestFixedPointImprovesLayered(t *testing.T) {
	p := alloc.NewGraphProblem(fig7Graph(), 2, nil)

	nl := NL().Allocate(p)
	if err := p.Validate(nl); err != nil {
		t.Fatal(err)
	}
	got := nl.AllocatedList()
	want := []int{0, 1, 3} // a, b, d
	if !equalInts(got, want) {
		t.Fatalf("NL allocated %v, want %v", got, want)
	}

	fpl := FPL().Allocate(p)
	if err := p.Validate(fpl); err != nil {
		t.Fatal(err)
	}
	if len(fpl.AllocatedList()) != 4 {
		t.Fatalf("FPL allocated %v, want 4 vertices", fpl.AllocatedList())
	}
	if spillCostOf(p, fpl) >= spillCostOf(p, nl) {
		t.Fatalf("fixed point did not improve: NL=%g FPL=%g",
			spillCostOf(p, nl), spillCostOf(p, fpl))
	}
	// f is blocked (clique {a,d,f} already holds a and d).
	if fpl.Allocated[5] {
		t.Fatal("FPL allocated f, violating clique adf")
	}
}

func TestLayeredRequiresChordal(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	w := graph.NewWeighted(g, []float64{1, 1, 1, 1})
	p := alloc.NewGraphProblem(w, 2, [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	defer func() {
		if recover() == nil {
			t.Fatal("layered on non-chordal problem did not panic")
		}
	}()
	NL().Allocate(p)
}

func TestLayeredRZero(t *testing.T) {
	p := alloc.NewGraphProblem(paperGraph(), 0, nil)
	res := NL().Allocate(p)
	if len(res.AllocatedList()) != 0 {
		t.Fatalf("R=0 allocated %v", res.AllocatedList())
	}
}

func TestLayeredHighRAllocatesEverything(t *testing.T) {
	p := alloc.NewGraphProblem(paperGraph(), 7, nil)
	for _, a := range []*Allocator{NL(), BL(), FPL(), BFPL()} {
		res := a.Allocate(p)
		if len(res.AllocatedList()) != 7 {
			t.Fatalf("%s with R=7 allocated %v", a.Name(), res.AllocatedList())
		}
	}
}

func TestAllocatorNames(t *testing.T) {
	if NL().Name() != "NL" || BL().Name() != "BL" ||
		FPL().Name() != "FPL" || BFPL().Name() != "BFPL" || NewLH().Name() != "LH" {
		t.Fatal("allocator names wrong")
	}
	c := Custom("X", Option{Bias: true})
	if c.Name() != "X" {
		t.Fatal("custom name wrong")
	}
}

func randomChordalProblem(r *rand.Rand, n, regs int) *alloc.Problem {
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, b := r.Intn(3*n), r.Intn(3*n)
		if a > b {
			a, b = b, a
		}
		ivs[i] = iv{a, b}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				g.AddEdge(i, j)
			}
		}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(1 + r.Intn(100))
	}
	return alloc.NewGraphProblem(graph.NewWeighted(g, w), regs, nil)
}

// TestPropertyLayeredValid: all four variants produce valid allocations on
// random chordal problems at every register count.
func TestPropertyLayeredValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(30), 1+r.Intn(6))
		for _, a := range []*Allocator{NL(), BL(), FPL(), BFPL()} {
			if err := p.Validate(a.Allocate(p)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFixedPointNoWorse: FPL never spills more than NL, BFPL never
// more than BL (the fixed point only ever adds allocations).
func TestPropertyFixedPointNoWorse(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(30), 1+r.Intn(6))
		if spillCostOf(p, FPL().Allocate(p)) > spillCostOf(p, NL().Allocate(p)) {
			return false
		}
		return spillCostOf(p, BFPL().Allocate(p)) <= spillCostOf(p, BL().Allocate(p))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFirstLayerIsMWSS: with R=1 and no bias, layered allocation is
// exactly the maximum weighted stable set (a single Frank layer).
func TestPropertyFirstLayerMaximal(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(25), 1)
		res := NL().Allocate(p)
		set := res.AllocatedList()
		if !p.Graph().IsStableSet(set) {
			return false
		}
		// Maximality: no vertex can be added.
		for v := 0; v < p.N(); v++ {
			if res.Allocated[v] {
				continue
			}
			ok := true
			for _, u := range set {
				if p.Graph().HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLHStructuralGuarantee: the LH allocation is the union of at most R
// greedy clusters, each a stable set — so it is assignable with R registers
// by construction (one register per cluster).
func TestLHStructuralGuarantee(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + r.Intn(100))
		}
		regs := 1 + r.Intn(5)
		p := alloc.BuildProblem(alloc.Spec{Graph: graph.NewWeighted(g, w), R: regs})
		res := NewLH().Allocate(p)
		// Recompute the clusters LH used; its allocation must be exactly
		// the union of the R heaviest (ties broken stably).
		clusters := stable.ClusterVertices(g, w)
		sort.SliceStable(clusters, func(i, j int) bool {
			return stable.SetWeight(clusters[i], w) > stable.SetWeight(clusters[j], w)
		})
		if len(clusters) > regs {
			clusters = clusters[:regs]
		}
		want := make([]bool, n)
		for _, c := range clusters {
			if !g.IsStableSet(c) {
				return false
			}
			for _, v := range c {
				want[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if res.Allocated[v] != want[v] {
				return false
			}
		}
		// And every clique constraint of the graph keeps ≤ regs allocated:
		// check all edges' endpoints cannot both be... (each cluster is
		// stable, so any clique meets each cluster at most once).
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLHDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := randomChordalProblem(r, 30, 3)
	first := NewLH().Allocate(p).AllocatedList()
	for i := 0; i < 5; i++ {
		if !equalInts(NewLH().Allocate(p).AllocatedList(), first) {
			t.Fatal("LH not deterministic")
		}
	}
}

func equalInts(a, b []int) bool {
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestZeroWeightValuesAllocatedWithSlack is the regression test for the
// zero-cost-value inconsistency: Frank's algorithm never selects zero-weight
// vertices, so NL/FPL used to spill every cost-0 value even with registers
// idle, while BL kept the ones whose bias (deg > 0) made the weight
// positive. All four variants must now keep a zero-weight vertex whenever a
// layer has room for it.
func TestZeroWeightValuesAllocatedWithSlack(t *testing.T) {
	// Path a — b — c, weights 5, 0, 5. With R=2, {a, c} is the first layer
	// and b (weight 0) fits in the second.
	build := func() *alloc.Problem {
		g := graph.New(3)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		return alloc.NewGraphProblem(graph.NewWeighted(g, []float64{5, 0, 5}), 2, nil)
	}
	for _, a := range []*Allocator{NL(), BL(), FPL(), BFPL()} {
		p := build()
		res := a.Allocate(p)
		if err := p.Validate(res); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for v := 0; v < 3; v++ {
			if !res.Allocated[v] {
				t.Errorf("%s: vertex %d spilled with registers idle (weight %g)",
					a.Name(), v, p.Weight[v])
			}
		}
	}
}

// TestZeroWeightParityNLvsBL: an *isolated* zero-weight vertex gets no help
// from the degree bias, so before the fix NL and BL disagreed even on it.
// Both must keep it, and a saturated neighbourhood must still force spills
// of zero-weight vertices that genuinely do not fit.
func TestZeroWeightParityNLvsBL(t *testing.T) {
	// Triangle x-y-z (weights 3,3,3) plus an isolated vertex d of weight 0.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	w := []float64{3, 3, 3, 0}
	for _, a := range []*Allocator{NL(), BL()} {
		p := alloc.NewGraphProblem(graph.NewWeighted(g.Clone(), append([]float64(nil), w...)), 2, nil)
		res := a.Allocate(p)
		if err := p.Validate(res); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !res.Allocated[3] {
			t.Errorf("%s: isolated zero-weight vertex spilled", a.Name())
		}
		// R=2 on a triangle: exactly one of x,y,z spills regardless.
		spilled := 0
		for v := 0; v < 3; v++ {
			if !res.Allocated[v] {
				spilled++
			}
		}
		if spilled != 1 {
			t.Errorf("%s: %d of the triangle spilled, want 1", a.Name(), spilled)
		}
	}
}

// TestAllZeroWeightGraph: when *every* candidate is zero-weight (Frank's
// algorithm returns an empty set), the extension alone must fill the
// layers.
func TestAllZeroWeightGraph(t *testing.T) {
	// Path 0-1-2-3 (chordal), all weights 0, R=2: 2-colourable — all fit.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	p := alloc.NewGraphProblem(graph.NewWeighted(g, []float64{0, 0, 0, 0}), 2, nil)
	for _, a := range []*Allocator{NL(), BFPL()} {
		res := a.Allocate(p)
		if err := p.Validate(res); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for v := 0; v < 4; v++ {
			if !res.Allocated[v] {
				t.Errorf("%s: zero-weight vertex %d spilled in a 2-colourable graph", a.Name(), v)
			}
		}
	}
}
