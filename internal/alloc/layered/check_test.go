package layered

import (
	"errors"
	"testing"

	"repro/internal/alloc"
	"repro/internal/raerr"
)

// TestCheckProblemNonChordal: the chordal-only layered allocators reject a
// non-chordal problem at the structural gate with a typed ErrNotSSA — the
// driver-visible contract that replaced the AllocateProblem panic for
// user-reachable paths.
func TestCheckProblemNonChordal(t *testing.T) {
	p := &Problem{R: 1, Weight: []float64{1, 1}, Chordal: false}
	for _, a := range []*Allocator{NL(), BL(), FPL(), BFPL()} {
		err := a.CheckProblem(p)
		if err == nil {
			t.Fatalf("%s: CheckProblem accepted a non-chordal problem", a.Name())
		}
		if !errors.Is(err, raerr.ErrNotSSA) {
			t.Fatalf("%s: error %v does not wrap raerr.ErrNotSSA", a.Name(), err)
		}
	}
}

// TestStepCheckProblem: the single-register step allocator's gate rejects
// both a non-chordal problem and a malformed step index with typed errors.
func TestStepCheckProblem(t *testing.T) {
	nonChordal := &alloc.Problem{R: 1, Weight: []float64{1, 1}, Chordal: false}
	s := &StepAllocator{Step: 1}
	if err := s.CheckProblem(nonChordal); !errors.Is(err, raerr.ErrNotSSA) {
		t.Fatalf("non-chordal: error %v does not wrap raerr.ErrNotSSA", err)
	}
	chordal := &alloc.Problem{R: 1, Weight: []float64{1, 1}, Chordal: true}
	bad := &StepAllocator{Step: 0}
	if err := bad.CheckProblem(chordal); !errors.Is(err, raerr.ErrInvalidConfig) {
		t.Fatalf("step 0: error %v does not wrap raerr.ErrInvalidConfig", err)
	}
}
