package layered

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/raerr"
)

// StepAllocator generalizes layered allocation to step ≥ 2 (paper §4: the
// layered-optimal heuristic "solves optimally roughly R over step allocation
// problems on step registers each"). Each layer is an *exact* step-register
// allocation over the remaining candidates, obtained from the pluggable
// exact solver; step = 1 degenerates to the Frank-layer allocator.
//
// The fixed-point improvement requires per-clique residual capacities, which
// the uniform-R exact solver does not model, so StepAllocator implements
// only the plain phase (Algorithm 2 with larger layers). It exists for the
// step-size ablation of DESIGN.md.
type StepAllocator struct {
	// Step is the register count of each exact layer (≥ 1).
	Step int
	// Solve computes an exact allocation for a sub-problem; wired to the
	// optimal package's branch and bound by the caller (kept as a function
	// value to avoid an import cycle in tests that stub it).
	Solve func(p *alloc.Problem) *alloc.Result
	// Label is the reported allocator name.
	Label string
}

// Name implements alloc.Allocator.
func (s *StepAllocator) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "StepLayered"
}

// CheckProblem implements alloc.ProblemChecker.
func (s *StepAllocator) CheckProblem(p *alloc.Problem) error {
	if !p.Chordal {
		return fmt.Errorf("%w: step allocator requires a chordal problem", raerr.ErrNotSSA)
	}
	if s.Step < 1 {
		return fmt.Errorf("%w: step allocator: step %d must be ≥ 1", raerr.ErrInvalidConfig, s.Step)
	}
	return nil
}

// Allocate implements alloc.Allocator on chordal problems.
func (s *StepAllocator) Allocate(p *alloc.Problem) *alloc.Result {
	if !p.Chordal {
		panic("layered: step allocator requires a chordal problem")
	}
	if s.Step < 1 {
		panic("layered: step must be ≥ 1")
	}
	n := p.N()
	candidate := make([]bool, n)
	for v := range candidate {
		candidate[v] = true
	}
	var allocated []int
	remainingRegs := p.R
	remaining := n
	for remainingRegs > 0 && remaining > 0 {
		step := s.Step
		if step > remainingRegs {
			step = remainingRegs
		}
		layer := s.solveLayer(p, candidate, step)
		if len(layer) == 0 {
			break
		}
		for _, v := range layer {
			if candidate[v] {
				candidate[v] = false
				remaining--
				allocated = append(allocated, v)
			}
		}
		remainingRegs -= step
	}
	return alloc.NewResult(n, allocated, s.Name())
}

// solveLayer builds the induced sub-problem over the candidates and solves
// it exactly with `step` registers.
func (s *StepAllocator) solveLayer(p *alloc.Problem, candidate []bool, step int) []int {
	var keep []int
	for v, c := range candidate {
		if c {
			keep = append(keep, v)
		}
	}
	sub, newToOld := p.Graph().InducedSubgraph(keep)
	oldToNew := make(map[int]int, len(newToOld))
	for i, v := range newToOld {
		oldToNew[v] = i
	}
	w := make([]float64, sub.N())
	for i, v := range newToOld {
		w[i] = p.Weight[v]
	}
	var liveSets [][]int
	for _, ls := range p.LiveSets {
		var restricted []int
		for _, v := range ls {
			if i, ok := oldToNew[v]; ok {
				restricted = append(restricted, i)
			}
		}
		if len(restricted) > step {
			liveSets = append(liveSets, restricted)
		}
	}
	subProblem := alloc.BuildProblem(alloc.Spec{
		Graph: graph.NewWeighted(sub, w), R: step, LiveSets: liveSets,
		Chordal: true, PEO: sub.PerfectEliminationOrder(),
	})
	res := s.Solve(subProblem)
	var out []int
	for i, al := range res.Allocated {
		if al {
			out = append(out, newToOld[i])
		}
	}
	return out
}
