// Package layered implements the paper's contribution: layered register
// allocation. Instead of incrementally spilling variables, it incrementally
// *allocates* them, one optimal single-register layer at a time. On a
// chordal (strict SSA) interference graph each layer is a maximum weighted
// stable set, computed exactly in O(V+E) by Frank's algorithm, so the whole
// allocator runs in O(R·(V+E)).
//
// Four variants are provided, matching the paper's §6 nomenclature:
//
//	NL    plain layered allocation (Algorithm 2)
//	BL    layered with biased weights (§4.1)
//	FPL   layered iterated to a fixed point with clique bookkeeping
//	      (Algorithms 3 and 4)
//	BFPL  both improvements
//
// For general (non-chordal) graphs, the LH allocator (Algorithms 5 and 6)
// replaces the exact stable sets with greedy weight-ordered clusters.
package layered

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/stable"
)

// Option configures a layered allocator.
type Option struct {
	// Bias replaces each weight w(v) by w(v)·|V| + deg(v), preferring —
	// among stable sets of (nearly) equal cost — the one that removes the
	// most interferences among the still-unallocated variables.
	Bias bool
	// DynamicBias recomputes deg(v) per layer over the remaining
	// candidates instead of using the static degree. The paper's formula
	// is static; the dynamic variant matches the stated motivation
	// ("interferences in the graph on non-allocated variables") and is
	// measured by the bias ablation bench.
	DynamicBias bool
	// FixedPoint continues allocating layers past the first R, with
	// per-clique occupancy bookkeeping (Algorithm 4) pruning the variables
	// that can no longer fit, until no variable can be added.
	FixedPoint bool
	// MaxFixpointRounds caps the number of extra layers after the first R
	// (0 = iterate to the fixed point). The fixpoint-depth ablation
	// compares a single extra pass against full iteration.
	MaxFixpointRounds int
	// NaiveUpdate recomputes the per-clique occupancy from scratch on
	// every Update call instead of maintaining incremental counters; the
	// result is identical, only slower. Used by the bookkeeping ablation.
	NaiveUpdate bool
}

// Allocator is a layered-optimal allocator for chordal problems.
type Allocator struct {
	opt  Option
	name string
}

// NL returns the plain layered-optimal allocator.
func NL() *Allocator { return &Allocator{name: "NL"} }

// BL returns the biased layered allocator.
func BL() *Allocator { return &Allocator{opt: Option{Bias: true}, name: "BL"} }

// FPL returns the fixed-point layered allocator.
func FPL() *Allocator { return &Allocator{opt: Option{FixedPoint: true}, name: "FPL"} }

// BFPL returns the biased fixed-point layered allocator.
func BFPL() *Allocator {
	return &Allocator{opt: Option{Bias: true, FixedPoint: true}, name: "BFPL"}
}

// Custom returns an allocator with explicit options, named name.
func Custom(name string, opt Option) *Allocator {
	return &Allocator{opt: opt, name: name}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return a.name }

// Allocate implements alloc.Allocator. The problem must be chordal (PEO
// valid); the harness only routes chordal instances here.
func (a *Allocator) Allocate(p *Problem) *alloc.Result {
	return a.AllocateProblem(p)
}

// Problem aliases alloc.Problem for readability of this package's API.
type Problem = alloc.Problem

// AllocateProblem runs the layered allocation.
func (a *Allocator) AllocateProblem(p *Problem) *alloc.Result {
	if !p.Chordal {
		panic("layered: " + a.name + " requires a chordal problem (use LH for general graphs)")
	}
	n := p.G.N()
	st := newState(p)

	// Phase 1 (Algorithm 2): at most R optimal single-register layers.
	for count := 0; count < p.R && st.remaining > 0; count++ {
		layer := st.layer(a.opt)
		if len(layer) == 0 {
			break
		}
		st.allocate(layer)
	}

	if a.opt.FixedPoint {
		// Phase 2 (Algorithm 3 lines 8–13): account for the R first layers,
		// prune saturated cliques, then keep allocating until fixpoint.
		st.update(st.allocatedList, a.opt)
		rounds := 0
		for st.remaining > 0 {
			if a.opt.MaxFixpointRounds > 0 && rounds >= a.opt.MaxFixpointRounds {
				break
			}
			layer := st.layer(a.opt)
			if len(layer) == 0 {
				break
			}
			st.allocate(layer)
			st.update(layer, a.opt)
			rounds++
		}
	}

	return alloc.NewResult(n, st.allocatedList, a.name)
}

// state carries the candidate set and clique occupancy across layers.
type state struct {
	p             *Problem
	candidate     []bool
	remaining     int
	allocated     []bool
	allocatedList []int
	// cliquesOf[v] lists indices into p.LiveSets containing v.
	cliquesOf [][]int
	// allocatedPerClique counts allocated members per live set; a set
	// reaching R is saturated and its members leave the candidate pool.
	allocatedPerClique []int
	saturated          []bool
	staticDeg          []int
}

func newState(p *Problem) *state {
	n := p.G.N()
	st := &state{
		p:                  p,
		candidate:          make([]bool, n),
		remaining:          n,
		allocated:          make([]bool, n),
		cliquesOf:          make([][]int, n),
		allocatedPerClique: make([]int, len(p.LiveSets)),
		saturated:          make([]bool, len(p.LiveSets)),
		staticDeg:          make([]int, n),
	}
	for v := 0; v < n; v++ {
		st.candidate[v] = true
		st.staticDeg[v] = p.G.Degree(v)
	}
	for ci, ls := range p.LiveSets {
		for _, v := range ls {
			st.cliquesOf[v] = append(st.cliquesOf[v], ci)
		}
	}
	return st
}

// layer computes one optimal single-register allocation over the current
// candidates: a maximum weighted stable set of the induced subgraph,
// obtained by zeroing non-candidate weights (zero-weight vertices are never
// selected by Frank's algorithm and charge nothing, so this equals running
// it on the induced subgraph).
//
// Frank's "w' > 0" test also skips *candidates* whose weight is zero (a
// dead-cheap value, or any cost-0 variable under a stores-are-free model),
// which would leave them spilled — and gaining pointless spill code in the
// rewrite — even with registers sitting idle. The layer is therefore
// extended with every zero-weight candidate that fits: the additions carry
// zero weight, so the set remains a maximum weighted stable set, uniformly
// across NL, BL, FPL and BFPL.
func (st *state) layer(opt Option) []int {
	p := st.p
	n := p.G.N()
	w := make([]float64, n)
	scale := float64(n)
	for v := 0; v < n; v++ {
		if !st.candidate[v] {
			continue
		}
		if opt.Bias {
			deg := st.staticDeg[v]
			if opt.DynamicBias {
				deg = 0
				p.G.VisitNeighbors(v, func(u int) {
					if st.candidate[u] {
						deg++
					}
				})
			}
			w[v] = p.G.Weight[v]*scale + float64(deg)
		} else {
			w[v] = p.G.Weight[v]
		}
	}
	layer := stable.MaxWeightChordal(p.G.Graph, p.PEO, w)
	return st.extendZeroWeight(layer, w)
}

// extendZeroWeight greedily adds zero-weight candidates (ascending vertex
// order, for determinism) that are not adjacent to the layer or to each
// other. With slack in the graph this allocates cost-0 values instead of
// spilling them; the layer's total weight — and hence its optimality — is
// unchanged.
func (st *state) extendZeroWeight(layer []int, w []float64) []int {
	p := st.p
	inLayer := make([]bool, p.G.N())
	for _, v := range layer {
		inLayer[v] = true
	}
	for v := 0; v < p.G.N(); v++ {
		if !st.candidate[v] || inLayer[v] || w[v] != 0 {
			continue
		}
		free := true
		p.G.VisitNeighbors(v, func(u int) {
			if inLayer[u] {
				free = false
			}
		})
		if free {
			layer = append(layer, v)
			inLayer[v] = true
		}
	}
	return layer
}

func (st *state) allocate(layer []int) {
	for _, v := range layer {
		if !st.candidate[v] {
			continue
		}
		st.candidate[v] = false
		st.remaining--
		st.allocated[v] = true
		st.allocatedList = append(st.allocatedList, v)
	}
}

// update is Algorithm 4: bump the occupancy of every clique containing a
// freshly allocated vertex; saturated cliques (occupancy ≥ R) remove all
// their vertices from the candidate pool.
func (st *state) update(fresh []int, opt Option) {
	if opt.NaiveUpdate {
		st.naiveUpdate()
		return
	}
	for _, v := range fresh {
		for _, ci := range st.cliquesOf[v] {
			if st.saturated[ci] {
				continue
			}
			st.allocatedPerClique[ci]++
			if st.allocatedPerClique[ci] >= st.p.R {
				st.saturated[ci] = true
				for _, u := range st.p.LiveSets[ci] {
					if st.candidate[u] {
						st.candidate[u] = false
						st.remaining--
					}
				}
			}
		}
	}
}

// naiveUpdate recomputes every clique's occupancy from the allocated flags
// (the ablation baseline for Algorithm 4's incremental counters).
func (st *state) naiveUpdate() {
	for ci, ls := range st.p.LiveSets {
		count := 0
		for _, v := range ls {
			if st.allocated[v] {
				count++
			}
		}
		st.allocatedPerClique[ci] = count
		if count >= st.p.R && !st.saturated[ci] {
			st.saturated[ci] = true
			for _, u := range ls {
				if st.candidate[u] {
					st.candidate[u] = false
					st.remaining--
				}
			}
		}
	}
}

// LH is the layered-heuristic allocator for general interference graphs
// (paper Algorithms 5 and 6): cluster the vertices into greedy stable sets
// by decreasing weight, then allocate the R heaviest clusters.
type LH struct{}

// NewLH returns the layered heuristic.
func NewLH() *LH { return &LH{} }

// Name implements alloc.Allocator.
func (*LH) Name() string { return "LH" }

// Allocate implements alloc.Allocator.
func (*LH) Allocate(p *Problem) *alloc.Result {
	clusters := stable.ClusterVertices(p.G.Graph, p.G.Weight)
	sort.SliceStable(clusters, func(i, j int) bool {
		return stable.SetWeight(clusters[i], p.G.Weight) >
			stable.SetWeight(clusters[j], p.G.Weight)
	})
	if len(clusters) > p.R {
		clusters = clusters[:p.R]
	}
	var allocated []int
	for _, c := range clusters {
		allocated = append(allocated, c...)
	}
	return alloc.NewResult(p.G.N(), allocated, "LH")
}
