// Package layered implements the paper's contribution: layered register
// allocation. Instead of incrementally spilling variables, it incrementally
// *allocates* them, one optimal single-register layer at a time. On a
// chordal (strict SSA) interference graph each layer is a maximum weighted
// stable set, computed exactly in O(V+E) by Frank's algorithm, so the whole
// allocator runs in O(R·(V+E)).
//
// Four variants are provided, matching the paper's §6 nomenclature:
//
//	NL    plain layered allocation (Algorithm 2)
//	BL    layered with biased weights (§4.1)
//	FPL   layered iterated to a fixed point with clique bookkeeping
//	      (Algorithms 3 and 4)
//	BFPL  both improvements
//
// For general (non-chordal) graphs, the LH allocator (Algorithms 5 and 6)
// replaces the exact stable sets with greedy weight-ordered clusters.
//
// The allocator is representation-polymorphic: on fast-path problems
// (Problem.Cliques set) every phase — Frank's stable sets, degree bias,
// zero-weight extension, clique bookkeeping — runs directly on the clique
// structure with no interference graph in sight; on graph problems the
// classical edge-based implementation is used. Both produce identical
// allocations for the same instance (pinned by the core fast-path
// differential test).
//
// An Allocator reuses its internal scratch across Allocate calls and is
// therefore not safe for concurrent use; give each worker its own instance.
package layered

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/cliques"
	"repro/internal/raerr"
	"repro/internal/stable"
)

// Option configures a layered allocator.
type Option struct {
	// Bias replaces each weight w(v) by w(v)·|V| + deg(v), preferring —
	// among stable sets of (nearly) equal cost — the one that removes the
	// most interferences among the still-unallocated variables.
	Bias bool
	// DynamicBias recomputes deg(v) per layer over the remaining
	// candidates instead of using the static degree. The paper's formula
	// is static; the dynamic variant matches the stated motivation
	// ("interferences in the graph on non-allocated variables") and is
	// measured by the bias ablation bench.
	DynamicBias bool
	// FixedPoint continues allocating layers past the first R, with
	// per-clique occupancy bookkeeping (Algorithm 4) pruning the variables
	// that can no longer fit, until no variable can be added.
	FixedPoint bool
	// MaxFixpointRounds caps the number of extra layers after the first R
	// (0 = iterate to the fixed point). The fixpoint-depth ablation
	// compares a single extra pass against full iteration.
	MaxFixpointRounds int
	// NaiveUpdate recomputes the per-clique occupancy from scratch on
	// every Update call instead of maintaining incremental counters; the
	// result is identical, only slower. Used by the bookkeeping ablation.
	NaiveUpdate bool
}

// Allocator is a layered-optimal allocator for chordal problems.
type Allocator struct {
	opt  Option
	name string
	scr  scratch
}

// NL returns the plain layered-optimal allocator.
func NL() *Allocator { return &Allocator{name: "NL"} }

// BL returns the biased layered allocator.
func BL() *Allocator { return &Allocator{opt: Option{Bias: true}, name: "BL"} }

// FPL returns the fixed-point layered allocator.
func FPL() *Allocator { return &Allocator{opt: Option{FixedPoint: true}, name: "FPL"} }

// BFPL returns the biased fixed-point layered allocator.
func BFPL() *Allocator {
	return &Allocator{opt: Option{Bias: true, FixedPoint: true}, name: "BFPL"}
}

// Custom returns an allocator with explicit options, named name.
func Custom(name string, opt Option) *Allocator {
	return &Allocator{opt: opt, name: name}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return a.name }

// Allocate implements alloc.Allocator. The problem must be chordal (PEO
// valid); the harness only routes chordal instances here.
func (a *Allocator) Allocate(p *Problem) *alloc.Result {
	return a.AllocateProblem(p)
}

// CheckProblem implements alloc.ProblemChecker: layered allocation is
// defined on chordal problems only. A non-chordal instance routed here is
// either a non-SSA function or a mis-wired custom pipeline.
func (a *Allocator) CheckProblem(p *Problem) error {
	if !p.Chordal {
		return fmt.Errorf("%w: layered allocator %s requires a chordal problem (use LH for general graphs)",
			raerr.ErrNotSSA, a.name)
	}
	return nil
}

// Problem aliases alloc.Problem for readability of this package's API.
type Problem = alloc.Problem

// AllocateProblem runs the layered allocation. When the problem carries a
// budget meter, each layer charges the vertex count (Frank's algorithm is
// O(V + Σ|live sets|) per layer) before it runs; on a trip the allocation
// stops at the layer boundary and the partial result is returned — every
// prefix of layers is a valid allocation (dropping layers only spills
// more), so degradation here costs quality, never correctness.
func (a *Allocator) AllocateProblem(p *Problem) *alloc.Result {
	if !p.Chordal {
		panic("layered: " + a.name + " requires a chordal problem (use LH for general graphs)")
	}
	n := p.N()
	st := a.newState(p)

	// Phase 1 (Algorithm 2): at most R optimal single-register layers.
	for count := 0; count < p.R && st.remaining > 0; count++ {
		if !p.Meter.Charge(n) {
			break // budget tripped: the layers so far stand
		}
		layer := st.layer(a.opt)
		if len(layer) == 0 {
			break
		}
		st.allocate(layer)
	}

	if a.opt.FixedPoint && !p.Meter.Exceeded() {
		// Phase 2 (Algorithm 3 lines 8–13): account for the R first layers,
		// prune saturated cliques, then keep allocating until fixpoint.
		st.update(st.scr.allocatedList, a.opt)
		rounds := 0
		for st.remaining > 0 {
			if a.opt.MaxFixpointRounds > 0 && rounds >= a.opt.MaxFixpointRounds {
				break
			}
			if !p.Meter.Charge(n) {
				break
			}
			layer := st.layer(a.opt)
			if len(layer) == 0 {
				break
			}
			st.allocate(layer)
			st.update(layer, a.opt)
			rounds++
		}
	}

	return alloc.NewResult(n, st.scr.allocatedList, a.name)
}

// scratch is the reusable backing memory of one Allocator.
type scratch struct {
	candidate          []bool
	allocated          []bool
	allocatedList      []int
	cliquesOf          [][]int // graph path only; clique path uses the CSR index
	allocatedPerClique []int
	saturated          []bool
	w                  []float64
	inLayer            []bool
	layerCnt           []int32 // clique path: per-clique in-layer counts
	stamp              []int32 // clique path: vertex stamps for dynamic bias
	stampGen           int32
	frank              cliques.FrankScratch
}

// state carries the candidate set and clique occupancy across layers.
type state struct {
	p         *Problem
	cs        *cliques.Structure // nil on the graph path
	scr       *scratch
	remaining int
	staticDeg []int
}

func (a *Allocator) newState(p *Problem) *state {
	n := p.N()
	scr := &a.scr
	scr.candidate = resizeBools(scr.candidate, n, true)
	scr.allocated = resizeBools(scr.allocated, n, false)
	scr.allocatedList = scr.allocatedList[:0]
	scr.allocatedPerClique = resizeInts(scr.allocatedPerClique, len(p.LiveSets), 0)
	scr.saturated = resizeBools(scr.saturated, len(p.LiveSets), false)
	st := &state{p: p, cs: p.Cliques, scr: scr, remaining: n}
	if st.cs != nil {
		st.staticDeg = st.cs.Degrees()
	} else {
		g := p.Graph()
		if cap(scr.cliquesOf) < n {
			scr.cliquesOf = make([][]int, n)
		}
		scr.cliquesOf = scr.cliquesOf[:n]
		for v := range scr.cliquesOf {
			scr.cliquesOf[v] = scr.cliquesOf[v][:0]
		}
		for ci, ls := range p.LiveSets {
			for _, v := range ls {
				scr.cliquesOf[v] = append(scr.cliquesOf[v], ci)
			}
		}
		deg := resizeInts(nil, n, 0)
		for v := 0; v < n; v++ {
			deg[v] = g.Degree(v)
		}
		st.staticDeg = deg
	}
	return st
}

// layer computes one optimal single-register allocation over the current
// candidates: a maximum weighted stable set of the induced subgraph,
// obtained by zeroing non-candidate weights (zero-weight vertices are never
// selected by Frank's algorithm and charge nothing, so this equals running
// it on the induced subgraph).
//
// Frank's "w' > 0" test also skips *candidates* whose weight is zero (a
// dead-cheap value, or any cost-0 variable under a stores-are-free model),
// which would leave them spilled — and gaining pointless spill code in the
// rewrite — even with registers sitting idle. The layer is therefore
// extended with every zero-weight candidate that fits: the additions carry
// zero weight, so the set remains a maximum weighted stable set, uniformly
// across NL, BL, FPL and BFPL.
func (st *state) layer(opt Option) []int {
	p := st.p
	n := p.N()
	scr := st.scr
	scr.w = resizeFloats(scr.w, n, 0)
	w := scr.w
	candidate := scr.candidate
	scale := float64(n)
	for v := 0; v < n; v++ {
		if !candidate[v] {
			continue
		}
		if opt.Bias {
			deg := st.staticDeg[v]
			if opt.DynamicBias {
				deg = st.dynamicDegree(v)
			}
			w[v] = p.Weight[v]*scale + float64(deg)
		} else {
			w[v] = p.Weight[v]
		}
	}
	var layer []int
	if st.cs != nil {
		layer = st.cs.MaxWeightStable(w, &scr.frank)
	} else {
		layer = stable.MaxWeightChordal(p.Graph().Graph, p.PEO, w)
	}
	return st.extendZeroWeight(layer, w)
}

// dynamicDegree counts v's still-candidate neighbours for the DynamicBias
// ablation.
func (st *state) dynamicDegree(v int) int {
	scr := st.scr
	if st.cs == nil {
		deg := 0
		st.p.Graph().VisitNeighbors(v, func(u int) {
			if scr.candidate[u] {
				deg++
			}
		})
		return deg
	}
	// Neighbours are the union of v's live sets; dedup with a stamp array.
	if cap(scr.stamp) < st.cs.N {
		scr.stamp = make([]int32, st.cs.N)
		scr.stampGen = 0
	}
	stamp := scr.stamp[:st.cs.N]
	scr.stampGen++
	gen := scr.stampGen
	deg := 0
	for _, ci := range st.cs.CliquesOf(v) {
		for _, u := range st.cs.Sets[ci] {
			if u == v || stamp[u] == gen {
				continue
			}
			stamp[u] = gen
			if scr.candidate[u] {
				deg++
			}
		}
	}
	return deg
}

// extendZeroWeight greedily adds zero-weight candidates (ascending vertex
// order, for determinism) that are not adjacent to the layer or to each
// other. With slack in the graph this allocates cost-0 values instead of
// spilling them; the layer's total weight — and hence its optimality — is
// unchanged.
func (st *state) extendZeroWeight(layer []int, w []float64) []int {
	p := st.p
	n := p.N()
	scr := st.scr
	scr.inLayer = resizeBools(scr.inLayer, n, false)
	inLayer := scr.inLayer
	for _, v := range layer {
		inLayer[v] = true
	}
	if st.cs != nil {
		// Adjacency to the layer ⇔ sharing a live set with a layer member:
		// track per-clique in-layer counts instead of scanning edges.
		scr.layerCnt = resizeInt32s(scr.layerCnt, len(st.cs.Sets), 0)
		cnt := scr.layerCnt
		for _, v := range layer {
			for _, ci := range st.cs.CliquesOf(v) {
				cnt[ci]++
			}
		}
		for v := 0; v < n; v++ {
			if !scr.candidate[v] || inLayer[v] || w[v] != 0 {
				continue
			}
			free := true
			for _, ci := range st.cs.CliquesOf(v) {
				if cnt[ci] > 0 {
					free = false
					break
				}
			}
			if free {
				layer = append(layer, v)
				inLayer[v] = true
				for _, ci := range st.cs.CliquesOf(v) {
					cnt[ci]++
				}
			}
		}
		for _, v := range layer {
			for _, ci := range st.cs.CliquesOf(v) {
				cnt[ci] = 0
			}
		}
	} else {
		g := p.Graph()
		for v := 0; v < n; v++ {
			if !scr.candidate[v] || inLayer[v] || w[v] != 0 {
				continue
			}
			free := true
			g.VisitNeighbors(v, func(u int) {
				if inLayer[u] {
					free = false
				}
			})
			if free {
				layer = append(layer, v)
				inLayer[v] = true
			}
		}
	}
	for _, v := range layer {
		inLayer[v] = false
	}
	return layer
}

func (st *state) allocate(layer []int) {
	scr := st.scr
	for _, v := range layer {
		if !scr.candidate[v] {
			continue
		}
		scr.candidate[v] = false
		st.remaining--
		scr.allocated[v] = true
		scr.allocatedList = append(scr.allocatedList, v)
	}
}

// update is Algorithm 4: bump the occupancy of every clique containing a
// freshly allocated vertex; saturated cliques (occupancy ≥ R) remove all
// their vertices from the candidate pool.
func (st *state) update(fresh []int, opt Option) {
	if opt.NaiveUpdate {
		st.naiveUpdate()
		return
	}
	scr := st.scr
	bump := func(ci int) {
		if scr.saturated[ci] {
			return
		}
		scr.allocatedPerClique[ci]++
		if scr.allocatedPerClique[ci] >= st.p.R {
			scr.saturated[ci] = true
			for _, u := range st.p.LiveSets[ci] {
				if scr.candidate[u] {
					scr.candidate[u] = false
					st.remaining--
				}
			}
		}
	}
	if st.cs != nil {
		for _, v := range fresh {
			for _, ci := range st.cs.CliquesOf(v) {
				bump(int(ci))
			}
		}
	} else {
		for _, v := range fresh {
			for _, ci := range scr.cliquesOf[v] {
				bump(ci)
			}
		}
	}
}

// naiveUpdate recomputes every clique's occupancy from the allocated flags
// (the ablation baseline for Algorithm 4's incremental counters).
func (st *state) naiveUpdate() {
	scr := st.scr
	for ci, ls := range st.p.LiveSets {
		count := 0
		for _, v := range ls {
			if scr.allocated[v] {
				count++
			}
		}
		scr.allocatedPerClique[ci] = count
		if count >= st.p.R && !scr.saturated[ci] {
			scr.saturated[ci] = true
			for _, u := range ls {
				if scr.candidate[u] {
					scr.candidate[u] = false
					st.remaining--
				}
			}
		}
	}
}

func resizeBools(s []bool, n int, fill bool) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

func resizeInts(s []int, n, fill int) []int {
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

func resizeInt32s(s []int32, n int, fill int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

func resizeFloats(s []float64, n int, fill float64) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

// LH is the layered-heuristic allocator for general interference graphs
// (paper Algorithms 5 and 6): cluster the vertices into greedy stable sets
// by decreasing weight, then allocate the R heaviest clusters.
type LH struct{}

// NewLH returns the layered heuristic.
func NewLH() *LH { return &LH{} }

// Name implements alloc.Allocator.
func (*LH) Name() string { return "LH" }

// Allocate implements alloc.Allocator.
func (*LH) Allocate(p *Problem) *alloc.Result {
	g := p.Graph()
	clusters := stable.ClusterVertices(g.Graph, g.Weight)
	sort.SliceStable(clusters, func(i, j int) bool {
		return stable.SetWeight(clusters[i], g.Weight) >
			stable.SetWeight(clusters[j], g.Weight)
	})
	if len(clusters) > p.R {
		clusters = clusters[:p.R]
	}
	var allocated []int
	for _, c := range clusters {
		allocated = append(allocated, c...)
	}
	return alloc.NewResult(p.N(), allocated, "LH")
}
