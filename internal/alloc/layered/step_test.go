package layered

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/alloc/optimal"
)

func stepAllocator(step int) *StepAllocator {
	return &StepAllocator{
		Step:  step,
		Solve: func(p *alloc.Problem) *alloc.Result { return optimal.New().Allocate(p) },
		Label: "Step",
	}
}

func TestStepOneMatchesExactSingleLayers(t *testing.T) {
	// With step 1 and exact layers, the result is a valid allocation at
	// least as good as the greedy Frank layers on this fixture.
	p := alloc.NewGraphProblem(paperGraph(), 2, nil)
	res := stepAllocator(1).Allocate(p)
	if err := p.Validate(res); err != nil {
		t.Fatal(err)
	}
	if res.SpillCost(p) > NL().Allocate(p).SpillCost(p) {
		t.Fatal("exact step-1 layers worse than Frank layers")
	}
}

func TestStepTwoAtLeastAsGoodOnFixture(t *testing.T) {
	p := alloc.NewGraphProblem(fig7Graph(), 2, nil)
	res := stepAllocator(2).Allocate(p)
	if err := p.Validate(res); err != nil {
		t.Fatal(err)
	}
	// One exact 2-register layer *is* the optimum here.
	opt := optimal.New().Allocate(p)
	if res.SpillCost(p) != opt.SpillCost(p) {
		t.Fatalf("step-2 cost %g, optimal %g", res.SpillCost(p), opt.SpillCost(p))
	}
}

func TestPropertyStepLayersValidAndMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(18), 2+r.Intn(4))
		s1 := stepAllocator(1).Allocate(p)
		s2 := stepAllocator(2).Allocate(p)
		if p.Validate(s1) != nil || p.Validate(s2) != nil {
			return false
		}
		opt := optimal.New().Allocate(p).SpillCost(p)
		// Both stepwise results are bounded below by the optimum.
		return s1.SpillCost(p) >= opt-1e-9 && s2.SpillCost(p) >= opt-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStepRejectsBadConfig(t *testing.T) {
	p := alloc.NewGraphProblem(paperGraph(), 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("step 0 did not panic")
		}
	}()
	stepAllocator(0).Allocate(p)
}

func TestNaiveUpdateMatchesIncremental(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomChordalProblem(r, 2+r.Intn(25), 1+r.Intn(5))
		fast := Custom("FPL", Option{FixedPoint: true}).Allocate(p)
		slow := Custom("FPLnaive", Option{FixedPoint: true, NaiveUpdate: true}).Allocate(p)
		if len(fast.Allocated) != len(slow.Allocated) {
			return false
		}
		for v := range fast.Allocated {
			if fast.Allocated[v] != slow.Allocated[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFixpointRounds(t *testing.T) {
	p := alloc.NewGraphProblem(fig7Graph(), 2, nil)
	one := Custom("FPL1", Option{FixedPoint: true, MaxFixpointRounds: 1}).Allocate(p)
	full := FPL().Allocate(p)
	if err := p.Validate(one); err != nil {
		t.Fatal(err)
	}
	// A single extra round suffices on the small fixture; in general the
	// capped variant allocates no more than the full fixpoint.
	if one.SpillCost(p) < full.SpillCost(p) {
		t.Fatal("capped fixpoint beat the full fixpoint")
	}
}
