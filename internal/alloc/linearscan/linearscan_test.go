package linearscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// intervalsProblem builds a problem directly from intervals: the graph is
// the interval-overlap graph, live sets are the point pressure sets.
func intervalsProblem(ivs [][2]int, weights []float64, r int) *alloc.Problem {
	n := len(ivs)
	g := graph.New(n)
	maxPt := 0
	for _, iv := range ivs {
		if iv[1] > maxPt {
			maxPt = iv[1]
		}
	}
	var liveSets [][]int
	for pt := 0; pt <= maxPt; pt++ {
		var live []int
		for v, iv := range ivs {
			if iv[0] <= pt && pt <= iv[1] {
				live = append(live, v)
			}
		}
		if len(live) > 0 {
			liveSets = append(liveSets, live)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i][0] <= ivs[j][1] && ivs[j][0] <= ivs[i][1] {
				g.AddEdge(i, j)
			}
		}
	}
	p := alloc.BuildProblem(alloc.Spec{Graph: graph.NewWeighted(g, weights), R: r, LiveSets: liveSets})
	p.Intervals = ivs
	return p
}

func TestDLSSpillsFurthest(t *testing.T) {
	// Three overlapping intervals, one register: at the second start the
	// furthest-ending interval is spilled regardless of cost.
	ivs := [][2]int{{0, 10}, {1, 3}, {4, 6}}
	w := []float64{100, 1, 1}
	p := intervalsProblem(ivs, w, 1)
	res := DLS().Allocate(p)
	if err := p.Validate(res); err != nil {
		t.Fatal(err)
	}
	if res.Allocated[0] {
		t.Fatal("DLS kept the furthest-ending interval")
	}
	if !res.Allocated[1] || !res.Allocated[2] {
		t.Fatal("DLS spilled the short intervals")
	}
}

func TestBLSRespectsCost(t *testing.T) {
	// Same shape, but BLS sees the long interval is 100× costlier and
	// spills the cheap short ones instead.
	ivs := [][2]int{{0, 10}, {1, 3}, {4, 6}}
	w := []float64{100, 1, 1}
	p := intervalsProblem(ivs, w, 1)
	res := BLS().Allocate(p)
	if err := p.Validate(res); err != nil {
		t.Fatal(err)
	}
	if !res.Allocated[0] {
		t.Fatal("BLS spilled the expensive interval")
	}
	if res.Allocated[1] || res.Allocated[2] {
		t.Fatal("BLS kept the cheap overlapping intervals")
	}
}

func TestBLSFurthestFirstAmongCloseCosts(t *testing.T) {
	// Costs within the threshold window: Belady's rule picks the
	// furthest-ending one.
	ivs := [][2]int{{0, 20}, {0, 5}}
	w := []float64{10, 9.5}
	p := intervalsProblem(ivs, w, 1)
	res := BLS().Allocate(p)
	if res.Allocated[0] || !res.Allocated[1] {
		t.Fatalf("BLS should spill the furthest of near-equal costs; got %v",
			res.AllocatedList())
	}
}

func TestNamesAndMissingIntervalsPanic(t *testing.T) {
	if DLS().Name() != "DLS" || BLS().Name() != "BLS" {
		t.Fatal("names wrong")
	}
	p := alloc.BuildProblem(alloc.Spec{Graph: graph.NewWeighted(graph.New(1), []float64{1})})
	defer func() {
		if recover() == nil {
			t.Fatal("missing intervals did not panic")
		}
	}()
	DLS().Allocate(p)
}

// TestPropertyScanKeepsPressureBounded: for random interval sets, both
// variants produce allocations with at most R allocated intervals alive at
// any point.
func TestPropertyScanKeepsPressureBounded(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		ivs := make([][2]int, n)
		w := make([]float64, n)
		for i := range ivs {
			a, b := r.Intn(40), r.Intn(40)
			if a > b {
				a, b = b, a
			}
			ivs[i] = [2]int{a, b}
			w[i] = float64(1 + r.Intn(100))
		}
		regs := 1 + r.Intn(5)
		p := intervalsProblem(ivs, w, regs)
		for _, a := range []*Allocator{DLS(), BLS()} {
			if err := p.Validate(a.Allocate(p)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIntervalsFromFunction(t *testing.T) {
	f := ir.MustParse(`
func f ssa {
b0:
  a = param 0
  b = arith a, a
  c = arith b, a
  ret c
}`)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	ivs := BuildIntervals(info, b)
	if len(ivs) != b.Graph.N() {
		t.Fatalf("%d intervals for %d vertices", len(ivs), b.Graph.N())
	}
	// Interference implies interval overlap (intervals over-approximate).
	for v := 0; v < b.Graph.N(); v++ {
		for _, u := range b.Graph.Neighbors(v) {
			if u < v {
				continue
			}
			if ivs[v][0] > ivs[u][1] || ivs[u][0] > ivs[v][1] {
				t.Fatalf("interfering %d and %d have disjoint intervals %v %v",
					v, u, ivs[v], ivs[u])
			}
		}
	}
}

func TestBuildIntervalsDeadDef(t *testing.T) {
	f := ir.MustParse(`
func dead ssa {
b0:
  a = param 0
  b = arith a, a
  ret a
}`)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	ivs := BuildIntervals(info, b)
	for v := 0; v < b.Graph.N(); v++ {
		if ivs[v][1] < ivs[v][0] {
			t.Fatalf("vertex %d (%s) has empty interval", v, f.NameOf(b.ValueOf[v]))
		}
	}
}

func TestScanOnGeneratedProgramIsValid(t *testing.T) {
	// End-to-end: a real function through liveness/ifg/intervals.
	f := ir.MustParse(`
func loop ssa {
b0:
  n = param 0
  k = param 1
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, k
  br b1
b3:
  r = arith i, k
  ret r
}`)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	costs := make([]float64, f.NumValues)
	for i := range costs {
		costs[i] = 1
	}
	for r := 1; r <= 4; r++ {
		p := alloc.BuildProblem(alloc.Spec{Build: b, Costs: costs, R: r})
		p.Intervals = BuildIntervals(info, b)
		for _, a := range []*Allocator{DLS(), BLS()} {
			if err := p.Validate(a.Allocate(p)); err != nil {
				t.Fatalf("R=%d %s: %v", r, a.Name(), err)
			}
		}
	}
}

// TestEmptyIntervalAllocatedAsDead pins the empty-interval decision: a
// value with Intervals[v][1] < Intervals[v][0] is live at no point, never
// enters the scan, never occupies a register slot — and is reported
// *allocated* (as-dead), so it contributes no spill cost and gains no
// spill code. Before this was made explicit the value fell through the
// scan-order filter by accident; the behaviour is now contractual.
func TestEmptyIntervalAllocatedAsDead(t *testing.T) {
	// Two real intervals saturating R=1, plus an empty-interval vertex.
	ivs := [][2]int{{0, 5}, {2, 8}, {0, -1}}
	w := []float64{1, 2, 99}
	for _, a := range []*Allocator{DLS(), BLS()} {
		p := intervalsProblem(ivs, w, 1)
		res := a.Allocate(p)
		if err := p.Validate(res); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !res.Allocated[2] {
			t.Errorf("%s: empty-interval value spilled", a.Name())
		}
		// The dead value must not have shielded the live conflict: exactly
		// one of the two real intervals spills.
		if res.Allocated[0] == res.Allocated[1] {
			t.Errorf("%s: overlap at R=1 not resolved: %v", a.Name(), res.Allocated)
		}
		if res.SpillCost(p) >= 99 {
			t.Errorf("%s: dead value charged spill cost", a.Name())
		}
	}
}

// TestExpiryBoundaryTouching audits the ExpireOldIntervals boundary against
// the Poletto–Sarkar definition on inclusive intervals: u ending exactly at
// v's start still holds its register at that shared point, so with R=1 the
// pair must conflict (one spills).
func TestExpiryBoundaryTouching(t *testing.T) {
	ivs := [][2]int{{0, 4}, {4, 8}}
	p := intervalsProblem(ivs, []float64{1, 1}, 1)
	for _, a := range []*Allocator{DLS(), BLS()} {
		res := a.Allocate(p)
		if err := p.Validate(res); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.Allocated[0] && res.Allocated[1] {
			t.Fatalf("%s: touching intervals [0,4] and [4,8] both kept one register", a.Name())
		}
	}
}

// TestExpiryBoundaryAdjacent: u ending at start-1 is expired and its
// register reused — adjacent-but-disjoint intervals share one register.
func TestExpiryBoundaryAdjacent(t *testing.T) {
	ivs := [][2]int{{0, 3}, {4, 8}}
	p := intervalsProblem(ivs, []float64{1, 1}, 1)
	for _, a := range []*Allocator{DLS(), BLS()} {
		res := a.Allocate(p)
		if err := p.Validate(res); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !res.Allocated[0] || !res.Allocated[1] {
			t.Fatalf("%s: disjoint intervals did not share the register: %v", a.Name(), res.Allocated)
		}
	}
}

// TestBuildIntervalsNeverEmptyForDefs: on real functions every defined
// value gets a non-empty interval (dead defs occupy their definition
// point), so allocated-as-dead only triggers for hand-built problems.
func TestBuildIntervalsNeverEmptyForDefs(t *testing.T) {
	f := ir.MustParse(`
func d ssa {
b0:
  a = param 0
  dead = unary a
  b = arith a, a
  ret b
}`)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	ivs := BuildIntervals(info, b)
	for _, name := range []string{"a", "dead", "b"} {
		var val int = -1
		for id, n := range f.ValueName {
			if n == name {
				val = id
			}
		}
		vx := b.VertexOf[val]
		if vx < 0 {
			t.Fatalf("%s has no vertex", name)
		}
		if ivs[vx][1] < ivs[vx][0] {
			t.Errorf("%s got an empty interval %v", name, ivs[vx])
		}
	}
}
