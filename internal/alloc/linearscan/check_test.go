package linearscan

import (
	"errors"
	"testing"

	"repro/internal/alloc"
	"repro/internal/raerr"
)

// TestCheckProblemNoIntervals: a problem built without live intervals is
// rejected by the structural gate with a typed error — the driver-visible
// contract that replaced the Allocate panic for user-reachable paths.
func TestCheckProblemNoIntervals(t *testing.T) {
	p := &alloc.Problem{R: 1, Weight: []float64{1, 1}, Chordal: true}
	for _, a := range []*Allocator{DLS(), BLS()} {
		err := a.CheckProblem(p)
		if err == nil {
			t.Fatalf("%s: CheckProblem accepted a problem without intervals", a.Name())
		}
		if !errors.Is(err, raerr.ErrInvalidConfig) {
			t.Fatalf("%s: error %v does not wrap raerr.ErrInvalidConfig", a.Name(), err)
		}
	}
}
