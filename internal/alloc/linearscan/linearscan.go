// Package linearscan implements the linear-scan register allocators used as
// baselines for the non-chordal (JIT) evaluation: the original
// Poletto–Sarkar algorithm (DLS, "default linear scan", which spills the
// interval extending furthest when pressure exceeds R) and the BLS variant,
// which spills by cost but falls back to Belady's furthest-first rule among
// candidates whose costs are within a threshold of each other.
//
// Both run over live intervals on a linearized program layout; holes in
// live ranges are ignored, as in the original algorithm, which makes the
// allocators conservative (an interval over-approximates its live range) but
// linear-time.
package linearscan

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/raerr"
)

// Allocator is a linear-scan allocator.
type Allocator struct {
	// Belady switches on the BLS cost-with-threshold strategy.
	Belady bool
	// Threshold is the relative cost window within which BLS considers
	// spill candidates interchangeable and picks the furthest-ending one.
	// Zero means DefaultThreshold.
	Threshold float64
	name      string
}

// DefaultThreshold is the BLS cost window used in the experiments.
const DefaultThreshold = 0.25

// DLS returns the original linear scan (spill the furthest-ending interval).
func DLS() *Allocator { return &Allocator{name: "DLS"} }

// BLS returns the Belady/cost-threshold variant.
func BLS() *Allocator { return &Allocator{Belady: true, name: "BLS"} }

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return a.name }

// CheckProblem implements alloc.ProblemChecker: linear scan runs over live
// intervals, so a problem built without them (a bare graph instance) is
// rejected with a typed error instead of a panic from inside Allocate.
func (a *Allocator) CheckProblem(p *alloc.Problem) error {
	if p.Intervals == nil {
		return fmt.Errorf("%w: linear scan %s: problem has no live intervals", raerr.ErrInvalidConfig, a.name)
	}
	return nil
}

// Allocate implements alloc.Allocator. The problem must carry Intervals.
//
// Empty intervals (Intervals[v] = [s, e] with e < s, the BuildIntervals
// encoding for values live at no program point) are *allocated-as-dead*:
// the value is reported kept (Allocated[v] = true, it contributes no spill
// cost and gains no spill code) but never enters the scan, so it occupies
// no register slot at any point. This is deliberate, not fall-through:
// such a value is in no live set, so keeping it cannot violate a pressure
// constraint, and spilling it would only manufacture spill code for a
// value that is never live. Pinned by TestEmptyIntervalAllocatedAsDead.
func (a *Allocator) Allocate(p *alloc.Problem) *alloc.Result {
	if p.Intervals == nil {
		panic("linearscan: problem has no live intervals")
	}
	n := p.N()
	threshold := a.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if p.Intervals[v][1] >= p.Intervals[v][0] {
			order = append(order, v)
		}
		// else: empty interval — allocated-as-dead, see above.
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := p.Intervals[order[i]][0], p.Intervals[order[j]][0]
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})

	spilled := make([]bool, n)
	// active: currently allocated intervals, kept sorted by increasing end.
	var active []int
	endOf := func(v int) int { return p.Intervals[v][1] }
	for i, v := range order {
		// One budget step per interval. On a trip the unprocessed intervals
		// are all spilled: the decisions already made keep at most R live
		// intervals overlapping at any point, and spilling the rest cannot
		// raise pressure, so the truncated scan is still a valid allocation.
		if !p.Meter.Charge(1) {
			for _, u := range order[i:] {
				spilled[u] = true
			}
			break
		}
		start := p.Intervals[v][0]
		// Expire intervals that ended strictly before start. This is the
		// Poletto–Sarkar ExpireOldIntervals boundary ("if endpoint[j] ≥
		// startpoint[i] then return") on our *inclusive* [start, end]
		// intervals: a value ending exactly where another starts is still
		// live at that shared point — both are in its live set — so it must
		// keep holding its register (endOf(u) == start does not expire),
		// while endOf(u) == start-1 frees the slot. Pinned by
		// TestExpiryBoundary{Touching,Adjacent}.
		keep := active[:0]
		for _, u := range active {
			if endOf(u) >= start {
				keep = append(keep, u)
			}
		}
		active = keep
		if len(active) < p.R {
			active = insertByEnd(active, v, endOf)
			continue
		}
		// Pressure exceeded: pick a victim among active + v.
		victim := a.pickVictim(p, active, v, threshold)
		spilled[victim] = true
		if victim != v {
			// Remove victim from active, add v.
			out := active[:0]
			for _, u := range active {
				if u != victim {
					out = append(out, u)
				}
			}
			active = insertByEnd(out, v, endOf)
		}
	}
	var allocated []int
	for v := 0; v < n; v++ {
		if !spilled[v] {
			allocated = append(allocated, v)
		}
	}
	return alloc.NewResult(n, allocated, a.name)
}

func (a *Allocator) pickVictim(p *alloc.Problem, active []int, cur int, threshold float64) int {
	candidates := append(append([]int(nil), active...), cur)
	if !a.Belady {
		// Original linear scan: spill the interval that ends furthest.
		victim := candidates[0]
		for _, u := range candidates[1:] {
			if p.Intervals[u][1] > p.Intervals[victim][1] {
				victim = u
			}
		}
		return victim
	}
	// BLS: find the cheapest candidates (within the threshold window) and
	// among them spill the furthest-ending one.
	minCost := p.Weight[candidates[0]]
	for _, u := range candidates[1:] {
		if p.Weight[u] < minCost {
			minCost = p.Weight[u]
		}
	}
	limit := minCost * (1 + threshold)
	victim := -1
	for _, u := range candidates {
		if p.Weight[u] > limit {
			continue
		}
		if victim < 0 || p.Intervals[u][1] > p.Intervals[victim][1] {
			victim = u
		}
	}
	return victim
}

func insertByEnd(active []int, v int, endOf func(int) int) []int {
	i := sort.Search(len(active), func(i int) bool { return endOf(active[i]) >= endOf(v) })
	active = append(active, 0)
	copy(active[i+1:], active[i:])
	active[i] = v
	return active
}

// BuildIntervals linearizes the function's program points in block layout
// order and returns, per interference-graph vertex, the inclusive
// [start, end] point range over which the value is live (def points
// included). Vertices that never appear get the empty interval [0, -1].
func BuildIntervals(info *liveness.Info, b *ifg.Build) [][2]int {
	return IntervalsFromLiveness(info, b.VertexOf, b.Graph.N())
}

// IntervalsFromLiveness is BuildIntervals decoupled from the interference
// graph build: it needs only the liveness points and a value→vertex map of
// size n, so the IFG-free fast path can construct linear-scan intervals
// without ever materializing a graph.
func IntervalsFromLiveness(info *liveness.Info, vertexOf []int, n int) [][2]int {
	intervals := make([][2]int, n)
	for i := range intervals {
		intervals[i] = [2]int{0, -1}
	}
	touch := func(vertex, point int) {
		iv := &intervals[vertex]
		if iv[1] < iv[0] {
			*iv = [2]int{point, point}
			return
		}
		if point < iv[0] {
			iv[0] = point
		}
		if point > iv[1] {
			iv[1] = point
		}
	}
	for pt, p := range info.Points {
		for _, val := range p.Live {
			if vx := vertexOf[val]; vx >= 0 {
				touch(vx, pt)
			}
		}
	}
	// Defs that are never live (dead defs) still occupy their def point:
	// give them a one-point interval at their block's first point. The
	// point indices above are positions in info.Points, which is laid out
	// block by block; find each block's first point index.
	firstPoint := make([]int, len(info.F.Blocks))
	for i := range firstPoint {
		firstPoint[i] = -1
	}
	for pt, p := range info.Points {
		if firstPoint[p.Block] < 0 {
			firstPoint[p.Block] = pt
		}
	}
	for _, blk := range info.F.Blocks {
		for _, ins := range blk.Instrs {
			if !ins.Op.HasDef() || ins.Def == ir.NoValue {
				continue
			}
			vx := vertexOf[ins.Def]
			if vx >= 0 && intervals[vx][1] < intervals[vx][0] {
				touch(vx, firstPoint[blk.ID])
			}
		}
	}
	return intervals
}
