package quality

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
)

// tinySuite is a fast, deterministic stand-in for the paper suites.
func tinySuite() bench.Suite {
	return bench.Suite{
		Name:      "tiny",
		Chordal:   true,
		Registers: []int{2, 4},
		Load: func() []bench.Program {
			shape := bench.Shape{
				Params: 3, Segments: 4, MaxDepth: 2, StraightLen: 5,
				LoopProb: 0.5, BranchProb: 0.3, Carried: 3, LongLived: 8,
			}
			var out []bench.Program
			for i, seed := range []int64{101, 202, 303} {
				name := []string{"a", "b", "c"}[i]
				out = append(out, bench.Program{Name: name, F: bench.GenSSA(name, seed, shape)})
			}
			return out
		},
	}
}

func generateTiny(t *testing.T) *Report {
	t.Helper()
	rep, err := Generate(Options{Suites: []bench.Suite{tinySuite()}})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGenerateTinySuite(t *testing.T) {
	rep := generateTiny(t)
	if rep.SchemaVersion != Schema {
		t.Fatalf("schema = %d", rep.SchemaVersion)
	}
	if len(rep.Figures) != 1 {
		t.Fatalf("figures = %d, want 1", len(rep.Figures))
	}
	fig := rep.Figures[0]
	if fig.Suite != "tiny" || fig.Figure != 0 {
		t.Fatalf("figure header = %+v", fig)
	}
	if want := 2 * len(fig.Allocators); len(fig.Rows) != want {
		t.Fatalf("rows = %d, want %d (2 register counts × lineup)", len(fig.Rows), want)
	}
	if fig.Instances != 6 {
		t.Fatalf("instances = %d, want 3 programs × 2 Rs", fig.Instances)
	}
	for _, row := range fig.Rows {
		if row.Normalized < 1-1e-9 {
			t.Errorf("R=%d %s: normalized %g below 1 (better than optimal?)", row.R, row.Allocator, row.Normalized)
		}
		if row.Allocator == "Optimal" && (row.Normalized != 1 || row.Degraded != 0) {
			t.Errorf("optimal row not at exactly 1: %+v", row)
		}
	}

	if len(rep.Coalescing) != len(CoalescePolicies) {
		t.Fatalf("coalescing rows = %d, want %d", len(rep.Coalescing), len(CoalescePolicies))
	}
	for _, c := range rep.Coalescing {
		if !c.SpillEqual {
			t.Errorf("%s/%s: equal-spill invariant broken", c.Suite, c.Policy)
		}
		if c.Moves == 0 || c.MoveCost <= 0 {
			t.Errorf("%s/%s: no moves measured: %+v", c.Suite, c.Policy, c)
		}
		if d := c.MoveCost - (c.EliminatedCost + c.BiasedResidual); d > 1e-5 || d < -1e-5 {
			t.Errorf("%s/%s: eliminated + residual ≠ total: %+v", c.Suite, c.Policy, c)
		}
		if c.BiasedResidual > c.UnbiasedResidual+1e-9 {
			t.Errorf("%s/%s: bias left more move cost than the unbiased run: %+v", c.Suite, c.Policy, c)
		}
		if c.EliminatedFrac+1e-9 < c.UnbiasedFrac {
			t.Errorf("%s/%s: eliminated fraction below the unbiased baseline: %+v", c.Suite, c.Policy, c)
		}
	}
}

// clone deep-copies a report through its own JSON encoding.
func clone(t *testing.T, r *Report) *Report {
	t.Helper()
	buf, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestCompareGate is the CI quality gate demonstrated end to end: a clean
// rerun passes, and each class of injected regression fails with a
// violation naming the cell.
func TestCompareGate(t *testing.T) {
	rep := generateTiny(t)
	if err := Compare(rep, rep, Tolerances{}); err != nil {
		t.Fatalf("self-compare must pass: %v", err)
	}

	t.Run("normalized regression", func(t *testing.T) {
		bad := clone(t, rep)
		bad.Figures[0].Rows[0].Normalized += 0.05
		err := Compare(rep, bad, Tolerances{})
		if err == nil || !strings.Contains(err.Error(), "QUALITY REGRESSION") {
			t.Fatalf("injected normalized regression not caught: %v", err)
		}
	})
	t.Run("degraded-count regression", func(t *testing.T) {
		bad := clone(t, rep)
		bad.Figures[0].Rows[1].Degraded += 2
		err := Compare(rep, bad, Tolerances{})
		if err == nil || !strings.Contains(err.Error(), "degraded instances rose") {
			t.Fatalf("injected degradation not caught: %v", err)
		}
	})
	t.Run("eliminated-fraction regression", func(t *testing.T) {
		bad := clone(t, rep)
		bad.Coalescing[0].EliminatedFrac -= 0.10
		err := Compare(rep, bad, Tolerances{})
		if err == nil || !strings.Contains(err.Error(), "eliminated move-cost fraction fell") {
			t.Fatalf("injected move-cost regression not caught: %v", err)
		}
	})
	t.Run("spill-equality broken", func(t *testing.T) {
		bad := clone(t, rep)
		bad.Coalescing[1].SpillEqual = false
		err := Compare(rep, bad, Tolerances{})
		if err == nil || !strings.Contains(err.Error(), "equal-spill invariant") {
			t.Fatalf("broken spill equality not caught: %v", err)
		}
	})
	t.Run("missing cell", func(t *testing.T) {
		bad := clone(t, rep)
		bad.Figures[0].Rows = bad.Figures[0].Rows[1:]
		if err := Compare(rep, bad, Tolerances{}); err == nil {
			t.Fatal("dropped cell not caught")
		}
	})
	t.Run("improvement also fails until regenerated", func(t *testing.T) {
		better := clone(t, rep)
		better.Figures[0].Rows[0].Normalized -= 0.05
		err := Compare(rep, better, Tolerances{})
		if err == nil || !strings.Contains(err.Error(), "regenerate QUALITY.json") {
			t.Fatalf("out-of-tolerance improvement must demand regeneration: %v", err)
		}
	})
	t.Run("within tolerance passes", func(t *testing.T) {
		drift := clone(t, rep)
		drift.Figures[0].Rows[0].Normalized += 0.004
		drift.Coalescing[0].EliminatedFrac += 0.004
		if err := Compare(rep, drift, Tolerances{}); err != nil {
			t.Fatalf("sub-tolerance drift must pass: %v", err)
		}
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	rep := generateTiny(t)
	path := filepath.Join(t.TempDir(), "QUALITY.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", rep, got)
	}
}

func TestReadFileSchemaMismatch(t *testing.T) {
	rep := generateTiny(t)
	rep.SchemaVersion = Schema + 1
	path := filepath.Join(t.TempDir(), "QUALITY.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("future schema accepted")
	}
}

func TestMarkdown(t *testing.T) {
	rep := generateTiny(t)
	md := Markdown(rep)
	for _, want := range []string{
		"# Quality report", "## tiny", "| R |", "Optimal",
		"## Coalescing-biased assignment", "| tiny | aggressive |", "| tiny | conservative |", "equal",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "MISMATCH") {
		t.Error("markdown reports a spill mismatch on a clean run")
	}
}
