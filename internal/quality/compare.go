package quality

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
)

// Tolerances bounds the drift Compare accepts between a committed report and
// a fresh run. Zero fields take the defaults; the defaults are deliberately
// tight — the workloads are deterministic, so any real drift is a code
// change that must either be fixed or committed by regenerating the
// artifact.
type Tolerances struct {
	// Normalized is the absolute tolerance on each figure cell's normalized
	// cost (default 0.005).
	Normalized float64
	// Fraction is the absolute tolerance on the coalescing eliminated-cost
	// fractions (default 0.005).
	Fraction float64
	// Degraded is the allowed increase in any cell's degraded-instance
	// count (default 0).
	Degraded int
}

func (t *Tolerances) fill() {
	if t.Normalized == 0 {
		t.Normalized = 0.005
	}
	if t.Fraction == 0 {
		t.Fraction = 0.005
	}
}

// Compare diffs a fresh report against the committed one under tol. It
// returns nil when every cell is within tolerance, and otherwise an error
// joining every violation: quality regressions (normalized cost up,
// degraded count up, eliminated fraction down, spill-equality broken) and
// structural or out-of-tolerance improvements (which also fail the gate —
// the committed artifact must be regenerated so the improvement is
// recorded).
func Compare(committed, current *Report, tol Tolerances) error {
	tol.fill()
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if committed.SchemaVersion != current.SchemaVersion {
		fail("schema version changed: committed %d, current %d",
			committed.SchemaVersion, current.SchemaVersion)
	}

	oldFigs := make(map[string]*Figure, len(committed.Figures))
	for i := range committed.Figures {
		oldFigs[committed.Figures[i].Suite] = &committed.Figures[i]
	}
	seen := make(map[string]bool, len(current.Figures))
	for i := range current.Figures {
		cur := &current.Figures[i]
		seen[cur.Suite] = true
		old, ok := oldFigs[cur.Suite]
		if !ok {
			fail("suite %s: not in the committed report (regenerate QUALITY.json)", cur.Suite)
			continue
		}
		compareFigure(old, cur, tol, fail)
	}
	for suite := range oldFigs {
		if !seen[suite] {
			fail("suite %s: missing from the current run", suite)
		}
	}

	type ck struct{ suite, policy string }
	oldCo := make(map[ck]*Coalescing, len(committed.Coalescing))
	for i := range committed.Coalescing {
		c := &committed.Coalescing[i]
		oldCo[ck{c.Suite, c.Policy}] = c
	}
	seenCo := make(map[ck]bool, len(current.Coalescing))
	for i := range current.Coalescing {
		cur := &current.Coalescing[i]
		k := ck{cur.Suite, cur.Policy}
		seenCo[k] = true
		if !cur.SpillEqual {
			fail("coalescing %s/%s: biased assignment changed a spill cost (equal-spill invariant broken)",
				cur.Suite, cur.Policy)
		}
		old, ok := oldCo[k]
		if !ok {
			fail("coalescing %s/%s: not in the committed report (regenerate QUALITY.json)",
				cur.Suite, cur.Policy)
			continue
		}
		if cur.Moves != old.Moves || cur.Instances != old.Instances {
			fail("coalescing %s/%s: corpus changed (moves %d→%d, instances %d→%d); regenerate QUALITY.json",
				cur.Suite, cur.Policy, old.Moves, cur.Moves, old.Instances, cur.Instances)
		}
		if !close6(cur.MoveCost, old.MoveCost) {
			fail("coalescing %s/%s: total move cost changed %g→%g; regenerate QUALITY.json",
				cur.Suite, cur.Policy, old.MoveCost, cur.MoveCost)
		}
		switch d := cur.EliminatedFrac - old.EliminatedFrac; {
		case d < -tol.Fraction:
			fail("coalescing %s/%s: QUALITY REGRESSION — eliminated move-cost fraction fell %.4f→%.4f (tolerance %.4f)",
				cur.Suite, cur.Policy, old.EliminatedFrac, cur.EliminatedFrac, tol.Fraction)
		case d > tol.Fraction:
			fail("coalescing %s/%s: eliminated fraction improved %.4f→%.4f beyond tolerance; regenerate QUALITY.json",
				cur.Suite, cur.Policy, old.EliminatedFrac, cur.EliminatedFrac)
		}
	}
	for k := range oldCo {
		if !seenCo[k] {
			fail("coalescing %s/%s: missing from the current run", k.suite, k.policy)
		}
	}
	return errors.Join(errs...)
}

func compareFigure(old, cur *Figure, tol Tolerances, fail func(string, ...any)) {
	if cur.Instances != old.Instances {
		fail("suite %s: instance count changed %d→%d; regenerate QUALITY.json",
			cur.Suite, old.Instances, cur.Instances)
	}
	type rk struct {
		r         int
		allocator string
	}
	oldRows := make(map[rk]*Row, len(old.Rows))
	for i := range old.Rows {
		oldRows[rk{old.Rows[i].R, old.Rows[i].Allocator}] = &old.Rows[i]
	}
	seen := make(map[rk]bool, len(cur.Rows))
	for i := range cur.Rows {
		c := &cur.Rows[i]
		k := rk{c.R, c.Allocator}
		seen[k] = true
		o, ok := oldRows[k]
		if !ok {
			fail("suite %s R=%d %s: cell not in the committed report; regenerate QUALITY.json",
				cur.Suite, c.R, c.Allocator)
			continue
		}
		switch d := c.Normalized - o.Normalized; {
		case d > tol.Normalized:
			fail("suite %s R=%d %s: QUALITY REGRESSION — normalized cost rose %.4f→%.4f (tolerance %.4f)",
				cur.Suite, c.R, c.Allocator, o.Normalized, c.Normalized, tol.Normalized)
		case d < -tol.Normalized:
			fail("suite %s R=%d %s: normalized cost improved %.4f→%.4f beyond tolerance; regenerate QUALITY.json",
				cur.Suite, c.R, c.Allocator, o.Normalized, c.Normalized)
		}
		switch {
		case c.Degraded > o.Degraded+tol.Degraded:
			fail("suite %s R=%d %s: QUALITY REGRESSION — degraded instances rose %d→%d (allowance %d)",
				cur.Suite, c.R, c.Allocator, o.Degraded, c.Degraded, tol.Degraded)
		case c.Degraded < o.Degraded:
			fail("suite %s R=%d %s: degraded instances fell %d→%d; regenerate QUALITY.json",
				cur.Suite, c.R, c.Allocator, o.Degraded, c.Degraded)
		}
	}
	for k := range oldRows {
		if !seen[k] {
			fail("suite %s R=%d %s: cell missing from the current run", cur.Suite, k.r, k.allocator)
		}
	}
}

// close6 compares two rounded values at the artifact's own quantum.
func close6(a, b float64) bool { return math.Abs(a-b) < 1.5e-6 }

// Encode serializes a report in the committed artifact's canonical form
// (two-space indent, trailing newline).
func Encode(r *Report) ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// WriteFile writes the report to path in canonical form.
func WriteFile(path string, r *Report) error {
	buf, err := Encode(r)
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadFile loads a committed report.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.SchemaVersion != Schema {
		return nil, fmt.Errorf("%s: schema %d, this build reads %d", path, r.SchemaVersion, Schema)
	}
	return &r, nil
}
