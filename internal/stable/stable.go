// Package stable computes (maximum weighted) stable sets.
//
// On chordal graphs, Frank's algorithm (paper Algorithm 1) finds an exact
// maximum weighted stable set in O(V+E) given a perfect elimination order.
// Every layer of the layered-optimal allocator is one such stable set: the
// optimal allocation for a single additional register.
//
// On general graphs the problem is NP-hard; ClusterVertices (paper
// Algorithm 5) greedily approximates a partition into heavy stable sets for
// the layered-heuristic allocator.
package stable

import (
	"sort"

	"repro/internal/graph"
)

// MaxWeightChordal returns a maximum weighted stable set of a chordal graph,
// implementing Frank's algorithm exactly as in the paper's Algorithm 1.
//
// order must be a perfect elimination order of g (see
// graph.PerfectEliminationOrder); weight must be non-negative. Vertices with
// zero weight are never selected, mirroring the "w' > 0" test of the
// algorithm — callers that must also place zero-weight variables can add an
// epsilon. The returned set is sorted by position in order (the LIFO blue
// marking of the algorithm produces it in reverse; we keep that order and
// let callers sort if needed).
func MaxWeightChordal(g *graph.Graph, order []int, weight []float64) []int {
	n := g.N()
	if len(order) != n || len(weight) != n {
		panic("stable: order/weight length mismatch with graph")
	}
	// Phase 1: scan the PEO; greedily "charge" each still-positive vertex
	// against its neighbors, marking it red (LIFO).
	current := make([]float64, n)
	for _, v := range order {
		current[v] = weight[v]
	}
	var markedRed []int
	for _, v := range order {
		if current[v] <= 0 {
			continue
		}
		markedRed = append(markedRed, v)
		wv := current[v]
		g.VisitNeighbors(v, func(u int) {
			current[u] -= wv
			if current[u] < 0 {
				current[u] = 0
			}
		})
		current[v] = 0
	}
	// Phase 2: pop reds LIFO; keep (mark blue) each red not adjacent to an
	// already-blue vertex. The result is a maximum weighted stable set.
	blue := make([]bool, n)
	inRed := make([]bool, n)
	for _, v := range markedRed {
		inRed[v] = true
	}
	var result []int
	for i := len(markedRed) - 1; i >= 0; i-- {
		v := markedRed[i]
		if !inRed[v] {
			continue // removed by an earlier blue neighbor
		}
		inRed[v] = false
		blue[v] = true
		result = append(result, v)
		g.VisitNeighbors(v, func(u int) {
			inRed[u] = false
		})
	}
	return result
}

// RedPhase exposes the intermediate red marking of Frank's algorithm, in
// insertion order, for tests reproducing the paper's Figure 5 trace.
func RedPhase(g *graph.Graph, order []int, weight []float64) []int {
	n := g.N()
	current := make([]float64, n)
	for _, v := range order {
		current[v] = weight[v]
	}
	var markedRed []int
	for _, v := range order {
		if current[v] <= 0 {
			continue
		}
		markedRed = append(markedRed, v)
		wv := current[v]
		g.VisitNeighbors(v, func(u int) {
			current[u] -= wv
			if current[u] < 0 {
				current[u] = 0
			}
		})
		current[v] = 0
	}
	return markedRed
}

// GreedyMaximal returns a maximal stable set built by scanning candidates in
// the given order and keeping every vertex not adjacent to one already kept.
// With candidates sorted by decreasing weight this is the inner loop of the
// paper's Algorithm 5 (one cluster).
func GreedyMaximal(g *graph.Graph, candidates []int) []int {
	kept := make([]bool, g.N())
	excluded := make([]bool, g.N())
	var cluster []int
	for _, v := range candidates {
		if excluded[v] || kept[v] {
			continue
		}
		kept[v] = true
		cluster = append(cluster, v)
		g.VisitNeighbors(v, func(u int) {
			excluded[u] = true
		})
	}
	return cluster
}

// ClusterVertices implements the paper's Algorithm 5: it partitions the
// vertex set into clusters (stable sets), each built greedily from the
// heaviest remaining vertices. Clusters are returned in construction order,
// which is also (weakly) decreasing total weight in practice but not by
// guarantee; AllocateClusters sorts before choosing.
func ClusterVertices(g *graph.Graph, weight []float64) [][]int {
	n := g.N()
	candidates := make([]int, n)
	for i := range candidates {
		candidates[i] = i
	}
	// Decreasing weight, vertex ID as deterministic tie-break.
	sort.SliceStable(candidates, func(i, j int) bool {
		wi, wj := weight[candidates[i]], weight[candidates[j]]
		if wi != wj {
			return wi > wj
		}
		return candidates[i] < candidates[j]
	})
	assigned := make([]bool, n)
	excluded := make([]bool, n)
	pool := make([]int, 0, n)
	var clusters [][]int
	remaining := n
	for remaining > 0 {
		// Inlined GreedyMaximal over the unassigned candidates, reusing the
		// pool and exclusion scratch across clusters (the per-cluster
		// allocations dominated the heuristic's profile).
		pool = pool[:0]
		for _, v := range candidates {
			if !assigned[v] {
				pool = append(pool, v)
				excluded[v] = false
			}
		}
		var cluster []int
		for _, v := range pool {
			if excluded[v] {
				continue
			}
			cluster = append(cluster, v)
			assigned[v] = true
			g.VisitNeighbors(v, func(u int) {
				excluded[u] = true
			})
		}
		remaining -= len(cluster)
		clusters = append(clusters, cluster)
	}
	return clusters
}

// SetWeight sums weight over the vertex set s.
func SetWeight(s []int, weight []float64) float64 {
	total := 0.0
	for _, v := range s {
		total += weight[v]
	}
	return total
}
