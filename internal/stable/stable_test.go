package stable

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Vertices of the paper's Figure 4/5 graph: a..g.
const (
	va = iota
	vb
	vc
	vd
	ve
	vf
	vg
)

func paperGraph() *graph.Graph {
	g := graph.New(7)
	for _, e := range [][2]int{
		{va, vd}, {va, vf}, {vd, vf}, {ve, vf}, {vd, ve},
		{vc, vd}, {vc, ve}, {ve, vg}, {vc, vg}, {vb, vc}, {vb, vg},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// paperPEO is [a, f, d, e, b, g, c] from the paper's Figure 5.
func paperPEO() []int { return []int{va, vf, vd, ve, vb, vg, vc} }

// paperWeights: a=1 f=6 d=5 e=2 b=2 g=1 c=2 (Figure 5's table header order).
func paperWeights() []float64 {
	w := make([]float64, 7)
	w[va], w[vf], w[vd], w[ve], w[vb], w[vg], w[vc] = 1, 6, 5, 2, 2, 1, 2
	return w
}

// TestFrankPaperExample reproduces the paper's Figure 5 trace: the red phase
// marks a, f, b (in that order) and the blue phase keeps {b, f}, the maximum
// weighted stable set, of weight 8.
func TestFrankPaperExample(t *testing.T) {
	g := paperGraph()
	if !g.IsPerfectEliminationOrder(paperPEO()) {
		t.Fatal("paper PEO invalid for reconstruction")
	}
	red := RedPhase(g, paperPEO(), paperWeights())
	if len(red) != 3 || red[0] != va || red[1] != vf || red[2] != vb {
		t.Fatalf("red phase = %v, want [a f b]", red)
	}
	blue := MaxWeightChordal(g, paperPEO(), paperWeights())
	sort.Ints(blue)
	if len(blue) != 2 || blue[0] != vb || blue[1] != vf {
		t.Fatalf("blue set = %v, want {b, f}", blue)
	}
	if got := SetWeight(blue, paperWeights()); got != 8 {
		t.Fatalf("stable set weight = %g, want 8", got)
	}
}

func TestFrankEmptyAndSingleton(t *testing.T) {
	g := graph.New(0)
	if got := MaxWeightChordal(g, nil, nil); len(got) != 0 {
		t.Fatalf("empty graph gave %v", got)
	}
	g1 := graph.New(1)
	got := MaxWeightChordal(g1, []int{0}, []float64{5})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton gave %v", got)
	}
	// Zero-weight vertices are never selected.
	got = MaxWeightChordal(g1, []int{0}, []float64{0})
	if len(got) != 0 {
		t.Fatalf("zero-weight vertex selected: %v", got)
	}
}

func TestFrankMismatchedInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MaxWeightChordal(graph.New(2), []int{0}, []float64{1, 1})
}

// bruteForceMWSS enumerates all subsets (n ≤ 20).
func bruteForceMWSS(g *graph.Graph, w []float64) float64 {
	n := g.N()
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		if !g.IsStableSet(set) {
			continue
		}
		total := 0.0
		for _, v := range set {
			total += w[v]
		}
		if total > best {
			best = total
		}
	}
	return best
}

func randomIntervalGraph(rng *rand.Rand, n int) *graph.Graph {
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, b := rng.Intn(3*n), rng.Intn(3*n)
		if a > b {
			a, b = b, a
		}
		ivs[i] = iv{a, b}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// TestPropertyFrankMatchesBruteForce is the key exactness property: on random
// chordal graphs Frank's algorithm returns a stable set of maximum weight.
func TestPropertyFrankMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(14)
		g := randomIntervalGraph(r, n)
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + r.Intn(20))
		}
		order := g.PerfectEliminationOrder()
		got := MaxWeightChordal(g, order, w)
		if !g.IsStableSet(got) {
			return false
		}
		return SetWeight(got, w) == bruteForceMWSS(g, w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFrankResultMaximal(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		g := randomIntervalGraph(r, n)
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + r.Intn(9))
		}
		got := MaxWeightChordal(g, g.PerfectEliminationOrder(), w)
		in := make(map[int]bool)
		for _, v := range got {
			in[v] = true
		}
		// No positive-weight vertex can be added.
		for v := 0; v < n; v++ {
			if in[v] || w[v] <= 0 {
				continue
			}
			addable := true
			for _, u := range got {
				if g.HasEdge(u, v) {
					addable = false
					break
				}
			}
			if addable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMaximal(t *testing.T) {
	g := paperGraph()
	// Candidates in decreasing paper weight: f(6) d(5) e(2) b(2) c(2) a(1) g(1).
	cluster := GreedyMaximal(g, []int{vf, vd, ve, vb, vc, va, vg})
	if !g.IsStableSet(cluster) {
		t.Fatalf("cluster %v not stable", cluster)
	}
	// f first, then d,e excluded (adjacent to f); b kept; c,g excluded; a
	// excluded (adjacent to f).
	sort.Ints(cluster)
	if len(cluster) != 2 || cluster[0] != vb || cluster[1] != vf {
		t.Fatalf("cluster = %v, want {b, f}", cluster)
	}
}

func TestClusterVerticesPartition(t *testing.T) {
	g := paperGraph()
	clusters := ClusterVertices(g, paperWeights())
	seen := make(map[int]int)
	for _, c := range clusters {
		if !g.IsStableSet(c) {
			t.Fatalf("cluster %v not stable", c)
		}
		for _, v := range c {
			seen[v]++
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("clusters cover %d of %d vertices", len(seen), g.N())
	}
	for v, k := range seen {
		if k != 1 {
			t.Fatalf("vertex %d in %d clusters", v, k)
		}
	}
}

func TestPropertyClusterVerticesPartition(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					g.AddEdge(i, j)
				}
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + r.Intn(50))
		}
		clusters := ClusterVertices(g, w)
		count := make([]int, n)
		for _, c := range clusters {
			if !g.IsStableSet(c) {
				return false
			}
			if len(c) == 0 {
				return false
			}
			for _, v := range c {
				count[v]++
			}
		}
		for _, k := range count {
			if k != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSetWeight(t *testing.T) {
	w := []float64{1, 2, 4}
	if SetWeight([]int{0, 2}, w) != 5 {
		t.Fatalf("SetWeight = %g", SetWeight([]int{0, 2}, w))
	}
	if SetWeight(nil, w) != 0 {
		t.Fatal("empty set weight not 0")
	}
}
