package ifg

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// fingerprint keys a sorted vertex set for test-side set comparison.
func fingerprint(s []int) string { return fmt.Sprint(s) }

func build(t *testing.T, src string) *Build {
	t.Helper()
	return FromFunc(ir.MustParse(src))
}

func vertexByName(t *testing.T, b *Build, name string) int {
	t.Helper()
	for id, n := range b.F.ValueName {
		if n == name {
			if v := b.VertexOf[id]; v >= 0 {
				return v
			}
			t.Fatalf("value %s has no vertex", name)
		}
	}
	t.Fatalf("no value named %s", name)
	return -1
}

func TestInterferenceStraightLine(t *testing.T) {
	b := build(t, `
func s ssa {
b0:
  a = param 0
  b = param 1
  c = arith a, b
  d = arith c, a
  ret d
}`)
	a := vertexByName(t, b, "a")
	bb := vertexByName(t, b, "b")
	c := vertexByName(t, b, "c")
	d := vertexByName(t, b, "d")
	for _, want := range [][2]int{{a, bb}, {a, c}} {
		if !b.Graph.HasEdge(want[0], want[1]) {
			t.Errorf("missing interference %v", want)
		}
	}
	// b dies at c's definition: b–d must not interfere; c dies at d.
	for _, no := range [][2]int{{bb, d}, {c, d}} {
		if b.Graph.HasEdge(no[0], no[1]) {
			t.Errorf("spurious interference %v", no)
		}
	}
}

func TestSSAGraphIsChordalAndCliquesMatchLiveSets(t *testing.T) {
	b := build(t, `
func f ssa {
b0:
  a = param 0
  k = param 1
  c = unary a
  condbr c, b1, b2
b1:
  y = arith a, k
  br b3
b2:
  z = arith a, a
  br b3
b3:
  m = phi [b1: y], [b2: z]
  r = arith m, k
  ret r
}`)
	if !b.Graph.IsChordal() {
		t.Fatal("strict-SSA interference graph not chordal")
	}
	// Every live set is a clique.
	for _, ls := range b.LiveSets {
		if !b.Graph.IsClique(ls) {
			t.Fatalf("live set %v is not a clique", b.Names(ls))
		}
	}
	// Every maximal clique equals some live set (the Hack correspondence).
	order := b.Graph.PerfectEliminationOrder()
	liveKeys := map[string]bool{}
	for _, ls := range b.LiveSets {
		liveKeys[fingerprint(ls)] = true
	}
	for _, c := range b.Graph.MaximalCliques(order) {
		if !liveKeys[fingerprint(c)] {
			t.Errorf("maximal clique %v is not a program-point live set", b.Names(c))
		}
	}
}

func TestDeadDefInterferes(t *testing.T) {
	b := build(t, `
func dead ssa {
b0:
  a = param 0
  b = arith a, a
  ret a
}`)
	a := vertexByName(t, b, "a")
	bb := vertexByName(t, b, "b")
	if !b.Graph.HasEdge(a, bb) {
		t.Fatal("dead def must interfere with values live across it")
	}
}

func TestPhiDefsInterfere(t *testing.T) {
	b := build(t, `
func p ssa {
b0:
  a = param 0
  b = param 1
  c = unary a
  condbr c, b1, b2
b1:
  x1 = arith a, a
  y1 = arith b, b
  br b3
b2:
  x2 = arith a, b
  y2 = arith b, a
  br b3
b3:
  x = phi [b1: x1], [b2: x2]
  y = phi [b1: y1], [b2: y2]
  r = arith x, y
  ret r
}`)
	x := vertexByName(t, b, "x")
	y := vertexByName(t, b, "y")
	if !b.Graph.HasEdge(x, y) {
		t.Fatal("simultaneous phi defs must interfere")
	}
}

func TestNonSSAOverlappingRedefinitions(t *testing.T) {
	// u and v alternate definitions so their ranges overlap in a pattern
	// producing a 4-cycle with w, s: the classic non-chordal shape.
	b := build(t, `
func ns {
b0:
  u = param 0
  v = param 1
  w = arith u, v
  u = arith w, w
  s = arith u, w
  v = arith s, s
  store u, v
  ret s
}`)
	if b.Graph.N() == 0 {
		t.Fatal("no vertices built")
	}
	for _, ls := range b.LiveSets {
		if !b.Graph.IsClique(ls) {
			t.Fatalf("live set %v not a clique", ls)
		}
	}
}

func TestMaxLiveExported(t *testing.T) {
	f := ir.MustParse(`
func m ssa {
b0:
  a = param 0
  b = param 1
  c = param 2
  d = arith a, b
  e = arith d, c
  f1 = arith e, a
  ret f1
}`)
	info := liveness.Compute(f)
	b := FromLiveness(info)
	if b.MaxLive != info.MaxLive || b.MaxLive != 3 {
		t.Fatalf("MaxLive = %d (info %d), want 3", b.MaxLive, info.MaxLive)
	}
	// MaxLive equals the largest live set size.
	max := 0
	for _, ls := range b.LiveSets {
		if len(ls) > max {
			max = len(ls)
		}
	}
	if max != b.MaxLive {
		t.Fatalf("largest live set %d != MaxLive %d", max, b.MaxLive)
	}
}

func TestVertexMappingRoundTrip(t *testing.T) {
	b := build(t, `
func r ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}`)
	for v, val := range b.ValueOf {
		if b.VertexOf[val] != v {
			t.Fatalf("mapping mismatch: vertex %d value %d back to %d", v, val, b.VertexOf[val])
		}
	}
}
