// Package ifg builds interference graphs from liveness information.
//
// For a strict-SSA function, live ranges are subtrees of the dominance tree,
// so the interference graph built here is chordal and its maximal cliques
// correspond to live sets at program points — the structural facts layered
// allocation relies on. For non-SSA functions the same construction yields a
// general graph; the live sets are still exported as the register-pressure
// constraints ("point cliques") used by the pressure-based allocators and
// the exact solver.
package ifg

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Build is the result of constructing an interference graph.
type Build struct {
	F *ir.Func
	// Graph has one vertex per allocable value; VertexOf/ValueOf translate.
	Graph *graph.Graph
	// VertexOf maps value ID to vertex (-1 when the value never occurs).
	VertexOf []int
	// ValueOf maps vertex to value ID.
	ValueOf []int
	// LiveSets holds the distinct program-point live sets translated to
	// vertex IDs, each sorted. Every live set is a clique of Graph.
	LiveSets [][]int
	// MaxLive is the peak register pressure.
	MaxLive int
}

// FromFunc computes liveness and builds the interference graph in one step.
func FromFunc(f *ir.Func) *Build {
	return FromLiveness(liveness.Compute(f))
}

// FromLiveness builds the interference graph from precomputed liveness.
//
// Vertices are created for every value that is defined or live anywhere.
// Interference edges are added def-against-live (Chaitin's construction,
// with phi defs interfering with the live-ins of their block), plus
// clique edges for every program-point live set so that the graph is
// exactly the intersection graph of live ranges.
func FromLiveness(info *liveness.Info) *Build {
	f := info.F
	b := &Build{
		F:        f,
		VertexOf: make([]int, f.NumValues),
		MaxLive:  info.MaxLive,
	}
	for i := range b.VertexOf {
		b.VertexOf[i] = -1
	}
	present := make([]bool, f.NumValues)
	mark := func(v int) {
		if v >= 0 && v < f.NumValues {
			present[v] = true
		}
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				mark(ins.Def)
			}
			for _, u := range ins.Uses {
				mark(u)
			}
		}
	}
	for _, p := range info.Points {
		for _, v := range p.Live {
			mark(v)
		}
	}
	for v := 0; v < f.NumValues; v++ {
		if present[v] {
			b.VertexOf[v] = len(b.ValueOf)
			b.ValueOf = append(b.ValueOf, v)
		}
	}
	b.Graph = graph.New(len(b.ValueOf))

	// Every program-point live set is a set of simultaneously live values:
	// make each a clique. This subsumes the def-vs-live rule because the
	// point before an instruction's successor... more precisely, the def is
	// in the live set of the point just after the definition whenever it is
	// used later, and values dead immediately still appear via the def
	// point's live-before set of the *next* instruction. To also catch
	// defs that are never used (dead defs still occupy a register at their
	// definition), add explicit def-vs-live-after edges below.
	seen := make(map[string]bool)
	for _, p := range info.Points {
		if len(p.Live) < 1 {
			continue
		}
		vs := make([]int, len(p.Live))
		for i, v := range p.Live {
			vs[i] = b.VertexOf[v]
		}
		key := fingerprint(vs)
		if !seen[key] {
			seen[key] = true
			b.LiveSets = append(b.LiveSets, vs)
		}
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				b.Graph.AddEdge(vs[i], vs[j])
			}
		}
	}

	// Def-vs-live edges for dead or immediately-dead definitions: walk each
	// block backward like the liveness point computation and connect each
	// def to everything live after it.
	liveAfter := make(map[int]bool)
	for _, blk := range f.Blocks {
		clear(liveAfter)
		for _, v := range info.LiveOut[blk.ID] {
			liveAfter[v] = true
		}
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			ins := &blk.Instrs[i]
			if ins.Op == ir.OpPhi {
				continue
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				dv := b.VertexOf[ins.Def]
				for u := range liveAfter {
					if u != ins.Def {
						b.Graph.AddEdge(dv, b.VertexOf[u])
					}
				}
				delete(liveAfter, ins.Def)
			}
			for _, u := range ins.Uses {
				liveAfter[u] = true
			}
		}
		// Phi defs all occupy registers simultaneously at the block
		// boundary and against the block's live-in set.
		var phiDefs []int
		for _, ins := range blk.Instrs {
			if ins.Op == ir.OpPhi {
				phiDefs = append(phiDefs, ins.Def)
			}
		}
		if len(phiDefs) > 0 {
			for i := 0; i < len(phiDefs); i++ {
				for j := i + 1; j < len(phiDefs); j++ {
					b.Graph.AddEdge(b.VertexOf[phiDefs[i]], b.VertexOf[phiDefs[j]])
				}
				for _, u := range info.LiveIn[blk.ID] {
					if u != phiDefs[i] {
						b.Graph.AddEdge(b.VertexOf[phiDefs[i]], b.VertexOf[u])
					}
				}
			}
		}
	}
	sort.Slice(b.LiveSets, func(i, j int) bool {
		return lessIntSlice(b.LiveSets[i], b.LiveSets[j])
	})
	return b
}

// Names returns the printable value names for a vertex set, sorted, for
// diagnostics.
func (b *Build) Names(vertices []int) []string {
	out := make([]string, len(vertices))
	for i, v := range vertices {
		out[i] = b.F.NameOf(b.ValueOf[v])
	}
	sort.Strings(out)
	return out
}

func fingerprint(s []int) string {
	buf := make([]byte, 0, len(s)*4)
	for _, v := range s {
		buf = appendInt(buf, v)
		buf = append(buf, ',')
	}
	return string(buf)
}

func appendInt(buf []byte, v int) []byte {
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf, tmp[i:]...)
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
