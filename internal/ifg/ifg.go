// Package ifg builds interference graphs from liveness information.
//
// For a strict-SSA function, live ranges are subtrees of the dominance tree,
// so the interference graph built here is chordal and its maximal cliques
// correspond to live sets at program points — the structural facts layered
// allocation relies on. For non-SSA functions the same construction yields a
// general graph; the live sets are still exported as the register-pressure
// constraints ("point cliques") used by the pressure-based allocators and
// the exact solver.
package ifg

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Build is the result of constructing an interference graph.
type Build struct {
	F *ir.Func
	// Graph has one vertex per allocable value; VertexOf/ValueOf translate.
	// It is returned frozen (CSR snapshot current) for fast neighbor scans.
	Graph *graph.Graph
	// VertexOf maps value ID to vertex (-1 when the value never occurs).
	VertexOf []int
	// ValueOf maps vertex to value ID.
	ValueOf []int
	// LiveSets holds the distinct program-point live sets translated to
	// vertex IDs, each sorted. Every live set is a clique of Graph.
	LiveSets [][]int
	// MaxLive is the peak register pressure.
	MaxLive int
}

// FromFunc computes liveness and builds the interference graph in one step.
func FromFunc(f *ir.Func) *Build {
	return FromLiveness(liveness.Compute(f))
}

// FromLiveness builds the interference graph from precomputed liveness.
//
// Vertices are created for every value that is defined or live anywhere.
// Interference edges are added def-against-live (Chaitin's construction,
// with phi defs interfering with the live-ins of their block), plus
// clique edges for every program-point live set so that the graph is
// exactly the intersection graph of live ranges.
func FromLiveness(info *liveness.Info) *Build {
	f := info.F
	b := &Build{
		F:        f,
		VertexOf: make([]int, f.NumValues),
		MaxLive:  info.MaxLive,
	}
	for i := range b.VertexOf {
		b.VertexOf[i] = -1
	}
	present := bitset.New(f.NumValues)
	mark := func(v int) {
		if v >= 0 && v < f.NumValues {
			present.Add(v)
		}
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				mark(ins.Def)
			}
			for _, u := range ins.Uses {
				mark(u)
			}
		}
	}
	for _, p := range info.Points {
		for _, v := range p.Live {
			mark(v)
		}
	}
	present.ForEach(func(v int) {
		b.VertexOf[v] = len(b.ValueOf)
		b.ValueOf = append(b.ValueOf, v)
	})
	b.Graph = graph.New(len(b.ValueOf))

	// Every program-point live set is a set of simultaneously live values:
	// make each a clique. This subsumes the def-vs-live rule for defs with
	// uses; dead defs are handled by the explicit def-vs-live-after pass
	// below. Each point is translated into a reusable scratch slice and
	// deduplicated through the interner (no string fingerprints, no
	// allocation for duplicate points).
	intern := bitset.NewInterner(len(info.Points))
	var vsBuf []int
	for _, p := range info.Points {
		if len(p.Live) < 1 {
			continue
		}
		vsBuf = vsBuf[:0]
		for _, v := range p.Live {
			vsBuf = append(vsBuf, b.VertexOf[v])
		}
		if idx, added := intern.Intern(vsBuf); added {
			b.Graph.AddClique(intern.Sets()[idx])
		}
	}
	b.LiveSets = intern.Sets()

	// Def-vs-live edges for dead or immediately-dead definitions: walk each
	// block backward like the liveness point computation and connect each
	// def to everything live after it.
	liveAfterScratch := bitset.Get(f.NumValues)
	liveAfter := *liveAfterScratch
	for _, blk := range f.Blocks {
		liveAfter.Clear()
		for _, v := range info.LiveOut[blk.ID] {
			liveAfter.Add(v)
		}
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			ins := &blk.Instrs[i]
			if ins.Op == ir.OpPhi {
				continue
			}
			if ins.Op.HasDef() && ins.Def != ir.NoValue {
				dv := b.VertexOf[ins.Def]
				liveAfter.ForEach(func(u int) {
					if u != ins.Def {
						b.Graph.AddEdge(dv, b.VertexOf[u])
					}
				})
				liveAfter.Remove(ins.Def)
			}
			for _, u := range ins.Uses {
				liveAfter.Add(u)
			}
		}
		// Phi defs all occupy registers simultaneously at the block
		// boundary and against the block's live-in set.
		var phiDefs []int
		for _, ins := range blk.Instrs {
			if ins.Op == ir.OpPhi {
				phiDefs = append(phiDefs, ins.Def)
			}
		}
		if len(phiDefs) > 0 {
			for i := 0; i < len(phiDefs); i++ {
				for j := i + 1; j < len(phiDefs); j++ {
					b.Graph.AddEdge(b.VertexOf[phiDefs[i]], b.VertexOf[phiDefs[j]])
				}
				for _, u := range info.LiveIn[blk.ID] {
					if u != phiDefs[i] {
						b.Graph.AddEdge(b.VertexOf[phiDefs[i]], b.VertexOf[u])
					}
				}
			}
		}
	}
	bitset.Put(liveAfterScratch)
	sort.Slice(b.LiveSets, func(i, j int) bool {
		return lessIntSlice(b.LiveSets[i], b.LiveSets[j])
	})
	b.Graph.Freeze()
	return b
}

// Names returns the printable value names for a vertex set, sorted, for
// diagnostics.
func (b *Build) Names(vertices []int) []string {
	out := make([]string, len(vertices))
	for i, v := range vertices {
		out[i] = b.F.NameOf(b.ValueOf[v])
	}
	sort.Strings(out)
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
