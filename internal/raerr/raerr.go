// Package raerr defines the typed error taxonomy of the register-allocation
// system. It is the leaf package every layer (ir, alloc, core, pipeline) may
// import to tag failures, and the public regalloc façade re-exports its
// sentinels verbatim, so `errors.Is`/`errors.As` work identically whether a
// client holds an error from the public API or from an internal layer.
package raerr

import "errors"

var (
	// ErrInvalidConfig tags configuration errors: a register count below 1,
	// a malformed cost model, a negative worker count.
	ErrInvalidConfig = errors.New("regalloc: invalid configuration")

	// ErrUnknownAllocator tags allocator-name lookups that match no
	// registered allocator.
	ErrUnknownAllocator = errors.New("regalloc: unknown allocator")

	// ErrNotSSA tags failures that require strict SSA form: a function
	// declared `ssa` that violates single definitions or dominance of uses,
	// or a chordal-only allocator (NL, BL, FPL, BFPL) applied to a
	// non-chordal instance.
	ErrNotSSA = errors.New("regalloc: function is not in strict SSA form")

	// ErrPressureUnsatisfiable tags allocation results that violate the
	// register-pressure constraints: an allocator kept more than R values of
	// one live set, or register assignment ran out of registers. Built-in
	// allocators never produce it; a custom Register'ed allocator can.
	ErrPressureUnsatisfiable = errors.New("regalloc: register pressure unsatisfiable")

	// ErrCanceled tags module runs interrupted by context cancellation.
	// Errors carrying it also wrap the context's own error, so
	// errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("regalloc: allocation canceled")

	// ErrMachineMismatch tags machine-constrained runs whose input
	// annotations the machine cannot express: a value of a register class
	// the target lacks, or a pre-color outside the class capacity. The
	// function may still be allocated machine-less, or under a machine that
	// has the annotated resources.
	ErrMachineMismatch = errors.New("regalloc: function annotations incompatible with the machine")
)

// FuncError is a failure localized to one function of a run. It wraps the
// underlying cause (errors.Is/As see through it) and records which pipeline
// stage failed.
type FuncError struct {
	// Func is the function's name.
	Func string
	// Stage is the pipeline stage that failed: "validate", "allocate",
	// "assign" or "rewrite".
	Stage string
	// Err is the underlying cause.
	Err error
}

func (e *FuncError) Error() string {
	return "regalloc: func " + e.Func + ": " + e.Stage + ": " + e.Err.Error()
}

func (e *FuncError) Unwrap() error { return e.Err }
