// Package raerr defines the typed error taxonomy of the register-allocation
// system. It is the leaf package every layer (ir, alloc, core, pipeline) may
// import to tag failures, and the public regalloc façade re-exports its
// sentinels verbatim, so `errors.Is`/`errors.As` work identically whether a
// client holds an error from the public API or from an internal layer.
package raerr

import (
	"errors"
	"fmt"
	"time"
)

var (
	// ErrInvalidConfig tags configuration errors: a register count below 1,
	// a malformed cost model, a negative worker count.
	ErrInvalidConfig = errors.New("regalloc: invalid configuration")

	// ErrUnknownAllocator tags allocator-name lookups that match no
	// registered allocator.
	ErrUnknownAllocator = errors.New("regalloc: unknown allocator")

	// ErrNotSSA tags failures that require strict SSA form: a function
	// declared `ssa` that violates single definitions or dominance of uses,
	// or a chordal-only allocator (NL, BL, FPL, BFPL) applied to a
	// non-chordal instance.
	ErrNotSSA = errors.New("regalloc: function is not in strict SSA form")

	// ErrPressureUnsatisfiable tags allocation results that violate the
	// register-pressure constraints: an allocator kept more than R values of
	// one live set, or register assignment ran out of registers. Built-in
	// allocators never produce it; a custom Register'ed allocator can.
	ErrPressureUnsatisfiable = errors.New("regalloc: register pressure unsatisfiable")

	// ErrCanceled tags module runs interrupted by context cancellation.
	// Errors carrying it also wrap the context's own error, so
	// errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("regalloc: allocation canceled")

	// ErrMachineMismatch tags machine-constrained runs whose input
	// annotations the machine cannot express: a value of a register class
	// the target lacks, or a pre-color outside the class capacity. The
	// function may still be allocated machine-less, or under a machine that
	// has the annotated resources.
	ErrMachineMismatch = errors.New("regalloc: function annotations incompatible with the machine")

	// ErrBudgetExceeded tags runs that exhausted their resource budget
	// (wall-clock deadline, work-step budget, or admission gate). Errors
	// carrying it are *BudgetError values recording the stage and the
	// spend; with degradation enabled the pipeline converts the condition
	// into a degraded-but-correct Outcome instead of an error.
	ErrBudgetExceeded = errors.New("regalloc: resource budget exceeded")
)

// Budget stage labels reported by *BudgetError and degradation reasons.
const (
	StageAdmission = "admission" // size gate before any analysis
	StageLiveness  = "liveness"  // dataflow fixpoint + program points
	StageCliques   = "cliques"   // IFG-free clique-structure derivation
	StageAllocate  = "allocate"  // the allocation algorithm proper
	StageAssign    = "assign"    // tree-scan register assignment
)

// BudgetError is a resource-budget violation: which pipeline stage tripped
// the meter, how much work was spent against what limit, and the elapsed
// wall-clock time against the configured deadline (zero fields mean the
// corresponding limit was not set). It wraps ErrBudgetExceeded.
type BudgetError struct {
	// Stage is the pipeline stage that exhausted the budget (one of the
	// Stage* constants).
	Stage string
	// Spent is the work charged when the meter tripped. For StageAdmission
	// it is the offending size (value or block count).
	Spent int64
	// Limit is the step budget (or admission bound) that was exceeded;
	// 0 when the trip came from the wall-clock deadline.
	Limit int64
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Deadline is the configured wall-clock budget (0 = none).
	Deadline time.Duration
}

func (e *BudgetError) Error() string {
	if e.Stage == StageAdmission {
		return fmt.Sprintf("%v: admission: size %d over limit %d", ErrBudgetExceeded, e.Spent, e.Limit)
	}
	msg := fmt.Sprintf("%v: stage %s: %d steps spent", ErrBudgetExceeded, e.Stage, e.Spent)
	if e.Limit > 0 {
		msg += fmt.Sprintf(" of %d budgeted", e.Limit)
	}
	if e.Deadline > 0 {
		msg += fmt.Sprintf(", %v elapsed of %v deadline", e.Elapsed.Round(time.Microsecond), e.Deadline)
	}
	return msg
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// FuncError is a failure localized to one function of a run. It wraps the
// underlying cause (errors.Is/As see through it) and records which pipeline
// stage failed.
type FuncError struct {
	// Func is the function's name.
	Func string
	// Stage is the pipeline stage that failed: "validate", "admission",
	// "liveness", "cliques", "constrain", "allocate", "assign" or
	// "rewrite".
	Stage string
	// Err is the underlying cause.
	Err error
}

func (e *FuncError) Error() string {
	return "regalloc: func " + e.Func + ": " + e.Stage + ": " + e.Err.Error()
}

func (e *FuncError) Unwrap() error { return e.Err }
