package raerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestFuncErrorWrapping(t *testing.T) {
	cause := fmt.Errorf("boom: %w", ErrNotSSA)
	fe := &FuncError{Func: "f", Stage: "validate", Err: cause}
	if got := fe.Error(); got != "regalloc: func f: validate: boom: "+ErrNotSSA.Error() {
		t.Errorf("Error() = %q", got)
	}
	if !errors.Is(fe, ErrNotSSA) {
		t.Error("errors.Is does not see through FuncError")
	}
	var target *FuncError
	wrapped := fmt.Errorf("outer: %w", fe)
	if !errors.As(wrapped, &target) || target.Func != "f" || target.Stage != "validate" {
		t.Errorf("errors.As failed: %+v", target)
	}
}

func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{ErrInvalidConfig, ErrUnknownAllocator, ErrNotSSA, ErrPressureUnsatisfiable, ErrCanceled}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel identity broken: Is(%v, %v) = %v", a, b, errors.Is(a, b))
			}
		}
	}
}
