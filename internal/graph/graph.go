// Package graph provides weighted undirected graphs and the chordal-graph
// machinery (perfect elimination orders, maximal cliques, greedy colouring)
// that layered register allocation is built on.
//
// Vertices are dense integer IDs in [0, N). Most allocator-facing code works
// with a *Graph plus a parallel weight slice; the Weighted helper bundles the
// two. The package is deterministic: every enumeration (neighbors, cliques,
// orders) is returned in a stable order so allocation results are
// reproducible run to run.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is an undirected graph over vertices 0..N-1. The zero value is an
// empty graph with no vertices; use New to pre-size.
type Graph struct {
	n   int
	adj []map[int]bool // adjacency sets, one per vertex
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AddVertex appends a fresh vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, make(map[int]bool))
	g.n++
	return g.n - 1
}

// AddEdge inserts the undirected edge (u, v). Self-loops are rejected;
// duplicate insertions are no-ops.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in ascending order. The slice is
// freshly allocated and safe for the caller to retain.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// VisitNeighbors calls fn for every neighbor of v in unspecified order.
// It avoids the allocation of Neighbors for hot paths.
func (g *Graph) VisitNeighbors(v int, fn func(u int)) {
	g.check(v)
	for u := range g.adj[v] {
		fn(u)
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v, a := range g.adj {
		for u := range a {
			c.adj[v][u] = true
		}
	}
	return c
}

// RemoveVertexEdges detaches v from all of its neighbors, leaving v present
// but isolated. Register allocators use this to take a spilled variable out
// of the interference structure without renumbering.
func (g *Graph) RemoveVertexEdges(v int) {
	g.check(v)
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	g.adj[v] = make(map[int]bool)
}

// InducedSubgraph returns the subgraph induced by keep along with the
// mapping from new vertex IDs to original ones (newToOld). Vertices are
// renumbered 0..len(keep)-1 in the sorted order of keep.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	newToOld := append([]int(nil), keep...)
	sort.Ints(newToOld)
	oldToNew := make(map[int]int, len(newToOld))
	for i, v := range newToOld {
		g.check(v)
		oldToNew[v] = i
	}
	sub := New(len(newToOld))
	for i, v := range newToOld {
		for u := range g.adj[v] {
			if j, ok := oldToNew[u]; ok && j > i {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, newToOld
}

// IsStableSet reports whether no two vertices of s are adjacent.
func (g *Graph) IsStableSet(s []int) bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if g.HasEdge(s[i], s[j]) {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether every two distinct vertices of s are adjacent.
func (g *Graph) IsClique(s []int) bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if !g.HasEdge(s[i], s[j]) {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "n=<N> m=<M> edges=[(u,v) ...]" with edges in
// lexicographic order, mainly for test failure messages.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d edges=[", g.n, g.M())
	first := true
	for v := 0; v < g.n; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				if !first {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "(%d,%d)", v, u)
				first = false
			}
		}
	}
	b.WriteByte(']')
	return b.String()
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Weighted bundles a graph with per-vertex non-negative weights (spill
// costs). The two slices are parallel: Weight[v] is the cost of vertex v.
type Weighted struct {
	*Graph
	Weight []float64
}

// NewWeighted wraps g with the given weights. It panics if the lengths
// disagree or any weight is negative.
func NewWeighted(g *Graph, weight []float64) *Weighted {
	if len(weight) != g.N() {
		panic(fmt.Sprintf("graph: %d weights for %d vertices", len(weight), g.N()))
	}
	for v, w := range weight {
		if w < 0 {
			panic(fmt.Sprintf("graph: negative weight %g on vertex %d", w, v))
		}
	}
	return &Weighted{Graph: g, Weight: weight}
}

// TotalWeight returns the sum of all vertex weights.
func (w *Weighted) TotalWeight() float64 {
	total := 0.0
	for _, x := range w.Weight {
		total += x
	}
	return total
}

// SetWeight returns the sum of weights over the vertex set s.
func (w *Weighted) SetWeight(s []int) float64 {
	total := 0.0
	for _, v := range s {
		total += w.Weight[v]
	}
	return total
}
