// Package graph provides weighted undirected graphs and the chordal-graph
// machinery (perfect elimination orders, maximal cliques, greedy colouring)
// that layered register allocation is built on.
//
// Vertices are dense integer IDs in [0, N). Most allocator-facing code works
// with a *Graph plus a parallel weight slice; the Weighted helper bundles the
// two. The package is deterministic: every enumeration (neighbors, cliques,
// orders) is returned in ascending/stable order so allocation results are
// reproducible run to run.
//
// Adjacency is stored as dense bitset rows (one word-packed row per vertex),
// giving O(1) edge tests, O(n/64) row operations, and ascending neighbor
// iteration by construction. Freeze additionally snapshots a CSR (compressed
// sparse row) form of the adjacency for cache-friendly neighbor scans in the
// read-only algorithm phases; any mutation invalidates the snapshot.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// Graph is an undirected graph over vertices 0..N-1. The zero value is an
// empty graph with no vertices; use New to pre-size.
type Graph struct {
	n   int
	adj []bitset.Set // adjacency bitset rows, one per vertex

	// Frozen CSR snapshot: neighbors of v are csrAdj[csrOff[v]:csrOff[v+1]],
	// ascending. Nil when stale; rebuilt by Freeze.
	csrOff []int32
	csrAdj []int32
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: bitset.NewSlab(n, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	if g.csrOff != nil {
		return len(g.csrAdj) / 2
	}
	total := 0
	for _, row := range g.adj {
		total += row.Count()
	}
	return total / 2
}

// dirty drops the CSR snapshot after a mutation.
func (g *Graph) dirty() {
	g.csrOff, g.csrAdj = nil, nil
}

// Freeze builds (or rebuilds) the CSR adjacency snapshot. Read-heavy phases
// (PEO, clique enumeration, colouring, allocation) iterate neighbors through
// it; calling Freeze is optional — iteration falls back to the bitset rows —
// but frozen scans are faster on sparse graphs. Any mutation invalidates the
// snapshot automatically.
func (g *Graph) Freeze() {
	off := make([]int32, g.n+1)
	total := 0
	for v, row := range g.adj {
		off[v] = int32(total)
		total += row.Count()
	}
	off[g.n] = int32(total)
	adj := make([]int32, total)
	for v, row := range g.adj {
		i := off[v]
		row.ForEach(func(u int) {
			adj[i] = int32(u)
			i++
		})
	}
	g.csrOff, g.csrAdj = off, adj
}

// Frozen reports whether a current CSR snapshot exists.
func (g *Graph) Frozen() bool { return g.csrOff != nil }

// AddVertex appends a fresh vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.n++
	w := bitset.Words(g.n)
	for i, row := range g.adj {
		if len(row) < w {
			// Rows may share a backing slab; grow into fresh storage.
			grown := make(bitset.Set, w)
			copy(grown, row)
			g.adj[i] = grown
		}
	}
	g.adj = append(g.adj, make(bitset.Set, w))
	g.dirty()
	return g.n - 1
}

// AddEdge inserts the undirected edge (u, v). Self-loops are rejected;
// duplicate insertions are no-ops.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
	g.dirty()
}

// AddClique makes every pair of vs adjacent, in O(|vs| · n/64) instead of
// the O(|vs|²) pairwise AddEdge loop. Duplicate members are tolerated.
func (g *Graph) AddClique(vs []int) {
	if len(vs) < 2 {
		return
	}
	mask := bitset.Get(g.n)
	for _, v := range vs {
		g.check(v)
		mask.Add(v)
	}
	for _, v := range vs {
		g.adj[v].Or(*mask)
		g.adj[v].Remove(v) // no self-loops
	}
	bitset.Put(mask)
	g.dirty()
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u].Has(v)
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	if g.csrOff != nil {
		return int(g.csrOff[v+1] - g.csrOff[v])
	}
	return g.adj[v].Count()
}

// Neighbors returns the neighbors of v in ascending order. The slice is
// freshly allocated and safe for the caller to retain.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	if g.csrOff != nil {
		row := g.csrAdj[g.csrOff[v]:g.csrOff[v+1]]
		out := make([]int, len(row))
		for i, u := range row {
			out[i] = int(u)
		}
		return out
	}
	return g.adj[v].AppendTo(make([]int, 0, g.adj[v].Count()))
}

// VisitNeighbors calls fn for every neighbor of v in ascending order. It
// avoids the allocation of Neighbors for hot paths; when a CSR snapshot is
// current (see Freeze) the scan runs over the packed neighbor array.
func (g *Graph) VisitNeighbors(v int, fn func(u int)) {
	g.check(v)
	if g.csrOff != nil {
		for _, u := range g.csrAdj[g.csrOff[v]:g.csrOff[v+1]] {
			fn(int(u))
		}
		return
	}
	g.adj[v].ForEach(fn)
}

// AdjRow returns v's adjacency bitset. The row is shared with the graph and
// must not be mutated; it stays valid until the next AddVertex.
func (g *Graph) AdjRow(v int) bitset.Set {
	g.check(v)
	return g.adj[v]
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v, row := range g.adj {
		c.adj[v].CopyFrom(row)
	}
	return c
}

// RemoveVertexEdges detaches v from all of its neighbors, leaving v present
// but isolated. Register allocators use this to take a spilled variable out
// of the interference structure without renumbering.
func (g *Graph) RemoveVertexEdges(v int) {
	g.check(v)
	g.adj[v].ForEach(func(u int) {
		g.adj[u].Remove(v)
	})
	g.adj[v].Clear()
	g.dirty()
}

// InducedSubgraph returns the subgraph induced by keep along with the
// mapping from new vertex IDs to original ones (newToOld). Vertices are
// renumbered 0..len(keep)-1 in the sorted order of keep.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	newToOld := append([]int(nil), keep...)
	sort.Ints(newToOld)
	oldToNew := make([]int, g.n)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	mask := bitset.Get(g.n)
	for i, v := range newToOld {
		g.check(v)
		oldToNew[v] = i
		mask.Add(v)
	}
	sub := New(len(newToOld))
	row := bitset.Get(g.n)
	for i, v := range newToOld {
		row.CopyFrom(g.adj[v])
		row.And(*mask)
		row.ForEach(func(u int) {
			if j := oldToNew[u]; j > i {
				sub.adj[i].Add(j)
				sub.adj[j].Add(i)
			}
		})
	}
	bitset.Put(row)
	bitset.Put(mask)
	return sub, newToOld
}

// IsStableSet reports whether no two vertices of s are adjacent.
func (g *Graph) IsStableSet(s []int) bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if g.HasEdge(s[i], s[j]) {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether every two distinct vertices of s are adjacent.
func (g *Graph) IsClique(s []int) bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if !g.HasEdge(s[i], s[j]) {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "n=<N> m=<M> edges=[(u,v) ...]" with edges in
// lexicographic order, mainly for test failure messages.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d edges=[", g.n, g.M())
	first := true
	for v := 0; v < g.n; v++ {
		g.adj[v].ForEach(func(u int) {
			if u > v {
				if !first {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "(%d,%d)", v, u)
				first = false
			}
		})
	}
	b.WriteByte(']')
	return b.String()
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Weighted bundles a graph with per-vertex non-negative weights (spill
// costs). The two slices are parallel: Weight[v] is the cost of vertex v.
type Weighted struct {
	*Graph
	Weight []float64
}

// NewWeighted wraps g with the given weights. It panics if the lengths
// disagree or any weight is negative.
func NewWeighted(g *Graph, weight []float64) *Weighted {
	if len(weight) != g.N() {
		panic(fmt.Sprintf("graph: %d weights for %d vertices", len(weight), g.N()))
	}
	for v, w := range weight {
		if w < 0 {
			panic(fmt.Sprintf("graph: negative weight %g on vertex %d", w, v))
		}
	}
	return &Weighted{Graph: g, Weight: weight}
}

// TotalWeight returns the sum of all vertex weights.
func (w *Weighted) TotalWeight() float64 {
	total := 0.0
	for _, x := range w.Weight {
		total += x
	}
	return total
}

// SetWeight returns the sum of weights over the vertex set s.
func (w *Weighted) SetWeight(s []int) float64 {
	total := 0.0
	for _, v := range s {
		total += w.Weight[v]
	}
	return total
}
