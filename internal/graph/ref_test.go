package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refGraph is the retained map-based reference implementation the bitset
// Graph replaced; the property test below cross-checks the two on random
// graphs and operation sequences.
type refGraph struct {
	n   int
	adj []map[int]bool
}

func newRef(n int) *refGraph {
	r := &refGraph{n: n, adj: make([]map[int]bool, n)}
	for i := range r.adj {
		r.adj[i] = make(map[int]bool)
	}
	return r
}

func (r *refGraph) addEdge(u, v int) {
	r.adj[u][v] = true
	r.adj[v][u] = true
}

func (r *refGraph) removeVertexEdges(v int) {
	for u := range r.adj[v] {
		delete(r.adj[u], v)
	}
	r.adj[v] = make(map[int]bool)
}

func (r *refGraph) neighbors(v int) []int {
	out := make([]int, 0, len(r.adj[v]))
	for u := range r.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

func (r *refGraph) m() int {
	total := 0
	for _, a := range r.adj {
		total += len(a)
	}
	return total / 2
}

func (r *refGraph) inducedSubgraph(keep []int) *refGraph {
	newToOld := append([]int(nil), keep...)
	sort.Ints(newToOld)
	oldToNew := make(map[int]int, len(newToOld))
	for i, v := range newToOld {
		oldToNew[v] = i
	}
	sub := newRef(len(newToOld))
	for i, v := range newToOld {
		for u := range r.adj[v] {
			if j, ok := oldToNew[u]; ok && j > i {
				sub.addEdge(i, j)
			}
		}
	}
	return sub
}

func checkEquivalent(t *testing.T, g *Graph, r *refGraph, label string) {
	t.Helper()
	if g.N() != r.n {
		t.Fatalf("%s: N = %d, ref %d", label, g.N(), r.n)
	}
	if g.M() != r.m() {
		t.Fatalf("%s: M = %d, ref %d", label, g.M(), r.m())
	}
	for v := 0; v < r.n; v++ {
		want := r.neighbors(v)
		if got := g.Neighbors(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Neighbors(%d) = %v, ref %v", label, v, got, want)
		}
		if got := g.Degree(v); got != len(want) {
			t.Fatalf("%s: Degree(%d) = %d, ref %d", label, v, got, len(want))
		}
		for u := 0; u < r.n; u++ {
			if u != v && g.HasEdge(v, u) != r.adj[v][u] {
				t.Fatalf("%s: HasEdge(%d,%d) = %v, ref %v", label, v, u, g.HasEdge(v, u), r.adj[v][u])
			}
		}
	}
}

// TestGraphMatchesReference drives random operation sequences through the
// bitset Graph and the map reference in lockstep and requires full
// observational equivalence, frozen or not, including induced subgraphs.
func TestGraphMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := New(n)
		r := newRef(n)
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0: // occasionally detach a vertex
				v := rng.Intn(n)
				g.RemoveVertexEdges(v)
				r.removeVertexEdges(v)
			case 1: // occasionally freeze; reads must stay identical
				g.Freeze()
			default:
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					g.AddEdge(u, v)
					r.addEdge(u, v)
				}
			}
		}
		checkEquivalent(t, g, r, "after ops")

		// Induced subgraph of a random vertex subset.
		var keep []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		sub, newToOld := g.InducedSubgraph(keep)
		refSub := r.inducedSubgraph(keep)
		sort.Ints(keep)
		if !reflect.DeepEqual(newToOld, keep) {
			t.Fatalf("seed %d: newToOld = %v, want %v", seed, newToOld, keep)
		}
		checkEquivalent(t, sub, refSub, "induced subgraph")

		// Stable/clique predicates agree on random sets.
		for trial := 0; trial < 20; trial++ {
			var s []int
			for v := 0; v < n; v++ {
				if rng.Intn(6) == 0 {
					s = append(s, v)
				}
			}
			stable, clique := true, true
			for i := 0; i < len(s); i++ {
				for j := i + 1; j < len(s); j++ {
					if r.adj[s[i]][s[j]] {
						stable = false
					} else {
						clique = false
					}
				}
			}
			if g.IsStableSet(s) != stable {
				t.Fatalf("seed %d: IsStableSet(%v) mismatch", seed, s)
			}
			if g.IsClique(s) != clique {
				t.Fatalf("seed %d: IsClique(%v) mismatch", seed, s)
			}
		}
	}
}

// TestAddVertexGrowsUniverse checks row growth across the word boundary:
// vertices added past the original universe must be usable immediately.
func TestAddVertexGrowsUniverse(t *testing.T) {
	g := New(63)
	g.AddEdge(0, 62)
	for i := 0; i < 70; i++ {
		v := g.AddVertex()
		g.AddEdge(0, v)
	}
	if g.N() != 133 {
		t.Fatalf("N = %d, want 133", g.N())
	}
	if g.Degree(0) != 71 {
		t.Fatalf("Degree(0) = %d, want 71", g.Degree(0))
	}
	if !g.HasEdge(0, 132) || !g.HasEdge(132, 0) {
		t.Fatal("edge to grown vertex missing")
	}
}
