package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// paperFig4Graph builds the chordal graph of the paper's Figure 4/5
// reconstruction: vertices a..g = 0..6.
//
//	a-d a-f d-f e-f d-e c-d c-e e-g c-g b-c b-g
const (
	va = iota
	vb
	vc
	vd
	ve
	vf
	vg
)

func paperFig4Graph() *Graph {
	g := New(7)
	for _, e := range [][2]int{
		{va, vd}, {va, vf}, {vd, vf}, {ve, vf}, {vd, ve},
		{vc, vd}, {vc, ve}, {ve, vg}, {vc, vg}, {vb, vc}, {vb, vg},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestPaperGraphIsChordal(t *testing.T) {
	g := paperFig4Graph()
	if !g.IsChordal() {
		t.Fatal("paper graph must be chordal")
	}
	// The paper's PEO [a, f, d, e, b, g, c] must be accepted.
	if !g.IsPerfectEliminationOrder([]int{va, vf, vd, ve, vb, vg, vc}) {
		t.Fatal("paper PEO rejected")
	}
}

func TestNonChordalCycle(t *testing.T) {
	// C4 is the canonical non-chordal graph.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	if g.IsChordal() {
		t.Fatal("C4 reported chordal")
	}
	// Adding a chord makes it chordal.
	g.AddEdge(0, 2)
	if !g.IsChordal() {
		t.Fatal("chorded C4 reported non-chordal")
	}
}

func TestIsPEORejectsBadOrders(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.IsPerfectEliminationOrder([]int{0, 1}) {
		t.Fatal("short order accepted")
	}
	if g.IsPerfectEliminationOrder([]int{0, 0, 1}) {
		t.Fatal("duplicate order accepted")
	}
	// Path 0-1-2: eliminating 1 first requires {0,2} to be a clique.
	if g.IsPerfectEliminationOrder([]int{1, 0, 2}) {
		t.Fatal("non-simplicial first vertex accepted")
	}
	if !g.IsPerfectEliminationOrder([]int{0, 1, 2}) {
		t.Fatal("valid PEO rejected")
	}
}

func TestMaximalCliquesPaperGraph(t *testing.T) {
	g := paperFig4Graph()
	order := g.PerfectEliminationOrder()
	cliques := g.MaximalCliques(order)
	want := map[string]bool{
		"[0 3 5]": true, // a d f
		"[3 4 5]": true, // d e f
		"[2 3 4]": true, // c d e
		"[2 4 6]": true, // c e g
		"[1 2 6]": true, // b c g
	}
	if len(cliques) != len(want) {
		t.Fatalf("got %d cliques %v, want %d", len(cliques), cliques, len(want))
	}
	for _, c := range cliques {
		if !want[fmtInts(c)] {
			t.Errorf("unexpected clique %v", c)
		}
		if !g.IsClique(c) {
			t.Errorf("non-clique %v returned", c)
		}
	}
}

func fmtInts(s []int) string {
	out := "["
	for i, v := range s {
		if i > 0 {
			out += " "
		}
		out += string(rune('0' + v))
	}
	return out + "]"
}

func TestCliqueNumber(t *testing.T) {
	g := paperFig4Graph()
	if got := g.CliqueNumber(g.PerfectEliminationOrder()); got != 3 {
		t.Fatalf("CliqueNumber = %d, want 3", got)
	}
	empty := New(3)
	if got := empty.CliqueNumber(empty.PerfectEliminationOrder()); got != 1 {
		t.Fatalf("edgeless CliqueNumber = %d, want 1", got)
	}
}

func TestGreedyColorPEOPaperGraph(t *testing.T) {
	g := paperFig4Graph()
	order := g.PerfectEliminationOrder()
	colors := g.GreedyColorPEO(order)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				t.Fatalf("adjacent %d and %d share colour %d", v, u, colors[v])
			}
		}
	}
	maxc := 0
	for _, c := range colors {
		if c > maxc {
			maxc = c
		}
	}
	if maxc+1 != 3 {
		t.Fatalf("used %d colours, want ω = 3", maxc+1)
	}
}

func TestColorableWith(t *testing.T) {
	g := paperFig4Graph()
	all := make([]bool, g.N())
	for i := range all {
		all[i] = true
	}
	if g.ColorableWith(all, 2) {
		t.Fatal("ω=3 graph reported 2-colourable")
	}
	if !g.ColorableWith(all, 3) {
		t.Fatal("chordal graph not colourable with ω colours")
	}
	// Dropping d and g leaves the path b-c-e-f plus edge a-f: 2-colourable.
	sub := append([]bool(nil), all...)
	sub[vd] = false
	sub[vg] = false
	if !g.ColorableWith(sub, 2) {
		t.Fatal("remaining graph should be 2-colourable")
	}
}

func TestPropertyIntervalGraphsAreChordal(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomIntervalGraph(r, 2+r.Intn(30))
		return g.IsChordal()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPEOOrderIsPermutation(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 1+r.Intn(30), 0.3)
		order := g.PerfectEliminationOrder()
		if len(order) != g.N() {
			return false
		}
		seen := make([]bool, g.N())
		for _, v := range order {
			if v < 0 || v >= g.N() || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaximalCliquesCoverChordalGraph(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomIntervalGraph(r, 2+r.Intn(25))
		order := g.PerfectEliminationOrder()
		if !g.IsPerfectEliminationOrder(order) {
			return false
		}
		cliques := g.MaximalCliques(order)
		// Every returned set is a clique and truly maximal.
		for _, c := range cliques {
			if !g.IsClique(c) {
				return false
			}
			in := make(map[int]bool, len(c))
			for _, v := range c {
				in[v] = true
			}
			for v := 0; v < g.N(); v++ {
				if in[v] {
					continue
				}
				extends := true
				for _, u := range c {
					if !g.HasEdge(u, v) {
						extends = false
						break
					}
				}
				if extends {
					return false // c was not maximal
				}
			}
		}
		// Every edge and vertex is covered by some clique.
		covered := make([]bool, g.N())
		for _, c := range cliques {
			for _, v := range c {
				covered[v] = true
			}
		}
		for v := 0; v < g.N(); v++ {
			if !covered[v] {
				return false
			}
		}
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				if u < v {
					continue
				}
				found := false
				for _, c := range cliques {
					has := 0
					for _, x := range c {
						if x == u || x == v {
							has++
						}
					}
					if has == 2 {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGreedyColoringOptimalOnChordal(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomIntervalGraph(r, 2+r.Intn(25))
		order := g.PerfectEliminationOrder()
		colors := g.GreedyColorPEO(order)
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] {
					return false
				}
			}
		}
		maxc := 0
		for _, c := range colors {
			if c > maxc {
				maxc = c
			}
		}
		return maxc+1 == g.CliqueNumber(order)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPEODeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := randomIntervalGraph(r, 40)
	first := g.PerfectEliminationOrder()
	for i := 0; i < 5; i++ {
		again := g.PerfectEliminationOrder()
		if !equalInts(first, again) {
			t.Fatalf("PEO differs across runs: %v vs %v", first, again)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaximalCliquesSortedOutput(t *testing.T) {
	g := paperFig4Graph()
	for _, c := range g.MaximalCliques(g.PerfectEliminationOrder()) {
		if !sort.IntsAreSorted(c) {
			t.Fatalf("clique %v not sorted", c)
		}
	}
}
