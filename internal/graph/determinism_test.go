package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildRandomGraph returns an identical random graph for a given seed; two
// calls with the same seed must produce byte-identical structures.
func buildRandomGraph(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// TestDeterministicEnumeration is the regression test for the package's
// stable-enumeration promise: two independently built copies of the same
// graph must agree exactly on neighbor order, PEO, maximal cliques, greedy
// colouring, and the clique tree — frozen (CSR) or not.
func TestDeterministicEnumeration(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := buildRandomGraph(seed, 120, 0.08)
		b := buildRandomGraph(seed, 120, 0.08)
		b.Freeze() // one CSR-frozen, one bitset-backed: same enumeration

		for v := 0; v < a.N(); v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			if !reflect.DeepEqual(na, nb) {
				t.Fatalf("seed %d: Neighbors(%d) differ: %v vs %v", seed, v, na, nb)
			}
			var va, vb []int
			a.VisitNeighbors(v, func(u int) { va = append(va, u) })
			b.VisitNeighbors(v, func(u int) { vb = append(vb, u) })
			if !reflect.DeepEqual(va, vb) {
				t.Fatalf("seed %d: VisitNeighbors(%d) differ: %v vs %v", seed, v, va, vb)
			}
			for i := 1; i < len(va); i++ {
				if va[i-1] >= va[i] {
					t.Fatalf("seed %d: VisitNeighbors(%d) not ascending: %v", seed, v, va)
				}
			}
		}

		ordA, ordB := a.PerfectEliminationOrder(), b.PerfectEliminationOrder()
		if !reflect.DeepEqual(ordA, ordB) {
			t.Fatalf("seed %d: PEO differs between runs", seed)
		}
		if !reflect.DeepEqual(a.MaximalCliques(ordA), b.MaximalCliques(ordB)) {
			t.Fatalf("seed %d: MaximalCliques differ between runs", seed)
		}
		if !reflect.DeepEqual(a.GreedyColorPEO(ordA), b.GreedyColorPEO(ordB)) {
			t.Fatalf("seed %d: GreedyColorPEO differs between runs", seed)
		}
		ta, tb := a.BuildCliqueTree(ordA), b.BuildCliqueTree(ordB)
		if !reflect.DeepEqual(ta.Cliques, tb.Cliques) ||
			!reflect.DeepEqual(ta.Parent, tb.Parent) ||
			!reflect.DeepEqual(ta.Separator, tb.Separator) {
			t.Fatalf("seed %d: clique trees differ between runs", seed)
		}
	}
}
