package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCliqueTreePaperGraph(t *testing.T) {
	g := paperFig4Graph()
	order := g.PerfectEliminationOrder()
	tree := g.BuildCliqueTree(order)
	if len(tree.Cliques) != 5 {
		t.Fatalf("clique count = %d, want 5", len(tree.Cliques))
	}
	if ok, why := tree.Validate(g); !ok {
		t.Fatalf("invalid clique tree: %s", why)
	}
	if tree.TreeWidth() != 2 {
		t.Fatalf("treewidth = %d, want 2 (ω−1)", tree.TreeWidth())
	}
	if len(tree.Roots()) != 1 {
		t.Fatalf("roots = %v, want exactly one for a connected graph", tree.Roots())
	}
}

func TestCliqueTreeDisconnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1) // component 1
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(2, 4) // component 2: triangle
	tree := g.BuildCliqueTree(g.PerfectEliminationOrder())
	if ok, why := tree.Validate(g); !ok {
		t.Fatalf("invalid clique tree: %s", why)
	}
	if len(tree.Roots()) != 2 {
		t.Fatalf("roots = %v, want 2 (one per component)", tree.Roots())
	}
}

func TestCliqueTreeSingleClique(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	tree := g.BuildCliqueTree(g.PerfectEliminationOrder())
	if len(tree.Cliques) != 1 || tree.Parent[0] != -1 {
		t.Fatalf("single clique tree wrong: %+v", tree)
	}
}

func TestPropertyCliqueTreeValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomIntervalGraph(r, 2+r.Intn(30))
		order := g.PerfectEliminationOrder()
		if !g.IsPerfectEliminationOrder(order) {
			return false
		}
		tree := g.BuildCliqueTree(order)
		ok, _ := tree.Validate(g)
		if !ok {
			return false
		}
		// Treewidth+1 equals the clique number.
		return tree.TreeWidth()+1 == g.CliqueNumber(order)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
