package graph

import "sort"

// PerfectEliminationOrder computes a vertex order by Maximum Cardinality
// Search (Tarjan & Yannakakis). If the graph is chordal the returned order is
// a perfect elimination order; callers that need certainty should follow up
// with IsPerfectEliminationOrder or use IsChordal.
//
// The order is returned elimination-first: order[0] is eliminated first, and
// each order[i] is simplicial in the subgraph induced by order[i:] when the
// graph is chordal.
func (g *Graph) PerfectEliminationOrder() []int {
	n := g.n
	// MCS produces a reverse perfect elimination order: repeatedly pick the
	// unvisited vertex with the most visited neighbors.
	weight := make([]int, n)
	visited := make([]bool, n)
	reverse := make([]int, 0, n)

	// Bucket queue over weights for O(V+E). Buckets may hold stale entries
	// for vertices whose weight has since increased; pops skip them.
	buckets := make([][]int, n+1)
	buckets[0] = make([]int, n)
	for v := 0; v < n; v++ {
		buckets[0][v] = v
	}
	maxW := 0
	for len(reverse) < n {
		for maxW > 0 && len(buckets[maxW]) == 0 {
			maxW--
		}
		// Pop an unvisited vertex of maximal weight. Buckets may hold stale
		// entries for visited vertices; skip them.
		var v int
		for {
			b := buckets[maxW]
			if len(b) == 0 {
				maxW--
				continue
			}
			v = b[len(b)-1]
			buckets[maxW] = b[:len(b)-1]
			if !visited[v] && weight[v] == maxW {
				break
			}
		}
		visited[v] = true
		reverse = append(reverse, v)
		// Sorted neighbor visit keeps bucket contents, and therefore the
		// resulting order, deterministic across runs.
		for _, u := range g.Neighbors(v) {
			if visited[u] {
				continue
			}
			weight[u]++
			w := weight[u]
			buckets[w] = append(buckets[w], u)
			if w > maxW {
				maxW = w
			}
		}
	}
	// reverse[0] is eliminated last; flip to elimination-first order.
	order := make([]int, n)
	for i, v := range reverse {
		order[n-1-i] = v
	}
	return order
}

// IsPerfectEliminationOrder reports whether order is a perfect elimination
// order of g: every vertex's later neighbors (in elimination order) form a
// clique. It runs the standard O(V+E) Rose–Tarjan–Lueker check.
func (g *Graph) IsPerfectEliminationOrder(order []int) bool {
	n := g.n
	if len(order) != n {
		return false
	}
	index := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
		index[v] = i
	}
	// For each v, let parent(v) be its earliest later-neighbor; it suffices
	// to check that v's other later-neighbors are adjacent to parent(v).
	for i, v := range order {
		later := make([]int, 0, len(g.adj[v]))
		for u := range g.adj[v] {
			if index[u] > i {
				later = append(later, u)
			}
		}
		if len(later) <= 1 {
			continue
		}
		parent := later[0]
		for _, u := range later[1:] {
			if index[u] < index[parent] {
				parent = u
			}
		}
		for _, u := range later {
			if u != parent && !g.adj[parent][u] {
				return false
			}
		}
	}
	return true
}

// IsChordal reports whether g is a chordal (triangulated) graph.
func (g *Graph) IsChordal() bool {
	return g.IsPerfectEliminationOrder(g.PerfectEliminationOrder())
}

// MaximalCliques enumerates the maximal cliques of a chordal graph given a
// perfect elimination order, in O(V+E). Each clique is sorted ascending and
// the clique list is returned in elimination order of its defining vertex.
//
// For a chordal interference graph of a strict-SSA program these cliques
// correspond exactly to the live sets at program points (Hack et al.), which
// is the register-pressure view layered allocation exploits.
//
// The result is undefined (possibly non-maximal cliques) if order is not a
// perfect elimination order of g.
func (g *Graph) MaximalCliques(order []int) [][]int {
	n := g.n
	index := make([]int, n)
	for i, v := range order {
		index[v] = i
	}
	// Candidate clique for v: {v} ∪ later-neighbors(v). Every maximal clique
	// of a chordal graph arises this way; a candidate C(v) can only be
	// properly contained in C(u) where u is a neighbor of v eliminated
	// earlier (any containing candidate must include v, and candidates of
	// later vertices contain only later vertices). We filter non-maximal
	// candidates with a direct subset test against those candidates.
	cand := make([][]int, n)
	candSet := make([]map[int]bool, n)
	for i, v := range order {
		c := []int{v}
		set := map[int]bool{v: true}
		for u := range g.adj[v] {
			if index[u] > i {
				c = append(c, u)
				set[u] = true
			}
		}
		sort.Ints(c)
		cand[i] = c
		candSet[i] = set
	}
	var cliques [][]int
	for i, v := range order {
		c := cand[i]
		maximal := true
		for u := range g.adj[v] {
			j := index[u]
			if j >= i || len(cand[j]) <= len(c) {
				continue
			}
			contained := true
			for _, w := range c {
				if !candSet[j][w] {
					contained = false
					break
				}
			}
			if contained {
				maximal = false
				break
			}
		}
		if maximal {
			cliques = append(cliques, c)
		}
	}
	return cliques
}

// CliqueNumber returns the size of a maximum clique of a chordal graph,
// computed from a perfect elimination order. For interference graphs this is
// MaxLive. Returns 0 for the empty graph.
func (g *Graph) CliqueNumber(order []int) int {
	n := g.n
	index := make([]int, n)
	for i, v := range order {
		index[v] = i
	}
	best := 0
	if n > 0 {
		best = 1
	}
	for i, v := range order {
		later := 1
		for u := range g.adj[v] {
			if index[u] > i {
				later++
			}
		}
		if later > best {
			best = later
		}
	}
	return best
}

// GreedyColorPEO colours a chordal graph optimally by scanning the reverse of
// a perfect elimination order and giving each vertex the smallest colour not
// used by its already-coloured neighbors. The returned slice maps vertex to
// colour in [0, ω). This is the assignment ("tree-scan") half of decoupled
// register allocation.
func (g *Graph) GreedyColorPEO(order []int) []int {
	n := g.n
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		used := make(map[int]bool, len(g.adj[v]))
		for u := range g.adj[v] {
			if color[u] >= 0 {
				used[color[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[v] = c
	}
	return color
}

// ColorableWith reports whether the subgraph induced by the allocated set is
// colourable with r colours, using the PEO greedy colouring (exact on
// chordal graphs). allocated is given as a membership predicate over all
// vertices of g.
func (g *Graph) ColorableWith(allocated []bool, r int) bool {
	keep := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if allocated[v] {
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	order := sub.PerfectEliminationOrder()
	if !sub.IsPerfectEliminationOrder(order) {
		// Non-chordal subgraph: fall back to greedy bound; a greedy
		// success is still a proof of colourability.
		colors := sub.GreedyColorPEO(order)
		maxc := -1
		for _, c := range colors {
			if c > maxc {
				maxc = c
			}
		}
		return maxc+1 <= r
	}
	return sub.CliqueNumber(order) <= r
}
