package graph

// PerfectEliminationOrder computes a vertex order by Maximum Cardinality
// Search (Tarjan & Yannakakis). If the graph is chordal the returned order is
// a perfect elimination order; callers that need certainty should follow up
// with IsPerfectEliminationOrder or use IsChordal.
//
// The order is returned elimination-first: order[0] is eliminated first, and
// each order[i] is simplicial in the subgraph induced by order[i:] when the
// graph is chordal.
func (g *Graph) PerfectEliminationOrder() []int {
	n := g.n
	// MCS produces a reverse perfect elimination order: repeatedly pick the
	// unvisited vertex with the most visited neighbors.
	//
	// The bucket queue is a set of intrusive doubly-linked lists, one per
	// weight, over three flat arrays — no per-bucket slice churn, O(1)
	// promotion of a vertex to the next weight. Ascending neighbor visits
	// plus deterministic list surgery keep the order reproducible.
	weight := make([]int, n)
	visited := make([]bool, n)
	head := make([]int, n+1) // head[w]: first vertex of the weight-w list
	next := make([]int, n)
	prev := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	// Seed the weight-0 list in ascending vertex order.
	for v := n - 1; v >= 0; v-- {
		next[v] = head[0]
		prev[v] = -1
		if head[0] != -1 {
			prev[head[0]] = v
		}
		head[0] = v
	}
	unlink := func(v int) {
		if prev[v] != -1 {
			next[prev[v]] = next[v]
		} else {
			head[weight[v]] = next[v]
		}
		if next[v] != -1 {
			prev[next[v]] = prev[v]
		}
	}
	maxW := 0
	reverse := make([]int, 0, n)
	for len(reverse) < n {
		for maxW > 0 && head[maxW] == -1 {
			maxW--
		}
		v := head[maxW]
		unlink(v)
		visited[v] = true
		reverse = append(reverse, v)
		g.VisitNeighbors(v, func(u int) {
			if visited[u] {
				return
			}
			unlink(u)
			weight[u]++
			w := weight[u]
			next[u] = head[w]
			prev[u] = -1
			if head[w] != -1 {
				prev[head[w]] = u
			}
			head[w] = u
			if w > maxW {
				maxW = w
			}
		})
	}
	// reverse[0] is eliminated last; flip to elimination-first order.
	order := make([]int, n)
	for i, v := range reverse {
		order[n-1-i] = v
	}
	return order
}

// IsPerfectEliminationOrder reports whether order is a perfect elimination
// order of g: every vertex's later neighbors (in elimination order) form a
// clique. It runs the standard O(V+E) Rose–Tarjan–Lueker check.
func (g *Graph) IsPerfectEliminationOrder(order []int) bool {
	n := g.n
	if len(order) != n {
		return false
	}
	index := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
		index[v] = i
	}
	// For each v, let parent(v) be its earliest later-neighbor; it suffices
	// to check that v's other later-neighbors are adjacent to parent(v).
	var later []int
	for i, v := range order {
		later = later[:0]
		g.VisitNeighbors(v, func(u int) {
			if index[u] > i {
				later = append(later, u)
			}
		})
		if len(later) <= 1 {
			continue
		}
		parent := later[0]
		for _, u := range later[1:] {
			if index[u] < index[parent] {
				parent = u
			}
		}
		ok := true
		for _, u := range later {
			if u != parent && !g.adj[parent].Has(u) {
				ok = false
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// IsChordal reports whether g is a chordal (triangulated) graph.
func (g *Graph) IsChordal() bool {
	return g.IsPerfectEliminationOrder(g.PerfectEliminationOrder())
}

// MaximalCliques enumerates the maximal cliques of a chordal graph given a
// perfect elimination order, in O(V+E). Each clique is sorted ascending and
// the clique list is returned in elimination order of its defining vertex.
//
// For a chordal interference graph of a strict-SSA program these cliques
// correspond exactly to the live sets at program points (Hack et al.), which
// is the register-pressure view layered allocation exploits.
//
// The result is undefined (possibly non-maximal cliques) if order is not a
// perfect elimination order of g.
func (g *Graph) MaximalCliques(order []int) [][]int {
	n := g.n
	index := make([]int, n)
	for i, v := range order {
		index[v] = i
	}
	// Candidate clique for v: {v} ∪ later-neighbors(v). Every maximal clique
	// of a chordal graph arises this way; a candidate C(v) can only be
	// properly contained in C(u) where u is a neighbor of v eliminated
	// earlier (any containing candidate must include v, and candidates of
	// later vertices contain only later vertices). We filter non-maximal
	// candidates with a sorted-subset test against those candidates.
	// Candidate sizes first, then one backing slab for all candidates: the
	// total is n + Σ|later-neighbors| ≤ n + 2m, so two passes beat per-vertex
	// slice growth by orders of magnitude in allocations.
	sizes := make([]int, n)
	total := 0
	for i, v := range order {
		cnt := 1
		g.VisitNeighbors(v, func(u int) {
			if index[u] > i {
				cnt++
			}
		})
		sizes[i] = cnt
		total += cnt
	}
	slab := make([]int, total)
	cand := make([][]int, n)
	offset := 0
	for i, v := range order {
		// Ascending neighbor iteration with v spliced in keeps each
		// candidate sorted without a sort call.
		c := slab[offset : offset : offset+sizes[i]]
		offset += sizes[i]
		placed := false
		g.VisitNeighbors(v, func(u int) {
			if index[u] <= i {
				return
			}
			if !placed && u > v {
				c = append(c, v)
				placed = true
			}
			c = append(c, u)
		})
		if !placed {
			c = append(c, v)
		}
		cand[i] = c
	}
	var cliques [][]int
	for i, v := range order {
		c := cand[i]
		maximal := true
		g.VisitNeighbors(v, func(u int) {
			if !maximal {
				return
			}
			j := index[u]
			if j >= i || len(cand[j]) <= len(c) {
				return
			}
			if sortedSubset(c, cand[j]) {
				maximal = false
			}
		})
		if maximal {
			cliques = append(cliques, c)
		}
	}
	return cliques
}

// sortedSubset reports whether sorted slice a is a subset of sorted slice b.
func sortedSubset(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// CliqueNumber returns the size of a maximum clique of a chordal graph,
// computed from a perfect elimination order. For interference graphs this is
// MaxLive. Returns 0 for the empty graph.
func (g *Graph) CliqueNumber(order []int) int {
	n := g.n
	index := make([]int, n)
	for i, v := range order {
		index[v] = i
	}
	best := 0
	if n > 0 {
		best = 1
	}
	for i, v := range order {
		later := 1
		g.VisitNeighbors(v, func(u int) {
			if index[u] > i {
				later++
			}
		})
		if later > best {
			best = later
		}
	}
	return best
}

// GreedyColorPEO colours a chordal graph optimally by scanning the reverse of
// a perfect elimination order and giving each vertex the smallest colour not
// used by its already-coloured neighbors. The returned slice maps vertex to
// colour in [0, ω). This is the assignment ("tree-scan") half of decoupled
// register allocation.
func (g *Graph) GreedyColorPEO(order []int) []int {
	n := g.n
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	usedAt := NewColorScratch(n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		color[v] = g.SmallestFreeColor(v, color, usedAt, i)
	}
	return color
}

// NewColorScratch allocates the stamp array SmallestFreeColor needs for a
// graph of n vertices, initialized so any stamp ≥ 0 is fresh.
func NewColorScratch(n int) []int {
	usedAt := make([]int, n+1)
	for i := range usedAt {
		usedAt[i] = -1
	}
	return usedAt
}

// SmallestFreeColor returns the smallest colour not used by any coloured
// neighbor of v. color maps vertex → colour with -1 for uncoloured; usedAt
// comes from NewColorScratch and is reused across calls — stamp must be a
// distinct non-negative value per call (the stamp trick avoids clearing the
// array between vertices).
func (g *Graph) SmallestFreeColor(v int, color, usedAt []int, stamp int) int {
	g.VisitNeighbors(v, func(u int) {
		if c := color[u]; c >= 0 {
			usedAt[c] = stamp
		}
	})
	c := 0
	for usedAt[c] == stamp {
		c++
	}
	return c
}

// ColorableWith reports whether the subgraph induced by the allocated set is
// colourable with r colours, using the PEO greedy colouring (exact on
// chordal graphs). allocated is given as a membership predicate over all
// vertices of g.
func (g *Graph) ColorableWith(allocated []bool, r int) bool {
	keep := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if allocated[v] {
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	order := sub.PerfectEliminationOrder()
	if !sub.IsPerfectEliminationOrder(order) {
		// Non-chordal subgraph: fall back to greedy bound; a greedy
		// success is still a proof of colourability.
		colors := sub.GreedyColorPEO(order)
		maxc := -1
		for _, c := range colors {
			if c > maxc {
				maxc = c
			}
		}
		return maxc+1 <= r
	}
	return sub.CliqueNumber(order) <= r
}
