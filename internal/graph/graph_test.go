package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has N=%d M=%d", g.N(), g.M())
	}
	if !g.IsChordal() {
		t.Fatal("empty graph must be chordal")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate is a no-op
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing or not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge (0,2)")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: deg(1)=%d deg(3)=%d", g.Degree(1), g.Degree(3))
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestAddVertex(t *testing.T) {
	g := New(1)
	v := g.AddVertex()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddVertex = %d, N = %d", v, g.N())
	}
	g.AddEdge(0, v)
	if !g.HasEdge(0, 1) {
		t.Fatal("edge to fresh vertex missing")
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone shares edge storage with original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost an edge")
	}
}

func TestRemoveVertexEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.RemoveVertexEdges(0)
	if g.Degree(0) != 0 {
		t.Fatalf("vertex 0 still has degree %d", g.Degree(0))
	}
	if g.HasEdge(1, 0) || g.HasEdge(2, 0) {
		t.Fatal("neighbors still see removed vertex")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("unrelated edge removed")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	sub, newToOld := g.InducedSubgraph([]int{4, 1, 3})
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	// newToOld sorted: [1, 3, 4]
	if newToOld[0] != 1 || newToOld[1] != 3 || newToOld[2] != 4 {
		t.Fatalf("newToOld = %v", newToOld)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatalf("subgraph edges wrong: %v", sub)
	}
}

func TestStableAndClique(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	if !g.IsClique([]int{0, 1, 2}) {
		t.Fatal("triangle not recognized as clique")
	}
	if g.IsClique([]int{0, 1, 3}) {
		t.Fatal("non-clique accepted")
	}
	if !g.IsStableSet([]int{0, 3}) {
		t.Fatal("stable set rejected")
	}
	if g.IsStableSet([]int{0, 1}) {
		t.Fatal("adjacent pair accepted as stable")
	}
	if !g.IsStableSet(nil) || !g.IsClique(nil) {
		t.Fatal("empty set must be both stable and a clique")
	}
}

func TestWeightedBasics(t *testing.T) {
	g := New(3)
	w := NewWeighted(g, []float64{1, 2, 3})
	if w.TotalWeight() != 6 {
		t.Fatalf("TotalWeight = %g", w.TotalWeight())
	}
	if w.SetWeight([]int{0, 2}) != 4 {
		t.Fatalf("SetWeight = %g", w.SetWeight([]int{0, 2}))
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { NewWeighted(New(2), []float64{1}) },
		"negative weight": func() { NewWeighted(New(1), []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// randomGraph builds an Erdős–Rényi graph for property tests.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// randomIntervalGraph builds an interval graph (always chordal) from random
// intervals.
func randomIntervalGraph(rng *rand.Rand, n int) *Graph {
	type iv struct{ lo, hi int }
	ivs := make([]iv, n)
	for i := range ivs {
		a, b := rng.Intn(4*n), rng.Intn(4*n)
		if a > b {
			a, b = b, a
		}
		ivs[i] = iv{a, b}
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestPropertySubgraphPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := randomGraph(r, n, 0.3)
		var keep []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		sub, newToOld := g.InducedSubgraph(keep)
		for i := 0; i < sub.N(); i++ {
			for j := i + 1; j < sub.N(); j++ {
				if sub.HasEdge(i, j) != g.HasEdge(newToOld[i], newToOld[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEdgeCountMatchesDegreeSum(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 1+r.Intn(25), 0.4)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
