package graph

import (
	"sort"

	"repro/internal/bitset"
)

// CliqueTree is a clique tree (junction tree) of a chordal graph: one node
// per maximal clique, connected so that for every vertex v the cliques
// containing v induce a subtree. Register-allocation-wise, the clique tree
// is the program's pressure skeleton: each node is a program region's live
// set, and edges share the values that flow between adjacent regions.
type CliqueTree struct {
	// Cliques are the maximal cliques (sorted vertex sets).
	Cliques [][]int
	// Parent[i] is the index of clique i's parent (-1 for roots; the tree
	// may be a forest when the graph is disconnected).
	Parent []int
	// Separator[i] is the intersection of clique i with its parent (nil
	// for roots).
	Separator [][]int
}

// BuildCliqueTree constructs a clique tree of a chordal graph from a perfect
// elimination order, as a maximum-weight spanning forest of the clique graph
// (edges weighted by intersection size) — the classical characterization of
// clique trees for chordal graphs. Separators are the intersections with the
// parent clique.
//
// Results are undefined for non-chordal graphs; callers should check
// IsChordal first.
func (g *Graph) BuildCliqueTree(order []int) *CliqueTree {
	cliques := g.MaximalCliques(order)
	k := len(cliques)
	t := &CliqueTree{
		Cliques:   cliques,
		Parent:    make([]int, k),
		Separator: make([][]int, k),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	if k == 0 {
		return t
	}
	member := make([]bitset.Set, k)
	for i, c := range cliques {
		member[i] = bitset.New(g.n)
		for _, v := range c {
			member[i].Add(v)
		}
	}
	overlap := func(i, j int) int {
		return member[i].IntersectionCount(member[j])
	}
	// Prim's algorithm for a maximum-weight spanning forest, restarted per
	// component; zero-weight edges never connect (disjoint cliques stay in
	// separate trees).
	inTree := make([]bool, k)
	bestW := make([]int, k)  // best connection weight seen so far
	bestTo := make([]int, k) // the tree node providing it
	for i := range bestTo {
		bestTo[i] = -1
	}
	for start := 0; start < k; start++ {
		if inTree[start] {
			continue
		}
		inTree[start] = true // a new root
		for j := 0; j < k; j++ {
			if !inTree[j] {
				if w := overlap(start, j); w > bestW[j] {
					bestW[j], bestTo[j] = w, start
				}
			}
		}
		for {
			next, nw := -1, 0
			for j := 0; j < k; j++ {
				if !inTree[j] && bestW[j] > nw {
					next, nw = j, bestW[j]
				}
			}
			if next < 0 {
				break // component exhausted
			}
			inTree[next] = true
			t.Parent[next] = bestTo[next]
			var sep []int
			for _, v := range cliques[next] {
				if member[bestTo[next]].Has(v) {
					sep = append(sep, v)
				}
			}
			sort.Ints(sep)
			t.Separator[next] = sep
			for j := 0; j < k; j++ {
				if !inTree[j] {
					if w := overlap(next, j); w > bestW[j] {
						bestW[j], bestTo[j] = w, next
					}
				}
			}
		}
	}
	return t
}

// Validate checks the clique-tree invariants: every separator is shared with
// the parent, and every vertex's cliques induce a connected subtree (the
// running-intersection property). It returns false with a description when
// an invariant fails.
func (t *CliqueTree) Validate(g *Graph) (bool, string) {
	for i, sep := range t.Separator {
		if t.Parent[i] == -1 {
			if sep != nil {
				return false, "root with a separator"
			}
			continue
		}
		parent := t.Cliques[t.Parent[i]]
		pm := make(map[int]bool, len(parent))
		for _, v := range parent {
			pm[v] = true
		}
		for _, v := range sep {
			if !pm[v] {
				return false, "separator vertex missing from parent"
			}
		}
	}
	// Running intersection: for each vertex, its cliques form a subtree.
	cliquesOf := make(map[int][]int)
	for i, c := range t.Cliques {
		for _, v := range c {
			cliquesOf[v] = append(cliquesOf[v], i)
		}
	}
	for _, nodes := range cliquesOf {
		if len(nodes) <= 1 {
			continue
		}
		// Walk up from each node; the subtree is connected iff all nodes
		// reach a common "highest" node through nodes that also contain v.
		in := make(map[int]bool, len(nodes))
		for _, n := range nodes {
			in[n] = true
		}
		connected := 0
		for _, n := range nodes {
			p := t.Parent[n]
			if p != -1 && in[p] {
				connected++
			}
		}
		// A tree on k nodes has k-1 edges; the induced subgraph must too.
		if connected != len(nodes)-1 {
			return false, "vertex cliques do not induce a subtree"
		}
	}
	return true, ""
}

// TreeWidth returns the width of the clique tree (largest clique size minus
// one); for an interference graph this is MaxLive − 1.
func (t *CliqueTree) TreeWidth() int {
	w := 0
	for _, c := range t.Cliques {
		if len(c) > w {
			w = len(c)
		}
	}
	return w - 1
}

// Roots lists the tree roots (one per connected component of the graph's
// clique structure).
func (t *CliqueTree) Roots() []int {
	var roots []int
	for i, p := range t.Parent {
		if p == -1 {
			roots = append(roots, i)
		}
	}
	sort.Ints(roots)
	return roots
}
