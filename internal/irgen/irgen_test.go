package irgen

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// TestManySeedsValid is the generator's core property: every seed yields a
// function that passes ir.Validate (Generate panics otherwise) and that the
// reference interpreter can run without dynamic errors.
func TestManySeedsValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		f := FromSeed(seed)
		if _, err := interp.Run(f, []int64{1, 2, 3, 4}, 2000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, f)
		}
	}
}

// TestDeterminism: the same seed must yield the identical function.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d nondeterministic:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestStructuralCoverage checks the generator actually produces the shapes
// it exists to produce, across a window of seeds: SSA and non-SSA output,
// phis, memory ops, calls, critical edges, self-loops, unreachable blocks.
func TestStructuralCoverage(t *testing.T) {
	var ssa, nonSSA, phis, loads, stores, calls, critical, selfLoops, unreachable int
	for seed := int64(0); seed < 300; seed++ {
		f := FromSeed(seed)
		if f.SSA {
			ssa++
		} else {
			nonSSA++
		}
		dom := f.ComputeDominance()
		for _, b := range f.Blocks {
			if dom.Order[b.ID] < 0 {
				unreachable++
			}
			for _, s := range b.Succs {
				if s == b.ID {
					selfLoops++
				}
				if len(b.Succs) > 1 && len(f.Blocks[s].Preds) > 1 {
					critical++
				}
			}
			for _, ins := range b.Instrs {
				switch ins.Op {
				case ir.OpPhi:
					phis++
				case ir.OpLoad:
					loads++
				case ir.OpStore:
					stores++
				case ir.OpCall:
					calls++
				}
			}
		}
	}
	for name, n := range map[string]int{
		"ssa": ssa, "non-ssa": nonSSA, "phi": phis, "load": loads,
		"store": stores, "call": calls, "critical edge": critical,
		"self-loop": selfLoops, "unreachable block": unreachable,
	} {
		if n == 0 {
			t.Errorf("300 seeds produced no %s", name)
		}
	}
}

// TestSSAPressure: explicit configs can force register pressure past any
// small R, so spilling paths are actually exercised.
func TestSSAPressure(t *testing.T) {
	f := Generate("hot", 7, Config{
		SSA: true, Params: 4, Segments: 4, MaxDepth: 2, StraightLen: 6,
		LoopProb: 0.4, BranchProb: 0.3, Carried: 3, LongLived: 16,
	})
	info := liveness.Compute(f)
	if info.MaxLive <= 8 {
		t.Fatalf("MaxLive = %d, want > 8 with 16 long-lived values", info.MaxLive)
	}
}

// TestRoundTrip: generated functions survive print -> parse -> print.
func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		f := FromSeed(seed)
		// The loop-depth comment the generator's analyses add is stripped by
		// Parse, so the fixpoint starts after one parse of the printed form.
		g, err := ir.Parse(f.String())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, f)
		}
		first := g.String()
		h, err := ir.Parse(first)
		if err != nil {
			t.Fatalf("seed %d: second parse: %v\n%s", seed, err, first)
		}
		if second := h.String(); second != first {
			t.Fatalf("seed %d: print/parse not a fixpoint", seed)
		}
	}
}

// TestGenerateModule: the module generator is deterministic per seed, emits
// the requested function count with unique names, a mix of SSA and non-SSA
// members, and sources that round-trip through the module parser.
func TestGenerateModule(t *testing.T) {
	m := GenerateModule(123, 40)
	if len(m.Funcs) != 40 {
		t.Fatalf("%d functions, want 40", len(m.Funcs))
	}
	ssa, nonSSA := 0, 0
	for _, f := range m.Funcs {
		if f.SSA {
			ssa++
		} else {
			nonSSA++
		}
	}
	if ssa == 0 || nonSSA == 0 {
		t.Fatalf("no SSA/non-SSA mix: %d ssa, %d non-ssa", ssa, nonSSA)
	}
	again := GenerateModule(123, 40)
	if m.String() != again.String() {
		t.Fatal("GenerateModule is not deterministic per seed")
	}
	other := GenerateModule(124, 40)
	if m.String() == other.String() {
		t.Fatal("different seeds produced identical modules")
	}
	// Printed module reparses; the fixpoint starts after one parse (the
	// generator's loop-depth annotations print as comments).
	m2, err := ir.ParseModule(m.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	first := m2.String()
	m3, err := ir.ParseModule(first)
	if err != nil {
		t.Fatalf("second parse: %v", err)
	}
	if m3.String() != first {
		t.Fatal("module print/parse not a fixpoint")
	}
}
