// Package irgen is a seeded random generator of *valid* ir functions for
// differential and property testing. Unlike the workload generators in
// internal/bench — which are tuned to reproduce the statistical shape of the
// paper's benchmark suites — irgen aims for structural coverage: it emits
// every opcode (memory traffic, calls, copies, constants), every control
// shape the allocator pipeline must survive (nested loops, diamonds,
// triangles with critical edges, self-loop blocks, unreachable blocks), and
// configurable register pressure, in both strict-SSA and multiple-definition
// form.
//
// Every generated function passes ir.Validate — the generator reuses the
// validator as its own oracle and panics if it ever emits an invalid
// function, so a panic here is a generator bug by construction. Functions
// are also executable by internal/interp on any input: SSA definitions
// dominate uses, and the non-SSA generator tracks definite initialization
// so no path reaches a use before a def.
package irgen

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/ir"
)

// Config shapes one generated function.
type Config struct {
	// SSA selects strict-SSA output (phis, single defs, chordal
	// interference) versus mutable-variable output (multi-def, general
	// interference).
	SSA bool
	// Params is the number of function inputs.
	Params int
	// Segments is the number of top-level code regions.
	Segments int
	// MaxDepth bounds control-flow nesting.
	MaxDepth int
	// StraightLen is the maximum length of a straight-line run.
	StraightLen int
	// LoopProb and BranchProb weight the region kinds (rest: straight).
	LoopProb, BranchProb float64
	// MemProb is the per-instruction probability of a load or store;
	// CallProb of a call.
	MemProb, CallProb float64
	// Carried is the maximum number of loop-carried phis (SSA only).
	Carried int
	// LongLived is the number of entry-defined values kept alive to the
	// return, the main source of register pressure (SSA only).
	LongLived int
	// Vars is the mutable variable pool size (non-SSA only).
	Vars int
	// UnreachableProb is the chance of appending a dead block, exercising
	// the unreachable-code paths of the analyses.
	UnreachableProb float64
}

// RandomConfig derives a generation config from rng, covering small-to-
// medium functions with all features enabled at varying rates.
func RandomConfig(rng *rand.Rand, ssa bool) Config {
	lp := rng.Float64() * 0.5
	bp := rng.Float64() * 0.5
	if lp+bp > 0.85 {
		s := 0.85 / (lp + bp)
		lp, bp = lp*s, bp*s
	}
	return Config{
		SSA:             ssa,
		Params:          1 + rng.Intn(4),
		Segments:        1 + rng.Intn(5),
		MaxDepth:        1 + rng.Intn(3),
		StraightLen:     1 + rng.Intn(6),
		LoopProb:        lp,
		BranchProb:      bp,
		MemProb:         rng.Float64() * 0.4,
		CallProb:        rng.Float64() * 0.3,
		Carried:         1 + rng.Intn(3),
		LongLived:       rng.Intn(13),
		Vars:            4 + rng.Intn(13),
		UnreachableProb: rng.Float64() * 0.3,
	}
}

// FromSeed generates one function entirely determined by seed: the seed
// picks SSA-ness, the config, and the program. This is the single-integer
// entry point the fuzz targets use.
func FromSeed(seed int64) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	ssa := rng.Intn(2) == 0
	cfg := RandomConfig(rng, ssa)
	return Generate(fmt.Sprintf("gen%d", seed), rng.Int63(), cfg)
}

// ConstrainedFromSeed generates one strict-SSA function annotated with the
// machine's constraints — the single-integer entry point of the constrained
// differential tests. The seed picks the config and program exactly like
// FromSeed (SSA forced: machine-constrained allocation requires it), then
// Constrain stamps the machine onto it.
func ConstrainedFromSeed(seed int64, cons *arch.Constraints) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	cfg := RandomConfig(rng, true)
	f := Generate(fmt.Sprintf("gen%d", seed), rng.Int63(), cfg)
	Constrain(f, cons, rng.Int63())
	return f
}

// Constrain annotates a strict-SSA function in place with a machine's
// constraint surface, deterministically from seed:
//
//   - the leading parameters are pre-colored to the ABI's argument registers
//     (cons.ParamPin), so their live ranges carry fixed colors;
//   - when the machine has an FP class, a fraction of the computational
//     values (arith, unary, copy, const, load, phi defs) moves to it, giving
//     every class real pressure;
//   - every call site gets the machine's caller-saved clobber set, so values
//     live across calls face the paper's spill-or-avoid choice.
//
// Parameters and call results stay integer (matching how the ABI delivers
// them), which also keeps every pre-color class-consistent. It panics if the
// annotated function fails validation (generator bug by construction).
func Constrain(f *ir.Func, cons *arch.Constraints, seed int64) {
	if !f.SSA {
		panic("irgen: Constrain requires a strict-SSA function")
	}
	rng := rand.New(rand.NewSource(seed))
	clob := cons.ClobberSet()
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			switch {
			case ins.Op == ir.OpParam:
				if pin, ok := cons.ParamPin(int(ins.Imm)); ok {
					f.SetPreColor(ins.Def, pin)
				}
			case ins.Op == ir.OpCall:
				ins.Clobbers = append([]int(nil), clob...)
			case ins.Op.HasDef() && ins.Def != ir.NoValue && cons.Cap(ir.ClassFP) > 0:
				if rng.Float64() < 0.3 {
					f.SetClass(ins.Def, ir.ClassFP)
				}
			}
		}
	}
	if err := f.Validate(); err != nil {
		panic(fmt.Sprintf("irgen: constraining %s for %s broke it: %v\n%s",
			f.Name, cons.Machine, err, f))
	}
}

// GenerateModule emits a compilation unit of nFuncs functions, entirely
// determined by seed: a mix of SSA and non-SSA functions with independently
// drawn configs, named f0..f<n-1> (unique within the module by
// construction). It is the corpus source for the batch pipeline's
// determinism and throughput tests.
func GenerateModule(seed int64, nFuncs int) *ir.Module {
	if nFuncs < 1 {
		nFuncs = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := &ir.Module{Funcs: make([]*ir.Func, 0, nFuncs)}
	for i := 0; i < nFuncs; i++ {
		ssa := rng.Intn(2) == 0
		cfg := RandomConfig(rng, ssa)
		m.Funcs = append(m.Funcs, Generate(fmt.Sprintf("f%d", i), rng.Int63(), cfg))
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("irgen: generated invalid module (seed %d): %v", seed, err))
	}
	return m
}

// GenDuplicated emits a compilation unit of n functions with controlled
// redundancy: each function after the first is, with probability dupRate,
// an alpha-renamed copy of a uniformly chosen earlier function (fresh
// value and block names, identical structure), and a fresh generated
// function otherwise. The module is entirely determined by (seed, n,
// dupRate). It is the duplication-controlled corpus behind the outcome
// cache benchmarks: at dupRate 0 every function is unique, at 0.8 roughly
// four fifths of the traffic is redundant — the shape of real JIT and
// compile-server workloads.
func GenDuplicated(seed int64, n int, dupRate float64) *ir.Module {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := &ir.Module{Funcs: make([]*ir.Func, 0, n)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%d", i)
		if i > 0 && rng.Float64() < dupRate {
			base := m.Funcs[rng.Intn(i)]
			m.Funcs = append(m.Funcs, AlphaRename(base, name, i))
			continue
		}
		ssa := rng.Intn(2) == 0
		cfg := RandomConfig(rng, ssa)
		m.Funcs = append(m.Funcs, Generate(name, rng.Int63(), cfg))
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("irgen: generated invalid duplicated module (seed %d): %v", seed, err))
	}
	return m
}

// AlphaRename returns a structurally identical copy of f under the given
// function name with fresh value and block names (tag disambiguates the
// name space). Alpha-renamed copies fingerprint equal and allocate
// identically — the property the outcome cache is keyed on.
func AlphaRename(f *ir.Func, name string, tag int) *ir.Func {
	g := f.Clone()
	g.Name = name
	g.ValueName = make(map[int]string, f.NumValues)
	for v := 0; v < f.NumValues; v++ {
		g.ValueName[v] = fmt.Sprintf("x%d_%d", v, tag)
	}
	for _, b := range g.Blocks {
		b.Name = fmt.Sprintf("%s_%d", b.Name, tag)
	}
	return g
}

// Generate emits one function. The same (seed, cfg) always yields the same
// function. It panics if the result fails ir.Validate (generator bug).
func Generate(name string, seed int64, cfg Config) *ir.Func {
	if cfg.StraightLen < 1 {
		cfg.StraightLen = 1
	}
	if cfg.Segments < 1 {
		cfg.Segments = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var f *ir.Func
	if cfg.SSA {
		f = (&ssaGen{cfg: cfg, rng: rng}).generate(name)
	} else {
		f = (&varGen{cfg: cfg, rng: rng}).generate(name)
	}
	if err := f.Validate(); err != nil {
		panic(fmt.Sprintf("irgen: generated invalid function %s: %v\n%s", name, err, f))
	}
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	return f
}

// ---------------------------------------------------------------- SSA mode

type ssaGen struct {
	cfg       Config
	rng       *rand.Rand
	f         *ir.Func
	longLived []int
}

func (g *ssaGen) generate(name string) *ir.Func {
	g.f = &ir.Func{Name: name, ValueName: map[int]string{}, SSA: true}
	entry := g.f.AddBlock("b0")
	var avail []int
	for i := 0; i < g.cfg.Params; i++ {
		v := g.f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpParam, Def: v, Imm: int64(i)})
		avail = append(avail, v)
	}
	if len(avail) == 0 {
		v := g.f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpConst, Def: v, Imm: 1})
		avail = append(avail, v)
	}
	for i := 0; i < g.cfg.LongLived; i++ {
		v := g.f.NewValue()
		entry.Instrs = append(entry.Instrs, ir.Instr{
			Op: ir.OpArith, Def: v, Uses: []int{g.pick(avail), g.pick(avail)},
		})
		avail = append(avail, v)
		g.longLived = append(g.longLived, v)
	}
	cur := entry
	for s := 0; s < g.cfg.Segments; s++ {
		cur, avail = g.segment(cur, avail, 0)
	}
	// Sink: consume the long-lived values so their ranges span the body.
	ret := g.pick(avail)
	for _, v := range g.longLived {
		acc := g.f.NewValue()
		cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpArith, Def: acc, Uses: []int{ret, v}})
		ret = acc
	}
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue, Uses: []int{ret}})
	g.deadBlock()
	return g.f
}

// deadBlock appends an unreachable, self-contained block.
func (g *ssaGen) deadBlock() {
	if g.rng.Float64() >= g.cfg.UnreachableProb {
		return
	}
	b := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue})
}

func (g *ssaGen) newBlock() *ir.Block {
	return g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
}

func (g *ssaGen) segment(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	r := g.rng.Float64()
	switch {
	case depth < g.cfg.MaxDepth && r < g.cfg.LoopProb:
		if g.rng.Float64() < 0.4 {
			return g.selfLoop(cur, avail)
		}
		return g.loop(cur, avail, depth)
	case depth < g.cfg.MaxDepth && r < g.cfg.LoopProb+g.cfg.BranchProb:
		if g.rng.Float64() < 0.35 {
			return g.triangle(cur, avail, depth)
		}
		return g.diamond(cur, avail, depth)
	default:
		return cur, g.straight(cur, avail)
	}
}

// straight appends 1..StraightLen instructions mixing arithmetic, memory
// traffic, calls, copies and constants.
func (g *ssaGen) straight(cur *ir.Block, avail []int) []int {
	avail = append([]int(nil), avail...) // callers may share the backing array
	n := 1 + g.rng.Intn(g.cfg.StraightLen)
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		if r >= g.cfg.MemProb/2 && r < g.cfg.MemProb {
			cur.Instrs = append(cur.Instrs, ir.Instr{
				Op: ir.OpStore, Def: ir.NoValue, Uses: []int{g.pick(avail), g.pick(avail)},
			})
			continue
		}
		v := g.f.NewValue()
		switch {
		case r < g.cfg.MemProb/2:
			cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpLoad, Def: v, Uses: []int{g.pick(avail)}})
		case r < g.cfg.MemProb+g.cfg.CallProb:
			nargs := 1 + g.rng.Intn(3)
			args := make([]int, nargs)
			for k := range args {
				args[k] = g.pick(avail)
			}
			cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpCall, Def: v, Uses: args})
		default:
			switch g.rng.Intn(8) {
			case 0:
				cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpConst, Def: v, Imm: int64(g.rng.Intn(64))})
			case 1:
				cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpCopy, Def: v, Uses: []int{g.pick(avail)}})
			case 2:
				cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpUnary, Def: v, Uses: []int{g.pick(avail)}})
			default:
				cur.Instrs = append(cur.Instrs, ir.Instr{
					Op: ir.OpArith, Def: v, Uses: []int{g.pick(avail), g.pick(avail)},
				})
			}
		}
		avail = append(avail, v)
	}
	return avail
}

// diamond is an if/then/else with phi joins.
func (g *ssaGen) diamond(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	cond := g.f.NewValue()
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpUnary, Def: cond, Uses: []int{g.pick(avail)}})
	thenB, elseB := g.newBlock(), g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{cond}, Targets: []int{thenB.ID, elseB.ID},
	})
	g.f.AddEdge(cur.ID, thenB.ID)
	g.f.AddEdge(cur.ID, elseB.ID)

	tEnd, tAvail := thenB, g.straight(thenB, avail)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.3 {
		tEnd, tAvail = g.segment(tEnd, tAvail, depth+1)
	}
	eEnd, eAvail := elseB, g.straight(elseB, avail)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.3 {
		eEnd, eAvail = g.segment(eEnd, eAvail, depth+1)
	}

	join := g.newBlock()
	tEnd.Instrs = append(tEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(tEnd.ID, join.ID)
	eEnd.Instrs = append(eEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(eEnd.ID, join.ID)

	out := append([]int(nil), avail...)
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		tv, ev := pickFresh(g.rng, tAvail, avail), pickFresh(g.rng, eAvail, avail)
		if tv < 0 || ev < 0 {
			break
		}
		v := g.f.NewValue()
		join.Instrs = append(join.Instrs, ir.Instr{Op: ir.OpPhi, Def: v, Uses: []int{tv, ev}})
		out = append(out, v)
	}
	return join, out
}

// triangle is an if-without-else: condbr straight to the join creates a
// critical edge (cur has two successors, join two predecessors), the shape
// that breaks naive phi-elimination and stresses edge-sensitive passes.
func (g *ssaGen) triangle(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	cond := g.f.NewValue()
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpUnary, Def: cond, Uses: []int{g.pick(avail)}})
	thenB, join := g.newBlock(), g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{cond}, Targets: []int{thenB.ID, join.ID},
	})
	g.f.AddEdge(cur.ID, thenB.ID)
	g.f.AddEdge(cur.ID, join.ID) // the critical edge

	tEnd, tAvail := thenB, g.straight(thenB, avail)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.3 {
		tEnd, tAvail = g.segment(tEnd, tAvail, depth+1)
	}
	tEnd.Instrs = append(tEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(tEnd.ID, join.ID)

	out := append([]int(nil), avail...)
	// join.Preds = [cur, tEnd]: operands in that order.
	for i, n := 0, 1+g.rng.Intn(2); i < n; i++ {
		tv := pickFresh(g.rng, tAvail, avail)
		if tv < 0 {
			break
		}
		v := g.f.NewValue()
		join.Instrs = append(join.Instrs, ir.Instr{Op: ir.OpPhi, Def: v, Uses: []int{g.pick(avail), tv}})
		out = append(out, v)
	}
	return join, out
}

// loop is a head-test natural loop: header holds the carried phis and the
// exit test; the body (recursively generated) closes the back edge.
func (g *ssaGen) loop(cur *ir.Block, avail []int, depth int) (*ir.Block, []int) {
	header := g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(cur.ID, header.ID)

	ncarried := 1 + g.rng.Intn(maxInt(g.cfg.Carried, 1))
	phis := make([]int, ncarried)
	for i := range phis {
		v := g.f.NewValue()
		phis[i] = v
		header.Instrs = append(header.Instrs, ir.Instr{
			// Back-edge operand patched once the body exists.
			Op: ir.OpPhi, Def: v, Uses: []int{g.pick(avail), ir.NoValue},
		})
	}
	headAvail := append(append([]int(nil), avail...), phis...)

	body, exit := g.newBlock(), g.newBlock()
	cond := g.f.NewValue()
	header.Instrs = append(header.Instrs, ir.Instr{Op: ir.OpUnary, Def: cond, Uses: []int{phis[0]}})
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{cond}, Targets: []int{body.ID, exit.ID},
	})
	g.f.AddEdge(header.ID, body.ID)
	g.f.AddEdge(header.ID, exit.ID)

	bodyEnd, bodyAvail := body, g.straight(body, headAvail)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.5 {
		bodyEnd, bodyAvail = g.segment(bodyEnd, bodyAvail, depth+1)
	}
	bodyEnd.Instrs = append(bodyEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(bodyEnd.ID, header.ID)

	for i := range phis {
		bv := pickFresh(g.rng, bodyAvail, avail)
		if bv < 0 {
			bv = phis[i] // self-carried
		}
		header.Instrs[i].Uses[1] = bv
	}
	// Body-defined values do not dominate the exit.
	return exit, append(append([]int(nil), avail...), phis...)
}

// selfLoop is a single-block loop: phis, a short straight run, and a condbr
// back to the block itself. The back edge is critical (the block has two
// successors and two predecessors), and the phi's back-edge operand is
// defined in the block itself.
func (g *ssaGen) selfLoop(cur *ir.Block, avail []int) (*ir.Block, []int) {
	header := g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(cur.ID, header.ID)

	ncarried := 1 + g.rng.Intn(maxInt(g.cfg.Carried, 1))
	phis := make([]int, ncarried)
	for i := range phis {
		v := g.f.NewValue()
		phis[i] = v
		header.Instrs = append(header.Instrs, ir.Instr{
			Op: ir.OpPhi, Def: v, Uses: []int{g.pick(avail), ir.NoValue},
		})
	}
	bodyAvail := g.straight(header, append(append([]int(nil), avail...), phis...))
	for i := range phis {
		bv := pickFresh(g.rng, bodyAvail, avail)
		if bv < 0 {
			bv = phis[i]
		}
		header.Instrs[i].Uses[1] = bv
	}
	exit := g.newBlock()
	cond := g.f.NewValue()
	header.Instrs = append(header.Instrs, ir.Instr{Op: ir.OpUnary, Def: cond, Uses: []int{phis[0]}})
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{cond}, Targets: []int{header.ID, exit.ID},
	})
	g.f.AddEdge(header.ID, header.ID)
	g.f.AddEdge(header.ID, exit.ID)
	return exit, append(append([]int(nil), avail...), phis...)
}

func (g *ssaGen) pick(avail []int) int {
	if len(g.longLived) > 0 && g.rng.Float64() < 0.15 {
		return g.longLived[g.rng.Intn(len(g.longLived))]
	}
	n := len(avail)
	if n == 1 {
		return avail[0]
	}
	if g.rng.Float64() < 0.7 {
		lo := n - 1 - g.rng.Intn(minInt(8, n))
		if lo < 0 {
			lo = 0
		}
		return avail[lo]
	}
	return avail[g.rng.Intn(n)]
}

// ------------------------------------------------------------ non-SSA mode

// varGen emits multiple-definition functions over a mutable variable pool,
// tracking definite initialization so every use is preceded by a def on
// every path (the property interp enforces dynamically).
type varGen struct {
	cfg  Config
	rng  *rand.Rand
	f    *ir.Func
	vars []int
}

func (g *varGen) generate(name string) *ir.Func {
	g.f = &ir.Func{Name: name, ValueName: map[int]string{}, SSA: false}
	nvars := maxInt(g.cfg.Vars, 2)
	for i := 0; i < nvars; i++ {
		v := g.f.NewValue()
		g.f.ValueName[v] = fmt.Sprintf("x%d", i)
		g.vars = append(g.vars, v)
	}
	entry := g.f.AddBlock("b0")
	init := make(map[int]bool)
	nparams := maxInt(g.cfg.Params, 1)
	for i := 0; i < nparams && i < len(g.vars); i++ {
		entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpParam, Def: g.vars[i], Imm: int64(i)})
		init[g.vars[i]] = true
	}
	cur := entry
	for s := 0; s < g.cfg.Segments; s++ {
		cur, init = g.segment(cur, init, 0)
	}
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue, Uses: []int{g.pick(init)}})
	if g.rng.Float64() < g.cfg.UnreachableProb {
		b := g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpReturn, Def: ir.NoValue})
	}
	return g.f
}

func (g *varGen) newBlock() *ir.Block {
	return g.f.AddBlock(fmt.Sprintf("b%d", len(g.f.Blocks)))
}

func (g *varGen) segment(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	r := g.rng.Float64()
	switch {
	case depth < g.cfg.MaxDepth && r < g.cfg.LoopProb:
		if g.rng.Float64() < 0.4 {
			return g.selfLoop(cur, init)
		}
		return g.loop(cur, init, depth)
	case depth < g.cfg.MaxDepth && r < g.cfg.LoopProb+g.cfg.BranchProb:
		if g.rng.Float64() < 0.35 {
			return g.triangle(cur, init, depth)
		}
		return g.diamond(cur, init, depth)
	default:
		return cur, g.straight(cur, init)
	}
}

func (g *varGen) straight(cur *ir.Block, init map[int]bool) map[int]bool {
	out := copySet(init)
	n := 1 + g.rng.Intn(g.cfg.StraightLen)
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		dst := g.vars[g.rng.Intn(len(g.vars))]
		switch {
		case r < g.cfg.MemProb/2:
			cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpLoad, Def: dst, Uses: []int{g.pick(out)}})
		case r < g.cfg.MemProb:
			cur.Instrs = append(cur.Instrs, ir.Instr{
				Op: ir.OpStore, Def: ir.NoValue, Uses: []int{g.pick(out), g.pick(out)},
			})
			continue
		case r < g.cfg.MemProb+g.cfg.CallProb:
			nargs := 1 + g.rng.Intn(3)
			args := make([]int, nargs)
			for k := range args {
				args[k] = g.pick(out)
			}
			cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpCall, Def: dst, Uses: args})
		default:
			switch g.rng.Intn(8) {
			case 0:
				cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpConst, Def: dst, Imm: int64(g.rng.Intn(64))})
			case 1:
				cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpCopy, Def: dst, Uses: []int{g.pick(out)}})
			case 2:
				cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpUnary, Def: dst, Uses: []int{g.pick(out)}})
			default:
				cur.Instrs = append(cur.Instrs, ir.Instr{
					Op: ir.OpArith, Def: dst, Uses: []int{g.pick(out), g.pick(out)},
				})
			}
		}
		out[dst] = true
	}
	return out
}

func (g *varGen) diamond(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	thenB, elseB := g.newBlock(), g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{g.pick(init)}, Targets: []int{thenB.ID, elseB.ID},
	})
	g.f.AddEdge(cur.ID, thenB.ID)
	g.f.AddEdge(cur.ID, elseB.ID)
	tEnd, tInit := thenB, g.straight(thenB, init)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.3 {
		tEnd, tInit = g.segment(tEnd, tInit, depth+1)
	}
	eEnd, eInit := elseB, g.straight(elseB, init)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.3 {
		eEnd, eInit = g.segment(eEnd, eInit, depth+1)
	}
	join := g.newBlock()
	tEnd.Instrs = append(tEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(tEnd.ID, join.ID)
	eEnd.Instrs = append(eEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(eEnd.ID, join.ID)
	return join, intersect(tInit, eInit)
}

func (g *varGen) triangle(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	thenB, join := g.newBlock(), g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{g.pick(init)}, Targets: []int{thenB.ID, join.ID},
	})
	g.f.AddEdge(cur.ID, thenB.ID)
	g.f.AddEdge(cur.ID, join.ID) // critical edge
	tEnd, tInit := thenB, g.straight(thenB, init)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.3 {
		tEnd, tInit = g.segment(tEnd, tInit, depth+1)
	}
	_ = tInit
	tEnd.Instrs = append(tEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{join.ID}})
	g.f.AddEdge(tEnd.ID, join.ID)
	// Only what was initialized before the branch is definite at the join.
	return join, copySet(init)
}

func (g *varGen) loop(cur *ir.Block, init map[int]bool, depth int) (*ir.Block, map[int]bool) {
	header := g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(cur.ID, header.ID)
	body, exit := g.newBlock(), g.newBlock()
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{g.pick(init)}, Targets: []int{body.ID, exit.ID},
	})
	g.f.AddEdge(header.ID, body.ID)
	g.f.AddEdge(header.ID, exit.ID)
	bodyEnd, bodyInit := body, g.straight(body, init)
	if depth+1 < g.cfg.MaxDepth && g.rng.Float64() < 0.4 {
		bodyEnd, bodyInit = g.segment(bodyEnd, bodyInit, depth+1)
	}
	bodyEnd.Instrs = append(bodyEnd.Instrs, ir.Instr{
		Op: ir.OpStore, Def: ir.NoValue, Uses: []int{g.pick(bodyInit), g.pick(bodyInit)},
	})
	bodyEnd.Instrs = append(bodyEnd.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(bodyEnd.ID, header.ID)
	// The body may never run.
	return exit, copySet(init)
}

// selfLoop emits a one-block loop with a critical back edge.
func (g *varGen) selfLoop(cur *ir.Block, init map[int]bool) (*ir.Block, map[int]bool) {
	header := g.newBlock()
	cur.Instrs = append(cur.Instrs, ir.Instr{Op: ir.OpBranch, Def: ir.NoValue, Targets: []int{header.ID}})
	g.f.AddEdge(cur.ID, header.ID)
	bodyInit := g.straight(header, init)
	exit := g.newBlock()
	header.Instrs = append(header.Instrs, ir.Instr{
		Op: ir.OpCondBr, Def: ir.NoValue, Uses: []int{g.pick(bodyInit)}, Targets: []int{header.ID, exit.ID},
	})
	g.f.AddEdge(header.ID, header.ID)
	g.f.AddEdge(header.ID, exit.ID)
	// Everything the block initializes is definite at the exit: the block
	// runs at least once on the way through.
	return exit, bodyInit
}

func (g *varGen) pick(init map[int]bool) int {
	pool := make([]int, 0, len(init))
	for _, v := range g.vars { // iterate the pool, not the map: determinism
		if init[v] {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		panic("irgen: no initialized variable available")
	}
	return pool[g.rng.Intn(len(pool))]
}

// ---------------------------------------------------------------- helpers

// pickFresh picks a value in list but not in base (defined inside the
// current region), or -1.
func pickFresh(rng *rand.Rand, list, base []int) int {
	baseSet := make(map[int]bool, len(base))
	for _, v := range base {
		baseSet[v] = true
	}
	var fresh []int
	for _, v := range list {
		if !baseSet[v] {
			fresh = append(fresh, v)
		}
	}
	if len(fresh) == 0 {
		return -1
	}
	return fresh[rng.Intn(len(fresh))]
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

func intersect(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
