// Package budget implements cooperative resource governance for the
// allocation pipeline: a work-step budget charged at coarse analysis
// granularity (liveness sweeps, clique-derivation phases, allocation
// layers, assignment blocks), a wall-clock deadline checked amortizedly
// (no timer goroutines, no time.After per iteration), and an admission
// gate on raw problem size.
//
// The Meter is nil-safe: every method on a nil *Meter is a no-op that
// reports "not exceeded", so un-budgeted runs thread a nil meter through
// the hot loops at zero cost.
package budget

import (
	"time"

	"repro/internal/raerr"
)

// Limits is the resource budget of one allocation run. The zero value
// means "no budget" (Active reports false and no meter is created).
type Limits struct {
	// Deadline is the wall-clock bound for the whole run (0 = none).
	Deadline time.Duration
	// Steps is the work-step budget (0 = none). Steps are charged at
	// analysis granularity — a liveness fixpoint sweep charges the block
	// count, an allocation layer charges the vertex count, assignment
	// charges per instruction — so the unit is roughly "one value-visit".
	Steps int64
	// MaxValues, when > 0, is the admission gate on the function's value
	// count: bigger functions are rejected (or degraded) before any
	// analysis runs.
	MaxValues int
	// MaxBlocks, when > 0, is the admission gate on the block count.
	MaxBlocks int
}

// Active reports whether any limit is set.
func (l Limits) Active() bool {
	return l.Deadline > 0 || l.Steps > 0 || l.MaxValues > 0 || l.MaxBlocks > 0
}

// Admit applies the admission gate to a function with the given value and
// block counts, returning a typed *raerr.BudgetError when the function is
// too large to even start under this budget.
func (l Limits) Admit(values, blocks int) *raerr.BudgetError {
	if l.MaxValues > 0 && values > l.MaxValues {
		return &raerr.BudgetError{Stage: raerr.StageAdmission, Spent: int64(values), Limit: int64(l.MaxValues)}
	}
	if l.MaxBlocks > 0 && blocks > l.MaxBlocks {
		return &raerr.BudgetError{Stage: raerr.StageAdmission, Spent: int64(blocks), Limit: int64(l.MaxBlocks)}
	}
	return nil
}

// clockCheckInterval is how many charged steps may pass between wall-clock
// reads: time.Now() is cheap but not free, and the hot loops charge at
// analysis granularity, so one read per ~4096 steps keeps deadline
// enforcement within a few hundred microseconds of the truth without
// measurable overhead.
const clockCheckInterval = 4096

// Meter enforces a Limits cooperatively: pipeline stages call Charge from
// their hot loops and stop early when it returns false. A Meter is not
// safe for concurrent use (one per function run); a nil Meter is valid
// and never trips.
type Meter struct {
	spent      int64
	limit      int64 // 0 = unlimited steps
	stage      string
	start      time.Time
	deadline   time.Time // zero = none
	budget     time.Duration
	sinceCheck int64
	err        *raerr.BudgetError
}

// NewMeter starts a meter for one run under l. Returns nil when l is not
// Active, so callers can thread the result unconditionally.
func NewMeter(l Limits) *Meter {
	if !l.Active() {
		return nil
	}
	m := &Meter{limit: l.Steps, budget: l.Deadline, start: time.Now()}
	if l.Deadline > 0 {
		m.deadline = m.start.Add(l.Deadline)
	}
	return m
}

// Rung derives a fresh meter for one degradation rung: its own step
// allowance, the same absolute wall-clock deadline. The rung's charges are
// folded back into the parent's Spent total (the parent is already
// exceeded; only accounting continues).
func (m *Meter) Rung(steps int64) *Meter {
	if m == nil {
		return nil
	}
	r := &Meter{limit: steps, start: m.start, deadline: m.deadline, budget: m.budget}
	if !m.deadline.IsZero() && !time.Now().Before(m.deadline) {
		r.trip() // deadline already blown: the rung must not start real work
	}
	return r
}

// SetStage labels subsequent charges with the pipeline stage (used in the
// typed error and the degradation reason).
func (m *Meter) SetStage(stage string) {
	if m != nil {
		m.stage = stage
	}
}

// Stage returns the current stage label ("" on a nil meter).
func (m *Meter) Stage() string {
	if m == nil {
		return ""
	}
	return m.stage
}

// Charge consumes n work steps and reports whether the run may continue.
// Once it has returned false it keeps returning false; callers are
// expected to unwind promptly but may keep calling it harmlessly.
func (m *Meter) Charge(n int) bool {
	if m == nil {
		return true
	}
	m.spent += int64(n)
	if m.err != nil {
		return false
	}
	if m.limit > 0 && m.spent > m.limit {
		m.trip()
		return false
	}
	if !m.deadline.IsZero() {
		m.sinceCheck += int64(n)
		if m.sinceCheck >= clockCheckInterval {
			m.sinceCheck = 0
			if !time.Now().Before(m.deadline) {
				m.trip()
				return false
			}
		}
	}
	return true
}

// CheckNow forces a wall-clock check regardless of the amortization
// counter — stage boundaries call it so un-metered stages (the explicit
// graph path, an external allocator) cannot overshoot the deadline
// unnoticed for long. It reports whether the run may continue.
func (m *Meter) CheckNow() bool {
	if m == nil {
		return true
	}
	if m.err != nil {
		return false
	}
	if !m.deadline.IsZero() && !time.Now().Before(m.deadline) {
		m.trip()
		return false
	}
	return true
}

func (m *Meter) trip() {
	if m.err != nil {
		return
	}
	m.err = &raerr.BudgetError{
		Stage:    m.stage,
		Spent:    m.spent,
		Limit:    m.limit,
		Elapsed:  time.Since(m.start),
		Deadline: m.budget,
	}
}

// Exceeded reports whether the meter has tripped.
func (m *Meter) Exceeded() bool { return m != nil && m.err != nil }

// Err returns the typed *raerr.BudgetError of a tripped meter, or nil.
// The concrete type is returned as an error interface only when non-nil,
// so `if err := m.Err(); err != nil` behaves.
func (m *Meter) Err() error {
	if m == nil || m.err == nil {
		return nil
	}
	return m.err
}

// BudgetErr returns the typed error of a tripped meter, or nil.
func (m *Meter) BudgetErr() *raerr.BudgetError {
	if m == nil {
		return nil
	}
	return m.err
}

// Spent returns the work steps charged so far.
func (m *Meter) Spent() int64 {
	if m == nil {
		return 0
	}
	return m.spent
}

// AddSpent folds a rung meter's accounting back into the parent.
func (m *Meter) AddSpent(n int64) {
	if m != nil {
		m.spent += n
	}
}
