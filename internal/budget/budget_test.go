package budget

import (
	"errors"
	"testing"
	"time"

	"repro/internal/raerr"
)

func TestNilMeterIsFree(t *testing.T) {
	var m *Meter
	if !m.Charge(1 << 30) {
		t.Fatal("nil meter refused a charge")
	}
	if m.Exceeded() || m.Err() != nil || m.Spent() != 0 || !m.CheckNow() {
		t.Fatal("nil meter reports state")
	}
	m.SetStage("x") // must not panic
}

func TestInactiveLimitsYieldNilMeter(t *testing.T) {
	if m := NewMeter(Limits{}); m != nil {
		t.Fatalf("NewMeter(zero) = %v, want nil", m)
	}
	if (Limits{}).Active() {
		t.Fatal("zero Limits is Active")
	}
	for _, l := range []Limits{{Steps: 1}, {Deadline: time.Second}, {MaxValues: 1}, {MaxBlocks: 1}} {
		if !l.Active() {
			t.Fatalf("%+v not Active", l)
		}
	}
}

func TestStepBudgetTrips(t *testing.T) {
	m := NewMeter(Limits{Steps: 100})
	m.SetStage(raerr.StageLiveness)
	if !m.Charge(100) {
		t.Fatal("charge at the limit tripped")
	}
	if m.Charge(1) {
		t.Fatal("charge over the limit passed")
	}
	if !m.Exceeded() {
		t.Fatal("not Exceeded after trip")
	}
	err := m.Err()
	if !errors.Is(err, raerr.ErrBudgetExceeded) {
		t.Fatalf("Err() = %v, want ErrBudgetExceeded", err)
	}
	var be *raerr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Err() = %T, want *raerr.BudgetError", err)
	}
	if be.Stage != raerr.StageLiveness || be.Spent != 101 || be.Limit != 100 {
		t.Fatalf("BudgetError = %+v", be)
	}
	// Further charges stay refused but keep accounting.
	if m.Charge(7) {
		t.Fatal("charge after trip passed")
	}
	if m.Spent() != 108 {
		t.Fatalf("Spent = %d, want 108", m.Spent())
	}
}

func TestDeadlineTrips(t *testing.T) {
	m := NewMeter(Limits{Deadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	// Amortized: below the check interval the clock is not read...
	if !m.Charge(1) {
		t.Fatal("first tiny charge read the clock")
	}
	// ...but a forced check sees the blown deadline.
	if m.CheckNow() {
		t.Fatal("CheckNow ignored the blown deadline")
	}
	var be *raerr.BudgetError
	if !errors.As(m.Err(), &be) || be.Deadline != time.Nanosecond {
		t.Fatalf("Err() = %v", m.Err())
	}
	// And enough charged steps also read the clock.
	m2 := NewMeter(Limits{Deadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if m2.Charge(clockCheckInterval) {
		t.Fatal("amortized clock check missed the blown deadline")
	}
}

func TestAdmit(t *testing.T) {
	l := Limits{MaxValues: 10, MaxBlocks: 5}
	if err := l.Admit(10, 5); err != nil {
		t.Fatalf("Admit at the bound: %v", err)
	}
	err := l.Admit(11, 1)
	if err == nil || err.Stage != raerr.StageAdmission {
		t.Fatalf("Admit(11 values) = %v", err)
	}
	if !errors.Is(err, raerr.ErrBudgetExceeded) {
		t.Fatalf("admission error does not wrap ErrBudgetExceeded: %v", err)
	}
	if err := l.Admit(1, 6); err == nil {
		t.Fatal("Admit(6 blocks) passed")
	}
	if err := (Limits{Steps: 5}).Admit(1<<20, 1<<20); err != nil {
		t.Fatalf("Admit without size gates rejected: %v", err)
	}
}

func TestRungMeter(t *testing.T) {
	m := NewMeter(Limits{Steps: 10})
	m.SetStage(raerr.StageAllocate)
	m.Charge(11)
	if !m.Exceeded() {
		t.Fatal("parent not exceeded")
	}
	r := m.Rung(1000)
	if r.Exceeded() {
		t.Fatal("rung inherited the parent's step trip")
	}
	if !r.Charge(1000) || r.Charge(1) {
		t.Fatal("rung step allowance wrong")
	}
	m.AddSpent(r.Spent())
	if m.Spent() != 11+1001 {
		t.Fatalf("folded Spent = %d", m.Spent())
	}

	// A rung derived after the deadline has passed must refuse all work.
	dm := NewMeter(Limits{Deadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	dr := dm.Rung(1000)
	if dr.Charge(1) {
		t.Fatal("post-deadline rung accepted work")
	}
}
