// Biased assignment support: the clique-native (IFG-free) side of
// coalescing. Instead of merging vertices of a materialized interference
// graph, the fast path extracts φ/copy moves straight from the ir.Func,
// groups copy-related values into affinity classes via union-find (refusing
// interfering merges always, and colourability-threatening merges under the
// Briggs criterion checked against clique-membership degrees), and hands the
// resulting per-value class table to the tree-scan assigner as a register
// preference: a value prefers the register its affine partners already hold,
// when free — never at the cost of an extra spill.
package coalesce

import (
	"sort"

	"repro/internal/cliques"
	"repro/internal/ir"
	"repro/internal/spillcost"
)

// VMove is one register-to-register copy at the value level: a φ operand
// flowing across a CFG edge, or an explicit copy instruction. Unlike Move,
// endpoints are value IDs, so no interference graph is needed to extract
// them. Cost is the dynamic frequency of the move under the block-frequency
// model.
type VMove struct {
	Dst, Src int
	Cost     float64
}

// MovesFromFunc extracts all coalescable moves of a function at the value
// level: φ-operand transfers (placed on the incoming edge, charged at the
// predecessor's frequency) and OpCopy instructions. Self-moves (dst == src)
// carry no cost and are skipped.
func MovesFromFunc(f *ir.Func, model spillcost.Model) []VMove {
	freqs := spillcost.BlockFrequencies(f, model)
	var out []VMove
	add := func(dst, src int, cost float64) {
		if dst < 0 || src < 0 || dst == src {
			return
		}
		out = append(out, VMove{Dst: dst, Src: src, Cost: cost})
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			switch ins.Op {
			case ir.OpPhi:
				for k, u := range ins.Uses {
					if k < len(blk.Preds) {
						add(ins.Def, u, freqs[blk.Preds[k]])
					}
				}
			case ir.OpCopy:
				add(ins.Def, ins.Uses[0], freqs[blk.ID])
			}
		}
	}
	return out
}

// TotalCost sums the dynamic cost of a move list.
func TotalCost(moves []VMove) float64 {
	var c float64
	for _, m := range moves {
		c += m.Cost
	}
	return c
}

// FilterClass keeps only the moves whose endpoints are both of register
// class c (the constrained driver biases each per-class subproblem
// separately: endpoints of different classes can never share a register).
func FilterClass(moves []VMove, f *ir.Func, c ir.Class) []VMove {
	var out []VMove
	for _, m := range moves {
		if f.ClassOf(m.Dst) == c && f.ClassOf(m.Src) == c {
			out = append(out, m)
		}
	}
	return out
}

// Affinity is the result of clique-native affinity construction: a partition
// of copy-related, non-interfering values into preference classes.
type Affinity struct {
	// ClassOf maps value ID to affinity class (-1 when the value is in no
	// class). Every class has at least two members.
	ClassOf []int32
	// NumClasses is the number of affinity classes.
	NumClasses int
	// Merged is the number of union operations performed.
	Merged int
}

// BiasScratch holds the reusable buffers of BuildAffinity so steady-state
// callers allocate nothing per function beyond the result itself.
type BiasScratch struct {
	parent  []int32
	size    []int32
	members [][]int32

	inClass   []uint32 // stamped: vertex is a member of the merging classes
	seen      []uint32 // stamped per member: neighbour already counted
	nbrStamp  []uint32 // stamped: vertex already in the neighbour list
	adjCount  []int32  // members adjacent to this neighbour
	neighbors []int32
	epoch     uint32
}

func (sc *BiasScratch) grow(n int) {
	if cap(sc.parent) < n {
		sc.parent = make([]int32, n)
		sc.size = make([]int32, n)
		sc.members = make([][]int32, n)
		sc.inClass = make([]uint32, n)
		sc.seen = make([]uint32, n)
		sc.nbrStamp = make([]uint32, n)
		sc.adjCount = make([]int32, n)
	}
	sc.parent = sc.parent[:n]
	sc.size = sc.size[:n]
	sc.members = sc.members[:n]
	sc.inClass = sc.inClass[:n]
	sc.seen = sc.seen[:n]
	sc.nbrStamp = sc.nbrStamp[:n]
	sc.adjCount = sc.adjCount[:n]
}

// interferes reports whether vertices u and v interfere, using only the
// clique structure: u and v interfere iff one is live at the other's
// definition, i.e. iff one appears in the other's def-point set (sorted, so
// a binary search suffices).
func interferes(cs *cliques.Structure, u, v int) bool {
	if contains(cs.Sets[cs.DefSetOf[v]], u) {
		return true
	}
	return contains(cs.Sets[cs.DefSetOf[u]], v)
}

func contains(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// BuildAffinity groups the moves' endpoints into affinity classes over the
// clique structure cs. Moves are processed in decreasing cost order (most
// valuable merges first, matching Run). A merge is refused when any member
// of one class interferes with any member of the other; under Conservative
// it is additionally refused unless the Briggs criterion holds for the
// merged class: fewer than r neighbours of significant (≥ r) post-merge
// degree, with degrees read off the clique membership (no edges ever
// materialized). Returns nil when policy is Off or no class forms.
func BuildAffinity(cs *cliques.Structure, moves []VMove, policy Policy, r int, sc *BiasScratch) *Affinity {
	if policy == Off || len(moves) == 0 || cs.N == 0 {
		return nil
	}
	if sc == nil {
		sc = &BiasScratch{}
	}
	n := cs.N
	sc.grow(n)
	for i := 0; i < n; i++ {
		sc.parent[i] = int32(i)
		sc.size[i] = 1
		sc.members[i] = sc.members[i][:0]
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for sc.parent[x] != x {
			sc.parent[x] = sc.parent[sc.parent[x]]
			x = sc.parent[x]
		}
		return x
	}
	memberList := func(root int32) []int32 {
		if len(sc.members[root]) == 0 {
			sc.members[root] = append(sc.members[root], root)
		}
		return sc.members[root]
	}

	sorted := append([]VMove(nil), moves...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cost > sorted[j].Cost })

	merged := 0
	for _, m := range sorted {
		dv, sv := cs.VertexOf[m.Dst], cs.VertexOf[m.Src]
		if dv < 0 || sv < 0 {
			continue
		}
		a, c := find(int32(dv)), find(int32(sv))
		if a == c {
			continue
		}
		ma, mc := memberList(a), memberList(c)
		if classesInterfere(cs, ma, mc) {
			continue
		}
		if policy == Conservative && !briggsClassOK(cs, ma, mc, r, sc) {
			continue
		}
		// Union by size; the representative's member list absorbs the other.
		if sc.size[a] < sc.size[c] {
			a, c = c, a
			ma, mc = mc, ma
		}
		sc.members[a] = append(ma, mc...)
		sc.members[c] = sc.members[c][:0]
		sc.parent[c] = a
		sc.size[a] += sc.size[c]
		merged++
	}
	if merged == 0 {
		return nil
	}

	aff := &Affinity{ClassOf: make([]int32, len(cs.VertexOf)), Merged: merged}
	for i := range aff.ClassOf {
		aff.ClassOf[i] = -1
	}
	// Class IDs in ascending vertex order of the representative: deterministic.
	for v := 0; v < n; v++ {
		if sc.parent[v] == int32(v) && len(sc.members[v]) > 1 {
			id := int32(aff.NumClasses)
			aff.NumClasses++
			for _, vx := range sc.members[v] {
				aff.ClassOf[cs.ValueOf[vx]] = id
			}
		}
	}
	return aff
}

// BuildAffinityConstrained builds the affinity partition of a
// machine-constrained function: one BuildAffinity pass per register class
// over the class's own moves against the class capacity, merged into a
// single table with disjoint class IDs. The Briggs test uses the full
// structure's degrees (an over-estimate of the per-class induced subgraph's),
// which only makes Conservative refuse more merges — never unsound.
func BuildAffinityConstrained(cs *cliques.Structure, f *ir.Func, moves []VMove, policy Policy, caps [ir.NumClasses]int, sc *BiasScratch) *Affinity {
	var merged *Affinity
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		if caps[c] == 0 {
			continue
		}
		cm := FilterClass(moves, f, c)
		if len(cm) == 0 {
			continue
		}
		aff := BuildAffinity(cs, cm, policy, caps[c], sc)
		if aff == nil {
			continue
		}
		if merged == nil {
			merged = aff
			continue
		}
		for v, cl := range aff.ClassOf {
			if cl >= 0 {
				merged.ClassOf[v] = cl + int32(merged.NumClasses)
			}
		}
		merged.NumClasses += aff.NumClasses
		merged.Merged += aff.Merged
	}
	return merged
}

// classesInterfere reports whether any member of a interferes with any
// member of c.
func classesInterfere(cs *cliques.Structure, a, c []int32) bool {
	for _, x := range a {
		for _, y := range c {
			if interferes(cs, int(x), int(y)) {
				return true
			}
		}
	}
	return false
}

// briggsClassOK applies the Briggs conservative test to the union of the
// two classes: after the merge, the combined node must have fewer than r
// neighbours of degree ≥ r. A neighbour adjacent to k members loses k−1
// from its degree when they fuse. Degrees and adjacency come from the
// clique membership index; no edges are materialized.
func briggsClassOK(cs *cliques.Structure, a, c []int32, r int, sc *BiasScratch) bool {
	if r <= 0 {
		return false
	}
	deg := cs.Degrees()
	sc.epoch++
	classStamp := sc.epoch
	for _, m := range a {
		sc.inClass[m] = classStamp
	}
	for _, m := range c {
		sc.inClass[m] = classStamp
	}
	sc.neighbors = sc.neighbors[:0]
	visit := func(m int32) {
		sc.epoch++
		memberStamp := sc.epoch
		for _, ci := range cs.CliquesOf(int(m)) {
			for _, u := range cs.Sets[ci] {
				if sc.inClass[u] == classStamp || sc.seen[u] == memberStamp {
					continue
				}
				sc.seen[u] = memberStamp
				if sc.nbrStamp[u] != classStamp {
					sc.nbrStamp[u] = classStamp
					sc.adjCount[u] = 0
					sc.neighbors = append(sc.neighbors, int32(u))
				}
				sc.adjCount[u]++
			}
		}
	}
	for _, m := range a {
		visit(m)
	}
	for _, m := range c {
		visit(m)
	}
	significant := 0
	for _, u := range sc.neighbors {
		if deg[u]-int(sc.adjCount[u])+1 >= r {
			significant++
			if significant >= r {
				return false
			}
		}
	}
	return true
}

// Stats reports the effect of biased assignment on one function's moves.
type Stats struct {
	// Policy is the coalescing policy that produced the bias.
	Policy Policy
	// Moves is the number of φ/copy moves and MoveCost their total dynamic
	// cost.
	Moves    int
	MoveCost float64
	// EliminatedCost is the dynamic cost of moves whose endpoints were
	// assigned the same register; ResidualCost is MoveCost minus it.
	EliminatedCost float64
	ResidualCost   float64
	// Classes is the number of affinity classes formed and Merged the number
	// of union-find merges behind them.
	Classes int
	Merged  int
}

// EliminatedFrac is the fraction of dynamic move cost eliminated (0 when
// there are no moves).
func (s *Stats) EliminatedFrac() float64 {
	if s.MoveCost == 0 {
		return 0
	}
	return s.EliminatedCost / s.MoveCost
}

// ResidualCost computes the dynamic move cost surviving an assignment: a
// move is eliminated iff both endpoints were allocated the same register.
// regOf is value-indexed (-1 = spilled or absent). Returns eliminated and
// residual cost; their sum is the total.
func ResidualCost(moves []VMove, regOf []int) (eliminated, residual float64) {
	for _, m := range moves {
		if r := regOf[m.Dst]; r >= 0 && r == regOf[m.Src] {
			eliminated += m.Cost
		} else {
			residual += m.Cost
		}
	}
	return eliminated, residual
}

// StatsFor assembles the Stats of one assignment outcome.
func StatsFor(policy Policy, moves []VMove, regOf []int, aff *Affinity) *Stats {
	st := &Stats{Policy: policy, Moves: len(moves)}
	st.EliminatedCost, st.ResidualCost = ResidualCost(moves, regOf)
	st.MoveCost = st.EliminatedCost + st.ResidualCost
	if aff != nil {
		st.Classes = aff.NumClasses
		st.Merged = aff.Merged
	}
	return st
}
