package coalesce_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/coalesce"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
)

func prep(t *testing.T, src string) *ifg.Build {
	t.Helper()
	f := ir.MustParse(src)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	return ifg.FromFunc(f)
}

const diamondSrc = `
func d ssa {
b0:
  x = param 0
  c = unary x
  condbr c, b1, b2
b1:
  y = arith x, x
  br b3
b2:
  z = arith x, c
  br b3
b3:
  m = phi [b1: y], [b2: z]
  ret m
}`

func TestMovesExtraction(t *testing.T) {
	b := prep(t, diamondSrc)
	moves := coalesce.Moves(b, spillcost.DefaultModel)
	// Two φ operands: m←y on the b1 edge, m←z on the b2 edge.
	if len(moves) != 2 {
		t.Fatalf("moves = %v, want 2", moves)
	}
	for _, m := range moves {
		if m.Cost != 1 {
			t.Fatalf("flat-CFG move cost = %g, want 1", m.Cost)
		}
	}
}

func TestAggressiveCoalescesDiamondPhi(t *testing.T) {
	b := prep(t, diamondSrc)
	moves := coalesce.Moves(b, spillcost.DefaultModel)
	res := coalesce.Run(b, moves, coalesce.Aggressive, 2)
	// y and z never interfere with m: both moves disappear.
	if res.Merged != 2 || res.MovesEliminated() != 1 {
		t.Fatalf("merged=%d eliminated=%.2f, want 2 and 1.0",
			res.Merged, res.MovesEliminated())
	}
}

func TestInterferingMoveNotCoalesced(t *testing.T) {
	// src stays live after the copy: dst and src interfere.
	b := prep(t, `
func c ssa {
b0:
  a = param 0
  d = copy a
  e = arith d, a
  ret e
}`)
	moves := coalesce.Moves(b, spillcost.DefaultModel)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	res := coalesce.Run(b, moves, coalesce.Aggressive, 4)
	if res.Merged != 0 {
		t.Fatal("interfering copy was coalesced")
	}
	if res.MovesEliminated() != 0 {
		t.Fatal("eliminated cost nonzero")
	}
}

func TestLoopPhiMoveCostUsesEdgeFrequency(t *testing.T) {
	b := prep(t, `
func l ssa {
b0:
  n = param 0
  br b1
b1:
  i = phi [b0: n], [b2: j]
  c = unary i
  condbr c, b2, b3
b2:
  j = arith i, i
  br b1
b3:
  ret i
}`)
	moves := coalesce.Moves(b, spillcost.DefaultModel)
	if len(moves) != 2 {
		t.Fatalf("moves = %v", moves)
	}
	// i←n charged at b0 (1), i←j at b2 (10).
	var costs []float64
	for _, m := range moves {
		costs = append(costs, m.Cost)
	}
	if !(costs[0] == 1 && costs[1] == 10) && !(costs[0] == 10 && costs[1] == 1) {
		t.Fatalf("move costs = %v, want {1, 10}", costs)
	}
}

func genBuild(seed int64) *ifg.Build {
	f := bench.GenSSA("t", seed, bench.Shape{
		Params: 3, Segments: 3, MaxDepth: 3, StraightLen: 5,
		LoopProb: 0.45, BranchProb: 0.3, Carried: 3, LongLived: 8,
	})
	return ifg.FromFunc(f)
}

// TestPropertyConservativePreservesSimplifiability: with R = MaxLive (the
// graph colours greedily), the Briggs-tested merges keep the merged graph
// fully simplifiable with R registers.
func TestPropertyConservativePreservesSimplifiability(t *testing.T) {
	prop := func(seed int64) bool {
		b := genBuild(seed)
		r := b.MaxLive
		moves := coalesce.Moves(b, spillcost.DefaultModel)
		res := coalesce.Run(b, moves, coalesce.Conservative, r)
		return coalesce.MergedGraphColorableBySimplify(b, res, r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAggressiveDominatesConservative: the aggressive policy
// removes at least as much move cost on typical inputs. This is a heuristic
// tendency, not a theorem — an early aggressive merge can union neighbor
// sets in a way that blocks a later, more valuable merge that conservative's
// declined merge leaves open — so the check runs over fixed seeds; the known
// counterexample is pinned separately below.
func TestPropertyAggressiveDominatesConservative(t *testing.T) {
	prop := func(seed int64) bool {
		b := genBuild(seed)
		moves := coalesce.Moves(b, spillcost.DefaultModel)
		r := b.MaxLive
		agg := coalesce.Run(b, moves, coalesce.Aggressive, r)
		con := coalesce.Run(b, moves, coalesce.Conservative, r)
		return agg.EliminatedCost >= con.EliminatedCost-1e-9
	}
	rng := rand.New(rand.NewSource(11))
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestAggressiveDominanceCounterexample pins a seed where greedy aggressive
// coalescing eliminates strictly less move cost than conservative (31 vs 37
// here; the seed's map-based implementation produced the identical numbers).
// Both results must still be valid merges; the dominance gap is expected.
func TestAggressiveDominanceCounterexample(t *testing.T) {
	b := genBuild(-4890557239861182494)
	moves := coalesce.Moves(b, spillcost.DefaultModel)
	r := b.MaxLive
	agg := coalesce.Run(b, moves, coalesce.Aggressive, r)
	con := coalesce.Run(b, moves, coalesce.Conservative, r)
	if agg.EliminatedCost >= con.EliminatedCost {
		t.Logf("counterexample no longer triggers: agg=%g con=%g",
			agg.EliminatedCost, con.EliminatedCost)
	}
	for _, res := range []*coalesce.Result{agg, con} {
		find := func(x int) int {
			for res.Rep[x] != x {
				x = res.Rep[x]
			}
			return x
		}
		for v := 0; v < b.Graph.N(); v++ {
			for u := v + 1; u < b.Graph.N(); u++ {
				if find(v) == find(u) && b.Graph.HasEdge(v, u) {
					t.Fatalf("merged interfering pair (%d,%d)", v, u)
				}
			}
		}
	}
}

// TestPropertyRepresentativesNeverInterfere: after any run, copy-related
// merged classes contain no interfering pair.
func TestPropertyMergedClassesStable(t *testing.T) {
	prop := func(seed int64) bool {
		b := genBuild(seed)
		moves := coalesce.Moves(b, spillcost.DefaultModel)
		res := coalesce.Run(b, moves, coalesce.Aggressive, 4)
		find := func(x int) int {
			for res.Rep[x] != x {
				x = res.Rep[x]
			}
			return x
		}
		// No two vertices in the same class interfere.
		classes := make(map[int][]int)
		for v := 0; v < b.Graph.N(); v++ {
			r := find(v)
			classes[r] = append(classes[r], v)
		}
		for _, members := range classes {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					if b.Graph.HasEdge(members[i], members[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNoMoves(t *testing.T) {
	b := prep(t, `
func s ssa {
b0:
  a = param 0
  ret a
}`)
	moves := coalesce.Moves(b, spillcost.DefaultModel)
	if len(moves) != 0 {
		t.Fatalf("moves = %v", moves)
	}
	res := coalesce.Run(b, moves, coalesce.Aggressive, 2)
	if res.MovesEliminated() != 0 || res.Merged != 0 {
		t.Fatal("phantom coalescing")
	}
}

func TestLivenessIndependence(t *testing.T) {
	// Sanity: Moves does not depend on liveness recomputation order.
	f := ir.MustParse(diamondSrc)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	if len(coalesce.Moves(b, spillcost.DefaultModel)) != 2 {
		t.Fatal("moves differ when built from explicit liveness")
	}
}
