// White-box tests for the Briggs-criterion edge cases of the clique-native
// affinity construction: significant-degree and significant-count boundaries
// at exactly R−1/R, interfering-pair rejection, and self-move extraction.
package coalesce

import (
	"testing"

	"repro/internal/cliques"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
)

func deriveCS(t *testing.T, src string) *cliques.Structure {
	t.Helper()
	f := ir.MustParse(src)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	cs := cliques.Derive(liveness.Compute(f), dom, nil)
	if cs == nil {
		t.Fatal("cliques.Derive failed on a strict-SSA function")
	}
	return cs
}

func vertexOf(t *testing.T, cs *cliques.Structure, f *ir.Func, name string) int32 {
	t.Helper()
	for v := 0; v < f.NumValues; v++ {
		if f.NameOf(v) == name {
			vx := cs.VertexOf[v]
			if vx < 0 {
				t.Fatalf("value %q has no vertex", name)
			}
			return int32(vx)
		}
	}
	t.Fatalf("no value named %q", name)
	return -1
}

// refuseSrc: x and y are copy-related and do not interfere; their merged
// class has exactly three neighbours h1,h2,h3, each adjacent to both x and
// y. h1 and h2 have interference degree 5 (post-merge effective degree
// exactly 4), h3 degree 6 (effective 5, the extra edge to the temporary t).
const refuseSrc = `
func refuse ssa {
b0:
  h1 = param 0
  h2 = param 1
  h3 = param 2
  x = param 3
  y = copy x
  u = arith y, y
  t = arith h1, h2
  t2 = arith t, h3
  ret t2
}`

// TestBriggsSignificantCountBoundary drives briggsClassOK across the exact
// R−1/R boundaries on refuseSrc (post-merge effective degrees 4, 4, 5):
//
//	r=3: all three significant, count 3 = r                    → refuse
//	r=4: all three significant (h1,h2 at degree exactly R),
//	     count 3 = r−1                                         → accept
//	r=5: only h3 significant (degree exactly R), count 1       → accept
func TestBriggsSignificantCountBoundary(t *testing.T) {
	cs := deriveCS(t, refuseSrc)
	x := vertexOf(t, cs, cs.F, "x")
	y := vertexOf(t, cs, cs.F, "y")
	if interferes(cs, int(x), int(y)) {
		t.Fatal("x and y must not interfere in refuseSrc")
	}
	for _, h := range []struct {
		name string
		deg  int
	}{{"h1", 5}, {"h2", 5}, {"h3", 6}} {
		hv := vertexOf(t, cs, cs.F, h.name)
		if !interferes(cs, int(x), int(hv)) || !interferes(cs, int(y), int(hv)) {
			t.Fatalf("%s must interfere with both x and y", h.name)
		}
		if deg := cs.Degrees()[hv]; deg != h.deg {
			t.Fatalf("deg(%s) = %d, want %d", h.name, deg, h.deg)
		}
	}
	sc := &BiasScratch{}
	sc.grow(cs.N)
	for _, tc := range []struct {
		r    int
		want bool
	}{
		{3, false}, // significant count exactly R
		{4, true},  // significant degree exactly R, count exactly R−1
		{5, true},  // no significant neighbours
		{0, false}, // degenerate register file never merges
	} {
		if got := briggsClassOK(cs, []int32{x}, []int32{y}, tc.r, sc); got != tc.want {
			t.Errorf("briggsClassOK(r=%d) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

// TestBuildAffinityBriggsBoundary is the same boundary through the public
// constructor: Conservative at r=3 refuses the merge (no affinity forms),
// at r=4 accepts it, and Aggressive merges regardless of the count.
func TestBuildAffinityBriggsBoundary(t *testing.T) {
	cs := deriveCS(t, refuseSrc)
	moves := MovesFromFunc(cs.F, spillcost.DefaultModel)
	if len(moves) != 1 {
		t.Fatalf("moves = %v, want the single x→y copy", moves)
	}
	if aff := BuildAffinity(cs, moves, Conservative, 3, nil); aff != nil {
		t.Errorf("Conservative r=3 merged despite %d significant neighbours", 3)
	}
	for _, tc := range []struct {
		policy Policy
		r      int
	}{{Conservative, 4}, {Aggressive, 3}} {
		aff := BuildAffinity(cs, moves, tc.policy, tc.r, nil)
		if aff == nil || aff.Merged != 1 || aff.NumClasses != 1 {
			t.Fatalf("%v r=%d: affinity = %+v, want one merged class", tc.policy, tc.r, aff)
		}
		x := vertexOf(t, cs, cs.F, "x")
		y := vertexOf(t, cs, cs.F, "y")
		if aff.ClassOf[cs.ValueOf[x]] != aff.ClassOf[cs.ValueOf[y]] || aff.ClassOf[cs.ValueOf[x]] < 0 {
			t.Fatalf("x and y not in one class: %v", aff.ClassOf)
		}
	}
}

// TestBuildAffinityInterferingPairRejected: when the copy source lives past
// the copy, destination and source interfere and no policy may merge them.
func TestBuildAffinityInterferingPairRejected(t *testing.T) {
	cs := deriveCS(t, `
func c ssa {
b0:
  a = param 0
  d = copy a
  e = arith d, a
  ret e
}`)
	moves := MovesFromFunc(cs.F, spillcost.DefaultModel)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	a := vertexOf(t, cs, cs.F, "a")
	d := vertexOf(t, cs, cs.F, "d")
	if !interferes(cs, int(a), int(d)) {
		t.Fatal("a and d must interfere (a lives past the copy)")
	}
	for _, p := range []Policy{Aggressive, Conservative} {
		if aff := BuildAffinity(cs, moves, p, 4, nil); aff != nil {
			t.Errorf("%v merged an interfering pair: %+v", p, aff)
		}
	}
}

// TestSelfMoveSkipped: a φ whose operand is its own def (loop-carried
// identity) is a self-move — zero profit, and merging a vertex with itself
// must never be attempted or counted.
func TestSelfMoveSkipped(t *testing.T) {
	f := ir.MustParse(`
func s ssa {
b0:
  i0 = param 0
  br b1
b1:
  i = phi [b0: i0], [b1: i]
  c = unary i
  condbr c, b1, b2
b2:
  ret i
}`)
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	moves := MovesFromFunc(f, spillcost.DefaultModel)
	for _, m := range moves {
		if m.Dst == m.Src {
			t.Fatalf("self-move survived extraction: %+v", m)
		}
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %v, want only the i←i0 entry move", moves)
	}
}

// TestBriggsClassMergeReducesToPairwise: for singleton classes the
// class-level criterion must agree with the classical pairwise Briggs test
// on the materialized graph (degree correction of a shared neighbour is
// deg−1, exactly the adjCount formula at k=2).
func TestBriggsClassMergeReducesToPairwise(t *testing.T) {
	cs := deriveCS(t, refuseSrc)
	g := cs.BuildGraph()
	x := int(vertexOf(t, cs, cs.F, "x"))
	y := int(vertexOf(t, cs, cs.F, "y"))
	sc := &BiasScratch{}
	sc.grow(cs.N)
	for r := 1; r <= 6; r++ {
		classOK := briggsClassOK(cs, []int32{int32(x)}, []int32{int32(y)}, r, sc)
		// Pairwise reference on the explicit graph.
		significant := 0
		for u := 0; u < cs.N; u++ {
			if u == x || u == y || (!g.HasEdge(x, u) && !g.HasEdge(y, u)) {
				continue
			}
			deg := g.Degree(u)
			if g.HasEdge(x, u) && g.HasEdge(y, u) {
				deg--
			}
			if deg >= r {
				significant++
			}
		}
		pairOK := r > 0 && significant < r
		if classOK != pairOK {
			t.Errorf("r=%d: class-level %v, pairwise reference %v (significant=%d)",
				r, classOK, pairOK, significant)
		}
	}
}
