// Package coalesce implements register coalescing on interference graphs:
// merging copy-related values so the copies (φ-moves and explicit copies)
// disappear. The paper's conclusion (§8) lists the interaction between
// layered allocation and coalescing as the main open integration question;
// this package provides the two classical policies so that interaction can
// be measured:
//
//   - Aggressive: merge every copy-related, non-interfering pair (Chaitin).
//     Maximal move elimination, but merging can make the graph harder to
//     colour.
//   - Conservative: merge only when the Briggs criterion holds — the merged
//     node has fewer than R neighbors of significant degree (≥ R) — which
//     preserves colourability with R registers.
//
// Both operate on the vertex set of an ifg.Build via union-find and report
// the eliminated move cost under the block-frequency model.
package coalesce

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/spillcost"
)

// Move is one register-to-register copy: a φ operand flowing across a CFG
// edge, or an explicit copy instruction. Costs use the source block's
// frequency (where the move instruction would be placed).
type Move struct {
	// Dst and Src are interference-graph vertices.
	Dst, Src int
	// Cost is the dynamic frequency of the move.
	Cost float64
}

// Moves extracts all coalescable moves of a function: φ-operand transfers
// (placed on the incoming edge, charged at the predecessor's frequency) and
// OpCopy instructions. Moves whose endpoints lack vertices (dead code) are
// skipped.
func Moves(b *ifg.Build, model spillcost.Model) []Move {
	f := b.F
	freqs := spillcost.BlockFrequencies(f, model)
	var out []Move
	add := func(dstVal, srcVal int, cost float64) {
		dst, src := b.VertexOf[dstVal], b.VertexOf[srcVal]
		if dst < 0 || src < 0 || dst == src {
			return
		}
		out = append(out, Move{Dst: dst, Src: src, Cost: cost})
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			switch ins.Op {
			case ir.OpPhi:
				for k, u := range ins.Uses {
					if k < len(blk.Preds) {
						add(ins.Def, u, freqs[blk.Preds[k]])
					}
				}
			case ir.OpCopy:
				add(ins.Def, ins.Uses[0], freqs[blk.ID])
			}
		}
	}
	return out
}

// Result reports a coalescing run.
type Result struct {
	// Rep maps each vertex to its representative after merging.
	Rep []int
	// Merged is the number of union operations performed.
	Merged int
	// EliminatedCost and TotalCost are the move costs removed and present.
	EliminatedCost, TotalCost float64
}

// MovesEliminated returns the fraction of move cost eliminated (0 when
// there are no moves).
func (r *Result) MovesEliminated() float64 {
	if r.TotalCost == 0 {
		return 0
	}
	return r.EliminatedCost / r.TotalCost
}

// Policy selects the merge criterion. The zero value is Off so that configs
// which never mention coalescing keep the historical (unbiased) behavior.
type Policy int

const (
	// Off performs no coalescing: assignment is unbiased, byte-identical to
	// the pre-coalescing pipeline.
	Off Policy = iota
	// Aggressive merges every non-interfering copy-related pair (Chaitin).
	Aggressive
	// Conservative applies the Briggs test with R registers.
	Conservative
)

// String returns the canonical policy name ("off", "aggressive",
// "conservative").
func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Aggressive:
		return "aggressive"
	case Conservative:
		return "conservative"
	}
	return "invalid"
}

// Valid reports whether p is one of the defined policies.
func (p Policy) Valid() bool { return p >= Off && p <= Conservative }

// PolicyByName resolves a policy name. The empty string and "off" map to
// Off; "aggressive" and "conservative" (or "briggs") to the two merge
// criteria.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "", "off":
		return Off, true
	case "aggressive":
		return Aggressive, true
	case "conservative", "briggs":
		return Conservative, true
	}
	return Off, false
}

// Run coalesces the moves over the interference graph of b. R is only used
// by the Conservative policy. Moves are processed in decreasing cost order
// (most valuable merges first), the standard priority.
func Run(b *ifg.Build, moves []Move, policy Policy, r int) *Result {
	n := b.Graph.N()
	res := &Result{Rep: make([]int, n)}
	for i := range res.Rep {
		res.Rep[i] = i
	}
	if policy == Off {
		for _, m := range moves {
			res.TotalCost += m.Cost
		}
		return res
	}
	var find func(int) int
	find = func(x int) int {
		if res.Rep[x] != x {
			res.Rep[x] = find(res.Rep[x])
		}
		return res.Rep[x]
	}
	// Working adjacency over representatives, as bitset rows copied from the
	// interference graph.
	adj := make([]bitset.Set, n)
	for v := 0; v < n; v++ {
		adj[v] = b.Graph.AdjRow(v).Clone()
	}
	merge := func(a, c int) {
		// Merge c into a: a inherits c's neighbors, and every neighbor of c
		// now points at a instead.
		adj[c].ForEach(func(u int) {
			if u != a {
				adj[u].Remove(c)
				adj[u].Add(a)
			}
		})
		adj[a].Or(adj[c])
		adj[a].Remove(a)
		adj[a].Remove(c)
		adj[c] = nil
		res.Rep[c] = a
	}

	sorted := append([]Move(nil), moves...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cost > sorted[j].Cost })
	for _, m := range sorted {
		res.TotalCost += m.Cost
		a, c := find(m.Dst), find(m.Src)
		if a == c {
			res.EliminatedCost += m.Cost // already coalesced by an earlier merge
			continue
		}
		if adj[a].Has(c) {
			continue // interfering: the move is real
		}
		if policy == Conservative && !briggsOK(adj, a, c, r) {
			continue
		}
		merge(a, c)
		res.Merged++
		res.EliminatedCost += m.Cost
	}
	return res
}

// briggsOK applies the Briggs conservative test: after merging a and c, the
// combined node must have fewer than r neighbors of degree ≥ r. Such a merge
// can never turn an r-colourable graph uncolourable (the merged node still
// simplifies).
func briggsOK(adj []bitset.Set, a, c, r int) bool {
	if r <= 0 {
		return false
	}
	unionScratch := bitset.Get(len(adj))
	union := *unionScratch
	union.CopyFrom(adj[a])
	union.Or(adj[c])
	union.Remove(a)
	union.Remove(c)
	significant := 0
	ok := true
	union.ForEach(func(u int) {
		if !ok {
			return
		}
		deg := adj[u].Count()
		// If u neighbors both a and c, merging reduces its degree by
		// one; account for that before comparing with r.
		if adj[a].Has(u) && adj[c].Has(u) {
			deg--
		}
		if deg >= r {
			significant++
			if significant >= r {
				ok = false
			}
		}
	})
	bitset.Put(unionScratch)
	return ok
}

// MergedGraphColorableBySimplify checks the Briggs guarantee on the merged
// graph: repeated removal of nodes with degree < r empties it. This is the
// precise property conservative coalescing preserves (and the test suite
// asserts).
func MergedGraphColorableBySimplify(b *ifg.Build, res *Result, r int) bool {
	// Rebuild merged adjacency over representative vertices.
	n := b.Graph.N()
	find := func(x int) int {
		for res.Rep[x] != x {
			x = res.Rep[x]
		}
		return x
	}
	adj := make([]bitset.Set, n)
	present := bitset.New(n)
	for v := 0; v < n; v++ {
		rv := find(v)
		if adj[rv] == nil {
			adj[rv] = bitset.New(n)
			present.Add(rv)
		}
		b.Graph.VisitNeighbors(v, func(u int) {
			ru := find(u)
			if ru != rv {
				adj[rv].Add(ru)
				if adj[ru] == nil {
					adj[ru] = bitset.New(n)
					present.Add(ru)
				}
				adj[ru].Add(rv)
			}
		})
	}
	remaining := present.Count()
	for remaining > 0 {
		removed := false
		present.ForEach(func(v int) {
			if adj[v].IntersectionCount(present) < r {
				present.Remove(v)
				remaining--
				removed = true
			}
		})
		if !removed {
			return false
		}
	}
	return true
}
