// Package faultinject provides seeded, deterministic fault plans for chaos
// testing the allocation pipeline and the allocation server. A Plan is a
// precomputed schedule mapping operation index → fault kind, entirely
// determined by (seed, length, mix): the same seed always yields the same
// faults in the same order, so a chaos soak that finds a bug is replayable
// from its seed alone.
//
// The package deliberately contains no injection mechanism of its own
// beyond ChaosAllocator: faults are threaded through the hooks the system
// already has — an allocator that panics or stalls (ChaosAllocator wraps
// any registered allocator), mid-batch cancellation via context, forced
// cache misses via novel request bodies, and transient encode failures via
// the server's test hook.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
)

// Kind is one fault class.
type Kind uint8

const (
	// None: the operation proceeds unfaulted.
	None Kind = iota
	// Panic: the allocator panics mid-function (the pipeline must convert
	// it into a typed per-function error, never crash the batch).
	Panic
	// Stall: the allocator sleeps past the request deadline.
	Stall
	// EncodeError: the response encoder fails transiently.
	EncodeError
	// CacheMiss: the outcome cache is forced to miss (a novel body).
	CacheMiss
	// Cancel: the request (or batch) is canceled mid-flight.
	Cancel

	numKinds
)

var kindNames = [numKinds]string{"none", "panic", "stall", "encode-error", "cache-miss", "cancel"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Mix weighs the fault kinds of a plan. Weights are relative (they need not
// sum to anything); a zero-weight kind never fires. The zero Mix is invalid
// — use DefaultMix for a sensible chaos blend.
type Mix struct {
	None, Panic, Stall, EncodeError, CacheMiss, Cancel int
}

// DefaultMix keeps roughly half the operations healthy and spreads the rest
// across every fault kind.
func DefaultMix() Mix {
	return Mix{None: 10, Panic: 2, Stall: 2, EncodeError: 2, CacheMiss: 2, Cancel: 2}
}

func (m Mix) weights() [numKinds]int {
	return [numKinds]int{m.None, m.Panic, m.Stall, m.EncodeError, m.CacheMiss, m.Cancel}
}

// Plan is a precomputed fault schedule for n operations. Immutable after
// NewPlan and safe for concurrent use.
type Plan struct {
	faults []Kind
	counts [numKinds]int
}

// NewPlan builds the deterministic schedule for (seed, n, mix): operation i
// gets fault At(i), drawn by weighted choice from mix. It panics when every
// weight is zero or any is negative — a test-configuration bug, not a
// runtime condition.
func NewPlan(seed int64, n int, mix Mix) *Plan {
	w := mix.weights()
	total := 0
	for _, v := range w {
		if v < 0 {
			panic(fmt.Sprintf("faultinject: negative weight in mix %+v", mix))
		}
		total += v
	}
	if total == 0 {
		panic("faultinject: mix has no positive weight")
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{faults: make([]Kind, n)}
	for i := range p.faults {
		pick := rng.Intn(total)
		for k, v := range w {
			if pick < v {
				p.faults[i] = Kind(k)
				p.counts[k]++
				break
			}
			pick -= v
		}
	}
	return p
}

// Len returns the number of scheduled operations.
func (p *Plan) Len() int { return len(p.faults) }

// At returns the fault of operation i; out-of-range indexes (and a nil
// plan) are unfaulted.
func (p *Plan) At(i int) Kind {
	if p == nil || i < 0 || i >= len(p.faults) {
		return None
	}
	return p.faults[i]
}

// Count returns how many operations of the plan carry fault k.
func (p *Plan) Count(k Kind) int {
	if p == nil || k >= numKinds {
		return 0
	}
	return p.counts[k]
}

// Schedule is a concurrency-safe cursor over a plan: each Next call claims
// the next operation index exactly once, so concurrent consumers (e.g. the
// pool workers of a batch) split the plan without coordination.
type Schedule struct {
	plan *Plan
	next atomic.Int64
}

// Schedule returns a fresh cursor over the plan.
func (p *Plan) Schedule() *Schedule { return &Schedule{plan: p} }

// Next claims and returns the next scheduled fault; operations beyond the
// plan's length are unfaulted.
func (s *Schedule) Next() Kind {
	return s.plan.At(int(s.next.Add(1)) - 1)
}

// Claimed returns how many operations have been claimed so far.
func (s *Schedule) Claimed() int { return int(s.next.Load()) }

// ChaosAllocator wraps a delegate allocator and injects the schedule's
// Panic and Stall faults at Allocate time (other kinds are no-ops here —
// they are injected at other layers). Each pipeline worker should hold its
// own ChaosAllocator instance (delegates keep per-run scratch), sharing one
// Schedule so the plan is consumed exactly once across the pool.
type ChaosAllocator struct {
	name     string
	delegate alloc.Allocator
	sched    *Schedule
	stall    time.Duration
}

// NewChaosAllocator wraps delegate under the given registry-style name.
// stall is how long a Stall fault sleeps (pick it longer than the deadline
// under test).
func NewChaosAllocator(name string, delegate alloc.Allocator, sched *Schedule, stall time.Duration) *ChaosAllocator {
	return &ChaosAllocator{name: name, delegate: delegate, sched: sched, stall: stall}
}

// Name implements alloc.Allocator.
func (c *ChaosAllocator) Name() string { return c.name }

// Allocate injects the next scheduled fault, then delegates.
func (c *ChaosAllocator) Allocate(p *alloc.Problem) *alloc.Result {
	switch c.sched.Next() {
	case Panic:
		panic(fmt.Sprintf("faultinject: planned panic in %s", c.name))
	case Stall:
		time.Sleep(c.stall)
	}
	return c.delegate.Allocate(p)
}

// CheckProblem forwards the structural gate of the delegate, when it has
// one, so a chaos run rejects malformed problems with the same typed errors
// as the real allocator.
func (c *ChaosAllocator) CheckProblem(p *alloc.Problem) error {
	if ck, ok := c.delegate.(alloc.ProblemChecker); ok {
		return ck.CheckProblem(p)
	}
	return nil
}
