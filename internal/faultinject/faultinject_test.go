package faultinject

import (
	"sync"
	"testing"
)

func TestPlanDeterminism(t *testing.T) {
	a := NewPlan(42, 500, DefaultMix())
	b := NewPlan(42, 500, DefaultMix())
	for i := 0; i < 500; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("plans diverge at %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	c := NewPlan(43, 500, DefaultMix())
	same := true
	for i := 0; i < 500; i++ {
		if a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanCountsAndMix(t *testing.T) {
	p := NewPlan(7, 1000, DefaultMix())
	total := 0
	for k := Kind(0); k < numKinds; k++ {
		total += p.Count(k)
	}
	if total != 1000 {
		t.Fatalf("counts sum to %d, want 1000", total)
	}
	for k := Panic; k < numKinds; k++ {
		if p.Count(k) == 0 {
			t.Fatalf("a default-mix plan of 1000 never drew %v", k)
		}
	}
	// Zero-weight kinds never fire.
	q := NewPlan(7, 1000, Mix{None: 1, Panic: 1})
	for k := Stall; k < numKinds; k++ {
		if q.Count(k) != 0 {
			t.Fatalf("zero-weight kind %v fired %d times", k, q.Count(k))
		}
	}
}

func TestAtOutOfRange(t *testing.T) {
	p := NewPlan(1, 3, DefaultMix())
	if p.At(-1) != None || p.At(3) != None {
		t.Fatal("out-of-range At is not None")
	}
	var nilPlan *Plan
	if nilPlan.At(0) != None || nilPlan.Count(Panic) != 0 {
		t.Fatal("nil plan is not unfaulted")
	}
}

// TestScheduleClaimsEachIndexOnce drives a shared cursor from many
// goroutines and checks the plan is consumed exactly once: the per-kind
// tallies across all consumers must match the plan's own counts.
func TestScheduleClaimsEachIndexOnce(t *testing.T) {
	const n = 4000
	p := NewPlan(99, n, DefaultMix())
	s := p.Schedule()
	const workers = 8
	tallies := make([][numKinds]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/workers; i++ {
				tallies[w][s.Next()]++
			}
		}(w)
	}
	wg.Wait()
	var got [numKinds]int
	for w := range tallies {
		for k, c := range tallies[w] {
			got[k] += c
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if got[k] != p.Count(k) {
			t.Fatalf("kind %v claimed %d times, plan scheduled %d", k, got[k], p.Count(k))
		}
	}
	if s.Claimed() != n {
		t.Fatalf("claimed %d, want %d", s.Claimed(), n)
	}
}
