package pipeline

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/outcache"
)

// TestRunModuleCacheByteIdentity is the cache's headline guarantee: over a
// duplication-heavy generated module and the checked-in corpus, the full
// detailed report with the cache attached — cold pass, then a warm pass
// serving mostly hits — is byte-identical to the cache-off report, at
// one worker and several.
func TestRunModuleCacheByteIdentity(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 40
	}
	modules := map[string]*ir.Module{
		"dup80": irgen.GenDuplicated(20260808, n, 0.8),
		"dup0":  irgen.GenDuplicated(20260809, n/2, 0),
	}
	if src, err := os.ReadFile("../ir/testdata/modules/mixed.ir"); err == nil {
		modules["corpus"] = ir.MustParseModule(string(src))
	} else {
		t.Logf("corpus module unavailable: %v", err)
	}

	for name, m := range modules {
		for _, jobs := range []int{1, 4} {
			base, err := RunModule(context.Background(), m, Config{Registers: 4, Jobs: jobs})
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", name, jobs, err)
			}
			want := FormatResults(base, true)

			c := outcache.New(1024)
			cfg := Config{Registers: 4, Jobs: jobs, Cache: c}
			for pass := 1; pass <= 3; pass++ {
				results, err := RunModule(context.Background(), m, cfg)
				if err != nil {
					t.Fatalf("%s jobs=%d pass %d: %v", name, jobs, pass, err)
				}
				if got := FormatResults(results, true); got != want {
					t.Fatalf("%s jobs=%d pass %d: cached report differs from cache-off report", name, jobs, pass)
				}
			}
			if name == "dup80" {
				if s := c.Stats(); s.Hits == 0 {
					t.Errorf("%s jobs=%d: three passes over 80%%-duplicated code produced no hits: %+v", name, jobs, s)
				}
			}
		}
	}
}

// TestRunModuleCacheMarksCached: warm-pass results carry Cached=true, and
// FormatResults deliberately ignores the flag (it is metadata, not output).
func TestRunModuleCacheMarksCached(t *testing.T) {
	m := irgen.GenerateModule(404, 30)
	c := outcache.New(256)
	cfg := Config{Registers: 4, Jobs: 2, Cache: c}
	// Pass 1 seeds the ghost filter, pass 2 admits, pass 3 hits.
	for pass := 1; pass <= 2; pass++ {
		if _, err := RunModule(context.Background(), m, cfg); err != nil {
			t.Fatal(err)
		}
	}
	results, err := RunModule(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for i := range results {
		if results[i].Cached {
			cached++
			if results[i].Outcome == nil {
				t.Fatalf("function %s marked Cached without an outcome", results[i].Name)
			}
		}
	}
	if cached == 0 {
		t.Fatal("third pass over an unchanged module served no cached results")
	}
	if strings.Contains(FormatResults(results, true), "ached") {
		t.Fatal("FormatResults leaked the Cached flag into the report")
	}
}

// runsCounted wires the package-internal per-function worker hook into a
// counter. Incremental reuse happens before the worker pool is even
// started, so the counter observes exactly the functions that truly
// re-ran. Callers must keep Jobs at 1 whenever the count is asserted
// exactly (the hook runs on worker goroutines).
func runsCounted(cfg Config, n *int) Config {
	cfg.onFuncDone = func() { *n++ }
	return cfg
}

// TestRunModuleIncrementalOnlyChanged: mutating k of n functions re-runs
// exactly k — the worker pool never sees an unchanged function — while the
// full-length results stay byte-identical to a from-scratch run.
func TestRunModuleIncrementalOnlyChanged(t *testing.T) {
	const n = 40
	m := irgen.GenerateModule(606, n)
	cfg := Config{Registers: 4, Jobs: 1}

	ran := 0
	r1, rev1, err := RunModuleIncremental(context.Background(), m, runsCounted(cfg, &ran), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("first revision ran %d functions, want all %d", ran, n)
	}
	if rev1.Len() != n {
		t.Fatalf("revision holds %d outcomes, want %d", rev1.Len(), n)
	}

	// Mutate three functions (an immediate tweak each), leave the rest.
	m2 := &ir.Module{Funcs: append([]*ir.Func(nil), m.Funcs...)}
	mutated := map[int]bool{3: true, 17: true, 29: true}
	for i := range mutated {
		g := m2.Funcs[i].Clone()
		g.Blocks[0].Instrs[0].Imm += 40
		m2.Funcs[i] = g
	}

	ran = 0
	r2, rev2, err := RunModuleIncremental(context.Background(), m2, runsCounted(cfg, &ran), rev1)
	if err != nil {
		t.Fatal(err)
	}
	if ran != len(mutated) {
		t.Fatalf("incremental run executed %d functions, want exactly the %d changed", ran, len(mutated))
	}
	if rev2.Len() != n {
		t.Fatalf("second revision holds %d outcomes, want %d", rev2.Len(), n)
	}
	for i := range r2 {
		if r2[i].Cached == mutated[i] {
			t.Fatalf("function %d: Cached=%v but mutated=%v", i, r2[i].Cached, mutated[i])
		}
	}

	// Byte-identity against a from-scratch run of the mutated module.
	scratch, err := RunModule(context.Background(), m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if FormatResults(r2, true) != FormatResults(scratch, true) {
		t.Fatal("incremental results differ from a from-scratch run")
	}
	_ = r1
}

// TestRunModuleIncrementalContentAddressed: renaming, reordering and
// duplicating functions with known bodies is free — no function re-runs.
func TestRunModuleIncrementalContentAddressed(t *testing.T) {
	m := irgen.GenerateModule(707, 12)
	cfg := Config{Registers: 4, Jobs: 2}
	_, rev1, err := RunModuleIncremental(context.Background(), m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Next revision: reversed order, fresh names, plus a duplicate.
	funcs := make([]*ir.Func, 0, len(m.Funcs)+1)
	for i := len(m.Funcs) - 1; i >= 0; i-- {
		funcs = append(funcs, irgen.AlphaRename(m.Funcs[i], "ren"+m.Funcs[i].Name, 100+i))
	}
	funcs = append(funcs, irgen.AlphaRename(m.Funcs[0], "dup0", 200))
	m2 := &ir.Module{Funcs: funcs}

	ran := 0
	r2, _, err := RunModuleIncremental(context.Background(), m2, runsCounted(cfg, &ran), rev1)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("rename+reorder+duplicate re-ran %d functions, want 0 (diff is content-addressed)", ran)
	}
	scratch, err := RunModule(context.Background(), m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if FormatResults(r2, true) != FormatResults(scratch, true) {
		t.Fatal("fully-reused incremental results differ from a from-scratch run")
	}
}

// TestRunModuleIncrementalErrors: failing functions carry their error,
// are absent from the revision, and re-run on the next revision.
func TestRunModuleIncrementalErrors(t *testing.T) {
	m := ir.MustParseModule(`
func ok ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}

func multidef {
b0:
  x = param 0
  x = arith x, x
  ret x
}
`)
	cfg := Config{Registers: 4, Allocator: "NL", Jobs: 1} // chordal-only: multidef fails
	r1, rev1, err := RunModuleIncremental(context.Background(), m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Err != nil || r1[1].Err == nil {
		t.Fatalf("expected [ok, error], got errs [%v, %v]", r1[0].Err, r1[1].Err)
	}
	if rev1.Len() != 1 {
		t.Fatalf("revision holds %d outcomes, want 1 (failed functions are not cached)", rev1.Len())
	}

	ran := 0
	r2, rev2, err := RunModuleIncremental(context.Background(), m, runsCounted(cfg, &ran), rev1)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("second revision ran %d functions, want 1 (only the failing one)", ran)
	}
	if !r2[0].Cached || r2[0].Err != nil {
		t.Fatalf("ok function not reused: cached=%v err=%v", r2[0].Cached, r2[0].Err)
	}
	if r2[1].Err == nil {
		t.Fatal("failing function lost its error on re-run")
	}
	if rev2.Len() != 1 {
		t.Fatalf("second revision holds %d outcomes, want 1", rev2.Len())
	}
}

// TestRunModuleIncrementalConfigErrors pins the fail-fast paths.
func TestRunModuleIncrementalConfigErrors(t *testing.T) {
	m := irgen.GenerateModule(1, 2)
	if _, _, err := RunModuleIncremental(context.Background(), m, Config{Registers: 0}, nil); err == nil {
		t.Error("accepted Registers=0")
	}
	if _, _, err := RunModuleIncremental(context.Background(), &ir.Module{}, Config{Registers: 4}, nil); err == nil {
		t.Error("accepted empty module")
	}
	if _, _, err := RunModuleIncremental(context.Background(), nil, Config{Registers: 4}, nil); err == nil {
		t.Error("accepted nil module")
	}
}
