// Package pipeline runs the register-allocation pipeline over whole
// modules: it fans the functions of an ir.Module out over a fixed worker
// pool, reuses per-worker analysis scratch (a core.Runner each) across
// functions instead of reallocating it, and returns results in module
// order regardless of the worker count — the batch layer that turns the
// single-function library into a throughput-oriented system.
//
// Determinism contract: the result for each function depends only on that
// function and the configuration, never on scheduling, so RunModule output
// is byte-identical across worker counts (pinned by the package tests under
// the race detector).
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/budget"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/ir"
	"repro/internal/outcache"
	"repro/internal/raerr"
	"repro/internal/spillcost"
)

// Config controls one batch run. Unlike core.Config it names the allocator
// instead of carrying an instance: allocator implementations may keep
// per-run state (the exact solver records LastExact), so each worker
// resolves a private instance.
type Config struct {
	// Registers is the register count R (required, ≥ 1).
	Registers int
	// Allocator is a core.AllocatorByName name; "" picks the default
	// (BFPL for chordal/SSA functions, LH otherwise).
	Allocator string
	// CostModel overrides the spill-cost estimate (zero value = default).
	CostModel spillcost.Model
	// Constraints, when non-nil, turns on machine-constrained allocation:
	// register classes, pre-colored ABI values and call clobbers are
	// honored, with Registers acting as the per-class capacity.
	Constraints *arch.Constraints
	// SkipRewrite disables spill-code insertion and register assignment.
	SkipRewrite bool
	// Jobs is the worker count; 0 means GOMAXPROCS.
	Jobs int
	// NoScratchReuse gives every function a fresh pipeline instead of the
	// per-worker core.Runner. Allocation-benchmark ablation only — results
	// are identical either way.
	NoScratchReuse bool
	// LegacyIFG forces the explicit interference-graph path even for
	// functions eligible for the IFG-free fast path (benchmark ablation and
	// differential testing; results are identical either way).
	LegacyIFG bool
	// TrustedCostModel skips the batch-level CostModel validation: the
	// caller (the regalloc Engine, which validates at construction time)
	// guarantees the model is well-formed.
	TrustedCostModel bool
	// Coalescing enables coalescing-biased register assignment on the
	// IFG-free fast path; see core.Config.Coalescing. The zero value
	// (coalesce.Off) is byte-identical to the unbiased pipeline.
	// Incompatible with LegacyIFG.
	Coalescing coalesce.Policy
	// Budget, when Active, bounds every function's resources (wall-clock
	// deadline, work-step budget, admission gate); see core.Config.Budget.
	// The deadline is per function, not per batch.
	Budget budget.Limits
	// Degrade converts per-function budget trips into degraded-but-correct
	// outcomes (FuncResult.Outcome.Degraded records the ladder rung) instead
	// of per-function errors; see core.Config.Degrade. Degraded outcomes are
	// never published to Cache — the trip point depends on wall-clock time,
	// and a later, better-funded run must be able to replace them.
	Degrade bool
	// Cache, when non-nil, is consulted before each function runs and
	// published to after each successful run: workers key it by the
	// function's structural fingerprint folded with the allocation config,
	// so redundant functions cost a hash plus a copy. Results are
	// byte-identical with the cache on or off, at any Jobs count.
	Cache *outcache.Cache
	// onFuncDone, when set, runs on the worker goroutine after every
	// completed function — a package-internal test hook that makes
	// mid-batch cancellation deterministic to provoke.
	onFuncDone func()
}

// FuncResult is the outcome of one function of the module.
type FuncResult struct {
	// Index is the function's position in the module.
	Index int
	// Name is the function's name.
	Name string
	// Outcome is the full pipeline outcome (nil when Err is set).
	Outcome *core.Outcome
	// Err is the per-function failure, if any; other functions of the
	// module are unaffected.
	Err error
	// Cached reports that the outcome was served from the outcome cache
	// (Config.Cache) or reused from a previous revision (incremental mode)
	// instead of being recomputed. Cached outcomes are byte-identical to
	// recomputed ones; FormatResults deliberately ignores this flag so the
	// rendering stays the determinism witness.
	Cached bool
}

// RunModule allocates every function of m under cfg. The returned slice is
// indexed by module position (deterministic for any worker count);
// per-function failures land in FuncResult.Err rather than aborting the
// batch. The module functions themselves are annotated in place with loop
// depths, as core.Run does.
//
// Workers check ctx between functions, so a long batch is cancellable: on
// cancellation RunModule still returns the full-length result slice with
// every function that completed before the cut, marks the unprocessed ones
// with raerr.ErrCanceled, and returns an error wrapping both
// raerr.ErrCanceled and the context's own error.
func RunModule(ctx context.Context, m *ir.Module, cfg Config) ([]FuncResult, error) {
	results, _, err := start(ctx, m, cfg, nil)
	return results, err
}

// RunModuleStream is RunModule in streaming form: yield observes every
// FuncResult in module order (the same deterministic order RunModule
// returns) as soon as it and all its predecessors are done, without waiting
// for the rest of the batch. A non-nil error from yield stops the workers
// and is returned verbatim. On context cancellation the stream ends early
// with an error wrapping raerr.ErrCanceled; results that were computed but
// not yet yielded are dropped, never reordered.
func RunModuleStream(ctx context.Context, m *ir.Module, cfg Config, yield func(FuncResult) error) error {
	// Each index is sent exactly once, so a module-sized buffer means a
	// worker never blocks on the ordering barrier: a slow yield (or a slow
	// head-of-line function) back-pressures the emission loop, not the
	// pool. This was a measurable serialization point for multi-core runs.
	buf := 0
	if m != nil {
		buf = len(m.Funcs)
	}
	notify := make(chan int, buf)
	results, wait, err := start(ctx, m, cfg, notify)
	if err != nil && results == nil {
		return err // configuration error: no workers were started
	}
	emitted, nextEmit := make([]bool, len(results)), 0
	var yieldErr error
	for i := range notify {
		emitted[i] = true
		for nextEmit < len(results) && emitted[nextEmit] {
			if yieldErr == nil {
				if yieldErr = yield(results[nextEmit]); yieldErr != nil {
					wait.cancel() // stop the workers; keep draining notify
				}
			}
			nextEmit++
		}
	}
	if yieldErr != nil {
		return yieldErr
	}
	return wait.err()
}

// batchHandle lets the stream front-end cancel and join a running batch.
type batchHandle struct {
	cancel context.CancelFunc
	errFn  func() error
}

func (h *batchHandle) err() error { return h.errFn() }

// start validates cfg, fans the workers out, and — when notify is nil —
// joins them before returning. With a notify channel, completion indexes
// are delivered on it as workers finish functions and the channel is closed
// once all workers exit; the caller drains it and then calls handle.err().
func start(ctx context.Context, m *ir.Module, cfg Config, notify chan int) ([]FuncResult, *batchHandle, error) {
	if m == nil || len(m.Funcs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty module", raerr.ErrInvalidConfig)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(m.Funcs) {
		jobs = len(m.Funcs)
	}
	results := make([]FuncResult, len(m.Funcs))
	// done[i] is the explicit completion marker for function i, set by the
	// worker that processed it (each index is claimed by exactly one worker
	// and wg.Wait orders the writes before finish reads them). The
	// cancellation accounting below keys on this marker, never on
	// zero-value sentinels in results — a legitimate result can look
	// zero-ish, state must not be conflated with data.
	done := make([]bool, len(m.Funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(ctx, m, cfg, results, done, &next, notify)
		}()
	}
	finish := func() error {
		wg.Wait()
		defer cancel()
		if err := ctx.Err(); err != nil {
			// Partial batch: mark every function no worker completed.
			for i := range results {
				if !done[i] {
					results[i] = FuncResult{Index: i, Name: m.Funcs[i].Name,
						Err: fmt.Errorf("%w: %w", raerr.ErrCanceled, err)}
				}
			}
			return fmt.Errorf("pipeline: module run interrupted: %w: %w", raerr.ErrCanceled, err)
		}
		return nil
	}
	if notify == nil {
		return results, &batchHandle{cancel: cancel}, finish()
	}
	handle := &batchHandle{cancel: cancel}
	var joinOnce sync.Once
	var joinErr error
	handle.errFn = func() error {
		joinOnce.Do(func() { joinErr = finish() })
		return joinErr
	}
	go func() {
		wg.Wait()
		close(notify)
	}()
	return results, handle, nil
}

// validateConfig is the batch-level configuration check shared by the
// module entry points (start and RunModuleIncremental).
func validateConfig(cfg Config) error {
	if cfg.Registers < 1 {
		return fmt.Errorf("%w: Registers must be ≥ 1, got %d", raerr.ErrInvalidConfig, cfg.Registers)
	}
	if cfg.Allocator != "" {
		// Fail fast on unknown names instead of once per function.
		if _, err := core.AllocatorByName(cfg.Allocator); err != nil {
			return err
		}
	}
	if !cfg.TrustedCostModel {
		if err := cfg.CostModel.Validate(); err != nil {
			return fmt.Errorf("%w: invalid cost model: %w", raerr.ErrInvalidConfig, err)
		}
	}
	if cfg.Constraints != nil {
		if err := cfg.Constraints.Validate(); err != nil {
			return fmt.Errorf("%w: %w", raerr.ErrInvalidConfig, err)
		}
	}
	if cfg.Coalescing != coalesce.Off {
		if !cfg.Coalescing.Valid() {
			return fmt.Errorf("%w: unknown coalescing policy %d", raerr.ErrInvalidConfig, cfg.Coalescing)
		}
		if cfg.LegacyIFG {
			return fmt.Errorf("%w: coalescing-biased assignment requires the IFG-free fast path (unset LegacyIFG)",
				raerr.ErrInvalidConfig)
		}
	}
	return nil
}

// fingerprintConfig is the canonical fold of the outcome-affecting half of
// cfg — the content-addressed cache key component shared by the batch
// workers, the engine's single-function path and incremental mode.
func fingerprintConfig(cfg Config) fingerprint.Config {
	return fingerprint.NewConfig(cfg.Registers, cfg.Allocator, cfg.CostModel, !cfg.SkipRewrite, cfg.Constraints, int(cfg.Coalescing))
}

// worker drains the module's function queue with one reusable Runner (and
// one private allocator instance), checking for cancellation between
// functions.
func worker(ctx context.Context, m *ir.Module, cfg Config, results []FuncResult, done []bool, next *atomic.Int64, notify chan int) {
	var runner *core.Runner
	if !cfg.NoScratchReuse {
		runner = core.NewRunner()
	}
	ccfg := core.Config{
		Registers:   cfg.Registers,
		CostModel:   cfg.CostModel,
		Constraints: cfg.Constraints,
		SkipRewrite: cfg.SkipRewrite,
		LegacyIFG:   cfg.LegacyIFG,
		Coalescing:  cfg.Coalescing,
		Budget:      cfg.Budget,
		Degrade:     cfg.Degrade,
		// Either start validated the model for the whole batch, or the
		// caller set Config.TrustedCostModel and owns that guarantee.
		TrustedCostModel: true,
	}
	if cfg.Allocator != "" {
		a, err := core.AllocatorByName(cfg.Allocator)
		if err != nil {
			panic(err) // unreachable: start validates the name up front
		}
		ccfg.Allocator = a
	}
	var fold fingerprint.Config
	if cfg.Cache != nil {
		fold = fingerprintConfig(cfg)
	}
	for {
		if ctx.Err() != nil {
			return
		}
		i := int(next.Add(1)) - 1
		if i >= len(m.Funcs) {
			return
		}
		f := m.Funcs[i]
		if cfg.Cache != nil {
			key := fingerprint.Key(f, fold)
			if out := cfg.Cache.Get(key, f); out != nil {
				results[i] = FuncResult{Index: i, Name: f.Name, Outcome: out, Cached: true}
			} else {
				out, err := RunFunc(runner, f, ccfg)
				results[i] = FuncResult{Index: i, Name: f.Name, Outcome: out, Err: err}
				if err == nil && out.Degraded == nil {
					cfg.Cache.Put(key, out)
				}
			}
		} else {
			out, err := RunFunc(runner, f, ccfg)
			results[i] = FuncResult{Index: i, Name: f.Name, Outcome: out, Err: err}
		}
		done[i] = true
		if cfg.onFuncDone != nil {
			cfg.onFuncDone()
		}
		if notify != nil {
			notify <- i
		}
	}
}

// RunFunc runs one function through runner (or a fresh pipeline when
// runner is nil), converting allocator contract panics into errors so one
// bad function cannot take down a batch service. Exported for front-ends
// that stream single functions (the JSONL service) rather than modules.
func RunFunc(runner *core.Runner, f *ir.Func, cfg core.Config) (out *core.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Keep the typed per-function contract even for panicking
			// (custom) allocators: clients dispatch on *FuncError.
			out, err = nil, &raerr.FuncError{Func: f.Name, Stage: "allocate",
				Err: fmt.Errorf("allocator panicked: %v", r)}
		}
	}()
	if runner != nil {
		return runner.Run(f, cfg)
	}
	return core.Run(f, cfg)
}

// FirstErr returns the first per-function error in module order, or nil.
func FirstErr(results []FuncResult) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("%s: %w", results[i].Name, results[i].Err)
		}
	}
	return nil
}

// FormatResults renders results as the canonical batch report: one line per
// function, plus (with detail) the register assignment and the rewritten
// body of each SSA function. The rendering is a pure function of the
// results, so it doubles as the byte-identity witness of the determinism
// tests.
func FormatResults(results []FuncResult, detail bool) string {
	var b strings.Builder
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			fmt.Fprintf(&b, "func %-16s ERROR %v\n", r.Name, r.Err)
			continue
		}
		out := r.Outcome
		fmt.Fprintf(&b, "func %-16s alloc=%-5s values=%-4d maxlive=%-3d spilled=%-3d cost=%.1f/%.1f",
			r.Name, out.Result.Allocator, out.Problem.N(), out.MaxLive,
			len(out.SpilledValues), out.SpillCost, out.Problem.TotalWeight())
		if out.Degraded != nil {
			fmt.Fprintf(&b, " DEGRADED[%s@%s]", out.Degraded.Rung, out.Degraded.Stage)
		}
		if len(out.SpilledValues) > 0 {
			names := make([]string, len(out.SpilledValues))
			for k, v := range out.SpilledValues {
				names[k] = out.F.NameOf(v)
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " spill=[%s]", strings.Join(names, " "))
		}
		b.WriteByte('\n')
		if detail {
			if out.RegisterOf != nil {
				var cells []string
				for val, reg := range out.RegisterOf {
					if reg >= 0 {
						cells = append(cells, fmt.Sprintf("%s=%s", out.F.NameOf(val), ir.RegName(reg)))
					}
				}
				sort.Strings(cells)
				fmt.Fprintf(&b, "  assignment: %s\n", strings.Join(cells, " "))
			}
			if out.Rewritten != nil {
				for _, line := range strings.Split(strings.TrimRight(out.Rewritten.String(), "\n"), "\n") {
					fmt.Fprintf(&b, "  | %s\n", line)
				}
			}
		}
	}
	return b.String()
}

// Totals aggregates a batch: function, spill and error counts plus total
// spill cost.
type Totals struct {
	Funcs     int
	Errors    int
	Spilled   int
	SpillCost float64
	// Degraded counts functions whose outcome fell down the degradation
	// ladder (budget-governed runs with Config.Degrade).
	Degraded int
}

// Summarize computes batch totals.
func Summarize(results []FuncResult) Totals {
	t := Totals{Funcs: len(results)}
	for i := range results {
		if results[i].Err != nil {
			t.Errors++
			continue
		}
		t.Spilled += len(results[i].Outcome.SpilledValues)
		t.SpillCost += results[i].Outcome.SpillCost
		if results[i].Outcome.Degraded != nil {
			t.Degraded++
		}
	}
	return t
}
