// Package pipeline runs the register-allocation pipeline over whole
// modules: it fans the functions of an ir.Module out over a fixed worker
// pool, reuses per-worker analysis scratch (a core.Runner each) across
// functions instead of reallocating it, and returns results in module
// order regardless of the worker count — the batch layer that turns the
// single-function library into a throughput-oriented system.
//
// Determinism contract: the result for each function depends only on that
// function and the configuration, never on scheduling, so RunModule output
// is byte-identical across worker counts (pinned by the package tests under
// the race detector).
package pipeline

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/spillcost"
)

// Config controls one batch run. Unlike core.Config it names the allocator
// instead of carrying an instance: allocator implementations may keep
// per-run state (the exact solver records LastExact), so each worker
// resolves a private instance.
type Config struct {
	// Registers is the register count R (required, ≥ 1).
	Registers int
	// Allocator is a core.AllocatorByName name; "" picks the default
	// (BFPL for chordal/SSA functions, LH otherwise).
	Allocator string
	// CostModel overrides the spill-cost estimate (zero value = default).
	CostModel spillcost.Model
	// SkipRewrite disables spill-code insertion and register assignment.
	SkipRewrite bool
	// Jobs is the worker count; 0 means GOMAXPROCS.
	Jobs int
	// NoScratchReuse gives every function a fresh pipeline instead of the
	// per-worker core.Runner. Allocation-benchmark ablation only — results
	// are identical either way.
	NoScratchReuse bool
	// LegacyIFG forces the explicit interference-graph path even for
	// functions eligible for the IFG-free fast path (benchmark ablation and
	// differential testing; results are identical either way).
	LegacyIFG bool
}

// FuncResult is the outcome of one function of the module.
type FuncResult struct {
	// Index is the function's position in the module.
	Index int
	// Name is the function's name.
	Name string
	// Outcome is the full pipeline outcome (nil when Err is set).
	Outcome *core.Outcome
	// Err is the per-function failure, if any; other functions of the
	// module are unaffected.
	Err error
}

// RunModule allocates every function of m under cfg. The returned slice is
// indexed by module position (deterministic for any worker count);
// per-function failures land in FuncResult.Err rather than aborting the
// batch. The module functions themselves are annotated in place with loop
// depths, as core.Run does.
func RunModule(m *ir.Module, cfg Config) ([]FuncResult, error) {
	if m == nil || len(m.Funcs) == 0 {
		return nil, fmt.Errorf("pipeline: empty module")
	}
	if cfg.Registers < 1 {
		return nil, fmt.Errorf("pipeline: Registers must be ≥ 1, got %d", cfg.Registers)
	}
	if cfg.Allocator != "" {
		// Fail fast on unknown names instead of once per function.
		if _, err := core.AllocatorByName(cfg.Allocator); err != nil {
			return nil, err
		}
	}
	if err := cfg.CostModel.Validate(); err != nil {
		return nil, err
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(m.Funcs) {
		jobs = len(m.Funcs)
	}
	results := make([]FuncResult, len(m.Funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(m, cfg, results, &next)
		}()
	}
	wg.Wait()
	return results, nil
}

// worker drains the module's function queue with one reusable Runner (and
// one private allocator instance).
func worker(m *ir.Module, cfg Config, results []FuncResult, next *atomic.Int64) {
	var runner *core.Runner
	if !cfg.NoScratchReuse {
		runner = core.NewRunner()
	}
	ccfg := core.Config{
		Registers:   cfg.Registers,
		CostModel:   cfg.CostModel,
		SkipRewrite: cfg.SkipRewrite,
		LegacyIFG:   cfg.LegacyIFG,
		// RunModule validated the model once for the whole batch.
		TrustedCostModel: true,
	}
	if cfg.Allocator != "" {
		a, err := core.AllocatorByName(cfg.Allocator)
		if err != nil {
			panic(err) // unreachable: RunModule validates the name up front
		}
		ccfg.Allocator = a
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(m.Funcs) {
			return
		}
		f := m.Funcs[i]
		out, err := RunFunc(runner, f, ccfg)
		results[i] = FuncResult{Index: i, Name: f.Name, Outcome: out, Err: err}
	}
}

// RunFunc runs one function through runner (or a fresh pipeline when
// runner is nil), converting allocator contract panics into errors so one
// bad function cannot take down a batch service. Exported for front-ends
// that stream single functions (the JSONL service) rather than modules.
func RunFunc(runner *core.Runner, f *ir.Func, cfg core.Config) (out *core.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("pipeline: panic allocating %s: %v", f.Name, r)
		}
	}()
	if runner != nil {
		return runner.Run(f, cfg)
	}
	return core.Run(f, cfg)
}

// FirstErr returns the first per-function error in module order, or nil.
func FirstErr(results []FuncResult) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("%s: %w", results[i].Name, results[i].Err)
		}
	}
	return nil
}

// FormatResults renders results as the canonical batch report: one line per
// function, plus (with detail) the register assignment and the rewritten
// body of each SSA function. The rendering is a pure function of the
// results, so it doubles as the byte-identity witness of the determinism
// tests.
func FormatResults(results []FuncResult, detail bool) string {
	var b strings.Builder
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			fmt.Fprintf(&b, "func %-16s ERROR %v\n", r.Name, r.Err)
			continue
		}
		out := r.Outcome
		fmt.Fprintf(&b, "func %-16s alloc=%-5s values=%-4d maxlive=%-3d spilled=%-3d cost=%.1f/%.1f",
			r.Name, out.Result.Allocator, out.Problem.N(), out.MaxLive,
			len(out.SpilledValues), out.SpillCost, out.Problem.TotalWeight())
		if len(out.SpilledValues) > 0 {
			names := make([]string, len(out.SpilledValues))
			for k, v := range out.SpilledValues {
				names[k] = out.F.NameOf(v)
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " spill=[%s]", strings.Join(names, " "))
		}
		b.WriteByte('\n')
		if detail {
			if out.RegisterOf != nil {
				var cells []string
				for val, reg := range out.RegisterOf {
					if reg >= 0 {
						cells = append(cells, fmt.Sprintf("%s=r%d", out.F.NameOf(val), reg))
					}
				}
				sort.Strings(cells)
				fmt.Fprintf(&b, "  assignment: %s\n", strings.Join(cells, " "))
			}
			if out.Rewritten != nil {
				for _, line := range strings.Split(strings.TrimRight(out.Rewritten.String(), "\n"), "\n") {
					fmt.Fprintf(&b, "  | %s\n", line)
				}
			}
		}
	}
	return b.String()
}

// Totals aggregates a batch: function, spill and error counts plus total
// spill cost.
type Totals struct {
	Funcs     int
	Errors    int
	Spilled   int
	SpillCost float64
}

// Summarize computes batch totals.
func Summarize(results []FuncResult) Totals {
	t := Totals{Funcs: len(results)}
	for i := range results {
		if results[i].Err != nil {
			t.Errors++
			continue
		}
		t.Spilled += len(results[i].Outcome.SpilledValues)
		t.SpillCost += results[i].Outcome.SpillCost
	}
	return t
}
