package pipeline

// Chaos tests for the batch pipeline: a seeded fault plan injects allocator
// panics and mid-batch cancellations and the tests assert the streaming
// contract holds — results arrive in module order exactly once, panicking
// allocators become typed per-function errors instead of crashing the
// batch, and a cancelled stream ends with an in-order prefix.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alloc"
	"repro/internal/faultinject"
	"repro/internal/irgen"
	"repro/internal/raerr"
)

// pipeSched is the fault schedule the registered chaos allocator reads at
// construction time: each test stores its own schedule before running a
// batch (the factory runs per worker, after the Store). Tests sharing it
// must not run in parallel.
var pipeSched atomic.Pointer[faultinject.Schedule]

var registerPipeChaos sync.Once

func ensurePipeChaos() {
	registerPipeChaos.Do(func() {
		alloc.MustRegisterAllocator("chaos-pipe", false, func() alloc.Allocator {
			lh, err := alloc.NewByName("LH")
			if err != nil {
				panic(err)
			}
			return faultinject.NewChaosAllocator("chaos-pipe", lh, pipeSched.Load(), 0)
		})
	})
}

// TestStreamChaosPanics: under a seeded plan of allocator panics, the
// stream still yields every result exactly once in module order; exactly
// the planned number of functions fail, each with a typed *raerr.FuncError.
func TestStreamChaosPanics(t *testing.T) {
	ensurePipeChaos()
	const n = 48
	plan := faultinject.NewPlan(21, n, faultinject.Mix{None: 3, Panic: 1})
	pipeSched.Store(plan.Schedule())
	m := irgen.GenerateModule(606, n)

	var streamed []FuncResult
	err := RunModuleStream(context.Background(), m, Config{Registers: 3, Jobs: 4, Allocator: "chaos-pipe"}, func(r FuncResult) error {
		streamed = append(streamed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != n {
		t.Fatalf("streamed %d results, want %d", len(streamed), n)
	}
	panicked := 0
	for i, r := range streamed {
		if r.Index != i {
			t.Fatalf("stream out of order: position %d carries index %d", i, r.Index)
		}
		switch {
		case r.Err != nil:
			var fe *raerr.FuncError
			if !errors.As(r.Err, &fe) {
				t.Fatalf("function %s: panic surfaced as %T (%v), want *raerr.FuncError", r.Name, r.Err, r.Err)
			}
			if fe.Stage != "allocate" || fe.Func != r.Name {
				t.Fatalf("typed panic error misattributed: %+v for function %s", fe, r.Name)
			}
			if !strings.Contains(fe.Err.Error(), "panicked") {
				t.Fatalf("panic error lost its cause: %v", fe.Err)
			}
			panicked++
		case r.Outcome == nil:
			t.Fatalf("result %d has neither outcome nor error", i)
		}
	}
	if want := plan.Count(faultinject.Panic); panicked != want {
		t.Fatalf("%d functions panicked, plan scheduled %d", panicked, want)
	}
}

// TestRunModulePanicTypedError: one planned panic fails exactly its
// function with a typed error; the sibling functions of the batch complete
// normally and the batch itself does not error.
func TestRunModulePanicTypedError(t *testing.T) {
	ensurePipeChaos()
	// A single-operation plan with a single worker: the panic lands
	// deterministically on the module's first function.
	pipeSched.Store(faultinject.NewPlan(5, 1, faultinject.Mix{Panic: 1}).Schedule())
	m := irgen.GenerateModule(909, 10)

	results, err := RunModule(context.Background(), m, Config{Registers: 3, Jobs: 1, Allocator: "chaos-pipe"})
	if err != nil {
		t.Fatalf("a per-function panic aborted the batch: %v", err)
	}
	var fe *raerr.FuncError
	if results[0].Err == nil || !errors.As(results[0].Err, &fe) {
		t.Fatalf("first function's panic not converted to *raerr.FuncError: %v", results[0].Err)
	}
	if fe.Func != m.Funcs[0].Name || fe.Stage != "allocate" {
		t.Fatalf("typed panic error misattributed: %+v", fe)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil || results[i].Outcome == nil {
			t.Fatalf("sibling function %d harmed by the panic: %+v", i, results[i])
		}
	}
}

// rejectingAllocator always fails CheckProblem: it stands in for an
// allocator whose structural precondition no input can meet (a malformed
// problem), exercising the registry gate from the pipeline side.
type rejectingAllocator struct{}

func (rejectingAllocator) Name() string { return "chaos-reject" }
func (rejectingAllocator) CheckProblem(p *alloc.Problem) error {
	return fmt.Errorf("%w: injected structural rejection", raerr.ErrInvalidConfig)
}
func (rejectingAllocator) Allocate(p *alloc.Problem) *alloc.Result {
	panic("chaos-reject: Allocate reached despite CheckProblem rejection")
}

var registerRejecting sync.Once

// TestRunModuleMalformedProblemTypedError: a problem the allocator's
// CheckProblem rejects surfaces as a typed per-function *raerr.FuncError
// wrapping the gate's sentinel — the batch neither panics nor aborts, and
// Allocate is never reached (the allocator's panic backstop stays silent).
func TestRunModuleMalformedProblemTypedError(t *testing.T) {
	registerRejecting.Do(func() {
		alloc.MustRegisterAllocator("chaos-reject", false, func() alloc.Allocator {
			return rejectingAllocator{}
		})
	})
	const n = 8
	m := irgen.GenerateModule(808, n)
	results, err := RunModule(context.Background(), m, Config{Registers: 3, Jobs: 4, Allocator: "chaos-reject"})
	if err != nil {
		t.Fatalf("per-function structural rejections aborted the batch: %v", err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		var fe *raerr.FuncError
		if r.Err == nil || !errors.As(r.Err, &fe) {
			t.Fatalf("function %d: CheckProblem rejection surfaced as %T (%v), want *raerr.FuncError", i, r.Err, r.Err)
		}
		if fe.Stage != "allocate" || fe.Func != m.Funcs[i].Name {
			t.Fatalf("typed rejection misattributed: %+v for function %s", fe, m.Funcs[i].Name)
		}
		if !errors.Is(r.Err, raerr.ErrInvalidConfig) {
			t.Fatalf("function %d: error %v does not wrap raerr.ErrInvalidConfig", i, r.Err)
		}
	}
}

// TestStreamChaosMidBatchCancel: a cancellation landing mid-batch ends the
// stream with an error wrapping raerr.ErrCanceled and an in-order,
// error-free prefix of yielded results — computed-but-unyielded results
// are dropped, never reordered, and canceled placeholders are not yielded.
func TestStreamChaosMidBatchCancel(t *testing.T) {
	const n = 30
	m := irgen.GenerateModule(707, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := make(chan struct{}, n)
	go func() {
		<-seen
		cancel()
	}()
	var streamed []FuncResult
	// The hook parks every completing worker until the cancel lands, so
	// the cut is deterministic (at most Jobs functions complete).
	err := RunModuleStream(ctx, m, Config{Registers: 4, Jobs: 2, onFuncDone: func() {
		select {
		case seen <- struct{}{}:
		default:
		}
		<-ctx.Done()
	}}, func(r FuncResult) error {
		streamed = append(streamed, r)
		return nil
	})
	if err == nil {
		t.Skip("batch completed before cancellation (machine too fast for the race)")
	}
	if !errors.Is(err, raerr.ErrCanceled) {
		t.Fatalf("stream error %v does not wrap raerr.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error %v does not wrap context.Canceled", err)
	}
	if len(streamed) >= n {
		t.Fatalf("cancelled stream yielded all %d results", len(streamed))
	}
	for i, r := range streamed {
		if r.Index != i {
			t.Fatalf("cancelled stream reordered: position %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("cancelled stream yielded a failed result %d: %v", i, r.Err)
		}
	}
}
