package pipeline

import (
	"context"
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/ir"
	"repro/internal/outcache"
	"repro/internal/raerr"
)

// Revision is the content-addressed snapshot of one module allocation: for
// every function that allocated successfully, its canonical outcome keyed
// by (structural fingerprint × config). RunModuleIncremental diffs the next
// module against it and re-runs only the functions whose key is new —
// the recompilation loop of a tiering JIT or compile server.
//
// A Revision is immutable and safe for concurrent use; entries are shared
// (never copied) between consecutive revisions, so carrying a long chain of
// revisions costs only the changed functions.
type Revision struct {
	entries map[fingerprint.FP]*outcache.Entry
}

// Len returns the number of cached function outcomes in the revision.
func (r *Revision) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// RunModuleIncremental allocates m, reusing from prev the outcome of every
// function whose fingerprint (structure × config) is unchanged and running
// the rest through the regular worker pool. A nil prev runs everything.
// It returns the full-length, module-ordered results — reused outcomes are
// marked Cached and are byte-identical to recomputed ones — plus the next
// Revision to diff against. The diff is content-addressed, not positional:
// renamed, reordered or duplicated functions with known bodies all reuse.
//
// Reuse is free of scheduling effects, so results keep RunModule's
// determinism guarantee at any Jobs count. Functions that fail carry their
// error as usual and are simply absent from the returned Revision (they
// re-run next time). On cancellation the changed subset degrades exactly
// like RunModule — completed functions are kept, unprocessed ones are
// marked ErrCanceled — while reused functions are always present.
func RunModuleIncremental(ctx context.Context, m *ir.Module, cfg Config, prev *Revision) ([]FuncResult, *Revision, error) {
	if m == nil || len(m.Funcs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty module", raerr.ErrInvalidConfig)
	}
	if err := validateConfig(cfg); err != nil {
		return nil, nil, err
	}
	fold := fingerprintConfig(cfg)
	results := make([]FuncResult, len(m.Funcs))
	keys := make([]fingerprint.FP, len(m.Funcs))
	next := &Revision{entries: make(map[fingerprint.FP]*outcache.Entry, len(m.Funcs))}
	var changed []*ir.Func
	var changedIdx []int
	for i, f := range m.Funcs {
		keys[i] = fingerprint.Key(f, fold)
		if prev != nil {
			if e, ok := prev.entries[keys[i]]; ok {
				if out := e.Materialize(f); out != nil {
					results[i] = FuncResult{Index: i, Name: f.Name, Outcome: out, Cached: true}
					next.entries[keys[i]] = e
					continue
				}
			}
		}
		changed = append(changed, f)
		changedIdx = append(changedIdx, i)
	}
	var runErr error
	if len(changed) > 0 {
		sub := &ir.Module{Funcs: changed}
		subResults, err := RunModule(ctx, sub, cfg)
		runErr = err
		for j := range subResults {
			r := subResults[j]
			i := changedIdx[j]
			r.Index = i
			results[i] = r
			// Degraded outcomes are not carried into the revision: the trip
			// point is budget- (and clock-) dependent, and the next run
			// deserves a chance to allocate the function properly.
			if r.Err == nil && r.Outcome.Degraded == nil {
				if _, ok := next.entries[keys[i]]; !ok {
					next.entries[keys[i]] = outcache.NewEntry(r.Outcome)
				}
			}
		}
	}
	return results, next, runErr
}
