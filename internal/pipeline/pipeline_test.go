package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/raerr"
	"repro/internal/spillcost"
)

// TestRunModuleDeterminism is the batch layer's core guarantee: over a
// ≥500-function generated module, the full detailed report (spill sets,
// assignments, rewritten bodies) is byte-identical at 1, 4 and 16 workers.
// CI runs this under -race, so it is also the pipeline's data-race probe.
func TestRunModuleDeterminism(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 60
	}
	m := irgen.GenerateModule(20260728, n)
	if len(m.Funcs) != n {
		t.Fatalf("generated %d functions, want %d", len(m.Funcs), n)
	}
	var want string
	for _, jobs := range []int{1, 4, 16} {
		results, err := RunModule(context.Background(), m, Config{Registers: 4, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if err := FirstErr(results); err != nil {
			t.Fatalf("jobs=%d: function failed: %v", jobs, err)
		}
		got := FormatResults(results, true)
		if jobs == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("jobs=%d output differs from jobs=1 (len %d vs %d)", jobs, len(got), len(want))
		}
	}
}

// TestRunModuleScratchReuseEquivalent: the per-worker Runner is a pure
// memory optimization — disabling it must not change a byte of output.
func TestRunModuleScratchReuseEquivalent(t *testing.T) {
	m := irgen.GenerateModule(7, 80)
	with, err := RunModule(context.Background(), m, Config{Registers: 3, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunModule(context.Background(), m, Config{Registers: 3, Jobs: 2, NoScratchReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if FormatResults(with, true) != FormatResults(without, true) {
		t.Fatal("scratch reuse changed results")
	}
}

// TestRunModuleMatchesCoreRun: batch results agree with one-at-a-time
// core.Run through the same report format.
func TestRunModuleMatchesCoreRun(t *testing.T) {
	m := irgen.GenerateModule(99, 40)
	results, err := RunModule(context.Background(), m, Config{Registers: 8, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sequential := make([]FuncResult, 0, len(m.Funcs))
	for i, f := range m.Funcs {
		out, err := RunFunc(nil, f, core.Config{Registers: 8})
		sequential = append(sequential, FuncResult{Index: i, Name: f.Name, Outcome: out, Err: err})
	}
	if FormatResults(results, true) != FormatResults(sequential, true) {
		t.Fatal("batch and sequential results differ")
	}
}

// TestRunModuleNamedAllocators runs every registered allocator name through
// the batch layer; chordal-only allocators panic on general graphs, and the
// pipeline must convert that into a per-function error, not a crash.
func TestRunModuleNamedAllocators(t *testing.T) {
	m := irgen.GenerateModule(3, 30)
	for _, name := range []string{"NL", "BFPL", "GC", "DLS", "BLS", "LH", "Optimal"} {
		results, err := RunModule(context.Background(), m, Config{Registers: 4, Allocator: name, Jobs: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range results {
			if results[i].Err == nil && results[i].Outcome == nil {
				t.Fatalf("%s: function %s has neither outcome nor error", name, results[i].Name)
			}
		}
	}
}

// TestRunModuleErrorIsolation: a function that fails (non-chordal input to
// a chordal-only allocator) must not poison its neighbours.
func TestRunModuleErrorIsolation(t *testing.T) {
	m := ir.MustParseModule(`
func ok ssa {
b0:
  a = param 0
  b = arith a, a
  ret b
}

func multidef {
b0:
  x = param 0
  x = arith x, x
  c = unary x
  condbr c, b1, b2
b1:
  x = unary x
  br b2
b2:
  ret x
}
`)
	// NL is chordal-only: the non-SSA function must fail, the SSA one pass.
	results, err := RunModule(context.Background(), m, Config{Registers: 4, Allocator: "NL", Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("ok function failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("chordal-only allocator accepted a general graph")
	}
	if !strings.Contains(FormatResults(results, false), "ERROR") {
		t.Fatal("report does not surface the per-function error")
	}
}

// TestRunModuleConfigErrors pins the fail-fast paths.
func TestRunModuleConfigErrors(t *testing.T) {
	m := irgen.GenerateModule(1, 2)
	if _, err := RunModule(context.Background(), m, Config{Registers: 0}); err == nil {
		t.Error("accepted Registers=0")
	}
	if _, err := RunModule(context.Background(), m, Config{Registers: 4, Allocator: "nope"}); err == nil {
		t.Error("accepted unknown allocator")
	}
	if _, err := RunModule(context.Background(), &ir.Module{}, Config{Registers: 4}); err == nil {
		t.Error("accepted empty module")
	}
	if _, err := RunModule(context.Background(), m, Config{Registers: 4, CostModel: spillcost.Model{LoopBase: -1, StoreFactor: 1}}); err == nil {
		t.Error("accepted invalid cost model")
	}
}

// TestSummarize checks the batch totals against a hand-rolled count.
func TestSummarize(t *testing.T) {
	m := irgen.GenerateModule(42, 25)
	results, err := RunModule(context.Background(), m, Config{Registers: 2, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	tot := Summarize(results)
	if tot.Funcs != 25 {
		t.Fatalf("Funcs = %d, want 25", tot.Funcs)
	}
	spilled, cost := 0, 0.0
	for i := range results {
		if results[i].Err != nil {
			continue
		}
		spilled += len(results[i].Outcome.SpilledValues)
		cost += results[i].Outcome.SpillCost
	}
	if tot.Spilled != spilled || tot.SpillCost != cost {
		t.Fatalf("totals %+v disagree with recount (%d, %g)", tot, spilled, cost)
	}
}

// TestRunModuleCancellation is the satellite bugproofing test: cancel a
// batch mid-module and require (a) an error wrapping both the typed
// raerr.ErrCanceled and context.Canceled, (b) full-length partial results
// where everything processed before the cut has a real outcome and
// everything after it is marked canceled.
func TestRunModuleCancellation(t *testing.T) {
	n := 300
	m := irgen.GenerateModule(5150, n)
	ctx, cancel := context.WithCancel(context.Background())
	seen := make(chan struct{}, n)
	// Cancel after the first few functions complete: a worker-side hook is
	// not available, so run the module through the stream form first to
	// find a stable cut, then cancel the batch from a racing goroutine
	// keyed on one completed result.
	go func() {
		<-seen
		cancel()
	}()
	// The hook parks every worker that completes a function until the
	// cancel lands, so at most Jobs functions complete before the cut —
	// the test is deterministic instead of racing the batch to the finish.
	results, err := RunModule(ctx, m, Config{Registers: 4, Jobs: 2, onFuncDone: func() {
		select {
		case seen <- struct{}{}:
		default:
		}
		<-ctx.Done()
	}})
	if err == nil {
		t.Skip("batch completed before cancellation (machine too fast for the race)")
	}
	if !errors.Is(err, raerr.ErrCanceled) {
		t.Fatalf("module error %v does not wrap raerr.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("module error %v does not wrap context.Canceled", err)
	}
	if len(results) != n {
		t.Fatalf("partial results have length %d, want %d", len(results), n)
	}
	completed, canceled := 0, 0
	for i := range results {
		switch {
		case results[i].Outcome != nil:
			completed++
		case errors.Is(results[i].Err, raerr.ErrCanceled):
			canceled++
			if results[i].Name == "" {
				t.Fatalf("canceled result %d lost its function name", i)
			}
		case results[i].Err != nil:
			t.Fatalf("function %s failed with a non-cancellation error: %v", results[i].Name, results[i].Err)
		default:
			t.Fatalf("result %d has neither outcome nor error", i)
		}
	}
	if completed == 0 {
		t.Error("cancellation produced no completed functions (expected partial results)")
	}
	if canceled == 0 {
		t.Error("cancellation left no canceled functions (cancel came too late to test anything)")
	}
}

// TestRunModuleStreamOrdered: the streaming form yields every result
// exactly once, in module order, with the same bytes as the batch form.
func TestRunModuleStreamOrdered(t *testing.T) {
	m := irgen.GenerateModule(808, 60)
	batch, err := RunModule(context.Background(), m, Config{Registers: 3, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []FuncResult
	err = RunModuleStream(context.Background(), m, Config{Registers: 3, Jobs: 4}, func(r FuncResult) error {
		streamed = append(streamed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(batch))
	}
	for i := range streamed {
		if streamed[i].Index != i {
			t.Fatalf("stream out of order: position %d carries index %d", i, streamed[i].Index)
		}
	}
	if FormatResults(streamed, true) != FormatResults(batch, true) {
		t.Fatal("streamed results differ from batch results")
	}
}

// TestRunModuleStreamYieldError: a failing yield stops the workers and
// surfaces the yield error verbatim.
func TestRunModuleStreamYieldError(t *testing.T) {
	m := irgen.GenerateModule(33, 40)
	boom := errors.New("consumer full")
	n := 0
	err := RunModuleStream(context.Background(), m, Config{Registers: 3, Jobs: 2}, func(r FuncResult) error {
		n++
		if n == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("stream error = %v, want the yield error", err)
	}
	if n != 5 {
		t.Fatalf("yield called %d times after erroring at 5", n)
	}
}
