package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a resilient client for the allocation service: it retries
// transient failures (transport errors, 429 over-capacity rejections,
// 5xx server troubles) with jittered exponential backoff, honors the
// server's Retry-After pushback, bounds every attempt with its own
// deadline, and stops when a total retry budget is spent — so a flaky or
// overloaded server degrades a caller's latency, never its correctness,
// and a dead server fails the caller in bounded time.
//
// The zero value plus BaseURL is usable; Allocate is safe for concurrent
// use. Deterministic allocation failures (an in-band Response.Error on a
// 200, or any other 4xx) are not retried: the same request would fail the
// same way again.
type Client struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying HTTP client (nil uses a private default).
	// Per-attempt deadlines come from AttemptTimeout, not HTTP.Timeout.
	HTTP *http.Client
	// MaxAttempts bounds the total tries (first attempt included);
	// 0 picks DefaultMaxAttempts.
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubled per subsequent retry;
	// 0 picks DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 picks DefaultMaxBackoff.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt; 0 picks
	// DefaultAttemptTimeout, negative disables the per-attempt deadline.
	AttemptTimeout time.Duration
	// RetryBudget bounds the total wall-clock time across all attempts and
	// backoff sleeps: once spent, the last failure is returned instead of
	// retrying further. 0 means no budget beyond MaxAttempts.
	RetryBudget time.Duration

	// jitter maps a computed backoff to the actual delay; nil picks full
	// jitter on [backoff/2, backoff]. Injectable so tests are
	// deterministic.
	jitter func(time.Duration) time.Duration
	// sleep waits for d or until ctx is done; nil picks the real clock.
	// Injectable so tests do not spend wall-clock time.
	sleep func(ctx context.Context, d time.Duration) error
}

// Client defaults.
const (
	DefaultMaxAttempts    = 4
	DefaultBaseBackoff    = 100 * time.Millisecond
	DefaultMaxBackoff     = 2 * time.Second
	DefaultAttemptTimeout = 10 * time.Second
)

// RetryableStatus reports whether an HTTP status is worth retrying:
// over-capacity pushback and server-side troubles, never client errors.
func RetryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// AttemptError is the per-attempt failure detail of an exhausted Allocate:
// the final attempt's transport error or HTTP status.
type AttemptError struct {
	// Attempts is how many tries were made.
	Attempts int
	// Status is the final HTTP status (0 on a transport failure).
	Status int
	// Err is the final transport or in-band failure.
	Err error
}

func (e *AttemptError) Error() string {
	return fmt.Sprintf("allocation request failed after %d attempts: %v", e.Attempts, e.Err)
}

func (e *AttemptError) Unwrap() error { return e.Err }

// Allocate sends one request, retrying transient failures within the
// client's attempt, backoff and budget bounds. On success the decoded
// Response is returned even when it carries an in-band Error (a
// deterministic allocation failure is a valid answer, not a transport
// problem). The returned error is an *AttemptError once retries are
// exhausted, or ctx's error when the caller's context ends first.
func (c *Client) Allocate(ctx context.Context, req Request) (Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, fmt.Errorf("encoding request: %w", err)
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	var deadline time.Time
	if c.RetryBudget > 0 {
		deadline = time.Now().Add(c.RetryBudget)
	}

	var last *AttemptError
	for attempt := 1; ; attempt++ {
		resp, status, err := c.attempt(ctx, body)
		if err == nil {
			return resp.Response, nil
		}
		last = &AttemptError{Attempts: attempt, Status: status, Err: err}
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		if status != 0 && !RetryableStatus(status) {
			return Response{}, last
		}
		if attempt >= maxAttempts {
			return Response{}, last
		}
		delay := c.delay(attempt, resp.retryAfter)
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			return Response{}, last
		}
		if err := c.doSleep(ctx, delay); err != nil {
			return Response{}, err
		}
	}
}

// clientResponse carries an attempt's decoded body plus the server's
// Retry-After pushback, when present.
type clientResponse struct {
	Response
	retryAfter time.Duration
}

// attempt runs one HTTP round trip under the per-attempt deadline.
// A non-nil error with status 0 is a transport failure; with a non-zero
// status it is an HTTP-level failure (the in-band error is wrapped).
func (c *Client) attempt(ctx context.Context, body []byte) (clientResponse, int, error) {
	if t := c.AttemptTimeout; t >= 0 {
		if t == 0 {
			t = DefaultAttemptTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", c.BaseURL+"/v1/allocate", bytes.NewReader(body))
	if err != nil {
		return clientResponse{}, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	httpc := c.HTTP
	if httpc == nil {
		httpc = &defaultHTTPClient
	}
	hresp, err := httpc.Do(hreq)
	if err != nil {
		return clientResponse{}, 0, err
	}
	defer hresp.Body.Close()
	var out clientResponse
	if ra, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && ra >= 0 {
		out.retryAfter = time.Duration(ra) * time.Second
	}
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return out, 0, fmt.Errorf("reading response: %w", err)
	}
	if err := json.Unmarshal(raw, &out.Response); err != nil {
		// A mangled body from a healthy status is a transient server
		// problem; surface it with the status so it is retried.
		return out, hresp.StatusCode, fmt.Errorf("status %d with undecodable body: %w", hresp.StatusCode, err)
	}
	if hresp.StatusCode != http.StatusOK {
		msg := out.Error
		if msg == "" {
			msg = http.StatusText(hresp.StatusCode)
		}
		return out, hresp.StatusCode, fmt.Errorf("status %d: %s", hresp.StatusCode, msg)
	}
	return out, hresp.StatusCode, nil
}

var defaultHTTPClient = http.Client{}

// delay computes the jittered exponential backoff before retry `attempt`,
// floored by the server's Retry-After pushback.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	maxb := c.MaxBackoff
	if maxb <= 0 {
		maxb = DefaultMaxBackoff
	}
	d := base
	for i := 1; i < attempt && d < maxb; i++ {
		d *= 2
	}
	if d > maxb {
		d = maxb
	}
	if j := c.jitter; j != nil {
		d = j(d)
	} else if d > 0 {
		// Full jitter on [d/2, d]: desynchronizes a thundering herd while
		// keeping the expected delay close to the schedule.
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func (c *Client) doSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
